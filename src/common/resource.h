#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace step {

class MemTracker;

/// Per-run memory governor. Tracks the bytes of the dominant dynamic
/// allocations (solver clause arenas, decomposition-cache entries) charged
/// through per-cone MemTrackers, and enforces two caps:
///
///  - a *soft per-cone* cap (`soft_cone_bytes`): a cone whose own tracker
///    exceeds it trips only that cone's deadline — the cone is abandoned
///    cleanly (its solvers/arenas free on scope exit, the tracker refunds
///    the governor) while sibling cones keep running;
///  - a *hard per-run* cap (`hard_run_bytes`): once the run-wide total
///    exceeds it, every tracker reports tripped, so all live cones wind
///    down at their next poll instead of the process being OOM-killed.
///
/// Accounting is approximate by design (capacity of the clause arenas plus
/// cache-entry estimates — the structures that actually blow up on hard
/// cones); the point is a bounded, clean abandonment path, not malloc-level
/// precision. All counters are atomics: charges come from worker threads.
class ResourceGovernor {
 public:
  struct Options {
    std::size_t soft_cone_bytes = 0;  ///< 0 = no per-cone cap
    std::size_t hard_run_bytes = 0;   ///< 0 = no per-run cap
  };

  ResourceGovernor() = default;
  explicit ResourceGovernor(Options opts) : opts_(opts) {}

  const Options& options() const { return opts_; }

  std::size_t run_bytes() const {
    return run_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t peak_run_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }
  bool over_hard_cap() const {
    return opts_.hard_run_bytes != 0 && run_bytes() > opts_.hard_run_bytes;
  }
  /// Cones abandoned on a memory trip (soft or hard), for reporting.
  std::uint64_t cones_tripped() const {
    return cones_tripped_.load(std::memory_order_relaxed);
  }
  void note_cone_tripped() {
    cones_tripped_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  friend class MemTracker;
  void charge(std::size_t bytes) {
    const std::size_t now =
        run_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now > peak && !peak_bytes_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  void release(std::size_t bytes) {
    run_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  Options opts_;
  std::atomic<std::size_t> run_bytes_{0};
  std::atomic<std::size_t> peak_bytes_{0};
  std::atomic<std::uint64_t> cones_tripped_{0};
};

/// Per-cone allocation account. Instrumented allocators (ClauseArena,
/// DecCache) charge growth here; the balance flows up into the governor's
/// run-wide total and is refunded when the owning structure shrinks or the
/// tracker dies — so abandoning a cone (solvers destruct) automatically
/// returns its memory to the run budget. `tripped()` is what the cone's
/// Deadline polls: it latches, so a cone over its cap stays condemned even
/// if a refund later drops the balance back under.
class MemTracker {
 public:
  explicit MemTracker(ResourceGovernor* governor = nullptr)
      : governor_(governor),
        soft_cap_(governor != nullptr ? governor->options().soft_cone_bytes
                                      : 0) {}
  MemTracker(const MemTracker&) = delete;
  MemTracker& operator=(const MemTracker&) = delete;
  ~MemTracker() {
    if (governor_ != nullptr) {
      governor_->release(bytes_.load(std::memory_order_relaxed));
    }
  }

  /// Overrides the governor's per-cone cap (standalone/test use).
  void set_soft_cap(std::size_t bytes) { soft_cap_ = bytes; }

  void charge(std::size_t bytes) {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (governor_ != nullptr) governor_->charge(bytes);
  }
  void release(std::size_t bytes) {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    if (governor_ != nullptr) governor_->release(bytes);
  }

  std::size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  bool tripped() const {
    if (tripped_.load(std::memory_order_relaxed)) return true;
    const bool over = (soft_cap_ != 0 && bytes() > soft_cap_) ||
                      (governor_ != nullptr && governor_->over_hard_cap());
    if (over) {
      tripped_.store(true, std::memory_order_relaxed);
      if (governor_ != nullptr) governor_->note_cone_tripped();
    }
    return over;
  }

 private:
  ResourceGovernor* governor_;
  std::size_t soft_cap_;
  std::atomic<std::size_t> bytes_{0};
  mutable std::atomic<bool> tripped_{false};
};

}  // namespace step
