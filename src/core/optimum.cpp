#include "core/optimum.h"

#include <algorithm>

namespace step::core {

std::vector<SearchStage> default_schedule(QbfModel model) {
  // Section IV.A.6: best results for disjointness with MD → Bin → MI
  // (iteration caps heuristically chosen); for balancedness with MI.
  if (model == QbfModel::kQB) {
    return {{SearchStrategy::kMonotoneIncreasing, -1}};
  }
  return {{SearchStrategy::kMonotoneDecreasing, 2},
          {SearchStrategy::kBinary, 8},
          {SearchStrategy::kMonotoneIncreasing, -1}};
}

OptimumResult OptimumSearch::run(const std::optional<Partition>& bootstrap,
                                 const Deadline* po_deadline) {
  OptimumResult res;
  const int n = finder_.matrix().n;
  const MetricKind kind = metric_of(model_);
  const int k_max = std::max(0, n - 2);  // cost never exceeds n−2

  auto remaining = [&] {
    return po_deadline != nullptr ? po_deadline->remaining_s() : 1e30;
  };
  auto query = [&](int k) {
    // The per-call deadline chains to the PO deadline so its attachments
    // (memory tracker, fault stream, run-level cancellation) also
    // interrupt a QBF call mid-CEGAR, not just between calls.
    Deadline call(std::min(opts_.call_timeout_s, remaining()));
    call.attach_parent(po_deadline);
    ++res.qbf_calls;
    return finder_.find_with_bound(model_, k, &call);
  };

  int lo = 0;  // invariant: every bound < lo is refuted
  bool have_best = false;

  auto record_best = [&](const Partition& p) {
    const int cost = metric_cost(Metrics::of(p), kind);
    if (!have_best || cost < res.best_cost) {
      have_best = true;
      res.best = p;
      res.best_cost = cost;
    }
  };

  if (bootstrap.has_value()) {
    record_best(*bootstrap);
  } else {
    // Feasibility probe doubles as the loose upper bound (Section IV.A.6:
    // "alternatively, the upper bound can be set to 1", i.e. k_max here).
    const QbfFindResult probe = query(k_max);
    if (probe.status == qbf::Qbf2Status::kFalse) {
      res.outcome = OptimumResult::Outcome::kNotDecomposable;
      res.proven_optimal = true;
      return res;
    }
    if (probe.status == qbf::Qbf2Status::kUnknown) {
      ++res.timeouts;
      res.outcome = OptimumResult::Outcome::kUnknown;
      // A tripped PO deadline names the cause; otherwise the per-call
      // wall budget expired, which is an engine-level deadline. (A SAT
      // conflict cap also lands here; the decomposer refines it from the
      // solver stats.)
      res.reason =
          po_deadline != nullptr && po_deadline->trip() != Deadline::Trip::kNone
              ? reason_of(po_deadline->trip())
              : OutcomeReason::kEngineDeadline;
      return res;
    }
    record_best(probe.partition);
  }

  int hi = std::min(res.best_cost - 1, k_max);
  for (const SearchStage& stage : opts_.schedule.empty()
                                      ? default_schedule(model_)
                                      : opts_.schedule) {
    bool stage_stuck = false;
    for (int iter = 0;
         (stage.max_iterations < 0 || iter < stage.max_iterations) &&
         lo <= hi && !stage_stuck;
         ++iter) {
      if (po_deadline != nullptr && po_deadline->expired()) {
        stage_stuck = true;
        break;
      }
      int k = lo;
      switch (stage.strategy) {
        case SearchStrategy::kMonotoneIncreasing: k = lo; break;
        case SearchStrategy::kMonotoneDecreasing: k = hi; break;
        case SearchStrategy::kBinary: k = lo + (hi - lo) / 2; break;
      }
      const QbfFindResult r = query(k);
      switch (r.status) {
        case qbf::Qbf2Status::kTrue:
          record_best(r.partition);
          hi = std::min(hi, res.best_cost - 1);
          break;
        case qbf::Qbf2Status::kFalse:
          // The finder's refutation certificate can cover more than the
          // queried bound (UNSAT core over the cardinality-counter
          // outputs); skip every bound it already refutes.
          lo = std::max(lo, r.refuted_below);
          break;
        case qbf::Qbf2Status::kUnknown:
          ++res.timeouts;
          stage_stuck = true;  // this stage cannot make progress; move on
          break;
      }
    }
  }

  res.outcome = OptimumResult::Outcome::kFound;
  res.proven_optimal = lo > hi;  // every bound below best_cost refuted
  return res;
}

}  // namespace step::core
