#pragma once

#include <vector>

#include "aig/aig.h"
#include "cnf/cnf.h"
#include "sat/types.h"

namespace step::cnf {

/// Encodes the cone of `root` into CNF (Tseitin), mapping AIG input i to
/// the SAT literal `input_sat[i]`. Fresh auxiliary variables are created
/// for internal AND nodes. Returns the SAT literal equivalent to `root`.
///
/// Mapping the same cone twice with different `input_sat` vectors yields
/// independent copies — this is how the bi-decomposition formulas
/// instantiate f(X), f(X'), f(X'') from one cone.
///
/// Inputs outside the cone may map to kLitUndef placeholders.
sat::Lit encode_cone(const aig::Aig& a, aig::Lit root,
                     const std::vector<sat::Lit>& input_sat, ClauseSink& sink);

/// Convenience: encode and assert the root to the given value.
void encode_cone_assert(const aig::Aig& a, aig::Lit root,
                        const std::vector<sat::Lit>& input_sat,
                        ClauseSink& sink, bool value);

}  // namespace step::cnf
