#pragma once

#include <vector>

#include "common/timer.h"
#include "core/partition_check.h"
#include "core/relaxation.h"
#include "qbf/qbf2.h"

namespace step::core {

/// The paper's QBF models (Section IV): which target constraint fT is
/// imposed on the universal partition variables.
enum class QbfModel {
  kQD,   ///< disjointness target, eq. (5), with |XA| >= |XB| symmetry break
  kQB,   ///< balancedness target, eq. (6)
  kQDB,  ///< combined target, eq. (8), weights 1/1
};

inline const char* to_string(QbfModel m) {
  switch (m) {
    case QbfModel::kQD: return "STEP-QD";
    case QbfModel::kQB: return "STEP-QB";
    case QbfModel::kQDB: return "STEP-QDB";
  }
  return "?";
}

inline MetricKind metric_of(QbfModel m) {
  switch (m) {
    case QbfModel::kQD: return MetricKind::kDisjointness;
    case QbfModel::kQB: return MetricKind::kBalancedness;
    case QbfModel::kQDB: return MetricKind::kSum;
  }
  return MetricKind::kDisjointness;
}

struct QbfFindResult {
  qbf::Qbf2Status status = qbf::Qbf2Status::kUnknown;
  /// Valid when status == kTrue: a non-trivial partition whose target
  /// metric numerator is <= the queried bound k.
  Partition partition;
  int iterations = 0;
};

/// Decides, via the 2QBF formulation (9), whether a non-trivial valid
/// partition with fT-cost <= k exists — and produces it if so.
///
/// The solved formula is the *negation* of (9):
///   ∃α,β ∀X,X',X''.  ¬Φ ∧ fN(α,β) ∧ fT(α,β)
/// whose ∃-witness (AReQS counterexample for (9)) is the partition.
///
/// Instances share a pool of inner countermodels: every CEGAR refinement
/// discovered at one bound k is sound at every other bound (the matrix
/// part does not depend on fT), so the optimum-search loop re-seeds each
/// new query with all previous refinements — the practical trick that
/// makes the iterative MD/Bin/MI search affordable.
struct QbfFinderOptions {
  /// Break the XA/XB symmetry with |XA| >= |XB| (Section IV.A.2: "reduces
  /// substantially the search space"). When off, the QB and QDB targets
  /// bound the *absolute* size difference instead, which is equivalent on
  /// partitions but doubles the witness space.
  bool symmetry_breaking = true;
  /// Carry CEGAR countermodels across bound queries.
  bool pool_seeding = true;
  /// Forwarded to the CEGAR solver.
  qbf::CegarOptions cegar;
};

class QbfPartitionFinder {
 public:
  explicit QbfPartitionFinder(const RelaxationMatrix& m,
                              QbfFinderOptions opts = {});

  QbfFindResult find_with_bound(QbfModel model, int k,
                                const Deadline* deadline = nullptr);

  const RelaxationMatrix& matrix() const { return m_; }
  int qbf_calls() const { return qbf_calls_; }
  std::size_t pool_size() const { return pool_.size(); }

 private:
  const RelaxationMatrix& m_;  ///< not owned; must outlive the finder
  QbfFinderOptions opts_;
  std::vector<std::vector<sat::Lbool>> pool_;
  int qbf_calls_ = 0;
};

}  // namespace step::core
