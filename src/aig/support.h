#pragma once

#include <vector>

#include "aig/aig.h"

namespace step::aig {

/// Input indices (ascending) that the cone of `root` structurally reaches.
std::vector<std::uint32_t> structural_support(const Aig& a, Lit root);

/// Semantic support over a candidate structural support: input j belongs
/// iff the two cofactors on j differ. Exact but exponential in support
/// size, so restricted to supports <= 20; used by tests and by callers
/// that want tight supports on small cones.
std::vector<std::uint32_t> functional_support(const Aig& a, Lit root);

}  // namespace step::aig
