#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.h"

namespace step::aig {

/// 64-way bit-parallel simulation: `input_words[i]` carries 64 stimulus
/// bits for input i; returns one word per output.
std::vector<std::uint64_t> simulate(const Aig& a,
                                    const std::vector<std::uint64_t>& input_words);

/// Word-level simulation of a single cone.
std::uint64_t simulate_cone(const Aig& a, Lit root,
                            const std::vector<std::uint64_t>& input_words);

/// Whole-network simulation exposing every node's word (indexed by node
/// id, uncomplemented). Window extraction reads internal cut signals from
/// this, so one sweep serves many candidate cuts.
std::vector<std::uint64_t> simulate_nodes(
    const Aig& a, const std::vector<std::uint64_t>& input_words);

/// Complete truth table of `root` over the given support inputs
/// (src input indices); support.size() <= 20. Bit b of the table is the
/// function value when support input j takes bit j of b.
/// Packed in 64-bit words, so table[b >> 6] >> (b & 63) & 1 is the value.
std::vector<std::uint64_t> truth_table(const Aig& a, Lit root,
                                       const std::vector<std::uint32_t>& support);

/// Number of 64-bit words a truth table over n variables occupies.
constexpr std::size_t tt_words(std::size_t n_vars) {
  return n_vars >= 6 ? (std::size_t{1} << (n_vars - 6)) : 1;
}

/// Reads bit `row` of a packed truth table.
inline bool tt_bit(const std::vector<std::uint64_t>& tt, std::size_t row) {
  return ((tt[row >> 6] >> (row & 63)) & 1ULL) != 0;
}

}  // namespace step::aig
