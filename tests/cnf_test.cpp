#include "cnf/cardinality.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "sat/solver.h"

namespace step::cnf {
namespace {

using sat::Lbool;
using sat::Lit;
using sat::LitVec;
using sat::mk_lit;
using sat::Result;
using sat::Solver;
using sat::Var;

// ---------- cardinality: exhaustive model counting -----------------------------

/// Counts models of the constraint over the n base variables by repeatedly
/// solving + blocking the projection onto the base variables.
int count_projected_models(Solver& s, const std::vector<Var>& base) {
  // The blocking clauses re-mention the base variables after solves, so
  // they must survive preprocessing.
  for (Var v : base) s.set_frozen(v);
  int models = 0;
  while (s.solve() == Result::kSat) {
    ++models;
    LitVec block;
    for (Var v : base) {
      block.push_back(mk_lit(v, s.model_value(v) == Lbool::kTrue));
    }
    s.add_clause(block);
    if (models > 4096) break;  // runaway guard
  }
  return models;
}

int binomial_sum_at_most(int n, int k) {
  // sum_{i=0..k} C(n,i)
  long long sum = 0, c = 1;
  for (int i = 0; i <= n; ++i) {
    if (i <= k) sum += c;
    c = c * (n - i) / (i + 1);
  }
  return static_cast<int>(sum);
}

struct AmkCase {
  int n, k;
};

class AtMostK : public ::testing::TestWithParam<AmkCase> {};

TEST_P(AtMostK, ModelCountMatchesBinomialSum) {
  const auto [n, k] = GetParam();
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < n; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_most_k(sink, lits, k);
  EXPECT_EQ(count_projected_models(s, base), binomial_sum_at_most(n, k))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtMostK,
    ::testing::Values(AmkCase{1, 0}, AmkCase{2, 1}, AmkCase{3, 1}, AmkCase{3, 2},
                      AmkCase{4, 0}, AmkCase{4, 2}, AmkCase{5, 1}, AmkCase{5, 3},
                      AmkCase{6, 2}, AmkCase{6, 5}, AmkCase{7, 3}, AmkCase{8, 4}));

TEST(Cardinality, AtMostKTrivialWhenKGeqN) {
  Solver s;
  LitVec lits;
  std::vector<Var> base;
  for (int i = 0; i < 4; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_most_k(sink, lits, 4);
  EXPECT_EQ(count_projected_models(s, base), 16);
}

TEST(Cardinality, AtMostNegativeKIsUnsat) {
  Solver s;
  LitVec lits{mk_lit(s.new_var())};
  SolverSink sink(s);
  at_most_k(sink, lits, -1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Cardinality, AtLeastKCounts) {
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < 5; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_least_k(sink, lits, 3);
  // #models = C(5,3)+C(5,4)+C(5,5) = 10+5+1.
  EXPECT_EQ(count_projected_models(s, base), 16);
}

TEST(Cardinality, AtLeastOneAndPairwiseAtMostOne) {
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < 6; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_least_one(sink, lits);
  at_most_one_pairwise(sink, lits);
  EXPECT_EQ(count_projected_models(s, base), 6);  // exactly-one
}

TEST(Cardinality, DiffAtMostKEnumerates) {
  // #models of (sum a) - (sum b) <= 1 over 3+3 free vars.
  Solver s;
  std::vector<Var> base;
  LitVec a, b;
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    a.push_back(mk_lit(base.back()));
  }
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    b.push_back(mk_lit(base.back()));
  }
  SolverSink sink(s);
  diff_at_most_k(sink, a, b, 1);
  int expect = 0;
  for (int m = 0; m < 64; ++m) {
    const int ca = __builtin_popcount(m & 7);
    const int cb = __builtin_popcount((m >> 3) & 7);
    if (ca - cb <= 1) ++expect;
  }
  EXPECT_EQ(count_projected_models(s, base), expect);
}

TEST(Cardinality, DiffNonNegativeEnumerates) {
  Solver s;
  std::vector<Var> base;
  LitVec a, b;
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    a.push_back(mk_lit(base.back()));
  }
  for (int i = 0; i < 2; ++i) {
    base.push_back(s.new_var());
    b.push_back(mk_lit(base.back()));
  }
  SolverSink sink(s);
  diff_non_negative(sink, a, b);
  int expect = 0;
  for (int m = 0; m < 32; ++m) {
    const int ca = __builtin_popcount(m & 7);
    const int cb = __builtin_popcount((m >> 3) & 3);
    if (ca - cb >= 0) ++expect;
  }
  EXPECT_EQ(count_projected_models(s, base), expect);
}

// ---------- incremental counter --------------------------------------------

/// Enumerates every input pattern under the bound-k assumption set:
/// SAT exactly when popcount <= k. Exercises both enforcement (no pattern
/// above the bound survives) and extendability (no pattern within the
/// bound is cut off), without mutating the solver between bounds.
void check_bound_on_live_solver(Solver& s, const IncrementalCounter& tot,
                                const std::vector<Var>& base, int k) {
  for (int m = 0; m < (1 << base.size()); ++m) {
    LitVec assume;
    tot.assume_at_most(k, assume);
    for (std::size_t j = 0; j < base.size(); ++j) {
      assume.push_back(mk_lit(base[j], ((m >> j) & 1) == 0));
    }
    const bool expect = k >= 0 && __builtin_popcount(m) <= k;
    EXPECT_EQ(s.solve(assume), expect ? Result::kSat : Result::kUnsat)
        << "k=" << k << " pattern=" << m;
  }
}

TEST(IncrementalCounter, MonotoneTighteningOnOneSolver) {
  for (const int n : {1, 2, 5, 6}) {
    Solver s;
    std::vector<Var> base;
    LitVec lits;
    for (int i = 0; i < n; ++i) {
      base.push_back(s.new_var());
      lits.push_back(mk_lit(base[i]));
    }
    SolverSink sink(s);
    const IncrementalCounter tot(sink, lits);
    ASSERT_EQ(tot.size(), n);
    // One encoding, every bound: tighten from k >= n (no assumptions)
    // through k = 0 (all outputs assumed false) to the infeasible k = -1,
    // then loosen again — learned clauses must never leak across bounds.
    for (int k = n + 1; k >= -1; --k) {
      check_bound_on_live_solver(s, tot, base, k);
    }
    check_bound_on_live_solver(s, tot, base, n / 2);
  }
}

TEST(IncrementalCounter, MixedPolarityInputs) {
  // The finder's difference bounds track lists like alpha ∪ ¬beta; the
  // counter must count satisfied *literals*, not positive variables.
  Solver s;
  std::vector<Var> base;
  for (int i = 0; i < 4; ++i) base.push_back(s.new_var());
  const LitVec lits = {mk_lit(base[0]), ~mk_lit(base[1]), mk_lit(base[2]),
                       ~mk_lit(base[3])};
  SolverSink sink(s);
  const IncrementalCounter tot(sink, lits);
  for (int k = 4; k >= 0; --k) {
    for (int m = 0; m < 16; ++m) {
      LitVec assume;
      tot.assume_at_most(k, assume);
      int count = 0;
      for (int j = 0; j < 4; ++j) {
        const bool v = ((m >> j) & 1) != 0;
        assume.push_back(mk_lit(base[j], !v));
        const bool negated = j == 1 || j == 3;
        if (v != negated) ++count;
      }
      EXPECT_EQ(s.solve(assume), count <= k ? Result::kSat : Result::kUnsat)
          << "k=" << k << " pattern=" << m;
    }
  }
}

TEST(IncrementalCounter, UnsatCoreNamesStrongestRefutedBound) {
  // Three of five inputs are forced true; refuting "at most 1" must yield
  // a core naming output o_3 (sum forced >= 3), not merely o_2 — the
  // signal the optimum search uses to raise its lower bound past k+1.
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < 5; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  const IncrementalCounter tot(sink, lits);
  for (int i = 0; i < 3; ++i) s.add_clause({lits[i]});

  LitVec assume;
  tot.assume_at_most(1, assume);
  ASSERT_EQ(s.solve(assume), Result::kUnsat);
  const LitVec& core = s.conflict_core();
  int min_output = 0;
  for (int j = 1; j <= tot.size(); ++j) {
    if (std::find(core.begin(), core.end(), ~tot.output(j)) != core.end()) {
      min_output = j;
      break;
    }
  }
  EXPECT_EQ(min_output, 3);
}

TEST(Tseitin, ConeEncodingMatchesSimulation) {
  Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    // Random 4-input AIG cone.
    aig::Aig a;
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 4; ++i) pool.push_back(a.add_input());
    for (int g = 0; g < 20; ++g) {
      const aig::Lit f0 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const aig::Lit f1 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(a.land(f0, f1));
    }
    const aig::Lit root = pool.back() ^ (rng.next_bool() ? 1u : 0u);

    Solver s;
    std::vector<Lit> in_sat(4);
    for (auto& l : in_sat) l = mk_lit(s.new_var());
    SolverSink sink(s);
    const Lit r = encode_cone(a, root, in_sat, sink);

    // For every input assignment the SAT encoding must agree with
    // simulation under assumptions.
    std::vector<std::uint64_t> stim(4);
    for (int j = 0; j < 4; ++j) stim[j] = (0xffffULL / 3) << j;  // varied
    for (int m = 0; m < 16; ++m) {
      LitVec assume;
      std::vector<std::uint64_t> bits(4);
      for (int j = 0; j < 4; ++j) {
        const bool v = ((m >> j) & 1) != 0;
        bits[j] = v ? ~0ULL : 0;
        assume.push_back(v ? in_sat[j] : ~in_sat[j]);
      }
      const bool expect = (aig::simulate_cone(a, root, bits) & 1ULL) != 0;
      assume.push_back(expect ? ~r : r);  // assume the wrong value
      EXPECT_EQ(s.solve(assume), Result::kUnsat);
      assume.back() = expect ? r : ~r;  // and the right one
      EXPECT_EQ(s.solve(assume), Result::kSat);
    }
  }
}

TEST(Tseitin, ConstantRoot) {
  aig::Aig a;
  (void)a.add_input();
  Solver s;
  SolverSink sink(s);
  const Lit t = encode_cone(a, aig::kLitTrue, {mk_lit(s.new_var())}, sink);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(t), Lbool::kTrue);
}

TEST(Tseitin, AssertValueForcesRoot) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const aig::Lit y = a.add_input();
  const aig::Lit f = a.land(x, y);
  Solver s;
  std::vector<Lit> in_sat{mk_lit(s.new_var()), mk_lit(s.new_var())};
  SolverSink sink(s);
  encode_cone_assert(a, f, in_sat, sink, true);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(in_sat[0]), Lbool::kTrue);
  EXPECT_EQ(s.model_value(in_sat[1]), Lbool::kTrue);
}

TEST(VecSinkTest, CollectsClauses) {
  VecSink sink(10);
  const Var v = sink.new_var();
  EXPECT_EQ(v, 10);
  sink.add_binary(mk_lit(v), ~mk_lit(v));
  ASSERT_EQ(sink.clauses().size(), 1u);
  EXPECT_EQ(sink.clauses()[0].size(), 2u);
}

}  // namespace
}  // namespace step::cnf
