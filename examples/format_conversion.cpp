// Format round-trips: PLA (two-level) -> AIG -> decomposition -> BLIF /
// AIGER / Verilog / Graphviz. Demonstrates the full IO surface on the
// quintessential LGSYNTH-style flow: read a two-level cover, restructure
// it with QBF-optimal bi-decomposition, and hand it downstream in the
// format of choice.
//
//   $ ./format_conversion

#include <cstdio>

#include "aig/dot.h"
#include "core/synthesis.h"
#include "io/aiger.h"
#include "io/blif_writer.h"
#include "io/pla_reader.h"
#include "io/verilog_writer.h"

int main() {
  using namespace step;

  // A small two-level PLA with an intended {a*|b*|c} split.
  const char* pla =
      ".i 5\n.o 2\n"
      ".ilb a0 a1 b0 b1 c\n.ob f g\n"
      "11--1 10\n--110 10\n1---0 11\n-0-1- 01\n.e\n";
  const io::Network net = io::parse_pla(pla);
  const aig::Aig circ = net.to_aig();
  std::printf("PLA: %u inputs, %u outputs, %u AND gates after elaboration\n",
              circ.num_inputs(), circ.num_outputs(), circ.num_ands());

  core::SynthesisOptions opts;
  opts.engine = core::Engine::kQbfCombined;
  opts.pick_best_op = true;
  const core::SynthesisResult r = core::resynthesize(circ, opts);
  std::printf("resynthesised with %d bi-decompositions\n\n",
              r.stats.decompositions);

  std::printf("--- BLIF ---\n%s\n", io::write_blif(r.network, "conv").c_str());
  std::printf("--- AIGER ---\n%s\n", io::write_aiger(r.network).c_str());
  std::printf("--- Verilog ---\n%s\n",
              io::write_verilog(r.network, "conv").c_str());
  std::printf("--- Graphviz (render with: dot -Tpng) ---\n%s",
              aig::to_dot(r.network, "conv").c_str());
  return 0;
}
