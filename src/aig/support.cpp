#include "aig/support.h"

#include <algorithm>

#include "aig/simulate.h"

namespace step::aig {

std::vector<std::uint32_t> structural_support(const Aig& a, Lit root) {
  std::vector<char> visited(a.num_nodes(), 0);
  std::vector<char> hit(a.num_inputs(), 0);
  std::vector<std::uint32_t> stack{node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    if (a.is_input(n)) {
      hit[a.input_index(n)] = 1;
    } else if (a.is_and(n)) {
      stack.push_back(node_of(a.fanin0(n)));
      stack.push_back(node_of(a.fanin1(n)));
    }
  }
  std::vector<std::uint32_t> result;
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    if (hit[i]) result.push_back(i);
  }
  return result;
}

std::vector<std::uint32_t> functional_support(const Aig& a, Lit root) {
  const std::vector<std::uint32_t> structural = structural_support(a, root);
  STEP_CHECK(structural.size() <= 20);
  const std::vector<std::uint64_t> tt = truth_table(a, root, structural);
  const std::size_t n = structural.size();
  const std::size_t rows = std::size_t{1} << n;

  std::vector<std::uint32_t> result;
  for (std::size_t j = 0; j < n; ++j) {
    bool depends = false;
    const std::size_t stride = std::size_t{1} << j;
    for (std::size_t row = 0; row < rows && !depends; ++row) {
      if ((row & stride) != 0) continue;  // visit each cofactor pair once
      if (tt_bit(tt, row) != tt_bit(tt, row | stride)) depends = true;
    }
    if (depends) result.push_back(structural[j]);
  }
  return result;
}

}  // namespace step::aig
