#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sat/types.h"

namespace step::sat {

/// Identifier of a proof node (leaf clause or derived resolvent).
using ProofId = std::uint32_t;
constexpr ProofId kProofIdUndef = 0xffffffffU;

/// One resolution step: resolve the running resolvent with `antecedent`
/// on variable `pivot`.
struct ProofStep {
  ProofId antecedent = kProofIdUndef;
  Var pivot = kVarUndef;
};

/// A node in the resolution proof DAG.
///
/// Leaves carry the clause literals as supplied by the user together with a
/// partition `tag` (the interpolation system uses tag 0 for the A-part and
/// tag 1 for the B-part). Derived nodes are trivial resolution chains:
/// start from node `start` and resolve with each step's antecedent in order.
struct ProofNode {
  // Leaf fields.
  int tag = -1;  ///< >= 0 for leaves; -1 for derived nodes.
  LitVec base_lits;

  // Derived fields.
  ProofId start = kProofIdUndef;
  std::vector<ProofStep> steps;

  bool is_leaf() const { return tag >= 0; }
};

/// Resolution proof trace recorded by the solver.
///
/// The trace is append-only; node ids are dense and topologically ordered
/// (every antecedent id is smaller than the derived node's id), which lets
/// consumers replay the proof with a single forward sweep.
class Proof {
 public:
  ProofId add_leaf(std::span<const Lit> lits, int tag) {
    ProofNode n;
    n.tag = tag;
    n.base_lits.assign(lits.begin(), lits.end());
    nodes_.push_back(std::move(n));
    return static_cast<ProofId>(nodes_.size() - 1);
  }

  ProofId add_derived(ProofId start, std::vector<ProofStep> steps) {
    ProofNode n;
    n.start = start;
    n.steps = std::move(steps);
    nodes_.push_back(std::move(n));
    return static_cast<ProofId>(nodes_.size() - 1);
  }

  const ProofNode& node(ProofId id) const { return nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Id of the derived empty clause; kProofIdUndef until the solver proves
  /// unsatisfiability without assumptions.
  ProofId empty_clause() const { return empty_clause_; }
  void set_empty_clause(ProofId id) { empty_clause_ = id; }

  /// Replays the resolution chain of `id` and returns the clause it derives.
  /// Used by tests to validate that logged chains are syntactically sound,
  /// and by the interpolation engine's debug mode.
  LitVec replay_clause(ProofId id) const;

 private:
  std::vector<ProofNode> nodes_;
  ProofId empty_clause_ = kProofIdUndef;
};

// ---------------------------------------------------------------- DRAT ----

/// One DRAT proof line: a clause addition or a clause deletion.
struct DratLine {
  bool is_delete = false;
  LitVec lits;  ///< empty + !is_delete = the empty clause
};

/// Clausal (DRAT) proof trace, recorded by the solver when
/// `SolverOptions::drat_logging` is set.
///
/// Unlike the resolution `Proof` (which must keep every learnt clause
/// alive for interpolation), a DRAT trace is compatible with clause
/// deletion, so it is the proof format of the modern search path: learnt
/// clauses, inprocessing rewrites (subsumption, strengthening,
/// vivification) and every deletion from the tiered database are logged.
/// The solver performs no blocked-clause addition, so every addition line
/// is RUP (reverse unit propagation) and `check_drat` below is a complete
/// checker for the traces this solver emits.
class DratTrace {
 public:
  void add(std::span<const Lit> lits) { push(false, lits); }
  void del(std::span<const Lit> lits) { push(true, lits); }

  const std::vector<DratLine>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }
  bool empty() const { return lines_.empty(); }
  void clear() { lines_.clear(); }

  /// Renders the trace in the standard textual DRAT format ("d" prefix for
  /// deletions, DIMACS literals, "0" terminators).
  std::string to_text() const;

 private:
  void push(bool is_delete, std::span<const Lit> lits) {
    DratLine l;
    l.is_delete = is_delete;
    l.lits.assign(lits.begin(), lits.end());
    lines_.push_back(std::move(l));
  }

  std::vector<DratLine> lines_;
};

/// Verdict of check_drat().
struct DratCheckResult {
  bool ok = false;            ///< every line verified
  bool proved_unsat = false;  ///< an (implied) empty clause was derived
  std::string error;          ///< first failure, human-readable
};

/// Forward RUP checker for a DRAT trace against the original formula.
///
/// Maintains the clause database (formula + added - deleted); for every
/// addition line it asserts the negation of the clause and runs unit
/// propagation over the database, demanding a conflict; deletion lines
/// must name a clause currently in the database (this solver's traces are
/// exact, so the checker is deliberately strict where standard DRAT
/// checkers skip unknown deletions). O(lines × database) — a test-sized
/// checker, not a competition one.
DratCheckResult check_drat(int num_vars, const std::vector<LitVec>& formula,
                           const DratTrace& trace);

}  // namespace step::sat
