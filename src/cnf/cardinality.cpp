#include "cnf/cardinality.h"

#include "common/check.h"

namespace step::cnf {

void at_least_one(ClauseSink& sink, std::span<const sat::Lit> lits) {
  STEP_CHECK(!lits.empty());
  sink.add_clause(lits);
}

void at_most_one_pairwise(ClauseSink& sink, std::span<const sat::Lit> lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      sink.add_binary(~lits[i], ~lits[j]);
    }
  }
}

void at_most_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k) {
  const int n = static_cast<int>(lits.size());
  if (k < 0) {
    // Unsatisfiable bound: emit a contradiction.
    const sat::Var v = sink.new_var();
    sink.add_unit(sat::mk_lit(v));
    sink.add_unit(~sat::mk_lit(v));
    return;
  }
  if (k >= n) return;  // trivially satisfied
  if (k == 0) {
    for (sat::Lit l : lits) sink.add_unit(~l);
    return;
  }

  // Sinz sequential counter: s[i][j] = "at least j+1 of lits[0..i] true".
  // Register width k; overflow of the counter forbids the (k+1)-th literal.
  std::vector<std::vector<sat::Lit>> s(n);
  for (int i = 0; i < n - 1; ++i) {
    s[i].resize(k);
    for (int j = 0; j < k; ++j) s[i][j] = sat::mk_lit(sink.new_var());
  }
  // lits[0] -> s[0][0]
  sink.add_binary(~lits[0], s[0][0]);
  // ~s[0][j] for j >= 1
  for (int j = 1; j < k; ++j) sink.add_unit(~s[0][j]);
  for (int i = 1; i < n - 1; ++i) {
    // carry: s[i-1][j] -> s[i][j]
    for (int j = 0; j < k; ++j) sink.add_binary(~s[i - 1][j], s[i][j]);
    // increment: lits[i] & s[i-1][j-1] -> s[i][j]; base: lits[i] -> s[i][0]
    sink.add_binary(~lits[i], s[i][0]);
    for (int j = 1; j < k; ++j) {
      sink.add_ternary(~lits[i], ~s[i - 1][j - 1], s[i][j]);
    }
    // overflow: lits[i] & s[i-1][k-1] -> false
    sink.add_binary(~lits[i], ~s[i - 1][k - 1]);
  }
  if (n >= 2) sink.add_binary(~lits[n - 1], ~s[n - 2][k - 1]);
}

void at_least_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k) {
  if (k <= 0) return;
  const int n = static_cast<int>(lits.size());
  sat::LitVec neg(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) neg[i] = ~lits[i];
  at_most_k(sink, neg, n - k);
}

void diff_at_most_k(ClauseSink& sink, std::span<const sat::Lit> pos,
                    std::span<const sat::Lit> neg, int k) {
  sat::LitVec all(pos.begin(), pos.end());
  for (sat::Lit l : neg) all.push_back(~l);
  at_most_k(sink, all, k + static_cast<int>(neg.size()));
}

void diff_non_negative(ClauseSink& sink, std::span<const sat::Lit> pos,
                       std::span<const sat::Lit> neg) {
  // sum(neg) − sum(pos) <= 0
  diff_at_most_k(sink, neg, pos, 0);
}

}  // namespace step::cnf
