#include "benchgen/generators.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/suite.h"
#include "core/relaxation.h"

namespace step::benchgen {
namespace {

std::uint64_t out_bits(const aig::Aig& a, std::uint64_t input_rows,
                       std::uint32_t output) {
  // Drives each input with one bit per "row" packed in a word per input;
  // here: one scenario only (scalar 0/1 inputs broadcast).
  std::vector<std::uint64_t> stim(a.num_inputs());
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    stim[i] = ((input_rows >> i) & 1ULL) ? ~0ULL : 0;
  }
  return aig::simulate(a, stim)[output] & 1ULL;
}

TEST(Generators, RippleAdderAddsExhaustively) {
  const int n = 4;
  const aig::Aig add = ripple_adder(n);
  ASSERT_EQ(add.num_inputs(), 2u * n + 1);
  ASSERT_EQ(add.num_outputs(), static_cast<std::uint32_t>(n + 1));
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      for (int cin = 0; cin < 2; ++cin) {
        const std::uint64_t rows =
            static_cast<std::uint64_t>(a) |
            (static_cast<std::uint64_t>(b) << n) |
            (static_cast<std::uint64_t>(cin) << (2 * n));
        int sum = 0;
        for (int i = 0; i <= n; ++i) {
          sum |= static_cast<int>(out_bits(add, rows, i)) << i;
        }
        EXPECT_EQ(sum, a + b + cin);
      }
    }
  }
}

TEST(Generators, CarrySelectMatchesRipple) {
  const aig::Aig r = ripple_adder(6);
  const aig::Aig c = carry_select_adder(6, 2);
  ASSERT_EQ(r.num_inputs(), c.num_inputs());
  ASSERT_EQ(r.num_outputs(), c.num_outputs());
  std::vector<std::uint64_t> stim(r.num_inputs());
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (auto& w : stim) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    w = x;
  }
  EXPECT_EQ(aig::simulate(r, stim), aig::simulate(c, stim));
}

TEST(Generators, MultiplierMultipliesExhaustively) {
  const int n = 3;
  const aig::Aig mul = array_multiplier(n);
  for (int a = 0; a < 8; ++a) {
    for (int b = 0; b < 8; ++b) {
      const std::uint64_t rows = static_cast<std::uint64_t>(a) |
                                 (static_cast<std::uint64_t>(b) << n);
      int p = 0;
      for (int i = 0; i < 2 * n; ++i) {
        p |= static_cast<int>(out_bits(mul, rows, i)) << i;
      }
      EXPECT_EQ(p, a * b) << a << "*" << b;
    }
  }
}

TEST(Generators, ComparatorFlags) {
  const int n = 4;
  const aig::Aig cmp = comparator(n);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      const std::uint64_t rows = static_cast<std::uint64_t>(a) |
                                 (static_cast<std::uint64_t>(b) << n);
      EXPECT_EQ(out_bits(cmp, rows, 0), static_cast<std::uint64_t>(a == b));
      EXPECT_EQ(out_bits(cmp, rows, 1), static_cast<std::uint64_t>(a < b));
      EXPECT_EQ(out_bits(cmp, rows, 2), static_cast<std::uint64_t>(a > b));
    }
  }
}

TEST(Generators, PriorityEncoderOneHot) {
  const int n = 6;
  const aig::Aig pri = priority_encoder(n);
  for (int req = 0; req < 64; ++req) {
    int grants = 0;
    for (int i = 0; i < n; ++i) {
      grants |= static_cast<int>(out_bits(pri, req, i)) << i;
    }
    if (req == 0) {
      EXPECT_EQ(grants, 0);
      EXPECT_EQ(out_bits(pri, req, n), 0u);  // valid
    } else {
      EXPECT_EQ(grants, req & -req);  // lowest set bit wins
      EXPECT_EQ(out_bits(pri, req, n), 1u);
    }
  }
}

TEST(Generators, MajorityCountsVotes) {
  const aig::Aig maj = majority(5);
  for (int m = 0; m < 32; ++m) {
    EXPECT_EQ(out_bits(maj, m, 0),
              static_cast<std::uint64_t>(__builtin_popcount(m) >= 3));
  }
}

TEST(Generators, BarrelRotatorRotates) {
  const int n = 8;
  const aig::Aig rot = barrel_rotator(n);
  for (int data = 0; data < 256; data += 37) {
    for (int amt = 0; amt < n; ++amt) {
      const std::uint64_t rows = static_cast<std::uint64_t>(data) |
                                 (static_cast<std::uint64_t>(amt) << n);
      int out = 0;
      for (int i = 0; i < n; ++i) {
        out |= static_cast<int>(out_bits(rot, rows, i)) << i;
      }
      const int expect = ((data >> amt) | (data << (n - amt))) & 0xff;
      EXPECT_EQ(out, amt == 0 ? data : expect) << "data=" << data << " amt=" << amt;
    }
  }
}

TEST(Generators, CounterIncrements) {
  const int n = 5;
  const aig::Aig cnt = counter_next(n);
  for (int q = 0; q < 32; ++q) {
    for (int en = 0; en < 2; ++en) {
      const std::uint64_t rows = static_cast<std::uint64_t>(q) |
                                 (static_cast<std::uint64_t>(en) << n);
      int next = 0;
      for (int i = 0; i < n; ++i) {
        next |= static_cast<int>(out_bits(cnt, rows, i)) << i;
      }
      EXPECT_EQ(next, en ? (q + 1) % 32 : q);
      EXPECT_EQ(out_bits(cnt, rows, n),
                static_cast<std::uint64_t>(en == 1 && q == 31));
    }
  }
}

TEST(Generators, GrayNextIsGrayIncrement) {
  const int n = 4;
  const aig::Aig g = gray_next(n);
  auto to_gray = [](int b) { return b ^ (b >> 1); };
  for (int b = 0; b < 16; ++b) {
    const int cur = to_gray(b);
    const int expect = to_gray((b + 1) % 16);
    int next = 0;
    for (int i = 0; i < n; ++i) {
      next |= static_cast<int>(out_bits(g, cur, i)) << i;
    }
    EXPECT_EQ(next, expect) << "b=" << b;
  }
}

TEST(Generators, LfsrShiftsAndFeedsBack) {
  const aig::Aig l = lfsr_next(5, 0b10010);
  for (int q : {1, 7, 19, 31}) {
    int next = 0;
    for (int i = 0; i < 5; ++i) {
      next |= static_cast<int>(out_bits(l, q, i)) << i;
    }
    const int fb = (__builtin_popcount(q & 0b10010) & 1);
    const int expect = ((q << 1) & 0b11110) | fb;
    EXPECT_EQ(next, expect);
  }
}

TEST(Generators, RandomDagIsDeterministic) {
  const aig::Aig a = random_dag(10, 40, 8, 12345);
  const aig::Aig b = random_dag(10, 40, 8, 12345);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  std::vector<std::uint64_t> stim(10, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(aig::simulate(a, stim), aig::simulate(b, stim));
  const aig::Aig c = random_dag(10, 40, 8, 54321);
  EXPECT_NE(aig::simulate(a, stim), aig::simulate(c, stim));
}

TEST(Generators, MergeKeepsPartsIndependent) {
  const aig::Aig m = merge({parity_tree(3), comparator(2)});
  EXPECT_EQ(m.num_inputs(), 3u + 4u);
  EXPECT_EQ(m.num_outputs(), 1u + 3u);
  // Parity output only depends on the first three inputs.
  const core::Cone cone = core::extract_po_cone(m, 0);
  EXPECT_EQ(cone.n(), 3);
}

TEST(Suite, AllScalesProduceCircuits) {
  for (SuiteScale s : {SuiteScale::kTiny, SuiteScale::kSmall, SuiteScale::kFull}) {
    const auto suite = standard_suite(s);
    EXPECT_GE(suite.size(), 6u);
    for (const BenchCircuit& c : suite) {
      EXPECT_FALSE(c.name.empty());
      EXPECT_FALSE(c.standin_for.empty());
      EXPECT_GT(c.aig.num_outputs(), 0u);
      EXPECT_GT(c.aig.num_inputs(), 0u);
    }
  }
}

TEST(Suite, SmallSuiteSupportsSpanWideRange) {
  int max_support = 0;
  for (const BenchCircuit& c : standard_suite(SuiteScale::kSmall)) {
    for (std::uint32_t po = 0; po < c.aig.num_outputs(); ++po) {
      const core::Cone cone = core::extract_po_cone(c.aig, po);
      max_support = std::max(max_support, cone.n());
    }
  }
  EXPECT_GE(max_support, 15);  // the paper's #InM > 30 scaled down
}

}  // namespace
}  // namespace step::benchgen
