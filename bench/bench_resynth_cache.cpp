// Recursive-resynthesis bench: area/depth deltas of the decomposition
// trees and the hit rate of the shared NPN-canonical cache, per suite
// circuit. Every circuit is resynthesized three times — cold (no cache),
// with a per-circuit cache, and in don't-care mode (sibling-ODC care
// sets, SAT-verified netlist) — so the JSON artifact carries the quality
// numbers, the cache effectiveness, and the DC area delta side by side.
//
//   $ STEP_BENCH_SCALE=tiny ./bench_resynth_cache -j 2 --json out.json

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace step;
  using core::CircuitResynthResult;

  const benchgen::SuiteScale scale = benchgen::scale_from_env();
  const bench::BenchBudgets budgets = bench::budgets_for(scale);
  const core::ParallelDriverOptions par =
      bench::parallel_from_env_or_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::vector<benchgen::BenchCircuit> suite =
      benchgen::standard_suite(scale);

  bench::print_preamble("recursive resynthesis + decomposition cache", scale);
  std::printf("%-10s %5s %7s %7s %7s %7s %7s %8s %8s %9s\n", "circuit", "pos",
              "ands0", "ands1", "andsDC", "depth0", "depth1", "hits", "hit%",
              "cpu(s)");

  FILE* jf = json_path.empty() ? nullptr : std::fopen(json_path.c_str(), "w");
  if (!json_path.empty() && jf == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  bench::JsonWriter j(jf == nullptr ? stdout : jf);
  if (jf != nullptr) {
    j.begin_object();
    j.kv("bench", "resynth_cache");
    j.kv("scale", bench::scale_name(scale));
    j.kv("threads", par.num_threads);
    j.key("circuits");
    j.begin_array();
  }

  core::SynthesisOptions opts;
  opts.engine = core::Engine::kMg;  // fast heuristic splits at every node
  opts.pick_best_op = true;
  opts.per_node.po_budget_s = budgets.po_s;

  for (const benchgen::BenchCircuit& c : suite) {
    opts.cache = nullptr;
    const CircuitResynthResult cold =
        core::run_circuit_resynth(c.aig, c.name, opts, budgets.circuit_s, par);

    core::DecCache cache;
    opts.cache = &cache;
    const CircuitResynthResult warm =
        core::run_circuit_resynth(c.aig, c.name, opts, budgets.circuit_s, par);

    // Don't-care mode, cache off (DC nodes never insert, so a shared
    // cache would only blur the comparison), netlist SAT-verified.
    opts.cache = nullptr;
    opts.use_dont_cares = true;
    const CircuitResynthResult dc = core::run_circuit_resynth(
        c.aig, c.name, opts, budgets.circuit_s, par, /*verify=*/true);
    opts.use_dont_cares = false;

    std::printf("%-10s %5zu %7u %7u %7u %7d %7d %8llu %7.1f%% %9.3f\n",
                c.name.c_str(), warm.pos.size(), warm.stats.ands_before,
                warm.stats.ands_after, dc.stats.ands_after,
                warm.stats.depth_before, warm.stats.depth_after,
                static_cast<unsigned long long>(warm.cache.hits()),
                100.0 * warm.cache.hit_rate(), warm.total_cpu_s);
    if (!dc.all_verified) {
      std::fprintf(stderr, "DC resynthesis of %s failed verification\n",
                   c.name.c_str());
      return 1;
    }

    if (jf != nullptr) {
      j.begin_object();
      j.kv("circuit", c.name);
      j.kv("standin_for", c.standin_for);
      j.kv("pos", static_cast<long long>(warm.pos.size()));
      j.kv("ands_before", static_cast<long long>(warm.stats.ands_before));
      j.kv("ands_after", static_cast<long long>(warm.stats.ands_after));
      // Cache-off reference: the DC run also runs cache-off, so this is
      // the like-for-like baseline its area is gated against in CI.
      j.kv("ands_after_cold", static_cast<long long>(cold.stats.ands_after));
      j.kv("depth_before", warm.stats.depth_before);
      j.kv("depth_after", warm.stats.depth_after);
      j.kv("splits_cold", cold.stats.decompositions);
      j.kv("splits_cached", warm.stats.decompositions);
      j.kv("cpu_cold_s", cold.total_cpu_s);
      j.kv("cpu_cached_s", warm.total_cpu_s);
      j.kv("hit_budget", warm.hit_circuit_budget);
      j.key("cache");
      j.begin_object();
      j.kv("lookups", warm.cache.lookups);
      j.kv("npn_hits", warm.cache.npn_hits);
      j.kv("sig_hits", warm.cache.sig_hits);
      j.kv("misses", warm.cache.misses);
      j.kv("insertions", warm.cache.insertions);
      j.kv("sat_confirms", warm.cache.sat_confirms);
      j.kv("sat_refutes", warm.cache.sat_refutes);
      j.kv("hit_rate", warm.cache.hit_rate());
      j.end_object();
      j.key("dc");
      j.begin_object();
      j.kv("ands_after", static_cast<long long>(dc.stats.ands_after));
      j.kv("depth_after", dc.stats.depth_after);
      j.kv("splits", dc.stats.decompositions);
      j.kv("care_nodes", dc.stats.dc_nodes);
      j.kv("care_constants", dc.stats.dc_constants);
      j.kv("verified", dc.all_verified);
      j.kv("cpu_s", dc.total_cpu_s);
      j.end_object();
      j.end_object();
    }
  }

  if (jf != nullptr) {
    j.end_array();
    j.end_object();
    std::fputc('\n', jf);
    std::fclose(jf);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
