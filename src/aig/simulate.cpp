#include "aig/simulate.h"

namespace step::aig {

namespace {

/// Sweeps all nodes once in id order (ids are topologically sorted).
std::vector<std::uint64_t> sweep(const Aig& a,
                                 const std::vector<std::uint64_t>& input_words) {
  STEP_CHECK(input_words.size() == a.num_inputs());
  std::vector<std::uint64_t> val(a.num_nodes(), 0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (a.is_input(n)) {
      val[n] = input_words[a.input_index(n)];
    } else {
      const Lit f0 = a.fanin0(n);
      const Lit f1 = a.fanin1(n);
      const std::uint64_t v0 =
          is_complemented(f0) ? ~val[node_of(f0)] : val[node_of(f0)];
      const std::uint64_t v1 =
          is_complemented(f1) ? ~val[node_of(f1)] : val[node_of(f1)];
      val[n] = v0 & v1;
    }
  }
  return val;
}

std::uint64_t edge_value(const std::vector<std::uint64_t>& val, Lit l) {
  return is_complemented(l) ? ~val[node_of(l)] : val[node_of(l)];
}

}  // namespace

std::vector<std::uint64_t> simulate(const Aig& a,
                                    const std::vector<std::uint64_t>& input_words) {
  const std::vector<std::uint64_t> val = sweep(a, input_words);
  std::vector<std::uint64_t> out(a.num_outputs());
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    out[i] = edge_value(val, a.output(i));
  }
  return out;
}

std::uint64_t simulate_cone(const Aig& a, Lit root,
                            const std::vector<std::uint64_t>& input_words) {
  const std::vector<std::uint64_t> val = sweep(a, input_words);
  return edge_value(val, root);
}

std::vector<std::uint64_t> simulate_nodes(
    const Aig& a, const std::vector<std::uint64_t>& input_words) {
  return sweep(a, input_words);
}

std::vector<std::uint64_t> truth_table(const Aig& a, Lit root,
                                       const std::vector<std::uint32_t>& support) {
  const std::size_t n = support.size();
  STEP_CHECK(n <= 20);
  const std::size_t rows = std::size_t{1} << n;
  const std::size_t words = tt_words(n);

  // The first six support variables follow the canonical word patterns;
  // the remaining ones alternate per word block.
  static constexpr std::uint64_t kPattern[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};

  std::vector<std::uint64_t> table(words, 0);
  std::vector<std::uint64_t> input_words(a.num_inputs(), 0);
  for (std::size_t w = 0; w < words; ++w) {
    for (std::size_t j = 0; j < n; ++j) {
      std::uint64_t v;
      if (j < 6) {
        v = kPattern[j];
      } else {
        v = ((w >> (j - 6)) & 1U) ? ~0ULL : 0ULL;
      }
      input_words[support[j]] = v;
    }
    table[w] = simulate_cone(a, root, input_words);
  }
  // Mask off unused rows for n < 6 so tables compare cleanly.
  if (n < 6) table[0] &= (rows == 64) ? ~0ULL : ((1ULL << rows) - 1);
  return table;
}

}  // namespace step::aig
