// Writer round-trip golden tests: recursive-decomposition-tree netlists
// rendered through blif_writer and verilog_writer must match the
// committed goldens byte for byte, and the BLIF must re-read to a circuit
// SAT-equivalent to the original. Regenerate with STEP_REGOLD=1 after an
// intentional change:
//   STEP_REGOLD=1 ./golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/verilog_writer.h"
#include "test_util.h"

namespace step {
namespace {

using testutil::circuits_equivalent;

std::string golden_path(const std::string& name) {
  return std::string(STEP_TEST_DATA_DIR) + "/golden/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The golden circuits: small, fully deterministic, covering XOR trees,
/// mux control sharing, and SOP-style cones (all three gate ops appear in
/// the resulting trees).
aig::Aig golden_circuit(const std::string& name) {
  if (name == "parity4") return benchgen::parity_tree(4);
  if (name == "mux2") return benchgen::mux_tree(2);
  return benchgen::random_sop(2, 2, 1, 3, 3, 0x901d);
}

/// Deterministic recursive resynthesis: sequential, MG partitions, cache
/// enabled (hits are deterministic in a single-threaded run).
aig::Aig resynth_network(const aig::Aig& circ) {
  core::SynthesisOptions opts;
  opts.engine = core::Engine::kMg;
  opts.pick_best_op = true;
  core::DecCache cache;
  opts.cache = &cache;
  const core::SynthesisResult r = core::resynthesize(circ, opts);
  return r.network;
}

class GoldenNetlist : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenNetlist, BlifAndVerilogMatchCommittedGoldens) {
  const std::string name = GetParam();
  const aig::Aig circ = golden_circuit(name);
  const aig::Aig net = resynth_network(circ);
  const std::string blif = io::write_blif(net, name);
  const std::string verilog = io::write_verilog(net, name);

  if (std::getenv("STEP_REGOLD") != nullptr) {
    std::ofstream(golden_path(name + ".blif")) << blif;
    std::ofstream(golden_path(name + ".v")) << verilog;
    GTEST_SKIP() << "regenerated goldens for " << name;
  }

  EXPECT_EQ(blif, slurp(golden_path(name + ".blif")))
      << name << ".blif drifted; run STEP_REGOLD=1 ./golden_test if intended";
  EXPECT_EQ(verilog, slurp(golden_path(name + ".v")))
      << name << ".v drifted; run STEP_REGOLD=1 ./golden_test if intended";
}

TEST_P(GoldenNetlist, CommittedBlifRoundTripsToEquivalentCircuit) {
  // The committed golden itself must re-read (writer output stays within
  // the reader's dialect) and be SAT-equivalent to the source circuit —
  // this is the round-trip property, independent of byte equality.
  const std::string name = GetParam();
  const aig::Aig circ = golden_circuit(name);
  const std::string text = slurp(golden_path(name + ".blif"));
  ASSERT_FALSE(text.empty());
  const aig::Aig reread = io::parse_blif(text).to_aig();
  EXPECT_TRUE(circuits_equivalent(circ, reread)) << name;
}

TEST_P(GoldenNetlist, FreshResynthesisRoundTripsThroughBlif) {
  const std::string name = GetParam();
  const aig::Aig circ = golden_circuit(name);
  const aig::Aig net = resynth_network(circ);
  const aig::Aig reread = io::parse_blif(io::write_blif(net, name)).to_aig();
  EXPECT_TRUE(circuits_equivalent(circ, reread)) << name;
}

INSTANTIATE_TEST_SUITE_P(Circuits, GoldenNetlist,
                         ::testing::Values("parity4", "mux2", "sop3"));

}  // namespace
}  // namespace step
