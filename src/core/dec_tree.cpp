#include "core/dec_tree.h"

#include <algorithm>

#include "aig/ops.h"

namespace step::core {

namespace {

/// Longest AND-gate path from any input to `root` (local helper; the
/// public cone_depth lives in core/synthesis.h).
int aig_depth(const aig::Aig& a, aig::Lit root) {
  std::vector<int> level(a.num_nodes(), 0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    level[n] = 1 + std::max(level[aig::node_of(a.fanin0(n))],
                            level[aig::node_of(a.fanin1(n))]);
  }
  return level[aig::node_of(root)];
}

/// Accumulates stats over node `idx`; returns the node's depth.
int stats_walk(const DecTree& t, int idx, DecTreeStats& s) {
  const DecTreeNode& node = t.nodes[idx];
  switch (node.kind) {
    case DecTreeNode::Kind::kConst:
      ++s.const_leaves;
      return 0;
    case DecTreeNode::Kind::kLiteral:
      ++s.literal_leaves;
      return 0;
    case DecTreeNode::Kind::kGate: {
      ++s.gates;
      const int d0 = stats_walk(t, node.child0, s);
      const int d1 = stats_walk(t, node.child1, s);
      return 1 + std::max(d0, d1);
    }
    case DecTreeNode::Kind::kCone:
      ++s.cone_leaves;
      s.cone_ands += node.cone_aig.cone_size(node.cone_root);
      return aig_depth(node.cone_aig, node.cone_root);
    case DecTreeNode::Kind::kShared: {
      DecTreeStats sub = node.shared->stats();
      s.gates += sub.gates;
      s.cone_leaves += sub.cone_leaves;
      s.literal_leaves += sub.literal_leaves;
      s.const_leaves += sub.const_leaves;
      s.cone_ands += sub.cone_ands;
      return sub.depth;
    }
  }
  return 0;
}

aig::Lit emit_node(const DecTree& t, int idx, aig::Aig& dst,
                   const std::vector<aig::Lit>& input_map) {
  const DecTreeNode& node = t.nodes[idx];
  switch (node.kind) {
    case DecTreeNode::Kind::kConst:
      return node.value ? aig::kLitTrue : aig::kLitFalse;
    case DecTreeNode::Kind::kLiteral: {
      const aig::Lit l = input_map[node.input];
      return node.negated ? aig::lnot(l) : l;
    }
    case DecTreeNode::Kind::kGate: {
      const aig::Lit a = emit_node(t, node.child0, dst, input_map);
      const aig::Lit b = emit_node(t, node.child1, dst, input_map);
      switch (node.op) {
        case GateOp::kOr: return dst.lor(a, b);
        case GateOp::kAnd: return dst.land(a, b);
        case GateOp::kXor: return dst.lxor(a, b);
      }
      return aig::kLitFalse;
    }
    case DecTreeNode::Kind::kCone: {
      std::vector<aig::Lit> map(node.inputs.size());
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        map[i] = input_map[node.inputs[i]];
      }
      return aig::copy_cone(node.cone_aig, node.cone_root, dst, map);
    }
    case DecTreeNode::Kind::kShared: {
      std::vector<aig::Lit> map(node.inputs.size());
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        map[i] = input_map[node.inputs[i]];
        // input_neg only carries bits for NPN-cache hits (n <= 6); wider
        // shared nodes must not shift past the mask width (UB).
        if (i < 32 && ((node.input_neg >> i) & 1U) != 0) {
          map[i] = aig::lnot(map[i]);
        }
      }
      const aig::Lit l = emit_tree(*node.shared, dst, map);
      return node.output_neg ? aig::lnot(l) : l;
    }
  }
  return aig::kLitFalse;
}

}  // namespace

DecTreeStats DecTree::stats() const {
  DecTreeStats s;
  if (root >= 0) s.depth = stats_walk(*this, root, s);
  return s;
}

aig::Lit emit_tree(const DecTree& t, aig::Aig& dst,
                   const std::vector<aig::Lit>& input_map) {
  STEP_CHECK(t.root >= 0);
  STEP_CHECK(static_cast<int>(input_map.size()) >= t.n);
  return emit_node(t, t.root, dst, input_map);
}

}  // namespace step::core
