#include "benchgen/generators.h"

#include <string>

#include "aig/ops.h"
#include "common/check.h"
#include "common/rng.h"

namespace step::benchgen {

namespace {

using aig::Aig;
using aig::Lit;

std::vector<Lit> add_inputs(Aig& a, const char* prefix, int n) {
  std::vector<Lit> v(n);
  for (int i = 0; i < n; ++i) {
    v[i] = a.add_input(std::string(prefix) + std::to_string(i));
  }
  return v;
}

/// Full adder: returns {sum, carry}.
std::pair<Lit, Lit> full_adder(Aig& a, Lit x, Lit y, Lit cin) {
  const Lit s = a.lxor(a.lxor(x, y), cin);
  const Lit c = a.lor(a.land(x, y), a.land(cin, a.lxor(x, y)));
  return {s, c};
}

/// Ripple chain over pre-existing literals; returns sums + final carry.
std::pair<std::vector<Lit>, Lit> ripple_chain(Aig& a, const std::vector<Lit>& x,
                                              const std::vector<Lit>& y, Lit cin) {
  STEP_CHECK(x.size() == y.size());
  std::vector<Lit> sum(x.size());
  Lit c = cin;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [s, co] = full_adder(a, x[i], y[i], c);
    sum[i] = s;
    c = co;
  }
  return {sum, c};
}

int ceil_log2(int n) {
  int bits = 0;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

Aig ripple_adder(int n) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);
  const Lit cin = a.add_input("cin");
  auto [sum, cout] = ripple_chain(a, x, y, cin);
  for (int i = 0; i < n; ++i) a.add_output(sum[i], "sum" + std::to_string(i));
  a.add_output(cout, "cout");
  return a;
}

Aig carry_select_adder(int n, int block) {
  STEP_CHECK(block >= 1);
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);
  const Lit cin = a.add_input("cin");

  std::vector<Lit> sum(n);
  Lit carry = cin;
  for (int base = 0; base < n; base += block) {
    const int w = std::min(block, n - base);
    const std::vector<Lit> xs(x.begin() + base, x.begin() + base + w);
    const std::vector<Lit> ys(y.begin() + base, y.begin() + base + w);
    // Two speculative ripples, then select on the incoming carry.
    auto [s0, c0] = ripple_chain(a, xs, ys, aig::kLitFalse);
    auto [s1, c1] = ripple_chain(a, xs, ys, aig::kLitTrue);
    for (int i = 0; i < w; ++i) {
      sum[base + i] = a.lmux(carry, s1[i], s0[i]);
    }
    carry = a.lmux(carry, c1, c0);
  }
  for (int i = 0; i < n; ++i) a.add_output(sum[i], "sum" + std::to_string(i));
  a.add_output(carry, "cout");
  return a;
}

Aig array_multiplier(int n) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);

  std::vector<Lit> acc(2 * n, aig::kLitFalse);
  for (int j = 0; j < n; ++j) {
    // Add x * y_j shifted by j into the accumulator, rippling carries.
    Lit carry = aig::kLitFalse;
    for (int i = 0; i < n; ++i) {
      const Lit pp = a.land(x[i], y[j]);
      auto [s, c] = full_adder(a, acc[i + j], pp, carry);
      acc[i + j] = s;
      carry = c;
    }
    // Propagate the final carry up.
    for (int k = n + j; k < 2 * n && carry != aig::kLitFalse; ++k) {
      const Lit s = a.lxor(acc[k], carry);
      carry = a.land(acc[k], carry);
      acc[k] = s;
    }
  }
  for (int i = 0; i < 2 * n; ++i) a.add_output(acc[i], "p" + std::to_string(i));
  return a;
}

Aig alu(int n) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);
  const std::vector<Lit> op = add_inputs(a, "op", 3);

  auto [sum, carry_add] = ripple_chain(a, x, y, aig::kLitFalse);
  // Subtraction: x + ~y + 1.
  std::vector<Lit> ny(n);
  for (int i = 0; i < n; ++i) ny[i] = aig::lnot(y[i]);
  auto [diff, carry_sub] = ripple_chain(a, x, ny, aig::kLitTrue);

  // lt / eq comparisons.
  Lit eq = aig::kLitTrue;
  for (int i = 0; i < n; ++i) eq = a.land(eq, a.lxnor(x[i], y[i]));
  const Lit lt = aig::lnot(carry_sub);  // unsigned borrow

  // Result mux over the opcode.
  std::vector<Lit> result(n);
  for (int i = 0; i < n; ++i) {
    const Lit land_i = a.land(x[i], y[i]);
    const Lit lor_i = a.lor(x[i], y[i]);
    const Lit lxor_i = a.lxor(x[i], y[i]);
    const Lit r0 = a.lmux(op[0], lor_i, land_i);     // 00x: and / or
    const Lit r1 = a.lmux(op[0], sum[i], lxor_i);    // 01x: xor / add
    const Lit r2 = a.lmux(op[0], i == 0 ? lt : aig::kLitFalse, diff[i]);
    const Lit r3 = a.lmux(op[0], x[i], i == 0 ? eq : aig::kLitFalse);
    const Lit lo = a.lmux(op[1], r1, r0);
    const Lit hi = a.lmux(op[1], r3, r2);
    result[i] = a.lmux(op[2], hi, lo);
  }
  for (int i = 0; i < n; ++i) a.add_output(result[i], "r" + std::to_string(i));
  a.add_output(carry_add, "cout");
  a.add_output(eq, "eq");
  a.add_output(lt, "lt");
  return a;
}

Aig comparator(int n) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);
  Lit eq = aig::kLitTrue;
  Lit lt = aig::kLitFalse;
  for (int i = n - 1; i >= 0; --i) {  // MSB first
    lt = a.lor(lt, a.land(eq, a.land(aig::lnot(x[i]), y[i])));
    eq = a.land(eq, a.lxnor(x[i], y[i]));
  }
  const Lit gt = a.land(aig::lnot(eq), aig::lnot(lt));
  a.add_output(eq, "eq");
  a.add_output(lt, "lt");
  a.add_output(gt, "gt");
  return a;
}

Aig parity_tree(int n) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "x", n);
  a.add_output(a.lxor_many(x), "parity");
  return a;
}

Aig mux_tree(int sel_bits) {
  Aig a;
  const int n = 1 << sel_bits;
  const std::vector<Lit> d = add_inputs(a, "d", n);
  const std::vector<Lit> s = add_inputs(a, "s", sel_bits);
  std::vector<Lit> level = d;
  for (int b = 0; b < sel_bits; ++b) {
    std::vector<Lit> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = a.lmux(s[b], level[2 * i + 1], level[2 * i]);
    }
    level = std::move(next);
  }
  a.add_output(level[0], "out");
  return a;
}

Aig priority_encoder(int n) {
  Aig a;
  const std::vector<Lit> req = add_inputs(a, "req", n);
  Lit none_above = aig::kLitTrue;
  std::vector<Lit> grant(n);
  for (int i = 0; i < n; ++i) {
    grant[i] = a.land(req[i], none_above);
    none_above = a.land(none_above, aig::lnot(req[i]));
  }
  for (int i = 0; i < n; ++i) a.add_output(grant[i], "g" + std::to_string(i));
  a.add_output(aig::lnot(none_above), "valid");
  return a;
}

Aig decoder(int addr_bits) {
  Aig a;
  const std::vector<Lit> addr = add_inputs(a, "addr", addr_bits);
  const Lit en = a.add_input("en");
  const int n = 1 << addr_bits;
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> terms{en};
    for (int b = 0; b < addr_bits; ++b) {
      terms.push_back(((i >> b) & 1) != 0 ? addr[b] : aig::lnot(addr[b]));
    }
    a.add_output(a.land_many(terms), "y" + std::to_string(i));
  }
  return a;
}

Aig barrel_rotator(int n) {
  Aig a;
  const std::vector<Lit> d = add_inputs(a, "d", n);
  const int sb = ceil_log2(n);
  const std::vector<Lit> s = add_inputs(a, "s", sb);
  std::vector<Lit> cur = d;
  for (int b = 0; b < sb; ++b) {
    const int shift = 1 << b;
    std::vector<Lit> next(n);
    for (int i = 0; i < n; ++i) {
      next[i] = a.lmux(s[b], cur[(i + shift) % n], cur[i]);
    }
    cur = std::move(next);
  }
  for (int i = 0; i < n; ++i) a.add_output(cur[i], "out" + std::to_string(i));
  return a;
}

Aig random_dag(int n_in, int n_and, int n_out, std::uint64_t seed) {
  Aig a;
  Rng rng(seed);
  std::vector<Lit> pool = add_inputs(a, "x", n_in);
  for (int g = 0; g < n_and; ++g) {
    // Bias fanin choice towards recent nodes for deep, narrow cones.
    auto pick = [&]() -> Lit {
      const int m = static_cast<int>(pool.size());
      const int lo = rng.next_bool() ? std::max(0, m - 2 * n_in) : 0;
      Lit l = pool[rng.next_int(lo, m - 1)];
      return rng.next_bool() ? aig::lnot(l) : l;
    };
    Lit v = a.land(pick(), pick());
    pool.push_back(v);
  }
  for (int o = 0; o < n_out; ++o) {
    const int m = static_cast<int>(pool.size());
    const int lo = std::max(0, m - 3 * n_out);
    Lit l = pool[rng.next_int(lo, m - 1)];
    a.add_output(rng.next_bool() ? aig::lnot(l) : l, "y" + std::to_string(o));
  }
  return a;
}

Aig random_sop(int n_a, int n_b, int n_c, int n_out, int cubes_per_out,
               std::uint64_t seed) {
  Aig a;
  Rng rng(seed);
  const std::vector<Lit> va = add_inputs(a, "a", n_a);
  const std::vector<Lit> vb = add_inputs(a, "b", n_b);
  const std::vector<Lit> vc = add_inputs(a, "c", n_c);

  auto pick_from = [&](const std::vector<Lit>& group, std::vector<Lit>& cube) {
    const Lit l = group[rng.next_below(group.size())];
    cube.push_back(rng.next_bool() ? aig::lnot(l) : l);
  };
  for (int o = 0; o < n_out; ++o) {
    std::vector<Lit> cubes;
    for (int k = 0; k < cubes_per_out; ++k) {
      // Each cube sits on one side of the intended partition.
      const std::vector<Lit>& side = rng.next_bool() ? va : vb;
      std::vector<Lit> cube;
      const int w_side = rng.next_int(1, 3);
      const int w_c = n_c > 0 ? rng.next_int(0, 2) : 0;
      for (int j = 0; j < w_side; ++j) pick_from(side, cube);
      for (int j = 0; j < w_c; ++j) pick_from(vc, cube);
      cubes.push_back(a.land_many(cube));
    }
    a.add_output(a.lor_many(cubes), "f" + std::to_string(o));
  }
  return a;
}

Aig lfsr_next(int n, std::uint64_t taps) {
  Aig a;
  const std::vector<Lit> st = add_inputs(a, "q", n);
  std::vector<Lit> fb_terms;
  for (int i = 0; i < n; ++i) {
    if ((taps >> i) & 1ULL) fb_terms.push_back(st[i]);
  }
  const Lit fb = a.lxor_many(fb_terms);
  a.add_output(fb, "n0");
  for (int i = 1; i < n; ++i) a.add_output(st[i - 1], "n" + std::to_string(i));
  return a;
}

Aig counter_next(int n) {
  Aig a;
  const std::vector<Lit> st = add_inputs(a, "q", n);
  const Lit en = a.add_input("en");
  Lit carry = en;
  for (int i = 0; i < n; ++i) {
    a.add_output(a.lxor(st[i], carry), "n" + std::to_string(i));
    carry = a.land(carry, st[i]);
  }
  a.add_output(carry, "ovf");
  return a;
}

Aig gray_next(int n) {
  Aig a;
  const std::vector<Lit> g = add_inputs(a, "g", n);
  // Convert Gray -> binary, increment, convert back.
  std::vector<Lit> bin(n);
  bin[n - 1] = g[n - 1];
  for (int i = n - 2; i >= 0; --i) bin[i] = a.lxor(bin[i + 1], g[i]);
  std::vector<Lit> inc(n);
  Lit carry = aig::kLitTrue;
  for (int i = 0; i < n; ++i) {
    inc[i] = a.lxor(bin[i], carry);
    carry = a.land(carry, bin[i]);
  }
  for (int i = 0; i < n; ++i) {
    const Lit hi = (i + 1 < n) ? inc[i + 1] : aig::kLitFalse;
    a.add_output(a.lxor(inc[i], hi), "n" + std::to_string(i));
  }
  return a;
}

Aig majority(int n) {
  STEP_CHECK(n % 2 == 1);
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "x", n);
  // Unary counting network: sorted[i] = "at least i+1 inputs are 1".
  std::vector<Lit> sorted;
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> next(sorted.size() + 1);
    for (std::size_t j = 0; j < next.size(); ++j) {
      const Lit keep = j < sorted.size() ? sorted[j] : aig::kLitFalse;
      const Lit inc = j == 0 ? aig::kLitTrue : sorted[j - 1];
      next[j] = a.lmux(x[i], inc, keep);
    }
    sorted = std::move(next);
  }
  a.add_output(sorted[n / 2], "maj");
  return a;
}

Aig implied_majority(int groups) {
  STEP_CHECK(groups >= 1);
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "x", 3 * groups);
  std::vector<Lit> pos;
  for (int g = 0; g < groups; ++g) {
    const Lit x1 = x[3 * g], x2 = x[3 * g + 1], x3 = x[3 * g + 2];
    // Implied internal signals: g1 ⇒ g3, g2 ⇒ g3.
    const Lit g1 = a.land(x1, x2);
    const Lit g3 = a.lor(x1, x2);
    const Lit g2 = a.land(x3, g3);
    // MAJ(g1, g2, g3), kept structural so a depth-bounded cut lands on
    // the implied signals (or on x1, x2, x3 plus the shared OR node —
    // both cuts have SDCs).
    const Lit maj = a.lor(a.land(g1, g2), a.land(g3, a.lor(g1, g2)));
    pos.push_back(maj);
    a.add_output(maj, "maj" + std::to_string(g));
  }
  a.add_output(a.lxor_many(pos), "chk");
  return a;
}

Aig hamming_ge(int n, int t) {
  Aig a;
  const std::vector<Lit> x = add_inputs(a, "a", n);
  const std::vector<Lit> y = add_inputs(a, "b", n);
  std::vector<Lit> sorted;
  for (int i = 0; i < n; ++i) {
    const Lit d = a.lxor(x[i], y[i]);
    std::vector<Lit> next(sorted.size() + 1);
    for (std::size_t j = 0; j < next.size(); ++j) {
      const Lit keep = j < sorted.size() ? sorted[j] : aig::kLitFalse;
      const Lit inc = j == 0 ? aig::kLitTrue : sorted[j - 1];
      next[j] = a.lmux(d, inc, keep);
    }
    sorted = std::move(next);
  }
  STEP_CHECK(t >= 1 && t <= n);
  a.add_output(sorted[t - 1], "ge");
  return a;
}

const char* embedded_c17_blif() {
  // ISCAS'85 C17: six NAND2 gates; nets named as in the original netlist.
  return ".model c17\n"
         ".inputs G1 G2 G3 G6 G7\n"
         ".outputs G22 G23\n"
         ".names G1 G3 G10\n0- 1\n-0 1\n"
         ".names G3 G6 G11\n0- 1\n-0 1\n"
         ".names G2 G11 G16\n0- 1\n-0 1\n"
         ".names G11 G7 G19\n0- 1\n-0 1\n"
         ".names G10 G16 G22\n0- 1\n-0 1\n"
         ".names G16 G19 G23\n0- 1\n-0 1\n"
         ".end\n";
}

Aig merge(const std::vector<Aig>& parts) {
  Aig a;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const Aig& src = parts[p];
    const std::string prefix = "m" + std::to_string(p) + "_";
    std::vector<Lit> input_map(src.num_inputs());
    for (std::uint32_t i = 0; i < src.num_inputs(); ++i) {
      input_map[i] = a.add_input(prefix + src.input_name(i));
    }
    for (std::uint32_t o = 0; o < src.num_outputs(); ++o) {
      const Lit l = aig::copy_cone(src, src.output(o), a, input_map);
      a.add_output(l, prefix + src.output_name(o));
    }
  }
  return a;
}

}  // namespace step::benchgen
