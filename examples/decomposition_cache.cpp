// The NPN-canonical decomposition cache in action: a circuit whose POs
// contain repeated (and input-permuted / complemented) cones is
// recursively resynthesized twice — cold and cache-backed — showing that
// equivalent cones decompose once and every later occurrence is served by
// rewiring the cached tree (see core/dec_cache.h).
//
//   $ ./decomposition_cache [mg|qd|qb|qdb]

#include <cstdio>
#include <cstring>

#include "benchgen/generators.h"
#include "core/circuit_driver.h"

int main(int argc, char** argv) {
  using namespace step;

  core::Engine engine = core::Engine::kMg;
  if (argc > 1) {
    if (std::strcmp(argv[1], "qd") == 0) engine = core::Engine::kQbfDisjoint;
    if (std::strcmp(argv[1], "qb") == 0) engine = core::Engine::kQbfBalanced;
    if (std::strcmp(argv[1], "qdb") == 0) engine = core::Engine::kQbfCombined;
  }

  // Three copies of the same adder plus two comparators: the adders'
  // per-bit sum/carry cones repeat across parts and bit positions, so
  // after the first PO almost everything is a cache hit.
  const aig::Aig circ = benchgen::merge(
      {benchgen::ripple_adder(4), benchgen::ripple_adder(4),
       benchgen::ripple_adder(4), benchgen::comparator(3),
       benchgen::comparator(3)});
  std::printf("input: %u PIs, %u POs, %u AND gates\n", circ.num_inputs(),
              circ.num_outputs(), circ.num_ands());

  core::SynthesisOptions opts;
  opts.engine = engine;
  opts.pick_best_op = true;

  // Cold run: every cone is decomposed from scratch.
  const core::CircuitResynthResult cold =
      core::run_circuit_resynth(circ, "cold", opts, /*budget_s=*/120.0);
  std::printf("cold:   %d splits, %.3f s, ANDs %u -> %u, depth %d -> %d\n",
              cold.stats.decompositions, cold.total_cpu_s,
              cold.stats.ands_before, cold.stats.ands_after,
              cold.stats.depth_before, cold.stats.depth_after);

  // Cached run: one shared NPN-canonical store across all POs.
  core::DecCache cache;
  opts.cache = &cache;
  const core::CircuitResynthResult warm = core::run_circuit_resynth(
      circ, "cached", opts, /*budget_s=*/120.0, {}, /*verify=*/true);
  std::printf("cached: %d splits, %.3f s, %d cache hits\n",
              warm.stats.decompositions, warm.total_cpu_s,
              warm.stats.cache_hits);
  std::printf("cache:  %llu lookups, %llu NPN hits, %llu semantic hits"
              " (%.0f%% hit rate), %zu stored trees\n",
              static_cast<unsigned long long>(warm.cache.lookups),
              static_cast<unsigned long long>(warm.cache.npn_hits),
              static_cast<unsigned long long>(warm.cache.sig_hits),
              100.0 * warm.cache.hit_rate(), cache.size());
  std::printf("verify: %s\n", warm.all_verified
                                  ? "every PO SAT-proven equivalent"
                                  : "MISMATCH (bug!)");
  return warm.all_verified ? 0 : 1;
}
