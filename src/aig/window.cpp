#include "aig/window.h"

#include <algorithm>

#include "aig/ops.h"
#include "aig/simulate.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "sat/solver.h"

namespace step::aig {

namespace {

/// Minimum AND-depth of every node below `root`, bounded at `max_depth`
/// (nodes first reached at the bound are not expanded further).
std::vector<int> depth_from_root(const Aig& a, Lit root, int max_depth) {
  std::vector<int> depth(a.num_nodes(), -1);
  std::vector<std::uint32_t> frontier{node_of(root)};
  depth[node_of(root)] = 0;
  for (int d = 0; d < max_depth && !frontier.empty(); ++d) {
    std::vector<std::uint32_t> next;
    for (std::uint32_t n : frontier) {
      if (!a.is_and(n)) continue;
      for (const Lit f : {a.fanin0(n), a.fanin1(n)}) {
        const std::uint32_t c = node_of(f);
        if (depth[c] < 0) {
          depth[c] = d + 1;
          next.push_back(c);
        }
      }
    }
    frontier = std::move(next);
  }
  return depth;
}

struct CutInfo {
  int level = 0;
  std::vector<std::uint32_t> nodes;  ///< ascending node ids
  bool any_internal = false;         ///< at least one AND node in the cut
};

/// The cut at `level`: DFS from the root expanding AND nodes strictly
/// above the level; unexpanded reachable nodes form the cut. Returns
/// nullopt once the cut exceeds `max_width`.
std::optional<CutInfo> cut_at(const Aig& a, Lit root,
                              const std::vector<int>& depth, int level,
                              int max_width) {
  CutInfo ci;
  ci.level = level;
  std::vector<char> visited(a.num_nodes(), 0);
  std::vector<std::uint32_t> stack{node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    if (a.is_const(n)) continue;  // constants fold into the window copy
    if (a.is_and(n) && depth[n] >= 0 && depth[n] < level) {
      stack.push_back(node_of(a.fanin0(n)));
      stack.push_back(node_of(a.fanin1(n)));
      continue;
    }
    ci.nodes.push_back(n);
    if (a.is_and(n)) ci.any_internal = true;
    if (static_cast<int>(ci.nodes.size()) > max_width) return std::nullopt;
  }
  std::sort(ci.nodes.begin(), ci.nodes.end());
  return ci;
}

/// Copies the logic between the cut and the root into `dst`, reading cut
/// node n through node_map[n] (everything below the cut is left behind).
Lit copy_above_cut(const Aig& src, Lit root, Aig& dst,
                   const std::vector<Lit>& node_map) {
  std::vector<Lit> memo(node_map);
  memo[0] = kLitFalse;
  std::vector<std::uint32_t> stack{node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (memo[n] != kLitInvalid) {
      stack.pop_back();
      continue;
    }
    STEP_CHECK(src.is_and(n));  // inputs below the cut are always mapped
    const std::uint32_t c0 = node_of(src.fanin0(n));
    const std::uint32_t c1 = node_of(src.fanin1(n));
    bool ready = true;
    if (memo[c0] == kLitInvalid) {
      stack.push_back(c0);
      ready = false;
    }
    if (memo[c1] == kLitInvalid) {
      stack.push_back(c1);
      ready = false;
    }
    if (!ready) continue;
    const Lit f0 = lit_with_sign(memo[c0], is_complemented(src.fanin0(n)) !=
                                               is_complemented(memo[c0]));
    const Lit f1 = lit_with_sign(memo[c1], is_complemented(src.fanin1(n)) !=
                                               is_complemented(memo[c1]));
    memo[n] = dst.land(f0, f1);
    stack.pop_back();
  }
  const Lit m = memo[node_of(root)];
  return is_complemented(root) ? lnot(m) : m;
}

}  // namespace

std::optional<Window> compute_window(const Aig& circuit, Lit root,
                                     const WindowOptions& opts,
                                     const Deadline* deadline) {
  const std::uint32_t root_node = node_of(root);
  if (!circuit.is_and(root_node)) return std::nullopt;
  if (deadline != nullptr && deadline->expired()) return std::nullopt;
  STEP_CHECK(opts.max_inputs >= 2 && opts.max_inputs <= 16);

  const std::vector<int> depth =
      depth_from_root(circuit, root, opts.max_depth);

  // Candidate cuts, deepest first; identical node sets are kept once.
  std::vector<CutInfo> candidates;
  for (int level = opts.max_depth; level >= std::max(opts.min_depth, 1);
       --level) {
    std::optional<CutInfo> ci =
        cut_at(circuit, root, depth, level, opts.max_inputs);
    // A cut without internal signals is the cone's own support: every
    // pattern is producible (the inputs are free), so no SDCs exist.
    if (!ci || ci->nodes.size() < 2 || !ci->any_internal) continue;
    if (!candidates.empty() && candidates.back().nodes == ci->nodes) continue;
    candidates.push_back(std::move(*ci));
  }
  if (candidates.empty()) return std::nullopt;

  // Reachability pre-filter: one whole-circuit bit-parallel sweep per
  // stimulus batch serves every candidate cut.
  std::vector<std::vector<std::uint64_t>> reached(candidates.size());
  std::vector<int> reached_count(candidates.size(), 0);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    reached[c].assign(tt_words(candidates[c].nodes.size()), 0);
  }
  Rng rng(opts.sim_seed);
  std::vector<std::uint64_t> input_words(circuit.num_inputs());
  for (int w = 0; w < std::max(opts.sim_words, 1); ++w) {
    for (auto& word : input_words) word = rng.next();
    const std::vector<std::uint64_t> values =
        simulate_nodes(circuit, input_words);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const std::vector<std::uint32_t>& cut = candidates[c].nodes;
      for (int b = 0; b < 64; ++b) {
        std::size_t pattern = 0;
        for (std::size_t j = 0; j < cut.size(); ++j) {
          pattern |= ((values[cut[j]] >> b) & 1ULL) << j;
        }
        std::uint64_t& word = reached[c][pattern >> 6];
        const std::uint64_t bit = 1ULL << (pattern & 63);
        if ((word & bit) == 0) {
          word |= bit;
          ++reached_count[c];
        }
      }
    }
  }

  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (deadline != nullptr && deadline->expired()) return std::nullopt;
    const CutInfo& cut = candidates[c];
    const int k = static_cast<int>(cut.nodes.size());
    const std::uint64_t total = 1ULL << k;
    if (static_cast<std::uint64_t>(reached_count[c]) == total) continue;

    // SAT-complete the care set: every pattern the simulation never
    // produced is either proven unreachable (an SDC) or reachable (care).
    // Budget exhaustion keeps the pattern in the care set — sound.
    sat::Solver solver;
    std::vector<sat::Lit> pi_sat(circuit.num_inputs());
    for (auto& l : pi_sat) l = sat::mk_lit(solver.new_var());
    cnf::SolverSink sink(solver);
    std::vector<sat::Lit> cut_sat(cut.nodes.size());
    for (std::size_t j = 0; j < cut.nodes.size(); ++j) {
      cut_sat[j] =
          cnf::encode_cone(circuit, mk_lit(cut.nodes[j]), pi_sat, sink);
    }

    Window win;
    win.depth = cut.level;
    win.sim_reached = reached_count[c];
    std::vector<std::uint64_t> care_tt = reached[c];
    std::uint64_t sdc = 0;
    int completions = 0;
    sat::LitVec assumptions(cut.nodes.size());
    for (std::uint64_t p = 0; p < total; ++p) {
      if ((care_tt[p >> 6] >> (p & 63)) & 1ULL) continue;
      if (completions >= opts.max_sat_completions) {
        care_tt[p >> 6] |= 1ULL << (p & 63);  // unsettled: keep in care
        win.care_overapprox = true;
        continue;
      }
      ++completions;
      for (std::size_t j = 0; j < cut.nodes.size(); ++j) {
        assumptions[j] = ((p >> j) & 1ULL) != 0 ? cut_sat[j] : ~cut_sat[j];
      }
      // The deadline cuts individual queries short; an unknown verdict
      // keeps the pattern in care, like budget exhaustion.
      const sat::Result reach = solver.solve_limited(assumptions, -1, deadline);
      if (reach == sat::Result::kUnsat) {
        ++sdc;
      } else {
        care_tt[p >> 6] |= 1ULL << (p & 63);
        if (reach == sat::Result::kUnknown) win.care_overapprox = true;
      }
    }
    if (sdc == 0) continue;  // fully reachable cut — no don't-cares here

    win.sat_completions = completions;
    win.sdc_minterms = sdc;
    win.care_minterms = total - sdc;
    win.cut.reserve(cut.nodes.size());
    std::vector<Lit> node_map(circuit.num_nodes(), kLitInvalid);
    std::vector<Lit> inputs;
    for (std::size_t j = 0; j < cut.nodes.size(); ++j) {
      win.cut.push_back(mk_lit(cut.nodes[j]));
      std::string name = "w";
      name += std::to_string(j);
      const Lit in = win.aig.add_input(std::move(name));
      node_map[cut.nodes[j]] = in;
      inputs.push_back(in);
    }
    win.root = copy_above_cut(circuit, root, win.aig, node_map);
    win.care = build_from_tt(win.aig, care_tt, inputs);
    return win;
  }
  return std::nullopt;
}

bool verify_window_replacement(const Aig& circuit, Lit root, const Window& win,
                               const Aig& repl_aig, Lit repl_root) {
  sat::Solver solver;
  std::vector<sat::Lit> pi_sat(circuit.num_inputs());
  for (auto& l : pi_sat) l = sat::mk_lit(solver.new_var());
  cnf::SolverSink sink(solver);
  std::vector<sat::Lit> cut_sat(win.cut.size());
  for (std::size_t j = 0; j < win.cut.size(); ++j) {
    cut_sat[j] = cnf::encode_cone(circuit, win.cut[j], pi_sat, sink);
  }
  const sat::Lit orig = cnf::encode_cone(circuit, root, pi_sat, sink);
  const sat::Lit repl = cnf::encode_cone(repl_aig, repl_root, cut_sat, sink);
  // Assert inequality; UNSAT proves the replacement splices soundly.
  sink.add_binary(orig, repl);
  sink.add_binary(~orig, ~repl);
  return solver.solve() == sat::Result::kUnsat;
}

}  // namespace step::aig
