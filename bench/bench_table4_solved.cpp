// Reproduces Table IV: "Percentage of solved POs with STEP-{QD,QB,QDB} for
// OR bi-decomposition" — the share of decomposable POs for which the QBF
// engine *proved* the optimum within the per-call timeout. (The paper
// reports 91.97 / 97.81 / 84.42 over 38582 POs; the reproducible claim is
// the ordering QB > QD > QDB, driven by how hard each model's bound
// queries are.)

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace step;
  using core::Engine;

  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto par = bench::parallel_from_env_or_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);
  auto budgets = bench::budgets_for(scale);
  // Table IV exists because of the QBF timeout: use a deliberately tight
  // per-call budget so the hardest cones time out here like in the paper.
  budgets.qbf_call_s = std::min(budgets.qbf_call_s, 0.008);

  bench::print_preamble(
      "Table IV: percentage of solved (proven-optimal) POs, OR decomposition",
      scale);

  const Engine engines[] = {Engine::kQbfDisjoint, Engine::kQbfBalanced,
                            Engine::kQbfCombined};
  std::printf("%8s", "#Out");
  for (Engine e : engines) std::printf(" %12s(%%)", core::to_string(e));
  std::printf(" %12s(%%)\n", "portfolio");

  // Fourth column: the engine portfolio (QDB configured, MG-anchored
  // races on hard cones) under the same tight per-call timeout. Racing
  // trades optimality proofs for conclusions — MG wins carry no proof —
  // so its solved %% may sit below the pure QBF columns while its #Dec
  // never does.
  long total_pos = 0;
  double pct[4] = {};
  core::CircuitRunResult agg[4];
  for (int e = 0; e < 4; ++e) {
    core::ParallelDriverOptions epar = par;
    if (e == 3) {
      epar.portfolio.enabled = true;
      epar.portfolio.race_width = 3;
    }
    long decomposed = 0, proven = 0, pos = 0;
    for (const benchgen::BenchCircuit& c : suite) {
      auto r = bench::run_suite({c}, e == 3 ? Engine::kQbfCombined : engines[e],
                                core::GateOp::kOr, budgets, epar)[0];
      pos += static_cast<long>(r.pos.size());
      decomposed += r.num_decomposed();
      proven += r.num_proven_optimal();
      agg[e].total_cpu_s += r.total_cpu_s;
      agg[e].pos.insert(agg[e].pos.end(), r.pos.begin(), r.pos.end());
    }
    total_pos = pos;
    pct[e] = decomposed == 0 ? 0.0 : 100.0 * proven / decomposed;
  }
  std::printf("%8ld", total_pos);
  for (int e = 0; e < 4; ++e) std::printf(" %15.2f", pct[e]);
  std::printf("\n");
  std::printf("# shape check (paper): QB (97.81) > QD (91.97) > QDB (84.42)\n");

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    bench::JsonWriter j(f);
    j.begin_object();
    j.kv("bench", "table4_solved");
    j.kv("scale", bench::scale_name(scale));
    j.kv("threads", par.num_threads);
    j.kv("qbf_call_timeout_s", budgets.qbf_call_s);
    j.kv("total_pos", total_pos);
    j.key("engines");
    j.begin_array();
    for (int e = 0; e < 4; ++e) {
      j.begin_object();
      j.kv("engine", e == 3 ? "portfolio" : core::to_string(engines[e]));
      j.kv("solved_pct", pct[e]);
      bench::json_run_stats(j, agg[e]);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
