// Reproduces Figure 1: "CPU time comparison between models for all
// circuits" — six log-log scatter plots (LJH vs QD/QB/QDB on top,
// STEP-MG vs QD/QB/QDB below). This harness emits the underlying series
// as CSV (one row per circuit) plus a summary of which side of the
// diagonal each point falls on, which is the figure's takeaway:
// Q* points sit below the diagonal against LJH (faster) and above it
// against MG (slower).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace step;
  using core::Engine;

  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  bench::print_preamble("Figure 1: per-circuit CPU time scatter data", scale);

  const Engine engines[] = {Engine::kLjh, Engine::kMg, Engine::kQbfDisjoint,
                            Engine::kQbfBalanced, Engine::kQbfCombined};
  std::printf("circuit,ljh_s,mg_s,qd_s,qb_s,qdb_s\n");

  int below_vs_ljh[3] = {};  // Q* faster than LJH
  int above_vs_mg[3] = {};   // Q* slower than MG
  int n_circ = 0;
  for (const benchgen::BenchCircuit& c : suite) {
    double t[5];
    for (int e = 0; e < 5; ++e) {
      t[e] = bench::run_suite({c}, engines[e], core::GateOp::kOr, budgets)[0]
                 .total_cpu_s;
    }
    std::printf("%s,%.4f,%.4f,%.4f,%.4f,%.4f\n", c.name.c_str(), t[0], t[1],
                t[2], t[3], t[4]);
    std::fflush(stdout);
    for (int q = 0; q < 3; ++q) {
      if (t[2 + q] < t[0]) ++below_vs_ljh[q];
      if (t[2 + q] > t[1]) ++above_vs_mg[q];
    }
    ++n_circ;
  }

  const char* names[3] = {"STEP-QD", "STEP-QB", "STEP-QDB"};
  for (int q = 0; q < 3; ++q) {
    std::printf("# %s faster than LJH on %d/%d circuits;"
                " slower than STEP-MG on %d/%d\n",
                names[q], below_vs_ljh[q], n_circ, above_vs_mg[q], n_circ);
  }
  std::printf(
      "# shape check (paper): Q* clusters below the diagonal vs LJH and"
      " above it vs STEP-MG\n");
  return 0;
}
