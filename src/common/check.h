#pragma once

#include <cstdio>
#include <cstdlib>

namespace step {

/// Internal invariant check that stays on in release builds.
///
/// EDA data structures (clause arenas, AIG literal encodings) fail in
/// baffling ways when an invariant is violated; a hard stop with a message
/// is vastly easier to debug than corrupted solver state. These checks
/// guard structural invariants, not user input: user input errors are
/// reported through error returns/exceptions at the API boundary.
[[noreturn]] inline void check_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "step: invariant violated: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace step

#define STEP_CHECK(expr) \
  ((expr) ? static_cast<void>(0) : ::step::check_fail(#expr, __FILE__, __LINE__))
