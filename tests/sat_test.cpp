#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sat/dimacs.h"

namespace step::sat {
namespace {

// ---------- helpers ----------------------------------------------------------

/// Brute-force satisfiability over clause lists (reference oracle).
bool brute_force_sat(int num_vars, const std::vector<LitVec>& clauses) {
  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    bool all = true;
    for (const LitVec& c : clauses) {
      bool sat_c = false;
      for (Lit l : c) {
        const bool v = ((m >> var(l)) & 1ULL) != 0;
        if (v != sign(l)) {
          sat_c = true;
          break;
        }
      }
      if (!sat_c) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::vector<LitVec> random_cnf(int num_vars, int num_clauses, int width,
                               Rng& rng) {
  std::vector<LitVec> clauses;
  for (int i = 0; i < num_clauses; ++i) {
    LitVec c;
    for (int j = 0; j < width; ++j) {
      c.push_back(mk_lit(rng.next_int(0, num_vars - 1), rng.next_bool()));
    }
    clauses.push_back(c);
  }
  return clauses;
}

Solver make_solver(int num_vars, const std::vector<LitVec>& clauses,
                   bool proof = false) {
  SolverOptions opts;
  opts.proof_logging = proof;
  Solver s(opts);
  for (int i = 0; i < num_vars; ++i) s.new_var();
  for (const LitVec& c : clauses) s.add_clause(c);
  return s;
}

bool model_satisfies(const Solver& s, const std::vector<LitVec>& clauses) {
  for (const LitVec& c : clauses) {
    bool ok = false;
    for (Lit l : c) {
      if (s.model_value(l) == Lbool::kTrue) ok = true;
    }
    if (!ok) return false;
  }
  return true;
}

// ---------- basic behaviour ---------------------------------------------------

TEST(SatBasic, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatBasic, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  s.add_clause({mk_lit(v)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(mk_lit(v)), Lbool::kTrue);
}

TEST(SatBasic, ContradictingUnits) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(v)}));
  EXPECT_FALSE(s.add_clause({~mk_lit(v)}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_FALSE(s.is_ok());
}

TEST(SatBasic, BinaryImplicationChain) {
  Solver s;
  std::vector<Var> v(20);
  for (auto& x : v) x = s.new_var();
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    s.add_clause({~mk_lit(v[i]), mk_lit(v[i + 1])});
  }
  s.add_clause({mk_lit(v[0])});
  ASSERT_EQ(s.solve(), Result::kSat);
  for (Var x : v) EXPECT_EQ(s.model_value(x), Lbool::kTrue);
}

TEST(SatBasic, PigeonHole3x2IsUnsat) {
  // 3 pigeons, 2 holes: p[i][h].
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& x : row) x = s.new_var();
  }
  for (auto& row : p) s.add_clause({mk_lit(row[0]), mk_lit(row[1])});
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatBasic, TautologicalClauseIgnored) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(v), ~mk_lit(v)}));
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatBasic, DuplicateLiteralsCollapse) {
  Solver s;
  const Var v = s.new_var();
  const Var w = s.new_var();
  s.add_clause({mk_lit(v), mk_lit(v), ~mk_lit(w), mk_lit(v)});
  s.add_clause({mk_lit(w)});
  s.add_clause({~mk_lit(v), mk_lit(w)});
  ASSERT_EQ(s.solve(), Result::kSat);
}

// ---------- assumptions -------------------------------------------------------

TEST(SatAssumptions, AssumptionForcesPolarity) {
  Solver s;
  const Var v = s.new_var();
  const LitVec pos{mk_lit(v)};
  const LitVec neg{~mk_lit(v)};
  ASSERT_EQ(s.solve(pos), Result::kSat);
  EXPECT_EQ(s.model_value(mk_lit(v)), Lbool::kTrue);
  ASSERT_EQ(s.solve(neg), Result::kSat);
  EXPECT_EQ(s.model_value(mk_lit(v)), Lbool::kFalse);
}

TEST(SatAssumptions, CoreIsSubsetOfAssumptions) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause({~mk_lit(a), ~mk_lit(b)});  // a & b incompatible
  const LitVec assumptions{mk_lit(a), mk_lit(b), mk_lit(c)};
  ASSERT_EQ(s.solve(assumptions), Result::kUnsat);
  const LitVec& core = s.conflict_core();
  EXPECT_FALSE(core.empty());
  for (Lit l : core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end());
  }
  // c is irrelevant and must not appear.
  EXPECT_EQ(std::find(core.begin(), core.end(), mk_lit(c)), core.end());
}

TEST(SatAssumptions, CoreItselfUnsat) {
  Solver s;
  std::vector<Var> v(6);
  for (auto& x : v) x = s.new_var();
  // v0..v2 one-hot XOR-ish constraints that conflict with all-true.
  s.add_clause({~mk_lit(v[0]), ~mk_lit(v[1]), ~mk_lit(v[2])});
  s.add_clause({~mk_lit(v[3]), mk_lit(v[0])});
  LitVec assumptions;
  for (Var x : v) assumptions.push_back(mk_lit(x));
  ASSERT_EQ(s.solve(assumptions), Result::kUnsat);
  const LitVec core = s.conflict_core();
  // Re-solving under just the core stays UNSAT.
  EXPECT_EQ(s.solve(core), Result::kUnsat);
}

TEST(SatAssumptions, IncrementalSolvesAlternate) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  // b is only assumed from the second solve on; freeze it up front so the
  // first solve's preprocessing cannot remove it.
  s.set_frozen(a);
  s.set_frozen(b);
  s.add_clause({mk_lit(a), mk_lit(b)});
  for (int round = 0; round < 10; ++round) {
    const LitVec na{~mk_lit(a)};
    ASSERT_EQ(s.solve(na), Result::kSat);
    EXPECT_EQ(s.model_value(mk_lit(b)), Lbool::kTrue);
    const LitVec nb{~mk_lit(b)};
    ASSERT_EQ(s.solve(nb), Result::kSat);
    EXPECT_EQ(s.model_value(mk_lit(a)), Lbool::kTrue);
  }
}

TEST(SatAssumptions, ConflictingAssumptionsDetected) {
  Solver s;
  const Var a = s.new_var();
  const LitVec both{mk_lit(a), ~mk_lit(a)};
  EXPECT_EQ(s.solve(both), Result::kUnsat);
}

// ---------- budgets ----------------------------------------------------------

TEST(SatBudget, ZeroConflictBudgetReturnsUnknownOnHardInstance) {
  // A formula that needs at least one conflict: pigeonhole 4x3.
  SolverOptions opts;
  Solver s(opts);
  Var p[4][3];
  for (auto& row : p) {
    for (Var& x : row) x = s.new_var();
  }
  for (auto& row : p) {
    s.add_clause({mk_lit(row[0]), mk_lit(row[1]), mk_lit(row[2])});
  }
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        s.add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  EXPECT_EQ(s.solve_limited({}, 0, nullptr), Result::kUnknown);
  // And solvable without the budget.
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatBudget, ExpiredDeadlineReturnsUnknown) {
  Solver s;
  Var p[5][4];
  for (auto& row : p) {
    for (Var& x : row) x = s.new_var();
  }
  for (auto& row : p) {
    s.add_clause({mk_lit(row[0]), mk_lit(row[1]), mk_lit(row[2]), mk_lit(row[3])});
  }
  for (int h = 0; h < 4; ++h) {
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        s.add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  const Deadline expired(1e-9);
  const Result r = s.solve_limited({}, -1, &expired);
  EXPECT_EQ(r, Result::kUnknown);
}

// ---------- randomized cross-check against brute force -----------------------

class SatRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom, AgreesWithBruteForce3Cnf) {
  Rng rng(GetParam() * 7919 + 13);
  for (int iter = 0; iter < 40; ++iter) {
    const int nv = rng.next_int(3, 10);
    const int nc = rng.next_int(2, 45);
    const auto clauses = random_cnf(nv, nc, 3, rng);
    Solver s = make_solver(nv, clauses);
    const Result got = s.solve();
    const bool expect_sat = brute_force_sat(nv, clauses);
    ASSERT_EQ(got, expect_sat ? Result::kSat : Result::kUnsat)
        << "seed=" << GetParam() << " iter=" << iter;
    if (got == Result::kSat) {
      EXPECT_TRUE(model_satisfies(s, clauses));
    }
  }
}

TEST_P(SatRandom, AgreesWithBruteForceMixedWidth) {
  Rng rng(GetParam() * 104729 + 7);
  for (int iter = 0; iter < 25; ++iter) {
    const int nv = rng.next_int(2, 9);
    const int nc = rng.next_int(1, 35);
    std::vector<LitVec> clauses;
    for (int i = 0; i < nc; ++i) {
      const int w = rng.next_int(1, 4);
      LitVec c;
      for (int j = 0; j < w; ++j) {
        c.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      clauses.push_back(c);
    }
    Solver s = make_solver(nv, clauses);
    const bool expect_sat = brute_force_sat(nv, clauses);
    ASSERT_EQ(s.solve(), expect_sat ? Result::kSat : Result::kUnsat);
  }
}

TEST_P(SatRandom, AssumptionCoresAreSound) {
  Rng rng(GetParam() * 31 + 5);
  for (int iter = 0; iter < 20; ++iter) {
    const int nv = rng.next_int(4, 9);
    const auto clauses = random_cnf(nv, rng.next_int(5, 30), 3, rng);
    Solver s = make_solver(nv, clauses);
    LitVec assumptions;
    for (int v = 0; v < nv; ++v) {
      if (rng.next_bool()) assumptions.push_back(mk_lit(v, rng.next_bool()));
    }
    if (s.solve(assumptions) == Result::kUnsat) {
      // The core must itself be unsatisfiable with the clauses.
      const LitVec core = s.conflict_core();
      std::vector<LitVec> with_core = clauses;
      for (Lit l : core) with_core.push_back({l});
      EXPECT_FALSE(brute_force_sat(nv, with_core));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandom, ::testing::Range(0, 8));

// ---------- proof logging -----------------------------------------------------

TEST(SatProof, EmptyClauseReplaysEmpty) {
  SolverOptions opts;
  opts.proof_logging = true;
  Solver s(opts);
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({mk_lit(a), mk_lit(b)});
  s.add_clause({mk_lit(a), ~mk_lit(b)});
  s.add_clause({~mk_lit(a), mk_lit(b)});
  s.add_clause({~mk_lit(a), ~mk_lit(b)});
  ASSERT_EQ(s.solve(), Result::kUnsat);
  ASSERT_NE(s.proof().empty_clause(), kProofIdUndef);
  EXPECT_TRUE(s.proof().replay_clause(s.proof().empty_clause()).empty());
}

class SatProofRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatProofRandom, RefutationsReplayToEmptyClause) {
  Rng rng(GetParam() * 6271 + 3);
  int checked = 0;
  for (int iter = 0; iter < 60 && checked < 12; ++iter) {
    const int nv = rng.next_int(3, 9);
    const auto clauses = random_cnf(nv, rng.next_int(12, 50), 3, rng);
    if (brute_force_sat(nv, clauses)) continue;
    Solver s = make_solver(nv, clauses, /*proof=*/true);
    ASSERT_EQ(s.solve(), Result::kUnsat);
    ASSERT_NE(s.proof().empty_clause(), kProofIdUndef);
    const LitVec replay = s.proof().replay_clause(s.proof().empty_clause());
    EXPECT_TRUE(replay.empty())
        << "replayed clause has " << replay.size() << " literals";
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatProofRandom, ::testing::Range(0, 6));

// ---------- dimacs ------------------------------------------------------------

TEST(Dimacs, ParsesSimpleFormula) {
  const auto f = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(f.num_vars, 3);
  ASSERT_EQ(f.clauses.size(), 2u);
  EXPECT_EQ(f.clauses[0], (LitVec{mk_lit(0), mk_lit(1, true)}));
}

TEST(Dimacs, RoundTrip) {
  Rng rng(99);
  DimacsFormula f;
  f.num_vars = 7;
  for (int i = 0; i < 12; ++i) {
    LitVec c;
    for (int j = 0; j < 3; ++j) {
      c.push_back(mk_lit(rng.next_int(0, 6), rng.next_bool()));
    }
    f.clauses.push_back(c);
  }
  const DimacsFormula g = parse_dimacs(write_dimacs(f));
  EXPECT_EQ(g.num_vars, f.num_vars);
  EXPECT_EQ(g.clauses, f.clauses);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_THROW(parse_dimacs("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(Dimacs, ClauseAcrossLines) {
  const auto f = parse_dimacs("1 2\n-3 0\n");
  ASSERT_EQ(f.clauses.size(), 1u);
  EXPECT_EQ(f.clauses[0].size(), 3u);
}

}  // namespace
}  // namespace step::sat
