// Thread pool unit tests plus the parallel-driver determinism contract:
// run_circuit with N > 1 workers must report exactly the per-PO outcomes
// of the sequential reference run (budgets permitting), because per-PO
// jobs share no solver state and results are merged in PO order.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "benchgen/generators.h"
#include "benchgen/suite.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "core/circuit_driver.h"

namespace step {
namespace {

// ---------- ThreadPool ----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  pool.wait_idle();
}

TEST(ThreadPool, ReusableAcrossWaitIdleRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletesBeforeWaitIdle) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &count] {
      for (int k = 0; k < 10; ++k) {
        pool.submit([&count] { count.fetch_add(1); });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    // No wait_idle(): the destructor must drain the deques before joining.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ResolveNumThreads) {
  EXPECT_EQ(ThreadPool::resolve_num_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_num_threads(7), 7);
  EXPECT_GE(ThreadPool::resolve_num_threads(0), 1);
  EXPECT_GE(ThreadPool::resolve_num_threads(-3), 1);
}

// ---------- parallel run_circuit -----------------------------------------

// Everything except wall-clock timing must match between runs.
void expect_same_outcomes(const core::CircuitRunResult& a,
                          const core::CircuitRunResult& b) {
  ASSERT_EQ(a.pos.size(), b.pos.size());
  EXPECT_EQ(a.hit_circuit_budget, b.hit_circuit_budget);
  for (std::size_t i = 0; i < a.pos.size(); ++i) {
    SCOPED_TRACE("po slot " + std::to_string(i));
    EXPECT_EQ(a.pos[i].po_index, b.pos[i].po_index);
    EXPECT_EQ(a.pos[i].support, b.pos[i].support);
    EXPECT_EQ(a.pos[i].status, b.pos[i].status);
    EXPECT_EQ(a.pos[i].proven_optimal, b.pos[i].proven_optimal);
    EXPECT_EQ(a.pos[i].metrics.n, b.pos[i].metrics.n);
    EXPECT_EQ(a.pos[i].metrics.shared, b.pos[i].metrics.shared);
    EXPECT_EQ(a.pos[i].metrics.imbalance, b.pos[i].metrics.imbalance);
  }
}

core::DecomposeOptions generous_opts(core::Engine engine, core::GateOp op) {
  core::DecomposeOptions o;
  o.engine = engine;
  o.op = op;
  // Budgets far above what these small cones need, so no timeout can leak
  // nondeterminism into the comparison.
  o.po_budget_s = 60.0;
  o.optimum.call_timeout_s = 10.0;
  return o;
}

TEST(ParallelDriver, MatchesSequentialRunAcrossEngines) {
  const aig::Aig circ = benchgen::random_sop(3, 3, 2, 6, 4, 0x5eed);
  const core::Engine engines[] = {core::Engine::kMg,
                                  core::Engine::kQbfDisjoint,
                                  core::Engine::kQbfCombined};
  for (core::Engine e : engines) {
    SCOPED_TRACE(core::to_string(e));
    const auto opts = generous_opts(e, core::GateOp::kOr);
    const auto seq = core::run_circuit(circ, "sop", opts, 600.0, {1});
    const auto par = core::run_circuit(circ, "sop", opts, 600.0, {4});
    expect_same_outcomes(seq, par);
    EXPECT_GT(seq.pos.size(), 0u);
  }
}

TEST(ParallelDriver, MatchesSequentialOnStructuredCircuits) {
  const aig::Aig circuits[] = {benchgen::ripple_adder(4),
                               benchgen::comparator(4),
                               benchgen::priority_encoder(5)};
  for (const aig::Aig& c : circuits) {
    const auto opts =
        generous_opts(core::Engine::kQbfDisjoint, core::GateOp::kOr);
    const auto seq = core::run_circuit(c, "c", opts, 600.0, {1});
    const auto par = core::run_circuit(c, "c", opts, 600.0, {3});
    expect_same_outcomes(seq, par);
  }
}

TEST(ParallelDriver, ExpiredCircuitBudgetReportsUnknownEverywhere) {
  const aig::Aig circ = benchgen::random_sop(3, 3, 2, 5, 4, 0xbead);
  const auto opts =
      generous_opts(core::Engine::kQbfDisjoint, core::GateOp::kOr);
  // A budget this small expires before the first deadline check, on every
  // worker, so all POs must come back kUnknown in both modes.
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto r = core::run_circuit(circ, "sop", opts, 1e-9, {threads});
    EXPECT_TRUE(r.hit_circuit_budget);
    ASSERT_GT(r.pos.size(), 0u);
    for (const core::PoOutcome& po : r.pos) {
      EXPECT_EQ(po.status, core::DecomposeStatus::kUnknown);
    }
  }
}

TEST(ParallelDriver, BudgetExpiryMidLastJobStillRaisesTheFlag) {
  // Regression (PR 5): hit_circuit_budget was only set when a job
  // *started* after expiry. With every job started before the budget died
  // — the common case: the budget expires while the last worker is inside
  // its cone — the flag stayed false. It must now be aggregated from the
  // shared deadline, identically across thread counts.
  const aig::Aig circ =
      benchgen::merge({benchgen::parity_tree(14), benchgen::parity_tree(13)});
  core::DecomposeOptions opts =
      generous_opts(core::Engine::kQbfCombined, core::GateOp::kOr);
  opts.extract = false;  // the budget dies inside the partition search
  // Small enough that these 13/14-input OR searches cannot finish inside
  // it, yet the jobs themselves launch within microseconds — and if a
  // worker does start late, it observes the expiry directly, so the flag
  // must be true on every schedule.
  const double budget_s = 0.002;
  for (int threads : {1, 4}) {
    SCOPED_TRACE(threads);
    const auto r = core::run_circuit(circ, "par", opts, budget_s, {threads});
    EXPECT_TRUE(r.hit_circuit_budget);
  }
}

TEST(ParallelDriver, ZeroThreadsMeansHardwareConcurrency) {
  const aig::Aig circ = benchgen::parity_tree(6);
  const auto opts = generous_opts(core::Engine::kMg, core::GateOp::kXor);
  const auto seq = core::run_circuit(circ, "par", opts, 600.0, {1});
  const auto par = core::run_circuit(circ, "par", opts, 600.0, {0});
  expect_same_outcomes(seq, par);
}

// TSan/ASan-friendly stress: the whole tiny benchgen suite with more
// workers than cores, repeatedly, across all three gate ops.
TEST(ParallelDriver, StressTinySuiteManyThreads) {
  const auto suite = benchgen::standard_suite(benchgen::SuiteScale::kTiny);
  ASSERT_GT(suite.size(), 0u);
  const core::GateOp ops[] = {core::GateOp::kOr, core::GateOp::kAnd,
                              core::GateOp::kXor};
  for (const benchgen::BenchCircuit& c : suite) {
    for (core::GateOp op : ops) {
      core::DecomposeOptions opts = generous_opts(core::Engine::kMg, op);
      opts.po_budget_s = 2.0;
      const auto seq = core::run_circuit(c.aig, c.name, opts, 120.0, {1});
      const auto par = core::run_circuit(c.aig, c.name, opts, 120.0, {8});
      expect_same_outcomes(seq, par);
    }
  }
}

TEST(ParallelDriver, FaultInjectionIsThreadCountInvariant) {
  // Each PO derives its fault stream from (plan.seed, po_index), never from
  // scheduling, so the injected schedule — and with it every per-PO status,
  // reason, and the aggregated taxonomy — must be identical across thread
  // counts. Budgets are generous: wall-clock expiry is the one legitimately
  // nondeterministic input, and it is kept out of the picture here.
  const aig::Aig circ = benchgen::random_sop(3, 3, 2, 6, 4, 0x5eed);
  const auto opts = generous_opts(core::Engine::kMg, core::GateOp::kOr);
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    SCOPED_TRACE(seed);
    FaultPlan plan;
    plan.seed = seed;
    plan.rate = 0.1;
    core::ParallelDriverOptions p1;
    p1.num_threads = 1;
    p1.faults = &plan;
    core::ParallelDriverOptions p8 = p1;
    p8.num_threads = 8;
    const auto seq = core::run_circuit(circ, "f", opts, 600.0, p1);
    const auto par = core::run_circuit(circ, "f", opts, 600.0, p8);
    ASSERT_EQ(seq.pos.size(), par.pos.size());
    EXPECT_EQ(seq.outcome_counts(), par.outcome_counts());
    for (std::size_t i = 0; i < seq.pos.size(); ++i) {
      SCOPED_TRACE("po slot " + std::to_string(i));
      EXPECT_EQ(seq.pos[i].status, par.pos[i].status);
      EXPECT_EQ(seq.pos[i].reason, par.pos[i].reason);
      EXPECT_EQ(seq.pos[i].degraded, par.pos[i].degraded);
    }
  }
}

// ---------- hardness scheduling ------------------------------------------

TEST(ParallelDriver, HardnessScheduleMatchesAcrossThreadCounts) {
  // Hardness ordering is a pure function of the circuit (scores from
  // structural support + tree-size estimates), so -j1 and -j8 must agree
  // on every per-PO outcome AND on the schedule metadata itself.
  const aig::Aig circ = benchgen::merge(
      {benchgen::random_sop(3, 3, 2, 6, 4, 0x5eed), benchgen::parity_tree(8),
       benchgen::comparator(4)});
  auto opts = generous_opts(core::Engine::kMg, core::GateOp::kOr);
  core::ParallelDriverOptions p1;
  p1.num_threads = 1;
  p1.schedule = core::SchedulePolicy::kHardness;
  core::ParallelDriverOptions p8 = p1;
  p8.num_threads = 8;
  const auto seq = core::run_circuit(circ, "h", opts, 600.0, p1);
  const auto par = core::run_circuit(circ, "h", opts, 600.0, p8);
  expect_same_outcomes(seq, par);
  EXPECT_EQ(seq.schedule.jobs, par.schedule.jobs);
  EXPECT_EQ(seq.schedule.outliers, par.schedule.outliers);
  EXPECT_EQ(seq.schedule.batches, par.schedule.batches);
  for (std::size_t i = 0; i < seq.pos.size(); ++i) {
    SCOPED_TRACE("po slot " + std::to_string(i));
    EXPECT_EQ(seq.pos[i].schedule_rank, par.pos[i].schedule_rank);
    EXPECT_EQ(seq.pos[i].predicted_hardness, par.pos[i].predicted_hardness);
  }
}

TEST(ParallelDriver, HardnessIsAPureReorderingOfFifo) {
  // Same cones, same budgets, same per-cone computation: only the
  // execution order changes, so per-PO statuses/reasons/metrics — and the
  // aggregate decomposition count — must be identical between policies.
  const aig::Aig circuits[] = {
      benchgen::merge({benchgen::ripple_adder(5), benchgen::parity_tree(9)}),
      benchgen::random_sop(3, 3, 2, 8, 4, 0xfeed)};
  for (const aig::Aig& circ : circuits) {
    const auto opts = generous_opts(core::Engine::kMg, core::GateOp::kOr);
    core::ParallelDriverOptions fifo;
    fifo.num_threads = 4;
    fifo.schedule = core::SchedulePolicy::kFifo;
    core::ParallelDriverOptions hard = fifo;
    hard.schedule = core::SchedulePolicy::kHardness;
    const auto a = core::run_circuit(circ, "c", opts, 600.0, fifo);
    const auto b = core::run_circuit(circ, "c", opts, 600.0, hard);
    expect_same_outcomes(a, b);
    EXPECT_EQ(a.num_decomposed(), b.num_decomposed());
    EXPECT_EQ(a.outcome_counts(), b.outcome_counts());
    for (std::size_t i = 0; i < a.pos.size(); ++i) {
      SCOPED_TRACE("po slot " + std::to_string(i));
      EXPECT_EQ(a.pos[i].reason, b.pos[i].reason);
      // SAT/QBF work is identical per cone; conflict totals must match
      // exactly here because nothing in the cone depends on siblings.
      EXPECT_EQ(a.pos[i].sat_calls, b.pos[i].sat_calls);
      EXPECT_EQ(a.pos[i].qbf_calls, b.pos[i].qbf_calls);
    }
    // FIFO leaves ranks in PO order; hardness assigns a permutation.
    for (std::size_t i = 0; i < a.pos.size(); ++i) {
      EXPECT_EQ(a.pos[i].schedule_rank, static_cast<int>(i));
    }
    std::vector<bool> seen(b.pos.size(), false);
    for (const core::PoOutcome& po : b.pos) {
      ASSERT_GE(po.schedule_rank, 0);
      ASSERT_LT(po.schedule_rank, static_cast<int>(b.pos.size()));
      EXPECT_FALSE(seen[static_cast<std::size_t>(po.schedule_rank)]);
      seen[static_cast<std::size_t>(po.schedule_rank)] = true;
    }
  }
}

// ---------- recursive resynthesis driver ----------------------------------

TEST(ParallelResynth, SharedCacheUnderManyWorkersStaysCorrect) {
  // One NPN cache shared by 8 workers over a merged circuit with many
  // duplicate cones: whatever interleaving the pool produces, every PO
  // tree must SAT-verify and the assembled netlist must be equivalent.
  const aig::Aig circ = benchgen::merge(
      {benchgen::ripple_adder(4), benchgen::ripple_adder(4),
       benchgen::counter_next(5), benchgen::comparator(3)});
  core::DecCache cache;
  core::SynthesisOptions opts;
  opts.engine = core::Engine::kMg;
  opts.pick_best_op = true;
  opts.cache = &cache;
  for (int round = 0; round < 3; ++round) {
    const core::CircuitResynthResult r = core::run_circuit_resynth(
        circ, "par", opts, 120.0, {8}, /*verify=*/true);
    EXPECT_TRUE(r.all_verified) << "round " << round;
    for (const core::PoResynthOutcome& po : r.pos) {
      EXPECT_TRUE(po.verified) << "po " << po.po_index;
    }
  }
  // After the first round the cache holds every class, so later rounds
  // are served almost entirely from it.
  const core::DecCacheStats s = cache.stats();
  EXPECT_GT(s.hits(), 0u);
  EXPECT_GT(s.insertions, 0u);
}

TEST(ParallelResynth, ParallelNetworkEquivalentToSequential) {
  // Tree construction is per-PO deterministic; with the cache *off* the
  // parallel netlist must be byte-identical to the sequential one
  // (deterministic PO-order assembly). With caching on, only equivalence
  // is promised (hit order is a race), which ParallelResynthShared
  // covers; here we pin the determinism contract.
  const aig::Aig circ =
      benchgen::merge({benchgen::random_sop(3, 3, 1, 4, 3, 0xabc),
                       benchgen::parity_tree(6)});
  core::SynthesisOptions opts;
  opts.engine = core::Engine::kMg;
  opts.pick_best_op = true;
  const auto seq = core::run_circuit_resynth(circ, "c", opts, 120.0, {1});
  const auto par = core::run_circuit_resynth(circ, "c", opts, 120.0, {6});
  ASSERT_EQ(seq.network.num_outputs(), par.network.num_outputs());
  EXPECT_EQ(seq.network.num_ands(), par.network.num_ands());
  for (std::uint32_t o = 0; o < seq.network.num_outputs(); ++o) {
    EXPECT_EQ(seq.network.output(o), par.network.output(o)) << "po " << o;
  }
  EXPECT_EQ(seq.stats.decompositions, par.stats.decompositions);
}

}  // namespace
}  // namespace step
