#pragma once

#include <cstdint>

namespace step {

/// Deterministic xorshift64* pseudo-random generator.
///
/// Used throughout the library wherever reproducible randomness is needed
/// (random benchmark circuits, randomized tests, solver tie-breaking).
/// Never seeded from the clock: every consumer passes an explicit seed so
/// that benchmark tables and property tests are bit-reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {
    if (state_ == 0) state_ = 0x9e3779b97f4a7c15ULL;
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) {
    return lo + static_cast<int>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Fair coin.
  bool next_bool() { return (next() & 1ULL) != 0; }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace step
