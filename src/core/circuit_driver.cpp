#include "core/circuit_driver.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>

#include "aig/ops.h"
#include "aig/support.h"
#include "aig/window.h"
#include "common/race.h"
#include "common/thread_pool.h"

namespace step::core {

namespace {

// Degradation-ladder fallback order: each engine's cheaper neighbour
// (QBF engines fall back to the MG bootstrap engine, MG to LJH, LJH to
// nothing — its rung is the verbatim leaf / plain give-up).
std::optional<Engine> cheaper_engine(Engine e) {
  switch (e) {
    case Engine::kQbfDisjoint:
    case Engine::kQbfBalanced:
    case Engine::kQbfCombined: return Engine::kMg;
    case Engine::kMg: return Engine::kLjh;
    case Engine::kLjh: return std::nullopt;
  }
  return std::nullopt;
}

// Deadline::remaining_s() reports ~1e30 when nothing bounds it; anything
// at or above this is "no limit" rather than a real number of seconds.
constexpr double kUnboundedRemaining_s = 1e29;

}  // namespace

double effective_attempt_budget_s(double po_budget_s,
                                  const Deadline& circuit_deadline) {
  const double remaining = circuit_deadline.remaining_s();
  const double b =
      po_budget_s > 0 ? std::min(po_budget_s, remaining) : remaining;
  if (b >= kUnboundedRemaining_s) return 0.0;  // unlimited on both sides
  // An expired circuit budget must not round to 0 ("no deadline"): grant
  // an instantly-expiring attempt instead.
  return b > 0 ? b : 1e-9;
}

double ladder_rung_budget_s(double po_budget_s, double frac,
                            const Deadline& circuit_deadline) {
  double base = po_budget_s;
  if (base <= 0) {
    const double remaining = circuit_deadline.remaining_s();
    base = remaining < kUnboundedRemaining_s ? remaining : kDefaultRungBudget_s;
  }
  return effective_attempt_budget_s(base * frac, circuit_deadline);
}

int CircuitRunResult::num_decomposed() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed;
      }));
}

int CircuitRunResult::num_proven_optimal() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed && p.proven_optimal;
      }));
}

int CircuitRunResult::max_support() const {
  int m = 0;
  for (const PoOutcome& p : pos) m = std::max(m, p.support);
  return m;
}

OutcomeCounts CircuitRunResult::outcome_counts() const {
  OutcomeCounts c;
  for (const PoOutcome& p : pos) c.add(p.reason);
  return c;
}

int CircuitRunResult::num_degraded() const {
  return static_cast<int>(std::count_if(
      pos.begin(), pos.end(), [](const PoOutcome& p) { return p.degraded; }));
}

OutcomeCounts CircuitResynthResult::outcome_counts() const {
  OutcomeCounts c;
  for (const PoResynthOutcome& p : pos) c.add(p.reason);
  return c;
}

int CircuitRunResult::num_windows_built() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(),
                    [](const PoOutcome& p) { return p.window_built; }));
}

int CircuitRunResult::num_window_decomposed() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(),
                    [](const PoOutcome& p) { return p.used_window; }));
}

std::uint64_t CircuitRunResult::total_window_sdc_minterms() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.window_sdc_minterms;
  return s;
}

long CircuitRunResult::total_window_sat_completions() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.window_sat_completions;
  return s;
}

int CircuitRunResult::num_probed() const {
  return static_cast<int>(std::count_if(
      pos.begin(), pos.end(), [](const PoOutcome& p) { return p.probed; }));
}

int CircuitRunResult::num_raced() const {
  return static_cast<int>(std::count_if(
      pos.begin(), pos.end(), [](const PoOutcome& p) { return p.raced; }));
}

long CircuitRunResult::total_race_cancels() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.race_cancels;
  return s;
}

long CircuitRunResult::total_pool_published() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.pool_published;
  return s;
}

long CircuitRunResult::total_pool_imported() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.pool_imported;
  return s;
}

long CircuitRunResult::total_sat_calls() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.sat_calls;
  return s;
}

long CircuitRunResult::total_qbf_calls() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_calls;
  return s;
}

long CircuitRunResult::total_qbf_iterations() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_iterations;
  return s;
}

std::uint64_t CircuitRunResult::total_abstraction_conflicts() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_abstraction_conflicts;
  return s;
}

std::uint64_t CircuitRunResult::total_verification_conflicts() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_verification_conflicts;
  return s;
}

sat::Solver::Stats CircuitRunResult::total_solver_stats() const {
  sat::Solver::Stats s;
  for (const PoOutcome& p : pos) s += p.solver_stats;
  return s;
}

CircuitRunResult run_circuit(const aig::Aig& circuit, const std::string& name,
                             const DecomposeOptions& opts,
                             double circuit_budget_s,
                             const ParallelDriverOptions& par) {
  CircuitRunResult result;
  result.circuit = name;
  result.engine = opts.engine;
  result.op = opts.op;

  Timer total;
  Deadline circuit_deadline(circuit_budget_s);
  // External cancellation (SIGINT) trips the circuit deadline: in-flight
  // cones stop at their next poll, unfinished POs become kCircuitDeadline.
  circuit_deadline.attach_cancel(par.cancel);

  // Candidate scan is a cheap structural walk over the shared circuit;
  // the cones themselves are extracted inside the jobs so only the cones
  // currently being decomposed are materialized (not the whole circuit's
  // worth at once).
  struct PoJob {
    std::uint32_t po;
    int support;
  };
  std::vector<PoJob> jobs;
  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    const int support = static_cast<int>(
        aig::structural_support(circuit, circuit.output(po)).size());
    if (support < 2) continue;  // constants and wires are not decomposable
    jobs.push_back(PoJob{po, support});
  }

  // Hardness scoring + execution order (core/schedule.h). A pure function
  // of the circuit and the policy — no timing, no thread count — so the
  // order (and everything derived from it) is identical across -jN.
  std::vector<double> scores(jobs.size(), 0.0);
  {
    const std::vector<double> est = tree_size_estimates(circuit);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      ConeCost cost;
      cost.po = jobs[j].po;
      cost.support = jobs[j].support;
      cost.est_ands = est[aig::node_of(circuit.output(jobs[j].po))];
      scores[j] = predicted_hardness(cost);
    }
  }
  const std::vector<std::size_t> order =
      schedule_order(scores, par.schedule, &result.schedule);
  // rank_of[j] = position of job j in the execution order.
  std::vector<int> rank_of(jobs.size(), 0);
  for (std::size_t r = 0; r < order.size(); ++r) {
    rank_of[order[r]] = static_cast<int>(r);
  }

  // Slot per job: workers write disjoint entries, so aggregation is
  // deterministic (PO order) regardless of completion order.
  result.pos.resize(jobs.size());
  std::atomic<bool> hit_budget{false};

  // Race helpers are a separate small pool: racers of one cone must never
  // queue behind other cones' primary jobs on the PO pool (a full PO pool
  // would starve every race of its non-primary racers — or deadlock a
  // pool waiting on itself). Width is capped at 3 engines, so 2 helpers
  // cover the widest race; the caller's worker runs the primary racer.
  std::unique_ptr<RaceScheduler> race_sched;
  if (par.portfolio.enabled && par.portfolio.race_width > 1) {
    race_sched = std::make_unique<RaceScheduler>(
        std::min(par.portfolio.race_width - 1, 2));
  }

  auto absorb_costs = [](PoOutcome& outcome, const DecomposeResult& r) {
    outcome.sat_calls += r.sat_calls;
    outcome.qbf_calls += r.qbf_calls;
    outcome.qbf_iterations += r.qbf_iterations;
    outcome.qbf_abstraction_conflicts += r.qbf_abstraction_conflicts;
    outcome.qbf_verification_conflicts += r.qbf_verification_conflicts;
    outcome.solver_stats += r.solver_stats;
  };

  auto run_one = [&](std::size_t j) {
    const PoJob& job = jobs[j];
    PoOutcome& outcome = result.pos[j];
    outcome.po_index = static_cast<int>(job.po);
    outcome.support = job.support;
    outcome.predicted_hardness = scores[j];
    outcome.schedule_rank = rank_of[j];

    if (circuit_deadline.expired()) {
      hit_budget.store(true, std::memory_order_relaxed);
      outcome.status = DecomposeStatus::kUnknown;
      outcome.reason = reason_of(circuit_deadline.trip(), /*run_level=*/true);
      return;
    }

    Timer po_timer;

    // Per-cone fault stream: a pure function of (plan, PO index), so the
    // injected schedule is identical across thread counts.
    std::optional<FaultStream> faults;
    if (par.faults != nullptr && par.faults->enabled()) {
      faults.emplace(*par.faults, job.po);
    }

    // One full attempt at this cone: in DC mode the windowed function on
    // its care set first (SAT-verified against the circuit before it
    // counts), then the exact cone. Each attempt runs under its own
    // memory account, so an abandoned attempt refunds the run budget
    // before the next rung starts, and workers share nothing but the
    // read-only circuit, the deadline, and the governor's atomics.
    // Returns kOk on a conclusion (decomposed or proven not
    // decomposable), otherwise the typed failure reason.
    auto attempt = [&](DecomposeOptions aopts, bool try_window,
                       bool use_portfolio) {
      MemTracker mem(par.governor);
      if (par.governor != nullptr) aopts.mem = &mem;
      if (faults) aopts.faults = &*faults;
      aopts.run_deadline = &circuit_deadline;
      aopts.po_budget_s =
          effective_attempt_budget_s(aopts.po_budget_s, circuit_deadline);

      if (try_window) {
        if (std::optional<aig::Window> win =
                aig::compute_window(circuit, circuit.output(job.po),
                                    aopts.window, &circuit_deadline)) {
          outcome.window_built = true;
          outcome.window_inputs = win->n();
          outcome.window_sdc_minterms = win->sdc_minterms;
          outcome.care_fraction = win->care_fraction();
          outcome.window_sat_completions = win->sat_completions;
          outcome.care_overapprox = win->care_overapprox;

          const CareSet care = care_of_window(*win);
          const Cone wcone{win->aig, win->root};
          const DecomposeResult r =
              BiDecomposer(aopts).decompose(wcone, &care);
          absorb_costs(outcome, r);
          if (r.status == DecomposeStatus::kDecomposed) {
            // Verify the resynthesized node against the window before it
            // counts: composed with the cut logic it must equal the
            // original root on every producible input. An injected flip
            // discards the window result exactly like a real mismatch —
            // sound, because the exact attempt below still runs.
            bool spliceable =
                !r.functions.has_value() ||
                aig::verify_window_replacement(circuit, circuit.output(job.po),
                                               *win, r.functions->aig,
                                               r.functions->combined);
            if (spliceable && faults && faults->fire_verification()) {
              spliceable = false;
            }
            if (spliceable) {
              outcome.status = r.status;
              outcome.metrics = r.metrics;
              outcome.proven_optimal = r.proven_optimal;
              outcome.used_window = true;
              return OutcomeReason::kOk;
            }
          }
        }
      }

      const Cone cone = extract_po_cone(circuit, job.po);
      aopts.po_budget_s =
          effective_attempt_budget_s(aopts.po_budget_s, circuit_deadline);
      DecomposeResult r;
      if (use_portfolio) {
        PortfolioOutcome p = decompose_portfolio(cone, aopts, par.portfolio,
                                                 race_sched.get());
        r = std::move(p.result);
        outcome.probed = true;
        outcome.engine_used = p.engine_used;
        outcome.raced = p.raced;
        outcome.race_width = p.race_width;
        outcome.race_cancels = p.race_cancels;
        outcome.pool_published = p.pool_published;
        outcome.pool_imported = p.pool_imported;
      } else {
        r = BiDecomposer(aopts).decompose(cone);
      }
      absorb_costs(outcome, r);
      outcome.status = r.status;
      if (r.status != DecomposeStatus::kUnknown) {
        outcome.metrics = r.metrics;
        outcome.proven_optimal = r.proven_optimal;
        return OutcomeReason::kOk;
      }
      return r.reason == OutcomeReason::kOk ? OutcomeReason::kEngineDeadline
                                            : r.reason;
    };

    outcome.engine_used = opts.engine;
    const OutcomeReason why =
        attempt(opts, opts.use_dont_cares, par.portfolio.enabled);
    if (why != OutcomeReason::kOk) {
      // The reported reason stays the primary attempt's: the root cause,
      // even when ladder rungs below fail for other (cheaper) reasons.
      outcome.reason = why;

      // Degradation ladder (opt-in): retry an over-budget or over-memory
      // cone under progressively cheaper configurations, each on a
      // shrinking slice of the per-PO budget, with extraction + SAT
      // verification forced on — a degraded answer can be worse quality,
      // never wrong. Circuit-level failures are not retried: the run is
      // out of budget, not the cone.
      if (par.degrade && (why == OutcomeReason::kEngineDeadline ||
                          why == OutcomeReason::kMemLimit)) {
        struct Rung {
          Engine engine;
          double budget_frac;
          bool window;  ///< keep DC mode, with tightened window caps
        };
        std::vector<Rung> rungs;
        if (opts.use_dont_cares && why == OutcomeReason::kMemLimit) {
          // Smaller window first: the 2^width care enumeration and the
          // windowed relaxation matrix are DC mode's memory hogs.
          rungs.push_back({opts.engine, 0.5, true});
        }
        if (opts.use_dont_cares) {
          rungs.push_back({opts.engine, 0.5, false});
        }
        if (std::optional<Engine> ch = cheaper_engine(opts.engine)) {
          rungs.push_back({*ch, 0.25, false});
        }

        int rung_idx = 0;
        for (const Rung& rung : rungs) {
          ++rung_idx;
          if (circuit_deadline.expired()) break;
          DecomposeOptions ropts = opts;
          ropts.engine = rung.engine;
          ropts.po_budget_s = ladder_rung_budget_s(
              opts.po_budget_s, rung.budget_frac, circuit_deadline);
          ropts.use_dont_cares = rung.window;
          if (rung.window) {
            ropts.window.max_inputs = std::min(ropts.window.max_inputs, 6);
            ropts.window.max_sat_completions =
                std::max(1, ropts.window.max_sat_completions / 2);
          }
          ropts.extract = true;
          ropts.verify = true;
          // Rungs stay fixed-engine: the ladder exists to get *cheaper*,
          // racing a cone that already blew its budget is not that.
          if (attempt(ropts, rung.window, /*use_portfolio=*/false) ==
              OutcomeReason::kOk) {
            outcome.degraded = true;
            outcome.ladder_rung = rung_idx;
            outcome.reason = OutcomeReason::kOk;
            break;
          }
        }
      }
      if (outcome.status == DecomposeStatus::kUnknown &&
          outcome.reason == OutcomeReason::kCircuitDeadline) {
        hit_budget.store(true, std::memory_order_relaxed);
      }
    }
    outcome.cpu_s = po_timer.elapsed_s();
  };

  const int threads =
      std::min(ThreadPool::resolve_num_threads(par.num_threads),
               std::max<int>(1, static_cast<int>(jobs.size())));
  // Both paths execute the scheduled order; the pooled path additionally
  // chunks runs of small cones into one submission each (outliers stay
  // singleton) so a very wide netlist does not pay per-PO queue overhead.
  const std::vector<std::vector<std::size_t>> batches =
      schedule_batches(scores, order, par.schedule, &result.schedule);
  if (threads <= 1) {
    for (const std::size_t j : order) run_one(j);
  } else {
    ThreadPool pool(threads);
    for (const std::vector<std::size_t>& batch : batches) {
      pool.submit([&run_one, &batch] {
        for (const std::size_t j : batch) run_one(j);
      });
    }
    pool.wait_idle();
  }

  // The per-job flag only catches expiry observed *before* a job starts;
  // when the budget dies while the last worker is mid-cone, no later job
  // exists to notice. Aggregate from the shared budget state as well so
  // hit_circuit_budget is faithful (and identical across thread counts).
  result.hit_circuit_budget =
      hit_budget.load(std::memory_order_relaxed) || circuit_deadline.expired();
  result.total_cpu_s = total.elapsed_s();
  return result;
}

CircuitResynthResult run_circuit_resynth(const aig::Aig& circuit,
                                         const std::string& name,
                                         const SynthesisOptions& opts,
                                         double circuit_budget_s,
                                         const ParallelDriverOptions& par,
                                         bool verify) {
  CircuitResynthResult result;
  result.circuit = name;
  result.engine = opts.engine;

  Timer total;
  Deadline circuit_deadline(circuit_budget_s);
  circuit_deadline.attach_cancel(par.cancel);
  const DecCacheStats cache_before =
      opts.cache != nullptr ? opts.cache->stats() : DecCacheStats{};

  const std::uint32_t n_pos = circuit.num_outputs();
  result.pos.resize(n_pos);
  result.trees.resize(n_pos);
  std::vector<SynthesisStats> job_stats(n_pos);
  std::vector<std::vector<std::uint32_t>> job_inputs(n_pos);
  // Windowed POs (DC mode): the tree rewrites the *window* function and
  // is spliced over the verbatim cut logic at assembly time.
  std::vector<std::unique_ptr<aig::Window>> job_windows(n_pos);

  // Tree construction fans out; workers share only the read-only circuit,
  // the deadline, and the (thread-safe) cache. Expiry degrades quality —
  // sub-cones fall back to verbatim leaves — never completeness.
  auto run_one = [&](std::uint32_t po) {
    Timer po_timer;
    PoResynthOutcome& out = result.pos[po];
    out.po_index = static_cast<int>(po);
    const Cone cone = extract_po_cone(circuit, po, &job_inputs[po]);
    out.support = cone.n();
    out.depth_before = cone_depth(circuit, circuit.output(po));
    job_stats[po].pos_processed = 1;

    // Per-cone governance: deterministic fault stream keyed by PO index
    // and a memory account every per-node solver charges. A trip degrades
    // sub-cones to verbatim leaves — the tree stays complete — and the
    // ladder below may rebuild the whole cone cheaper.
    std::optional<FaultStream> faults;
    if (par.faults != nullptr && par.faults->enabled()) {
      faults.emplace(*par.faults, po);
    }
    MemTracker mem(par.governor);
    SynthesisOptions sopts = opts;
    if (par.governor != nullptr) sopts.per_node.mem = &mem;
    if (faults) sopts.per_node.faults = &*faults;
    sopts.per_node.run_deadline = &circuit_deadline;

    // DC mode: rewrite the windowed function on its care set; the result
    // is SAT-verified against the window — composed with the cut logic it
    // must equal the original PO everywhere — *before* it may be spliced,
    // and it must beat the exact whole-cone rewrite on estimated area
    // (window tree plus the verbatim cut logic the splice keeps alive).
    // Any failure falls back to the exact rewrite.
    std::shared_ptr<const DecTree> windowed_tree;
    std::unique_ptr<aig::Window> window;
    SynthesisStats wstats;
    if (sopts.use_dont_cares) {
      if (std::optional<aig::Window> win =
              aig::compute_window(circuit, circuit.output(po),
                                  sopts.per_node.window, &circuit_deadline)) {
        const CareSet care = care_of_window(*win);
        const Cone wcone{win->aig, win->root};
        wstats.pos_processed = 1;
        auto tree =
            decompose_to_tree(wcone, sopts, &wstats, &circuit_deadline, &care);
        aig::Aig repl;
        std::vector<aig::Lit> rin;
        for (int i = 0; i < wcone.n(); ++i) rin.push_back(repl.add_input());
        const aig::Lit rroot = emit_tree(*tree, repl, rin);
        if (aig::verify_window_replacement(circuit, circuit.output(po), *win,
                                           repl, rroot)) {
          windowed_tree = std::move(tree);
          window = std::make_unique<aig::Window>(std::move(*win));
        }
      }
    }
    SynthesisStats estats;
    estats.pos_processed = 1;
    auto exact_tree =
        decompose_to_tree(cone, sopts, &estats, &circuit_deadline);
    bool use_window = false;
    if (windowed_tree != nullptr) {
      // AND gates the splice keeps alive below the cut — an upper bound:
      // strashing against the other POs' logic can only shrink it.
      std::uint32_t cut_ands = 0;
      std::vector<char> seen(circuit.num_nodes(), 0);
      std::vector<std::uint32_t> stack;
      for (const aig::Lit l : window->cut) stack.push_back(aig::node_of(l));
      while (!stack.empty()) {
        const std::uint32_t node = stack.back();
        stack.pop_back();
        if (seen[node] || !circuit.is_and(node)) continue;
        seen[node] = 1;
        ++cut_ands;
        stack.push_back(aig::node_of(circuit.fanin0(node)));
        stack.push_back(aig::node_of(circuit.fanin1(node)));
      }
      use_window = windowed_tree->stats().area() + cut_ands <
                   exact_tree->stats().area();
    }
    if (use_window) {
      job_stats[po] = wstats;
      result.trees[po] = std::move(windowed_tree);
      out.verified = verify;  // proven by the splice check above
      job_windows[po] = std::move(window);
    } else {
      job_stats[po] = estats;
      result.trees[po] = std::move(exact_tree);
      if (verify) out.verified = tree_equivalent(cone, *result.trees[po]);
    }
    // An injected verification flip demotes the PO to unverified: the
    // assembly keeps the tree (it is complete either way) but
    // all_verified faithfully reports the failure.
    if (verify && out.verified && faults && faults->fire_verification()) {
      out.verified = false;
      out.reason = OutcomeReason::kVerificationFailed;
    }

    // Classify what (if anything) degraded this PO's tree, and ladder a
    // memory-tripped cone: rebuild with the cheaper engine and DC off
    // under a fresh account. A rung that trips again still yields a
    // complete tree — mem trips degrade sub-cones to verbatim leaves,
    // they never corrupt — so the bottom rung is implicit.
    if (mem.tripped()) {
      out.reason = OutcomeReason::kMemLimit;
      if (par.degrade) {
        if (std::optional<Engine> ch = cheaper_engine(opts.engine)) {
          SynthesisOptions ropts = sopts;
          ropts.engine = *ch;
          ropts.use_dont_cares = false;
          MemTracker rmem(par.governor);
          ropts.per_node.mem = par.governor != nullptr ? &rmem : nullptr;
          SynthesisStats rstats;
          rstats.pos_processed = 1;
          auto rtree =
              decompose_to_tree(cone, ropts, &rstats, &circuit_deadline);
          job_stats[po] = rstats;
          result.trees[po] = std::move(rtree);
          job_windows[po].reset();
          out.verified =
              verify ? tree_equivalent(cone, *result.trees[po]) : false;
          out.degraded = true;
        }
      }
    } else if (out.reason == OutcomeReason::kOk &&
               circuit_deadline.expired()) {
      out.reason = reason_of(circuit_deadline.trip(), /*run_level=*/true);
    } else if (out.reason == OutcomeReason::kOk && faults &&
               faults->fired() > 0) {
      out.reason = OutcomeReason::kInjectedFault;
    }
    out.tree = result.trees[po]->stats();
    out.cpu_s = po_timer.elapsed_s();
  };

  const int threads =
      std::min(ThreadPool::resolve_num_threads(par.num_threads),
               std::max<int>(1, static_cast<int>(n_pos)));
  if (threads <= 1) {
    for (std::uint32_t po = 0; po < n_pos; ++po) run_one(po);
  } else {
    ThreadPool pool(threads);
    for (std::uint32_t po = 0; po < n_pos; ++po) {
      pool.submit([&run_one, po] { run_one(po); });
    }
    pool.wait_idle();
  }

  // Deterministic assembly in PO order (emission is cheap and serial).
  aig::Aig& dst = result.network;
  std::vector<aig::Lit> pi_map(circuit.num_inputs());
  for (std::uint32_t i = 0; i < circuit.num_inputs(); ++i) {
    pi_map[i] = dst.add_input(circuit.input_name(i));
  }
  result.all_verified = verify;
  for (std::uint32_t po = 0; po < n_pos; ++po) {
    aig::Lit out;
    if (job_windows[po] != nullptr) {
      // Windowed splice: the verbatim cut logic is copied (strashing
      // shares it across POs) and the rewritten window reads it.
      const aig::Window& win = *job_windows[po];
      std::vector<aig::Lit> cut_map(win.cut.size());
      for (std::size_t i = 0; i < win.cut.size(); ++i) {
        cut_map[i] = aig::copy_cone(circuit, win.cut[i], dst, pi_map);
      }
      out = emit_tree(*result.trees[po], dst, cut_map);
    } else {
      std::vector<aig::Lit> dst_inputs(job_inputs[po].size());
      for (std::size_t i = 0; i < job_inputs[po].size(); ++i) {
        dst_inputs[i] = pi_map[job_inputs[po][i]];
      }
      out = emit_tree(*result.trees[po], dst, dst_inputs);
    }
    dst.add_output(out, circuit.output_name(po));
    result.stats += job_stats[po];
    result.stats.depth_before =
        std::max(result.stats.depth_before, result.pos[po].depth_before);
    if (verify && !result.pos[po].verified) result.all_verified = false;
  }
  // One level sweep over the finished network covers every PO's
  // depth_after (per-PO cone_depth calls here would be quadratic).
  {
    std::vector<int> level(dst.num_nodes(), 0);
    for (std::uint32_t n = 1; n < dst.num_nodes(); ++n) {
      if (!dst.is_and(n)) continue;
      level[n] = 1 + std::max(level[aig::node_of(dst.fanin0(n))],
                              level[aig::node_of(dst.fanin1(n))]);
    }
    for (std::uint32_t po = 0; po < n_pos; ++po) {
      result.pos[po].depth_after = level[aig::node_of(dst.output(po))];
      result.stats.depth_after =
          std::max(result.stats.depth_after, result.pos[po].depth_after);
    }
  }
  result.stats.ands_before = circuit.num_ands();
  result.stats.ands_after = dst.num_ands();

  if (opts.cache != nullptr) {
    const DecCacheStats after = opts.cache->stats();
    result.cache.lookups = after.lookups - cache_before.lookups;
    result.cache.npn_hits = after.npn_hits - cache_before.npn_hits;
    result.cache.sig_hits = after.sig_hits - cache_before.sig_hits;
    result.cache.misses = after.misses - cache_before.misses;
    result.cache.insertions = after.insertions - cache_before.insertions;
    result.cache.sat_confirms = after.sat_confirms - cache_before.sat_confirms;
    result.cache.sat_refutes = after.sat_refutes - cache_before.sat_refutes;
  }
  result.hit_circuit_budget = circuit_deadline.expired();
  result.total_cpu_s = total.elapsed_s();
  return result;
}

QualityComparison compare_quality(const CircuitRunResult& base,
                                  const CircuitRunResult& challenger,
                                  MetricKind kind) {
  QualityComparison cmp;
  STEP_CHECK(base.pos.size() == challenger.pos.size());
  for (std::size_t i = 0; i < base.pos.size(); ++i) {
    const PoOutcome& b = base.pos[i];
    const PoOutcome& c = challenger.pos[i];
    STEP_CHECK(b.po_index == c.po_index);
    if (b.status != DecomposeStatus::kDecomposed ||
        c.status != DecomposeStatus::kDecomposed) {
      continue;
    }
    ++cmp.considered;
    const int bc = metric_cost(b.metrics, kind);
    const int cc = metric_cost(c.metrics, kind);
    if (cc < bc) {
      ++cmp.challenger_better;
    } else if (cc == bc) {
      ++cmp.equal;
    } else {
      ++cmp.challenger_worse;
    }
  }
  return cmp;
}

}  // namespace step::core
