// Exhaustive correctness of the NPN canonicalization that keys the
// decomposition cache: canon(f) == canon(g) must hold exactly when f and
// g are NPN-equivalent, the canonical transform must round-trip, and the
// composed rewiring used on cache hits must reproduce the query function.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/npn.h"

namespace step::core {
namespace {

TruthTable tt_of(std::uint64_t bits, int n) {
  const std::size_t rows = std::size_t{1} << n;
  const std::uint64_t mask = rows >= 64 ? ~0ULL : (1ULL << rows) - 1;
  return TruthTable{bits & mask};
}

/// Reference canonical form: minimum of the brute-force orbit.
TruthTable orbit_min(const TruthTable& f, int n) {
  TruthTable best;
  NpnTransform t = npn_identity(n);
  const std::uint32_t neg_limit = 1U << n;
  do {
    for (t.input_neg = 0; t.input_neg < neg_limit; ++t.input_neg) {
      for (int o = 0; o <= 1; ++o) {
        t.output_neg = o != 0;
        // npn_apply enumerates the orbit: every g with g = t(f) for some t
        // (the transform set is a group, so apply and "unapply" orbits
        // coincide).
        TruthTable g = npn_apply(f, n, t);
        if (best.empty() || g < best) best = std::move(g);
      }
    }
  } while (std::next_permutation(t.perm.begin(), t.perm.end()));
  return best;
}

class ExhaustiveN : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveN, CanonEqualsIffNpnEquivalent) {
  const int n = GetParam();
  const std::uint64_t functions = 1ULL << (1ULL << n);
  // canon(f) == canon(g) iff f ~NPN g, via the brute-force reference:
  // equality of orbit minima characterizes NPN equivalence exactly.
  for (std::uint64_t bits = 0; bits < functions; ++bits) {
    const TruthTable f = tt_of(bits, n);
    const NpnCanonical canon = npn_canonicalize(f, n);
    EXPECT_EQ(canon.tt, orbit_min(f, n)) << "n=" << n << " f=" << bits;
  }
}

TEST_P(ExhaustiveN, CanonicalTransformRoundTrips) {
  const int n = GetParam();
  const std::uint64_t functions = 1ULL << (1ULL << n);
  for (std::uint64_t bits = 0; bits < functions; ++bits) {
    const TruthTable f = tt_of(bits, n);
    const NpnCanonical canon = npn_canonicalize(f, n);
    EXPECT_EQ(npn_apply(canon.tt, n, canon.transform), f)
        << "n=" << n << " f=" << bits;
  }
}

TEST_P(ExhaustiveN, ClassCountsMatchKnownValues) {
  const int n = GetParam();
  // Number of NPN classes of n-variable functions: 2 (n=0... counting the
  // two constants as one class under output negation), then 2, 4, 14.
  static const std::map<int, int> kExpected = {{0, 1}, {1, 2}, {2, 4}, {3, 14}};
  const std::uint64_t functions = 1ULL << (1ULL << n);
  std::map<TruthTable, int> classes;
  for (std::uint64_t bits = 0; bits < functions; ++bits) {
    ++classes[npn_canonicalize(tt_of(bits, n), n).tt];
  }
  EXPECT_EQ(static_cast<int>(classes.size()), kExpected.at(n)) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(SmallSupports, ExhaustiveN, ::testing::Range(0, 4));

TEST(NpnSampledN4, CanonAgreesWithBruteForceOnPairs) {
  // n = 4 is too wide to sweep all 2^16 x 2^16 pairs; sample functions and
  // verify canon equality against the pairwise brute-force oracle.
  Rng rng(0xa4);
  const int n = 4;
  std::vector<TruthTable> sample;
  for (int i = 0; i < 24; ++i) sample.push_back(tt_of(rng.next(), n));
  // Seed some deliberate NPN-equivalent pairs: random transforms of
  // sampled functions.
  const std::size_t base = sample.size();
  for (std::size_t i = 0; i < base; i += 3) {
    NpnTransform t = npn_identity(n);
    for (int s = 0; s < 4; ++s) {
      std::swap(t.perm[rng.next_below(n)], t.perm[rng.next_below(n)]);
    }
    t.input_neg = static_cast<std::uint32_t>(rng.next_below(16));
    t.output_neg = rng.next_bool();
    sample.push_back(npn_apply(sample[i], n, t));
  }
  for (std::size_t i = 0; i < sample.size(); ++i) {
    for (std::size_t k = i + 1; k < sample.size(); ++k) {
      const bool canon_eq = npn_canonicalize(sample[i], n).tt ==
                            npn_canonicalize(sample[k], n).tt;
      EXPECT_EQ(canon_eq, npn_equivalent(sample[i], sample[k], n))
          << "pair " << i << "," << k;
    }
  }
}

TEST(NpnSampledN4, RoundTripAndIdempotence) {
  Rng rng(7711);
  const int n = 4;
  for (int i = 0; i < 200; ++i) {
    const TruthTable f = tt_of(rng.next(), n);
    const NpnCanonical canon = npn_canonicalize(f, n);
    EXPECT_EQ(npn_apply(canon.tt, n, canon.transform), f);
    // The canonical form is a fixed point.
    EXPECT_EQ(npn_canonicalize(canon.tt, n).tt, canon.tt);
  }
}

TEST(NpnCompose, RewiresStoredFunctionOntoQuery) {
  // The cache-hit path: f stored, g queried, both in one NPN class. The
  // composed map must turn f into g by input rewiring + negations.
  Rng rng(4242);
  for (int n = 1; n <= 4; ++n) {
    for (int i = 0; i < 50; ++i) {
      const TruthTable f = tt_of(rng.next(), n);
      NpnTransform t = npn_identity(n);
      for (int s = 0; s < 3; ++s) {
        std::swap(t.perm[rng.next_below(n)], t.perm[rng.next_below(n)]);
      }
      t.input_neg = static_cast<std::uint32_t>(rng.next_below(1ULL << n));
      t.output_neg = rng.next_bool();
      const TruthTable g = npn_apply(f, n, t);

      const NpnCanonical cf = npn_canonicalize(f, n);
      const NpnCanonical cg = npn_canonicalize(g, n);
      ASSERT_EQ(cf.tt, cg.tt);
      const NpnVarMap m = npn_compose(cf.transform, cg.transform);

      // Evaluate g via f through the map on every row.
      const std::size_t rows = std::size_t{1} << n;
      for (std::size_t x = 0; x < rows; ++x) {
        std::size_t z = 0;
        for (int v = 0; v < n; ++v) {
          const bool bit = ((x >> m.var[v]) & 1U) != 0;
          const bool neg = ((m.neg >> v) & 1U) != 0;
          if (bit != neg) z |= std::size_t{1} << v;
        }
        const bool via_f = m.output_neg != aig::tt_bit(f, z);
        EXPECT_EQ(via_f, aig::tt_bit(g, x)) << "n=" << n << " row=" << x;
      }
    }
  }
}

}  // namespace
}  // namespace step::core
