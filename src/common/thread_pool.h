#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace step {

/// Small work-stealing thread pool for fanning out independent solver jobs
/// (one per PO cone in the circuit driver; see core/circuit_driver.h).
///
/// Each worker owns a deque: it pops its own jobs LIFO (cache-warm) and
/// steals from other workers FIFO (oldest first), so a worker that drew a
/// hard QBF cone does not serialize the rest of the circuit behind it.
/// Jobs must not share mutable state unless they synchronize themselves —
/// the decomposition engines qualify because every BiDecomposer call owns
/// its private Solver/CEGAR contexts.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains every queued job, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe from any thread; a job submitted from inside a
  /// worker lands on that worker's own deque.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job (including ones submitted while
  /// waiting) has finished. The pool is reusable afterwards.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Resolves a user-facing `-j` request: n >= 1 is taken literally,
  /// anything else means "one worker per hardware thread".
  static int resolve_num_threads(int requested);

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> jobs STEP_GUARDED_BY(mu);
  };

  void worker_main(int id);
  bool try_acquire(int id, std::function<void()>& out);
  void run_job(std::function<void()>& job);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  Mutex wake_mu_;
  CondVar wake_cv_;  ///< signals workers: job queued / stop
  CondVar idle_cv_;  ///< signals wait_idle(): all jobs done

  // queued_/in_flight_ stay atomics (not GUARDED_BY): they are read
  // outside wake_mu_ on the fast acquire path; the wake protocol only
  // requires that *changes* to queued_ happen under wake_mu_ (see
  // submit()).
  std::atomic<int> queued_{0};    ///< jobs sitting in some deque
  std::atomic<int> in_flight_{0};  ///< submitted, not yet completed
  std::atomic<unsigned> next_queue_{0};
  bool stop_ STEP_GUARDED_BY(wake_mu_) = false;
};

}  // namespace step
