#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "aig/aig.h"
#include "common/timer.h"
#include "sat/solver.h"

namespace step::qbf {

/// Result status of a 2QBF query.
enum class Qbf2Status : std::uint8_t {
  kTrue,     ///< the quantified formula holds
  kFalse,    ///< it does not
  kUnknown,  ///< budget/deadline exhausted
};

struct Qbf2Result {
  Qbf2Status status = Qbf2Status::kUnknown;
  /// When kUnknown: why the deadline stopped the CEGAR loop (wall budget,
  /// memory trip, injected fault, cancellation — see Deadline::Trip);
  /// kNone when the solve concluded, or when a SAT-internal budget (not
  /// the deadline) stopped it.
  Deadline::Trip stopped_by = Deadline::Trip::kNone;
  /// When kTrue: a witness assignment to the outer (existential) inputs,
  /// indexed like `outer_inputs`. kUndef entries are don't-cares.
  std::vector<sat::Lbool> outer_model;
  int iterations = 0;  ///< CEGAR refinement rounds
};

/// Counterexample-guided solver for  ∃ outer ∀ inner . side(outer) ∧ matrix.
///
/// This is the abstraction-refinement algorithm of AReQS (Janota &
/// Marques-Silva, SAT'11), the solver the paper uses for its 2QBF models:
///  - an *abstraction* SAT solver over the outer variables proposes
///    candidates consistent with all counterexamples seen so far;
///  - a *verification* SAT solver checks a candidate against ¬matrix;
///    an inner countermodel refines the abstraction with the matrix
///    cofactored on that countermodel.
///
/// The matrix is an AIG cone; `outer_inputs` / `inner_inputs` partition
/// (a subset of) its input indices. Side constraints purely over outer
/// variables (the paper's fN and fT) are added through `abstraction()` /
/// `outer_var()` before solve().
///
/// For the paper's formulation (9), validity of  ∀α,β ∃X. Φ ∨ ¬fN ∨ ¬fT
/// is decided by giving this solver the *negation*:
/// ∃α,β ∀X. ¬Φ ∧ fN ∧ fT; a kTrue answer hands back the counterexample
/// (α,β) — which *is* the computed variable partition.
struct CegarOptions {
  /// Emit a refinement as a single clause when the cofactored matrix is a
  /// disjunction of outer literals (always true for the Section IV
  /// matrices). Off = always Tseitin-encode; ablation knob.
  bool clause_fast_path = true;
  /// SAT configuration applied to both CEGAR-side solvers (restart mode,
  /// LBD tiers, inprocessing — see sat::SolverOptions / docs/SOLVER.md).
  sat::SolverOptions sat;
};

class ExistsForallSolver {
 public:
  ExistsForallSolver(const aig::Aig& matrix, aig::Lit root,
                     std::vector<std::uint32_t> outer_inputs,
                     std::vector<std::uint32_t> inner_inputs,
                     CegarOptions opts = {});

  /// Abstraction solver handle for adding outer-only side constraints.
  sat::Solver& abstraction() { return abstraction_; }
  /// SAT variable (in the abstraction) of outer input position i.
  sat::Var outer_var(std::size_t i) const { return outer_vars_[i]; }

  /// Pre-seeds the abstraction with a previously discovered inner
  /// countermodel (indexed like `inner_inputs`); lets a caller carry CEGAR
  /// learning across a sequence of related queries (the optimum-k loop).
  /// Duplicate seeds (and duplicate refinement clauses) are skipped.
  void seed_countermodel(const std::vector<sat::Lbool>& inner_assignment);

  Qbf2Result solve(const Deadline* deadline = nullptr);

  /// Assumption-carrying solve: `assumptions` (over abstraction variables,
  /// e.g. cardinality-counter outputs) are threaded through every
  /// abstraction call of the CEGAR loop, so one persistent solver pair can
  /// answer a whole family of queries — different bounds are just
  /// different assumption sets, and refinements plus learned clauses
  /// accumulate in place across calls.
  Qbf2Result solve(std::span<const sat::Lit> assumptions,
                   const Deadline* deadline = nullptr);

  /// After a kFalse answer from an assumption-carrying solve: the subset
  /// of the assumptions the abstraction's final conflict depended on
  /// (empty when the refutation is assumption-independent).
  const sat::LitVec& abstraction_core() const {
    return abstraction_.conflict_core();
  }

  /// Inner countermodels discovered during solve(), indexed like
  /// `inner_inputs`; feed them to seed_countermodel() of a later instance.
  const std::vector<std::vector<sat::Lbool>>& countermodels() const {
    return countermodels_;
  }

  /// Cumulative SAT statistics of the two sides of the CEGAR loop.
  const sat::Solver::Stats& abstraction_stats() const {
    return abstraction_.stats();
  }
  const sat::Solver::Stats& verification_stats() const {
    return verification_.stats();
  }

 private:
  void refine(const std::vector<sat::Lbool>& inner_assignment);

  const aig::Aig& matrix_;
  aig::Lit root_;
  std::vector<std::uint32_t> outer_inputs_;
  std::vector<std::uint32_t> inner_inputs_;
  CegarOptions opts_;

  sat::Solver abstraction_;
  std::vector<sat::Var> outer_vars_;  ///< abstraction var per outer input

  sat::Solver verification_;
  std::vector<sat::Var> ver_input_vars_;  ///< verification var per matrix input
  std::vector<int> input_role_;  ///< -1 free, 0 outer, 1 inner, per input index

  std::vector<std::vector<sat::Lbool>> countermodels_;
  /// Dedupe sets for refine(): already-processed inner assignments and
  /// already-emitted fast-path clauses (persistent solving replays related
  /// queries, which would otherwise re-derive the same refinements).
  std::unordered_set<std::string> seen_inner_;
  std::unordered_set<std::string> seen_clauses_;
};

}  // namespace step::qbf
