#include "core/partition_check.h"

#include "aig/simulate.h"

namespace step::core {

bool check_partition(const Cone& cone, GateOp op, const Partition& p,
                     const CareSet* care) {
  const RelaxationMatrix m = build_relaxation_matrix(cone, op, care);
  RelaxationSolver rs(m);
  return rs.is_valid(p);
}

namespace {

/// Row manipulation helpers over the packed truth table of the cone.
/// Row bit j corresponds to support position j.
struct TtView {
  std::vector<std::uint64_t> tt;
  int n;
  /// Care table; empty = completely specified.
  std::vector<std::uint64_t> care;

  bool value(std::size_t row) const { return aig::tt_bit(tt, row); }
  bool in_care(std::size_t row) const {
    return care.empty() || aig::tt_bit(care, row);
  }
};

TtView make_view(const Cone& cone, const CareSet* care) {
  std::vector<std::uint32_t> support(cone.aig.num_inputs());
  for (std::uint32_t i = 0; i < cone.aig.num_inputs(); ++i) support[i] = i;
  TtView v{aig::truth_table(cone.aig, cone.root, support), cone.n(), {}};
  if (!care_is_trivial(care)) {
    v.care = aig::truth_table(care->aig, care->root, support);
  }
  return v;
}

/// Enumerates all assignments to the positions in `mask_positions`,
/// replacing those bits of `row`; calls fn(row') for each.
template <typename Fn>
void for_each_patch(std::size_t row, const std::vector<int>& positions, Fn fn) {
  const std::size_t k = positions.size();
  for (std::size_t combo = 0; combo < (std::size_t{1} << k); ++combo) {
    std::size_t r = row;
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t bit = std::size_t{1} << positions[j];
      if ((combo >> j) & 1U) {
        r |= bit;
      } else {
        r &= ~bit;
      }
    }
    fn(r);
  }
}

bool or_valid(const TtView& v, const std::vector<int>& a_pos,
              const std::vector<int>& b_pos, bool complement) {
  // Valid iff every care onset row r has (∀a' care: f(a',b,c)) or
  // (∀b' care: f(a,b',c)) — a care offset in the XA-orbit forces gB(b,c)
  // to 0 and one in the XB-orbit forces gA(a,c) to 0; don't-care rows
  // impose nothing. `complement` flips the function (the AND case
  // decomposes ¬f).
  auto fv = [&](std::size_t rr) { return v.value(rr) != complement; };
  const std::size_t rows = std::size_t{1} << v.n;
  for (std::size_t r = 0; r < rows; ++r) {
    if (!v.in_care(r) || !fv(r)) continue;  // offset/DC rows impose nothing
    bool all_a = true;
    for_each_patch(r, a_pos, [&](std::size_t rr) {
      if (v.in_care(rr) && !fv(rr)) all_a = false;
    });
    if (all_a) continue;
    bool all_b = true;
    for_each_patch(r, b_pos, [&](std::size_t rr) {
      if (v.in_care(rr) && !fv(rr)) all_b = false;
    });
    if (!all_b) return false;
  }
  return true;
}

bool xor_valid(const TtView& v, const std::vector<int>& a_pos,
               const std::vector<int>& b_pos) {
  // Valid iff f(a,b,c) = f(a,b0,c) ⊕ f(a0,b,c) ⊕ f(a0,b0,c) with a0=b0=0.
  std::size_t a_mask = 0, b_mask = 0;
  for (int j : a_pos) a_mask |= std::size_t{1} << j;
  for (int j : b_pos) b_mask |= std::size_t{1} << j;

  const std::size_t rows = std::size_t{1} << v.n;
  for (std::size_t r = 0; r < rows; ++r) {
    const bool expected = v.value(r & ~b_mask) ^ v.value(r & ~a_mask) ^
                          v.value(r & ~a_mask & ~b_mask);
    if (v.value(r) != expected) return false;
  }
  return true;
}

}  // namespace

bool check_partition_exhaustive(const Cone& cone, GateOp op, const Partition& p,
                                const CareSet* care) {
  STEP_CHECK(p.size() == cone.n());
  STEP_CHECK(cone.n() <= 16);
  if (op == GateOp::kXor) care = nullptr;  // mirror the SAT path's semantics
  const TtView v = make_view(cone, care);
  std::vector<int> a_pos, b_pos;
  for (int j = 0; j < p.size(); ++j) {
    if (p.cls[j] == VarClass::kA) a_pos.push_back(j);
    if (p.cls[j] == VarClass::kB) b_pos.push_back(j);
  }
  switch (op) {
    case GateOp::kOr:
      return or_valid(v, a_pos, b_pos, /*complement=*/false);
    case GateOp::kAnd:
      return or_valid(v, a_pos, b_pos, /*complement=*/true);
    case GateOp::kXor:
      return xor_valid(v, a_pos, b_pos);
  }
  return false;
}

int metric_cost(const Metrics& m, MetricKind kind) {
  switch (kind) {
    case MetricKind::kDisjointness: return m.shared;
    case MetricKind::kBalancedness: return m.imbalance;
    case MetricKind::kSum: return m.combined_cost();
  }
  return 0;
}

BruteForceResult brute_force_optimum(const Cone& cone, GateOp op,
                                     MetricKind kind) {
  const int n = cone.n();
  STEP_CHECK(n <= 10);
  BruteForceResult result;

  std::size_t total = 1;
  for (int i = 0; i < n; ++i) total *= 3;

  Partition p;
  p.cls.resize(n);
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (int i = 0; i < n; ++i) {
      p.cls[i] = static_cast<VarClass>(c % 3);
      c /= 3;
    }
    if (!p.non_trivial()) continue;
    const int cost = metric_cost(Metrics::of(p), kind);
    if (result.decomposable && cost >= result.best_cost) continue;
    if (!check_partition_exhaustive(cone, op, p)) continue;
    result.decomposable = true;
    result.best_cost = cost;
    result.best = p;
  }
  return result;
}

}  // namespace step::core
