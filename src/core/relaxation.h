#pragma once

#include <vector>

#include "aig/aig.h"
#include "common/timer.h"
#include "core/bidec_types.h"
#include "core/care.h"
#include "sat/solver.h"

namespace step::core {

/// Extracts the cone of primary output `po` of `circuit` as a standalone
/// Cone whose inputs are exactly the support. `orig_inputs`, when given,
/// receives the circuit input index backing each cone input position.
Cone extract_po_cone(const aig::Aig& circuit, std::uint32_t po,
                     std::vector<std::uint32_t>* orig_inputs = nullptr);

/// The relaxed validity matrix Φ of eq. (2) (and its AND/XOR analogues),
/// built as an AIG over instantiated copies of the cone plus the partition
/// control inputs α, β:
///
///   OR : Φ =  f(X) ∧ ¬f(X') ∧ ¬f(X'')
///             ∧ ∧i ((xi ≡ xi') ∨ αi)  ∧  ∧i ((xi ≡ xi'') ∨ βi)
///   AND: dual (decomposes ¬f):  ¬f(X) ∧ f(X') ∧ f(X'') ∧ (same)
///   XOR: Φ = (f(X) ⊕ f(X') ⊕ f(X'') ⊕ f(X''')) ∧ (same)
///             ∧ ∧i ((xi''' ≡ xi') ∨ βi) ∧ ∧i ((xi''' ≡ xi'') ∨ αi)
///
/// For a concrete (α,β) encoding partition {XA|XB|XC} (αi ⇔ xi ∈ XA,
/// βi ⇔ xi ∈ XB), Φ is satisfiable iff the partition is *invalid*
/// (Proposition 1 / its AND and XOR analogues).
struct RelaxationMatrix {
  aig::Aig aig;
  aig::Lit phi = aig::kLitFalse;
  GateOp op = GateOp::kOr;
  int n = 0;
  /// True when a care set was conjoined into Φ (see below): validity then
  /// means "valid on the care minterms".
  bool care_constrained = false;
  // Input index vectors into `aig`, each of length n
  // (xppp only for XOR; empty otherwise).
  std::vector<std::uint32_t> x, xp, xpp, xppp, alpha, beta;
};

/// With a non-trivial `care`, Φ additionally requires every cone copy to
/// lie in the care set, which is exactly the incompletely-specified
/// validity condition: for OR, the partition is infeasible iff some care
/// onset minterm has a care offset witness in its XA-relaxed orbit *and*
/// one in its XB-relaxed orbit (those witnesses force both gA and gB to 0).
/// Every engine — LJH growth, MG group-MUS, the QBF CEGAR models — checks
/// partitions through this one matrix, so all of them become
/// don't-care-aware with no further changes. XOR is the exception: its
/// 4-copy relaxation only rules out odd 4-cycles, which is necessary but
/// not sufficient on a sparse care set, so XOR keeps exact semantics.
RelaxationMatrix build_relaxation_matrix(const Cone& cone, GateOp op,
                                         const CareSet* care = nullptr);

/// Incremental SAT view of the matrix: Φ is Tseitin-encoded once, and a
/// concrete partition is checked by assuming values of the α/β variables.
/// UNSAT ⇔ the partition is valid. This one solver serves all the SAT-side
/// engines (LJH growth, MG seeding + group-MUS, metric certification).
class RelaxationSolver {
 public:
  explicit RelaxationSolver(const RelaxationMatrix& m,
                            const sat::SolverOptions& sat_opts = {});

  sat::Solver& solver() { return solver_; }
  const RelaxationMatrix& matrix() const { return m_; }

  sat::Var alpha_var(int i) const { return alpha_vars_[i]; }
  sat::Var beta_var(int i) const { return beta_vars_[i]; }

  /// Assumption literals encoding a full partition.
  sat::LitVec assumptions_for(const Partition& p) const;

  /// True iff the partition is valid for the matrix's op. When the check
  /// cannot finish within the deadline, returns false and sets *status to
  /// kUnknown (otherwise kSat/kUnsat).
  bool is_valid(const Partition& p, const Deadline* deadline = nullptr,
                sat::Result* status = nullptr);

  int sat_calls() const { return sat_calls_; }

 private:
  const RelaxationMatrix& m_;  ///< not owned; must outlive the solver
  sat::Solver solver_;
  std::vector<sat::Var> alpha_vars_, beta_vars_;
  int sat_calls_ = 0;
};

}  // namespace step::core
