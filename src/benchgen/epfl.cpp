#include "benchgen/epfl.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "aig/ops.h"
#include "common/check.h"
#include "common/rng.h"

namespace step::benchgen {

namespace {

using aig::Aig;
using aig::Lit;

std::vector<Lit> add_inputs(Aig& a, const std::string& prefix, int n) {
  std::vector<Lit> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = a.add_input(prefix + std::to_string(i));
  }
  return v;
}

/// Full adder: returns {sum, carry}.
std::pair<Lit, Lit> full_adder(Aig& a, Lit x, Lit y, Lit cin) {
  const Lit s = a.lxor(a.lxor(x, y), cin);
  const Lit c = a.lor(a.land(x, y), a.land(cin, a.lxor(x, y)));
  return {s, c};
}

std::pair<std::vector<Lit>, Lit> ripple_chain(Aig& a, const std::vector<Lit>& x,
                                              const std::vector<Lit>& y,
                                              Lit cin) {
  STEP_CHECK(x.size() == y.size());
  std::vector<Lit> sum(x.size());
  Lit c = cin;
  for (std::size_t i = 0; i < x.size(); ++i) {
    auto [s, co] = full_adder(a, x[i], y[i], c);
    sum[i] = s;
    c = co;
  }
  return {sum, c};
}

int floor_log2(std::uint64_t n) {
  int bits = -1;
  while (n != 0) {
    n >>= 1;
    ++bits;
  }
  return bits;
}

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

}  // namespace

Aig epfl_adder(int bits) {
  STEP_CHECK(bits >= 2);
  Aig a;
  a.reserve(static_cast<std::uint32_t>(bits) * 14,
            static_cast<std::uint32_t>(bits) * 2 + 1,
            static_cast<std::uint32_t>(bits) + 1);
  const std::vector<Lit> x = add_inputs(a, "a", bits);
  const std::vector<Lit> y = add_inputs(a, "b", bits);
  const Lit cin = a.add_input("cin");

  // Carry-select in 16-bit blocks: two speculative ripples per block, the
  // incoming carry picks. Adds mux area on top of the ripple cells, which
  // is exactly what makes it a *large*-circuit generator.
  constexpr int kBlock = 16;
  std::vector<Lit> sum(static_cast<std::size_t>(bits));
  Lit carry = cin;
  for (int base = 0; base < bits; base += kBlock) {
    const int w = std::min(kBlock, bits - base);
    const std::vector<Lit> xs(x.begin() + base, x.begin() + base + w);
    const std::vector<Lit> ys(y.begin() + base, y.begin() + base + w);
    auto [s0, c0] = ripple_chain(a, xs, ys, aig::kLitFalse);
    auto [s1, c1] = ripple_chain(a, xs, ys, aig::kLitTrue);
    for (int i = 0; i < w; ++i) {
      sum[static_cast<std::size_t>(base + i)] = a.lmux(carry, s1[i], s0[i]);
    }
    carry = a.lmux(carry, c1, c0);
  }
  for (int i = 0; i < bits; ++i) {
    a.add_output(sum[static_cast<std::size_t>(i)], "sum" + std::to_string(i));
  }
  a.add_output(carry, "cout");
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

Aig epfl_multiplier(int bits) {
  STEP_CHECK(bits >= 2);
  const std::size_t n = static_cast<std::size_t>(bits);
  Aig a;
  a.reserve(static_cast<std::uint32_t>(20ULL * n * n),
            static_cast<std::uint32_t>(2 * n),
            static_cast<std::uint32_t>(2 * n));
  const std::vector<Lit> x = add_inputs(a, "a", bits);
  const std::vector<Lit> y = add_inputs(a, "b", bits);

  // Partial-product rows, each padded to the full 2n product width (the
  // padding literals are constants, so the reduction adders fold them away
  // for free — only genuinely overlapping columns cost gates).
  std::vector<std::vector<Lit>> rows(n);
  for (std::size_t j = 0; j < n; ++j) {
    rows[j].assign(2 * n, aig::kLitFalse);
    for (std::size_t i = 0; i < n; ++i) {
      rows[j][i + j] = a.land(x[i], y[j]);
    }
  }

  // Balanced (Wallace-shaped) reduction: pair rows up level by level so
  // the adder tree has log2(n) depth instead of a linear accumulation.
  while (rows.size() > 1) {
    std::vector<std::vector<Lit>> next;
    next.reserve(rows.size() / 2 + 1);
    for (std::size_t k = 0; k + 1 < rows.size(); k += 2) {
      auto [s, c] = ripple_chain(a, rows[k], rows[k + 1], aig::kLitFalse);
      (void)c;  // product truncates at 2n bits; the carry out is 0 anyway
      next.push_back(std::move(s));
    }
    if (rows.size() % 2 != 0) next.push_back(std::move(rows.back()));
    rows = std::move(next);
  }
  for (std::size_t i = 0; i < 2 * n; ++i) {
    a.add_output(rows[0][i], "p" + std::to_string(i));
  }
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

Aig epfl_barrel_shifter(int width) {
  STEP_CHECK(is_pow2(width));
  const int stages = floor_log2(static_cast<std::uint64_t>(width));
  Aig a;
  a.reserve(static_cast<std::uint32_t>(4ULL * width * std::max(stages, 1)),
            static_cast<std::uint32_t>(width + stages),
            static_cast<std::uint32_t>(width));
  std::vector<Lit> cur = add_inputs(a, "d", width);
  const std::vector<Lit> amount = add_inputs(a, "s", stages);

  // Left shift with zero fill, one stage per amount bit.
  for (int k = 0; k < stages; ++k) {
    const int step = 1 << k;
    std::vector<Lit> next(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      const Lit shifted = i >= step ? cur[static_cast<std::size_t>(i - step)]
                                    : aig::kLitFalse;
      next[static_cast<std::size_t>(i)] =
          a.lmux(amount[static_cast<std::size_t>(k)], shifted,
                 cur[static_cast<std::size_t>(i)]);
    }
    cur = std::move(next);
  }
  for (int i = 0; i < width; ++i) {
    a.add_output(cur[static_cast<std::size_t>(i)], "q" + std::to_string(i));
  }
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

Aig epfl_mux(int sel_bits) {
  STEP_CHECK(sel_bits >= 1 && sel_bits <= 24);
  const std::size_t n = std::size_t{1} << sel_bits;
  Aig a;
  a.reserve(static_cast<std::uint32_t>(4 * n),
            static_cast<std::uint32_t>(n + static_cast<std::size_t>(sel_bits)),
            1);
  std::vector<Lit> cur = add_inputs(a, "d", static_cast<int>(n));
  const std::vector<Lit> sel = add_inputs(a, "s", sel_bits);

  for (int k = 0; k < sel_bits; ++k) {
    std::vector<Lit> next(cur.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = a.lmux(sel[static_cast<std::size_t>(k)], cur[2 * i + 1],
                       cur[2 * i]);
    }
    cur = std::move(next);
  }
  a.add_output(cur[0], "out");
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

Aig epfl_decoder(int addr_bits) {
  STEP_CHECK(addr_bits >= 1 && addr_bits <= 24);
  const std::size_t n = std::size_t{1} << addr_bits;
  Aig a;
  a.reserve(static_cast<std::uint32_t>(3 * n),
            static_cast<std::uint32_t>(addr_bits) + 1,
            static_cast<std::uint32_t>(n));
  const std::vector<Lit> addr = add_inputs(a, "a", addr_bits);
  const Lit en = a.add_input("en");

  // Chain low bit first so neighbouring outputs share strashed prefixes:
  // the 2^k distinct k-bit prefixes give ~2^(addr_bits+1) gates total.
  for (std::size_t o = 0; o < n; ++o) {
    Lit term = en;
    for (int b = 0; b < addr_bits; ++b) {
      const Lit bit = addr[static_cast<std::size_t>(b)];
      term = a.land(term, ((o >> b) & 1) != 0 ? bit : aig::lnot(bit));
    }
    a.add_output(term, "y" + std::to_string(o));
  }
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

Aig giant_cone_suite(int giant_support, int n_small, int small_support,
                     std::uint64_t seed) {
  STEP_CHECK(giant_support >= 3);
  STEP_CHECK(n_small >= 0);
  STEP_CHECK(small_support >= 2);
  Aig a;
  Rng rng(seed);

  // Small cones FIRST so PO order puts the giant cone last — the
  // worst case for FIFO, the no-op case for hardest-first.
  for (int c = 0; c < n_small; ++c) {
    std::vector<Lit> pool =
        add_inputs(a, "c" + std::to_string(c) + "_x", small_support);
    while (pool.size() > 1) {
      const std::size_t i = rng.next_below(pool.size());
      Lit u = pool[i];
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
      const std::size_t j = rng.next_below(pool.size());
      Lit v = pool[j];
      if (rng.next_bool()) u = aig::lnot(u);
      switch (rng.next_below(3)) {
        case 0: pool[j] = a.land(u, v); break;
        case 1: pool[j] = a.lor(u, v); break;
        default: pool[j] = a.lxor(u, v); break;
      }
    }
    a.add_output(pool[0], "small" + std::to_string(c));
  }

  // The giant cone: majority of three parity towers over disjoint thirds
  // of a wide fresh input vector. Support = giant_support, and the parity
  // towers make the cone genuinely expensive to reason about.
  const std::vector<Lit> gx = add_inputs(a, "gx", giant_support);
  const int third = giant_support / 3;
  std::vector<Lit> parts;
  for (int p = 0; p < 3; ++p) {
    const int lo = p * third;
    const int hi = p == 2 ? giant_support : (p + 1) * third;
    Lit acc = gx[static_cast<std::size_t>(lo)];
    for (int i = lo + 1; i < hi; ++i) {
      acc = a.lxor(acc, gx[static_cast<std::size_t>(i)]);
    }
    parts.push_back(acc);
  }
  const Lit maj = a.lor(a.lor(a.land(parts[0], parts[1]),
                              a.land(parts[0], parts[2])),
                        a.land(parts[1], parts[2]));
  a.add_output(maj, "giant");
  // Emit dangling-free (see sweep_dead): the lint invariant over every
  // generator output depends on it.
  return aig::sweep_dead(a);
}

std::vector<LargeCircuit> large_suite(std::uint64_t target_gates) {
  const std::uint64_t t = std::max<std::uint64_t>(target_gates, 1024);
  std::vector<LargeCircuit> suite;

  const int adder_bits = static_cast<int>(
      std::clamp<std::uint64_t>(t / 12, 64, 2000000));
  suite.push_back({"epfl_adder_" + std::to_string(adder_bits),
                   epfl_adder(adder_bits)});

  const int mult_bits = static_cast<int>(std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(std::sqrt(static_cast<double>(t) / 15.0)), 16,
      1024));
  suite.push_back({"epfl_mult_" + std::to_string(mult_bits),
                   epfl_multiplier(mult_bits)});

  int shifter_width = 1024;
  while (shifter_width < (1 << 20) &&
         4ULL * static_cast<std::uint64_t>(shifter_width) *
                 static_cast<std::uint64_t>(
                     floor_log2(static_cast<std::uint64_t>(shifter_width))) <
             t) {
    shifter_width *= 2;
  }
  suite.push_back({"epfl_shifter_" + std::to_string(shifter_width),
                   epfl_barrel_shifter(shifter_width)});

  const int mux_sel =
      std::clamp(floor_log2(t / 3), 8, 20);
  suite.push_back({"epfl_mux_" + std::to_string(mux_sel), epfl_mux(mux_sel)});

  const int dec_addr = std::clamp(floor_log2(t / 2), 8, 20);
  suite.push_back(
      {"epfl_decoder_" + std::to_string(dec_addr), epfl_decoder(dec_addr)});

  return suite;
}

}  // namespace step::benchgen
