#include "core/schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace step::core {

const char* to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kHardness: return "hardness";
  }
  return "?";
}

double predicted_hardness(const ConeCost& c) {
  if (c.support < 2) return 0.0;
  // Exponential in support width (the partition search space), linear in
  // cone size (matrix/CNF build and walk costs). The exponent base is
  // deliberately mild — supports differ by tens, and 1.5^n already
  // separates a 20-input cone from a 10-input one by ~57x — and clamped
  // far below double overflow. A warm cache halves the expected cost at
  // hit rate 1.
  const double width = std::min(c.support, 64);
  const double search = std::pow(1.5, width);
  const double size = 1.0 + c.est_ands;
  return search * size * (1.0 - 0.5 * c.cache_hit_rate);
}

std::vector<double> tree_size_estimates(const aig::Aig& a) {
  // Saturate well below infinity so sums stay ordered and finite: deep
  // shared DAGs make the tree count explode doubly-exponentially.
  constexpr double kCap = 1e30;
  std::vector<double> est(a.num_nodes(), 0.0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    const double e = 1.0 + est[aig::node_of(a.fanin0(n))] +
                     est[aig::node_of(a.fanin1(n))];
    est[n] = std::min(e, kCap);
  }
  return est;
}

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

}  // namespace

std::vector<std::size_t> schedule_order(const std::vector<double>& scores,
                                        SchedulePolicy policy,
                                        ScheduleShape* shape) {
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (policy == SchedulePolicy::kHardness) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t x, std::size_t y) {
                       if (scores[x] != scores[y]) return scores[x] > scores[y];
                       return x < y;
                     });
  }
  if (shape != nullptr) {
    shape->policy = policy;
    shape->jobs = static_cast<int>(scores.size());
    const double median = median_of(scores);
    shape->median_score = median;
    shape->max_score =
        scores.empty() ? 0.0 : *std::max_element(scores.begin(), scores.end());
    shape->outliers = static_cast<int>(std::count_if(
        scores.begin(), scores.end(), [&](double s) {
          return median > 0.0 && s >= kOutlierFactor * median;
        }));
    shape->batches = 0;
  }
  return order;
}

std::vector<std::vector<std::size_t>> schedule_batches(
    const std::vector<double>& scores, const std::vector<std::size_t>& order,
    SchedulePolicy policy, ScheduleShape* shape) {
  STEP_CHECK(scores.size() == order.size());
  std::vector<std::vector<std::size_t>> batches;
  if (policy == SchedulePolicy::kFifo) {
    // Historical behavior: one submission per job, in PO order.
    batches.reserve(order.size());
    for (const std::size_t j : order) batches.push_back({j});
  } else {
    const double median = median_of(scores);
    auto is_outlier = [&](std::size_t j) {
      return median > 0.0 && scores[j] >= kOutlierFactor * median;
    };
    std::vector<std::size_t> run;
    auto flush = [&]() {
      if (!run.empty()) {
        batches.push_back(std::move(run));
        run.clear();
      }
    };
    for (const std::size_t j : order) {
      if (is_outlier(j)) {
        // Outliers never share a submission: the pool can hand each to a
        // dedicated worker immediately.
        flush();
        batches.push_back({j});
      } else {
        run.push_back(j);
        if (run.size() >= kBatchMaxJobs) flush();
      }
    }
    flush();
  }
  if (shape != nullptr) shape->batches = static_cast<int>(batches.size());
  return batches;
}

double simulated_makespan(const std::vector<double>& costs,
                          const std::vector<std::size_t>& order, int workers) {
  STEP_CHECK(workers >= 1);
  std::vector<double> busy_until(static_cast<std::size_t>(workers), 0.0);
  for (const std::size_t j : order) {
    auto it = std::min_element(busy_until.begin(), busy_until.end());
    *it += costs[j];
  }
  return *std::max_element(busy_until.begin(), busy_until.end());
}

}  // namespace step::core
