#pragma once

#include <chrono>

namespace step {

/// Wall-clock stopwatch.
///
/// The decomposition drivers follow the paper's budgeting scheme: a small
/// per-QBF-call timeout and a larger per-circuit budget. Both are enforced
/// with wall time through this class.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Deadline helper: `Deadline d(2.5); ... if (d.expired()) ...`.
/// A non-positive budget means "no deadline".
class Deadline {
 public:
  explicit Deadline(double budget_s = 0.0) : budget_s_(budget_s) {}

  bool enabled() const { return budget_s_ > 0.0 || polls_left_ >= 0; }
  bool expired() const {
    if (polls_left_ >= 0) {
      if (polls_left_ == 0) return true;
      --polls_left_;
      return false;
    }
    return enabled() && timer_.elapsed_s() >= budget_s_;
  }

  /// Test seam: report expiry after exactly `polls` more expired() calls,
  /// independent of wall time. Deadline consumers poll at deterministic
  /// points (loop heads, solver conflict checks), so tests can force an
  /// expiry at any reproducible moment mid-search — which wall-clock
  /// budgets cannot do. Never used outside tests.
  void force_expire_after_polls(int polls) { polls_left_ = polls; }

  /// Seconds remaining; +infinity-ish large value when disabled.
  double remaining_s() const {
    if (polls_left_ >= 0) return polls_left_ == 0 ? 0.0 : 1e30;
    if (!enabled()) return 1e30;
    double r = budget_s_ - timer_.elapsed_s();
    return r > 0.0 ? r : 0.0;
  }

 private:
  double budget_s_;
  Timer timer_;
  mutable int polls_left_ = -1;
};

}  // namespace step
