#include "core/qbf_model.h"

#include <algorithm>

#include "cnf/cnf.h"

namespace step::core {

bool SharedCountermodelPool::publish(const std::vector<sat::Lbool>& cm) {
  MutexLock lk(mu_);
  if (!keys_.insert(sat::lbool_key(cm)).second) return false;
  cms_.push_back(cm);
  return true;
}

std::size_t SharedCountermodelPool::fetch_new(
    std::size_t* cursor, std::vector<std::vector<sat::Lbool>>* out) const {
  MutexLock lk(mu_);
  const std::size_t added = cms_.size() - *cursor;
  for (; *cursor < cms_.size(); ++*cursor) out->push_back(cms_[*cursor]);
  return added;
}

std::size_t SharedCountermodelPool::size() const {
  MutexLock lk(mu_);
  return cms_.size();
}

QbfPartitionFinder::QbfPartitionFinder(const RelaxationMatrix& m,
                                       QbfFinderOptions opts)
    : m_(m), opts_(opts) {
  const int n = m_.n;

  // Quantifier structure of the negated formulation (9), shared by every
  // query on this matrix:
  // outer (∃) = alpha ++ beta;  inner (∀) = all cone-copy inputs.
  outer_ = m_.alpha;
  outer_.insert(outer_.end(), m_.beta.begin(), m_.beta.end());
  inner_ = m_.x;
  inner_.insert(inner_.end(), m_.xp.begin(), m_.xp.end());
  inner_.insert(inner_.end(), m_.xpp.begin(), m_.xpp.end());
  inner_.insert(inner_.end(), m_.xppp.begin(), m_.xppp.end());

  // The abstraction allocates one variable per outer input, in order, into
  // a fresh solver: α occupies [0, n) and β occupies [n, 2n) in every
  // instance, so the side-constraint clauses can be cached as templates.
  alpha_.resize(n);
  beta_.resize(n);
  for (int i = 0; i < n; ++i) {
    alpha_[i] = sat::mk_lit(static_cast<sat::Var>(i));
    beta_[i] = sat::mk_lit(static_cast<sat::Var>(n + i));
  }

  // fN: non-trivial partition, one class per variable.
  cnf::VecSink fn_sink(static_cast<sat::Var>(2 * n));
  cnf::at_least_one(fn_sink, alpha_);
  cnf::at_least_one(fn_sink, beta_);
  for (int i = 0; i < n; ++i) fn_sink.add_binary(~alpha_[i], ~beta_[i]);
  STEP_CHECK(fn_sink.num_vars() == 2 * n);  // fN allocates no aux vars
  fn_clauses_ = fn_sink.clauses();

  // Shared-variable indicators t_i ⇔ (¬α_i ∧ ¬β_i), used by QD and QDB;
  // the t vars land at [2n, 3n) when replayed right after fN.
  cnf::VecSink t_sink(static_cast<sat::Var>(2 * n));
  shared_lits_.resize(n);
  for (int i = 0; i < n; ++i) {
    const sat::Lit t = sat::mk_lit(t_sink.new_var());
    shared_lits_[i] = t;
    t_sink.add_ternary(t, alpha_[i], beta_[i]);
    t_sink.add_binary(~t, ~alpha_[i]);
    t_sink.add_binary(~t, ~beta_[i]);
  }
  shared_clauses_ = t_sink.clauses();
}

sat::LitVec QbfPartitionFinder::install_side_constraints(
    qbf::ExistsForallSolver& solver, bool want_shared) const {
  const int n = m_.n;
  for (int i = 0; i < n; ++i) {
    STEP_CHECK(solver.outer_var(i) == sat::var(alpha_[i]));
    STEP_CHECK(solver.outer_var(n + i) == sat::var(beta_[i]));
  }
  cnf::SolverSink sink(solver.abstraction());
  for (const sat::LitVec& c : fn_clauses_) sink.add_clause(c);
  if (!want_shared) return {};
  for (const sat::Lit l : shared_lits_) {
    const sat::Var v = sink.new_var();
    STEP_CHECK(v == sat::var(l));
  }
  for (const sat::LitVec& c : shared_clauses_) sink.add_clause(c);
  return shared_lits_;
}

Partition QbfPartitionFinder::decode_partition(
    const std::vector<sat::Lbool>& outer_model) const {
  const int n = m_.n;
  Partition p;
  p.cls.resize(n);
  for (int i = 0; i < n; ++i) {
    const bool in_a = outer_model[i] == sat::Lbool::kTrue;
    const bool in_b = outer_model[n + i] == sat::Lbool::kTrue;
    STEP_CHECK(!(in_a && in_b));
    p.cls[i] = in_a ? VarClass::kA : in_b ? VarClass::kB : VarClass::kC;
  }
  return p;
}

void QbfPartitionFinder::absorb_countermodel(
    const std::vector<sat::Lbool>& cm) {
  if (!pool_keys_.insert(sat::lbool_key(cm)).second) return;
  pool_.push_back(cm);
  if (opts_.shared_pool != nullptr && opts_.shared_pool->publish(cm)) {
    ++shared_published_;
  }
}

void QbfPartitionFinder::import_shared() {
  if (opts_.shared_pool == nullptr || !opts_.pool_seeding) return;
  std::vector<std::vector<sat::Lbool>> fresh;
  opts_.shared_pool->fetch_new(&shared_cursor_, &fresh);
  for (const auto& cm : fresh) {
    // Skip countermodels this finder published (or already imported).
    if (!pool_keys_.insert(sat::lbool_key(cm)).second) continue;
    pool_.push_back(cm);
    ++shared_imported_;
    // Live persistent pairs get the refinement immediately; future pairs
    // pick it up from pool_ at state_for() construction like any other.
    for (const auto& slot : inc_) {
      if (slot != nullptr && slot->solver != nullptr) {
        slot->solver->seed_countermodel(cm);
      }
    }
  }
}

QbfPartitionFinder::IncState& QbfPartitionFinder::state_for(QbfModel model) {
  auto& slot = inc_[static_cast<std::size_t>(model)];
  if (slot) return *slot;

  slot = std::make_unique<IncState>();
  IncState& st = *slot;
  st.solver = std::make_unique<qbf::ExistsForallSolver>(
      m_.aig, aig::lnot(m_.phi), outer_, inner_, opts_.cegar);

  const bool sym = opts_.symmetry_breaking;
  const sat::LitVec t =
      install_side_constraints(*st.solver, model != QbfModel::kQB);
  cnf::SolverSink sink(st.solver->abstraction());

  // fT is *not* encoded per bound. Each inequality of the target becomes
  // one counter over its mixed-polarity literal list; a concrete bound k
  // is later enforced by assuming the counter's output suffix above
  // k + offset (offset = the |neg| shift of the difference form). The
  // bound-independent |XA| >= |XB| symmetry break goes in as hard clauses,
  // in the same position of the scratch path's clause order.
  auto add_bound = [&](const sat::LitVec& pos, const sat::LitVec& neg) {
    sat::LitVec lits(pos);
    for (const sat::Lit l : neg) lits.push_back(~l);
    st.bounds.push_back(
        {std::make_unique<cnf::IncrementalCounter>(sink, lits),
         static_cast<int>(neg.size())});
  };
  switch (model) {
    case QbfModel::kQD:
      add_bound(t, {});
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      break;
    case QbfModel::kQB:
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      add_bound(alpha_, beta_);
      if (!sym) add_bound(beta_, alpha_);
      break;
    case QbfModel::kQDB: {
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      sat::LitVec pos_a(t);
      pos_a.insert(pos_a.end(), alpha_.begin(), alpha_.end());
      add_bound(pos_a, beta_);
      if (!sym) {
        sat::LitVec pos_b(t);
        pos_b.insert(pos_b.end(), beta_.begin(), beta_.end());
        add_bound(pos_b, alpha_);
      }
      break;
    }
  }

  // Carry everything already learned about this matrix into the new pair.
  if (opts_.pool_seeding) {
    for (const auto& cm : pool_) st.solver->seed_countermodel(cm);
  }
  return st;
}

QbfFindResult QbfPartitionFinder::find_incremental(QbfModel model, int k,
                                                   const Deadline* deadline) {
  IncState& st = state_for(model);
  qbf::ExistsForallSolver& solver = *st.solver;
  const std::uint64_t abs0 = solver.abstraction_stats().conflicts;
  const std::uint64_t ver0 = solver.verification_stats().conflicts;

  sat::LitVec assumps;
  for (const BoundCounter& bt : st.bounds) {
    bt.counter->assume_at_most(k + bt.offset, assumps);
  }
  // Candidate steering, re-applied per query because phase saving and
  // VSIDS decay drift the persistent solver away from the fresh-solver
  // behaviour the scratch path gets for free: prefer false phases on α/β
  // (maximally-shared candidates survive verification most often), and
  // for the balancedness-driven models put the partition variables ahead
  // of the encoder auxiliaries in the decision order. Measured on the
  // table-III suite this collapses the QB bound sweeps (~4x fewer CEGAR
  // rounds than scratch) and trims QDB, while QD does best with plain
  // VSIDS order (see BENCH_table3.json).
  for (int i = 0; i < 2 * m_.n; ++i) {
    solver.abstraction().set_polarity_hint(solver.outer_var(i), false);
  }
  if (model != QbfModel::kQD) {
    for (int i = 0; i < 2 * m_.n; ++i) {
      solver.abstraction().boost_var_activity(solver.outer_var(i));
    }
  }
  const qbf::Qbf2Result r = solver.solve(assumps, deadline);

  abs_conflicts_ += solver.abstraction_stats().conflicts - abs0;
  ver_conflicts_ += solver.verification_stats().conflicts - ver0;
  const auto& cms = solver.countermodels();
  for (; st.pool_synced < cms.size(); ++st.pool_synced) {
    absorb_countermodel(cms[st.pool_synced]);
  }

  QbfFindResult result;
  result.status = r.status;
  result.iterations = r.iterations;
  if (r.status == qbf::Qbf2Status::kTrue) {
    result.partition = decode_partition(r.outer_model);
  } else if (r.status == qbf::Qbf2Status::kFalse) {
    // The final conflict's assumption core certifies how much of the bound
    // was actually needed. A core whose smallest counter output is o_m
    // proves the tracked sum is forced to at least m in *every* candidate,
    // refuting every bound below m − offset; an assumption-free core means
    // fN plus the refinements alone are inconsistent — no bound helps.
    const sat::LitVec& core = solver.abstraction_core();
    auto in_core = [&](sat::Lit l) {
      return std::find(core.begin(), core.end(), l) != core.end();
    };
    int refuted = m_.n;  // no core hit: refuted at every feasible bound
    for (const BoundCounter& bt : st.bounds) {
      const int first = std::max(k + bt.offset + 1, 1);
      for (int j = first; j <= bt.counter->size(); ++j) {
        if (in_core(~bt.counter->output(j))) {
          refuted = std::min(refuted, j - bt.offset);
          break;
        }
      }
    }
    result.refuted_below = std::max(k + 1, refuted);
  }
  return result;
}

QbfFindResult QbfPartitionFinder::find_scratch(QbfModel model, int k,
                                               const Deadline* deadline) {
  qbf::ExistsForallSolver solver(m_.aig, aig::lnot(m_.phi), outer_, inner_,
                                 opts_.cegar);
  const bool sym = opts_.symmetry_breaking;
  const sat::LitVec t =
      install_side_constraints(solver, model != QbfModel::kQB);
  cnf::SolverSink sink(solver.abstraction());

  // fT: the target constraint for the requested model and bound.
  switch (model) {
    case QbfModel::kQD: {
      cnf::at_most_k(sink, t, k);
      // Symmetry breaking |XA| >= |XB| (Section IV.A.2).
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      break;
    }
    case QbfModel::kQB: {
      // 0 <= #XA − #XB <= k (eq. (6); symmetry removed by construction).
      // Without the symmetry break, bound |#XA − #XB| <= k instead.
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      cnf::diff_at_most_k(sink, alpha_, beta_, k);
      if (!sym) cnf::diff_at_most_k(sink, beta_, alpha_, k);
      break;
    }
    case QbfModel::kQDB: {
      // 0 <= #XC + #XA − #XB <= k with |XA| >= |XB| (eq. (8)); the
      // unbroken variant bounds #XC + |#XA − #XB| <= k.
      if (sym) cnf::diff_non_negative(sink, alpha_, beta_);
      sat::LitVec pos_a(t);
      pos_a.insert(pos_a.end(), alpha_.begin(), alpha_.end());
      cnf::diff_at_most_k(sink, pos_a, beta_, k);
      if (!sym) {
        sat::LitVec pos_b(t);
        pos_b.insert(pos_b.end(), beta_.begin(), beta_.end());
        cnf::diff_at_most_k(sink, pos_b, alpha_, k);
      }
      break;
    }
  }

  // Replay previously discovered universal countermodels.
  if (opts_.pool_seeding) {
    for (const auto& cm : pool_) solver.seed_countermodel(cm);
  }

  const qbf::Qbf2Result r = solver.solve(deadline);
  abs_conflicts_ += solver.abstraction_stats().conflicts;
  ver_conflicts_ += solver.verification_stats().conflicts;
  scratch_stats_ += solver.abstraction_stats();
  scratch_stats_ += solver.verification_stats();
  for (const auto& cm : solver.countermodels()) absorb_countermodel(cm);

  QbfFindResult result;
  result.status = r.status;
  result.iterations = r.iterations;
  if (r.status == qbf::Qbf2Status::kTrue) {
    result.partition = decode_partition(r.outer_model);
  } else if (r.status == qbf::Qbf2Status::kFalse) {
    result.refuted_below = k + 1;
  }
  return result;
}

sat::Solver::Stats QbfPartitionFinder::solver_stats() const {
  sat::Solver::Stats s = scratch_stats_;
  for (const auto& slot : inc_) {
    if (slot != nullptr && slot->solver != nullptr) {
      s += slot->solver->abstraction_stats();
      s += slot->solver->verification_stats();
    }
  }
  return s;
}

QbfFindResult QbfPartitionFinder::find_with_bound(QbfModel model, int k,
                                                  const Deadline* deadline) {
  ++qbf_calls_;
  import_shared();
  QbfFindResult r = opts_.incremental ? find_incremental(model, k, deadline)
                                      : find_scratch(model, k, deadline);
  total_iterations_ += r.iterations;
  return r;
}

}  // namespace step::core
