#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/decomposer.h"
#include "core/portfolio.h"
#include "core/schedule.h"
#include "core/synthesis.h"

namespace step::core {

/// Per-PO outcome of a circuit run (one engine, one op).
struct PoOutcome {
  int po_index = 0;
  int support = 0;
  DecomposeStatus status = DecomposeStatus::kUnknown;
  /// Why this PO reached no conclusion (kOk when status != kUnknown).
  OutcomeReason reason = OutcomeReason::kOk;
  /// Degradation-ladder accounting: a degraded PO concluded on a cheaper
  /// retry (rung >= 1) after the primary attempt (rung 0) ran out of
  /// budget or memory. Degraded results are SAT-verified like any other.
  bool degraded = false;
  int ladder_rung = 0;
  Metrics metrics;
  bool proven_optimal = false;
  double cpu_s = 0.0;
  // Solver-cost accounting, forwarded from DecomposeResult.
  int sat_calls = 0;
  int qbf_calls = 0;
  int qbf_iterations = 0;
  std::uint64_t qbf_abstraction_conflicts = 0;
  std::uint64_t qbf_verification_conflicts = 0;
  sat::Solver::Stats solver_stats;  ///< low-level SAT counters, all solvers
  // Portfolio accounting (populated in --portfolio mode only). Probe and
  // plan are deterministic per cone; engine_used / race_cancels / pool
  // transfers of a decided race are timing-dependent, the answer is not.
  Engine engine_used = Engine::kMg;  ///< engine that produced the answer
  bool probed = false;               ///< portfolio probe ran on this PO
  bool raced = false;                ///< engines raced concurrently
  int race_width = 1;                ///< engines run on this PO
  int race_cancels = 0;              ///< losers cancelled by the winner
  long pool_published = 0;           ///< countermodels shared to racers
  long pool_imported = 0;            ///< countermodels adopted from racers
  // Don't-care accounting (populated in DC mode only).
  bool window_built = false;  ///< an SDC window existed for this PO
  bool used_window = false;   ///< decomposed on the window's care set
  int window_inputs = 0;      ///< cut width of the window (when built)
  std::uint64_t window_sdc_minterms = 0;
  double care_fraction = 1.0;
  int window_sat_completions = 0;
  bool care_overapprox = false;  ///< window care set over-approximated
  // Scheduling accounting (core/schedule.h): the cone's predicted
  // hardness score and its position in the execution order. Both are pure
  // functions of the circuit and the policy — identical across thread
  // counts — and let --stats/bench JSON compare predicted hardness
  // against the actual cpu_s.
  double predicted_hardness = 0.0;
  int schedule_rank = 0;
};

/// One engine applied to every decomposable-candidate PO of a circuit —
/// the row unit of the paper's Tables I, III, IV.
struct CircuitRunResult {
  std::string circuit;
  Engine engine = Engine::kMg;
  GateOp op = GateOp::kOr;
  std::vector<PoOutcome> pos;  ///< POs with support >= 2 only
  double total_cpu_s = 0.0;
  bool hit_circuit_budget = false;
  /// How the job queue was ordered/chunked (core/schedule.h).
  ScheduleShape schedule;

  int num_decomposed() const;
  int num_proven_optimal() const;
  int max_support() const;  ///< the paper's #InM

  /// Per-reason tally over `pos` — derived, so it aggregates identically
  /// regardless of thread count or completion order.
  OutcomeCounts outcome_counts() const;
  int num_degraded() const;  ///< POs concluded by the degradation ladder

  /// Don't-care aggregates (all zero outside DC mode; derived from `pos`,
  /// so parallel runs report exactly the sequential numbers).
  int num_windows_built() const;
  int num_window_decomposed() const;
  std::uint64_t total_window_sdc_minterms() const;
  long total_window_sat_completions() const;

  /// Portfolio aggregates (all zero outside --portfolio mode; derived
  /// from `pos`, so they sum identically across thread counts).
  int num_probed() const;
  int num_raced() const;
  long total_race_cancels() const;
  long total_pool_published() const;
  long total_pool_imported() const;

  /// Circuit-wide solver-cost aggregates (sums over `pos`).
  long total_sat_calls() const;
  long total_qbf_calls() const;
  long total_qbf_iterations() const;
  std::uint64_t total_abstraction_conflicts() const;
  std::uint64_t total_verification_conflicts() const;
  /// Sum of the per-PO low-level SAT statistics (restarts, tier occupancy,
  /// inprocessing counters, …) — `step decompose --stats` prints these.
  sat::Solver::Stats total_solver_stats() const;
};

/// Fan-out policy of run_circuit. Per-PO decomposition jobs are
/// independent (each BiDecomposer call owns its private Solver/CEGAR
/// contexts), so they are distributed over a work-stealing pool; results
/// are merged back in PO order, making the parallel run's per-PO outcomes
/// identical to the sequential run's whenever no budget expires mid-run.
struct ParallelDriverOptions {
  /// Worker threads decomposing POs concurrently. 1 = run inline in the
  /// calling thread (the reference sequential path); 0 or negative = one
  /// worker per hardware thread.
  int num_threads = 1;
  /// Run-level memory governor (non-owning): every cone charges a
  /// per-cone account against it; a cone blowing its soft cap — or the
  /// run blowing the hard cap — is abandoned cleanly with
  /// OutcomeReason::kMemLimit while siblings keep running.
  ResourceGovernor* governor = nullptr;
  /// Fault-injection plan (non-owning, testing). Each PO derives a
  /// deterministic stream from (plan.seed, po_index), so injected
  /// failures are identical across thread counts.
  const FaultPlan* faults = nullptr;
  /// External cancellation flag (e.g. a SIGINT handler). Once set, the
  /// circuit deadline trips: in-flight cones stop at their next poll and
  /// every unfinished PO is reported as kCircuitDeadline.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-cone degradation ladder: a cone failing with engine_deadline or
  /// mem_limit is retried under progressively cheaper configurations
  /// (window off / smaller window / cheaper engine), each on a shrinking
  /// slice of the per-PO budget, with extraction + SAT verification
  /// forced on — a degraded answer can be worse, never wrong. Off by
  /// default so paper-faithful benchmark runs report first-attempt
  /// engine quality.
  bool degrade = false;
  /// Engine-portfolio mode (core/portfolio.h): probe each cone, run the
  /// probe-picked engine solo on easy cones and race 2-3 engines with
  /// first-winner cancellation on hard ones. Applies to the primary
  /// attempt only; degradation-ladder rungs stay fixed-engine.
  PortfolioOptions portfolio;
  /// Job-ordering policy (core/schedule.h): kFifo preserves the
  /// historical PO-order queue; kHardness scores every cone and submits
  /// hardest-first with small-cone chunking — a pure reordering, so
  /// per-PO outcomes are identical to FIFO's under any thread count.
  SchedulePolicy schedule = SchedulePolicy::kFifo;
};

/// Effective wall budget for one decomposition attempt under a shared
/// circuit deadline. Deadline treats a non-positive budget as "no
/// deadline", which makes the naive `min(po_budget_s, remaining_s())` a
/// trap on both ends: with po_budget_s == 0 the min is 0 — *unlimited*,
/// not clamped to the circuit's remaining time — and with an expired
/// circuit deadline remaining_s() == 0 turns a finite per-PO budget into
/// an unlimited one. "Unlimited" survives only when both sides genuinely
/// are; an expired circuit budget yields an instantly-expiring attempt.
double effective_attempt_budget_s(double po_budget_s,
                                  const Deadline& circuit_deadline);

/// Whole-ladder budget slice granted when the configured per-PO budget is
/// unlimited: rungs retry a cone that already failed once — they must
/// always be finite.
inline constexpr double kDefaultRungBudget_s = 10.0;

/// Budget for one degradation-ladder rung: `frac` of the per-PO budget,
/// clamped to the circuit budget's remaining time. An unlimited per-PO
/// budget (<= 0) falls back to the circuit's remaining time, else to
/// kDefaultRungBudget_s — never to `0 * frac == 0`, which would hand a
/// mem-tripped cone's retry an unlimited rung.
double ladder_rung_budget_s(double po_budget_s, double frac,
                            const Deadline& circuit_deadline);

/// Runs one engine over all POs of `circuit`. `circuit_budget_s` mirrors
/// the paper's per-circuit timeout (6000 s there; scaled down here) and is
/// a cooperative wall-clock budget shared by all workers: once it expires,
/// remaining POs are reported as kUnknown.
///
/// With `opts.use_dont_cares`, each PO first gets an SDC window
/// (aig/window.h): the windowed function is decomposed on its care set and
/// the result is SAT-verified against the window's circuit context before
/// it counts; on any failure the exact cone is decomposed as before, so DC
/// mode decomposes at least as many POs as exact mode (budgets permitting).
CircuitRunResult run_circuit(const aig::Aig& circuit, const std::string& name,
                             const DecomposeOptions& opts,
                             double circuit_budget_s,
                             const ParallelDriverOptions& par = {});

/// Quality comparison between two engines on the same circuit/op —
/// the %-better / %-equal columns of Tables I and II. POs are compared
/// when *both* engines decomposed them; `challenger_better` counts POs
/// where the challenger achieved a strictly lower metric value.
struct QualityComparison {
  int considered = 0;
  int challenger_better = 0;
  int equal = 0;
  int challenger_worse = 0;

  double better_pct() const {
    return considered == 0 ? 0.0 : 100.0 * challenger_better / considered;
  }
  double equal_pct() const {
    return considered == 0 ? 0.0 : 100.0 * equal / considered;
  }
};

QualityComparison compare_quality(const CircuitRunResult& base,
                                  const CircuitRunResult& challenger,
                                  MetricKind kind);

/// Per-PO outcome of a recursive resynthesis run. Unlike PoOutcome, every
/// PO appears (trivial ones become constant/literal trees) because the
/// result must be a complete netlist.
struct PoResynthOutcome {
  int po_index = 0;
  int support = 0;
  DecTreeStats tree;
  int depth_before = 0;
  int depth_after = 0;
  bool verified = false;  ///< SAT miter tree vs. original cone (when requested)
  /// Why this PO's tree is degraded (contains budget/mem-forced verbatim
  /// leaves); kOk when nothing interfered. The tree itself is complete
  /// and equivalent either way.
  OutcomeReason reason = OutcomeReason::kOk;
  bool degraded = false;  ///< rebuilt on the ladder after a mem trip
  double cpu_s = 0.0;
};

/// Recursive resynthesis of a whole circuit: one decomposition tree per
/// PO, assembled into a fresh netlist with the same PI/PO interface.
struct CircuitResynthResult {
  std::string circuit;
  Engine engine = Engine::kQbfCombined;
  aig::Aig network;
  std::vector<PoResynthOutcome> pos;
  std::vector<std::shared_ptr<const DecTree>> trees;  ///< aligned with pos
  SynthesisStats stats;      ///< aggregated over POs
  DecCacheStats cache;       ///< this run's delta (zero when no cache)
  bool all_verified = false; ///< meaningful only when verification ran
  bool hit_circuit_budget = false;
  double total_cpu_s = 0.0;

  /// Per-reason tally over `pos` (reasons name degradation causes here —
  /// the netlist is complete and equivalent regardless).
  OutcomeCounts outcome_counts() const;
};

/// Runs recursive bi-decomposition over all POs of `circuit`, fanning the
/// per-PO tree construction over the work-stealing pool. `opts.cache`,
/// when set, is shared by all workers, so identical or NPN-equivalent
/// cones decompose once per run. The circuit budget is cooperative: after
/// it expires, remaining sub-cones are emitted as verbatim leaves, so the
/// output netlist is always complete and equivalent. When `verify` is
/// set every PO tree is SAT-proven equivalent to its original cone.
///
/// With `opts.use_dont_cares`, a PO with an SDC window is rewritten as a
/// tree of the *window* function on its care set, SAT-verified against
/// the window (composed with the cut logic it must equal the original PO
/// on every producible input) before being spliced over the verbatim cut
/// logic; the recursion additionally propagates sibling-ODC care sets at
/// every split. Failures fall back to the exact whole-cone rewrite, so
/// the output netlist is always fully equivalent.
CircuitResynthResult run_circuit_resynth(const aig::Aig& circuit,
                                         const std::string& name,
                                         const SynthesisOptions& opts,
                                         double circuit_budget_s,
                                         const ParallelDriverOptions& par = {},
                                         bool verify = false);

}  // namespace step::core
