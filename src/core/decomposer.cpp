#include "core/decomposer.h"

#include "core/reduce.h"

namespace step::core {

SearchStrand run_search_strand(const RelaxationMatrix& matrix, Engine engine,
                               const DecomposeOptions& opts,
                               const Deadline* deadline) {
  SearchStrand res;
  RelaxationSolver rs(matrix, opts.sat);

  switch (engine) {
    case Engine::kLjh: {
      LjhDecomposer ljh(matrix, opts.ljh, opts.sat);
      const PartitionSearchResult r = ljh.find_partition(deadline);
      res.solver_stats += ljh.solver_stats();
      if (r.found) {
        res.status = DecomposeStatus::kDecomposed;
        res.partition = r.partition;
      } else {
        res.status = r.exhausted ? DecomposeStatus::kNotDecomposable
                                 : DecomposeStatus::kUnknown;
        res.reason = r.reason;
      }
      break;
    }
    case Engine::kMg: {
      MgDecomposer mg(rs, opts.mg);
      const PartitionSearchResult r = mg.find_partition(deadline);
      if (r.found) {
        res.status = DecomposeStatus::kDecomposed;
        res.partition = r.partition;
      } else {
        res.status = r.exhausted ? DecomposeStatus::kNotDecomposable
                                 : DecomposeStatus::kUnknown;
        res.reason = r.reason;
      }
      break;
    }
    case Engine::kQbfDisjoint:
    case Engine::kQbfBalanced:
    case Engine::kQbfCombined: {
      const QbfModel model = engine == Engine::kQbfDisjoint
                                 ? QbfModel::kQD
                                 : engine == Engine::kQbfBalanced
                                       ? QbfModel::kQB
                                       : QbfModel::kQDB;
      std::optional<Partition> bootstrap;
      if (opts.bootstrap_with_mg) {
        MgDecomposer mg(rs, opts.mg);
        const PartitionSearchResult r = mg.find_partition(deadline);
        if (r.found) {
          bootstrap = r.partition;
        } else if (r.exhausted) {
          // MG's seed sweep is exact on decomposability: nothing to do.
          res.status = DecomposeStatus::kNotDecomposable;
          break;
        }
      }
      QbfFinderOptions qbf_opts = opts.qbf;
      qbf_opts.cegar.sat = opts.sat;
      QbfPartitionFinder finder(matrix, qbf_opts);
      OptimumSearch search(finder, model, opts.optimum);
      const OptimumResult r = search.run(bootstrap, deadline);
      res.qbf_calls = r.qbf_calls;
      res.qbf_iterations = finder.total_iterations();
      res.qbf_abstraction_conflicts = finder.abstraction_conflicts();
      res.qbf_verification_conflicts = finder.verification_conflicts();
      res.solver_stats += finder.solver_stats();
      res.pool_published = finder.shared_published();
      res.pool_imported = finder.shared_imported();
      switch (r.outcome) {
        case OptimumResult::Outcome::kFound:
          res.status = DecomposeStatus::kDecomposed;
          res.partition = r.best;
          res.proven_optimal = r.proven_optimal;
          break;
        case OptimumResult::Outcome::kNotDecomposable:
          res.status = DecomposeStatus::kNotDecomposable;
          break;
        case OptimumResult::Outcome::kUnknown:
          res.status = DecomposeStatus::kUnknown;
          res.reason = r.reason;
          break;
      }
      break;
    }
  }

  res.sat_calls = rs.sat_calls();
  res.solver_stats += rs.solver().stats();

  // Classification safety net + refinement. Any kUnknown leaves with a
  // typed reason: engines that could not name one get the deadline's
  // verdict (tripped cause, else a configured search/solver budget). A
  // per-call engine deadline is refined to kConflictBudget when the
  // solver stats show only conflict-cap stops — the wall never actually
  // cut a solve short.
  if (res.status == DecomposeStatus::kUnknown) {
    if (res.reason == OutcomeReason::kOk) {
      res.reason = reason_of_unknown(deadline);
    }
    if (res.reason == OutcomeReason::kEngineDeadline &&
        (deadline == nullptr || deadline->trip() == Deadline::Trip::kNone) &&
        res.solver_stats.conflict_budget_stops > 0 &&
        res.solver_stats.deadline_stops == 0) {
      res.reason = OutcomeReason::kConflictBudget;
    }
  } else {
    res.reason = OutcomeReason::kOk;
  }
  return res;
}

DecomposeResult BiDecomposer::decompose(const Cone& cone_in,
                                        const CareSet* care) const {
  Timer timer;
  Deadline deadline(opts_.po_budget_s);
  // The per-PO deadline is the single interruption seam: chaining the
  // run-level deadline, the memory account, and the fault stream onto it
  // turns every existing poll point in the engines into a
  // cancellation/mem-cap/fault trip point with no callsite changes.
  deadline.attach_parent(opts_.run_deadline);
  deadline.attach_mem(opts_.mem);
  deadline.attach_faults(opts_.faults);
  DecomposeResult res;
  if (care_is_trivial(care)) care = nullptr;

  // Support reduction must carry the care set along: a dropped input may
  // still appear in the care function, so it is existentially projected
  // away (any extension being care keeps the minterm constrained). When
  // the projection is over budget, reduction is skipped — sound either way.
  Cone reduced;
  std::optional<CareSet> reduced_care;
  bool use_reduced = false;
  if (opts_.reduce_support) {
    std::vector<std::uint32_t> kept;
    reduced = reduce_cone(cone_in, &kept);
    if (care == nullptr) {
      use_reduced = true;
    } else if (kept.size() == cone_in.aig.num_inputs()) {
      use_reduced = true;
      reduced_care = *care;
    } else if (auto proj = care_project(*care, kept, /*max_quantified=*/8)) {
      use_reduced = true;
      reduced_care = std::move(*proj);
    }
  }
  const Cone& cone = use_reduced ? reduced : cone_in;
  if (reduced_care) care = &*reduced_care;
  if (cone.n() < 2) {
    res.status = DecomposeStatus::kNotDecomposable;
    res.cpu_s = timer.elapsed_s();
    return res;
  }

  const RelaxationMatrix matrix = build_relaxation_matrix(cone, opts_.op, care);

  auto finish_with_partition = [&](Partition p, bool proven) {
    res.status = DecomposeStatus::kDecomposed;
    res.metrics = Metrics::of(p);
    res.proven_optimal = proven;
    res.partition = std::move(p);
    if (opts_.extract) {
      res.functions = extract_functions(cone, opts_.op, res.partition, care);
      if (opts_.verify) {
        bool ok = verify_decomposition(cone, *res.functions, care);
        // An injected verification flip is handled exactly like a real
        // mismatch, which is why injecting it is sound: the result below
        // is discarded either way.
        if (ok && opts_.faults != nullptr && opts_.faults->fire_verification())
          ok = false;
        res.verified = ok;
        if (!ok) {
          // Never return a wrong answer: a decomposition that fails its
          // SAT verification is discarded wholesale and reported as a
          // classified failure, not trusted because the search found it.
          res.functions.reset();
          res.partition = Partition{};
          res.metrics = Metrics{};
          res.proven_optimal = false;
          res.status = DecomposeStatus::kUnknown;
          res.reason = OutcomeReason::kVerificationFailed;
        }
      }
    }
  };

  // The search strand does everything up to (but excluding) extraction
  // and verification; it also classifies its own kUnknown reasons.
  const SearchStrand s = run_search_strand(matrix, opts_.engine, opts_,
                                           &deadline);
  res.sat_calls = s.sat_calls;
  res.qbf_calls = s.qbf_calls;
  res.qbf_iterations = s.qbf_iterations;
  res.qbf_abstraction_conflicts = s.qbf_abstraction_conflicts;
  res.qbf_verification_conflicts = s.qbf_verification_conflicts;
  res.solver_stats += s.solver_stats;
  if (s.status == DecomposeStatus::kDecomposed) {
    finish_with_partition(s.partition, s.proven_optimal);
  } else {
    res.status = s.status;
    res.reason = s.reason;
  }

  res.cpu_s = timer.elapsed_s();
  return res;
}

DecomposeResult decompose_with_partition(const Cone& cone, GateOp op,
                                         const Partition& partition,
                                         bool extract, bool verify,
                                         const CareSet* care,
                                         FaultStream* faults) {
  Timer timer;
  DecomposeResult res;
  STEP_CHECK(partition.size() == cone.n());
  if (care_is_trivial(care)) care = nullptr;

  if (!partition.non_trivial() ||
      !check_partition(cone, op, partition, care)) {
    res.status = DecomposeStatus::kNotDecomposable;
    res.cpu_s = timer.elapsed_s();
    return res;
  }
  res.status = DecomposeStatus::kDecomposed;
  res.partition = partition;
  res.metrics = Metrics::of(partition);
  res.sat_calls = 1;
  if (extract) {
    res.functions = extract_functions(cone, op, partition, care);
    if (verify) {
      bool ok = verify_decomposition(cone, *res.functions, care);
      if (ok && faults != nullptr && faults->fire_verification()) ok = false;
      res.verified = ok;
      if (!ok) {
        // Same contract as BiDecomposer::decompose: an unverified result
        // is discarded, never returned.
        res.functions.reset();
        res.partition = Partition{};
        res.metrics = Metrics{};
        res.status = DecomposeStatus::kUnknown;
        res.reason = OutcomeReason::kVerificationFailed;
      }
    }
  }
  res.cpu_s = timer.elapsed_s();
  return res;
}

}  // namespace step::core
