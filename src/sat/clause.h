#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/resource.h"
#include "sat/types.h"

namespace step::sat {

/// Reference to a clause inside the arena (index into a word array).
using CRef = std::uint32_t;
constexpr CRef kCRefUndef = 0xffffffffU;

/// Learnt-clause quality tier (Chanseok Oh's three-tier scheme). Core
/// clauses (lowest LBD) are kept forever, tier2 clauses survive while they
/// keep participating in conflicts, local clauses compete on activity.
enum class ClauseTier : std::uint32_t { kCore = 0, kTier2 = 1, kLocal = 2 };

/// Clause header + inline literal array, stored in the arena.
///
/// Layout (32-bit words):
///   word 0: size (27 bits) | learnt flag (1 bit) | unused
///   word 1: activity (float, learnt only)
///   word 2: proof id (resolution-proof logging)
///   word 3: tier (2 bits) | removed (1) | used (1) | LBD (28 bits)
/// Every clause carries a proof id so the resolution logger can name it.
class Clause {
 public:
  std::uint32_t size() const { return header_ >> 5; }
  bool learnt() const { return (header_ & 1U) != 0; }

  Lit& operator[](std::uint32_t i) { return lits_[i]; }
  const Lit& operator[](std::uint32_t i) const { return lits_[i]; }

  std::span<const Lit> lits() const { return {lits_, size()}; }
  std::span<Lit> lits() { return {lits_, size()}; }

  float activity() const { return activity_; }
  void set_activity(float a) { activity_ = a; }

  std::uint32_t proof_id() const { return proof_id_; }
  void set_proof_id(std::uint32_t id) { proof_id_ = id; }

  ClauseTier tier() const { return static_cast<ClauseTier>(extra_ & 3U); }
  void set_tier(ClauseTier t) {
    extra_ = (extra_ & ~3U) | static_cast<std::uint32_t>(t);
  }

  /// Lazily deleted (inprocessing); skipped everywhere, space reclaimed never
  /// (the arena is append-only so CRefs stay stable).
  bool removed() const { return (extra_ & 4U) != 0; }
  void set_removed() { extra_ |= 4U; }

  /// Touched by conflict analysis since the last reduce_db() round; tier2
  /// clauses that stay untouched are demoted to local.
  bool used() const { return (extra_ & 8U) != 0; }
  void set_used(bool u) { extra_ = u ? (extra_ | 8U) : (extra_ & ~8U); }

  std::uint32_t lbd() const { return extra_ >> 4; }
  void set_lbd(std::uint32_t l) { extra_ = (extra_ & 15U) | (l << 4); }

  /// In-place shrink after strengthening/vivification. The caller owns
  /// re-attaching watches; trailing arena words are simply abandoned.
  void shrink(std::uint32_t new_size) {
    STEP_CHECK(new_size >= 1 && new_size <= size());
    header_ = (new_size << 5) | (header_ & 31U);
  }

 private:
  friend class ClauseArena;
  void init(std::span<const Lit> ls, bool learnt) {
    header_ = (static_cast<std::uint32_t>(ls.size()) << 5) |
              (learnt ? 1U : 0U);
    activity_ = 0.0f;
    proof_id_ = 0;
    extra_ = static_cast<std::uint32_t>(ClauseTier::kLocal);
    for (std::uint32_t i = 0; i < ls.size(); ++i) lits_[i] = ls[i];
  }

  std::uint32_t header_;
  float activity_;
  std::uint32_t proof_id_;
  std::uint32_t extra_;
  Lit lits_[1];  // flexible array; arena allocates the real length
};

/// Bump-pointer arena for clauses.
///
/// Clauses are identified by CRef word offsets, which remain stable for the
/// lifetime of the arena (no garbage collection is performed while proof
/// logging is enabled; the solver's reduce_db() compacts watch lists only).
class ClauseArena {
 public:
  ClauseArena() = default;
  ClauseArena(const ClauseArena&) = delete;
  ClauseArena& operator=(const ClauseArena&) = delete;
  ClauseArena(ClauseArena&& o) noexcept
      : mem_(std::move(o.mem_)),
        mem_tracker_(o.mem_tracker_),
        charged_bytes_(o.charged_bytes_) {
    o.mem_tracker_ = nullptr;
    o.charged_bytes_ = 0;
  }
  ClauseArena& operator=(ClauseArena&& o) noexcept {
    if (this != &o) {
      if (mem_tracker_ != nullptr) mem_tracker_->release(charged_bytes_);
      mem_ = std::move(o.mem_);
      mem_tracker_ = o.mem_tracker_;
      charged_bytes_ = o.charged_bytes_;
      o.mem_tracker_ = nullptr;
      o.charged_bytes_ = 0;
    }
    return *this;
  }
  ~ClauseArena() {
    if (mem_tracker_ != nullptr) mem_tracker_->release(charged_bytes_);
  }

  CRef alloc(std::span<const Lit> lits, bool learnt) {
    STEP_CHECK(!lits.empty());
    const std::size_t need = kHeaderWords + lits.size();
    const CRef ref = static_cast<CRef>(mem_.size());
    mem_.resize(mem_.size() + need);
    clause_at(ref).init(lits, learnt);
    charge_growth();
    return ref;
  }

  Clause& operator[](CRef r) { return clause_at(r); }
  const Clause& operator[](CRef r) const {
    return const_cast<ClauseArena*>(this)->clause_at(r);
  }

  std::size_t size_words() const { return mem_.size(); }

  /// Resource-governor hook: arena capacity growth — the dominant
  /// allocation of a hard cone (learnt clauses) — is charged to the
  /// cone's tracker and refunded on destruction, so abandoning the cone
  /// returns its memory to the run budget (common/resource.h).
  void set_mem_tracker(MemTracker* tracker) {
    mem_tracker_ = tracker;
    charge_growth();
  }

 private:
  static constexpr std::size_t kHeaderWords = 4;

  void charge_growth() {
    if (mem_tracker_ == nullptr) return;
    const std::size_t cap = mem_.capacity() * sizeof(std::uint32_t);
    if (cap > charged_bytes_) {
      mem_tracker_->charge(cap - charged_bytes_);
      charged_bytes_ = cap;
    }
  }

  Clause& clause_at(CRef r) {
    return *reinterpret_cast<Clause*>(mem_.data() + r);
  }

  std::vector<std::uint32_t> mem_;
  MemTracker* mem_tracker_ = nullptr;
  std::size_t charged_bytes_ = 0;
};

}  // namespace step::sat
