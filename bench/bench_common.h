#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "common/rng.h"
#include "core/circuit_driver.h"

namespace step::bench {

// ---- SAT solver configurations A/B'd by the benches --------------------
// One definition so the committed BENCH_sat.json, the google-benchmark
// micro variants and any future consumer compare the *same* baselines.

/// The shipping defaults (Luby restarts, LBD tiers, inprocessing,
/// target-phase rephasing, binary watch lists).
inline sat::SolverOptions modern_sat_config() { return {}; }

/// The shipping defaults with EMA restarts instead of Luby — kept in the
/// A/B so the restart trade-off stays measured (EMA wins hard single-shot
/// refutations, Luby the incremental search loop).
inline sat::SolverOptions modern_ema_sat_config() {
  sat::SolverOptions o;
  o.restart_mode = sat::RestartMode::kEma;
  return o;
}

/// Per-technique preprocessing ablations: the shipping defaults with
/// exactly one preprocessing technique disabled, plus the whole tier
/// off. The A/B matrix over these is what the CI gate consumes.
inline sat::SolverOptions no_elim_sat_config() {
  sat::SolverOptions o;
  o.elim = false;
  return o;
}

inline sat::SolverOptions no_scc_sat_config() {
  sat::SolverOptions o;
  o.scc = false;
  return o;
}

inline sat::SolverOptions no_probe_sat_config() {
  sat::SolverOptions o;
  o.probe = false;
  return o;
}

inline sat::SolverOptions no_preprocess_sat_config() {
  sat::SolverOptions o;
  o.elim = false;
  o.scc = false;
  o.probe = false;
  return o;
}

/// The pre-modernization (PR-3) solver: Luby restarts and the old
/// size-triggered activity-only halving; no tiers, no inprocessing, no
/// rephasing.
inline sat::SolverOptions legacy_sat_config() {
  sat::SolverOptions o;
  o.restart_mode = sat::RestartMode::kLuby;
  o.rephase_interval = 0;
  o.inprocess = false;
  o.core_lbd_cut = 0;
  o.tier2_lbd_cut = 0;
  o.reduce_interval = 1 << 30;
  o.reduce_min_local = 0;
  return o;
}

// ---- shared micro SAT instances ----------------------------------------

/// Pigeonhole principle with `holes`+1 pigeons (UNSAT).
inline void add_pigeonhole(sat::Solver& s, int holes) {
  std::vector<std::vector<sat::Var>> p(holes + 1, std::vector<sat::Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (auto& row : p) {
    sat::LitVec c;
    for (auto v : row) c.push_back(sat::mk_lit(v));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i <= holes; ++i) {
      for (int j = i + 1; j <= holes; ++j) {
        s.add_clause({~sat::mk_lit(p[i][h]), ~sat::mk_lit(p[j][h])});
      }
    }
  }
}

/// Uniform random 3-CNF at the given clause/variable ratio.
inline void add_random3cnf(sat::Solver& s, int nv, double ratio,
                           std::uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < nv; ++i) s.new_var();
  const int nc = static_cast<int>(nv * ratio);
  for (int c = 0; c < nc; ++c) {
    sat::LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(sat::mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
    }
    s.add_clause(cl);
  }
}

/// Parses `<flag> <path>` from argv; empty string = flag absent.
inline std::string path_from_args(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing output path\n", flag);
        std::exit(2);
      }
      return argv[i + 1];
    }
  }
  return {};
}

/// True iff the bare flag appears in argv.
inline bool flag_from_args(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Parses `--json <path>` from argv; empty string = no JSON output.
inline std::string json_path_from_args(int argc, char** argv) {
  return path_from_args(argc, argv, "--json");
}

/// Tiny streaming JSON writer — just enough structure for the bench
/// artifacts (objects, arrays, scalars), so the perf trajectory files are
/// machine-readable without pulling in a JSON dependency.
class JsonWriter {
 public:
  explicit JsonWriter(FILE* f) : f_(f) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const char* k) {
    separate();
    write_string(k);
    std::fputc(':', f_);
    pending_value_ = true;
  }

  void value(const char* s) { scalar(); write_string(s); }
  void value(const std::string& s) { value(s.c_str()); }
  void value(double d) { scalar(); std::fprintf(f_, "%.6f", d); }
  void value(long long i) { scalar(); std::fprintf(f_, "%lld", i); }
  void value(std::uint64_t i) {
    scalar();
    std::fprintf(f_, "%llu", static_cast<unsigned long long>(i));
  }
  void value(int i) { value(static_cast<long long>(i)); }
  void value(long i) { value(static_cast<long long>(i)); }
  void value(bool b) { scalar(); std::fputs(b ? "true" : "false", f_); }

  template <typename T>
  void kv(const char* k, T v) {
    key(k);
    value(v);
  }

 private:
  void open(char c) {
    separate();
    std::fputc(c, f_);
    nonempty_.push_back(false);
  }
  void close(char c) {
    nonempty_.pop_back();
    std::fputc(c, f_);
  }
  void scalar() { separate(); }
  /// Emits the comma before a sibling element; a value right after key()
  /// is not a sibling.
  void separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!nonempty_.empty()) {
      if (nonempty_.back()) std::fputc(',', f_);
      nonempty_.back() = true;
    }
  }
  void write_string(const char* s) {
    std::fputc('"', f_);
    for (; *s != '\0'; ++s) {
      if (*s == '"' || *s == '\\') std::fputc('\\', f_);
      std::fputc(*s, f_);
    }
    std::fputc('"', f_);
  }

  FILE* f_;
  std::vector<bool> nonempty_;
  bool pending_value_ = false;
};

/// Parses `-j <n>` from argv, falling back to STEP_BENCH_THREADS, then to
/// 1 (the sequential reference run). 0 means "all hardware threads".
/// Rejects missing or non-numeric values loudly: a silently mis-parsed
/// thread count would skew the published table numbers.
inline core::ParallelDriverOptions parallel_from_env_or_args(int argc,
                                                             char** argv) {
  auto parse_count = [](const char* what, const char* text) {
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || v < 0) {
      std::fprintf(stderr, "%s: expected a thread count >= 0, got \"%s\"\n",
                   what, text);
      std::exit(2);
    }
    return static_cast<int>(v);
  };
  core::ParallelDriverOptions par;
  if (const char* env = std::getenv("STEP_BENCH_THREADS")) {
    par.num_threads = parse_count("STEP_BENCH_THREADS", env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "-j: missing thread count\n");
        std::exit(2);
      }
      par.num_threads = parse_count("-j", argv[++i]);
    }
  }
  return par;
}

/// Emits the common per-run counters of one engine×circuit run as keys of
/// the currently open JSON object.
inline void json_run_stats(JsonWriter& j, const core::CircuitRunResult& r) {
  j.kv("pos", static_cast<long long>(r.pos.size()));
  j.kv("decomposed", r.num_decomposed());
  j.kv("proven_optimal", r.num_proven_optimal());
  j.kv("cpu_s", r.total_cpu_s);
  j.kv("sat_calls", r.total_sat_calls());
  j.kv("qbf_calls", r.total_qbf_calls());
  j.kv("qbf_iterations", r.total_qbf_iterations());
  j.kv("abstraction_conflicts", r.total_abstraction_conflicts());
  j.kv("verification_conflicts", r.total_verification_conflicts());
  // The per-reason outcome taxonomy (core/outcome.h): "ok" always appears,
  // other reasons only when nonzero — artifact diffs then surface any new
  // failure mode a perf change introduces.
  const core::OutcomeCounts oc = r.outcome_counts();
  j.key("outcomes");
  j.begin_object();
  for (int i = 0; i < core::kNumOutcomeReasons; ++i) {
    const auto reason = static_cast<core::OutcomeReason>(i);
    if (reason != core::OutcomeReason::kOk && oc.of(reason) == 0) continue;
    j.kv(core::to_string(reason), oc.of(reason));
  }
  j.end_object();
  j.kv("degraded", r.num_degraded());
  // Portfolio accounting, only for --portfolio runs (fixed-engine
  // artifacts stay byte-identical to before the portfolio existed).
  if (r.num_probed() > 0) {
    j.kv("probed", r.num_probed());
    j.kv("raced", r.num_raced());
    j.kv("race_cancels", r.total_race_cancels());
    j.kv("pool_published", r.total_pool_published());
    j.kv("pool_imported", r.total_pool_imported());
  }
}

/// Budgets scaled to the suite size (the paper: 6000 s per circuit, 4 s per
/// QBF call on a 2.93 GHz Xeon; our suite is ~100x smaller).
struct BenchBudgets {
  double circuit_s = 20.0;
  double po_s = 2.0;
  double qbf_call_s = 0.25;
};

inline BenchBudgets budgets_for(benchgen::SuiteScale scale) {
  switch (scale) {
    case benchgen::SuiteScale::kTiny: return {5.0, 1.0, 0.25};
    case benchgen::SuiteScale::kSmall: return {20.0, 2.0, 0.25};
    case benchgen::SuiteScale::kFull: return {120.0, 6.0, 1.0};
  }
  return {};
}

inline core::DecomposeOptions engine_options(core::Engine engine,
                                             core::GateOp op,
                                             const BenchBudgets& b) {
  core::DecomposeOptions o;
  o.engine = engine;
  o.op = op;
  o.po_budget_s = b.po_s;
  o.optimum.call_timeout_s = b.qbf_call_s;
  // Benches time the partition search; extraction/verification are
  // exercised by the test suite and the examples.
  o.extract = false;
  o.verify = false;
  return o;
}

/// One engine across the whole suite.
inline std::vector<core::CircuitRunResult> run_suite(
    const std::vector<benchgen::BenchCircuit>& suite, core::Engine engine,
    core::GateOp op, const BenchBudgets& b,
    const core::ParallelDriverOptions& par = {}) {
  std::vector<core::CircuitRunResult> out;
  out.reserve(suite.size());
  for (const benchgen::BenchCircuit& c : suite) {
    out.push_back(core::run_circuit(
        c.aig, c.name, engine_options(engine, op, b), b.circuit_s, par));
  }
  return out;
}

inline const char* scale_name(benchgen::SuiteScale s) {
  switch (s) {
    case benchgen::SuiteScale::kTiny: return "tiny";
    case benchgen::SuiteScale::kSmall: return "small";
    case benchgen::SuiteScale::kFull: return "full";
  }
  return "?";
}

inline void print_preamble(const char* what, benchgen::SuiteScale scale) {
  std::printf("# %s\n", what);
  std::printf("# suite scale: %s (STEP_BENCH_SCALE=tiny|small|full)\n",
              scale_name(scale));
  std::printf(
      "# substitution note: generator suite stands in for ISCAS/ITC/LGSYNTH"
      " (DESIGN.md par.4)\n");
}

}  // namespace step::bench
