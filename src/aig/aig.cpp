#include "aig/aig.h"

#include <algorithm>

namespace step::aig {

namespace {

/// splitmix64 finalizer — strong enough that linear probing stays short
/// even on the highly regular keys adjacent AND pairs produce.
inline std::uint64_t hash_key(std::uint64_t k) {
  k += 0x9e3779b97f4a7c15ULL;
  k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
  k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

}  // namespace

Lit Aig::add_input(std::string name) {
  const std::uint32_t node = num_nodes();
  fanin0_.push_back(kLitInvalid);
  fanin1_.push_back(kLitInvalid);
  input_index_.push_back(static_cast<std::int32_t>(inputs_.size()));
  inputs_.push_back(node);
  if (name.empty()) name = "x" + std::to_string(inputs_.size() - 1);
  input_names_.push_back(std::move(name));
  return mk_lit(node);
}

std::uint32_t Aig::add_output(Lit driver, std::string name) {
  STEP_CHECK(node_of(driver) < num_nodes());
  const std::uint32_t idx = num_outputs();
  outputs_.push_back(driver);
  if (name.empty()) name = "y" + std::to_string(idx);
  output_names_.push_back(std::move(name));
  return idx;
}

void Aig::reserve(std::uint32_t nodes, std::uint32_t inputs,
                  std::uint32_t outputs) {
  fanin0_.reserve(nodes);
  fanin1_.reserve(nodes);
  input_index_.reserve(nodes);
  if (inputs != 0) {
    inputs_.reserve(inputs);
    input_names_.reserve(inputs);
  }
  if (outputs != 0) {
    outputs_.reserve(outputs);
    output_names_.reserve(outputs);
  }
}

std::size_t Aig::memory_bytes() const {
  std::size_t bytes = fanin0_.capacity() * sizeof(Lit) +
                      fanin1_.capacity() * sizeof(Lit) +
                      input_index_.capacity() * sizeof(std::int32_t) +
                      inputs_.capacity() * sizeof(std::uint32_t) +
                      outputs_.capacity() * sizeof(Lit) +
                      strash_keys_.capacity() * sizeof(std::uint64_t) +
                      strash_vals_.capacity() * sizeof(std::uint32_t);
  bytes += input_names_.capacity() * sizeof(std::string);
  bytes += output_names_.capacity() * sizeof(std::string);
  // Short names live in SSO storage already counted above; only names
  // long enough to spill charge extra.
  for (const std::string& s : input_names_) {
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  for (const std::string& s : output_names_) {
    if (s.capacity() > sizeof(std::string)) bytes += s.capacity();
  }
  return bytes;
}

void Aig::strash_grow() {
  const std::size_t cap =
      strash_keys_.empty() ? 1024 : strash_keys_.size() * 2;
  std::vector<std::uint64_t> keys(cap, 0);
  std::vector<std::uint32_t> vals(cap);
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < strash_keys_.size(); ++i) {
    const std::uint64_t k = strash_keys_[i];
    if (k == 0) continue;
    std::size_t slot = hash_key(k) & mask;
    while (keys[slot] != 0) slot = (slot + 1) & mask;
    keys[slot] = k;
    vals[slot] = strash_vals_[i];
  }
  strash_keys_ = std::move(keys);
  strash_vals_ = std::move(vals);
}

Lit Aig::strash_lookup_or_insert(Lit a, Lit b) {
  if (strash_used_ * 10 >= strash_keys_.size() * 7) strash_grow();
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  const std::size_t mask = strash_keys_.size() - 1;
  std::size_t slot = hash_key(key) & mask;
  while (strash_keys_[slot] != 0) {
    if (strash_keys_[slot] == key) return mk_lit(strash_vals_[slot]);
    slot = (slot + 1) & mask;
  }
  const std::uint32_t node = num_nodes();
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  input_index_.push_back(-1);
  strash_keys_[slot] = key;
  strash_vals_[slot] = node;
  ++strash_used_;
  return mk_lit(node);
}

Lit Aig::land(Lit a, Lit b) {
  STEP_CHECK(node_of(a) < num_nodes() && node_of(b) < num_nodes());
  // Constant folding and trivial cases.
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lnot(b)) return kLitFalse;
  return strash_lookup_or_insert(a, b);
}

Lit Aig::land_many(const std::vector<Lit>& ls) {
  // Balanced tree keeps depth logarithmic.
  if (ls.empty()) return kLitTrue;
  std::vector<Lit> cur = ls;
  while (cur.size() > 1) {
    std::vector<Lit> next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) {
      next.push_back(land(cur[i], cur[i + 1]));
    }
    if (cur.size() % 2 != 0) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur[0];
}

Lit Aig::lor_many(const std::vector<Lit>& ls) {
  std::vector<Lit> neg(ls.size());
  std::transform(ls.begin(), ls.end(), neg.begin(), lnot);
  return lnot(land_many(neg));
}

Lit Aig::lxor_many(const std::vector<Lit>& ls) {
  Lit acc = kLitFalse;
  for (Lit l : ls) acc = lxor(acc, l);
  return acc;
}

std::uint32_t Aig::cone_size(Lit root) const {
  std::vector<char> visited(num_nodes(), 0);
  std::vector<std::uint32_t> stack{node_of(root)};
  std::uint32_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    if (!is_and(n)) continue;
    ++count;
    stack.push_back(node_of(fanin0_[n]));
    stack.push_back(node_of(fanin1_[n]));
  }
  return count;
}

}  // namespace step::aig
