#include "core/bidec_types.h"

// Metrics and Partition are header-only; this translation unit exists to
// give the core library a stable anchor and to host the odd non-inline
// helper as the API grows.

namespace step::core {

// (intentionally empty)

}  // namespace step::core
