// Additional invariant coverage: interpolant variable containment,
// synthesis option paths, driver accounting.

#include <gtest/gtest.h>

#include "aig/support.h"
#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "core/extract.h"
#include "core/partition_check.h"
#include "core/synthesis.h"
#include "itp/interpolant.h"
#include "test_util.h"

namespace step {
namespace {

TEST(ItpContainment, InterpolantUsesOnlySharedVariables) {
  // Structural support of every computed interpolant must stay within the
  // mapped (shared) variables — McMillan's containment property, checked
  // on the real extraction queries through fA/fB support restrictions.
  Rng rng(13579);
  int checked = 0;
  for (int iter = 0; iter < 80 && checked < 12; ++iter) {
    const int n = rng.next_int(3, 7);
    const core::Cone cone =
        testutil::random_cone(n, rng.next_int(5, 24), rng.next());
    const core::Partition p = testutil::random_partition(n, rng);
    if (!p.non_trivial()) continue;
    if (!core::check_partition_exhaustive(cone, core::GateOp::kOr, p)) continue;
    ++checked;
    const core::ExtractedFunctions fns =
        core::extract_functions(cone, core::GateOp::kOr, p);
    for (std::uint32_t i : aig::structural_support(fns.aig, fns.fa)) {
      EXPECT_NE(p.cls[i], core::VarClass::kB);
    }
    for (std::uint32_t i : aig::structural_support(fns.aig, fns.fb)) {
      EXPECT_NE(p.cls[i], core::VarClass::kA);
    }
  }
  EXPECT_GT(checked, 3);
}

TEST(SynthesisOptions, FirstOpModeDiffersFromBestOpOnlyInStructure) {
  const aig::Aig circ = benchgen::random_sop(3, 3, 2, 4, 4, 0x777);
  core::SynthesisOptions first;
  first.engine = core::Engine::kMg;
  first.pick_best_op = false;
  core::SynthesisOptions best = first;
  best.pick_best_op = true;
  const core::SynthesisResult r1 = core::resynthesize(circ, first);
  const core::SynthesisResult r2 = core::resynthesize(circ, best);
  // Both preserve the function (checked elsewhere); both decompose.
  EXPECT_GT(r1.stats.decompositions, 0);
  EXPECT_GT(r2.stats.decompositions, 0);
}

TEST(SynthesisOptions, MaxDepthZeroCopiesEverything) {
  const aig::Aig circ = benchgen::parity_tree(6);
  core::SynthesisOptions o;
  o.engine = core::Engine::kMg;
  o.max_depth = 0;
  const core::SynthesisResult r = core::resynthesize(circ, o);
  EXPECT_EQ(r.stats.decompositions, 0);
  EXPECT_EQ(r.stats.leaves, 1);
  EXPECT_EQ(r.stats.ands_before, r.stats.ands_after);
}

TEST(SynthesisOptions, LeafSupportThresholdStopsEarly) {
  const aig::Aig circ = benchgen::parity_tree(8);
  core::SynthesisOptions fine;
  fine.engine = core::Engine::kMg;
  fine.leaf_support = 2;
  core::SynthesisOptions coarse = fine;
  coarse.leaf_support = 4;
  const auto r_fine = core::resynthesize(circ, fine);
  const auto r_coarse = core::resynthesize(circ, coarse);
  EXPECT_GT(r_fine.stats.decompositions, r_coarse.stats.decompositions);
}

TEST(DriverAccounting, ProvenOptimalCountsWithinDecomposed) {
  const aig::Aig circ = benchgen::random_sop(4, 4, 2, 6, 4, 0x4242);
  core::DecomposeOptions opts;
  opts.engine = core::Engine::kQbfDisjoint;
  const core::CircuitRunResult r = core::run_circuit(circ, "sop", opts, 60.0);
  EXPECT_LE(r.num_proven_optimal(), r.num_decomposed());
  EXPECT_GT(r.num_proven_optimal(), 0);
  for (const core::PoOutcome& po : r.pos) {
    EXPECT_GE(po.support, 2);
    EXPECT_GE(po.cpu_s, 0.0);
  }
}

TEST(DriverAccounting, LjhOnMultiOutputCircuit) {
  const aig::Aig circ = benchgen::merge(
      {benchgen::random_sop(3, 3, 1, 3, 3, 0x31), benchgen::mux_tree(2)});
  core::DecomposeOptions opts;
  opts.engine = core::Engine::kLjh;
  const core::CircuitRunResult r = core::run_circuit(circ, "m", opts, 60.0);
  EXPECT_GT(r.num_decomposed(), 0);
  // LJH never claims proven optimality.
  EXPECT_EQ(r.num_proven_optimal(), 0);
}

TEST(ExtractLarger, SatOnlyVerificationOnWiderCones) {
  // Beyond exhaustive-comfort sizes, rely on the SAT miter alone.
  Rng rng(86420);
  int checked = 0;
  for (int iter = 0; iter < 40 && checked < 4; ++iter) {
    const aig::Aig circ = benchgen::random_sop(5, 5, 3, 1, 6, rng.next());
    const core::Cone cone = core::extract_po_cone(circ, 0);
    if (cone.n() < 10) continue;
    core::DecomposeOptions opts;
    opts.engine = core::Engine::kQbfCombined;
    const core::DecomposeResult r = core::BiDecomposer(opts).decompose(cone);
    if (r.status != core::DecomposeStatus::kDecomposed) continue;
    ++checked;
    EXPECT_TRUE(r.verified);
    ASSERT_TRUE(r.functions.has_value());
    EXPECT_TRUE(core::verify_decomposition(cone, *r.functions));
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace step
