// Hardness-aware cone scheduling (core/schedule.h): score model
// monotonicity, order determinism, batching shape, and the makespan
// property the whole subsystem exists for — hardest-first beats FIFO when
// one giant cone hides at the end of the PO list. All through the
// deterministic list-scheduling simulation, never wall clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "aig/support.h"
#include "benchgen/epfl.h"
#include "benchgen/generators.h"
#include "core/schedule.h"

namespace step::core {
namespace {

TEST(PredictedHardness, WiderSupportDominates) {
  ConeCost narrow{0, 8, 100.0, 0.0};
  ConeCost wide{1, 16, 100.0, 0.0};
  EXPECT_GT(predicted_hardness(wide), predicted_hardness(narrow));
}

TEST(PredictedHardness, BiggerConeCostsMore) {
  ConeCost small{0, 10, 50.0, 0.0};
  ConeCost big{1, 10, 500.0, 0.0};
  EXPECT_GT(predicted_hardness(big), predicted_hardness(small));
}

TEST(PredictedHardness, WarmCacheDiscounts) {
  ConeCost cold{0, 10, 100.0, 0.0};
  ConeCost warm{1, 10, 100.0, 0.8};
  EXPECT_LT(predicted_hardness(warm), predicted_hardness(cold));
  EXPECT_GT(predicted_hardness(warm), 0.0);
}

TEST(PredictedHardness, TrivialConesScoreZeroAndHugeSupportsSaturate) {
  EXPECT_EQ(predicted_hardness({0, 0, 10.0, 0.0}), 0.0);
  EXPECT_EQ(predicted_hardness({0, 1, 10.0, 0.0}), 0.0);
  // Clamped exponent: a 1000-input cone must not overflow to inf.
  const double huge = predicted_hardness({0, 1000, 1e6, 0.0});
  EXPECT_TRUE(std::isfinite(huge));
  EXPECT_GE(huge, predicted_hardness({0, 64, 1e6, 0.0}));
}

TEST(TreeSizeEstimates, ChainAndSharingBehaveAsDocumented) {
  aig::Aig a;
  const aig::Lit x = a.add_input("x");
  const aig::Lit y = a.add_input("y");
  const aig::Lit z = a.add_input("z");
  const aig::Lit g = a.land(x, y);
  const aig::Lit h = a.land(g, z);
  // Shared node double-counted per path — an upper bound, not exact.
  const aig::Lit top = a.land(h, aig::lnot(g));
  const std::vector<double> est = tree_size_estimates(a);
  EXPECT_EQ(est[aig::node_of(x)], 0.0);
  EXPECT_EQ(est[aig::node_of(g)], 1.0);
  EXPECT_EQ(est[aig::node_of(h)], 2.0);
  EXPECT_EQ(est[aig::node_of(top)], 4.0);  // 1 + est[h] + est[g]
}

TEST(ScheduleOrder, FifoIsIdentityHardnessIsSortedPermutation) {
  const std::vector<double> scores = {3.0, 9.0, 1.0, 9.0, 5.0};
  const auto fifo = schedule_order(scores, SchedulePolicy::kFifo);
  for (std::size_t i = 0; i < fifo.size(); ++i) EXPECT_EQ(fifo[i], i);

  const auto hard = schedule_order(scores, SchedulePolicy::kHardness);
  // Descending scores; equal scores keep ascending index (stable).
  const std::vector<std::size_t> expect = {1, 3, 4, 0, 2};
  EXPECT_EQ(hard, expect);

  // Always a permutation.
  auto sorted = hard;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ScheduleOrder, ShapeCountsOutliers) {
  // Median 1.0; the 100.0 cone is >= 8x median.
  const std::vector<double> scores = {1.0, 1.0, 1.0, 1.0, 100.0};
  ScheduleShape shape;
  schedule_order(scores, SchedulePolicy::kHardness, &shape);
  EXPECT_EQ(shape.jobs, 5);
  EXPECT_EQ(shape.outliers, 1);
  EXPECT_EQ(shape.max_score, 100.0);
}

TEST(ScheduleBatches, FifoSingletonsHardnessChunks) {
  std::vector<double> scores(70, 1.0);
  scores[0] = 1000.0;  // outlier
  const auto order = schedule_order(scores, SchedulePolicy::kHardness);

  const auto fifo = schedule_batches(
      scores, schedule_order(scores, SchedulePolicy::kFifo),
      SchedulePolicy::kFifo);
  EXPECT_EQ(fifo.size(), scores.size());
  for (const auto& b : fifo) EXPECT_EQ(b.size(), 1u);

  ScheduleShape shape;
  const auto hard =
      schedule_batches(scores, order, SchedulePolicy::kHardness, &shape);
  // 1 singleton outlier + ceil(69/32) = 3 chunks.
  EXPECT_EQ(hard.size(), 4u);
  EXPECT_EQ(hard[0].size(), 1u);
  EXPECT_EQ(hard[0][0], 0u);
  EXPECT_EQ(shape.batches, 4);
  // Every job appears exactly once across batches.
  std::vector<int> seen(scores.size(), 0);
  for (const auto& b : hard) {
    for (const std::size_t j : b) ++seen[j];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(SimulatedMakespan, HardestFirstBeatsFifoOnGiantConeLast) {
  // 63 unit jobs followed by one 40-unit giant, 8 workers. FIFO spreads
  // the small jobs then starts the giant on an otherwise-idle pool:
  // makespan ~= 8 + 40. Hardest-first starts the giant immediately:
  // makespan = max(40, ceil(63/7)) = 40. The LPT advantage the hardness
  // policy is built on.
  std::vector<double> costs(64, 1.0);
  costs[63] = 40.0;
  std::vector<double> scores = costs;  // a perfect hardness predictor
  const auto fifo = schedule_order(scores, SchedulePolicy::kFifo);
  const auto hard = schedule_order(scores, SchedulePolicy::kHardness);
  const double mk_fifo = simulated_makespan(costs, fifo, 8);
  const double mk_hard = simulated_makespan(costs, hard, 8);
  EXPECT_EQ(mk_hard, 40.0);
  EXPECT_GT(mk_fifo, mk_hard + 5.0);
}

TEST(SimulatedMakespan, OneWorkerOrderIsIrrelevant) {
  const std::vector<double> costs = {3.0, 1.0, 4.0, 1.0, 5.0};
  const auto fifo = schedule_order(costs, SchedulePolicy::kFifo);
  const auto hard = schedule_order(costs, SchedulePolicy::kHardness);
  EXPECT_DOUBLE_EQ(simulated_makespan(costs, fifo, 1),
                   simulated_makespan(costs, hard, 1));
}

TEST(GiantConeSuite, GiantConeScoresAsTheTopOutlier) {
  // The generator puts the giant cone last in PO order; the hardness
  // order must put it first.
  const aig::Aig circ = benchgen::giant_cone_suite(36, 40, 5, 0xabc);
  const std::vector<double> est = tree_size_estimates(circ);
  std::vector<double> scores;
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    ConeCost c;
    c.po = po;
    c.support = static_cast<int>(
        aig::structural_support(circ, circ.output(po)).size());
    c.est_ands = est[aig::node_of(circ.output(po))];
    scores.push_back(predicted_hardness(c));
  }
  ScheduleShape shape;
  const auto order = schedule_order(scores, SchedulePolicy::kHardness, &shape);
  EXPECT_EQ(order[0], scores.size() - 1);
  EXPECT_GE(shape.outliers, 1);
}

}  // namespace
}  // namespace step::core
