#include "core/partition_check.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace step::core {
namespace {

Cone cone_or2() {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lor(x, y);
  return c;
}

Partition make_p(std::initializer_list<char> spec) {
  Partition p;
  for (char ch : spec) {
    p.cls.push_back(ch == 'A' ? VarClass::kA
                              : ch == 'B' ? VarClass::kB : VarClass::kC);
  }
  return p;
}

// ---------- hand-verified cases -----------------------------------------------

TEST(PartitionCheck, OrOfTwoVarsSplits) {
  const Cone c = cone_or2();
  EXPECT_TRUE(check_partition(c, GateOp::kOr, make_p({'A', 'B'})));
  EXPECT_TRUE(check_partition_exhaustive(c, GateOp::kOr, make_p({'A', 'B'})));
}

TEST(PartitionCheck, AndOfTwoVarsIsNotOrDecomposable) {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.land(x, y);
  // x∧y cannot be fA(x) ∨ fB(y) ...
  EXPECT_FALSE(check_partition(c, GateOp::kOr, make_p({'A', 'B'})));
  EXPECT_FALSE(check_partition_exhaustive(c, GateOp::kOr, make_p({'A', 'B'})));
  // ... but is trivially AND-decomposable.
  EXPECT_TRUE(check_partition(c, GateOp::kAnd, make_p({'A', 'B'})));
  EXPECT_TRUE(check_partition_exhaustive(c, GateOp::kAnd, make_p({'A', 'B'})));
}

TEST(PartitionCheck, ParityIsXorDecomposableEverywhere) {
  Cone c;
  std::vector<aig::Lit> xs;
  for (int i = 0; i < 5; ++i) xs.push_back(c.aig.add_input());
  c.root = c.aig.lxor_many(xs);
  EXPECT_TRUE(check_partition(c, GateOp::kXor, make_p({'A', 'A', 'B', 'B', 'B'})));
  EXPECT_TRUE(check_partition(c, GateOp::kXor, make_p({'A', 'B', 'A', 'B', 'A'})));
  EXPECT_FALSE(check_partition(c, GateOp::kOr, make_p({'A', 'A', 'B', 'B', 'B'})));
  EXPECT_FALSE(check_partition(c, GateOp::kAnd, make_p({'A', 'B', 'A', 'B', 'A'})));
}

TEST(PartitionCheck, SharedVariablesMakeMuxDecomposable) {
  // f = s ? x : y. With s shared (XC), fA = s∧x and fB = ¬s∧y OR-decompose f.
  Cone c;
  const aig::Lit s = c.aig.add_input();
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lmux(s, x, y);
  EXPECT_TRUE(check_partition(c, GateOp::kOr, make_p({'C', 'A', 'B'})));
  // Without sharing s the mux is not OR bi-decomposable.
  EXPECT_FALSE(check_partition(c, GateOp::kOr, make_p({'A', 'A', 'B'})));
  EXPECT_FALSE(check_partition(c, GateOp::kOr, make_p({'B', 'A', 'B'})));
}

TEST(PartitionCheck, MajorityNeedsSharing) {
  // maj(x,y,z) = xy | xz | yz: valid OR partition A={x}, B={y}, C={z}?
  // fA = x∧z, fB = y∧(x... — check via the oracle instead of intuition.
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  const aig::Lit z = c.aig.add_input();
  c.root = c.aig.lor(c.aig.lor(c.aig.land(x, y), c.aig.land(x, z)),
                     c.aig.land(y, z));
  const Partition p = make_p({'A', 'B', 'C'});
  EXPECT_EQ(check_partition(c, GateOp::kOr, p),
            check_partition_exhaustive(c, GateOp::kOr, p));
  const Partition q = make_p({'A', 'B', 'B'});
  EXPECT_EQ(check_partition(c, GateOp::kOr, q),
            check_partition_exhaustive(c, GateOp::kOr, q));
}

// ---------- SAT formulation vs exhaustive oracle, randomized -------------------

struct OpSeed {
  GateOp op;
  int seed;
};

class CheckAgreement : public ::testing::TestWithParam<OpSeed> {};

TEST_P(CheckAgreement, SatAndExhaustiveAgree) {
  const auto [op, seed] = GetParam();
  Rng rng(seed * 7577 + 101);
  for (int iter = 0; iter < 30; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 24), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    RelaxationSolver rs(m);
    for (int t = 0; t < 8; ++t) {
      const Partition p = testutil::random_partition(n, rng);
      const bool sat_says = rs.is_valid(p);
      const bool oracle_says = check_partition_exhaustive(cone, op, p);
      ASSERT_EQ(sat_says, oracle_says)
          << to_string(op) << " seed=" << seed << " iter=" << iter
          << " partition=" << p.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, CheckAgreement,
    ::testing::Values(OpSeed{GateOp::kOr, 0}, OpSeed{GateOp::kOr, 1},
                      OpSeed{GateOp::kOr, 2}, OpSeed{GateOp::kAnd, 0},
                      OpSeed{GateOp::kAnd, 1}, OpSeed{GateOp::kAnd, 2},
                      OpSeed{GateOp::kXor, 0}, OpSeed{GateOp::kXor, 1},
                      OpSeed{GateOp::kXor, 2}));

// ---------- monotonicity property ----------------------------------------------

TEST(PartitionCheck, MovingVariablesIntoXcPreservesValidity) {
  // If {XA|XB|XC} is valid, then moving any variable into XC keeps it
  // valid (the formula gains constraints). This is the property that makes
  // pair-seeding exact.
  Rng rng(4242);
  for (int iter = 0; iter < 40; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    const GateOp op = static_cast<GateOp>(rng.next_int(0, 2));
    const Partition p = testutil::random_partition(n, rng);
    if (!p.non_trivial() || !check_partition_exhaustive(cone, op, p)) continue;
    for (int i = 0; i < n; ++i) {
      if (p.cls[i] == VarClass::kC) continue;
      Partition q = p;
      q.cls[i] = VarClass::kC;
      if (!q.non_trivial()) continue;
      EXPECT_TRUE(check_partition_exhaustive(cone, op, q))
          << to_string(op) << " " << p.to_string() << " -> " << q.to_string();
    }
  }
}

// ---------- metrics -------------------------------------------------------------

TEST(Metrics, DefinitionsMatchPaper) {
  const Partition p = make_p({'A', 'A', 'B', 'C', 'C'});
  const Metrics m = Metrics::of(p);
  EXPECT_EQ(m.n, 5);
  EXPECT_EQ(m.shared, 2);
  EXPECT_EQ(m.imbalance, 1);
  EXPECT_DOUBLE_EQ(m.disjointness(), 0.4);
  EXPECT_DOUBLE_EQ(m.balancedness(), 0.2);
  EXPECT_DOUBLE_EQ(m.sum(), 0.6);
  EXPECT_EQ(m.combined_cost(), 3);
  EXPECT_EQ(metric_cost(m, MetricKind::kDisjointness), 2);
  EXPECT_EQ(metric_cost(m, MetricKind::kBalancedness), 1);
  EXPECT_EQ(metric_cost(m, MetricKind::kSum), 3);
}

TEST(Metrics, TrivialityDetection) {
  EXPECT_FALSE(make_p({'A', 'A', 'C'}).non_trivial());
  EXPECT_FALSE(make_p({'B', 'C', 'C'}).non_trivial());
  EXPECT_TRUE(make_p({'A', 'B', 'C'}).non_trivial());
}

// ---------- brute-force oracle internal consistency ----------------------------

TEST(BruteForce, OptimumIsValidAndMinimal) {
  Rng rng(777);
  for (int iter = 0; iter < 15; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 16), rng.next());
    for (GateOp op : {GateOp::kOr, GateOp::kAnd, GateOp::kXor}) {
      const BruteForceResult r =
          brute_force_optimum(cone, op, MetricKind::kDisjointness);
      if (!r.decomposable) continue;
      EXPECT_TRUE(r.best.non_trivial());
      EXPECT_TRUE(check_partition_exhaustive(cone, op, r.best));
      EXPECT_EQ(metric_cost(Metrics::of(r.best), MetricKind::kDisjointness),
                r.best_cost);
    }
  }
}

}  // namespace
}  // namespace step::core
