#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"

namespace step::aig {

/// Edge literal into the AIG: 2*node + complement bit.
/// Node 0 is the constant-false node, so lit 0 = false and lit 1 = true.
using Lit = std::uint32_t;
constexpr Lit kLitFalse = 0;
constexpr Lit kLitTrue = 1;
constexpr Lit kLitInvalid = 0xffffffffU;

constexpr Lit mk_lit(std::uint32_t node, bool complemented = false) {
  return (node << 1) | static_cast<Lit>(complemented);
}
constexpr std::uint32_t node_of(Lit l) { return l >> 1; }
constexpr bool is_complemented(Lit l) { return (l & 1U) != 0; }
constexpr Lit lnot(Lit l) { return l ^ 1U; }
constexpr Lit lit_with_sign(Lit l, bool complemented) {
  return (l & ~1U) | static_cast<Lit>(complemented);
}

/// Structurally hashed And-Inverter Graph.
///
/// The in-memory circuit representation used everywhere in this library:
/// PO cones to decompose, QBF matrices, interpolants and the decomposed
/// sub-functions fA/fB are all AIGs. Construction goes through land()/lor()/
/// lxor()/lmux(), which constant-fold and structurally hash, so equivalent
/// sub-DAGs are shared. Node ids are dense and topologically ordered
/// (fanins precede fanouts), so consumers can sweep nodes with a single
/// forward loop instead of a DFS when visiting a whole AIG.
///
/// Storage is struct-of-arrays: one 32-bit packed fanin literal per vector
/// slot and nothing else per node, so a million-gate netlist costs
/// ~12 bytes/node of arena (plus ~17 bytes/node of strash table while
/// hashed construction is in use) instead of pointer-chasing node objects.
/// Streaming loaders with pre-ordered input bypass hashing entirely via
/// add_raw_and() and pre-size the arena with reserve(); memory_bytes()
/// reports the heap the arena currently holds so readers can charge a
/// MemTracker as they build.
class Aig {
 public:
  Aig() {
    fanin0_.push_back(kLitInvalid);  // node 0: constant false
    fanin1_.push_back(kLitInvalid);
    input_index_.push_back(-1);
  }

  // ----- construction -------------------------------------------------------
  /// Creates a primary input; returns its (positive) literal.
  Lit add_input(std::string name = "");

  /// Registers a primary output driven by `driver`; returns its index.
  std::uint32_t add_output(Lit driver, std::string name = "");

  /// AND with constant folding and structural hashing.
  Lit land(Lit a, Lit b);
  Lit lor(Lit a, Lit b) { return lnot(land(lnot(a), lnot(b))); }
  Lit lxor(Lit a, Lit b) {
    return lnot(land(lnot(land(a, lnot(b))), lnot(land(lnot(a), b))));
  }
  Lit lxnor(Lit a, Lit b) { return lnot(lxor(a, b)); }
  /// If-then-else: sel ? t : e.
  Lit lmux(Lit sel, Lit t, Lit e) {
    return lnot(land(lnot(land(sel, t)), lnot(land(lnot(sel), e))));
  }
  Lit land_many(const std::vector<Lit>& ls);
  Lit lor_many(const std::vector<Lit>& ls);
  Lit lxor_many(const std::vector<Lit>& ls);

  /// Appends an AND node verbatim: no constant folding, no structural
  /// hashing, no strash insertion. For streaming loaders whose source is
  /// already topologically ordered (binary AIGER), where node ids must map
  /// 1:1 onto source variables and the hash table would double the memory
  /// envelope. Mixing with land() afterwards stays correct — land() may at
  /// worst rebuild a structural twin of a raw node.
  Lit add_raw_and(Lit f0, Lit f1) {
    STEP_CHECK(node_of(f0) < num_nodes() && node_of(f1) < num_nodes());
    const std::uint32_t node = num_nodes();
    fanin0_.push_back(f0);
    fanin1_.push_back(f1);
    input_index_.push_back(-1);
    return mk_lit(node);
  }

  /// Pre-sizes the node arena (and optionally the input/output tables) so
  /// a loader that knows the final counts builds without reallocation.
  void reserve(std::uint32_t nodes, std::uint32_t inputs = 0,
               std::uint32_t outputs = 0);

  /// Heap bytes the arena currently holds: fanin + input-index capacity,
  /// input/output tables, strash table, and name storage. Capacity-based
  /// (what the process actually paid), so readers can charge a MemTracker
  /// faithfully while streaming.
  std::size_t memory_bytes() const;

  // ----- structure ----------------------------------------------------------
  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(fanin0_.size()); }
  std::uint32_t num_inputs() const { return static_cast<std::uint32_t>(inputs_.size()); }
  std::uint32_t num_outputs() const { return static_cast<std::uint32_t>(outputs_.size()); }
  /// Number of AND gates.
  std::uint32_t num_ands() const { return num_nodes() - num_inputs() - 1; }

  bool is_const(std::uint32_t node) const { return node == 0; }
  bool is_input(std::uint32_t node) const {
    return node != 0 && fanin0_[node] == kLitInvalid;
  }
  bool is_and(std::uint32_t node) const {
    return node != 0 && fanin0_[node] != kLitInvalid;
  }

  Lit fanin0(std::uint32_t node) const { return fanin0_[node]; }
  Lit fanin1(std::uint32_t node) const { return fanin1_[node]; }

  std::uint32_t input_node(std::uint32_t i) const { return inputs_[i]; }
  Lit input_lit(std::uint32_t i) const { return mk_lit(inputs_[i]); }
  /// Input position of `node`, or -1 if it is not an input.
  int input_index(std::uint32_t node) const { return input_index_[node]; }

  Lit output(std::uint32_t i) const { return outputs_[i]; }
  void set_output(std::uint32_t i, Lit driver) { outputs_[i] = driver; }

  const std::string& input_name(std::uint32_t i) const { return input_names_[i]; }
  const std::string& output_name(std::uint32_t i) const { return output_names_[i]; }
  void set_input_name(std::uint32_t i, std::string name) {
    input_names_[i] = std::move(name);
  }
  void set_output_name(std::uint32_t i, std::string name) {
    output_names_[i] = std::move(name);
  }

  /// Linear-time count of AND nodes in the cone of `root`.
  std::uint32_t cone_size(Lit root) const;

 private:
  Lit strash_lookup_or_insert(Lit a, Lit b);
  void strash_grow();

  // Struct-of-arrays node arena: per node only the two packed fanin
  // literals (kLitInvalid marks inputs / the constant) plus the input
  // position. No per-node heap objects.
  std::vector<Lit> fanin0_;
  std::vector<Lit> fanin1_;
  std::vector<std::int32_t> input_index_;
  std::vector<std::uint32_t> inputs_;
  std::vector<Lit> outputs_;
  std::vector<std::string> input_names_;
  std::vector<std::string> output_names_;

  // Open-addressing strash: key = (a << 32 | b) with a >= 2 after folding,
  // so key 0 is a safe empty marker; value = node id. Power-of-two
  // capacity, linear probing, grown at ~70% load. 12 bytes/slot versus
  // the ~56 bytes/entry of an unordered_map node — the difference between
  // fitting a million-gate build in the documented envelope and not.
  std::vector<std::uint64_t> strash_keys_;
  std::vector<std::uint32_t> strash_vals_;
  std::size_t strash_used_ = 0;
};

}  // namespace step::aig
