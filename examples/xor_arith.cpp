// XOR bi-decomposition on arithmetic: the sum bits of a ripple-carry adder.
//
// Each sum bit s_k = a_k ⊕ b_k ⊕ c_k is a textbook XOR-decomposition
// target (Sasao's AND-OR-EXOR networks motivate the XOR case the paper
// inherits from [16]). STEP-QDB minimises |XC| + imbalance jointly: for
// s_k it finds a *disjoint* split (e.g. {a_k, b_k} ⊕ carry logic) with at
// most one variable of imbalance. (STEP-QB alone would happily share
// variables to shave the last unit of imbalance — balancedness is its
// only objective.)
//
//   $ ./xor_arith [adder_width]

#include <cstdio>
#include <cstdlib>

#include "benchgen/generators.h"
#include "core/decomposer.h"

int main(int argc, char** argv) {
  using namespace step;
  const int width = argc > 1 ? std::atoi(argv[1]) : 6;

  const aig::Aig adder = benchgen::ripple_adder(width);

  core::DecomposeOptions opts;
  opts.op = core::GateOp::kXor;
  opts.engine = core::Engine::kQbfCombined;  // STEP-QDB: |XC| + imbalance
  const core::BiDecomposer decomposer(opts);

  std::printf("%-8s %8s %6s %9s %9s %8s %9s\n", "output", "support", "dec?",
              "|XA|/|XB|", "|XC|", "eB", "optimal");
  for (std::uint32_t po = 0; po < adder.num_outputs(); ++po) {
    const core::Cone cone = core::extract_po_cone(adder, po);
    if (cone.n() < 2) continue;
    const core::DecomposeResult r = decomposer.decompose(cone);
    std::printf("%-8s %8d", adder.output_name(po).c_str(), cone.n());
    if (r.status != core::DecomposeStatus::kDecomposed) {
      std::printf(" %6s\n", "no");
      continue;
    }
    std::printf(" %6s %5d/%-3d %9d %8.3f %9s\n", "yes", r.partition.num_a(),
                r.partition.num_b(), r.partition.num_c(),
                r.metrics.balancedness(), r.proven_optimal ? "yes" : "-");
  }

  std::printf(
      "\nEvery sum bit XOR-decomposes with a disjoint, (near-)balanced"
      " partition; the carry-out does not (it is majority-like).\n");
  return 0;
}
