#pragma once

#include "common/timer.h"
#include "core/relaxation.h"

namespace step::core {

/// Reimplementation of STEP-MG: group-oriented MUS-based bi-decomposition
/// (Chen & Marques-Silva, VLSI-SoC'11 [7]) — the paper's fast heuristic
/// baseline and the bootstrap for the QBF models.
///
/// Each relaxable equivalence constraint of eq. (2) forms a clause group
/// controlled by its α/β variable. With all groups enforced the formula is
/// trivially UNSAT (X = X' = X''); a group-MUS over the equivalences is a
/// minimal set that must stay enforced — every group dropped from the MUS
/// frees the corresponding copy variable and moves x into XA (α-group
/// dropped) or XB (β-group dropped). Seeding forces one variable into each
/// of XA and XB so the partition is non-trivial; the first valid seed is
/// used (MG is the paper's "fastest mode").
struct MgOptions {
  /// Seed pairs tested before giving up (covers all pairs by default).
  int max_seed_attempts = 4096;
  /// Conflict budget per MUS SAT call; -1 = unlimited.
  std::int64_t conflict_budget = -1;
};

class MgDecomposer {
 public:
  MgDecomposer(RelaxationSolver& rs, MgOptions opts = {})
      : rs_(rs), opts_(opts) {}

  PartitionSearchResult find_partition(const Deadline* deadline = nullptr);

 private:
  RelaxationSolver& rs_;
  MgOptions opts_;
};

}  // namespace step::core
