// Degenerate quantifier structures and accounting behaviour of the CEGAR
// 2QBF solver, plus finder-level edge cases.

#include <gtest/gtest.h>

#include "core/qbf_model.h"
#include "qbf/qbf2.h"
#include "test_util.h"

namespace step::qbf {
namespace {

TEST(QbfEdge, NoInnerInputsReducesToSat) {
  // ∃a,b ∀∅ . a ∧ ¬b — plain satisfiability.
  aig::Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit b = m.add_input("b");
  ExistsForallSolver s(m, m.land(a, aig::lnot(b)), {0, 1}, {});
  const Qbf2Result r = s.solve();
  ASSERT_EQ(r.status, Qbf2Status::kTrue);
  EXPECT_EQ(r.outer_model[0], sat::Lbool::kTrue);
  EXPECT_EQ(r.outer_model[1], sat::Lbool::kFalse);
}

TEST(QbfEdge, NoOuterInputsReducesToValidity) {
  // ∃∅ ∀x,y . x ∨ ¬x  (valid)  and  ∀x,y. x ∧ y (invalid).
  aig::Aig m;
  const aig::Lit x = m.add_input("x");
  const aig::Lit y = m.add_input("y");
  {
    ExistsForallSolver s(m, m.lor(x, aig::lnot(x)), {}, {0, 1});
    EXPECT_EQ(s.solve().status, Qbf2Status::kTrue);
  }
  {
    ExistsForallSolver s(m, m.land(x, y), {}, {0, 1});
    EXPECT_EQ(s.solve().status, Qbf2Status::kFalse);
  }
}

TEST(QbfEdge, ConstantMatrix) {
  aig::Aig m;
  (void)m.add_input("a");
  (void)m.add_input("x");
  {
    ExistsForallSolver s(m, aig::kLitTrue, {0}, {1});
    EXPECT_EQ(s.solve().status, Qbf2Status::kTrue);
  }
  {
    ExistsForallSolver s(m, aig::kLitFalse, {0}, {1});
    EXPECT_EQ(s.solve().status, Qbf2Status::kFalse);
  }
}

TEST(QbfEdge, IterationCountMatchesCountermodels) {
  aig::Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit b = m.add_input("b");
  const aig::Lit x = m.add_input("x");
  const aig::Lit y = m.add_input("y");
  const aig::Lit root = m.lor(m.land(a, x), m.land(b, aig::lnot(x)));
  (void)y;
  ExistsForallSolver s(m, root, {0, 1}, {2, 3});
  const Qbf2Result r = s.solve();
  EXPECT_EQ(static_cast<std::size_t>(r.iterations), s.countermodels().size());
}

TEST(QbfEdge, GenericTseitinPathAgreesWithFastPath) {
  // Matrices whose cofactors are NOT plain clauses exercise the generic
  // refinement; both configurations must agree.
  Rng rng(246);
  for (int iter = 0; iter < 20; ++iter) {
    aig::Aig m;
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 4; ++i) pool.push_back(m.add_input());
    for (int g = 0; g < rng.next_int(6, 18); ++g) {
      const aig::Lit f0 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const aig::Lit f1 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(m.land(f0, f1));
    }
    const aig::Lit root = pool.back() ^ (rng.next_bool() ? 1u : 0u);

    ExistsForallSolver fast(m, root, {0, 1}, {2, 3});
    CegarOptions no_fast;
    no_fast.clause_fast_path = false;
    ExistsForallSolver slow(m, root, {0, 1}, {2, 3}, no_fast);
    EXPECT_EQ(static_cast<int>(fast.solve().status),
              static_cast<int>(slow.solve().status));
  }
}

}  // namespace
}  // namespace step::qbf

namespace step::core {
namespace {

TEST(QbfFinderEdge, TwoVariableConeBoundZero) {
  Cone cone;
  const aig::Lit x = cone.aig.add_input();
  const aig::Lit y = cone.aig.add_input();
  cone.root = cone.aig.lor(x, y);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  QbfPartitionFinder finder(m);
  const QbfFindResult r = finder.find_with_bound(QbfModel::kQD, 0);
  ASSERT_EQ(r.status, qbf::Qbf2Status::kTrue);
  EXPECT_EQ(r.partition.num_c(), 0);
  EXPECT_TRUE(r.partition.non_trivial());
}

TEST(QbfFinderEdge, InfeasibleBoundZeroOnMux) {
  // A mux needs its select shared: |XC| <= 0 must be refuted.
  Cone cone;
  const aig::Lit s = cone.aig.add_input();
  const aig::Lit x = cone.aig.add_input();
  const aig::Lit y = cone.aig.add_input();
  cone.root = cone.aig.lmux(s, x, y);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  QbfPartitionFinder finder(m);
  EXPECT_EQ(finder.find_with_bound(QbfModel::kQD, 0).status,
            qbf::Qbf2Status::kFalse);
  EXPECT_EQ(finder.find_with_bound(QbfModel::kQD, 1).status,
            qbf::Qbf2Status::kTrue);
}

TEST(QbfFinderEdge, QbBoundLargerThanNMinusTwoStillWorks) {
  const Cone cone = testutil::random_cone(4, 10, 4242);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  QbfPartitionFinder finder(m);
  const QbfFindResult loose = finder.find_with_bound(QbfModel::kQB, 10);
  const QbfFindResult exact = finder.find_with_bound(QbfModel::kQB, 2);
  // Loosening the bound can only help.
  if (exact.status == qbf::Qbf2Status::kTrue) {
    EXPECT_EQ(loose.status, qbf::Qbf2Status::kTrue);
  }
}

TEST(QbfFinderEdge, UnbrokenSymmetryEncodingsMatchBruteForce) {
  // With symmetry breaking off, QB/QDB bound |#XA−#XB| directly; every
  // bound query must still agree with partition enumeration.
  Rng rng(192837);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = rng.next_int(2, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 16), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
    QbfFinderOptions f;
    f.symmetry_breaking = false;
    for (QbfModel model : {QbfModel::kQD, QbfModel::kQB, QbfModel::kQDB}) {
      const MetricKind kind = metric_of(model);
      const BruteForceResult oracle = brute_force_optimum(cone, GateOp::kOr, kind);
      QbfPartitionFinder finder(m, f);
      for (int k = 0; k <= n - 2; ++k) {
        const QbfFindResult r = finder.find_with_bound(model, k);
        const bool possible = oracle.decomposable && oracle.best_cost <= k;
        if (r.status == qbf::Qbf2Status::kTrue) {
          EXPECT_TRUE(possible);
          EXPECT_TRUE(check_partition_exhaustive(cone, GateOp::kOr, r.partition));
          EXPECT_LE(metric_cost(Metrics::of(r.partition), kind), k);
        } else {
          ASSERT_EQ(r.status, qbf::Qbf2Status::kFalse);
          EXPECT_FALSE(possible) << to_string(model) << " k=" << k;
        }
      }
    }
  }
}

TEST(QbfFinderEdge, PoolAccumulatesAcrossBounds) {
  const Cone cone = testutil::random_cone(5, 14, 1793);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  QbfPartitionFinder finder(m);
  (void)finder.find_with_bound(QbfModel::kQD, 3);
  const std::size_t after_first = finder.pool_size();
  (void)finder.find_with_bound(QbfModel::kQD, 2);
  EXPECT_GE(finder.pool_size(), after_first);
  EXPECT_EQ(finder.qbf_calls(), 2);
}

}  // namespace
}  // namespace step::core
