#include <gtest/gtest.h>

#include "core/ljh.h"
#include "core/mg.h"
#include "core/optimum.h"
#include "core/partition_check.h"
#include "core/qbf_model.h"
#include "test_util.h"

namespace step::core {
namespace {

struct OpSeed {
  GateOp op;
  int seed;
};

// ---------- LJH -----------------------------------------------------------------

class LjhRandom : public ::testing::TestWithParam<OpSeed> {};

TEST_P(LjhRandom, FoundPartitionsAreValidElseProvenImpossible) {
  const auto [op, seed] = GetParam();
  Rng rng(seed * 90001 + 3);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 24), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    LjhDecomposer ljh(m);
    const PartitionSearchResult r = ljh.find_partition();
    const BruteForceResult oracle =
        brute_force_optimum(cone, op, MetricKind::kDisjointness);
    if (r.found) {
      EXPECT_TRUE(r.partition.non_trivial());
      EXPECT_TRUE(check_partition_exhaustive(cone, op, r.partition));
      EXPECT_TRUE(oracle.decomposable);
    } else {
      EXPECT_TRUE(r.exhausted);
      EXPECT_FALSE(oracle.decomposable);
    }

    // Both encoding modes must agree on decomposability and quality.
    LjhOptions inc;
    inc.incremental_sat = true;
    LjhDecomposer ljh2(m, inc);
    const PartitionSearchResult r2 = ljh2.find_partition();
    EXPECT_EQ(r.found, r2.found);
    if (r.found && r2.found) {
      EXPECT_EQ(Metrics::of(r.partition).shared,
                Metrics::of(r2.partition).shared);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, LjhRandom,
    ::testing::Values(OpSeed{GateOp::kOr, 0}, OpSeed{GateOp::kOr, 1},
                      OpSeed{GateOp::kAnd, 0}, OpSeed{GateOp::kXor, 0}));

TEST(LjhDeadline, ExpiredChecksAbortWithTimeoutNotExclusion) {
  // Regression (PR 5): a deadline-expired validity check inside the
  // seed/growth loops used to be treated as "partition invalid" — the
  // search kept excluding variables and scanning seeds after expiry and
  // could even end in an exhaustiveness claim it never proved. Force the
  // deadline to expire at every reachable poll point and assert the
  // search (a) reports the timeout, (b) never claims exhaustion, and
  // (c) only returns partitions that were actually validated.
  const Cone cone = testutil::random_cone(5, 16, 0x11f5);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  LjhOptions inc;
  inc.incremental_sat = true;

  LjhDecomposer ref(m, inc);
  const PartitionSearchResult unlimited = ref.find_partition();
  ASSERT_TRUE(unlimited.found);
  EXPECT_FALSE(unlimited.timed_out);

  bool saw_timeout = false;
  for (int polls = 0; polls < 80; ++polls) {
    Deadline d;
    d.force_expire_after_polls(polls);
    LjhDecomposer ljh(m, inc);
    const PartitionSearchResult r = ljh.find_partition(&d);
    if (r.timed_out) {
      saw_timeout = true;
      EXPECT_FALSE(r.exhausted) << "polls=" << polls;
    } else {
      // The deadline never fired mid-search: the result must be exactly
      // the unlimited one (timeouts may truncate, never perturb).
      EXPECT_EQ(r.found, unlimited.found) << "polls=" << polls;
      EXPECT_EQ(r.partition.cls, unlimited.partition.cls)
          << "polls=" << polls;
    }
    if (r.found) {
      EXPECT_TRUE(r.partition.non_trivial());
      EXPECT_TRUE(check_partition_exhaustive(cone, GateOp::kOr, r.partition))
          << "polls=" << polls;
    }
  }
  EXPECT_TRUE(saw_timeout);

  // Pre-expired deadline: the search must stop before any solver call.
  Deadline d0;
  d0.force_expire_after_polls(0);
  LjhDecomposer ljh0(m, inc);
  const PartitionSearchResult r0 = ljh0.find_partition(&d0);
  EXPECT_TRUE(r0.timed_out);
  EXPECT_FALSE(r0.found);
  EXPECT_FALSE(r0.exhausted);
  EXPECT_EQ(ljh0.sat_calls(), 0);
}

// ---------- MG ------------------------------------------------------------------

class MgRandom : public ::testing::TestWithParam<OpSeed> {};

TEST_P(MgRandom, FoundPartitionsAreValidElseProvenImpossible) {
  const auto [op, seed] = GetParam();
  Rng rng(seed * 6007 + 17);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 24), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    RelaxationSolver rs(m);
    MgDecomposer mg(rs);
    const PartitionSearchResult r = mg.find_partition();
    const BruteForceResult oracle =
        brute_force_optimum(cone, op, MetricKind::kDisjointness);
    if (r.found) {
      EXPECT_TRUE(r.partition.non_trivial());
      EXPECT_TRUE(check_partition_exhaustive(cone, op, r.partition))
          << to_string(op) << " " << r.partition.to_string();
      EXPECT_TRUE(oracle.decomposable);
    } else {
      EXPECT_TRUE(r.exhausted);
      EXPECT_FALSE(oracle.decomposable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, MgRandom,
    ::testing::Values(OpSeed{GateOp::kOr, 0}, OpSeed{GateOp::kOr, 1},
                      OpSeed{GateOp::kAnd, 0}, OpSeed{GateOp::kAnd, 1},
                      OpSeed{GateOp::kXor, 0}, OpSeed{GateOp::kXor, 1}));

TEST(Mg, AgreesWithOracleOnDecomposability) {
  // MG's pair seeding is exact for decomposability: cross-check counts.
  Rng rng(31337);
  int decomposable = 0, total = 0;
  for (int iter = 0; iter < 30; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 18), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
    RelaxationSolver rs(m);
    MgDecomposer mg(rs);
    const bool found = mg.find_partition().found;
    const bool oracle =
        brute_force_optimum(cone, GateOp::kOr, MetricKind::kDisjointness)
            .decomposable;
    EXPECT_EQ(found, oracle);
    ++total;
    if (found) ++decomposable;
  }
  EXPECT_GT(decomposable, 0);
  (void)total;

  // And a function with no OR bi-decomposition at all: 4-input parity.
  Cone parity;
  std::vector<aig::Lit> xs;
  for (int i = 0; i < 4; ++i) xs.push_back(parity.aig.add_input());
  parity.root = parity.aig.lxor_many(xs);
  const RelaxationMatrix pm = build_relaxation_matrix(parity, GateOp::kOr);
  RelaxationSolver prs(pm);
  MgDecomposer pmg(prs);
  const PartitionSearchResult pr = pmg.find_partition();
  EXPECT_FALSE(pr.found);
  EXPECT_TRUE(pr.exhausted);
  EXPECT_FALSE(
      brute_force_optimum(parity, GateOp::kOr, MetricKind::kDisjointness)
          .decomposable);
}

// ---------- QBF bounded queries --------------------------------------------------

struct ModelOpSeed {
  QbfModel model;
  GateOp op;
  int seed;
};

class QbfBound : public ::testing::TestWithParam<ModelOpSeed> {};

TEST_P(QbfBound, MatchesBruteForceAtEveryBound) {
  const auto [model, op, seed] = GetParam();
  const MetricKind kind = metric_of(model);
  Rng rng(seed * 523 + 7);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = rng.next_int(2, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 18), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    QbfPartitionFinder finder(m);
    const BruteForceResult oracle = brute_force_optimum(cone, op, kind);

    for (int k = 0; k <= n - 2; ++k) {
      const QbfFindResult r = finder.find_with_bound(model, k);
      const bool oracle_possible = oracle.decomposable && oracle.best_cost <= k;
      if (r.status == qbf::Qbf2Status::kTrue) {
        EXPECT_TRUE(oracle_possible)
            << to_string(model) << " " << to_string(op) << " k=" << k;
        EXPECT_TRUE(r.partition.non_trivial());
        EXPECT_TRUE(check_partition_exhaustive(cone, op, r.partition));
        EXPECT_LE(metric_cost(Metrics::of(r.partition), kind), k);
      } else {
        ASSERT_EQ(r.status, qbf::Qbf2Status::kFalse);
        EXPECT_FALSE(oracle_possible)
            << to_string(model) << " " << to_string(op) << " k=" << k
            << " oracle found " << oracle.best.to_string();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QbfBound,
    ::testing::Values(ModelOpSeed{QbfModel::kQD, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQD, GateOp::kOr, 1},
                      ModelOpSeed{QbfModel::kQD, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQD, GateOp::kXor, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kXor, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kXor, 0}));

// ---------- optimum search --------------------------------------------------------

class OptimumRandom : public ::testing::TestWithParam<ModelOpSeed> {};

TEST_P(OptimumRandom, FindsTheBruteForceOptimum) {
  const auto [model, op, seed] = GetParam();
  const MetricKind kind = metric_of(model);
  Rng rng(seed * 1009 + 23);
  for (int iter = 0; iter < 10; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    const BruteForceResult oracle = brute_force_optimum(cone, op, kind);

    QbfPartitionFinder finder(m);
    OptimumSearch search(finder, model);
    const OptimumResult r = search.run(std::nullopt);

    if (!oracle.decomposable) {
      EXPECT_EQ(r.outcome, OptimumResult::Outcome::kNotDecomposable);
      continue;
    }
    ASSERT_EQ(r.outcome, OptimumResult::Outcome::kFound);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.best_cost, oracle.best_cost)
        << to_string(model) << " " << to_string(op) << " n=" << n;
    EXPECT_TRUE(check_partition_exhaustive(cone, op, r.best));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimumRandom,
    ::testing::Values(ModelOpSeed{QbfModel::kQD, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQD, GateOp::kOr, 1},
                      ModelOpSeed{QbfModel::kQD, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQD, GateOp::kXor, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kOr, 1},
                      ModelOpSeed{QbfModel::kQB, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQB, GateOp::kXor, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kOr, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kOr, 1},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kAnd, 0},
                      ModelOpSeed{QbfModel::kQDB, GateOp::kXor, 0}));

TEST(Optimum, BootstrapNeverWorsensResult) {
  Rng rng(5555);
  for (int iter = 0; iter < 12; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(6, 22), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
    RelaxationSolver rs(m);
    MgDecomposer mg(rs);
    const PartitionSearchResult boot = mg.find_partition();
    if (!boot.found) continue;

    QbfPartitionFinder finder(m);
    OptimumSearch search(finder, QbfModel::kQD);
    const OptimumResult r = search.run(boot.partition);
    ASSERT_EQ(r.outcome, OptimumResult::Outcome::kFound);
    EXPECT_LE(r.best_cost,
              metric_cost(Metrics::of(boot.partition), MetricKind::kDisjointness));
    EXPECT_TRUE(r.proven_optimal);
  }
}

TEST(Optimum, AllStrategiesAgreeOnTheOptimum) {
  // MI, MD, Bin (each standalone) must land on the same proven cost.
  Rng rng(8088);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(6, 22), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);

    int costs[3];
    bool decomposable = true;
    const SearchStrategy strategies[3] = {SearchStrategy::kMonotoneIncreasing,
                                          SearchStrategy::kMonotoneDecreasing,
                                          SearchStrategy::kBinary};
    for (int s = 0; s < 3; ++s) {
      QbfPartitionFinder finder(m);
      OptimumOptions opts;
      opts.schedule = {{strategies[s], -1}};
      OptimumSearch search(finder, QbfModel::kQD, opts);
      const OptimumResult r = search.run(std::nullopt);
      if (r.outcome != OptimumResult::Outcome::kFound) {
        decomposable = false;
        break;
      }
      EXPECT_TRUE(r.proven_optimal);
      costs[s] = r.best_cost;
    }
    if (decomposable) {
      EXPECT_EQ(costs[0], costs[1]);
      EXPECT_EQ(costs[0], costs[2]);
    }
  }
}

}  // namespace
}  // namespace step::core
