#include "mus/group_mus.h"

#include <algorithm>

#include "common/check.h"

namespace step::mus {

GroupMusExtractor::GroupMusExtractor(sat::Solver& solver,
                                     std::vector<sat::Lit> enable,
                                     GroupMusOptions opts)
    : solver_(solver), enable_(std::move(enable)), opts_(opts) {}

GroupMusResult GroupMusExtractor::extract(const Deadline* deadline,
                                          const std::vector<char>* initially_removed) {
  GroupMusResult result;
  const int n = static_cast<int>(enable_.size());

  // State per group: 1 = candidate/active, 0 = removed, 2 = proven necessary.
  std::vector<char> state(n, 1);
  if (initially_removed != nullptr) {
    STEP_CHECK(static_cast<int>(initially_removed->size()) == n);
    for (int g = 0; g < n; ++g) {
      if ((*initially_removed)[g]) state[g] = 0;
    }
  }

  auto solve_with = [&](int excluded) -> sat::Result {
    sat::LitVec assumptions;
    assumptions.reserve(n);
    for (int g = 0; g < n; ++g) {
      const bool active = state[g] != 0 && g != excluded;
      assumptions.push_back(active ? enable_[g] : ~enable_[g]);
    }
    ++result.sat_calls;
    return solver_.solve_limited(assumptions, opts_.conflict_budget, deadline);
  };

  auto refine_from_core = [&](int excluded) {
    if (!opts_.core_refinement) return;
    // Keep only groups whose enable literal appears in the final conflict.
    std::vector<char> in_core(n, 0);
    for (sat::Lit l : solver_.conflict_core()) {
      for (int g = 0; g < n; ++g) {
        if (enable_[g] == l) in_core[g] = 1;
      }
    }
    for (int g = 0; g < n; ++g) {
      if (state[g] == 1 && g != excluded && !in_core[g]) state[g] = 0;
    }
  };

  // Initial check doubles as the first refinement.
  const sat::Result first = solve_with(-1);
  STEP_CHECK(first != sat::Result::kSat);  // client must start from UNSAT
  if (first == sat::Result::kUnknown) {
    // Budget exhausted before the baseline check: return everything.
    result.minimal = false;
    for (int g = 0; g < n; ++g) {
      if (state[g] != 0) result.mus.push_back(g);
    }
    return result;
  }
  refine_from_core(-1);

  for (int g = 0; g < n; ++g) {
    if (state[g] != 1) continue;  // removed by refinement or already decided
    if (deadline != nullptr && deadline->expired()) {
      result.minimal = false;
      break;
    }
    const sat::Result r = solve_with(g);
    if (r == sat::Result::kUnsat) {
      state[g] = 0;  // group g is not needed
      refine_from_core(g);
    } else if (r == sat::Result::kSat) {
      state[g] = 2;  // necessary
    } else {
      // Budget ran out: keep the group conservatively; result not minimal.
      state[g] = 2;
      result.minimal = false;
    }
  }

  for (int g = 0; g < n; ++g) {
    if (state[g] != 0) result.mus.push_back(g);
  }
  return result;
}

}  // namespace step::mus
