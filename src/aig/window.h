#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.h"
#include "common/timer.h"

namespace step::aig {

/// Don't-care windows (SDC extraction).
///
/// A *window* re-expresses the cone of a root literal as a function of a
/// bounded structural cut: the window inputs are internal circuit signals
/// (or primary inputs) at most `max_depth` AND-levels below the root, and
/// the window function is the logic between the cut and the root. Because
/// the cut signals are themselves driven by logic, not every combination
/// of their values is producible from the primary inputs — the missing
/// combinations are the cone's satisfiability don't-cares (SDCs), and the
/// decomposition engines only need to be correct on the complementary
/// *care set*. Exploiting it makes strictly more cones bi-decomposable
/// (the exact-equivalence constraint is a special case with a full care
/// set) and partitions strictly cheaper.
///
/// The care set is computed exactly: a bit-parallel simulation pre-filter
/// marks cut patterns observed under random primary-input stimuli, and the
/// remaining patterns are settled one SAT reachability query each. When
/// the SAT budget runs out, unsettled patterns are conservatively kept in
/// the care set — over-approximating care is always sound, it merely
/// forfeits don't-cares.
struct WindowOptions {
  /// Deepest cut explored, in AND levels below the root. Candidate cuts
  /// are tried deepest-first; deeper cuts see more logic and tend to have
  /// more SDCs.
  int max_depth = 6;
  /// Shallowest cut considered.
  int min_depth = 2;
  /// Widest cut accepted. The care set enumerates 2^width patterns, so
  /// this caps both the care computation and the decomposition support.
  int max_inputs = 10;
  /// 64-bit stimulus words per primary input for the reachability
  /// pre-filter (sim_words * 64 random input vectors).
  int sim_words = 8;
  /// SAT reachability queries allowed to settle patterns the simulation
  /// never produced; beyond the budget they stay in the care set.
  int max_sat_completions = 512;
  std::uint64_t sim_seed = 0x5dc0deULL;
};

/// One computed window. `aig` hosts both the window function and its care
/// set over the same inputs (input i = value of circuit signal `cut[i]`).
struct Window {
  Aig aig;
  Lit root = kLitFalse;  ///< root as a function of the cut signals
  Lit care = kLitTrue;   ///< care(cut): producible cut patterns
  /// Circuit literal backing each window input (positive node literals,
  /// ascending node id — deterministic).
  std::vector<Lit> cut;
  int depth = 0;  ///< cut depth that produced this window
  std::uint64_t care_minterms = 0;
  std::uint64_t sdc_minterms = 0;
  int sim_reached = 0;      ///< patterns the pre-filter produced
  int sat_completions = 0;  ///< patterns settled by SAT afterwards
  /// True when the SAT budget or the deadline left patterns unsettled and
  /// they were conservatively kept in the care set. The window is still
  /// sound — it merely forfeits don't-cares the exact computation would
  /// have found.
  bool care_overapprox = false;

  int n() const { return static_cast<int>(aig.num_inputs()); }
  bool has_sdc() const { return sdc_minterms > 0; }
  double care_fraction() const {
    const double total =
        static_cast<double>(care_minterms) + static_cast<double>(sdc_minterms);
    return total == 0.0 ? 1.0 : static_cast<double>(care_minterms) / total;
  }
};

/// Computes a bounded structural window with a non-empty SDC set for the
/// cone of `root` in `circuit`. Cuts are explored deepest-first within the
/// caps; returns nullopt when every candidate cut is SDC-free (e.g. the
/// cut degenerates to primary inputs) or violates the caps. Deterministic
/// in (circuit, root, opts). An expired `deadline` aborts the search
/// (nullopt) and cuts individual reachability queries short — unsettled
/// patterns stay in the care set, which is sound.
std::optional<Window> compute_window(const Aig& circuit, Lit root,
                                     const WindowOptions& opts = {},
                                     const Deadline* deadline = nullptr);

/// SAT miter over the primary inputs: true iff `repl_root` (a function of
/// the window's cut signals, hosted in `repl_aig` with the window's input
/// layout) composed with the cut logic equals the original root everywhere
/// — the splice-safety check for window-based resynthesis. Any repl that
/// matches the window function on the care set passes, because off-care
/// cut patterns never occur.
bool verify_window_replacement(const Aig& circuit, Lit root, const Window& win,
                               const Aig& repl_aig, Lit repl_root);

}  // namespace step::aig
