#include "io/aiger.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/resource.h"
#include "io/io_error.h"

namespace step::io {

namespace {

/// Sentinel fanin marking "this variable has no AND definition (yet)".
constexpr std::uint32_t kUndef = 0xffffffffU;

struct AndDef {
  std::uint32_t rhs0 = kUndef;
  std::uint32_t rhs1 = kUndef;
};

/// Charges reader-side allocations against the caller's MemTracker
/// *before* they are made and converts a tripped cap into a typed
/// IoError — the reader's bounded-abandonment path. Refunds on scope
/// exit; the returned Aig's arena is accounted separately by callers
/// that keep it.
class ReaderBudget {
 public:
  explicit ReaderBudget(MemTracker* mem) : mem_(mem) {}
  ~ReaderBudget() {
    if (mem_ != nullptr) mem_->release(charged_);
  }
  ReaderBudget(const ReaderBudget&) = delete;
  ReaderBudget& operator=(const ReaderBudget&) = delete;

  /// Charge `bytes` more; throws IoError if the cap trips.
  void charge(std::size_t bytes) {
    if (mem_ == nullptr) return;
    mem_->charge(bytes);
    charged_ += bytes;
    if (mem_->tripped()) {
      throw IoError("aiger: memory limit exceeded while reading (tracked " +
                    std::to_string(mem_->bytes()) + " bytes)");
    }
  }

  /// Re-syncs the charge for a structure that grows to `bytes` total
  /// (charges the delta only).
  void charge_total(std::size_t bytes, std::size_t& last) {
    if (bytes > last) {
      charge(bytes - last);
      last = bytes;
    }
  }

 private:
  MemTracker* mem_;
  std::size_t charged_ = 0;
};

/// Shared header handling: `magic` has been consumed by the caller.
struct Header {
  std::uint32_t m = 0, i = 0, l = 0, o = 0, a = 0;
};

Header read_header(std::istream& is, const char* magic) {
  Header h;
  if (!(is >> h.m >> h.i >> h.l >> h.o >> h.a)) {
    throw IoError(std::string("aiger: expected '") + magic +
                  " M I L O A' header");
  }
  if (static_cast<std::uint64_t>(h.i) + h.l + h.a > h.m) {
    throw IoError("aiger: implausible header counts");
  }
  return h;
}

/// AIGER requires M >= I + L + A and every declared object occupies at
/// least ~2 bytes of input, so a header promising more than the input
/// could possibly hold is malformed (and would otherwise drive
/// multi-gigabyte allocations). Only applicable when the total size is
/// known; the MemTracker cap covers pipes/unknown sizes.
void check_header_plausible(const Header& h, std::uint64_t size_hint) {
  if (size_hint != 0 && h.m > size_hint + 64) {
    throw IoError("aiger: implausible header counts");
  }
}

/// Reads the trailing symbol table and comments (identical in both
/// formats: "i<k> name", "l<k> name", "o<k> name", then "c" + comments).
void read_symbols(std::istream& is, aig::Aig& out, std::uint32_t i,
                  std::uint32_t l, std::uint32_t o) {
  std::string tok;
  while (is >> tok) {
    if (tok == "c") break;  // comment section
    if (tok.size() < 2) continue;
    const char kind = tok[0];
    const int idx = std::atoi(tok.c_str() + 1);
    std::string name;
    std::getline(is, name);
    if (!name.empty() && name[0] == ' ') name.erase(0, 1);
    if (name.empty()) continue;
    if (kind == 'i' && idx >= 0 && idx < static_cast<int>(i)) {
      out.set_input_name(idx, name);
    } else if (kind == 'l' && idx >= 0 && idx < static_cast<int>(l)) {
      out.set_input_name(i + idx, name);
      out.set_output_name(o + idx, name + "_next");
    } else if (kind == 'o' && idx >= 0 && idx < static_cast<int>(o)) {
      out.set_output_name(idx, name);
    }
  }
}

aig::Aig parse_ascii(std::istream& is, std::uint64_t size_hint,
                     MemTracker* mem) {
  const Header h = read_header(is, "aag");
  check_header_plausible(h, size_hint);
  ReaderBudget budget(mem);
  // Everything sized from the header is charged before allocation: the
  // var map (4 B/var), the AND-definition table (8 B/var) and the node
  // arena (~12 B/node). A hostile header trips the cap right here.
  budget.charge(static_cast<std::size_t>(h.m + 1) * (4 + 8) +
                static_cast<std::size_t>(h.i + h.l + h.a + 1) * 12);

  aig::Aig out;
  out.reserve(1 + h.i + h.l + h.a, h.i + h.l, h.o + h.l);
  // aiger var -> our literal (for the positive literal of that var).
  std::vector<aig::Lit> var_map(h.m + 1, aig::kLitInvalid);
  var_map[0] = aig::kLitFalse;

  auto read_lit = [&]() {
    std::uint32_t v;
    if (!(is >> v)) throw IoError("aiger: truncated file");
    if (v / 2 > h.m) throw IoError("aiger: literal out of range");
    return v;
  };

  std::vector<std::uint32_t> input_lits(h.i);
  for (std::uint32_t k = 0; k < h.i; ++k) {
    input_lits[k] = read_lit();
    if (input_lits[k] % 2 != 0 || input_lits[k] == 0) {
      throw IoError("aiger: input literal must be even, nonzero");
    }
    if (var_map[input_lits[k] / 2] != aig::kLitInvalid) {
      throw IoError("aiger: bad AND definition");
    }
    var_map[input_lits[k] / 2] = out.add_input("i" + std::to_string(k));
  }
  std::vector<std::uint32_t> latch_lits(h.l), latch_next(h.l);
  for (std::uint32_t k = 0; k < h.l; ++k) {
    latch_lits[k] = read_lit();
    latch_next[k] = read_lit();
    // Optional init value: peek the rest of the line.
    std::string rest;
    std::getline(is, rest);
    if (latch_lits[k] % 2 != 0 || latch_lits[k] == 0) {
      throw IoError("aiger: latch literal must be even, nonzero");
    }
    var_map[latch_lits[k] / 2] = out.add_input("l" + std::to_string(k));
  }
  std::vector<std::uint32_t> output_lits(h.o);
  for (std::uint32_t k = 0; k < h.o; ++k) output_lits[k] = read_lit();

  // AND definitions indexed by var (8 B/slot, charged above) instead of a
  // node-based hash map: at a million gates the difference is the memory
  // envelope.
  std::vector<AndDef> ands(h.m + 1);
  for (std::uint32_t k = 0; k < h.a; ++k) {
    const std::uint32_t lhs = read_lit();
    const std::uint32_t rhs0 = read_lit();
    const std::uint32_t rhs1 = read_lit();
    if (lhs % 2 != 0 || lhs == 0 || var_map[lhs / 2] != aig::kLitInvalid ||
        ands[lhs / 2].rhs0 != kUndef) {
      throw IoError("aiger: bad AND definition");
    }
    ands[lhs / 2] = {rhs0, rhs1};
  }

  // Demand-driven elaboration (ASCII aiger does not promise ordering).
  // Iterative DFS: a hostile file can declare an AND chain as deep as the
  // file is long, which would overflow the call stack if recursed.
  std::vector<char> expanded(h.m + 1, 0);
  std::size_t arena_charged = 0;
  auto edge = [&](std::uint32_t lit) {
    return (lit & 1U) != 0 ? aig::lnot(var_map[lit / 2]) : var_map[lit / 2];
  };
  auto resolve = [&](std::uint32_t lit) -> aig::Lit {
    std::vector<std::uint32_t> work{lit / 2};
    while (!work.empty()) {
      const std::uint32_t var = work.back();
      if (var_map[var] != aig::kLitInvalid) {
        expanded[var] = 0;
        work.pop_back();
        continue;
      }
      if (ands[var].rhs0 == kUndef) {
        throw IoError("aiger: undefined variable " + std::to_string(var));
      }
      const std::uint32_t c0 = ands[var].rhs0 / 2;
      const std::uint32_t c1 = ands[var].rhs1 / 2;
      if (expanded[var]) {
        // Children were scheduled; unresolved ones now mean a cycle.
        if (var_map[c0] == aig::kLitInvalid ||
            var_map[c1] == aig::kLitInvalid) {
          throw IoError("aiger: cyclic definition");
        }
        var_map[var] = out.land(edge(ands[var].rhs0), edge(ands[var].rhs1));
        expanded[var] = 0;
        work.pop_back();
        // Track arena growth (strash included) every so often, so even a
        // legitimately huge netlist respects the cap while it builds.
        if ((out.num_nodes() & 0xffffU) == 0) {
          budget.charge_total(out.memory_bytes(), arena_charged);
        }
        continue;
      }
      expanded[var] = 1;
      for (const std::uint32_t c : {c0, c1}) {
        if (var_map[c] != aig::kLitInvalid) continue;
        if (expanded[c]) throw IoError("aiger: cyclic definition");
        work.push_back(c);
      }
    }
    return edge(lit);
  };

  for (std::uint32_t k = 0; k < h.o; ++k) {
    out.add_output(resolve(output_lits[k]), "o" + std::to_string(k));
  }
  for (std::uint32_t k = 0; k < h.l; ++k) {
    out.add_output(resolve(latch_next[k]), "l" + std::to_string(k) + "_next");
  }
  budget.charge_total(out.memory_bytes(), arena_charged);

  read_symbols(is, out, h.i, h.l, h.o);
  return out;
}

/// Decodes one unsigned LEB128-style varint (7 data bits per byte, high
/// bit = continuation). Typed rejects for truncation and for deltas that
/// overflow the 32-bit literal space.
std::uint32_t read_varint(std::istream& is) {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) {
      throw IoError("aiger: truncated binary AND section");
    }
    value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) break;
    shift += 7;
    if (shift >= 35) {
      throw IoError("aiger: delta overflows 32 bits");
    }
  }
  if (value > std::numeric_limits<std::uint32_t>::max()) {
    throw IoError("aiger: delta overflows 32 bits");
  }
  return static_cast<std::uint32_t>(value);
}

aig::Aig parse_binary(std::istream& is, std::uint64_t size_hint,
                      MemTracker* mem) {
  const Header h = read_header(is, "aig");
  // Binary AIGER admits no variable gaps: every var is an input, a latch
  // or exactly one delta-coded AND.
  if (static_cast<std::uint64_t>(h.i) + h.l + h.a != h.m) {
    throw IoError("aiger: binary header requires M = I + L + A");
  }
  // Each AND occupies at least two bytes (one varint byte per delta), so
  // a header promising more gates than the input holds is malformed.
  if (size_hint != 0 && static_cast<std::uint64_t>(h.a) * 2 > size_hint) {
    throw IoError("aiger: implausible header counts");
  }
  ReaderBudget budget(mem);
  // The entire arena is header-sized; charge it up front so a hostile
  // header trips the cap before the first allocation.
  budget.charge(static_cast<std::size_t>(h.m + 1) * 12 +
                static_cast<std::size_t>(h.o + h.l) * 8);

  aig::Aig out;
  out.reserve(1 + h.m, h.i + h.l, h.o + h.l);
  // Inputs are implicit (vars 1..I), latches follow (vars I+1..I+L); the
  // arena's node ids coincide with AIGER variables exactly, so literals
  // need no translation at all.
  for (std::uint32_t k = 0; k < h.i; ++k) {
    out.add_input("i" + std::to_string(k));
  }

  // Swallow the rest of the header line before the latch/output lines.
  std::string rest;
  std::getline(is, rest);

  auto read_lit_line = [&]() {
    std::uint32_t v;
    if (!(is >> v)) throw IoError("aiger: truncated file");
    if (v / 2 > h.m) throw IoError("aiger: literal out of range");
    std::getline(is, rest);  // latch init values / line end
    return v;
  };

  std::vector<std::uint32_t> latch_next(h.l);
  for (std::uint32_t k = 0; k < h.l; ++k) {
    latch_next[k] = read_lit_line();
    out.add_input("l" + std::to_string(k));
  }
  std::vector<std::uint32_t> output_lits(h.o);
  for (std::uint32_t k = 0; k < h.o; ++k) output_lits[k] = read_lit_line();

  // Single-pass arena build over the delta-coded AND section. The format
  // guarantees lhs = 2*(I+L+k+1) (strictly increasing), rhs0 < lhs and
  // rhs1 <= rhs0 — exactly a topological order — so every fanin already
  // exists when its fanout arrives and no elaboration map is needed.
  // Violations are data corruption and rejected typed.
  std::size_t arena_charged = 0;
  for (std::uint32_t k = 0; k < h.a; ++k) {
    const std::uint32_t lhs = 2 * (h.i + h.l + k + 1);
    const std::uint32_t delta0 = read_varint(is);
    if (delta0 == 0 || delta0 > lhs) {
      throw IoError("aiger: non-monotone literal delta (AND " +
                    std::to_string(k) + ")");
    }
    const std::uint32_t rhs0 = lhs - delta0;
    const std::uint32_t delta1 = read_varint(is);
    if (delta1 > rhs0) {
      throw IoError("aiger: non-monotone literal delta (AND " +
                    std::to_string(k) + ")");
    }
    const std::uint32_t rhs1 = rhs0 - delta1;
    out.add_raw_and(rhs0, rhs1);
    if ((k & 0xffffU) == 0xffffU) {
      budget.charge_total(out.memory_bytes(), arena_charged);
    }
  }

  for (std::uint32_t k = 0; k < h.o; ++k) {
    out.add_output(output_lits[k], "o" + std::to_string(k));
  }
  for (std::uint32_t k = 0; k < h.l; ++k) {
    out.add_output(latch_next[k], "l" + std::to_string(k) + "_next");
  }
  budget.charge_total(out.memory_bytes(), arena_charged);

  read_symbols(is, out, h.i, h.l, h.o);
  return out;
}

/// Reads the magic token and dispatches; `size_hint` 0 = unknown.
aig::Aig parse_dispatch(std::istream& is, std::uint64_t size_hint,
                        MemTracker* mem) {
  std::string magic;
  if (!(is >> magic)) throw IoError("aiger: empty input");
  if (magic == "aag") return parse_ascii(is, size_hint, mem);
  if (magic == "aig") return parse_binary(is, size_hint, mem);
  throw IoError("aiger: expected 'aag' or 'aig' magic, got '" + magic + "'");
}

void write_varint(std::string& out, std::uint32_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

}  // namespace

aig::Aig parse_aiger(std::string_view text, MemTracker* mem) {
  std::istringstream is{std::string(text)};
  std::string magic;
  if (!(is >> magic) || magic != "aag") {
    throw IoError("aiger: expected 'aag M I L O A' header");
  }
  return parse_ascii(is, text.size() + 64, mem);
}

aig::Aig parse_aiger_binary(std::string_view bytes, MemTracker* mem) {
  std::istringstream is{std::string(bytes)};
  std::string magic;
  if (!(is >> magic) || magic != "aig") {
    throw IoError("aiger: expected 'aig M I L O A' header");
  }
  return parse_binary(is, bytes.size() + 64, mem);
}

aig::Aig parse_aiger_stream(std::istream& in, std::uint64_t size_hint,
                            MemTracker* mem) {
  return parse_dispatch(in, size_hint, mem);
}

aig::Aig read_aiger_file(const std::string& path, MemTracker* mem) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("aiger: cannot open '" + path + "'", path);
  // The file streams through the parser — it is never slurped into a
  // string, so the transient footprint is the arena plus parser state,
  // both under the MemTracker's eye.
  in.seekg(0, std::ios::end);
  const std::uint64_t size =
      in.good() ? static_cast<std::uint64_t>(in.tellg()) : 0;
  in.seekg(0, std::ios::beg);
  try {
    return parse_dispatch(in, size, mem);
  } catch (const IoError& e) {
    throw IoError(e.what(), path);
  }
}

std::string write_aiger(const aig::Aig& a) {
  // Node ids are dense and topologically ordered, and the literal encoding
  // matches AIGER's, so the translation is the identity on literals.
  std::ostringstream os;
  const std::uint32_t m = a.num_nodes() - 1;
  os << "aag " << m << ' ' << a.num_inputs() << " 0 " << a.num_outputs()
     << ' ' << a.num_ands() << '\n';
  for (std::uint32_t k = 0; k < a.num_inputs(); ++k) {
    os << aig::mk_lit(a.input_node(k)) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
    os << a.output(k) << '\n';
  }
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    os << aig::mk_lit(n) << ' ' << a.fanin0(n) << ' ' << a.fanin1(n) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_inputs(); ++k) {
    os << 'i' << k << ' ' << a.input_name(k) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
    os << 'o' << k << ' ' << a.output_name(k) << '\n';
  }
  return os.str();
}

std::string write_aiger_binary(const aig::Aig& a) {
  // The binary format demands vars 1..I be the inputs and AND lhs vars
  // strictly increasing, so nodes are renumbered: inputs first (in input
  // order), then AND nodes in id (= topological) order. Fanin vars are
  // always below their fanout's var, which the delta coding requires.
  const std::uint32_t n_in = a.num_inputs();
  std::vector<std::uint32_t> var_of(a.num_nodes(), 0);
  for (std::uint32_t k = 0; k < n_in; ++k) var_of[a.input_node(k)] = k + 1;
  std::uint32_t next_var = n_in;
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (a.is_and(n)) var_of[n] = ++next_var;
  }
  auto map_lit = [&](aig::Lit l) {
    return 2 * var_of[aig::node_of(l)] +
           static_cast<std::uint32_t>(aig::is_complemented(l));
  };

  std::string out;
  {
    std::ostringstream os;
    os << "aig " << next_var << ' ' << n_in << " 0 " << a.num_outputs() << ' '
       << a.num_ands() << '\n';
    for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
      os << map_lit(a.output(k)) << '\n';
    }
    out = os.str();
  }
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    const std::uint32_t lhs = 2 * var_of[n];
    std::uint32_t rhs0 = map_lit(a.fanin0(n));
    std::uint32_t rhs1 = map_lit(a.fanin1(n));
    if (rhs0 < rhs1) std::swap(rhs0, rhs1);
    write_varint(out, lhs - rhs0);
    write_varint(out, rhs0 - rhs1);
  }
  {
    std::ostringstream os;
    for (std::uint32_t k = 0; k < n_in; ++k) {
      os << 'i' << k << ' ' << a.input_name(k) << '\n';
    }
    for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
      os << 'o' << k << ' ' << a.output_name(k) << '\n';
    }
    out += os.str();
  }
  return out;
}

void write_aiger_file(const aig::Aig& a, const std::string& path) {
  const bool binary =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".aig") == 0;
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("aiger: cannot write '" + path + "'", path);
  const std::string text = binary ? write_aiger_binary(a) : write_aiger(a);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw IoError("aiger: write failed for '" + path + "'", path);
}

}  // namespace step::io
