#pragma once

#include "sat/types.h"

namespace step::sat {

class Solver;

/// SCC-based equivalent-literal detection and substitution.
///
/// The binary clauses of the database form an implication graph (clause
/// (a ∨ b) contributes edges ¬a→b and ¬b→a). Literals in the same
/// strongly connected component are pairwise equivalent; each component
/// elects one representative and every other member is rewritten to it in
/// every clause, shrinking both the variable and the clause count. A
/// component containing both x and ¬x refutes the formula.
///
/// Assumption safety: frozen variables are preferred as representatives
/// and are never substituted away — at most their non-frozen co-members
/// disappear. Every rewritten clause is DRAT-logged *before* any original
/// is deleted, so each addition is RUP via the still-present equivalence
/// binaries.
///
/// Runs at level 0 on settled watches (the implication edges are read from
/// the solver's binary watch lists); clause rewriting leaves the watches
/// stale, the caller rebuilds them.
class EquivalenceReducer {
 public:
  explicit EquivalenceReducer(Solver& s) : s_(s) {}

  /// One detection + substitution pass. Units produced by rewriting are
  /// appended to `pending_units` for the caller to settle; on refutation
  /// the solver's ok flag is cleared.
  void run(LitVec& pending_units);

 private:
  void tarjan(Lit root);
  void process_component(const LitVec& members);
  void rewrite_clauses(LitVec& pending_units);

  Solver& s_;
  // Iterative Tarjan state, indexed by literal.
  std::vector<std::int32_t> dfs_index_;
  std::vector<std::int32_t> low_link_;
  std::vector<char> on_stack_;
  LitVec scc_stack_;
  std::int32_t next_index_ = 0;
  // Substitution map: sub_[v] is the literal replacing mk_lit(v), or
  // kLitUndef when v keeps itself.
  LitVec sub_;
  std::vector<char> var_done_;  ///< component (and its mirror) processed
  bool any_sub_ = false;
};

}  // namespace step::sat
