#include "sat/dimacs.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace step::sat {

DimacsFormula parse_dimacs(std::string_view text) {
  DimacsFormula f;
  LitVec current;
  std::size_t pos = 0;
  const std::size_t n = text.size();

  auto skip_ws = [&] {
    while (pos < n && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\r' || text[pos] == '\n')) {
      ++pos;
    }
  };
  auto skip_line = [&] {
    while (pos < n && text[pos] != '\n') ++pos;
  };

  while (true) {
    skip_ws();
    if (pos >= n) break;
    const char c = text[pos];
    if (c == 'c') {
      skip_line();
      continue;
    }
    if (c == 'p') {
      skip_line();  // header is advisory; variables grow on demand
      continue;
    }
    // Parse a signed integer.
    bool neg = false;
    if (c == '-') {
      neg = true;
      ++pos;
    }
    if (pos >= n || text[pos] < '0' || text[pos] > '9') {
      throw std::runtime_error("dimacs: expected integer");
    }
    long v = 0;
    while (pos < n && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + (text[pos] - '0');
      ++pos;
    }
    if (v == 0) {
      f.clauses.push_back(current);
      current.clear();
    } else {
      const Var var_id = static_cast<Var>(v - 1);
      f.num_vars = std::max(f.num_vars, static_cast<int>(v));
      current.push_back(mk_lit(var_id, neg));
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: unterminated clause");
  }
  return f;
}

std::string write_dimacs(const DimacsFormula& f) {
  std::ostringstream os;
  os << "p cnf " << f.num_vars << ' ' << f.clauses.size() << '\n';
  for (const LitVec& cl : f.clauses) {
    for (Lit l : cl) {
      os << (sign(l) ? -(var(l) + 1) : (var(l) + 1)) << ' ';
    }
    os << "0\n";
  }
  return os.str();
}

}  // namespace step::sat
