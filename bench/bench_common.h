#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/circuit_driver.h"

namespace step::bench {

/// Budgets scaled to the suite size (the paper: 6000 s per circuit, 4 s per
/// QBF call on a 2.93 GHz Xeon; our suite is ~100x smaller).
struct BenchBudgets {
  double circuit_s = 20.0;
  double po_s = 2.0;
  double qbf_call_s = 0.25;
};

inline BenchBudgets budgets_for(benchgen::SuiteScale scale) {
  switch (scale) {
    case benchgen::SuiteScale::kTiny: return {5.0, 1.0, 0.25};
    case benchgen::SuiteScale::kSmall: return {20.0, 2.0, 0.25};
    case benchgen::SuiteScale::kFull: return {120.0, 6.0, 1.0};
  }
  return {};
}

inline core::DecomposeOptions engine_options(core::Engine engine,
                                             core::GateOp op,
                                             const BenchBudgets& b) {
  core::DecomposeOptions o;
  o.engine = engine;
  o.op = op;
  o.po_budget_s = b.po_s;
  o.optimum.call_timeout_s = b.qbf_call_s;
  // Benches time the partition search; extraction/verification are
  // exercised by the test suite and the examples.
  o.extract = false;
  o.verify = false;
  return o;
}

/// One engine across the whole suite.
inline std::vector<core::CircuitRunResult> run_suite(
    const std::vector<benchgen::BenchCircuit>& suite, core::Engine engine,
    core::GateOp op, const BenchBudgets& b) {
  std::vector<core::CircuitRunResult> out;
  out.reserve(suite.size());
  for (const benchgen::BenchCircuit& c : suite) {
    out.push_back(core::run_circuit(
        c.aig, c.name, engine_options(engine, op, b), b.circuit_s));
  }
  return out;
}

inline const char* scale_name(benchgen::SuiteScale s) {
  switch (s) {
    case benchgen::SuiteScale::kTiny: return "tiny";
    case benchgen::SuiteScale::kSmall: return "small";
    case benchgen::SuiteScale::kFull: return "full";
  }
  return "?";
}

inline void print_preamble(const char* what, benchgen::SuiteScale scale) {
  std::printf("# %s\n", what);
  std::printf("# suite scale: %s (STEP_BENCH_SCALE=tiny|small|full)\n",
              scale_name(scale));
  std::printf(
      "# substitution note: generator suite stands in for ISCAS/ITC/LGSYNTH"
      " (DESIGN.md par.4)\n");
}

}  // namespace step::bench
