#include "mus/group_mus.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace step::mus {
namespace {

using sat::Lit;
using sat::LitVec;
using sat::mk_lit;
using sat::Result;
using sat::Solver;
using sat::Var;

/// Test fixture instrumenting grouped clauses with enable selectors:
/// group g's clauses become (C ∨ ¬e_g).
struct GroupedFormula {
  Solver solver;
  std::vector<Lit> enable;
  std::vector<std::vector<LitVec>> groups;  // original clauses per group

  void add_group(std::vector<LitVec> clauses, int num_base_vars) {
    while (solver.num_vars() < num_base_vars) solver.new_var();
    const Var e = solver.new_var();
    enable.push_back(mk_lit(e));
    for (LitVec c : clauses) {
      c.push_back(~mk_lit(e));
      solver.add_clause(c);
    }
    groups.push_back(std::move(clauses));
  }

  /// Brute-force check: is the union of the given groups satisfiable?
  bool groups_sat(const std::vector<int>& subset, int num_base_vars) {
    for (std::uint64_t m = 0; m < (1ULL << num_base_vars); ++m) {
      bool all = true;
      for (int g : subset) {
        for (const LitVec& c : groups[g]) {
          bool sat_c = false;
          for (Lit l : c) {
            if (sat::var(l) >= num_base_vars) continue;  // selector tail
            if ((((m >> sat::var(l)) & 1ULL) != 0) != sat::sign(l)) sat_c = true;
          }
          if (!sat_c) {
            all = false;
            break;
          }
        }
        if (!all) break;
      }
      if (all) return true;
    }
    return false;
  }
};

TEST(GroupMus, MinimalPairOfUnits) {
  GroupedFormula f;
  f.add_group({{mk_lit(0)}}, 2);        // x0
  f.add_group({{~mk_lit(0)}}, 2);       // ¬x0
  f.add_group({{mk_lit(1)}}, 2);        // x1 (irrelevant)
  GroupMusExtractor ex(f.solver, f.enable);
  const GroupMusResult r = ex.extract();
  EXPECT_TRUE(r.minimal);
  EXPECT_EQ(r.mus, (std::vector<int>{0, 1}));
}

TEST(GroupMus, WholeFormulaWhenEverythingNeeded) {
  GroupedFormula f;
  // x0->x1, x1->x2, x2->¬x0, x0 : all four groups necessary.
  f.add_group({{~mk_lit(0), mk_lit(1)}}, 3);
  f.add_group({{~mk_lit(1), mk_lit(2)}}, 3);
  f.add_group({{~mk_lit(2), ~mk_lit(0)}}, 3);
  f.add_group({{mk_lit(0)}}, 3);
  GroupMusExtractor ex(f.solver, f.enable);
  const GroupMusResult r = ex.extract();
  EXPECT_TRUE(r.minimal);
  EXPECT_EQ(r.mus.size(), 4u);
}

TEST(GroupMus, InitiallyRemovedGroupsStayOut) {
  GroupedFormula f;
  f.add_group({{mk_lit(0)}}, 2);   // 0: x0
  f.add_group({{~mk_lit(0)}}, 2);  // 1: ¬x0
  f.add_group({{mk_lit(1)}}, 2);   // 2: x1
  f.add_group({{~mk_lit(1)}}, 2);  // 3: ¬x1
  GroupMusExtractor ex(f.solver, f.enable);
  std::vector<char> removed{1, 1, 0, 0};  // rule out the x0 conflict
  const GroupMusResult r = ex.extract(nullptr, &removed);
  EXPECT_EQ(r.mus, (std::vector<int>{2, 3}));
}

TEST(GroupMus, MultiClauseGroupsTreatedAtomically) {
  GroupedFormula f;
  // Group 0 carries two clauses that together force x0=1 and x1=1;
  // group 1 forbids that combination.
  f.add_group({{mk_lit(0)}, {mk_lit(1)}}, 2);
  f.add_group({{~mk_lit(0), ~mk_lit(1)}}, 2);
  GroupMusExtractor ex(f.solver, f.enable);
  const GroupMusResult r = ex.extract();
  EXPECT_EQ(r.mus.size(), 2u);
}

class GroupMusRandom : public ::testing::TestWithParam<int> {};

TEST_P(GroupMusRandom, ExtractedMusIsUnsatAndMinimal) {
  Rng rng(GetParam() * 2477 + 11);
  int checked = 0;
  for (int iter = 0; iter < 60 && checked < 8; ++iter) {
    const int nv = rng.next_int(3, 7);
    const int ng = rng.next_int(3, 9);
    GroupedFormula f;
    for (int g = 0; g < ng; ++g) {
      std::vector<LitVec> clauses;
      const int nc = rng.next_int(1, 3);
      for (int c = 0; c < nc; ++c) {
        LitVec cl;
        const int w = rng.next_int(1, 3);
        for (int j = 0; j < w; ++j) {
          cl.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
        }
        clauses.push_back(cl);
      }
      f.add_group(std::move(clauses), nv);
    }
    std::vector<int> all(ng);
    for (int g = 0; g < ng; ++g) all[g] = g;
    if (f.groups_sat(all, nv)) continue;  // need an UNSAT instance
    ++checked;

    GroupMusExtractor ex(f.solver, f.enable);
    const GroupMusResult r = ex.extract();
    ASSERT_TRUE(r.minimal);
    // The MUS must be UNSAT...
    EXPECT_FALSE(f.groups_sat(r.mus, nv));
    // ...and dropping any single group must restore satisfiability.
    for (int drop : r.mus) {
      std::vector<int> sub;
      for (int g : r.mus) {
        if (g != drop) sub.push_back(g);
      }
      EXPECT_TRUE(f.groups_sat(sub, nv))
          << "group " << drop << " is not necessary";
    }
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupMusRandom, ::testing::Range(0, 8));

TEST(GroupMus, DeadlineTruncationKeepsUnsatSubset) {
  GroupedFormula f;
  for (int i = 0; i < 4; ++i) {
    f.add_group({{mk_lit(i)}}, 4);
    f.add_group({{~mk_lit(i)}}, 4);
  }
  GroupMusExtractor ex(f.solver, f.enable);
  const Deadline expired(1e-9);
  const GroupMusResult r = ex.extract(&expired);
  EXPECT_FALSE(r.minimal);
  std::vector<int> subset(r.mus.begin(), r.mus.end());
  EXPECT_FALSE(f.groups_sat(subset, 4));
}

}  // namespace
}  // namespace step::mus
