#include "core/mg.h"

#include "mus/group_mus.h"

namespace step::core {

PartitionSearchResult MgDecomposer::find_partition(const Deadline* deadline) {
  PartitionSearchResult result;
  const int n = rs_.matrix().n;
  if (n < 2) {
    result.exhausted = true;
    return result;
  }
  const int start_calls = rs_.sat_calls();
  auto out_of_time = [&] { return deadline != nullptr && deadline->expired(); };

  // Group layout: group i in [0,n) is the α-equivalence of variable i
  // (enforces xi ≡ xi'), group n+i the β-equivalence (xi ≡ xi'').
  // Enable literal = negated control variable: assuming ¬αi enforces.
  std::vector<sat::Lit> enable;
  enable.reserve(2 * n);
  for (int i = 0; i < n; ++i) enable.push_back(~sat::mk_lit(rs_.alpha_var(i)));
  for (int i = 0; i < n; ++i) enable.push_back(~sat::mk_lit(rs_.beta_var(i)));

  Partition seed;
  int attempts = 0;
  bool all_pairs_tried = true;
  int seed_j = -1, seed_l = -1;
  for (int j = 0; j < n && seed_j < 0; ++j) {
    for (int l = j + 1; l < n; ++l) {
      if (attempts >= opts_.max_seed_attempts || out_of_time()) {
        all_pairs_tried = false;
        result.timed_out = out_of_time();
        j = n;
        break;
      }
      ++attempts;
      seed.cls.assign(n, VarClass::kC);
      seed.cls[j] = VarClass::kA;
      seed.cls[l] = VarClass::kB;
      sat::Result status;
      if (rs_.is_valid(seed, deadline, &status)) {
        seed_j = j;
        seed_l = l;
        break;
      }
      // Deadline-expired check: stop scanning instead of burning one
      // no-op SAT call per remaining pair (same contract as LJH).
      if (status == sat::Result::kUnknown) {
        all_pairs_tried = false;
        result.timed_out = true;
        j = n;
        break;
      }
    }
  }
  if (seed_j < 0) {
    result.exhausted = all_pairs_tried;
    if (result.timed_out) result.reason = reason_of_unknown(deadline);
    result.sat_calls = rs_.sat_calls() - start_calls;
    return result;
  }

  // MUS over the equivalence groups, with the seed's groups pre-removed
  // (xj pinned towards XA, xl towards XB).
  std::vector<char> removed(2 * n, 0);
  removed[seed_j] = 1;      // α-group of j dropped -> j ∈ XA
  removed[n + seed_l] = 1;  // β-group of l dropped -> l ∈ XB
  mus::GroupMusOptions mopts;
  mopts.conflict_budget = opts_.conflict_budget;
  mus::GroupMusExtractor extractor(rs_.solver(), enable, mopts);
  const mus::GroupMusResult mus = extractor.extract(deadline, &removed);

  // Decode group membership into a partition.
  std::vector<char> alpha_enforced(n, 0), beta_enforced(n, 0);
  for (int g : mus.mus) {
    if (g < n) {
      alpha_enforced[g] = 1;
    } else {
      beta_enforced[g - n] = 1;
    }
  }
  Partition p;
  p.cls.resize(n);
  int na = 0, nb = 0;
  std::vector<int> free_vars;
  for (int i = 0; i < n; ++i) {
    if (alpha_enforced[i] && beta_enforced[i]) {
      p.cls[i] = VarClass::kC;
    } else if (alpha_enforced[i]) {  // only x ≡ x' enforced: x'' free
      p.cls[i] = VarClass::kB;
      ++nb;
    } else if (beta_enforced[i]) {
      p.cls[i] = VarClass::kA;
      ++na;
    } else {
      free_vars.push_back(i);  // both dropped: either side is valid
    }
  }
  // Balance the unconstrained variables.
  for (int i : free_vars) {
    if (na <= nb) {
      p.cls[i] = VarClass::kA;
      ++na;
    } else {
      p.cls[i] = VarClass::kB;
      ++nb;
    }
  }

  result.found = true;
  result.partition = std::move(p);
  result.sat_calls = rs_.sat_calls() - start_calls + mus.sat_calls;
  return result;
}

}  // namespace step::core
