#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/types.h"

namespace step::sat {

/// Reference to a clause inside the arena (index into a word array).
using CRef = std::uint32_t;
constexpr CRef kCRefUndef = 0xffffffffU;

/// Clause header + inline literal array, stored in the arena.
///
/// Layout (32-bit words):
///   word 0: size (27 bits) | learnt flag (1 bit) | unused
///   word 1: activity (float, learnt only) or proof id (originals)
///   word 2..: literals
/// Every clause carries a proof id so the resolution logger can name it.
class Clause {
 public:
  std::uint32_t size() const { return header_ >> 5; }
  bool learnt() const { return (header_ & 1U) != 0; }

  Lit& operator[](std::uint32_t i) { return lits_[i]; }
  const Lit& operator[](std::uint32_t i) const { return lits_[i]; }

  std::span<const Lit> lits() const { return {lits_, size()}; }
  std::span<Lit> lits() { return {lits_, size()}; }

  float activity() const { return activity_; }
  void set_activity(float a) { activity_ = a; }

  std::uint32_t proof_id() const { return proof_id_; }
  void set_proof_id(std::uint32_t id) { proof_id_ = id; }

 private:
  friend class ClauseArena;
  void init(std::span<const Lit> ls, bool learnt) {
    header_ = (static_cast<std::uint32_t>(ls.size()) << 5) |
              (learnt ? 1U : 0U);
    activity_ = 0.0f;
    proof_id_ = 0;
    for (std::uint32_t i = 0; i < ls.size(); ++i) lits_[i] = ls[i];
  }

  std::uint32_t header_;
  float activity_;
  std::uint32_t proof_id_;
  Lit lits_[1];  // flexible array; arena allocates the real length
};

/// Bump-pointer arena for clauses.
///
/// Clauses are identified by CRef word offsets, which remain stable for the
/// lifetime of the arena (no garbage collection is performed while proof
/// logging is enabled; the solver's reduce_db() compacts watch lists only).
class ClauseArena {
 public:
  CRef alloc(std::span<const Lit> lits, bool learnt) {
    STEP_CHECK(!lits.empty());
    const std::size_t need = kHeaderWords + lits.size();
    const CRef ref = static_cast<CRef>(mem_.size());
    mem_.resize(mem_.size() + need);
    clause_at(ref).init(lits, learnt);
    return ref;
  }

  Clause& operator[](CRef r) { return clause_at(r); }
  const Clause& operator[](CRef r) const {
    return const_cast<ClauseArena*>(this)->clause_at(r);
  }

  std::size_t size_words() const { return mem_.size(); }

 private:
  static constexpr std::size_t kHeaderWords = 3;

  Clause& clause_at(CRef r) {
    return *reinterpret_cast<Clause*>(mem_.data() + r);
  }

  std::vector<std::uint32_t> mem_;
};

}  // namespace step::sat
