// Randomized cross-check harness for the modernized CDCL hot path, in the
// spirit of krox/dawn's fuzz.py: random CNFs plus random assumption
// subsets, solved incrementally under two solver configurations —
//
//   * "modern"   — the shipping defaults with every new mechanism forced
//                  into overdrive (EMA restarts, aggressive rephasing,
//                  tiny reduce interval, inprocessing on every solve);
//   * "baseline" — the PR-3 configuration (Luby restarts, activity-only
//                  reduction, no inprocessing, no rephasing);
//
// demanding identical SAT/UNSAT answers, valid models, assumption-subset
// cores, and (on small instances) agreement with a brute-force oracle.
// The budget is deliberately small so the whole harness stays CI-friendly;
// crank kRounds locally for a longer soak.

#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace step::sat {
namespace {

SolverOptions modern_config() {
  SolverOptions o;  // shipping defaults, cranked to fire constantly
  o.restart_mode = RestartMode::kEma;
  o.restart_min_interval = 5;
  o.rephase_interval = 64;
  o.reduce_interval = 64;
  o.max_learnts_floor = 32.0;
  o.inprocess = true;
  o.inprocess_interval = 1;
  o.inprocess_min_conflicts = 0;
  return o;
}

SolverOptions baseline_config() {
  SolverOptions o;
  o.restart_mode = RestartMode::kLuby;
  o.rephase_interval = 0;
  o.inprocess = false;
  return o;
}

/// Brute force over clauses + assumption units (oracle for n <= ~16).
bool oracle_sat(int num_vars, const std::vector<LitVec>& clauses,
                const LitVec& assumptions) {
  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    auto lit_true = [&](Lit l) {
      return (((m >> var(l)) & 1ULL) != 0) != sign(l);
    };
    bool ok = true;
    for (Lit a : assumptions) {
      if (!lit_true(a)) {
        ok = false;
        break;
      }
    }
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      bool sat_c = false;
      for (Lit l : clauses[c]) sat_c = sat_c || lit_true(l);
      ok = sat_c;
    }
    if (ok) return true;
  }
  return false;
}

LitVec random_clause(int num_vars, Rng& rng) {
  const int width = rng.next_int(1, 4);
  LitVec c;
  for (int j = 0; j < width; ++j) {
    c.push_back(mk_lit(rng.next_int(0, num_vars - 1), rng.next_bool()));
  }
  return c;
}

void check_model(const Solver& s, const std::vector<LitVec>& clauses,
                 const LitVec& assumptions) {
  for (const LitVec& c : clauses) {
    bool sat_c = false;
    for (Lit l : c) sat_c = sat_c || s.model_value(l) == Lbool::kTrue;
    ASSERT_TRUE(sat_c) << "model violates a clause";
  }
  for (Lit a : assumptions) {
    ASSERT_EQ(s.model_value(a), Lbool::kTrue) << "model violates an assumption";
  }
}

void check_core(const Solver& s, const LitVec& assumptions) {
  for (Lit l : s.conflict_core()) {
    ASSERT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << "core literal was never assumed";
  }
}

TEST(SolverFuzz, ModernAgreesWithBaselineUnderAssumptions) {
  constexpr int kRounds = 120;
  constexpr int kSolvesPerRound = 4;
  Rng rng(0xf022ed);
  std::uint64_t sat_answers = 0, unsat_answers = 0;

  for (int round = 0; round < kRounds; ++round) {
    const int nv = rng.next_int(5, 14);
    Solver modern(modern_config());
    Solver baseline(baseline_config());
    for (int i = 0; i < nv; ++i) {
      modern.new_var();
      baseline.new_var();
    }
    std::vector<LitVec> clauses;

    // Incremental episodes: grow the formula, solve under fresh random
    // assumptions each time. Inprocessing fires between the episodes on
    // the modern solver — exactly the usage pattern of the CEGAR loops.
    for (int episode = 0; episode < kSolvesPerRound; ++episode) {
      const int grow = rng.next_int(nv, nv * 2);
      for (int c = 0; c < grow; ++c) {
        LitVec cl = random_clause(nv, rng);
        clauses.push_back(cl);
        modern.add_clause(cl);
        baseline.add_clause(cl);
      }
      LitVec assumptions;
      const int n_assume = rng.next_int(0, 3);
      for (int a = 0; a < n_assume; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }

      const Result rm = modern.solve(assumptions);
      const Result rb = baseline.solve(assumptions);
      ASSERT_EQ(rm, rb) << "round " << round << " episode " << episode
                        << ": configs disagree";
      const bool expect_sat = oracle_sat(nv, clauses, assumptions);
      ASSERT_EQ(rm == Result::kSat, expect_sat)
          << "round " << round << " episode " << episode
          << ": oracle disagrees";
      if (rm == Result::kSat) {
        ++sat_answers;
        check_model(modern, clauses, assumptions);
        check_model(baseline, clauses, assumptions);
      } else {
        ++unsat_answers;
        check_core(modern, assumptions);
        check_core(baseline, assumptions);
        // The core alone must already be inconsistent with the clauses.
        ASSERT_FALSE(oracle_sat(nv, clauses, modern.conflict_core()));
      }
      if (!modern.is_ok()) break;  // level-0 UNSAT: this instance is spent
    }
  }
  // The generator must exercise both outcomes, or the harness is dead.
  EXPECT_GT(sat_answers, 0u);
  EXPECT_GT(unsat_answers, 0u);
}

TEST(SolverFuzz, InprocessingKeepsIncrementalAnswersStable) {
  // Pin the exact hazard inprocessing could introduce: clauses deleted or
  // strengthened between solves must never change answers under
  // assumptions that arrive *after* the rewrite.
  Rng rng(20260731);
  for (int round = 0; round < 60; ++round) {
    const int nv = rng.next_int(6, 12);
    SolverOptions aggressive = modern_config();
    Solver s(aggressive);
    Solver ref(baseline_config());
    for (int i = 0; i < nv; ++i) {
      s.new_var();
      ref.new_var();
    }
    std::vector<LitVec> clauses;
    for (int c = 0; c < nv * 3; ++c) {
      LitVec cl = random_clause(nv, rng);
      clauses.push_back(cl);
      s.add_clause(cl);
      ref.add_clause(cl);
    }
    // Repeated solves on the same formula: every round after the first
    // runs inprocessing first; answers must stay fixed.
    for (int i = 0; i < 4; ++i) {
      LitVec assumptions;
      for (int a = 0; a < 2; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      ASSERT_EQ(s.solve(assumptions), ref.solve(assumptions))
          << "round " << round << " solve " << i;
    }
    // Instances refuted at level 0 short-circuit solve() before the
    // inprocessing hook; everything else must have run it.
    if (s.is_ok()) EXPECT_GE(s.stats().inprocess_rounds, 1u);
  }
}

}  // namespace
}  // namespace step::sat
