#pragma once

#include <string>
#include <string_view>

#include "io/network.h"

namespace step::io {

/// Parses an espresso-style PLA file (the native format of the LGSYNTH
/// two-level benchmarks the paper draws on). Supported directives:
/// .i/.o (required), .ilb/.ob (names), .p (advisory), .type f|fr (ON-set
/// semantics), .e/.end. Cube lines use {0,1,-} input columns and
/// {1,0,~,-} output columns; an output is the OR of the cubes marked '1'
/// in its column. Throws std::runtime_error on malformed input.
Network parse_pla(std::string_view text);

/// Reads and parses a PLA file from disk.
Network read_pla_file(const std::string& path);

}  // namespace step::io
