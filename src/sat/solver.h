#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/timer.h"
#include "sat/clause.h"
#include "sat/heap.h"
#include "sat/proof.h"
#include "sat/types.h"

namespace step::sat {

/// Tuning knobs and feature switches.
struct SolverOptions {
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int restart_base = 100;        ///< Luby restart unit, in conflicts.
  bool phase_saving = true;
  bool minimize_learnt = true;   ///< basic (non-recursive) minimization
  /// Floor for the learnt-clause budget before reduce_db() fires
  /// (the effective limit also scales with the problem size).
  double max_learnts_floor = 4000.0;
  /// Record the resolution proof. Implies that learnt clauses are never
  /// deleted (proof nodes must stay resolvable), so enable only for the
  /// interpolation queries, which are per-cone and small.
  bool proof_logging = false;
};

/// Conflict-driven clause-learning SAT solver in the MiniSat lineage:
/// two-literal watches, first-UIP learning, VSIDS decisions, phase saving,
/// Luby restarts, incremental solving under assumptions with final-conflict
/// cores, and optional resolution-proof logging for interpolation.
///
/// Typical use:
///   Solver s;
///   Var a = s.new_var(), b = s.new_var();
///   s.add_clause({mk_lit(a), mk_lit(b)});
///   Result r = s.solve();
///   if (r == Result::kSat) ... s.model_value(mk_lit(a)) ...
class Solver {
 public:
  explicit Solver(SolverOptions opts = {});

  // ----- problem construction --------------------------------------------
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause. `proof_tag` labels the proof leaf (interpolation uses
  /// 0 = A-part, 1 = B-part; irrelevant when proof logging is off).
  /// Returns false iff the solver is already in an unsatisfiable state.
  bool add_clause(std::span<const Lit> lits, int proof_tag = 0);
  bool add_clause(std::initializer_list<Lit> lits, int proof_tag = 0) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()), proof_tag);
  }

  /// False once unsatisfiability has been established at level 0.
  bool is_ok() const { return ok_; }

  // ----- solving -----------------------------------------------------------
  Result solve() { return solve(std::span<const Lit>{}); }
  Result solve(std::span<const Lit> assumptions);
  /// Budgeted solve: stops with kUnknown when the conflict budget
  /// (negative = unlimited) or the deadline runs out.
  Result solve_limited(std::span<const Lit> assumptions,
                       std::int64_t conflict_budget = -1,
                       const Deadline* deadline = nullptr);

  // ----- results ------------------------------------------------------------
  /// Model access after kSat.
  Lbool model_value(Lit l) const {
    Lbool v = model_[var(l)];
    return v ^ sign(l);
  }
  Lbool model_value(Var v) const { return model_[v]; }

  /// After kUnsat under assumptions: a subset of the assumptions whose
  /// conjunction is already inconsistent with the clauses (the "core").
  /// Literals appear in their assumed polarity.
  const LitVec& conflict_core() const { return conflict_core_; }

  /// Resolution proof (only populated with proof_logging = true).
  const Proof& proof() const { return proof_; }

  // ----- heuristics / hints ---------------------------------------------------
  /// Preferred phase when the variable is picked as a decision.
  void set_polarity_hint(Var v, bool value) { polarity_[v] = value ? 1 : 0; }

  /// Adds `factor` × the current VSIDS increment to v's activity, steering
  /// upcoming decisions toward v (e.g. deciding problem variables before
  /// encoder auxiliaries). The preference decays like any ordinary bump.
  void boost_var_activity(Var v, double factor = 1.0) { bump_var(v, factor); }

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learnt = 0;
    std::uint64_t db_reductions = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Watcher {
    CRef cref;
    Lit blocker;
  };

  // Internal machinery.
  Lbool value(Lit l) const { return assigns_[var(l)] ^ sign(l); }
  Lbool value(Var v) const { return assigns_[v]; }
  int level(Var v) const { return level_[v]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(CRef cr);
  void detach_clause(CRef cr);
  void enqueue(Lit p, CRef from);
  CRef propagate();
  void cancel_until(int lvl);
  Lit pick_branch_lit();
  void new_decision_level() { trail_lim_.push_back(static_cast<int>(trail_.size())); }

  void analyze(CRef confl, LitVec& out_learnt, int& out_btlevel,
               ProofId& out_start, std::vector<ProofStep>& out_steps,
               LitVec& dropped_level0);
  void analyze_final(Lit p, LitVec& out_core);
  bool lit_redundant(Lit l, std::vector<ProofStep>& steps, LitVec& dropped0,
                     LitVec& to_clear);

  Result search(std::int64_t nof_conflicts, const Deadline* deadline);

  void bump_var(Var v, double factor = 1.0);
  void decay_var_activity() { var_inc_ /= opts_.var_decay; }
  void bump_clause(Clause& c);
  void decay_clause_activity() { cla_inc_ /= opts_.clause_decay; }
  void reduce_db();

  /// Proof id justifying the level-0 assignment of v.
  ProofId level0_justification(Var v) const;
  /// Removes all literals of `lits` that are false at level 0, appending
  /// the corresponding resolution steps. Requires proof logging.
  void resolve_level0(LitVec& lits, std::vector<ProofStep>& steps);

  // Configuration.
  SolverOptions opts_;

  // Clause database.
  ClauseArena arena_;
  std::vector<CRef> clauses_;  ///< problem clauses
  std::vector<CRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  ///< indexed by literal

  // Assignment.
  std::vector<Lbool> assigns_;
  std::vector<int> level_;
  std::vector<CRef> reason_;
  LitVec trail_;
  std::vector<int> trail_lim_;
  LitVec assumptions_;
  int qhead_ = 0;
  bool ok_ = true;

  // Decision heuristics.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  VarOrderHeap order_heap_{activity_};
  std::vector<char> polarity_;

  // Learning temporaries.
  std::vector<char> seen_;
  std::vector<char> present_;  ///< literals currently in the learnt clause
  std::vector<char> seen2_;    ///< marks for level-0 resolution chains

  // Results.
  std::vector<Lbool> model_;
  LitVec conflict_core_;

  // Proof.
  Proof proof_;
  std::vector<ProofId> level0_unit_id_;  ///< per var; for reason-less units

  // Learnt DB management.
  double max_learnts_ = 0.0;

  Stats stats_;
};

}  // namespace step::sat
