// The failure-taxonomy contract: every OutcomeReason is reachable and
// correctly attributed, the governor's memory caps abandon exactly the
// offending cone, the degradation ladder turns budget/memory failures into
// verified (never wrong) conclusions, fault plans parse and replay
// deterministically, and the CLI maps I/O failures onto exit code 3.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "benchgen/generators.h"
#include "common/fault.h"
#include "common/resource.h"
#include "common/timer.h"
#include "core/circuit_driver.h"
#include "core/outcome.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/io_error.h"

namespace step {
namespace {

// ---------- taxonomy primitives -------------------------------------------

TEST(Outcome, ToStringIsTotalAndDistinct) {
  std::set<std::string> names;
  for (int i = 0; i < core::kNumOutcomeReasons; ++i) {
    const std::string s =
        core::to_string(static_cast<core::OutcomeReason>(i));
    EXPECT_FALSE(s.empty());
    EXPECT_NE(s, "?");
    names.insert(s);
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(core::kNumOutcomeReasons));
  EXPECT_STREQ(core::to_string(core::OutcomeReason::kOk), "ok");
  EXPECT_STREQ(core::to_string(core::OutcomeReason::kIoError), "io_error");
}

TEST(Outcome, CountsArithmeticAndRendering) {
  core::OutcomeCounts a;
  a.add(core::OutcomeReason::kOk);
  a.add(core::OutcomeReason::kOk);
  a.add(core::OutcomeReason::kMemLimit);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.failures(), 1u);
  EXPECT_EQ(a.of(core::OutcomeReason::kOk), 2u);

  core::OutcomeCounts b;
  b.add(core::OutcomeReason::kMemLimit);
  b.add(core::OutcomeReason::kInjectedFault);
  a += b;
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.of(core::OutcomeReason::kMemLimit), 2u);
  // Rendering: ok always prints, zero counters are skipped.
  EXPECT_EQ(a.to_string(), "ok=2 mem_limit=2 injected_fault=1");
  EXPECT_EQ(core::OutcomeCounts{}.to_string(), "ok=0");

  core::OutcomeCounts c = a;
  EXPECT_TRUE(c == a);
  c.add(core::OutcomeReason::kOk);
  EXPECT_FALSE(c == a);
}

TEST(Outcome, ReasonOfCoversEveryTripCause) {
  using Trip = Deadline::Trip;
  using R = core::OutcomeReason;
  EXPECT_EQ(core::reason_of(Trip::kNone), R::kOk);
  // Wall expiry / the forced seam / injected expiry name the budget that
  // ran out: the cone's own at engine level, the shared one at run level.
  for (Trip t : {Trip::kWall, Trip::kForced, Trip::kInjectedExpire}) {
    EXPECT_EQ(core::reason_of(t, /*run_level=*/false), R::kEngineDeadline);
    EXPECT_EQ(core::reason_of(t, /*run_level=*/true), R::kCircuitDeadline);
  }
  // Escalations from attachments classify the same at either level.
  for (bool run_level : {false, true}) {
    EXPECT_EQ(core::reason_of(Trip::kParent, run_level), R::kCircuitDeadline);
    EXPECT_EQ(core::reason_of(Trip::kCancelled, run_level),
              R::kCircuitDeadline);
    EXPECT_EQ(core::reason_of(Trip::kMem, run_level), R::kMemLimit);
    EXPECT_EQ(core::reason_of(Trip::kInjectedAlloc, run_level), R::kMemLimit);
    EXPECT_EQ(core::reason_of(Trip::kInjectedAbort, run_level),
              R::kInjectedFault);
  }
  // An unknown with no deadline trip can only be a conflict cap.
  EXPECT_EQ(core::reason_of_unknown(nullptr), R::kConflictBudget);
  Deadline fresh(1e9);
  EXPECT_EQ(core::reason_of_unknown(&fresh), R::kConflictBudget);
}

// ---------- fault plans and streams ---------------------------------------

TEST(Fault, PlanParseAcceptsAndRejects) {
  auto p = FaultPlan::parse("7:0.5");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->seed, 7u);
  EXPECT_DOUBLE_EQ(p->rate, 0.5);
  // Default kinds: every poll-point kind, io off (it fires before any cone
  // exists and must be asked for explicitly).
  EXPECT_TRUE(p->expire && p->alloc && p->abort && p->verify);
  EXPECT_FALSE(p->io);
  EXPECT_TRUE(p->enabled());

  auto q = FaultPlan::parse("1:0.25:ei");
  ASSERT_TRUE(q.has_value());
  EXPECT_TRUE(q->expire);
  EXPECT_TRUE(q->io);
  EXPECT_FALSE(q->alloc || q->abort || q->verify);

  EXPECT_FALSE(FaultPlan::parse("").has_value());
  EXPECT_FALSE(FaultPlan::parse("5").has_value());
  EXPECT_FALSE(FaultPlan::parse("x:0.5").has_value());
  EXPECT_FALSE(FaultPlan::parse("1:nope").has_value());
  EXPECT_FALSE(FaultPlan::parse("1:1.5").has_value());
  EXPECT_FALSE(FaultPlan::parse("1:-0.1").has_value());
  EXPECT_FALSE(FaultPlan::parse("1:0.5:z").has_value());
  // Rate 0 parses but is a no-op plan.
  auto z = FaultPlan::parse("9:0");
  ASSERT_TRUE(z.has_value());
  EXPECT_FALSE(z->enabled());
}

TEST(Fault, StreamIsDeterministicPerStreamId) {
  FaultPlan plan;
  plan.seed = 42;
  plan.rate = 0.05;
  // Same (plan, stream_id) must replay the identical schedule — this is
  // what makes 1-thread and N-thread injection runs indistinguishable.
  auto schedule = [&](std::uint64_t id) {
    FaultStream s(plan, id);
    std::vector<FaultKind> ks;
    for (int i = 0; i < 256; ++i) ks.push_back(s.poll());
    return ks;
  };
  for (std::uint64_t id : {0u, 1u, 7u}) {
    EXPECT_EQ(schedule(id), schedule(id)) << "stream " << id;
  }
  // Streams decorrelate by id: among a handful of ids at least one must
  // differ from stream 0 (all-equal would mean the id is ignored).
  const auto s0 = schedule(0);
  bool any_differs = false;
  for (std::uint64_t id = 1; id <= 16 && !any_differs; ++id) {
    any_differs = schedule(id) != s0;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Fault, StreamLatchesFirstFiredKind) {
  FaultPlan plan;
  plan.seed = 3;
  plan.rate = 0.5;
  FaultStream s(plan, 0);
  FaultKind first = FaultKind::kNone;
  for (int i = 0; i < 1000 && first == FaultKind::kNone; ++i) first = s.poll();
  ASSERT_NE(first, FaultKind::kNone) << "rate 0.5 must fire within 1000 polls";
  // Once fired, the stream keeps answering the same kind: re-polls while
  // the cone winds down are idempotent.
  for (int i = 0; i < 32; ++i) EXPECT_EQ(s.poll(), first);
  EXPECT_GE(s.fired(), 1u);
}

TEST(Fault, DisabledStreamNeverFires) {
  FaultStream s;  // default: no plan, rate 0
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.poll(), FaultKind::kNone);
  EXPECT_FALSE(s.fire_verification());
  EXPECT_EQ(s.fired(), 0u);
}

// ---------- reachability of every reason through the driver ---------------

core::DecomposeOptions base_opts(core::Engine e, core::GateOp op) {
  core::DecomposeOptions o;
  o.engine = e;
  o.op = op;
  o.po_budget_s = 60.0;
  return o;
}

TEST(OutcomeReach, EngineDeadlineOnTinyPoBudget) {
  const aig::Aig circ = benchgen::ripple_adder(3);
  core::DecomposeOptions opts =
      base_opts(core::Engine::kQbfCombined, core::GateOp::kOr);
  opts.po_budget_s = 1e-9;  // expires at the first engine poll
  const auto r = core::run_circuit(circ, "c", opts, 600.0);
  ASSERT_FALSE(r.pos.empty());
  for (const core::PoOutcome& p : r.pos) {
    EXPECT_EQ(p.status, core::DecomposeStatus::kUnknown);
    EXPECT_EQ(p.reason, core::OutcomeReason::kEngineDeadline);
  }
  EXPECT_FALSE(r.hit_circuit_budget);  // the *run* budget never expired
}

TEST(OutcomeReach, CircuitDeadlineViaCancelFlag) {
  const aig::Aig circ = benchgen::ripple_adder(3);
  const auto opts = base_opts(core::Engine::kMg, core::GateOp::kOr);
  const std::atomic<bool> cancel{true};  // SIGINT before any work
  core::ParallelDriverOptions par;
  par.cancel = &cancel;
  const auto r = core::run_circuit(circ, "c", opts, 600.0, par);
  ASSERT_FALSE(r.pos.empty());
  for (const core::PoOutcome& p : r.pos) {
    EXPECT_EQ(p.status, core::DecomposeStatus::kUnknown);
    EXPECT_EQ(p.reason, core::OutcomeReason::kCircuitDeadline);
  }
  EXPECT_TRUE(r.hit_circuit_budget);
}

TEST(OutcomeReach, ConflictBudgetOnCappedSolver) {
  core::DecomposeOptions opts =
      base_opts(core::Engine::kMg, core::GateOp::kOr);
  opts.sat.conflict_budget = 1;  // every solve stops almost immediately
  const auto r =
      core::run_circuit(benchgen::parity_tree(12), "par12", opts, 600.0);
  ASSERT_EQ(r.pos.size(), 1u);
  EXPECT_EQ(r.pos[0].status, core::DecomposeStatus::kUnknown);
  EXPECT_EQ(r.pos[0].reason, core::OutcomeReason::kConflictBudget);
  EXPECT_GT(r.pos[0].solver_stats.conflict_budget_stops, 0u);
}

TEST(OutcomeReach, MemLimitAbandonsConeWhileSiblingsConclude) {
  // The parity cone's solvers blow the soft per-cone cap; the adder cones
  // stay far under it. Exactly the offender must come back kMemLimit and
  // every sibling must still conclude — the clean-abandonment contract.
  const aig::Aig circ = benchgen::merge(
      {benchgen::parity_tree(16), benchgen::ripple_adder(3)});
  const auto opts = base_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  ResourceGovernor gov({/*soft_cone_bytes=*/256u << 10, /*hard=*/0});
  core::ParallelDriverOptions par;
  par.governor = &gov;
  const auto r = core::run_circuit(circ, "mix", opts, 600.0, par);
  ASSERT_GE(r.pos.size(), 2u);
  EXPECT_EQ(r.pos[0].support, 16);
  EXPECT_EQ(r.pos[0].status, core::DecomposeStatus::kUnknown);
  EXPECT_EQ(r.pos[0].reason, core::OutcomeReason::kMemLimit);
  for (std::size_t i = 1; i < r.pos.size(); ++i) {
    EXPECT_NE(r.pos[i].status, core::DecomposeStatus::kUnknown)
        << "sibling po " << i << " must conclude";
    EXPECT_EQ(r.pos[i].reason, core::OutcomeReason::kOk);
  }
  EXPECT_GE(gov.cones_tripped(), 1u);
  EXPECT_GT(gov.peak_run_bytes(), 256u << 10);
  EXPECT_EQ(r.outcome_counts().total(), r.pos.size());
  EXPECT_EQ(r.outcome_counts().of(core::OutcomeReason::kMemLimit), 1u);
}

TEST(OutcomeReach, InjectedAbortClassifiesAsInjectedFault) {
  const aig::Aig circ = benchgen::ripple_adder(3);
  const auto opts = base_opts(core::Engine::kMg, core::GateOp::kOr);
  const auto plan = FaultPlan::parse("5:1:b");  // abort at the first poll
  ASSERT_TRUE(plan.has_value());
  core::ParallelDriverOptions par;
  par.faults = &*plan;
  const auto r = core::run_circuit(circ, "c", opts, 600.0, par);
  ASSERT_FALSE(r.pos.empty());
  for (const core::PoOutcome& p : r.pos) {
    EXPECT_EQ(p.status, core::DecomposeStatus::kUnknown);
    EXPECT_EQ(p.reason, core::OutcomeReason::kInjectedFault);
  }
}

TEST(OutcomeReach, InjectedExpireClassifiesAsEngineDeadline) {
  const aig::Aig circ = benchgen::ripple_adder(3);
  const auto opts = base_opts(core::Engine::kMg, core::GateOp::kOr);
  const auto plan = FaultPlan::parse("5:1:e");
  ASSERT_TRUE(plan.has_value());
  core::ParallelDriverOptions par;
  par.faults = &*plan;
  const auto r = core::run_circuit(circ, "c", opts, 600.0, par);
  ASSERT_FALSE(r.pos.empty());
  for (const core::PoOutcome& p : r.pos) {
    EXPECT_EQ(p.status, core::DecomposeStatus::kUnknown);
    EXPECT_EQ(p.reason, core::OutcomeReason::kEngineDeadline);
  }
}

TEST(OutcomeReach, InjectedVerificationFlipDiscardsDecompositions) {
  // With verification faults firing on every check, any PO the fault-free
  // run decomposed must now be *discarded* (kVerificationFailed), never
  // returned unverified. Not-decomposable proofs carry no verification
  // and are untouched.
  const aig::Aig circ = benchgen::ripple_adder(3);
  const auto opts = base_opts(core::Engine::kMg, core::GateOp::kXor);
  const auto oracle = core::run_circuit(circ, "c", opts, 600.0);
  const auto plan = FaultPlan::parse("5:1:v");
  ASSERT_TRUE(plan.has_value());
  core::ParallelDriverOptions par;
  par.faults = &*plan;
  const auto r = core::run_circuit(circ, "c", opts, 600.0, par);
  ASSERT_EQ(r.pos.size(), oracle.pos.size());
  bool any_discarded = false;
  for (std::size_t i = 0; i < r.pos.size(); ++i) {
    EXPECT_NE(r.pos[i].status, core::DecomposeStatus::kDecomposed)
        << "po " << i << ": unverified result returned as a success";
    if (oracle.pos[i].status == core::DecomposeStatus::kDecomposed) {
      EXPECT_EQ(r.pos[i].status, core::DecomposeStatus::kUnknown);
      EXPECT_EQ(r.pos[i].reason, core::OutcomeReason::kVerificationFailed);
      any_discarded = true;
    } else {
      EXPECT_EQ(r.pos[i].status, oracle.pos[i].status);
    }
  }
  EXPECT_TRUE(any_discarded) << "oracle run must decompose something";
}

// ---------- attempt / ladder budget clamping ------------------------------
// Deadline treats a non-positive budget as "no deadline", so the naive
// `min(po_budget_s, remaining_s())` the driver used to apply silently
// produced *unlimited* attempts on both degenerate ends. These pin the
// fixed helpers; each test names the old expression it would fail under.

TEST(BudgetClamp, FinitePoBudgetClampsToCircuitRemaining) {
  Deadline cd(5.0);
  const double b = core::effective_attempt_budget_s(60.0, cd);
  EXPECT_GT(b, 0.0);
  EXPECT_LE(b, 5.0);
}

TEST(BudgetClamp, UnlimitedPoBudgetInheritsCircuitRemaining) {
  // Old expression: min(0, remaining) == 0 == "no deadline" — an attempt
  // with *no* wall budget under a finite circuit budget.
  Deadline cd(5.0);
  const double b = core::effective_attempt_budget_s(0.0, cd);
  EXPECT_GT(b, 0.0) << "unlimited attempt under a finite circuit budget";
  EXPECT_LE(b, 5.0);
}

TEST(BudgetClamp, ExpiredCircuitBudgetIsNotUnlimited) {
  Deadline cd(600.0);
  cd.force_expire_after_polls(0);  // the circuit budget is spent
  ASSERT_EQ(cd.remaining_s(), 0.0);
  // Old expression: min(10, 0) == 0 == "no deadline" — the attempt that
  // should get nothing got everything.
  const double b = core::effective_attempt_budget_s(10.0, cd);
  EXPECT_GT(b, 0.0) << "0 would mean an unlimited attempt";
  EXPECT_LT(b, 1e-6) << "an expired run grants an instantly-expiring slice";
  EXPECT_TRUE(Deadline(b).expired());
}

TEST(BudgetClamp, UnlimitedOnBothSidesStaysUnlimited) {
  Deadline cd(0.0);  // no circuit budget at all
  EXPECT_EQ(core::effective_attempt_budget_s(0.0, cd), 0.0);
  EXPECT_DOUBLE_EQ(core::effective_attempt_budget_s(7.5, cd), 7.5);
}

TEST(BudgetClamp, RungBudgetIsFiniteUnderUnlimitedPoBudget) {
  // Old expression: po_budget_s * frac == 0 * 0.25 == 0 — a mem-tripped
  // cone's "quarter budget" retry ran with no deadline at all.
  Deadline unlimited(0.0);
  const double b = core::ladder_rung_budget_s(0.0, 0.25, unlimited);
  EXPECT_DOUBLE_EQ(b, 0.25 * core::kDefaultRungBudget_s);

  // With a finite circuit budget the rung slices what actually remains.
  Deadline finite(8.0);
  const double c = core::ladder_rung_budget_s(0.0, 0.5, finite);
  EXPECT_GT(c, 0.0);
  EXPECT_LE(c, 4.0);
}

TEST(BudgetClamp, RungBudgetClampsToCircuitRemaining) {
  // Old expression took the raw po_budget_s * frac, skipping the clamp the
  // primary attempt gets — a late rung could be granted more wall time
  // than the whole run had left (30 s here, against a spent run).
  Deadline cd(600.0);
  cd.force_expire_after_polls(0);
  const double b = core::ladder_rung_budget_s(60.0, 0.5, cd);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 1e-6);
}

// ---------- degradation ladder --------------------------------------------

TEST(OutcomeLadder, MemTrippedConeDegradesToVerifiedConclusion) {
  // Without the MG bootstrap the QBF search blows the 384 KB cone cap
  // before reaching any partition (kMemLimit without the ladder); with
  // --degrade the cheaper-engine rung (STEP-MG under a fresh account)
  // concludes well inside the cap — and rung results run with extraction
  // and SAT verification forced on, so a degraded answer is still proven.
  const aig::Aig circ = benchgen::parity_tree(16);
  core::DecomposeOptions opts =
      base_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  opts.bootstrap_with_mg = false;
  const ResourceGovernor::Options cap{/*soft_cone_bytes=*/384u << 10, 0};

  ResourceGovernor plain_gov(cap);
  core::ParallelDriverOptions plain;
  plain.governor = &plain_gov;
  const auto without = core::run_circuit(circ, "par16", opts, 600.0, plain);
  ASSERT_EQ(without.pos.size(), 1u);
  EXPECT_EQ(without.pos[0].status, core::DecomposeStatus::kUnknown);
  EXPECT_EQ(without.pos[0].reason, core::OutcomeReason::kMemLimit);
  EXPECT_EQ(without.num_degraded(), 0);

  ResourceGovernor ladder_gov(cap);
  core::ParallelDriverOptions ladder = plain;
  ladder.governor = &ladder_gov;
  ladder.degrade = true;
  const auto with = core::run_circuit(circ, "par16", opts, 600.0, ladder);
  ASSERT_EQ(with.pos.size(), 1u);
  EXPECT_EQ(with.pos[0].status, core::DecomposeStatus::kDecomposed);
  EXPECT_EQ(with.pos[0].reason, core::OutcomeReason::kOk);
  EXPECT_TRUE(with.pos[0].degraded);
  EXPECT_GE(with.pos[0].ladder_rung, 1);
  EXPECT_EQ(with.num_degraded(), 1);
  // The primary attempt still tripped — the ladder pays for the retry, it
  // does not erase the trip from the governor's books.
  EXPECT_GE(ladder_gov.cones_tripped(), 1u);
}

TEST(OutcomeLadder, MemTrippedConeDegradesUnderUnlimitedPoBudget) {
  // po_budget_s == 0 ("no per-PO deadline") used to hand ladder rungs a
  // 0 * frac == 0 budget — unlimited, not a slice. The fixed rung budget
  // is a finite kDefaultRungBudget_s-scaled slice and still concludes.
  const aig::Aig circ = benchgen::parity_tree(16);
  core::DecomposeOptions opts =
      base_opts(core::Engine::kQbfCombined, core::GateOp::kXor);
  opts.bootstrap_with_mg = false;
  opts.po_budget_s = 0.0;
  ResourceGovernor gov({/*soft_cone_bytes=*/384u << 10, /*hard=*/0});
  core::ParallelDriverOptions par;
  par.governor = &gov;
  par.degrade = true;
  const auto r = core::run_circuit(circ, "par16", opts, 600.0, par);
  ASSERT_EQ(r.pos.size(), 1u);
  EXPECT_EQ(r.pos[0].status, core::DecomposeStatus::kDecomposed);
  EXPECT_EQ(r.pos[0].reason, core::OutcomeReason::kOk);
  EXPECT_TRUE(r.pos[0].degraded);
  EXPECT_GE(gov.cones_tripped(), 1u);
}

TEST(OutcomeLadder, CircuitLevelFailuresAreNotRetried) {
  // A run out of *circuit* budget must not burn ladder rungs: the run is
  // over, not the cone.
  const aig::Aig circ = benchgen::ripple_adder(3);
  const auto opts = base_opts(core::Engine::kQbfCombined, core::GateOp::kOr);
  core::ParallelDriverOptions par;
  par.degrade = true;
  const auto r = core::run_circuit(circ, "c", opts, 1e-9, par);
  ASSERT_FALSE(r.pos.empty());
  for (const core::PoOutcome& p : r.pos) {
    EXPECT_EQ(p.status, core::DecomposeStatus::kUnknown);
    EXPECT_EQ(p.reason, core::OutcomeReason::kCircuitDeadline);
    EXPECT_FALSE(p.degraded);
  }
  EXPECT_EQ(r.num_degraded(), 0);
}

// ---------- typed I/O errors ----------------------------------------------

std::string corpus(const std::string& name) {
  return std::string(STEP_TEST_DATA_DIR) + "/corpus/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

TEST(IoErrorType, ReadersThrowTypedIoError) {
  // The readers throw io::IoError (a runtime_error subclass) so the CLI
  // boundary can map it onto exit code 3 while every existing
  // runtime_error catch keeps working.
  EXPECT_THROW(io::parse_aiger(slurp(corpus("truncated_mid_and.aag"))),
               io::IoError);
  EXPECT_THROW(io::parse_blif(slurp(corpus("truncated_mid_cube.blif"))),
               io::IoError);
  EXPECT_THROW(io::read_blif_file("/nonexistent/definitely_missing.blif"),
               io::IoError);
  try {
    io::read_blif_file("/nonexistent/definitely_missing.blif");
    FAIL() << "must throw";
  } catch (const io::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

// ---------- CLI exit codes -------------------------------------------------

int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(STEP_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(CliExitCodes, TruncatedInputExitsWith3) {
  EXPECT_EQ(run_cli("decompose " + corpus("truncated_mid_cube.blif")), 3);
}

TEST(CliExitCodes, MissingInputExitsWith3) {
  EXPECT_EQ(run_cli("decompose /nonexistent/definitely_missing.blif"), 3);
}

TEST(CliExitCodes, InjectedIoFaultExitsWith3) {
  // The 'i' fault kind fires deterministically at the CLI's read boundary
  // — same exit path as a real reader failure, rate-independent corpus.
  const std::string blif = testing::TempDir() + "/outcome_cli_ok.blif";
  std::ofstream(blif) << io::write_blif(benchgen::ripple_adder(2), "ok");
  EXPECT_EQ(run_cli("decompose " + blif + " -faults 1:1:i"), 3);
  // Without the io kind the same plan must not touch the exit path.
  EXPECT_EQ(run_cli("decompose " + blif + " -faults 1:0:e"), 0);
}

TEST(CliExitCodes, UsageErrorExitsWith2) {
  EXPECT_EQ(run_cli("decompose"), 2);
  EXPECT_EQ(run_cli("frobnicate x.blif"), 2);
  EXPECT_EQ(run_cli("decompose x.blif -faults not-a-plan"), 2);
}

TEST(CliExitCodes, MemCappedRunCompletesSuccessfully) {
  // The ISSUE's acceptance shape: a -cone-mem-limit-capped run finishes
  // with exit 0 — cones that trip the cap degrade or report `mem`, the
  // process never dies.
  const std::string blif = testing::TempDir() + "/outcome_cli_par16.blif";
  std::ofstream(blif) << io::write_blif(benchgen::parity_tree(16), "par16");
  EXPECT_EQ(run_cli("decompose " + blif +
                    " -op xor -engine qdb -cone-mem-limit 1 --stats"),
            0);
}

}  // namespace
}  // namespace step
