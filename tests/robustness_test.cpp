// Robustness: the parsers must reject malformed input with exceptions —
// never crash, hang, or silently accept — under random mutation of valid
// files (a light structured fuzz, deterministic by seed) and on the
// committed corpus of malformed/truncated files under tests/data/corpus.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "benchgen/generators.h"
#include "common/rng.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/pla_reader.h"
#include "sat/dimacs.h"

namespace step {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(STEP_TEST_DATA_DIR) + "/corpus/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int edits = rng.next_int(1, 4);
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) break;
    const std::size_t pos = rng.next_below(s.size());
    switch (rng.next_int(0, 3)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(' ' + rng.next_int(0, 94));
        break;
      case 1:  // delete a span
        s.erase(pos, rng.next_int(1, 8));
        break;
      case 2:  // duplicate a span
        s.insert(pos, s.substr(pos, rng.next_int(1, 8)));
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

template <typename ParseFn>
void fuzz(const std::string& valid, ParseFn parse, int rounds, int seed) {
  // The valid input must parse...
  EXPECT_NO_THROW(parse(valid));
  // ...and no mutation may do anything but succeed or throw runtime_error.
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      parse(m);
    } catch (const std::runtime_error&) {
      // expected failure mode
    }
  }
}

TEST(Robustness, BlifParserSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::ripple_adder(3), "m");
  fuzz(valid, [](const std::string& s) { return io::parse_blif(s); }, 400, 1);
}

TEST(Robustness, BlifElaborationSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::comparator(3), "m");
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_blif(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, AigerParserSurvivesMutation) {
  const std::string valid = io::write_aiger(benchgen::parity_tree(5));
  fuzz(valid, [](const std::string& s) { return io::parse_aiger(s); }, 400, 3);
}

TEST(Robustness, PlaParserSurvivesMutation) {
  const std::string valid =
      ".i 4\n.o 2\n.ilb a b c d\n.ob f g\n"
      "1-0- 10\n-11- 11\n0001 01\n.e\n";
  fuzz(valid, [](const std::string& s) { return io::parse_pla(s); }, 400, 4);
}

TEST(Robustness, PlaElaborationSurvivesMutation) {
  const std::string valid = ".i 3\n.o 1\n110 1\n0-1 1\n.e\n";
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_pla(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, DimacsParserSurvivesMutation) {
  const std::string valid = "p cnf 4 3\n1 -2 0\n2 3 -4 0\n-1 4 0\n";
  fuzz(valid, [](const std::string& s) { return sat::parse_dimacs(s); }, 400, 6);
}

// ---------------------------------------------------------------------------
// Committed corpus: every malformed file must raise std::runtime_error —
// not crash, not allocate absurdly, not silently parse. Each file pins a
// specific historical failure mode (oversized headers used to segfault or
// bad_alloc; deep AND chains overflowed the recursive elaborator).
// ---------------------------------------------------------------------------

TEST(RobustnessCorpus, MalformedBlifFilesAreRejected) {
  for (const char* name :
       {"truncated.blif", "bad_cube.blif", "cycle.blif", "undriven.blif",
        "stray_cube.blif", "empty.blif", "cube_width.blif"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_blif(text).to_aig(), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, MalformedAigerFilesAreRejected) {
  for (const char* name :
       {"huge_header.aag", "truncated.aag", "cyclic.aag", "odd_and_lhs.aag",
        "redefined_input.aag", "out_of_range.aag"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_aiger(text), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, MalformedPlaFilesAreRejected) {
  for (const char* name :
       {"huge_width.pla", "huge_product.pla", "width_mismatch.pla",
        "bad_char.pla", "bad_type.pla", "missing_i.pla"}) {
    const std::string text = slurp(corpus_path(name));
    EXPECT_THROW(io::parse_pla(text).to_aig(), std::runtime_error) << name;
  }
}

TEST(RobustnessCorpus, EveryCorpusFileParsesOrThrowsRuntimeError) {
  // Catch-all over the whole directory so future corpus additions are
  // covered without registering them by name: any outcome but a clean
  // parse or a runtime_error (e.g. bad_alloc, segfault) fails.
  namespace fs = std::filesystem;
  int seen = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(std::string(STEP_TEST_DATA_DIR) + "/corpus")) {
    const std::string path = e.path().string();
    const std::string ext = e.path().extension().string();
    const std::string text = slurp(path);
    ++seen;
    try {
      if (ext == ".blif") io::parse_blif(text).to_aig();
      if (ext == ".aag") io::parse_aiger(text);
      if (ext == ".pla") io::parse_pla(text).to_aig();
    } catch (const std::runtime_error&) {
      // the expected rejection path
    }
  }
  EXPECT_GE(seen, 19);
}

TEST(Robustness, DeepAigerChainDoesNotOverflowTheStack) {
  // 200k-AND linear chain: the demand-driven elaborator must be
  // iterative. Generated rather than committed (the file is ~4 MB).
  // Alternating ¬x keeps structural hashing from folding the chain away.
  const int n = 200000;
  std::ostringstream os;
  os << "aag " << (n + 2) << " 2 0 1 " << n << "\n2\n4\n" << (n + 2) * 2
     << "\n";
  for (int v = 3; v <= n + 2; ++v) {
    os << v * 2 << ' ' << (v - 1) * 2 << ' ' << (v % 2 != 0 ? 3 : 2) << '\n';
  }
  const aig::Aig a = io::parse_aiger(os.str());
  EXPECT_EQ(a.num_ands(), static_cast<std::uint32_t>(n));
}

TEST(Robustness, AigerHeaderCannotDriveHugeAllocations) {
  // M far beyond the file size must be rejected up front, whatever the
  // other counts say.
  EXPECT_THROW(io::parse_aiger("aag 4000000000 0 0 0 0\n"),
               std::runtime_error);
  EXPECT_THROW(io::parse_aiger("aag 2000000 1000000 0 0 1000000\n2\n"),
               std::runtime_error);
}

TEST(Robustness, WritersAlwaysReparse) {
  // Property: whatever circuit we generate, writer output re-parses.
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const aig::Aig a = benchgen::random_dag(rng.next_int(2, 8),
                                            rng.next_int(2, 40),
                                            rng.next_int(1, 6), rng.next());
    EXPECT_NO_THROW(io::parse_blif(io::write_blif(a)).to_aig());
    EXPECT_NO_THROW(io::parse_aiger(io::write_aiger(a)));
  }
}

}  // namespace
}  // namespace step
