#include "core/qbf_model.h"

#include "cnf/cardinality.h"
#include "cnf/cnf.h"

namespace step::core {

QbfPartitionFinder::QbfPartitionFinder(const RelaxationMatrix& m,
                                       QbfFinderOptions opts)
    : m_(m), opts_(opts) {}

QbfFindResult QbfPartitionFinder::find_with_bound(QbfModel model, int k,
                                                  const Deadline* deadline) {
  const int n = m_.n;
  ++qbf_calls_;

  // Quantifier structure of the negated formulation (9):
  // outer (∃) = alpha ++ beta;  inner (∀) = all cone-copy inputs.
  std::vector<std::uint32_t> outer(m_.alpha);
  outer.insert(outer.end(), m_.beta.begin(), m_.beta.end());
  std::vector<std::uint32_t> inner(m_.x);
  inner.insert(inner.end(), m_.xp.begin(), m_.xp.end());
  inner.insert(inner.end(), m_.xpp.begin(), m_.xpp.end());
  inner.insert(inner.end(), m_.xppp.begin(), m_.xppp.end());

  qbf::ExistsForallSolver solver(m_.aig, aig::lnot(m_.phi), outer, inner,
                                 opts_.cegar);

  // Side constraints over (α, β) go straight into the abstraction.
  cnf::SolverSink sink(solver.abstraction());
  sat::LitVec alpha(n), beta(n);
  for (int i = 0; i < n; ++i) {
    alpha[i] = sat::mk_lit(solver.outer_var(i));
    beta[i] = sat::mk_lit(solver.outer_var(n + i));
  }

  // fN: non-trivial partition, one class per variable.
  cnf::at_least_one(sink, alpha);
  cnf::at_least_one(sink, beta);
  for (int i = 0; i < n; ++i) {
    sink.add_binary(~alpha[i], ~beta[i]);
  }

  // Shared-variable indicators t_i ⇔ (¬α_i ∧ ¬β_i), used by QD and QDB.
  auto make_shared_indicators = [&]() {
    sat::LitVec t(n);
    for (int i = 0; i < n; ++i) {
      t[i] = sat::mk_lit(sink.new_var());
      sink.add_ternary(t[i], alpha[i], beta[i]);
      sink.add_binary(~t[i], ~alpha[i]);
      sink.add_binary(~t[i], ~beta[i]);
    }
    return t;
  };

  // fT: the target constraint for the requested model and bound.
  const bool sym = opts_.symmetry_breaking;
  switch (model) {
    case QbfModel::kQD: {
      const sat::LitVec t = make_shared_indicators();
      cnf::at_most_k(sink, t, k);
      // Symmetry breaking |XA| >= |XB| (Section IV.A.2).
      if (sym) cnf::diff_non_negative(sink, alpha, beta);
      break;
    }
    case QbfModel::kQB: {
      // 0 <= #XA − #XB <= k (eq. (6); symmetry removed by construction).
      // Without the symmetry break, bound |#XA − #XB| <= k instead.
      if (sym) cnf::diff_non_negative(sink, alpha, beta);
      cnf::diff_at_most_k(sink, alpha, beta, k);
      if (!sym) cnf::diff_at_most_k(sink, beta, alpha, k);
      break;
    }
    case QbfModel::kQDB: {
      // 0 <= #XC + #XA − #XB <= k with |XA| >= |XB| (eq. (8)); the
      // unbroken variant bounds #XC + |#XA − #XB| <= k.
      const sat::LitVec t = make_shared_indicators();
      if (sym) cnf::diff_non_negative(sink, alpha, beta);
      sat::LitVec pos_a(t), pos_b(t);
      pos_a.insert(pos_a.end(), alpha.begin(), alpha.end());
      cnf::diff_at_most_k(sink, pos_a, beta, k);
      if (!sym) {
        pos_b.insert(pos_b.end(), beta.begin(), beta.end());
        cnf::diff_at_most_k(sink, pos_b, alpha, k);
      }
      break;
    }
  }

  // Replay previously discovered universal countermodels.
  if (opts_.pool_seeding) {
    for (const auto& cm : pool_) solver.seed_countermodel(cm);
  }

  const qbf::Qbf2Result r = solver.solve(deadline);
  for (const auto& cm : solver.countermodels()) pool_.push_back(cm);

  QbfFindResult result;
  result.status = r.status;
  result.iterations = r.iterations;
  if (r.status == qbf::Qbf2Status::kTrue) {
    result.partition.cls.resize(n);
    for (int i = 0; i < n; ++i) {
      const bool in_a = r.outer_model[i] == sat::Lbool::kTrue;
      const bool in_b = r.outer_model[n + i] == sat::Lbool::kTrue;
      STEP_CHECK(!(in_a && in_b));
      result.partition.cls[i] =
          in_a ? VarClass::kA : in_b ? VarClass::kB : VarClass::kC;
    }
  }
  return result;
}

}  // namespace step::core
