// Ablation study for the design choices the paper (and DESIGN.md) call
// out. Not a paper table; quantifies each claim:
//   1. symmetry breaking |XA| >= |XB| "reduces substantially the search
//      space" (Section IV.A.2),
//   2. carrying CEGAR countermodels across bound queries makes the
//      MD/Bin/MI loop affordable,
//   3. the single-clause refinement fast path vs generic Tseitin,
//   4. MG bootstrapping of the upper bound (Section IV.A.6),
//   5. search strategy schedules (MI vs MD vs Bin vs the composite),
//   6. the persistent incremental solver pair vs scratch rebuild per bound.
// Metrics: total QBF solver calls, total CEGAR iterations (via pool size),
// and wall time over a fixed set of decomposable cones.

#include <cstdio>

#include "bench_common.h"
#include "core/mg.h"
#include "core/optimum.h"

namespace {

using namespace step;

struct Workload {
  std::vector<core::RelaxationMatrix> matrices;
};

Workload make_workload(benchgen::SuiteScale scale) {
  Workload w;
  const auto suite = benchgen::standard_suite(scale);
  for (const benchgen::BenchCircuit& c : suite) {
    for (std::uint32_t po = 0; po < c.aig.num_outputs(); ++po) {
      const core::Cone cone = core::extract_po_cone(c.aig, po);
      if (cone.n() < 6 || cone.n() > 14) continue;  // interesting sizes only
      w.matrices.push_back(
          core::build_relaxation_matrix(cone, core::GateOp::kOr));
      if (w.matrices.size() >= 40) return w;
    }
  }
  return w;
}

struct Totals {
  int qbf_calls = 0;
  long cegar_refinements = 0;
  double seconds = 0.0;
  int found = 0;
};

Totals run_config(const Workload& w, const core::QbfFinderOptions& fopts,
                  const core::OptimumOptions& oopts, bool bootstrap) {
  Totals t;
  Timer timer;
  for (const core::RelaxationMatrix& m : w.matrices) {
    std::optional<core::Partition> boot;
    if (bootstrap) {
      core::RelaxationSolver rs(m);
      core::MgDecomposer mg(rs);
      const core::PartitionSearchResult r = mg.find_partition();
      if (r.found) boot = r.partition;
    }
    core::QbfPartitionFinder finder(m, fopts);
    core::OptimumSearch search(finder, core::QbfModel::kQD, oopts);
    const core::OptimumResult r = search.run(boot);
    t.qbf_calls += r.qbf_calls;
    t.cegar_refinements += static_cast<long>(finder.pool_size());
    if (r.outcome == core::OptimumResult::Outcome::kFound) ++t.found;
  }
  t.seconds = timer.elapsed_s();
  return t;
}

void report(const char* label, const Totals& t) {
  std::printf("%-28s %6d found %8d qbf-calls %10ld refinements %9.3f s\n",
              label, t.found, t.qbf_calls, t.cegar_refinements, t.seconds);
}

}  // namespace

int main() {
  const auto scale = benchgen::scale_from_env();
  bench::print_preamble("Ablations: QBF model engineering choices", scale);
  const Workload w = make_workload(scale);
  std::printf("# workload: %zu OR cones, supports 6..14\n\n", w.matrices.size());

  core::QbfFinderOptions base_f;
  core::OptimumOptions base_o;
  base_o.call_timeout_s = 10.0;

  report("baseline (all on)", run_config(w, base_f, base_o, true));

  {
    core::QbfFinderOptions f = base_f;
    f.symmetry_breaking = false;
    report("- symmetry breaking", run_config(w, f, base_o, true));
  }
  {
    core::QbfFinderOptions f = base_f;
    f.pool_seeding = false;
    report("- countermodel pool", run_config(w, f, base_o, true));
  }
  {
    core::QbfFinderOptions f = base_f;
    f.incremental = false;
    report("- incremental (scratch)", run_config(w, f, base_o, true));
  }
  {
    core::QbfFinderOptions f = base_f;
    f.cegar.clause_fast_path = false;
    report("- clause fast path", run_config(w, f, base_o, true));
  }
  report("- MG bootstrap", run_config(w, base_f, base_o, false));

  std::printf("\n# strategy schedules (bootstrap on):\n");
  {
    core::OptimumOptions o = base_o;
    o.schedule = {{core::SearchStrategy::kMonotoneIncreasing, -1}};
    report("schedule MI", run_config(w, base_f, o, true));
    o.schedule = {{core::SearchStrategy::kMonotoneDecreasing, -1}};
    report("schedule MD", run_config(w, base_f, o, true));
    o.schedule = {{core::SearchStrategy::kBinary, -1}};
    report("schedule Bin", run_config(w, base_f, o, true));
    o.schedule = {{core::SearchStrategy::kMonotoneDecreasing, 2},
                  {core::SearchStrategy::kBinary, 8},
                  {core::SearchStrategy::kMonotoneIncreasing, -1}};
    report("schedule MD>Bin>MI (paper)", run_config(w, base_f, o, true));
  }

  std::printf(
      "\n# expectations: removing any of 1-4 increases refinements and/or"
      " time;\n# every configuration finds the same number of optima"
      " (soundness is unaffected)\n");
  return 0;
}
