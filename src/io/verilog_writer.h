#pragma once

#include <string>

#include "aig/aig.h"

namespace step::io {

/// Emits a structural gate-level Verilog module (assign-style netlist) for
/// a combinational AIG — the usual hand-off format towards downstream
/// synthesis/P&R flows. Net names are sanitised to Verilog identifiers;
/// inverters are folded into the assign expressions.
std::string write_verilog(const aig::Aig& a, const std::string& module_name = "top");

void write_verilog_file(const aig::Aig& a, const std::string& path,
                        const std::string& module_name = "top");

}  // namespace step::io
