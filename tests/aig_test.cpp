#include "aig/aig.h"

#include <gtest/gtest.h>

#include "aig/ops.h"
#include "aig/simulate.h"
#include "aig/support.h"
#include "common/rng.h"

namespace step::aig {
namespace {

// ---------- construction / strashing -----------------------------------------

TEST(AigBuild, ConstantsFold) {
  Aig a;
  const Lit x = a.add_input();
  EXPECT_EQ(a.land(kLitFalse, x), kLitFalse);
  EXPECT_EQ(a.land(kLitTrue, x), x);
  EXPECT_EQ(a.land(x, x), x);
  EXPECT_EQ(a.land(x, lnot(x)), kLitFalse);
  EXPECT_EQ(a.num_ands(), 0u);
}

TEST(AigBuild, StructuralHashingSharesNodes) {
  Aig a;
  const Lit x = a.add_input();
  const Lit y = a.add_input();
  const Lit g1 = a.land(x, y);
  const Lit g2 = a.land(y, x);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(a.num_ands(), 1u);
}

TEST(AigBuild, OrAndXorSemantics) {
  Aig a;
  const Lit x = a.add_input();
  const Lit y = a.add_input();
  const Lit o = a.lor(x, y);
  const Lit xo = a.lxor(x, y);
  const Lit m = a.lmux(x, y, lnot(y));  // x ? y : ¬y == xnor(x,y)
  const std::vector<std::uint64_t> in{0b0101, 0b0011};
  EXPECT_EQ(simulate_cone(a, o, in) & 0xf, 0b0111u);
  EXPECT_EQ(simulate_cone(a, xo, in) & 0xf, 0b0110u);
  EXPECT_EQ(simulate_cone(a, m, in) & 0xf, 0b1001u);
}

TEST(AigBuild, MuxTruthTable) {
  Aig a;
  const Lit s = a.add_input();
  const Lit t = a.add_input();
  const Lit e = a.add_input();
  const Lit m = a.lmux(s, t, e);
  const std::vector<std::uint32_t> support{0, 1, 2};
  const auto tt = truth_table(a, m, support);
  for (int row = 0; row < 8; ++row) {
    const bool sv = (row & 1) != 0, tv = (row & 2) != 0, ev = (row & 4) != 0;
    EXPECT_EQ(tt_bit(tt, row), sv ? tv : ev) << "row " << row;
  }
}

TEST(AigBuild, ManyInputOps) {
  Aig a;
  std::vector<Lit> xs;
  for (int i = 0; i < 7; ++i) xs.push_back(a.add_input());
  const Lit all = a.land_many(xs);
  const Lit any = a.lor_many(xs);
  const Lit par = a.lxor_many(xs);
  std::vector<std::uint32_t> support;
  for (int i = 0; i < 7; ++i) support.push_back(i);
  const auto t_all = truth_table(a, all, support);
  const auto t_any = truth_table(a, any, support);
  const auto t_par = truth_table(a, par, support);
  for (int row = 0; row < 128; ++row) {
    EXPECT_EQ(tt_bit(t_all, row), row == 127);
    EXPECT_EQ(tt_bit(t_any, row), row != 0);
    EXPECT_EQ(tt_bit(t_par, row), (__builtin_popcount(row) & 1) != 0);
  }
}

TEST(AigBuild, EmptyManyOps) {
  Aig a;
  EXPECT_EQ(a.land_many({}), kLitTrue);
  EXPECT_EQ(a.lor_many({}), kLitFalse);
  EXPECT_EQ(a.lxor_many({}), kLitFalse);
}

// ---------- cone copy / cofactor ----------------------------------------------

TEST(AigOps, CopyConePreservesFunction) {
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    Aig src;
    std::vector<Lit> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(src.add_input());
    for (int g = 0; g < 30; ++g) {
      const Lit f0 = pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const Lit f1 = pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(src.land(f0, f1));
    }
    const Lit root = pool.back() ^ (rng.next_bool() ? 1u : 0u);

    Aig dst;
    std::vector<Lit> map;
    for (int i = 0; i < 5; ++i) map.push_back(dst.add_input());
    const Lit croot = copy_cone(src, root, dst, map);

    std::vector<std::uint64_t> stim(5);
    for (auto& w : stim) w = rng.next();
    EXPECT_EQ(simulate_cone(src, root, stim), simulate_cone(dst, croot, stim));
  }
}

TEST(AigOps, CofactorFixesInputs) {
  Aig src;
  const Lit x = src.add_input("x");
  const Lit y = src.add_input("y");
  const Lit z = src.add_input("z");
  const Lit f = src.lor(src.land(x, y), src.land(lnot(x), z));  // mux(x,y,z)

  Aig dst;
  std::vector<Lit> free_map{kLitInvalid, dst.add_input("y"), dst.add_input("z")};
  // x <- 1: f becomes y.
  const Lit f1 = cofactor(src, f, dst, {1, -1, -1}, free_map);
  EXPECT_EQ(f1, free_map[1]);
  // x <- 0: f becomes z.
  const Lit f0 = cofactor(src, f, dst, {0, -1, -1}, free_map);
  EXPECT_EQ(f0, free_map[2]);
}

TEST(AigOps, CofactorToConstant) {
  Aig src;
  const Lit x = src.add_input();
  const Lit y = src.add_input();
  const Lit f = src.land(x, y);
  Aig dst;
  const Lit yd = dst.add_input();
  const Lit c = cofactor(src, f, dst, {0, -1}, {kLitInvalid, yd});
  EXPECT_EQ(c, kLitFalse);
  const Lit c1 = cofactor(src, f, dst, {1, -1}, {kLitInvalid, yd});
  EXPECT_EQ(c1, yd);
}

TEST(AigOps, ExtractConeCreatesMinimalInputs) {
  Aig src;
  const Lit x = src.add_input("x");
  (void)src.add_input("unused");
  const Lit z = src.add_input("z");
  const Lit f = src.land(x, lnot(z));
  src.add_output(f, "f");

  Aig dst;
  std::vector<std::uint32_t> used;
  std::vector<Lit> created;
  const Lit r = extract_cone(src, f, dst, used, created);
  EXPECT_EQ(dst.num_inputs(), 2u);
  EXPECT_EQ(used, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_EQ(dst.input_name(0), "x");
  EXPECT_EQ(dst.input_name(1), "z");
  const std::vector<std::uint64_t> stim{0b0101, 0b0011};
  EXPECT_EQ(simulate_cone(dst, r, stim) & 0xf, 0b0101u & ~0b0011u & 0xf);
}

// ---------- support ------------------------------------------------------------

TEST(AigSupport, StructuralSupportOfCone) {
  Aig a;
  const Lit x = a.add_input();
  (void)a.add_input();
  const Lit z = a.add_input();
  const Lit f = a.lor(x, z);
  EXPECT_EQ(structural_support(a, f), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(structural_support(a, kLitTrue).empty());
}

TEST(AigSupport, FunctionalTighterThanStructural) {
  Aig a;
  const Lit x = a.add_input();
  const Lit y = a.add_input();
  // f = (x & y) | (x & !y) == x: y is structurally but not semantically in.
  const Lit f = a.lor(a.land(x, y), a.land(x, lnot(y)));
  EXPECT_EQ(structural_support(a, f), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(functional_support(a, f), (std::vector<std::uint32_t>{0}));
}

// ---------- simulation ----------------------------------------------------------

TEST(AigSim, OutputsFollowDrivers) {
  Aig a;
  const Lit x = a.add_input();
  const Lit y = a.add_input();
  a.add_output(a.land(x, y), "and");
  a.add_output(lnot(a.land(x, y)), "nand");
  const auto out = simulate(a, {0b1100, 0b1010});
  EXPECT_EQ(out[0] & 0xf, 0b1000u);
  EXPECT_EQ(out[1] & 0xf, 0b0111u);
}

TEST(AigSim, TruthTableWideSupport) {
  // 8-input AND: single 1 at the top row of a 256-row table.
  Aig a;
  std::vector<Lit> xs;
  std::vector<std::uint32_t> support;
  for (int i = 0; i < 8; ++i) {
    xs.push_back(a.add_input());
    support.push_back(i);
  }
  const auto tt = truth_table(a, a.land_many(xs), support);
  ASSERT_EQ(tt.size(), tt_words(8));
  for (int row = 0; row < 256; ++row) {
    EXPECT_EQ(tt_bit(tt, row), row == 255);
  }
}

}  // namespace
}  // namespace step::aig
