#pragma once

#include "sat/types.h"

namespace step::sat {

class Solver;

/// Failed-literal probing with lazy hyper-binary resolution and bounded
/// transitive reduction of the binary implication graph.
///
/// Each probe assumes one literal at a temporary decision level and
/// propagates:
///   * a conflict makes the probe a *failed literal* — its negation is a
///     level-0 unit (RUP, hence DRAT-loggable as an addition);
///   * literals forced through a non-binary reason clause yield *hyper
///     binaries* (probe → forced), each RUP against the clauses that did
///     the propagating.
///
/// The closing pass deletes binary clauses whose implication edge is
/// reproduced by a chain of other binaries (transitive reduction) — pure
/// deletions, always proof- and model-safe.
///
/// Probing never removes variables, so it is assumption-safe without any
/// freezing; the shared propagation budget (SolverOptions::probe_budget)
/// bounds one round.
class Prober {
 public:
  explicit Prober(Solver& s) : s_(s) {}

  /// One probing round at level 0. Clears the solver's ok flag on
  /// refutation; derived units are settled immediately (probing needs
  /// consistent watches anyway).
  void run();

 private:
  /// Probes `l`; returns false once the budget is exhausted.
  bool probe(Lit l);
  void transitive_reduction();
  bool has_binary(Lit a, Lit b) const;

  Solver& s_;
  std::int64_t budget_ = 0;
  // Transitive-reduction BFS scratch, indexed by literal.
  std::vector<std::int32_t> seen_stamp_;
  std::int32_t stamp_ = 0;
};

}  // namespace step::sat
