// Demonstrates the paper's Section IV.A.6: the iterative search for the
// *optimum* bound k with the three strategies MI, MD and Bin, and the
// composite schedule MD -> Bin -> MI used for disjointness.
//
// The subject is a 16:1 mux tree whose OR bi-decomposition requires the
// four select inputs to be shared but nothing else: the optimum
// disjointness is |XC| = 4 out of 20 inputs, and the search has to prove
// both that 4 works and that 3 does not.
//
//   $ ./optimum_search

#include <cstdio>

#include "benchgen/generators.h"
#include "core/optimum.h"
#include "core/relaxation.h"

namespace {

void run_schedule(const step::core::RelaxationMatrix& matrix,
                  const char* label,
                  std::vector<step::core::SearchStage> schedule) {
  using namespace step::core;
  QbfPartitionFinder finder(matrix);
  OptimumOptions opts;
  opts.call_timeout_s = 10.0;
  opts.schedule = std::move(schedule);
  OptimumSearch search(finder, QbfModel::kQD, opts);
  const OptimumResult r = search.run(std::nullopt);
  if (r.outcome != OptimumResult::Outcome::kFound) {
    std::printf("%-12s -> no decomposition found\n", label);
    return;
  }
  std::printf("%-12s -> optimum |XC| = %d, proven %s, %d QBF calls"
              " (pool kept %zu countermodels)\n",
              label, r.best_cost, r.proven_optimal ? "yes" : "no",
              r.qbf_calls, finder.pool_size());
}

}  // namespace

int main() {
  using namespace step;
  using core::SearchStage;
  using core::SearchStrategy;

  const aig::Aig circ = benchgen::mux_tree(4);  // 16 data + 4 select inputs
  const core::Cone cone = core::extract_po_cone(circ, 0);
  std::printf("subject: 16:1 mux tree, support %d\n", cone.n());

  const core::RelaxationMatrix matrix =
      core::build_relaxation_matrix(cone, core::GateOp::kOr);

  run_schedule(matrix, "MI", {{SearchStrategy::kMonotoneIncreasing, -1}});
  run_schedule(matrix, "MD", {{SearchStrategy::kMonotoneDecreasing, -1}});
  run_schedule(matrix, "Bin", {{SearchStrategy::kBinary, -1}});
  run_schedule(matrix, "MD>Bin>MI",
               {{SearchStrategy::kMonotoneDecreasing, 2},
                {SearchStrategy::kBinary, 8},
                {SearchStrategy::kMonotoneIncreasing, -1}});

  std::printf(
      "\nAll strategies must report the same optimum; they differ only in"
      " how many QBF calls they spend (the paper picks MD>Bin>MI for"
      " disjointness and MI for balancedness).\n");
  return 0;
}
