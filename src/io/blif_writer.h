#pragma once

#include <string>

#include "aig/aig.h"

namespace step::io {

/// Renders an AIG as BLIF: one two-input .names per AND gate, with edge
/// complementation folded into cube polarities. Round-trips through
/// parse_blif + to_aig to an equivalent circuit.
std::string write_blif(const aig::Aig& a, const std::string& model_name = "aig");

/// Writes to a file; throws std::runtime_error on IO failure.
void write_blif_file(const aig::Aig& a, const std::string& path,
                     const std::string& model_name = "aig");

}  // namespace step::io
