// step — command-line front end mirroring the paper's tool
// ("STEP — Satisfiability-based funcTion dEcomPosition").
//
// Usage:
//   step decompose <circuit.blif> [options]   per-PO bi-decomposition report
//   step resynth   <circuit.blif> [options]   recursive resynthesis -> BLIF
//   step stats     <circuit.blif>             circuit statistics
//   step lint      <file...> [--json]         static artifact analysis
//
// Run `step --help` (or see README.md § Command-line reference) for the
// complete flag list; the two are kept in sync by tests/cli_reference_test.

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "common/fault.h"
#include "common/resource.h"
#include "core/circuit_driver.h"
#include "core/synthesis.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/comb.h"
#include "io/io_error.h"

namespace {

using namespace step;

/// Set by the SIGINT handler; the drivers poll it through the circuit
/// deadline's cancellation attachment, so in-flight cones stop at their
/// next poll and the partial report is still flushed before exit.
std::atomic<bool> g_interrupted{false};

extern "C" void handle_sigint(int) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  std::string command;
  std::string input;
  std::string output;
  core::GateOp op = core::GateOp::kOr;
  core::Engine engine = core::Engine::kQbfDisjoint;
  double timeout_s = 60.0;
  double qbf_timeout_s = 1.0;
  int num_threads = 1;
  bool incremental = true;
  bool print_stats = false;
  bool recursive = false;
  bool cache_stats = false;
  bool use_cache = true;
  bool verify = false;
  bool use_dc = false;
  bool dc_stats = false;
  bool portfolio = false;
  int race_width = 2;
  bool portfolio_stats = false;
  core::SchedulePolicy schedule = core::SchedulePolicy::kFifo;
  aig::WindowOptions window;
  sat::SolverOptions sat;
  // Resource governance / fault injection (PR 7).
  std::size_t mem_limit_mb = 0;       ///< hard per-run cap, 0 = none
  std::size_t cone_mem_limit_mb = 0;  ///< soft per-cone cap, 0 = none
  bool degrade = false;
  std::optional<FaultPlan> faults;
};

constexpr const char kHelpText[] =
    "usage: step <command> <circuit> [options]\n"
    "\n"
    "commands:\n"
    "  decompose   per-PO bi-decomposition report (one split per output)\n"
    "  resynth     recursive resynthesis into a two-input-gate BLIF netlist\n"
    "  stats       circuit statistics (PO supports, decomposable candidates)\n"
    "  lint        static artifact analysis: structural checks on AIGER\n"
    "              netlists (ASCII and binary) and DIMACS CNF, without\n"
    "              running any solver\n"
    "\n"
    "input formats (picked by extension): .blif, .aag (ASCII AIGER) and\n"
    ".aig (binary AIGER, streamed — suitable for million-gate netlists);\n"
    "latches are cut combinationally in all three.\n"
    "\n"
    "decomposition options:\n"
    "  -op <or|and|xor>          top gate of the decomposition (default or)\n"
    "  -engine <ljh|mg|qd|qb|qdb>  partition engine (default qd)\n"
    "  -timeout <s>              per-circuit wall budget (default 60)\n"
    "  -qbf-timeout <s>          per-QBF-call budget (default 1.0)\n"
    "  -scratch                  rebuild the QBF solver per bound query (A/B\n"
    "                            reference for the default incremental mode)\n"
    "  --recursive               decompose: recurse per PO into a full tree\n"
    "                            and report tree area/depth per PO\n"
    "  --verify                  resynth/recursive: SAT-prove every PO tree\n"
    "  --no-cache                resynth/recursive: disable the NPN cache\n"
    "  -j <n>                    worker threads (0 = one per hardware thread)\n"
    "  --schedule <fifo|hardness>  decompose: PO job order (default fifo).\n"
    "                            hardness scores every cone (support width,\n"
    "                            estimated size) and runs hardest-first so\n"
    "                            wide pools never idle behind a giant cone\n"
    "                            found late; a pure reordering — per-PO\n"
    "                            results match fifo's whenever no circuit\n"
    "                            budget expires mid-run\n"
    "  -o <out.blif>             resynth output file (default stdout)\n"
    "\n"
    "don't-care options (see docs/ARCHITECTURE.md § Don't-care windows):\n"
    "  --dc                      exploit circuit don't-cares: decompose: each\n"
    "                            PO gets an SDC window and is decomposed on\n"
    "                            its care set (exact fallback, SAT-verified\n"
    "                            splice); resynth/recursive: sibling-ODC care\n"
    "                            sets drive every recursion node\n"
    "  --no-dc                   force the exact semantics (the default)\n"
    "  -dc-depth <n>             deepest window cut explored, in AND levels\n"
    "                            (default 6)\n"
    "  -dc-inputs <n>            widest window cut accepted (default 10,\n"
    "                            max 16; the care set enumerates 2^n)\n"
    "  --dc-stats                print window/care counters after the run\n"
    "\n"
    "engine-portfolio options (see docs/ARCHITECTURE.md § Engine"
    " portfolio):\n"
    "  --portfolio               decompose: probe each cone and pick its\n"
    "                            engine instead of running -engine\n"
    "                            everywhere; cones predicted hard race\n"
    "                            several engines concurrently with\n"
    "                            first-winner cancellation and shared\n"
    "                            countermodel learning (-engine still picks\n"
    "                            the preferred QBF variant)\n"
    "  -race-width <n>           engines raced on a hard cone (1-3,\n"
    "                            default 2; 1 = probe-picked solo engine,\n"
    "                            no racing)\n"
    "  --portfolio-stats         print probe/race/cancel/pool-transfer\n"
    "                            counters after the run\n"
    "\n"
    "SAT-solver options (see docs/SOLVER.md):\n"
    "  -restarts <luby|ema>      restart policy (default luby; ema =\n"
    "                            adaptive fast/slow LBD conflict averages)\n"
    "  -lbd-core <n>             learnts with LBD <= n are kept forever\n"
    "                            (default 3)\n"
    "  -lbd-tier2 <n>            LBD cut of the mid tier; above it clauses\n"
    "                            compete on activity (default 6)\n"
    "  --no-inprocess            disable inter-solve subsumption /\n"
    "                            strengthening / vivification (also turns\n"
    "                            the preprocessing tier off)\n"
    "  --no-rephase              disable target-phase rephasing\n"
    "  --no-elim                 disable bounded variable elimination\n"
    "  --no-scc                  disable equivalent-literal substitution\n"
    "  --no-probe                disable failed-literal probing /\n"
    "                            hyper-binary resolution\n"
    "  -elim-grow <n>            extra resolvents allowed per eliminated\n"
    "                            variable (default 0)\n"
    "  -elim-occ <n>             skip elimination candidates with more than\n"
    "                            n occurrences of both polarities\n"
    "                            (default 16)\n"
    "  -elim-budget <n>          resolution-literal budget per elimination\n"
    "                            round (default 400000)\n"
    "  -probe-budget <n>         propagation budget per probing round\n"
    "                            (default 30000)\n"
    "  -conflicts <n>            per-solve conflict budget; an exhausted\n"
    "                            budget is a typed `conf` outcome, never a\n"
    "                            wrong answer (default unlimited)\n"
    "\n"
    "resource governance (see docs/ARCHITECTURE.md § Resource governance):\n"
    "  -mem-limit <mb>           hard per-run cap on tracked solver/cache\n"
    "                            memory: when exceeded, live cones wind down\n"
    "                            cleanly with a `mem` outcome instead of the\n"
    "                            process being OOM-killed\n"
    "  -cone-mem-limit <mb>      soft per-cone cap: a cone over it is\n"
    "                            abandoned (`mem`) while siblings keep going\n"
    "  --degrade                 degradation ladder: retry over-budget or\n"
    "                            over-memory cones under cheaper configs\n"
    "                            (window off, cheaper engine) on shrinking\n"
    "                            budget slices; every degraded result is\n"
    "                            still SAT-verified (auto-enabled by the\n"
    "                            memory caps above)\n"
    "  -faults <seed:rate[:kinds]>  deterministic fault injection at every\n"
    "                            budget poll point (testing); kinds from\n"
    "                            \"eabvi\": expire, alloc, abort, verify, io\n"
    "                            (default eabv)\n"
    "  --inject-faults           read the fault plan from the STEP_FAULTS\n"
    "                            environment variable (same format)\n"
    "\n"
    "lint options (step lint <file> [file...]; see docs/ARCHITECTURE.md\n"
    "§ Static analysis & concurrency contracts for the finding-code\n"
    "catalogue):\n"
    "  --json                    emit one machine-readable JSON array of\n"
    "                            per-file reports instead of text\n"
    "  -o <out>                  write the lint report to a file\n"
    "                            (default stdout)\n"
    "  file kinds by extension: .aag/.aig AIGER, .cnf/.dimacs DIMACS CNF;\n"
    "  anything else is sniffed by content. Exit 0 when no error-severity\n"
    "  finding exists (warnings and infos never fail a run), 1 otherwise.\n"
    "\n"
    "reporting options:\n"
    "  --stats                   print aggregated solver-cost counters\n"
    "                            (SAT/QBF calls, CEGAR iterations, conflicts,\n"
    "                            restarts, tiers, inprocessing), the\n"
    "                            per-reason outcome taxonomy and the schedule\n"
    "                            shape (policy, outliers, batches,\n"
    "                            predicted-vs-actual hardness agreement)\n"
    "                            after the run\n"
    "  --cache-stats             print NPN-decomposition-cache counters\n"
    "  --help                    this reference\n"
    "\n"
    "exit codes:\n"
    "  0    success\n"
    "  1    failure (verification mismatch, internal error, or\n"
    "       error-severity lint findings)\n"
    "  2    usage error\n"
    "  3    I/O error (missing, truncated, or malformed input file)\n"
    "  130  interrupted (SIGINT) — the partial report is flushed first\n";

[[noreturn]] void usage(int exit_code = 2) {
  std::fputs(kHelpText, exit_code == 0 ? stdout : stderr);
  std::exit(exit_code);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0 ||
        std::strcmp(argv[i], "help") == 0) {
      usage(0);
    }
  }
  if (argc < 3) usage();
  cli.command = argv[1];
  // Reject unknown commands before touching the input file, so a typo'd
  // command is a usage error (2), not a misleading I/O error (3).
  if (cli.command != "decompose" && cli.command != "resynth" &&
      cli.command != "stats") {
    std::fprintf(stderr, "step: unknown command '%s'\n", cli.command.c_str());
    usage();
  }
  cli.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (flag == "-op") {
      const std::string v = value();
      cli.op = v == "and" ? core::GateOp::kAnd
                          : v == "xor" ? core::GateOp::kXor : core::GateOp::kOr;
    } else if (flag == "-engine") {
      const std::string v = value();
      if (v == "ljh") cli.engine = core::Engine::kLjh;
      else if (v == "mg") cli.engine = core::Engine::kMg;
      else if (v == "qb") cli.engine = core::Engine::kQbfBalanced;
      else if (v == "qdb") cli.engine = core::Engine::kQbfCombined;
      else cli.engine = core::Engine::kQbfDisjoint;
    } else if (flag == "-timeout") {
      cli.timeout_s = std::atof(value());
    } else if (flag == "-qbf-timeout") {
      cli.qbf_timeout_s = std::atof(value());
    } else if (flag == "-scratch") {
      cli.incremental = false;
    } else if (flag == "--stats" || flag == "-stats") {
      cli.print_stats = true;
    } else if (flag == "--recursive" || flag == "-recursive") {
      cli.recursive = true;
    } else if (flag == "--cache-stats" || flag == "-cache-stats") {
      cli.cache_stats = true;
    } else if (flag == "--no-cache" || flag == "-no-cache") {
      cli.use_cache = false;
    } else if (flag == "--verify" || flag == "-verify") {
      cli.verify = true;
    } else if (flag == "--dc" || flag == "-dc") {
      cli.use_dc = true;
    } else if (flag == "--no-dc" || flag == "-no-dc") {
      cli.use_dc = false;
    } else if (flag == "-dc-depth") {
      cli.window.max_depth = std::atoi(value());
      if (cli.window.max_depth < 1) {
        std::fprintf(stderr, "step: -dc-depth expects a level count >= 1\n");
        usage();
      }
    } else if (flag == "-dc-inputs") {
      cli.window.max_inputs = std::atoi(value());
      if (cli.window.max_inputs < 2 || cli.window.max_inputs > 16) {
        std::fprintf(stderr, "step: -dc-inputs expects a cut width in"
                             " [2, 16]\n");
        usage();
      }
    } else if (flag == "--dc-stats" || flag == "-dc-stats") {
      cli.dc_stats = true;
    } else if (flag == "--portfolio" || flag == "-portfolio") {
      cli.portfolio = true;
    } else if (flag == "-race-width") {
      cli.race_width = std::atoi(value());
      if (cli.race_width < 1 || cli.race_width > 3) {
        std::fprintf(stderr, "step: -race-width expects a width in [1, 3]\n");
        usage();
      }
    } else if (flag == "--portfolio-stats" || flag == "-portfolio-stats") {
      cli.portfolio_stats = true;
    } else if (flag == "-j") {
      cli.num_threads = std::atoi(value());
    } else if (flag == "--schedule" || flag == "-schedule") {
      const std::string v = value();
      if (v == "fifo") {
        cli.schedule = core::SchedulePolicy::kFifo;
      } else if (v == "hardness") {
        cli.schedule = core::SchedulePolicy::kHardness;
      } else {
        std::fprintf(stderr,
                     "step: --schedule expects fifo or hardness, got %s\n",
                     v.c_str());
        usage();
      }
    } else if (flag == "-o") {
      cli.output = value();
    } else if (flag == "-restarts") {
      const std::string v = value();
      if (v == "luby") {
        cli.sat.restart_mode = sat::RestartMode::kLuby;
      } else if (v == "ema") {
        cli.sat.restart_mode = sat::RestartMode::kEma;
      } else {
        std::fprintf(stderr, "step: -restarts expects luby or ema, got %s\n",
                     v.c_str());
        usage();
      }
    } else if (flag == "-lbd-core") {
      cli.sat.core_lbd_cut = std::atoi(value());
    } else if (flag == "-lbd-tier2") {
      cli.sat.tier2_lbd_cut = std::atoi(value());
    } else if (flag == "--no-inprocess" || flag == "-no-inprocess") {
      cli.sat.inprocess = false;
    } else if (flag == "--no-rephase" || flag == "-no-rephase") {
      cli.sat.rephase_interval = 0;
    } else if (flag == "--no-elim" || flag == "-no-elim") {
      cli.sat.elim = false;
    } else if (flag == "--no-scc" || flag == "-no-scc") {
      cli.sat.scc = false;
    } else if (flag == "--no-probe" || flag == "-no-probe") {
      cli.sat.probe = false;
    } else if (flag == "-elim-grow") {
      cli.sat.elim_grow = std::atoi(value());
    } else if (flag == "-elim-occ") {
      cli.sat.elim_occ_limit = std::atoi(value());
      if (cli.sat.elim_occ_limit < 1) {
        std::fprintf(stderr, "step: -elim-occ expects a count >= 1\n");
        usage();
      }
    } else if (flag == "-elim-budget") {
      cli.sat.elim_budget = std::atoll(value());
    } else if (flag == "-probe-budget") {
      cli.sat.probe_budget = std::atoll(value());
    } else if (flag == "-conflicts") {
      cli.sat.conflict_budget = std::atoll(value());
      if (cli.sat.conflict_budget < 0) {
        std::fprintf(stderr, "step: -conflicts expects a budget >= 0\n");
        usage();
      }
    } else if (flag == "-mem-limit") {
      const long long mb = std::atoll(value());
      if (mb < 1) {
        std::fprintf(stderr, "step: -mem-limit expects a size in MB >= 1\n");
        usage();
      }
      cli.mem_limit_mb = static_cast<std::size_t>(mb);
    } else if (flag == "-cone-mem-limit") {
      const long long mb = std::atoll(value());
      if (mb < 1) {
        std::fprintf(stderr,
                     "step: -cone-mem-limit expects a size in MB >= 1\n");
        usage();
      }
      cli.cone_mem_limit_mb = static_cast<std::size_t>(mb);
    } else if (flag == "--degrade" || flag == "-degrade") {
      cli.degrade = true;
    } else if (flag == "-faults") {
      cli.faults = FaultPlan::parse(value());
      if (!cli.faults) {
        std::fprintf(stderr,
                     "step: -faults expects seed:rate[:kinds] with rate in"
                     " [0,1] and kinds from \"eabvi\"\n");
        usage();
      }
    } else if (flag == "--inject-faults" || flag == "-inject-faults") {
      cli.faults = FaultPlan::from_env();
      if (!cli.faults) {
        std::fprintf(stderr,
                     "step: --inject-faults requires STEP_FAULTS="
                     "seed:rate[:kinds] in the environment\n");
        usage();
      }
    } else {
      usage();
    }
  }
  // The memory caps imply the ladder: a capped run should degrade
  // gracefully rather than just lose cones.
  if (cli.mem_limit_mb != 0 || cli.cone_mem_limit_mb != 0) cli.degrade = true;
  return cli;
}

/// Governance wiring shared by the decompose/resynth commands.
core::ParallelDriverOptions driver_options(const CliOptions& cli,
                                           ResourceGovernor* governor) {
  core::ParallelDriverOptions par;
  par.num_threads = cli.num_threads;
  par.governor = governor;
  par.faults = cli.faults && cli.faults->enabled() ? &*cli.faults : nullptr;
  par.cancel = &g_interrupted;
  par.degrade = cli.degrade;
  par.portfolio.enabled = cli.portfolio;
  par.portfolio.race_width = cli.race_width;
  par.schedule = cli.schedule;
  return par;
}

ResourceGovernor make_governor(const CliOptions& cli) {
  ResourceGovernor::Options o;
  o.soft_cone_bytes = cli.cone_mem_limit_mb * std::size_t{1} << 20;
  o.hard_run_bytes = cli.mem_limit_mb * std::size_t{1} << 20;
  return ResourceGovernor(o);
}

bool has_governor(const CliOptions& cli) {
  return cli.mem_limit_mb != 0 || cli.cone_mem_limit_mb != 0;
}

int cmd_stats(const io::Network& net, const aig::Aig& circuit) {
  std::printf("model:     %s\n", net.name.c_str());
  std::printf("inputs:    %u (%zu PIs + %zu latch outputs)\n",
              circuit.num_inputs(), net.inputs.size(), net.latches.size());
  std::printf("outputs:   %u (%zu POs + %zu latch inputs)\n",
              circuit.num_outputs(), net.outputs.size(), net.latches.size());
  std::printf("AND gates: %u\n", circuit.num_ands());
  int in_m = 0;
  int candidates = 0;
  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    const core::Cone cone = core::extract_po_cone(circuit, po);
    in_m = std::max(in_m, cone.n());
    if (cone.n() >= 2) ++candidates;
  }
  std::printf("#InM:      %d (max PO support)\n", in_m);
  std::printf("POs with support >= 2: %d\n", candidates);
  return 0;
}

int cmd_decompose(const CliOptions& cli, const io::Network& net,
                  const aig::Aig& circuit) {
  core::DecomposeOptions opts;
  opts.op = cli.op;
  opts.engine = cli.engine;
  opts.optimum.call_timeout_s = cli.qbf_timeout_s;
  opts.qbf.incremental = cli.incremental;
  opts.sat = cli.sat;
  opts.use_dont_cares = cli.use_dc;
  opts.window = cli.window;
  ResourceGovernor governor = make_governor(cli);
  const core::ParallelDriverOptions par =
      driver_options(cli, has_governor(cli) ? &governor : nullptr);
  const core::CircuitRunResult run =
      core::run_circuit(circuit, net.name, opts, cli.timeout_s, par);

  // Status column: "yes*" = decomposed on an SDC window's care set
  // (--dc); "yes~" = concluded by the degradation ladder; failures name
  // their typed reason (t/o wall budget, mem cap, conf conflict budget,
  // inj injected fault, vfail discarded unverified result).
  auto status_of = [](const core::PoOutcome& po) -> const char* {
    if (po.status == core::DecomposeStatus::kDecomposed) {
      return po.degraded ? "yes~" : po.used_window ? "yes*" : "yes";
    }
    if (po.status == core::DecomposeStatus::kNotDecomposable) return "no";
    switch (po.reason) {
      case core::OutcomeReason::kMemLimit: return "mem";
      case core::OutcomeReason::kConflictBudget: return "conf";
      case core::OutcomeReason::kInjectedFault: return "inj";
      case core::OutcomeReason::kVerificationFailed: return "vfail";
      default: return "t/o";
    }
  };

  std::printf("%-6s %8s %6s %7s %7s %8s %9s\n", "po", "support", "dec",
              "eD", "eB", "optimal", "cpu(s)");
  for (const core::PoOutcome& po : run.pos) {
    std::printf("%-6d %8d %6s", po.po_index, po.support, status_of(po));
    if (po.status == core::DecomposeStatus::kDecomposed) {
      std::printf(" %7.3f %7.3f %8s", po.metrics.disjointness(),
                  po.metrics.balancedness(), po.proven_optimal ? "yes" : "-");
    } else {
      std::printf(" %7s %7s %8s", "-", "-", "-");
    }
    std::printf(" %9.3f\n", po.cpu_s);
  }
  std::printf("# %s %s: %d/%zu decomposed, %d proven optimal, %.2f s\n",
              cli.portfolio ? "portfolio" : core::to_string(cli.engine),
              core::to_string(cli.op), run.num_decomposed(), run.pos.size(),
              run.num_proven_optimal(), run.total_cpu_s);
  if (cli.portfolio_stats) {
    std::printf("# portfolio: probes=%d races=%d cancels=%ld"
                " pool_published=%ld pool_imported=%ld\n",
                run.num_probed(), run.num_raced(), run.total_race_cancels(),
                run.total_pool_published(), run.total_pool_imported());
  }
  if (cli.dc_stats) {
    std::printf("# dc: windows=%d window_decomposed=%d sdc_minterms=%llu"
                " care_sat_completions=%ld\n",
                run.num_windows_built(), run.num_window_decomposed(),
                static_cast<unsigned long long>(
                    run.total_window_sdc_minterms()),
                run.total_window_sat_completions());
  }
  if (cli.print_stats) {
    std::printf("# outcomes: %s degraded=%d\n",
                run.outcome_counts().to_string().c_str(), run.num_degraded());
    // Predicted-vs-actual hardness: the fraction of cone pairs whose
    // predicted-score ordering matches their measured-cpu ordering.
    std::uint64_t agree = 0, pairs = 0;
    for (std::size_t i = 0; i < run.pos.size(); ++i) {
      for (std::size_t k = i + 1; k < run.pos.size(); ++k) {
        const auto& a = run.pos[i];
        const auto& b = run.pos[k];
        if (a.cpu_s == b.cpu_s || a.predicted_hardness == b.predicted_hardness)
          continue;
        ++pairs;
        if ((a.cpu_s < b.cpu_s) == (a.predicted_hardness < b.predicted_hardness))
          ++agree;
      }
    }
    std::printf("# schedule: policy=%s jobs=%d outliers=%d batches=%d"
                " rank_agreement=%.2f\n",
                core::to_string(run.schedule.policy), run.schedule.jobs,
                run.schedule.outliers, run.schedule.batches,
                pairs > 0
                    ? static_cast<double>(agree) / static_cast<double>(pairs)
                    : 1.0);
    if (has_governor(cli)) {
      std::printf("# mem: peak=%zu bytes cones_tripped=%llu\n",
                  governor.peak_run_bytes(),
                  static_cast<unsigned long long>(governor.cones_tripped()));
    }
    std::printf("# stats: mode=%s sat_calls=%ld qbf_calls=%ld"
                " qbf_iterations=%ld\n",
                cli.incremental ? "incremental" : "scratch",
                run.total_sat_calls(), run.total_qbf_calls(),
                run.total_qbf_iterations());
    std::printf("# stats: abstraction_conflicts=%llu"
                " verification_conflicts=%llu\n",
                static_cast<unsigned long long>(
                    run.total_abstraction_conflicts()),
                static_cast<unsigned long long>(
                    run.total_verification_conflicts()));
    const sat::Solver::Stats ss = run.total_solver_stats();
    auto u = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
    std::printf("# stats: solver conflicts=%llu restarts=%llu (blocked=%llu)"
                " rephases=%llu reductions=%llu\n",
                u(ss.conflicts), u(ss.restarts), u(ss.blocked_restarts),
                u(ss.rephases), u(ss.db_reductions));
    std::printf("# stats: learnt tiers core=%llu tier2=%llu local=%llu"
                " (of %llu learnt)\n",
                u(ss.core_learnts), u(ss.tier2_learnts), u(ss.local_learnts),
                u(ss.learnt));
    std::printf("# stats: inprocess rounds=%llu subsumed=%llu"
                " strengthened=%llu vivified=%llu lits_removed=%llu\n",
                u(ss.inprocess_rounds), u(ss.subsumed_clauses),
                u(ss.strengthened_clauses), u(ss.vivified_clauses),
                u(ss.removed_lits));
    std::printf("# stats: preprocess eliminated=%llu substituted=%llu"
                " failed_lits=%llu hyper_binaries=%llu"
                " transitive_reductions=%llu\n",
                u(ss.eliminated_vars), u(ss.substituted_lits),
                u(ss.failed_literals), u(ss.hyper_binaries),
                u(ss.transitive_reductions));
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::printf("# interrupted: partial report above (unfinished POs are"
                " circuit_deadline)\n");
    return 130;
  }
  return 0;
}

core::SynthesisOptions synthesis_options(const CliOptions& cli,
                                         core::DecCache* cache) {
  core::SynthesisOptions opts;
  opts.engine = cli.engine;
  opts.pick_best_op = true;
  opts.cache = cache;
  opts.use_dont_cares = cli.use_dc;
  opts.per_node.optimum.call_timeout_s = cli.qbf_timeout_s;
  opts.per_node.sat = cli.sat;
  opts.per_node.window = cli.window;  // resynth reads per_node.window
  return opts;
}

void print_dc_synthesis_stats(const core::SynthesisStats& s) {
  std::fprintf(stderr, "# dc: care_nodes=%d care_constants=%d\n", s.dc_nodes,
               s.dc_constants);
}

void print_cache_stats(const core::DecCacheStats& c) {
  std::fprintf(stderr,
               "# cache: lookups=%llu npn_hits=%llu sig_hits=%llu"
               " misses=%llu hit_rate=%.1f%%\n",
               static_cast<unsigned long long>(c.lookups),
               static_cast<unsigned long long>(c.npn_hits),
               static_cast<unsigned long long>(c.sig_hits),
               static_cast<unsigned long long>(c.misses), 100.0 * c.hit_rate());
  std::fprintf(stderr,
               "# cache: insertions=%llu sat_confirms=%llu sat_refutes=%llu\n",
               static_cast<unsigned long long>(c.insertions),
               static_cast<unsigned long long>(c.sat_confirms),
               static_cast<unsigned long long>(c.sat_refutes));
}

core::CircuitResynthResult run_resynth(const CliOptions& cli,
                                       const io::Network& net,
                                       const aig::Aig& circuit, bool verify) {
  ResourceGovernor governor = make_governor(cli);
  ResourceGovernor* gov = has_governor(cli) ? &governor : nullptr;
  MemTracker cache_mem(gov);
  core::DecCache cache;
  core::SynthesisOptions opts =
      synthesis_options(cli, cli.use_cache ? &cache : nullptr);
  if (gov != nullptr && opts.cache != nullptr) {
    // The shared cache charges the run-level account directly: its
    // entries are shared across cones and outlive any one of them.
    opts.cache->set_mem_tracker(&cache_mem);
  }
  const core::ParallelDriverOptions par = driver_options(cli, gov);
  return core::run_circuit_resynth(circuit, net.name, opts, cli.timeout_s, par,
                                   verify);
}

/// `step decompose --recursive`: full per-PO decomposition trees.
int cmd_decompose_recursive(const CliOptions& cli, const io::Network& net,
                            const aig::Aig& circuit) {
  const core::CircuitResynthResult r =
      run_resynth(cli, net, circuit, cli.verify);
  std::printf("%-6s %8s %6s %7s %7s %7s %9s\n", "po", "support", "gates",
              "leaves", "depth0", "depth1", "cpu(s)");
  for (const core::PoResynthOutcome& po : r.pos) {
    std::printf("%-6d %8d %6d %7d %7d %7d %9.3f\n", po.po_index, po.support,
                po.tree.gates, po.tree.cone_leaves, po.depth_before,
                po.depth_after, po.cpu_s);
  }
  std::printf("# %s recursive: %d splits, %d leaves (%d atomic),"
              " %d cache hits; ANDs %u -> %u, depth %d -> %d, %.2f s\n",
              core::to_string(cli.engine), r.stats.decompositions,
              r.stats.leaves, r.stats.undecomposable, r.stats.cache_hits,
              r.stats.ands_before, r.stats.ands_after, r.stats.depth_before,
              r.stats.depth_after, r.total_cpu_s);
  if (cli.verify) {
    std::printf("# verify: %s\n",
                r.all_verified ? "all POs SAT-proven equivalent"
                               : "MISMATCH — a PO failed the miter check");
  }
  if (cli.print_stats) {
    std::printf("# outcomes: %s\n", r.outcome_counts().to_string().c_str());
  }
  if (cli.dc_stats) print_dc_synthesis_stats(r.stats);
  if (cli.cache_stats) print_cache_stats(r.cache);
  if (g_interrupted.load(std::memory_order_relaxed)) return 130;
  return cli.verify && !r.all_verified ? 1 : 0;
}

int cmd_resynth(const CliOptions& cli, const io::Network& net,
                const aig::Aig& circuit) {
  const core::CircuitResynthResult r =
      run_resynth(cli, net, circuit, cli.verify);
  std::fprintf(stderr,
               "# resynth: %d decompositions, %d leaves (%d atomic),"
               " %d cache hits; ANDs %u -> %u, depth %d -> %d\n",
               r.stats.decompositions, r.stats.leaves, r.stats.undecomposable,
               r.stats.cache_hits, r.stats.ands_before, r.stats.ands_after,
               r.stats.depth_before, r.stats.depth_after);
  if (cli.verify) {
    std::fprintf(stderr, "# verify: %s\n",
                 r.all_verified ? "all POs SAT-proven equivalent"
                                : "MISMATCH — a PO failed the miter check");
  }
  if (cli.print_stats) {
    std::fprintf(stderr, "# outcomes: %s\n",
                 r.outcome_counts().to_string().c_str());
  }
  if (cli.dc_stats) print_dc_synthesis_stats(r.stats);
  if (cli.cache_stats) print_cache_stats(r.cache);
  const std::string text = io::write_blif(r.network, "resynth");
  if (cli.output.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    io::write_blif_file(r.network, cli.output, "resynth");
    std::fprintf(stderr, "# wrote %s\n", cli.output.c_str());
  }
  if (g_interrupted.load(std::memory_order_relaxed)) return 130;
  return cli.verify && !r.all_verified ? 1 : 0;
}

// ----------------------------------------------------------------- lint

/// `step lint <file...> [--json] [-o out]`: runs the static artifact
/// analyzer over each file. Text mode prints one line per finding plus a
/// per-file summary; --json emits a JSON array of per-file reports. Exits
/// 0 when no error-severity finding exists anywhere, 1 otherwise;
/// unreadable files throw io::IoError (exit 3) like every other command.
int cmd_lint(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--json") {
      json = true;
    } else if (flag == "-o") {
      if (i + 1 >= argc) usage();
      out_path = argv[++i];
    } else if (!flag.empty() && flag[0] == '-') {
      std::fprintf(stderr, "step lint: unknown option '%s'\n", flag.c_str());
      usage();
    } else {
      files.push_back(flag);
    }
  }
  if (files.empty()) usage();

  std::string out;
  bool any_error = false;
  if (json) out += "[";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const analysis::LintReport report = analysis::lint_file(files[i]);
    any_error = any_error || !report.ok();
    if (json) {
      out += i == 0 ? "\n" : ",\n";
      out += analysis::to_json(report);
      if (!out.empty() && out.back() == '\n') out.pop_back();
    } else {
      for (const analysis::Finding& f : report.findings) {
        out += report.path + ": " + analysis::to_string(f.severity) + " [" +
               f.code + "] " + f.object;
        if (f.line > 0) out += " (line " + std::to_string(f.line) + ")";
        out += ": " + f.message + "\n";
      }
      out += report.path + ": " + std::to_string(report.errors()) +
             " error(s), " + std::to_string(report.warnings()) +
             " warning(s), " + std::to_string(report.infos()) + " info(s)\n";
    }
  }
  if (json) out += "\n]\n";

  if (out_path.empty()) {
    std::fputs(out.c_str(), stdout);
  } else {
    std::ofstream f(out_path, std::ios::binary);
    f << out;
    if (!f.good()) {
      throw io::IoError("cannot write lint report to '" + out_path + "'",
                        out_path);
    }
  }
  return any_error ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) try {
  // `lint` takes a file list and its own tiny flag set, so it dispatches
  // before the decomposition-option parser (which assumes one input and
  // would reject --json). `step lint --help` still reaches usage(0) via
  // the scan in parse_args.
  if (argc >= 2 && std::strcmp(argv[1], "lint") == 0) {
    bool help = false;
    for (int i = 2; i < argc; ++i) {
      help = help || std::strcmp(argv[i], "--help") == 0 ||
             std::strcmp(argv[i], "-h") == 0;
    }
    if (help) usage(0);
    return cmd_lint(argc, argv);
  }
  const CliOptions cli = parse_args(argc, argv);
  // Graceful SIGINT: the handler only sets a flag the drivers poll, so an
  // interrupted run flushes its partial report (unfinished POs typed as
  // circuit_deadline) and exits 130 instead of dying mid-write.
  std::signal(SIGINT, handle_sigint);

  // Injected reader failure: with the explicit "i" fault kind enabled the
  // CLI's read deterministically fails like an unreadable file would —
  // exercising the typed io_error path end to end.
  if (cli.faults && cli.faults->enabled() && cli.faults->io) {
    throw io::IoError("injected I/O fault (fault plan enables kind 'i')",
                      cli.input);
  }
  // Input dispatch by extension: AIGER (.aag ASCII, .aig binary streamed)
  // arrives as an already-combinational AIG (latches cut by the reader);
  // everything else goes through the BLIF elaborator.
  io::Network net;
  aig::Aig circuit;
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return cli.input.size() >= n &&
           cli.input.compare(cli.input.size() - n, n, suffix) == 0;
  };
  if (ends_with(".aag") || ends_with(".aig")) {
    circuit = io::read_aiger_file(cli.input);
    const std::size_t slash = cli.input.find_last_of('/');
    net.name = slash == std::string::npos ? cli.input
                                          : cli.input.substr(slash + 1);
    for (std::uint32_t i = 0; i < circuit.num_inputs(); ++i) {
      net.inputs.push_back(circuit.input_name(i));
    }
    for (std::uint32_t o = 0; o < circuit.num_outputs(); ++o) {
      net.outputs.push_back(circuit.output_name(o));
    }
  } else {
    net = io::read_blif_file(cli.input);
    circuit = io::to_combinational(net);
  }

  if (cli.command == "stats") return cmd_stats(net, circuit);
  if (cli.command == "decompose") {
    return cli.recursive ? cmd_decompose_recursive(cli, net, circuit)
                         : cmd_decompose(cli, net, circuit);
  }
  if (cli.command == "resynth") return cmd_resynth(cli, net, circuit);
  usage();
} catch (const step::io::IoError& e) {
  std::fprintf(stderr, "step: io error: %s\n", e.what());
  return 3;
} catch (const std::exception& e) {
  std::fprintf(stderr, "step: %s\n", e.what());
  return 1;
}
