#pragma once

#include <vector>

#include "aig/aig.h"

namespace step::aig {

/// Copies the cone of `root` from `src` into `dst`, mapping src input i to
/// the dst literal `input_map[i]` (which may be a constant — this is how
/// cofactoring works — or any dst literal — this is how composition works).
/// Inputs outside the cone need no mapping (kLitInvalid allowed).
/// Structural hashing in dst folds constants, so cofactored cones shrink.
Lit copy_cone(const Aig& src, Lit root, Aig& dst,
              const std::vector<Lit>& input_map);

/// Copies the cone of `root` into `dst`, creating one fresh dst input per
/// src input the cone actually depends on (in src input order). Appends
/// created input literals to `created_inputs` aligned with `used_inputs`,
/// which receives the src input indices.
Lit extract_cone(const Aig& src, Lit root, Aig& dst,
                 std::vector<std::uint32_t>& used_inputs,
                 std::vector<Lit>& created_inputs);

/// Builds in `dst` the XOR (miter) of two functions of the *same* dst
/// inputs: `a` and `b` are dst literals. SAT(miter) iff a != b somewhere.
inline Lit miter(Aig& dst, Lit a, Lit b) { return dst.lxor(a, b); }

/// Cofactor of `root` w.r.t. a partial input assignment: `assignment[i]`
/// is 0 (force false), 1 (force true) or -1 (keep input i free).
Lit cofactor(const Aig& src, Lit root, Aig& dst,
             const std::vector<int>& assignment,
             const std::vector<Lit>& free_input_map);

/// Builds the function of a packed truth table (bit r = value on row r,
/// row bit j = value of inputs[j]) into `dst` by Shannon expansion on the
/// highest variable; strashing folds shared cofactors. inputs.size() <= 20.
/// Used by the don't-care windows (care sets are enumerated as tables) and
/// by tests that need arbitrary functions as AIGs.
Lit build_from_tt(Aig& dst, const std::vector<std::uint64_t>& tt,
                  const std::vector<Lit>& inputs);

/// Structural dead-node elimination ("sweep"): returns a copy of `src`
/// holding only the ANDs reachable from its outputs. All inputs survive
/// in order (the interface is part of the circuit's identity, used or
/// not), outputs keep order, names and polarities, and live ANDs are
/// copied verbatim without re-strashing — the result is functionally
/// identical and lint-clean of AIG-DANGLING findings. Speculative
/// construction (mux/xor expansions partially folded by strash) is the
/// usual source of the dead nodes this removes.
Aig sweep_dead(const Aig& src);

}  // namespace step::aig
