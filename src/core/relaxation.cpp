#include "core/relaxation.h"

#include "aig/ops.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"

namespace step::core {

Cone extract_po_cone(const aig::Aig& circuit, std::uint32_t po,
                     std::vector<std::uint32_t>* orig_inputs) {
  Cone cone;
  std::vector<std::uint32_t> used;
  std::vector<aig::Lit> created;
  cone.root =
      aig::extract_cone(circuit, circuit.output(po), cone.aig, used, created);
  if (orig_inputs != nullptr) *orig_inputs = used;
  return cone;
}

RelaxationMatrix build_relaxation_matrix(const Cone& cone, GateOp op,
                                         const CareSet* care) {
  RelaxationMatrix m;
  m.op = op;
  m.n = cone.n();
  if (op == GateOp::kXor) care = nullptr;  // XOR keeps exact semantics
  if (care_is_trivial(care)) care = nullptr;
  if (care != nullptr) {
    STEP_CHECK(static_cast<int>(care->aig.num_inputs()) == m.n);
    m.care_constrained = true;
  }
  aig::Aig& a = m.aig;

  auto make_inputs = [&](const char* prefix, std::vector<std::uint32_t>& idx,
                         std::vector<aig::Lit>& lits) {
    for (int i = 0; i < m.n; ++i) {
      const aig::Lit l = a.add_input(std::string(prefix) + std::to_string(i));
      idx.push_back(a.num_inputs() - 1);
      lits.push_back(l);
    }
  };

  std::vector<aig::Lit> lx, lxp, lxpp, lxppp, lalpha, lbeta;
  make_inputs("x", m.x, lx);
  make_inputs("xp", m.xp, lxp);
  make_inputs("xpp", m.xpp, lxpp);
  if (op == GateOp::kXor) make_inputs("xppp", m.xppp, lxppp);
  make_inputs("alpha", m.alpha, lalpha);
  make_inputs("beta", m.beta, lbeta);

  // Instantiated copies of the cone.
  const aig::Lit f0 = aig::copy_cone(cone.aig, cone.root, a, lx);
  const aig::Lit f1 = aig::copy_cone(cone.aig, cone.root, a, lxp);
  const aig::Lit f2 = aig::copy_cone(cone.aig, cone.root, a, lxpp);

  std::vector<aig::Lit> conj;
  switch (op) {
    case GateOp::kOr:
      conj = {f0, aig::lnot(f1), aig::lnot(f2)};
      break;
    case GateOp::kAnd:
      // AND bi-decomposition is the OR bi-decomposition of ¬f.
      conj = {aig::lnot(f0), f1, f2};
      break;
    case GateOp::kXor: {
      const aig::Lit f3 = aig::copy_cone(cone.aig, cone.root, a, lxppp);
      conj = {a.lxor(a.lxor(f0, f1), a.lxor(f2, f3))};
      break;
    }
  }

  // Don't-care windows: every copy must be a care minterm, so invalidity
  // witnesses (and CEGAR countermodels) are confined to the care set.
  if (care != nullptr) {
    conj.push_back(aig::copy_cone(care->aig, care->root, a, lx));
    conj.push_back(aig::copy_cone(care->aig, care->root, a, lxp));
    conj.push_back(aig::copy_cone(care->aig, care->root, a, lxpp));
  }

  // Relaxable equivalence constraints.
  for (int i = 0; i < m.n; ++i) {
    conj.push_back(a.lor(a.lxnor(lx[i], lxp[i]), lalpha[i]));
    conj.push_back(a.lor(a.lxnor(lx[i], lxpp[i]), lbeta[i]));
    if (op == GateOp::kXor) {
      conj.push_back(a.lor(a.lxnor(lxppp[i], lxp[i]), lbeta[i]));
      conj.push_back(a.lor(a.lxnor(lxppp[i], lxpp[i]), lalpha[i]));
    }
  }
  m.phi = a.land_many(conj);
  a.add_output(m.phi, "phi");
  return m;
}

RelaxationSolver::RelaxationSolver(const RelaxationMatrix& m,
                                   const sat::SolverOptions& sat_opts)
    : m_(m), solver_(sat_opts) {
  std::vector<sat::Lit> input_sat(m_.aig.num_inputs(), sat::kLitUndef);
  auto mk = [&](const std::vector<std::uint32_t>& idx,
                std::vector<sat::Var>* save) {
    for (std::uint32_t i : idx) {
      const sat::Var v = solver_.new_var();
      input_sat[i] = sat::mk_lit(v);
      if (save != nullptr) save->push_back(v);
    }
  };
  mk(m_.x, nullptr);
  mk(m_.xp, nullptr);
  mk(m_.xpp, nullptr);
  mk(m_.xppp, nullptr);
  mk(m_.alpha, &alpha_vars_);
  mk(m_.beta, &beta_vars_);
  // alpha/beta control variables are assumed per-partition on every solve;
  // preprocessing must never eliminate or substitute them.
  for (sat::Var v : alpha_vars_) solver_.set_frozen(v);
  for (sat::Var v : beta_vars_) solver_.set_frozen(v);

  cnf::SolverSink sink(solver_);
  cnf::encode_cone_assert(m_.aig, m_.phi, input_sat, sink, /*value=*/true);
}

sat::LitVec RelaxationSolver::assumptions_for(const Partition& p) const {
  STEP_CHECK(p.size() == m_.n);
  sat::LitVec assumptions;
  assumptions.reserve(2 * m_.n);
  for (int i = 0; i < m_.n; ++i) {
    assumptions.push_back(
        sat::mk_lit(alpha_vars_[i], /*sign=*/p.cls[i] != VarClass::kA));
    assumptions.push_back(
        sat::mk_lit(beta_vars_[i], /*sign=*/p.cls[i] != VarClass::kB));
  }
  return assumptions;
}

bool RelaxationSolver::is_valid(const Partition& p, const Deadline* deadline,
                                sat::Result* status) {
  const sat::LitVec assumptions = assumptions_for(p);
  ++sat_calls_;
  const sat::Result r = solver_.solve_limited(assumptions, -1, deadline);
  if (status != nullptr) *status = r;
  return r == sat::Result::kUnsat;
}

}  // namespace step::core
