#include "common/race.h"

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace step {

void RaceScheduler::run_all(std::vector<std::function<void()>>& entries) {
  if (entries.empty()) return;

  // Per-call latch: races from different PO workers interleave on the
  // helper pool, so wait_idle() (pool-global) would over-wait.
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;
  } latch;
  latch.pending = entries.size() - 1;

  for (std::size_t i = 1; i < entries.size(); ++i) {
    pool_.submit([&latch, entry = std::move(entries[i])] {
      entry();
      std::lock_guard<std::mutex> lk(latch.mu);
      if (--latch.pending == 0) latch.cv.notify_all();
    });
  }
  entries[0]();

  std::unique_lock<std::mutex> lk(latch.mu);
  latch.cv.wait(lk, [&latch] { return latch.pending == 0; });
}

}  // namespace step
