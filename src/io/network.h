#pragma once

#include <string>
#include <vector>

#include "aig/aig.h"

namespace step::io {

/// A logic node as read from BLIF: a single-output SOP (.names block).
/// Each cube is a string over {'0','1','-'} with one position per fanin;
/// `out_value` is '1' for an ON-set SOP and '0' for an OFF-set SOP.
struct NetNode {
  std::string name;
  std::vector<std::string> fanins;
  std::vector<std::string> cubes;
  char out_value = '1';
};

/// A latch (.latch block). Only the connectivity matters to this library:
/// the paper converts sequential circuits to combinational form with ABC's
/// `comb`, which exposes latch outputs as inputs and latch inputs as outputs.
struct Latch {
  std::string input;   ///< next-state function net
  std::string output;  ///< current-state net
  int init_value = 2;  ///< 0, 1, 2 (= don't care), 3 (= unknown)
};

/// Named netlist corresponding to one BLIF .model.
class Network {
 public:
  std::string name;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<NetNode> nodes;
  std::vector<Latch> latches;

  bool is_combinational() const { return latches.empty(); }

  /// Elaborates to an AIG. When `comb` is true, latches are cut: each latch
  /// output becomes a primary input and each latch input (next-state
  /// function) becomes a primary output — the ABC `comb` treatment the
  /// paper applies to the sequential ISCAS'89/ITC'99 circuits.
  /// Throws std::runtime_error on undriven nets or combinational cycles.
  aig::Aig to_aig(bool comb = true) const;
};

}  // namespace step::io
