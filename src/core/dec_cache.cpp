#include "core/dec_cache.h"

#include <algorithm>

#include "aig/simulate.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "sat/solver.h"

namespace step::core {

namespace {

std::vector<std::uint32_t> identity_support(int n) {
  std::vector<std::uint32_t> s(n);
  for (int i = 0; i < n; ++i) s[i] = static_cast<std::uint32_t>(i);
  return s;
}

/// Enumerates input correspondences between two cones with equal
/// per-input signature multisets: rank both supports by (signature,
/// position) and map rank to rank; inputs with *equal* signatures form
/// tie classes (often genuinely symmetric, sometimes just beyond the
/// refinement's resolving power), and the query-side ordering of each
/// class is advanced odometer-style through its permutations, up to
/// `budget` candidates. Calls fn(perm) — perm[e] = query position for
/// entry position e — until it returns true (hit) or the budget/space is
/// exhausted.
template <typename Fn>
bool for_each_signature_permutation(const std::vector<std::uint64_t>& entry,
                                    const std::vector<std::uint64_t>& query,
                                    int budget, Fn fn) {
  const int n = static_cast<int>(entry.size());
  auto ranked = [n](const std::vector<std::uint64_t>& sigs) {
    std::vector<int> order(n);
    for (int i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return sigs[a] != sigs[b] ? sigs[a] < sigs[b] : a < b;
    });
    return order;
  };
  const std::vector<int> eo = ranked(entry), qo = ranked(query);

  // Tie classes as rank ranges [begin, end) of equal signature.
  std::vector<std::pair<int, int>> classes;
  for (int b = 0; b < n;) {
    int e = b + 1;
    while (e < n && query[qo[e]] == query[qo[b]]) ++e;
    if (e - b > 1) classes.push_back({b, e});
    b = e;
  }

  std::vector<int> qcur = qo;
  std::vector<int> perm(n);
  for (int tried = 0; tried < budget; ++tried) {
    for (int r = 0; r < n; ++r) perm[eo[r]] = qcur[r];
    if (fn(perm)) return true;
    bool advanced = false;
    for (const auto& [b, e] : classes) {
      if (std::next_permutation(qcur.begin() + b, qcur.begin() + e)) {
        advanced = true;
        break;
      }
      // Wrapped back to sorted order: carry into the next class.
    }
    if (!advanced) break;  // every class-consistent bijection tried
  }
  return false;
}

/// SAT miter under an input correspondence: entry position e and query
/// position perm[e] share one variable. UNSAT proves the stored tree
/// rewired through `perm` computes the query cone.
bool cones_equivalent_mapped(const Cone& entry, const Cone& query,
                             const std::vector<int>& perm) {
  sat::Solver solver;
  std::vector<sat::Lit> entry_vars(entry.n());
  for (auto& l : entry_vars) l = sat::mk_lit(solver.new_var());
  std::vector<sat::Lit> query_vars(query.n());
  for (int e = 0; e < entry.n(); ++e) query_vars[perm[e]] = entry_vars[e];

  cnf::SolverSink sink(solver);
  const sat::Lit le = cnf::encode_cone(entry.aig, entry.root, entry_vars, sink);
  const sat::Lit lq = cnf::encode_cone(query.aig, query.root, query_vars, sink);
  sink.add_binary(le, lq);
  sink.add_binary(~le, ~lq);
  return solver.solve() == sat::Result::kUnsat;
}

}  // namespace

DecCache::DecCache(DecCacheOptions opts) : opts_(opts) {
  opts_.npn_max_support = std::min(opts_.npn_max_support, kNpnMaxSupport);
  opts_.signature_words = std::max(opts_.signature_words, 1);
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<std::uint64_t> DecCache::input_signatures(const Cone& cone) const {
  // Two refinement rounds of stimuli that treat "the other inputs"
  // symmetrically, so the signature of input i is invariant under any
  // permutation of the support (the old raw-order stimuli made
  // NPN-equivalent wide cones never collide, while permuted lookups of
  // the same cone dodged their own entry). Round 0 probes each input's
  // cofactors along the diagonal of the other inputs; round 1 re-probes
  // with each other input driven by a hash of its round-0 signature —
  // still permutation-invariant, but it separates inputs round 0 cannot.
  const int n = cone.n();
  std::vector<std::uint64_t> sigs(n, 0), prev(n, 0), words(n);
  for (int round = 0; round < 2; ++round) {
    prev = sigs;
    for (int i = 0; i < n; ++i) {
      std::uint64_t h =
          mix64(0x51900000ULL + static_cast<std::uint64_t>(round));
      for (int w = 0; w < opts_.signature_words; ++w) {
        Rng rng(opts_.signature_seed + 0x9177ULL * (w + 1) + round);
        const std::uint64_t diag = rng.next();
        for (int j = 0; j < n; ++j) {
          words[j] = round == 0 ? diag : diag ^ mix64(prev[j] + w);
        }
        words[i] = ~0ULL;
        const std::uint64_t pos =
            aig::simulate_cone(cone.aig, cone.root, words);
        words[i] = 0ULL;
        const std::uint64_t neg =
            aig::simulate_cone(cone.aig, cone.root, words);
        h = mix64(h ^ pos) + mix64(neg + 0x2545f491ULL * w);
      }
      sigs[i] = h;
    }
  }
  return sigs;
}

std::uint64_t DecCache::signature_of(
    const Cone& cone, const std::vector<std::uint64_t>& sigs) const {
  // Fold of the *sorted* per-input signatures: equal functions collide
  // regardless of input order; anything else almost never does, and a SAT
  // check under the candidate correspondence arbitrates when it does.
  std::vector<std::uint64_t> sorted(sigs);
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t h =
      0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(cone.n());
  for (const std::uint64_t s : sorted) h = mix64(h ^ s) + (h << 6) + (h >> 2);
  return h;
}

std::optional<DecCacheHit> DecCache::lookup(const Cone& cone,
                                            DecCacheKey* key) {
  const int n = cone.n();
  DecCacheKey k;
  k.n = n;
  k.exact = n <= opts_.npn_max_support;

  if (k.exact) {
    const TruthTable tt =
        aig::truth_table(cone.aig, cone.root, identity_support(n));
    NpnCanonical canon = npn_canonicalize(tt, n);
    k.canon_tt = canon.tt;
    k.canon_to_fn = canon.transform;
    if (key != nullptr) *key = k;

    MutexLock lock(mu_);
    ++stats_.lookups;
    const auto it = npn_map_.find(TtKey{n, k.canon_tt});
    if (it == npn_map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.npn_hits;
    return DecCacheHit{it->second.tree,
                       npn_compose(it->second.canon_to_fn, k.canon_to_fn)};
  }

  k.input_sigs = input_signatures(cone);
  k.signature = signature_of(cone, k.input_sigs);
  if (key != nullptr) *key = k;

  // Copy the collision candidates out so the SAT checks run unlocked.
  std::vector<SigEntry> candidates;
  {
    MutexLock lock(mu_);
    ++stats_.lookups;
    const auto it = sig_map_.find(k.signature);
    if (it != sig_map_.end()) candidates = it->second;
  }
  for (const SigEntry& e : candidates) {
    if (e.cone->n() != n) continue;
    // The bucket key folds sorted signatures, so candidates normally have
    // the same multiset; build the rank-to-rank input correspondence and
    // let SAT arbitrate (a refuted correspondence is a plain miss).
    {
      std::vector<std::uint64_t> a(e.input_sigs), b(k.input_sigs);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) continue;
    }
    // Screen each candidate bijection with bit-parallel simulation under
    // per-position random stimuli — cheap enough to walk deep into large
    // tie classes — and spend SAT only on simulation-consistent ones.
    constexpr int kSimBatches = 2;
    std::vector<std::vector<std::uint64_t>> stim(kSimBatches);
    std::vector<std::uint64_t> entry_out(kSimBatches);
    {
      Rng rng(opts_.signature_seed ^ 0xd15c0ULL);
      for (int b = 0; b < kSimBatches; ++b) {
        stim[b].resize(n);
        for (auto& w : stim[b]) w = rng.next();
        entry_out[b] = aig::simulate_cone(e.cone->aig, e.cone->root, stim[b]);
      }
    }
    std::vector<std::uint64_t> qwords(n);
    std::vector<int> confirmed;
    std::uint64_t refutes = 0;
    int sat_attempts = 0;
    for_each_signature_permutation(
        e.input_sigs, k.input_sigs, opts_.max_match_attempts,
        [&](const std::vector<int>& perm) {
          for (int b = 0; b < kSimBatches; ++b) {
            for (int p = 0; p < n; ++p) qwords[perm[p]] = stim[b][p];
            if (aig::simulate_cone(cone.aig, cone.root, qwords) !=
                entry_out[b]) {
              return false;  // refuted without a solver
            }
          }
          if (sat_attempts++ >= opts_.max_confirm_attempts) return true;
          if (cones_equivalent_mapped(*e.cone, cone, perm)) {
            confirmed = perm;
            return true;
          }
          ++refutes;
          return false;
        });
    MutexLock lock(mu_);
    stats_.sat_refutes += refutes;
    if (!confirmed.empty()) {
      ++stats_.sat_confirms;
      ++stats_.sig_hits;
      NpnVarMap map;
      map.var.assign(confirmed.begin(), confirmed.end());
      return DecCacheHit{e.tree, std::move(map)};
    }
  }
  MutexLock lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void DecCache::set_mem_tracker(MemTracker* tracker) {
  MutexLock lock(mu_);
  if (mem_tracker_ != nullptr && charged_bytes_ > 0) {
    mem_tracker_->release(charged_bytes_);
    charged_bytes_ = 0;
  }
  mem_tracker_ = tracker;
}

void DecCache::insert(const Cone& cone, const DecCacheKey& key, DecTree tree) {
  STEP_CHECK(key.n == cone.n());
  auto shared = std::make_shared<const DecTree>(std::move(tree));
  MutexLock lock(mu_);
  ++stats_.insertions;
  if (mem_tracker_ != nullptr) {
    // Entry-size estimate: the tree nodes plus the key material (exact
    // entries keep a truth table, semantic ones a whole cone AIG).
    std::size_t bytes = sizeof(DecTreeNode) * shared->nodes.size() + 128;
    if (key.exact) {
      bytes += key.canon_tt.size() * sizeof(std::uint64_t);
    } else {
      bytes += cone.aig.num_nodes() * 16 +
               key.input_sigs.size() * sizeof(std::uint64_t);
    }
    mem_tracker_->charge(bytes);
    charged_bytes_ += bytes;
  }
  if (key.exact) {
    // First insertion per NPN class wins; concurrent duplicates are
    // dropped (both trees are correct, keeping one is enough).
    npn_map_.emplace(TtKey{key.n, key.canon_tt},
                     NpnEntry{std::move(shared), key.canon_to_fn});
    return;
  }
  sig_map_[key.signature].push_back(SigEntry{
      std::make_shared<const Cone>(cone), std::move(shared), key.input_sigs});
}

DecCacheStats DecCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::size_t DecCache::size() const {
  MutexLock lock(mu_);
  std::size_t n = npn_map_.size();
  for (const auto& [sig, entries] : sig_map_) n += entries.size();
  return n;
}

void DecCache::clear() {
  MutexLock lock(mu_);
  npn_map_.clear();
  sig_map_.clear();
  stats_ = DecCacheStats{};
  if (mem_tracker_ != nullptr && charged_bytes_ > 0) {
    mem_tracker_->release(charged_bytes_);
    charged_bytes_ = 0;
  }
}

}  // namespace step::core
