#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sat/types.h"

namespace step::sat {

/// A CNF formula in clause-list form, as read from DIMACS input.
struct DimacsFormula {
  int num_vars = 0;
  std::vector<LitVec> clauses;
};

/// Parses DIMACS CNF text. Tolerates comment lines, a missing/inaccurate
/// header, and clauses spanning multiple lines. Throws std::runtime_error
/// on malformed input.
DimacsFormula parse_dimacs(std::string_view text);

/// Renders a formula back to DIMACS text (with a correct header).
std::string write_dimacs(const DimacsFormula& f);

}  // namespace step::sat
