#include "cnf/cardinality.h"

#include "common/check.h"

namespace step::cnf {

void at_least_one(ClauseSink& sink, std::span<const sat::Lit> lits) {
  STEP_CHECK(!lits.empty());
  sink.add_clause(lits);
}

void at_most_one_pairwise(ClauseSink& sink, std::span<const sat::Lit> lits) {
  for (std::size_t i = 0; i < lits.size(); ++i) {
    for (std::size_t j = i + 1; j < lits.size(); ++j) {
      sink.add_binary(~lits[i], ~lits[j]);
    }
  }
}

void at_most_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k) {
  const int n = static_cast<int>(lits.size());
  if (k < 0) {
    // Unsatisfiable bound: emit a contradiction.
    const sat::Var v = sink.new_var();
    sink.add_unit(sat::mk_lit(v));
    sink.add_unit(~sat::mk_lit(v));
    return;
  }
  if (k >= n) return;  // trivially satisfied
  if (k == 0) {
    for (sat::Lit l : lits) sink.add_unit(~l);
    return;
  }

  // Sinz sequential counter: s[i][j] = "at least j+1 of lits[0..i] true".
  // Register width k; overflow of the counter forbids the (k+1)-th literal.
  std::vector<std::vector<sat::Lit>> s(n);
  for (int i = 0; i < n - 1; ++i) {
    s[i].resize(k);
    for (int j = 0; j < k; ++j) s[i][j] = sat::mk_lit(sink.new_var());
  }
  // lits[0] -> s[0][0]
  sink.add_binary(~lits[0], s[0][0]);
  // ~s[0][j] for j >= 1
  for (int j = 1; j < k; ++j) sink.add_unit(~s[0][j]);
  for (int i = 1; i < n - 1; ++i) {
    // carry: s[i-1][j] -> s[i][j]
    for (int j = 0; j < k; ++j) sink.add_binary(~s[i - 1][j], s[i][j]);
    // increment: lits[i] & s[i-1][j-1] -> s[i][j]; base: lits[i] -> s[i][0]
    sink.add_binary(~lits[i], s[i][0]);
    for (int j = 1; j < k; ++j) {
      sink.add_ternary(~lits[i], ~s[i - 1][j - 1], s[i][j]);
    }
    // overflow: lits[i] & s[i-1][k-1] -> false
    sink.add_binary(~lits[i], ~s[i - 1][k - 1]);
  }
  if (n >= 2) sink.add_binary(~lits[n - 1], ~s[n - 2][k - 1]);
}

void at_least_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k) {
  if (k <= 0) return;
  const int n = static_cast<int>(lits.size());
  sat::LitVec neg(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) neg[i] = ~lits[i];
  at_most_k(sink, neg, n - k);
}

void diff_at_most_k(ClauseSink& sink, std::span<const sat::Lit> pos,
                    std::span<const sat::Lit> neg, int k) {
  sat::LitVec all(pos.begin(), pos.end());
  for (sat::Lit l : neg) all.push_back(~l);
  at_most_k(sink, all, k + static_cast<int>(neg.size()));
}

void diff_non_negative(ClauseSink& sink, std::span<const sat::Lit> pos,
                       std::span<const sat::Lit> neg) {
  // sum(neg) − sum(pos) <= 0
  diff_at_most_k(sink, neg, pos, 0);
}

IncrementalCounter::IncrementalCounter(ClauseSink& sink,
                                           std::span<const sat::Lit> lits) {
  never_ = sat::mk_lit(sink.new_var());
  sink.add_unit(~never_);
  sink.freeze(sat::var(never_));

  // Full-width sequential counter (Sinz-style, same prefix structure as
  // at_most_k but with register width n instead of k and no overflow
  // clauses): s[i][j] = "at least j+1 of lits[0..i] are true", encoded in
  // the forcing direction only. The outputs are the last register row —
  // assuming ¬o_{k+1} back-propagates ¬s[i][k] down the carry chain and
  // recovers exactly the arc-consistent pruning of the scratch encoding.
  const int n = static_cast<int>(lits.size());
  outputs_.resize(n);
  sat::LitVec prev, row;
  for (int i = 0; i < n; ++i) {
    row.resize(i + 1);
    for (int j = 0; j <= i; ++j) row[j] = sat::mk_lit(sink.new_var());
    // base: lits[i] -> s[i][0]
    sink.add_binary(~lits[i], row[0]);
    for (int j = 0; j < i; ++j) {
      // carry: s[i-1][j] -> s[i][j]
      sink.add_binary(~prev[j], row[j]);
      // increment: lits[i] & s[i-1][j] -> s[i][j+1]
      sink.add_ternary(~lits[i], ~prev[j], row[j + 1]);
    }
    prev = row;
  }
  for (int j = 0; j < n; ++j) outputs_[j] = prev[j];
  // The outputs are assumed only when a bound is later queried, so they
  // must survive preprocessing; the counted literals feed user-visible
  // models and may also be assumed by callers tightening bounds.
  for (sat::Lit o : outputs_) sink.freeze(sat::var(o));
  for (sat::Lit l : lits) sink.freeze(sat::var(l));
}

void IncrementalCounter::assume_at_most(int k, sat::LitVec& out) const {
  if (k >= size()) return;
  if (k < 0) {
    out.push_back(never_);
    return;
  }
  // Descending order: assumptions are asserted front-to-back, so the first
  // one found false — the one the final conflict is analyzed from — is the
  // *highest* output the clauses force, and the core then certifies the
  // strongest refuted bound rather than just the queried one.
  for (int j = size(); j > k; --j) out.push_back(~output(j));
}

}  // namespace step::cnf
