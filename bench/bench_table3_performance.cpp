// Reproduces Table III: "Performance data for OR bi-decomposition" —
// #Dec (functions decomposed) and CPU seconds per circuit for
// LJH, STEP-MG and STEP-{QD,QB,QDB} — and A/Bs the incremental optimum
// search (persistent CEGAR solver pair, assumption-activated bounds)
// against the scratch rebuild-per-query path on the QBF engines.
//
// `--json <path>` additionally writes the whole run machine-readably
// (per-circuit per-engine wall/calls/iterations/conflicts plus the
// incremental-vs-scratch comparison); CI emits BENCH_table3.json.
//
// `--sat-json <path>` runs the SAT-configuration A/B on top: the same
// optimum-search loop under the modern solver defaults (LBD tiers,
// inprocessing, rephasing; Luby restarts), the EMA-restart variant, and
// the legacy PR-3 configuration (Luby restarts, activity-only reduction,
// nothing else), plus a few micro SAT instances, written to
// BENCH_sat.json. CI fails when the modern configuration regresses the
// search-loop wall time by >10% against legacy measured in the same run.
// `--ab-only` skips the (slow) per-circuit table for exactly that use.

#include <array>
#include <cstdio>
#include <cstring>
#include <utility>

#include "bench_common.h"

namespace {

using namespace step;
using core::Engine;

struct EngineCell {
  core::CircuitRunResult run;
};

/// Micro SAT instances solved directly (no google-benchmark dependency so
/// the JSON is produced even where the library is absent), built from the
/// shared generators in bench_common.h.
struct MicroResult {
  const char* name;
  double wall_s = 0.0;
  std::uint64_t conflicts = 0;
  bool unsat = false;
};

MicroResult run_pigeonhole(const char* name, int holes,
                           const sat::SolverOptions& cfg) {
  MicroResult res{name};
  Timer t;
  sat::Solver s(cfg);
  bench::add_pigeonhole(s, holes);
  res.unsat = s.solve() == sat::Result::kUnsat;
  res.wall_s = t.elapsed_s();
  res.conflicts = s.stats().conflicts;
  return res;
}

MicroResult run_random3cnf(const char* name, int nv, std::uint64_t seed,
                           const sat::SolverOptions& cfg) {
  MicroResult res{name};
  Timer t;
  sat::Solver s(cfg);
  bench::add_random3cnf(s, nv, 4.2, seed);
  res.unsat = s.solve() == sat::Result::kUnsat;
  res.wall_s = t.elapsed_s();
  res.conflicts = s.stats().conflicts;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  const auto par = bench::parallel_from_env_or_args(argc, argv);
  const std::string json_path = bench::json_path_from_args(argc, argv);
  const std::string sat_json_path =
      bench::path_from_args(argc, argv, "--sat-json");
  const bool ab_only = bench::flag_from_args(argc, argv, "--ab-only");
  if (!json_path.empty() && ab_only) {
    std::fprintf(stderr, "--json is unavailable with --ab-only"
                         " (the per-circuit table is skipped)\n");
    return 2;
  }
  bench::print_preamble("Table III: performance data for OR bi-decomposition",
                        scale);
  std::printf("# threads per circuit: %d (-j N or STEP_BENCH_THREADS)\n",
              par.num_threads);

  const Engine engines[] = {Engine::kLjh, Engine::kMg, Engine::kQbfDisjoint,
                            Engine::kQbfBalanced, Engine::kQbfCombined};
  const Engine qbf_engines[] = {Engine::kQbfDisjoint, Engine::kQbfBalanced,
                                Engine::kQbfCombined};

  // cells[c][e]: full run result, kept for the JSON artifact.
  std::vector<std::vector<EngineCell>> cells(suite.size());
  double totals[5] = {};
  int dec_totals[5] = {};
  if (!ab_only) {
    std::printf("%-10s %-10s %5s %5s |", "Circuit", "(standin)", "#In", "#InM");
    for (Engine e : engines) {
      std::printf(" %8s %9s |", core::to_string(e), "CPU(s)");
    }
    std::printf("\n");

    for (std::size_t c = 0; c < suite.size(); ++c) {
      const benchgen::BenchCircuit& circ = suite[c];
      std::printf("%-10s %-10s %5u", circ.name.c_str(),
                  circ.standin_for.c_str(), circ.aig.num_inputs());
      bool first = true;
      for (int e = 0; e < 5; ++e) {
        core::CircuitRunResult r = core::run_circuit(
            circ.aig, circ.name,
            bench::engine_options(engines[e], core::GateOp::kOr, budgets),
            budgets.circuit_s, par);
        if (first) {
          std::printf(" %5d |", r.max_support());
          first = false;
        }
        std::printf(" %4d/%-3zu %9.2f |", r.num_decomposed(), r.pos.size(),
                    r.total_cpu_s);
        totals[e] += r.total_cpu_s;
        dec_totals[e] += r.num_decomposed();
        cells[c].push_back(EngineCell{std::move(r)});
      }
      std::printf("\n");
      std::fflush(stdout);
    }

    std::printf("%-33s", "TOTAL (#Dec / CPU s)");
    for (int e = 0; e < 5; ++e) {
      std::printf(" %4d %11.2f |", dec_totals[e], totals[e]);
    }
    std::printf("\n");
    std::printf(
        "# shape check (paper): #Dec(Q*) == #Dec(MG) >= #Dec(LJH);"
        " CPU: MG < QB < QD < QDB among STEP engines; LJH slowest on most\n"
        "# circuits (the paper, like us, has QDB overtake LJH on some rows,"
        " e.g. s38584.1)\n");
  }  // !ab_only

  // ---- engine-portfolio A/B: probe + race vs every fixed engine ----------
  // Same driver, same budgets; --portfolio picks (and possibly races) an
  // engine per cone instead of running the configured engine everywhere.
  // Two comparisons matter: #Dec against the best *fixed* engine (the
  // portfolio must not lose conclusions — MG anchors every race, so it
  // cannot), and CPU against the per-cone-best oracle (per PO, the cheapest
  // fixed engine's cpu — the unreachable ideal of always guessing right).
  // Conclusive answers must never contradict a fixed engine's; differing
  // timeouts are fine. CI gates on the recorded JSON.
  std::vector<core::CircuitRunResult> prt(suite.size());
  long prt_mismatches = 0;
  int prt_dec_total = 0, prt_best_fixed_dec = 0;
  double prt_cpu_total = 0.0, prt_oracle_cpu = 0.0;
  int prt_width = 0;
  if (!ab_only) {
    core::ParallelDriverOptions ppar = par;
    ppar.portfolio.enabled = true;
    ppar.portfolio.race_width = 3;
    prt_width = ppar.portfolio.race_width;
    std::printf("\n# engine-portfolio A/B (--portfolio -race-width %d,"
                " configured engine QDB):\n", prt_width);
    std::printf("%-10s %9s %9s %6s %8s %9s %10s\n", "circuit", "prtDec",
                "bestFix", "races", "cancels", "cpu(s)", "oracle(s)");
    for (std::size_t c = 0; c < suite.size(); ++c) {
      const benchgen::BenchCircuit& circ = suite[c];
      prt[c] = core::run_circuit(
          circ.aig, circ.name,
          bench::engine_options(Engine::kQbfCombined, core::GateOp::kOr,
                                budgets),
          budgets.circuit_s, ppar);
      int best_dec = 0;
      for (int e = 0; e < 5; ++e) {
        best_dec = std::max(best_dec, cells[c][e].run.num_decomposed());
      }
      double oracle = 0.0;
      for (std::size_t p = 0; p < prt[c].pos.size(); ++p) {
        double best = cells[c][0].run.pos[p].cpu_s;
        for (int e = 1; e < 5; ++e) {
          best = std::min(best, cells[c][e].run.pos[p].cpu_s);
        }
        oracle += best;
        const core::DecomposeStatus ps = prt[c].pos[p].status;
        for (int e = 0; e < 5; ++e) {
          const core::DecomposeStatus fs = cells[c][e].run.pos[p].status;
          const bool contradiction =
              (ps == core::DecomposeStatus::kDecomposed &&
               fs == core::DecomposeStatus::kNotDecomposable) ||
              (ps == core::DecomposeStatus::kNotDecomposable &&
               fs == core::DecomposeStatus::kDecomposed);
          if (contradiction) ++prt_mismatches;
        }
      }
      prt_dec_total += prt[c].num_decomposed();
      prt_best_fixed_dec += best_dec;
      prt_cpu_total += prt[c].total_cpu_s;
      prt_oracle_cpu += oracle;
      std::printf("%-10s %6d/%-2zu %6d/%-2zu %6d %8ld %9.3f %10.3f\n",
                  circ.name.c_str(), prt[c].num_decomposed(),
                  prt[c].pos.size(), best_dec, prt[c].pos.size(),
                  prt[c].num_raced(), prt[c].total_race_cancels(),
                  prt[c].total_cpu_s, oracle);
      std::fflush(stdout);
    }
    long pool_pub = 0, pool_imp = 0;
    for (const core::CircuitRunResult& r : prt) {
      pool_pub += r.total_pool_published();
      pool_imp += r.total_pool_imported();
    }
    std::printf("# portfolio totals: dec=%d (best fixed per circuit: %d),"
                " cpu=%.3f s (per-cone-best oracle: %.3f s),"
                " pool published=%ld imported=%ld,"
                " answer mismatches (must be 0): %ld\n",
                prt_dec_total, prt_best_fixed_dec, prt_cpu_total,
                prt_oracle_cpu, pool_pub, pool_imp, prt_mismatches);
  }  // !ab_only

  // ---- don't-care A/B: windowed-DC vs exact decomposability --------------
  // Same driver, same engine/op/budgets; the only difference is
  // use_dont_cares. Extraction + verification stay ON so every windowed
  // decomposition that counts has been SAT-verified against its window
  // before splicing. DC mode falls back to the exact cone per PO, so
  // #Dec(dc) >= #Dec(exact) is a hard invariant (CI gates on it); the
  // dc-window suite circuit makes the improvement strict.
  struct DcAb {
    core::CircuitRunResult exact, dc;
  };
  std::vector<DcAb> dc_ab(suite.size());
  int dc_total_exact = 0, dc_total_dc = 0;
  if (!ab_only) {
    std::printf("\n# don't-care A/B (STEP-MG, OR, extract+verify on):\n");
    std::printf("%-10s %9s %9s %8s %8s %10s %9s %9s\n", "circuit", "exactDec",
                "dcDec", "windows", "winDec", "sdc", "cpu0(s)", "cpu1(s)");
    for (std::size_t c = 0; c < suite.size(); ++c) {
      const benchgen::BenchCircuit& circ = suite[c];
      core::DecomposeOptions o = bench::engine_options(
          core::Engine::kMg, core::GateOp::kOr, budgets);
      o.extract = true;
      o.verify = true;
      dc_ab[c].exact =
          core::run_circuit(circ.aig, circ.name, o, budgets.circuit_s, par);
      o.use_dont_cares = true;
      dc_ab[c].dc =
          core::run_circuit(circ.aig, circ.name, o, budgets.circuit_s, par);
      const core::CircuitRunResult& ex = dc_ab[c].exact;
      const core::CircuitRunResult& dc = dc_ab[c].dc;
      dc_total_exact += ex.num_decomposed();
      dc_total_dc += dc.num_decomposed();
      std::printf("%-10s %6d/%-2zu %6d/%-2zu %8d %8d %10llu %9.3f %9.3f\n",
                  circ.name.c_str(), ex.num_decomposed(), ex.pos.size(),
                  dc.num_decomposed(), dc.pos.size(), dc.num_windows_built(),
                  dc.num_window_decomposed(),
                  static_cast<unsigned long long>(
                      dc.total_window_sdc_minterms()),
                  ex.total_cpu_s, dc.total_cpu_s);
      std::fflush(stdout);
    }
    std::printf("# dc totals: exact=%d dc=%d (dc >= exact must hold;"
                " strictly more on the dc-window circuit)\n",
                dc_total_exact, dc_total_dc);
  }

  // Shared search-loop workload of both A/Bs below: matrices and MG
  // bootstraps are prepared once, outside every timer.
  struct Workload {
    core::RelaxationMatrix matrix;
    std::optional<core::Partition> bootstrap;
  };
  std::vector<Workload> work;
  for (const benchgen::BenchCircuit& circ : suite) {
    for (std::uint32_t po = 0; po < circ.aig.num_outputs(); ++po) {
      const core::Cone cone = core::extract_po_cone(circ.aig, po);
      if (cone.n() < 2) continue;
      Workload w;
      w.matrix = core::build_relaxation_matrix(cone, core::GateOp::kOr);
      core::RelaxationSolver rs(w.matrix);
      core::MgDecomposer mg(rs);
      const core::PartitionSearchResult r = mg.find_partition();
      if (!r.found) continue;  // MG is exact on decomposability
      w.bootstrap = r.partition;
      work.push_back(std::move(w));
    }
  }
  std::printf("# workload: %zu decomposable OR cones, MG-bootstrapped\n",
              work.size());

  // ---- incremental vs scratch A/B on the optimum-search hot path --------
  // Isolates exactly the part the two architectures implement differently;
  // each mode runs the full bound-search schedule over every cone.
  // Counters are deterministic; wall time is the minimum of kRepeats runs.
  // Skipped under --ab-only: only the SAT-configuration A/B feeds the CI
  // gate, and these 18 extra search-loop passes would double its cost.
  struct AbResult {
    int found = 0;
    long qbf_calls = 0;
    long iterations = 0;
    std::uint64_t abs_conflicts = 0;
    std::uint64_t ver_conflicts = 0;
    double wall_s = 0.0;
    /// Per-cone (outcome, best_cost, proven_optimal) answers; counters are
    /// deterministic across repeats, so the first pass's answers stand.
    std::vector<std::array<int, 3>> answers;
  };
  constexpr int kRepeats = 3;
  AbResult ab[3][2];      // [engine][0=incremental, 1=scratch]
  long answer_mismatches = 0;  // across all engines
  if (!ab_only) {
    std::printf("\n# optimum-search architecture A/B (OR, whole suite,"
                " search loop only):\n");
    std::printf("%-10s %-12s %6s %9s %10s %11s %12s\n", "Engine", "mode",
                "found", "CPU(s)", "qbf_calls", "iterations", "conflicts");
    for (int e = 0; e < 3; ++e) {
      const core::QbfModel model = e == 0   ? core::QbfModel::kQD
                                   : e == 1 ? core::QbfModel::kQB
                                            : core::QbfModel::kQDB;
      for (int mode = 0; mode < 2; ++mode) {
        AbResult& res = ab[e][mode];
        for (int rep = 0; rep < kRepeats; ++rep) {
          AbResult pass;
          Timer t;
          for (const Workload& w : work) {
            core::QbfFinderOptions f;
            f.incremental = (mode == 0);
            core::OptimumOptions o;
            o.call_timeout_s = budgets.qbf_call_s;
            core::QbfPartitionFinder finder(w.matrix, f);
            core::OptimumSearch search(finder, model, o);
            const core::OptimumResult r = search.run(w.bootstrap);
            if (r.outcome == core::OptimumResult::Outcome::kFound) ++pass.found;
            pass.answers.push_back({static_cast<int>(r.outcome), r.best_cost,
                                    r.proven_optimal ? 1 : 0});
            pass.qbf_calls += finder.qbf_calls();
            pass.iterations += finder.total_iterations();
            pass.abs_conflicts += finder.abstraction_conflicts();
            pass.ver_conflicts += finder.verification_conflicts();
          }
          pass.wall_s = t.elapsed_s();
          if (rep == 0 || pass.wall_s < res.wall_s) res = std::move(pass);
        }
        std::printf("%-10s %-12s %6d %9.3f %10ld %11ld %12llu\n",
                    core::to_string(qbf_engines[e]),
                    mode == 0 ? "incremental" : "scratch", res.found,
                    res.wall_s, res.qbf_calls, res.iterations,
                    static_cast<unsigned long long>(res.abs_conflicts +
                                                    res.ver_conflicts));
        std::fflush(stdout);
      }
      // The real equivalence check: per cone, both architectures must report
      // the same outcome, optimum cost, and optimality proof.
      for (std::size_t i = 0; i < work.size(); ++i) {
        if (ab[e][0].answers[i] != ab[e][1].answers[i]) ++answer_mismatches;
      }
    }
    std::printf(
        "# expectation: per engine, incremental <= scratch on CPU and on"
        " conflicts;\n# answer mismatches (outcome/best_cost/proven_optimal,"
        " must be 0): %ld\n",
        answer_mismatches);
  }  // !ab_only

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    bench::JsonWriter j(f);
    j.begin_object();
    j.kv("bench", "table3_performance");
    j.kv("scale", bench::scale_name(scale));
    j.kv("threads", par.num_threads);
    j.kv("op", "or");
    j.key("circuits");
    j.begin_array();
    for (std::size_t c = 0; c < suite.size(); ++c) {
      j.begin_object();
      j.kv("name", suite[c].name);
      j.kv("standin_for", suite[c].standin_for);
      j.kv("inputs", static_cast<long long>(suite[c].aig.num_inputs()));
      j.kv("max_support", cells[c][0].run.max_support());
      j.key("engines");
      j.begin_array();
      for (int e = 0; e < 5; ++e) {
        j.begin_object();
        j.kv("engine", core::to_string(engines[e]));
        bench::json_run_stats(j, cells[c][e].run);
        j.end_object();
      }
      j.end_array();
      j.end_object();
    }
    j.end_array();
    j.key("totals");
    j.begin_array();
    for (int e = 0; e < 5; ++e) {
      j.begin_object();
      j.kv("engine", core::to_string(engines[e]));
      j.kv("decomposed", dec_totals[e]);
      j.kv("cpu_s", totals[e]);
      j.end_object();
    }
    j.end_array();
    j.key("dc_ab");
    j.begin_object();
    j.kv("engine", "STEP-MG");
    j.kv("op", "or");
    j.kv("measures", "run_circuit with extract+verify; dc = SDC windows +"
                     " care-set decomposition with exact fallback");
    j.kv("total_exact_decomposed", dc_total_exact);
    j.kv("total_dc_decomposed", dc_total_dc);
    j.key("circuits");
    j.begin_array();
    for (std::size_t c = 0; c < suite.size(); ++c) {
      const core::CircuitRunResult& ex = dc_ab[c].exact;
      const core::CircuitRunResult& dc = dc_ab[c].dc;
      j.begin_object();
      j.kv("name", suite[c].name);
      j.kv("pos", static_cast<long long>(ex.pos.size()));
      j.kv("exact_decomposed", ex.num_decomposed());
      j.kv("dc_decomposed", dc.num_decomposed());
      j.kv("windows_built", dc.num_windows_built());
      j.kv("window_decomposed", dc.num_window_decomposed());
      j.kv("sdc_minterms", dc.total_window_sdc_minterms());
      j.kv("care_sat_completions", dc.total_window_sat_completions());
      j.kv("cpu_exact_s", ex.total_cpu_s);
      j.kv("cpu_dc_s", dc.total_cpu_s);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.key("portfolio_ab");
    j.begin_object();
    j.kv("race_width", prt_width);
    j.kv("configured_engine", "STEP-QDB");
    j.kv("measures",
         "run_circuit with --portfolio vs the five fixed-engine runs above;"
         " oracle = per-PO minimum fixed-engine cpu; mismatches count"
         " conclusive contradictions only (timeout differences excluded)");
    j.kv("portfolio_decomposed", prt_dec_total);
    j.kv("best_fixed_decomposed", prt_best_fixed_dec);
    j.kv("portfolio_cpu_s", prt_cpu_total);
    j.kv("oracle_cpu_s", prt_oracle_cpu);
    j.kv("answer_mismatches", prt_mismatches);
    {
      long pub = 0, imp = 0, cancels = 0;
      int probed = 0, raced = 0;
      for (const core::CircuitRunResult& r : prt) {
        probed += r.num_probed();
        raced += r.num_raced();
        cancels += r.total_race_cancels();
        pub += r.total_pool_published();
        imp += r.total_pool_imported();
      }
      j.kv("probed", probed);
      j.kv("raced", raced);
      j.kv("race_cancels", cancels);
      j.kv("pool_published", pub);
      j.kv("pool_imported", imp);
    }
    j.key("circuits");
    j.begin_array();
    for (std::size_t c = 0; c < suite.size(); ++c) {
      j.begin_object();
      j.kv("name", suite[c].name);
      j.kv("pos", static_cast<long long>(prt[c].pos.size()));
      j.kv("decomposed", prt[c].num_decomposed());
      j.kv("raced", prt[c].num_raced());
      j.kv("cpu_s", prt[c].total_cpu_s);
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.key("incremental_vs_scratch");
    j.begin_object();
    j.kv("workload_cones", static_cast<long long>(work.size()));
    j.kv("repeats", kRepeats);
    j.kv("answer_mismatches", answer_mismatches);
    j.kv("measures", "optimum-search loop only (matrices + MG bootstrap"
                     " prepared outside the timer); wall = min over repeats");
    j.key("engines");
    j.begin_array();
    for (int e = 0; e < 3; ++e) {
      j.begin_object();
      j.kv("engine", core::to_string(qbf_engines[e]));
      for (int mode = 0; mode < 2; ++mode) {
        j.key(mode == 0 ? "incremental" : "scratch");
        j.begin_object();
        j.kv("found", ab[e][mode].found);
        j.kv("wall_s", ab[e][mode].wall_s);
        j.kv("qbf_calls", ab[e][mode].qbf_calls);
        j.kv("qbf_iterations", ab[e][mode].iterations);
        j.kv("abstraction_conflicts", ab[e][mode].abs_conflicts);
        j.kv("verification_conflicts", ab[e][mode].ver_conflicts);
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
    j.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path.c_str());
  }

  // ---- SAT-configuration A/B: modern defaults vs the legacy solver -------
  // Same prepared search-loop workload, incremental mode on both sides;
  // only the sat::SolverOptions differ. This is the committed
  // BENCH_sat.json evidence that the modernized CDCL hot path (binary
  // watch lists, LBD tiers, EMA restarts, inprocessing) pays off on the
  // workload the engines actually run.
  if (!sat_json_path.empty()) {
    struct SatAb {
      int found = 0;
      long qbf_calls = 0;
      long iterations = 0;
      double wall_s = 0.0;
      sat::Solver::Stats stats;
      std::vector<std::array<int, 3>> answers;
    };
    constexpr int kConfigs = 7;
    // More repeats than the architecture A/B: the configs are closer in
    // wall time, so the min-statistic needs more samples to stabilize.
    constexpr int kSatRepeats = 5;
    // "modern" is the full-preprocessing shipping default; the no_*
    // entries ablate one technique each; "no_preprocess" turns the whole
    // tier off (the conflict baseline the CI gate compares against);
    // "legacy" is the PR-3 solver.
    const sat::SolverOptions cfgs[kConfigs] = {
        bench::modern_sat_config(),        bench::modern_ema_sat_config(),
        bench::no_elim_sat_config(),       bench::no_scc_sat_config(),
        bench::no_probe_sat_config(),      bench::no_preprocess_sat_config(),
        bench::legacy_sat_config()};
    const char* cfg_names[kConfigs] = {"modern",   "modern_ema",
                                       "no_elim",  "no_scc",
                                       "no_probe", "no_preprocess",
                                       "legacy"};
    SatAb sab[kConfigs];
    std::printf("\n# SAT-configuration A/B (incremental optimum search,"
                " whole suite, all QBF engines):\n");
    std::printf("%-10s %6s %9s %10s %11s %12s %10s\n", "config", "found",
                "CPU(s)", "qbf_calls", "iterations", "conflicts", "restarts");
    // Repeats on the outside, configs on the inside: ambient machine load
    // drifts over the ~minute this A/B takes, and running one config's
    // repeats back-to-back would charge that drift entirely to whichever
    // config happened to run during the busy stretch.
    for (int rep = 0; rep < kSatRepeats; ++rep) {
      for (int cfg = 0; cfg < kConfigs; ++cfg) {
        SatAb& res = sab[cfg];
        SatAb pass;
        Timer t;
        for (const Workload& w : work) {
          for (int e = 0; e < 3; ++e) {
            const core::QbfModel model = e == 0   ? core::QbfModel::kQD
                                         : e == 1 ? core::QbfModel::kQB
                                                  : core::QbfModel::kQDB;
            core::QbfFinderOptions f;
            f.incremental = true;
            f.cegar.sat = cfgs[cfg];
            core::OptimumOptions o;
            o.call_timeout_s = budgets.qbf_call_s;
            core::QbfPartitionFinder finder(w.matrix, f);
            core::OptimumSearch search(finder, model, o);
            const core::OptimumResult r = search.run(w.bootstrap);
            if (r.outcome == core::OptimumResult::Outcome::kFound) {
              ++pass.found;
            }
            pass.answers.push_back({static_cast<int>(r.outcome), r.best_cost,
                                    r.proven_optimal ? 1 : 0});
            pass.qbf_calls += finder.qbf_calls();
            pass.iterations += finder.total_iterations();
            pass.stats += finder.solver_stats();
          }
        }
        pass.wall_s = t.elapsed_s();
        if (rep == 0 || pass.wall_s < res.wall_s) res = std::move(pass);
      }
    }
    for (int cfg = 0; cfg < kConfigs; ++cfg) {
      const SatAb& res = sab[cfg];
      std::printf("%-10s %6d %9.3f %10ld %11ld %12llu %10llu\n",
                  cfg_names[cfg], res.found, res.wall_s, res.qbf_calls,
                  res.iterations,
                  static_cast<unsigned long long>(res.stats.conflicts),
                  static_cast<unsigned long long>(res.stats.restarts));
      std::fflush(stdout);
    }
    // Outcomes depend on per-call wall timeouts, so a loaded machine can
    // turn one config's conclusion into kUnknown or strip its optimality
    // proof without any code defect. Only contradictions between *proven*
    // answers are hard mismatches (and gate CI); timing-explainable
    // differences are reported separately.
    long sat_ab_mismatches = 0;
    long sat_ab_timing_diffs = 0;
    constexpr int kFoundOutcome =
        static_cast<int>(core::OptimumResult::Outcome::kFound);
    constexpr int kNotDecOutcome =
        static_cast<int>(core::OptimumResult::Outcome::kNotDecomposable);
    for (int cfg = 1; cfg < kConfigs; ++cfg) {
      for (std::size_t i = 0; i < sab[0].answers.size(); ++i) {
        const std::array<int, 3>& a = sab[0].answers[i];
        const std::array<int, 3>& b = sab[cfg].answers[i];
        if (a == b) continue;
        const bool contradiction =
            (a[0] == kFoundOutcome && b[0] == kNotDecOutcome) ||
            (a[0] == kNotDecOutcome && b[0] == kFoundOutcome);
        const bool both_proven_differ =
            a[2] == 1 && b[2] == 1 && (a[0] != b[0] || a[1] != b[1]);
        if (contradiction || both_proven_differ) {
          ++sat_ab_mismatches;
        } else {
          ++sat_ab_timing_diffs;
        }
      }
    }
    std::printf("# answer mismatches between configs (must be 0): %ld;"
                " timing-explainable differences (timeouts): %ld\n",
                sat_ab_mismatches, sat_ab_timing_diffs);

    FILE* f = std::fopen(sat_json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", sat_json_path.c_str());
      return 1;
    }
    bench::JsonWriter j(f);
    j.begin_object();
    j.kv("bench", "sat_config_ab");
    j.kv("scale", bench::scale_name(scale));
    j.kv("workload_cones", static_cast<long long>(work.size()));
    j.kv("repeats", kSatRepeats);
    j.kv("answer_mismatches", sat_ab_mismatches);
    j.kv("timing_explainable_diffs", sat_ab_timing_diffs);
    j.kv("measures",
         "optimum-search loop only (matrices + MG bootstrap prepared"
         " outside the timer), QD+QB+QDB, incremental mode on both sides;"
         " wall = min over repeats");
    j.key("configs");
    j.begin_object();
    for (int cfg = 0; cfg < kConfigs; ++cfg) {
      const SatAb& res = sab[cfg];
      j.key(cfg_names[cfg]);
      j.begin_object();
      j.kv("found", res.found);
      j.kv("search_loop_wall_s", res.wall_s);
      j.kv("qbf_calls", res.qbf_calls);
      j.kv("qbf_iterations", res.iterations);
      j.kv("conflicts", res.stats.conflicts);
      j.kv("decisions", res.stats.decisions);
      j.kv("propagations", res.stats.propagations);
      j.kv("binary_propagations", res.stats.binary_propagations);
      j.kv("restarts", res.stats.restarts);
      j.kv("blocked_restarts", res.stats.blocked_restarts);
      j.kv("rephases", res.stats.rephases);
      j.kv("db_reductions", res.stats.db_reductions);
      j.kv("inprocess_rounds", res.stats.inprocess_rounds);
      j.kv("subsumed_clauses", res.stats.subsumed_clauses);
      j.kv("strengthened_clauses", res.stats.strengthened_clauses);
      j.kv("vivified_clauses", res.stats.vivified_clauses);
      j.kv("eliminated_vars", res.stats.eliminated_vars);
      j.kv("substituted_lits", res.stats.substituted_lits);
      j.kv("failed_literals", res.stats.failed_literals);
      j.kv("hyper_binaries", res.stats.hyper_binaries);
      j.kv("transitive_reductions", res.stats.transitive_reductions);
      // Solver-level outcome attribution (core/outcome.h taxonomy): how
      // many kUnknown stops each budget kind caused.
      j.kv("conflict_budget_stops", res.stats.conflict_budget_stops);
      j.kv("deadline_stops", res.stats.deadline_stops);
      j.end_object();
    }
    j.end_object();
    j.key("micro");
    j.begin_array();
    for (int cfg = 0; cfg < kConfigs; ++cfg) {
      const MicroResult micro[] = {
          run_pigeonhole("pigeonhole7", 7, cfgs[cfg]),
          run_pigeonhole("pigeonhole8", 8, cfgs[cfg]),
          run_random3cnf("random3cnf_n150", 150, 12345, cfgs[cfg]),
          run_random3cnf("random3cnf_n200", 200, 777, cfgs[cfg]),
      };
      for (const MicroResult& m : micro) {
        j.begin_object();
        j.kv("config", cfg_names[cfg]);
        j.kv("instance", m.name);
        j.kv("wall_s", m.wall_s);
        j.kv("conflicts", m.conflicts);
        j.kv("unsat", m.unsat);
        j.end_object();
      }
    }
    j.end_array();
    j.end_object();
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("# wrote %s\n", sat_json_path.c_str());
    if (sat_ab_mismatches != 0) return 1;
  }
  return 0;
}
