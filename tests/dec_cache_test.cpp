// Direct unit tests of the decomposition-tree store: DecTree emission,
// NPN-rewired cache hits (every variant of a stored function must replay
// to the variant's own truth table), the semantic signature + SAT
// confirmation path for wide cones, and the stats counters.

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "test_util.h"

namespace step::core {
namespace {

Cone cone_of(const aig::Aig& circ, std::uint32_t po) {
  return extract_po_cone(circ, po);
}

SynthesisOptions mg_opts(DecCache* cache) {
  SynthesisOptions o;
  o.engine = Engine::kMg;
  o.pick_best_op = true;
  o.cache = cache;
  return o;
}

TruthTable cone_tt(const Cone& c) {
  std::vector<std::uint32_t> support(c.n());
  for (int i = 0; i < c.n(); ++i) support[i] = i;
  return aig::truth_table(c.aig, c.root, support);
}

TruthTable tree_tt(const DecTree& t, int n) {
  aig::Aig scratch;
  std::vector<aig::Lit> inputs(n);
  for (int i = 0; i < n; ++i) inputs[i] = scratch.add_input();
  const aig::Lit root = emit_tree(t, scratch, inputs);
  Cone c;
  c.aig = std::move(scratch);
  c.root = root;
  return cone_tt(c);
}

TEST(DecTree, EmitReplaysLeafKinds) {
  DecTree t;
  t.n = 2;
  DecTreeNode lit_a;
  lit_a.kind = DecTreeNode::Kind::kLiteral;
  lit_a.input = 0;
  DecTreeNode lit_b;
  lit_b.kind = DecTreeNode::Kind::kLiteral;
  lit_b.input = 1;
  lit_b.negated = true;
  DecTreeNode gate;
  gate.kind = DecTreeNode::Kind::kGate;
  gate.op = GateOp::kAnd;
  gate.child0 = t.add(std::move(lit_a));
  gate.child1 = t.add(std::move(lit_b));
  t.root = t.add(std::move(gate));

  // f(a, b) = a & !b: rows 0..3 -> 0, 1, 0, 0.
  EXPECT_EQ(tree_tt(t, 2), TruthTable{0x2ULL});
  const DecTreeStats s = t.stats();
  EXPECT_EQ(s.gates, 1);
  EXPECT_EQ(s.literal_leaves, 2);
  EXPECT_EQ(s.depth, 1);
}

TEST(DecCache, NpnVariantsAreServedByOneStoredTree) {
  // Store a tree for one function, then query rewired variants: input
  // permutations, input negations, output negation. Every hit must
  // replay to the variant's own truth table.
  DecCache cache;
  SynthesisOptions opts = mg_opts(&cache);

  // f = (a & b) | c — decomposable, support 3.
  aig::Aig circ;
  const aig::Lit a = circ.add_input("a");
  const aig::Lit b = circ.add_input("b");
  const aig::Lit c = circ.add_input("c");
  circ.add_output(circ.lor(circ.land(a, b), c), "f");
  const Cone base = cone_of(circ, 0);
  (void)decompose_to_tree(base, opts);
  ASSERT_EQ(cache.stats().insertions, 1u);

  // Variants: permuted inputs, complemented inputs, complemented output.
  aig::Aig vc;
  const aig::Lit x = vc.add_input("x");
  const aig::Lit y = vc.add_input("y");
  const aig::Lit z = vc.add_input("z");
  vc.add_output(vc.lor(vc.land(z, y), x), "perm");          // c<->a swap
  vc.add_output(vc.lor(vc.land(aig::lnot(x), y), z), "neg"); // !a
  vc.add_output(aig::lnot(vc.lor(vc.land(x, y), z)), "out"); // !f
  for (std::uint32_t po = 0; po < 3; ++po) {
    const Cone variant = cone_of(vc, po);
    auto tree = decompose_to_tree(variant, opts);
    EXPECT_EQ(tree_tt(*tree, variant.n()), cone_tt(variant))
        << vc.output_name(po);
  }
  const DecCacheStats s = cache.stats();
  EXPECT_EQ(s.npn_hits, 3u);
  EXPECT_EQ(s.insertions, 1u);
}

TEST(DecCache, WideConesUseSignatureAndSatConfirmation) {
  // Support 8 > kNpnMaxSupport: identical cones must hit through the
  // signature path with exactly one SAT confirmation each.
  DecCache cache;
  SynthesisOptions opts = mg_opts(&cache);
  opts.reduce_supports = false;  // keep the wide support intact

  const aig::Aig p1 = benchgen::parity_tree(8);
  const aig::Aig p2 = benchgen::parity_tree(8);
  const Cone c1 = cone_of(p1, 0);
  auto t1 = decompose_to_tree(c1, opts);
  const DecCacheStats after_first = cache.stats();
  EXPECT_EQ(after_first.sig_hits, 0u);
  EXPECT_GT(after_first.insertions, 0u);

  const Cone c2 = cone_of(p2, 0);
  auto t2 = decompose_to_tree(c2, opts);
  const DecCacheStats s = cache.stats();
  EXPECT_GE(s.sig_hits, 1u);
  EXPECT_GE(s.sat_confirms, 1u);
  EXPECT_EQ(s.sat_refutes, 0u);
  EXPECT_TRUE(tree_equivalent(c2, *t2));
}

TEST(DecCache, PermutedWideConesHitThroughSignatureNormalization) {
  // Regression (PR 5): the wide-cone signature hashed simulation words in
  // raw cone-input order, so permuted variants of one function never
  // collided — permuted lookups dodged their own entry and inserted
  // duplicates. The normalized key (sorted per-input signature fold) must
  // bucket them together, and the rank correspondence must SAT-confirm.
  DecCache cache;
  SynthesisOptions opts = mg_opts(&cache);
  opts.reduce_supports = false;  // keep the wide support intact

  // 8 inputs with pairwise-distinct roles so the per-input signatures
  // induce an unambiguous correspondence:
  // f = x0 | (x1 & x2 & x3) | (x4 & !x5 & x6 & x7) with asymmetric mixing.
  auto build = [](const std::vector<int>& order) {
    aig::Aig a;
    std::vector<aig::Lit> x(8);
    for (int i = 0; i < 8; ++i) x[i] = a.add_input();
    auto v = [&](int pos) { return x[order[pos]]; };
    const aig::Lit t1 = a.land(a.land(v(1), v(2)), v(3));
    const aig::Lit t2 =
        a.land(a.land(v(4), aig::lnot(v(5))), a.land(v(6), v(7)));
    const aig::Lit t3 = a.land(v(2), aig::lnot(v(7)));
    a.add_output(a.lor(a.lor(v(0), t1), a.lor(t2, t3)), "f");
    return a;
  };

  const std::vector<int> identity{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<int> shuffled{5, 3, 7, 0, 2, 6, 1, 4};
  const aig::Aig base_circ = build(identity);
  const aig::Aig perm_circ = build(shuffled);

  const Cone base = cone_of(base_circ, 0);
  auto t1 = decompose_to_tree(base, opts);
  ASSERT_GT(cache.stats().insertions, 0u);
  EXPECT_TRUE(tree_equivalent(base, *t1));

  // The permuted cone must *hit* (SAT-confirmed), not miss, and the
  // rewired tree must replay to the permuted function.
  const Cone permuted = cone_of(perm_circ, 0);
  const DecCacheStats before = cache.stats();
  auto t2 = decompose_to_tree(permuted, opts);
  const DecCacheStats s = cache.stats();
  EXPECT_GT(s.sig_hits, before.sig_hits);
  EXPECT_GT(s.sat_confirms, before.sat_confirms);
  EXPECT_TRUE(tree_equivalent(permuted, *t2));
}

TEST(DecCache, LookupInsertRoundTripPreservesFunctions) {
  // Randomized: decompose random cones with a shared cache and verify
  // every produced tree against its cone — hits included.
  DecCache cache;
  SynthesisOptions opts = mg_opts(&cache);
  Rng rng(0xdecca);
  for (int iter = 0; iter < 40; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone =
        testutil::random_cone(n, rng.next_int(3, 18), rng.next());
    auto tree = decompose_to_tree(cone, opts);
    EXPECT_TRUE(tree_equivalent(cone, *tree)) << "iter " << iter;
  }
  const DecCacheStats s = cache.stats();
  EXPECT_EQ(s.lookups, s.hits() + s.misses);
  EXPECT_GT(s.hits(), 0u);  // 40 small random cones always repeat classes
}

TEST(DecCache, ClearResetsStateAndStats) {
  DecCache cache;
  SynthesisOptions opts = mg_opts(&cache);
  const aig::Aig circ = benchgen::random_sop(2, 2, 1, 3, 3, 0xc1ea);
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    (void)decompose_to_tree(cone_of(circ, po), opts);
  }
  EXPECT_GT(cache.size(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().lookups, 0u);
}

}  // namespace
}  // namespace step::core
