#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "io/aiger.h"
#include "io/pla_reader.h"

namespace step::io {
namespace {

// ---------- PLA ------------------------------------------------------------------

TEST(PlaReader, ParsesTwoOutputPla) {
  const Network net = parse_pla(
      ".i 3\n.o 2\n.ilb a b c\n.ob f g\n.p 3\n"
      "1-0 10\n-11 11\n001 01\n.e\n");
  EXPECT_EQ(net.inputs, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(net.outputs, (std::vector<std::string>{"f", "g"}));
  const aig::Aig a = net.to_aig();
  // f = a¬c | bc ; g = bc | ¬a¬bc.
  for (int m = 0; m < 8; ++m) {
    const bool av = m & 1, bv = m & 2, cv = m & 4;
    const bool f = (av && !cv) || (bv && cv);
    const bool g = (bv && cv) || (!av && !bv && cv);
    std::vector<std::uint64_t> stim{av ? ~0ULL : 0, bv ? ~0ULL : 0,
                                    cv ? ~0ULL : 0};
    const auto out = aig::simulate(a, stim);
    EXPECT_EQ((out[0] & 1) != 0, f) << m;
    EXPECT_EQ((out[1] & 1) != 0, g) << m;
  }
}

TEST(PlaReader, DefaultNamesAndComments) {
  const Network net = parse_pla("# header comment\n.i 2\n.o 1\n11 1\n.e\n");
  EXPECT_EQ(net.inputs[0], "in0");
  EXPECT_EQ(net.outputs[0], "out0");
  const aig::Aig a = net.to_aig();
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0001u);
}

TEST(PlaReader, TildeAndDashOutputsIgnored) {
  const Network net = parse_pla(".i 1\n.o 2\n1 1~\n0 -1\n.e\n");
  const aig::Aig a = net.to_aig();
  const auto out = aig::simulate(a, {0b01});
  EXPECT_EQ(out[0] & 0b11, 0b01u);  // f = x
  EXPECT_EQ(out[1] & 0b11, 0b10u);  // g = !x
}

TEST(PlaReader, RejectsMalformedInput) {
  EXPECT_THROW(parse_pla(".o 1\n1 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(parse_pla(".i 2\n.o 1\n1 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(parse_pla(".i 1\n.o 1\n2 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(parse_pla(".i 1\n.o 1\n.type r\n1 1\n.e\n"), std::runtime_error);
}

TEST(PlaReader, DecomposablePlaEndToEnd) {
  // Cubes over {a0,a1} and {b0,b1}: OR bi-decomposable disjointly.
  const Network net = parse_pla(
      ".i 4\n.o 1\n.ilb a0 a1 b0 b1\n.ob f\n"
      "11-- 1\n--11 1\n10-- 1\n.e\n");
  const aig::Aig a = net.to_aig();
  EXPECT_EQ(a.num_outputs(), 1u);
  EXPECT_EQ(a.num_inputs(), 4u);
}

// ---------- AIGER ----------------------------------------------------------------

TEST(Aiger, ParsesHandWrittenAndGate) {
  // f = x & !y
  const aig::Aig a = parse_aiger(
      "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 x\ni1 y\no0 f\n");
  ASSERT_EQ(a.num_inputs(), 2u);
  ASSERT_EQ(a.num_outputs(), 1u);
  EXPECT_EQ(a.input_name(0), "x");
  EXPECT_EQ(a.output_name(0), "f");
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0100u);
}

TEST(Aiger, ComplementedOutput) {
  const aig::Aig a = parse_aiger("aag 1 1 0 1 0\n2\n3\n");  // f = !x
  const auto out = aig::simulate(a, {0b01});
  EXPECT_EQ(out[0] & 0b11, 0b10u);
}

TEST(Aiger, ConstantOutputs) {
  const aig::Aig a = parse_aiger("aag 0 0 0 2 0\n0\n1\n");
  const auto out = aig::simulate(a, {});
  EXPECT_EQ(out[0], 0ULL);
  EXPECT_EQ(out[1], ~0ULL);
}

TEST(Aiger, LatchesAreCutCombinationally) {
  // One latch: q' = q ^ en  (xor via three ands), output = q.
  const aig::Aig a = parse_aiger(
      "aag 5 1 1 1 3\n2\n4 10\n4\n6 2 4\n8 3 5\n10 7 9\n"
      "i0 en\nl0 q\n");
  ASSERT_EQ(a.num_inputs(), 2u);   // en + q
  ASSERT_EQ(a.num_outputs(), 2u);  // o0 + q_next
  EXPECT_EQ(a.input_name(1), "q");
  EXPECT_EQ(a.output_name(1), "q_next");
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0011u);  // q passthrough
  EXPECT_EQ(out[1] & 0xf, 0b0110u);  // q ^ en
}

TEST(Aiger, RoundTripPreservesFunction) {
  const std::vector<aig::Aig> circuits = {
      benchgen::ripple_adder(4), benchgen::priority_encoder(5),
      benchgen::array_multiplier(3), benchgen::barrel_rotator(4)};
  for (const aig::Aig& a : circuits) {
    const aig::Aig b = parse_aiger(write_aiger(a));
    ASSERT_EQ(a.num_inputs(), b.num_inputs());
    ASSERT_EQ(a.num_outputs(), b.num_outputs());
    std::vector<std::uint64_t> stim(a.num_inputs());
    std::uint64_t x = 0xc0ffee123456789ULL;
    for (auto& w : stim) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      w = x;
    }
    EXPECT_EQ(aig::simulate(a, stim), aig::simulate(b, stim));
    // Names survive the round trip.
    EXPECT_EQ(a.input_name(0), b.input_name(0));
    EXPECT_EQ(a.output_name(0), b.output_name(0));
  }
}

TEST(Aiger, RejectsBadInput) {
  EXPECT_THROW(parse_aiger("aig 1 1 0 0 0\n2\n"), std::runtime_error);
  EXPECT_THROW(parse_aiger("aag 1 1 0 1 0\n3\n2\n"), std::runtime_error);  // odd input
  EXPECT_THROW(parse_aiger("aag 2 1 0 1 0\n2\n9\n"), std::runtime_error);  // range
  EXPECT_THROW(parse_aiger("aag 2 1 0 1 1\n2\n4\n4 4 2\n"),
               std::runtime_error);  // cyclic/self
}

TEST(Aiger, OutOfOrderAndsResolve) {
  // AND 8 references AND 6 defined after it in the file.
  const aig::Aig a = parse_aiger("aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 2 4\n");
  const auto out = aig::simulate(a, {0b0101, 0b0011});
  EXPECT_EQ(out[0] & 0xf, 0b0001u);  // (x&y)&x = x&y
}

}  // namespace
}  // namespace step::io
