#pragma once

#include <cstdint>
#include <vector>

#include "aig/simulate.h"

namespace step::core {

/// NPN canonicalization of truth tables — the keying scheme of the
/// decomposition cache (core/dec_cache.h). Two functions are NPN-equivalent
/// when one becomes the other under some input permutation, input
/// negations, and output negation; a bi-decomposition tree of one
/// instantiates the other by rewiring inputs and complementing edges, so
/// the cache stores one tree per NPN class.
///
/// Exact canonicalization enumerates all n!·2^n·2 transforms and keeps the
/// lexicographically smallest table, which is practical for the small
/// supports where truth tables are cheap (kNpnMaxSupport). Wider functions
/// are keyed by a semantic simulation signature instead (see dec_cache).

/// Largest support for which exact NPN canonicalization is enumerated
/// (6! · 2^6 · 2 = 92160 candidate transforms, one 64-bit word each).
constexpr int kNpnMaxSupport = 6;

/// Packed truth table as produced by aig::truth_table(): bit r of the
/// table is the function value on input row r.
using TruthTable = std::vector<std::uint64_t>;

/// An NPN transform instantiating a canonical function c as a concrete
/// function f over the same n variables:
///   f(x_0..x_{n-1}) = output_neg XOR c(y_0..y_{n-1})
///   where y_j = x_{perm[j]} XOR input_neg_j.
/// I.e. canonical variable j reads concrete variable perm[j], complemented
/// when bit j of input_neg is set.
struct NpnTransform {
  std::vector<std::uint8_t> perm;
  std::uint32_t input_neg = 0;
  bool output_neg = false;

  bool operator==(const NpnTransform&) const = default;
};

struct NpnCanonical {
  TruthTable tt;          ///< canonical representative of the class
  NpnTransform transform; ///< instantiates tt back into the input function
};

/// Identity transform over n variables.
NpnTransform npn_identity(int n);

/// Applies `t` to a canonical table: returns the table of
///   f(x) = t.output_neg XOR c(y),  y_j = x_{t.perm[j]} XOR t.input_neg_j.
/// This is the instantiation direction: npn_apply(canon.tt, n,
/// canon.transform) recovers the original function.
TruthTable npn_apply(const TruthTable& c, int n, const NpnTransform& t);

/// Exact canonical form: the lexicographically smallest table over all
/// transforms, with a transform satisfying
///   npn_apply(result.tt, n, result.transform) == f.
/// Requires n <= kNpnMaxSupport.
NpnCanonical npn_canonicalize(const TruthTable& f, int n);

/// Brute-force NPN equivalence — the reference oracle for tests: true iff
/// some transform maps g onto f. Requires n <= kNpnMaxSupport.
bool npn_equivalent(const TruthTable& f, const TruthTable& g, int n);

/// Variable wiring that instantiates a function f (stored with canonical
/// transform `to_f`) as an NPN-equivalent function g (canonical transform
/// `to_g`, same canonical table):
///   g(x) = output_neg XOR f(z),  z_i = x_{var[i]} XOR neg_i.
/// I.e. f-variable i is driven by g-variable var[i], complemented when bit
/// i of neg is set. This is how a cached tree over f is rewired to
/// implement g. (`var` is int-wide because the identity map also serves
/// the semantic-signature cache path, whose supports exceed a byte.)
struct NpnVarMap {
  std::vector<int> var;
  std::uint32_t neg = 0;
  bool output_neg = false;
};

NpnVarMap npn_compose(const NpnTransform& to_f, const NpnTransform& to_g);

}  // namespace step::core
