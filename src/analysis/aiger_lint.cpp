#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aig/aig.h"
#include "analysis/lint.h"

namespace step::analysis {

namespace {

// ---------------------------------------------------------------- findings

/// Appends findings with a per-code cap so a pathological million-gate
/// netlist (say, half its ANDs dangling) reports a representative sample
/// plus one summary line instead of flooding the JSON artifact.
class FindingBuffer {
 public:
  static constexpr int kPerCodeCap = 20;

  explicit FindingBuffer(LintReport& report) : report_(report) {}

  void add(const char* code, Severity severity, std::string object,
           std::string message, long line = 0) {
    const int n = ++counts_[code];
    if (n > kPerCodeCap) return;
    report_.findings.push_back(
        Finding{code, severity, std::move(object), std::move(message), line});
  }

  bool seen(const char* code) const { return counts_.count(code) != 0; }

  /// Emits one summary finding per capped code; call exactly once.
  void flush_caps() {
    for (const auto& [code, n] : counts_) {
      if (n <= kPerCodeCap) continue;
      report_.findings.push_back(Finding{
          "LINT-CAPPED", Severity::kInfo, code,
          std::to_string(n - kPerCodeCap) + " further " + code +
              " findings suppressed (" + std::to_string(n) + " total)",
          0});
    }
  }

 private:
  LintReport& report_;
  std::map<std::string, int> counts_;
};

// ---------------------------------------------------------- raw structure

/// AIGER contents as scanned, before any well-formedness assumption. Both
/// format parsers fill this; every semantic check runs on it, so ASCII and
/// binary inputs get the identical finding set for the same structure.
struct RawAig {
  std::uint64_t max_var = 0;  // header M
  std::uint64_t n_inputs = 0, n_latches = 0, n_outputs = 0, n_ands = 0;

  struct Input {
    std::uint64_t lit;
    long line;
  };
  struct Latch {
    std::uint64_t lhs, next;
    std::uint64_t init;
    bool has_init;
    long line;
  };
  struct Output {
    std::uint64_t lit;
    long line;
  };
  struct And {
    std::uint64_t lhs, rhs0, rhs1;
    long line;
  };

  std::vector<Input> inputs;
  std::vector<Latch> latches;
  std::vector<Output> outputs;
  std::vector<And> ands;
};

enum class Def : std::uint8_t { kUndef, kConst, kInput, kLatch, kAnd };

constexpr std::uint64_t var_of(std::uint64_t lit) { return lit >> 1; }

std::string lit_str(std::uint64_t lit) {
  return "lit " + std::to_string(lit) + " (var " + std::to_string(lit >> 1) +
         ")";
}

// ------------------------------------------------------------ ascii scan

/// Line-oriented cursor over the input bytes, tracking 1-based line
/// numbers for finding locations.
struct LineScanner {
  std::string_view text;
  std::size_t pos = 0;
  long line = 0;

  bool next_line(std::string_view& out) {
    if (pos >= text.size()) return false;
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
    out = text.substr(pos, end - pos);
    if (!out.empty() && out.back() == '\r') out.remove_suffix(1);
    pos = end + 1;
    ++line;
    return true;
  }
};

/// Splits a line into unsigned decimal fields. Returns false on any
/// non-numeric token or overflow.
bool parse_fields(std::string_view s, std::vector<std::uint64_t>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    if (i >= s.size()) break;
    std::uint64_t v = 0;
    bool any = false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      const std::uint64_t d = static_cast<std::uint64_t>(s[i] - '0');
      if (v > (UINT64_MAX - d) / 10) return false;
      v = v * 10 + d;
      any = true;
      ++i;
    }
    if (!any) return false;  // non-digit where a number was expected
    if (i < s.size() && s[i] != ' ' && s[i] != '\t') return false;
    out.push_back(v);
  }
  return !out.empty();
}

/// Parses the 5-field header shared by both formats; `magic` is "aag" or
/// "aig". Returns false (with a finding) when the header is unusable.
bool parse_header(std::string_view line, const char* magic, RawAig& raw,
                  std::size_t file_bytes, FindingBuffer& fb) {
  const std::string prefix = std::string(magic) + " ";
  if (line.rfind(prefix, 0) != 0) {
    fb.add("AIG-PARSE", Severity::kError, "header",
           "expected '" + std::string(magic) + " M I L O A' header", 1);
    return false;
  }
  std::vector<std::uint64_t> f;
  if (!parse_fields(line.substr(prefix.size()), f) || f.size() != 5) {
    fb.add("AIG-PARSE", Severity::kError, "header",
           "header must carry exactly the five counts M I L O A", 1);
    return false;
  }
  raw.max_var = f[0];
  raw.n_inputs = f[1];
  raw.n_latches = f[2];
  raw.n_outputs = f[3];
  raw.n_ands = f[4];
  // Plausibility guard mirroring the production reader: every declared
  // variable needs bytes in the file, so a hostile header cannot make the
  // linter allocate unbounded definition tables.
  if (raw.max_var > 8 * static_cast<std::uint64_t>(file_bytes) + 1024) {
    fb.add("AIG-HEADER", Severity::kError, "header",
           "declares " + std::to_string(raw.max_var) +
               " variables, implausible for a " + std::to_string(file_bytes) +
               "-byte file",
           1);
    return false;
  }
  return true;
}

/// Scans ASCII AIGER into `raw`. Returns false when scanning had to stop
/// early (truncation / malformed line); collected entries stay valid.
bool scan_ascii(std::string_view text, RawAig& raw, FindingBuffer& fb) {
  LineScanner sc{text};
  std::string_view line;
  if (!sc.next_line(line)) {
    fb.add("AIG-PARSE", Severity::kError, "header", "empty file", 1);
    return false;
  }
  if (!parse_header(line, "aag", raw, text.size(), fb)) return false;

  std::vector<std::uint64_t> f;
  auto section_line = [&](const char* what, std::size_t want_min,
                          std::size_t want_max) -> bool {
    if (!sc.next_line(line)) {
      fb.add("AIG-PARSE", Severity::kError, what,
             std::string("truncated: missing ") + what + " line", sc.line);
      return false;
    }
    if (!parse_fields(line, f) || f.size() < want_min || f.size() > want_max) {
      fb.add("AIG-PARSE", Severity::kError, what,
             std::string("malformed ") + what + " line", sc.line);
      return false;
    }
    return true;
  };

  for (std::uint64_t i = 0; i < raw.n_inputs; ++i) {
    if (!section_line("input", 1, 1)) return false;
    raw.inputs.push_back({f[0], sc.line});
  }
  for (std::uint64_t i = 0; i < raw.n_latches; ++i) {
    if (!section_line("latch", 2, 3)) return false;
    raw.latches.push_back(
        {f[0], f[1], f.size() == 3 ? f[2] : 0, f.size() == 3, sc.line});
  }
  for (std::uint64_t i = 0; i < raw.n_outputs; ++i) {
    if (!section_line("output", 1, 1)) return false;
    raw.outputs.push_back({f[0], sc.line});
  }
  for (std::uint64_t i = 0; i < raw.n_ands; ++i) {
    if (!section_line("and", 3, 3)) return false;
    raw.ands.push_back({f[0], f[1], f[2], sc.line});
  }
  // Symbol table / comments follow; they carry no structure to check.
  return true;
}

// ----------------------------------------------------------- binary scan

bool scan_binary(std::string_view bytes, RawAig& raw, FindingBuffer& fb) {
  LineScanner sc{bytes};
  std::string_view line;
  if (!sc.next_line(line)) {
    fb.add("AIG-PARSE", Severity::kError, "header", "empty file", 1);
    return false;
  }
  if (!parse_header(line, "aig", raw, bytes.size(), fb)) return false;

  // Inputs are implicit: variables 1..I in order.
  for (std::uint64_t i = 0; i < raw.n_inputs; ++i) {
    raw.inputs.push_back({2 * (i + 1), 0});
  }

  std::vector<std::uint64_t> f;
  for (std::uint64_t i = 0; i < raw.n_latches; ++i) {
    if (!sc.next_line(line) || !parse_fields(line, f) || f.empty() ||
        f.size() > 2) {
      fb.add("AIG-PARSE", Severity::kError, "latch",
             "truncated or malformed latch line", sc.line);
      return false;
    }
    // Binary latch lhs is implicit: variable I+1+i.
    raw.latches.push_back({2 * (raw.n_inputs + 1 + i), f[0],
                           f.size() == 2 ? f[1] : 0, f.size() == 2, sc.line});
  }
  for (std::uint64_t i = 0; i < raw.n_outputs; ++i) {
    if (!sc.next_line(line) || !parse_fields(line, f) || f.size() != 1) {
      fb.add("AIG-PARSE", Severity::kError, "output",
             "truncated or malformed output line", sc.line);
      return false;
    }
    raw.outputs.push_back({f[0], sc.line});
  }

  // Delta-coded AND section: two varints per gate, lhs implicit.
  std::size_t pos = sc.pos;
  auto read_delta = [&](std::uint64_t& out) -> bool {
    out = 0;
    int shift = 0;
    while (pos < bytes.size()) {
      const std::uint8_t b = static_cast<std::uint8_t>(bytes[pos++]);
      // At shift 63 only bit 63 is left; past 63 the shift itself would be
      // UB, so reject over-long varints even when their payload bits are 0.
      if (shift > 63 || (shift == 63 && (b & 0x7f) > 1)) return false;
      out |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return true;
      shift += 7;
    }
    return false;  // truncated varint
  };
  for (std::uint64_t i = 0; i < raw.n_ands; ++i) {
    const std::uint64_t lhs = 2 * (raw.n_inputs + raw.n_latches + 1 + i);
    std::uint64_t d0 = 0, d1 = 0;
    if (!read_delta(d0) || !read_delta(d1)) {
      fb.add("AIG-PARSE", Severity::kError, "and " + std::to_string(lhs >> 1),
             "truncated or overflowing delta in the binary AND section", 0);
      return false;
    }
    if (d0 > lhs || d1 > lhs - d0) {
      // The format requires lhs > rhs0 >= rhs1; a larger delta would
      // decode to a negative literal.
      fb.add("AIG-PARSE", Severity::kError, "and " + std::to_string(lhs >> 1),
             "non-monotone delta encoding (rhs would be negative)", 0);
      return false;
    }
    raw.ands.push_back({lhs, lhs - d0, lhs - d0 - d1, 0});
  }
  return true;
}

// ------------------------------------------------------- semantic checks

/// All structural checks over the scanned tables. `complete` is false when
/// the scan stopped early — the definition-dependent checks (undefined
/// references, reachability) are skipped then, because a truncated file
/// would drown the report in cascading UNDEF findings.
void semantic_checks(const RawAig& raw, bool complete, FindingBuffer& fb) {
  const std::uint64_t m = raw.max_var;
  const std::uint64_t defined =
      raw.n_inputs + raw.n_latches + raw.n_ands;
  if (m < defined) {
    fb.add("AIG-HEADER", Severity::kError, "header",
           "M = " + std::to_string(m) + " but I+L+A = " +
               std::to_string(defined) + " variables are defined",
           1);
  } else if (m > defined && complete) {
    fb.add("AIG-HEADER", Severity::kWarning, "header",
           "M = " + std::to_string(m) + " declares " +
               std::to_string(m - defined) +
               " variable(s) no input/latch/AND defines",
           1);
  }

  // Definition table. Guarded by the header plausibility check, m is
  // bounded by the file size.
  std::vector<Def> def(static_cast<std::size_t>(m) + 1, Def::kUndef);
  def[0] = Def::kConst;
  // AND index by variable, for the cycle/reachability walks.
  std::unordered_map<std::uint64_t, const RawAig::And*> and_of;

  auto define = [&](std::uint64_t lit, Def as, const char* what,
                    std::string object, long line) {
    if ((lit & 1) != 0) {
      fb.add("AIG-ODD-LHS", Severity::kError, object,
             std::string(what) + " defined by complemented " + lit_str(lit),
             line);
      return;
    }
    const std::uint64_t v = var_of(lit);
    if (v > m) {
      fb.add("AIG-LIT-RANGE", Severity::kError, object,
             lit_str(lit) + " exceeds the declared maximum variable " +
                 std::to_string(m),
             line);
      return;
    }
    if (def[v] != Def::kUndef) {
      fb.add("AIG-REDEF", Severity::kError, object,
             v == 0 ? "attempts to redefine the constant (variable 0)"
                    : "variable " + std::to_string(v) + " is defined twice",
             line);
      return;
    }
    def[v] = as;
  };

  for (std::size_t i = 0; i < raw.inputs.size(); ++i) {
    define(raw.inputs[i].lit, Def::kInput, "input",
           "input " + std::to_string(i), raw.inputs[i].line);
  }
  for (std::size_t i = 0; i < raw.latches.size(); ++i) {
    const RawAig::Latch& l = raw.latches[i];
    define(l.lhs, Def::kLatch, "latch", "latch " + std::to_string(i), l.line);
    if (l.has_init && l.init != 0 && l.init != 1 && l.init != l.lhs) {
      fb.add("AIG-LATCH", Severity::kError, "latch " + std::to_string(i),
             "reset value " + std::to_string(l.init) +
                 " is neither 0, 1 nor the latch literal itself",
             l.line);
    }
  }
  for (const RawAig::And& a : raw.ands) {
    define(a.lhs, Def::kAnd, "AND", "and " + std::to_string(a.lhs >> 1),
           a.line);
    // Only index ANDs whose lhs `define()` actually accepted: an odd or
    // out-of-range lhs returns early above, so def[] must not be read for
    // it (v > m would be past the end of the table).
    const std::uint64_t v = var_of(a.lhs);
    if ((a.lhs & 1) == 0 && v <= m && def[v] == Def::kAnd) and_of[v] = &a;
    for (const std::uint64_t rhs : {a.rhs0, a.rhs1}) {
      if (var_of(rhs) > m) {
        fb.add("AIG-LIT-RANGE", Severity::kError,
               "and " + std::to_string(a.lhs >> 1),
               "fanin " + lit_str(rhs) +
                   " exceeds the declared maximum variable " +
                   std::to_string(m),
               a.line);
      }
    }
  }

  if (!complete) return;

  // --- references to undefined variables --------------------------------
  auto check_ref = [&](std::uint64_t lit, const char* code, Severity sev,
                       std::string object, const std::string& role,
                       long line) -> bool {
    const std::uint64_t v = var_of(lit);
    if (v > m) return false;  // range error already reported
    if (def[v] == Def::kUndef) {
      fb.add(code, sev, std::move(object),
             role + " references undefined variable " + std::to_string(v),
             line);
      return false;
    }
    return true;
  };

  for (const RawAig::And& a : raw.ands) {
    const std::string obj = "and " + std::to_string(a.lhs >> 1);
    check_ref(a.rhs0, "AIG-UNDEF-FANIN", Severity::kError, obj, "fanin",
              a.line);
    check_ref(a.rhs1, "AIG-UNDEF-FANIN", Severity::kError, obj, "fanin",
              a.line);
  }
  for (std::size_t i = 0; i < raw.latches.size(); ++i) {
    check_ref(raw.latches[i].next, "AIG-UNDEF-FANIN", Severity::kError,
              "latch " + std::to_string(i), "next-state function",
              raw.latches[i].line);
  }
  for (std::size_t i = 0; i < raw.outputs.size(); ++i) {
    const RawAig::Output& o = raw.outputs[i];
    if (var_of(o.lit) > m) {
      fb.add("AIG-LIT-RANGE", Severity::kError,
             "output " + std::to_string(i),
             lit_str(o.lit) + " exceeds the declared maximum variable " +
                 std::to_string(m),
             o.line);
      continue;
    }
    if (o.lit <= 1) {
      fb.add("AIG-CONST-PO", Severity::kWarning,
             "output " + std::to_string(i),
             std::string("output is the constant ") +
                 (o.lit == 1 ? "true" : "false"),
             o.line);
      continue;
    }
    if (def[var_of(o.lit)] == Def::kUndef) {
      fb.add("AIG-UNDRIVEN-PO", Severity::kError,
             "output " + std::to_string(i),
             "output " + lit_str(o.lit) + " is driven by no input, latch or"
                                          " AND definition",
             o.line);
    }
  }

  // --- combinational cycles ---------------------------------------------
  // Iterative tricolor DFS through AND fanins (inputs and latch outputs
  // terminate paths: a latch breaks its loop by construction).
  {
    enum : std::uint8_t { kWhite, kGrey, kBlack };
    std::unordered_map<std::uint64_t, std::uint8_t> color;
    std::unordered_set<std::uint64_t> cycle_reported;
    std::vector<std::pair<const RawAig::And*, int>> stack;
    for (const auto& [root, _] : and_of) {
      if (color[root] != kWhite) continue;
      stack.push_back({and_of[root], 0});
      color[root] = kGrey;
      while (!stack.empty()) {
        auto& [a, next_fanin] = stack.back();
        if (next_fanin >= 2) {
          color[var_of(a->lhs)] = kBlack;
          stack.pop_back();
          continue;
        }
        const std::uint64_t child =
            var_of(next_fanin == 0 ? a->rhs0 : a->rhs1);
        ++next_fanin;
        const auto it = and_of.find(child);
        if (it == and_of.end()) continue;  // input/latch/const: terminal
        std::uint8_t& c = color[child];
        if (c == kGrey) {
          if (!cycle_reported.insert(child).second) continue;
          fb.add("AIG-CYCLE", Severity::kError,
                 "and " + std::to_string(child),
                 "combinational cycle: the AND's fanin cone reaches the AND"
                 " itself",
                 it->second->line);
          continue;
        }
        if (c == kWhite) {
          c = kGrey;
          stack.push_back({it->second, 0});
        }
      }
    }
  }

  // --- reachability: dangling ANDs --------------------------------------
  {
    std::unordered_map<std::uint64_t, bool> reach;
    std::vector<std::uint64_t> todo;
    auto seed = [&](std::uint64_t lit) {
      const std::uint64_t v = var_of(lit);
      if (and_of.count(v) != 0 && !reach[v]) {
        reach[v] = true;
        todo.push_back(v);
      }
    };
    for (const RawAig::Output& o : raw.outputs) seed(o.lit);
    for (const RawAig::Latch& l : raw.latches) seed(l.next);
    while (!todo.empty()) {
      const RawAig::And* a = and_of[todo.back()];
      todo.pop_back();
      seed(a->rhs0);
      seed(a->rhs1);
    }
    for (const RawAig::And& a : raw.ands) {
      const std::uint64_t v = var_of(a.lhs);
      if (and_of.count(v) != 0 && !reach[v]) {
        fb.add("AIG-DANGLING", Severity::kWarning, "and " + std::to_string(v),
               "AND is reachable from no output or latch next-state",
               a.line);
      }
    }
  }

  // --- strash discipline -------------------------------------------------
  {
    std::unordered_map<std::uint64_t, std::uint64_t> strash;  // key -> var
    for (const RawAig::And& a : raw.ands) {
      const std::uint64_t lo = std::min(a.rhs0, a.rhs1);
      const std::uint64_t hi = std::max(a.rhs0, a.rhs1);
      if (hi > 0xffffffffULL || lo > 0xffffffffULL) continue;  // range error
      if (lo <= 1 || var_of(a.rhs0) == var_of(a.rhs1)) {
        fb.add("AIG-TRIV-AND", Severity::kInfo,
               "and " + std::to_string(a.lhs >> 1),
               lo <= 1 ? "AND of a constant folds to a literal"
                       : "AND of a variable with itself folds to a literal",
               a.line);
        continue;
      }
      const std::uint64_t key = (hi << 32) | lo;
      const auto [it, inserted] = strash.emplace(key, var_of(a.lhs));
      if (!inserted) {
        fb.add("AIG-DUP-AND", Severity::kWarning,
               "and " + std::to_string(a.lhs >> 1),
               "structural duplicate of and " + std::to_string(it->second) +
                   " (same fanin pair; strash would have merged them)",
               a.line);
      }
    }
  }
}

}  // namespace

LintReport lint_aiger(std::string_view bytes) {
  LintReport report;
  report.path = "<memory>";
  const bool binary = bytes.rfind("aig ", 0) == 0;
  report.kind = binary ? "aiger-binary" : "aiger-ascii";
  FindingBuffer fb(report);
  RawAig raw;
  const bool complete =
      binary ? scan_binary(bytes, raw, fb) : scan_ascii(bytes, raw, fb);
  if (!fb.seen("AIG-HEADER") || complete) {
    semantic_checks(raw, complete, fb);
  }
  fb.flush_caps();
  return report;
}

LintReport lint_aig(const aig::Aig& a) {
  LintReport report;
  report.path = "<memory>";
  report.kind = "aig";
  FindingBuffer fb(report);

  // Reachability from the outputs (ids are topologically ordered, so one
  // reverse sweep suffices: a node is live iff a live fanout reads it).
  std::vector<bool> live(a.num_nodes(), false);
  for (std::uint32_t o = 0; o < a.num_outputs(); ++o) {
    live[aig::node_of(a.output(o))] = true;
  }
  for (std::uint32_t node = a.num_nodes(); node-- > 1;) {
    if (!a.is_and(node) || !live[node]) continue;
    live[aig::node_of(a.fanin0(node))] = true;
    live[aig::node_of(a.fanin1(node))] = true;
  }

  std::unordered_map<std::uint64_t, std::uint32_t> strash;
  for (std::uint32_t node = 1; node < a.num_nodes(); ++node) {
    if (!a.is_and(node)) continue;
    if (!live[node]) {
      fb.add("AIG-DANGLING", Severity::kWarning,
             "and " + std::to_string(node),
             "AND is reachable from no output");
    }
    const aig::Lit f0 = a.fanin0(node), f1 = a.fanin1(node);
    const std::uint64_t lo = std::min(f0, f1), hi = std::max(f0, f1);
    if (lo <= 1 || aig::node_of(f0) == aig::node_of(f1)) {
      fb.add("AIG-TRIV-AND", Severity::kInfo, "and " + std::to_string(node),
             lo <= 1 ? "AND of a constant folds to a literal"
                     : "AND of a variable with itself folds to a literal");
      continue;
    }
    const auto [it, inserted] = strash.emplace((hi << 32) | lo, node);
    if (!inserted) {
      fb.add("AIG-DUP-AND", Severity::kWarning, "and " + std::to_string(node),
             "structural duplicate of and " + std::to_string(it->second) +
                 " (same fanin pair; strash would have merged them)");
    }
  }
  for (std::uint32_t o = 0; o < a.num_outputs(); ++o) {
    if (a.output(o) <= 1) {
      fb.add("AIG-CONST-PO", Severity::kWarning, "output " + std::to_string(o),
             std::string("output is the constant ") +
                 (a.output(o) == 1 ? "true" : "false"));
    }
  }
  fb.flush_caps();
  return report;
}

}  // namespace step::analysis
