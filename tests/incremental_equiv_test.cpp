// A/B regression of the optimum-search architectures: the incremental
// path (one persistent CEGAR solver pair, assumption-activated bounds,
// core-driven lower-bound raises) must return exactly the answers of the
// scratch rebuild-per-query path, for every model, on the benchgen suite.

#include <gtest/gtest.h>

#include "benchgen/suite.h"
#include "core/optimum.h"
#include "core/relaxation.h"
#include "test_util.h"

namespace step::core {
namespace {

TEST(IncrementalEquivalence, MatchesScratchOnBenchgenSuite) {
  const auto suite = benchgen::standard_suite(benchgen::SuiteScale::kTiny);
  int compared = 0;
  for (const benchgen::BenchCircuit& c : suite) {
    for (std::uint32_t po = 0; po < c.aig.num_outputs(); ++po) {
      const Cone cone = extract_po_cone(c.aig, po);
      if (cone.n() < 2 || cone.n() > 10) continue;
      const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
      for (QbfModel model : {QbfModel::kQD, QbfModel::kQB, QbfModel::kQDB}) {
        OptimumOptions o;
        o.call_timeout_s = 30.0;  // generous: no timeout-induced divergence
        QbfFinderOptions inc_opts, scratch_opts;
        inc_opts.incremental = true;
        scratch_opts.incremental = false;
        QbfPartitionFinder inc_finder(m, inc_opts);
        QbfPartitionFinder scratch_finder(m, scratch_opts);
        const OptimumResult inc =
            OptimumSearch(inc_finder, model, o).run(std::nullopt);
        const OptimumResult scratch =
            OptimumSearch(scratch_finder, model, o).run(std::nullopt);

        ASSERT_EQ(static_cast<int>(inc.outcome),
                  static_cast<int>(scratch.outcome))
            << c.name << " po " << po << " " << to_string(model);
        if (inc.outcome == OptimumResult::Outcome::kFound) {
          EXPECT_EQ(inc.best_cost, scratch.best_cost)
              << c.name << " po " << po << " " << to_string(model);
          EXPECT_EQ(inc.proven_optimal, scratch.proven_optimal)
              << c.name << " po " << po << " " << to_string(model);
          EXPECT_TRUE(check_partition_exhaustive(cone, GateOp::kOr, inc.best));
        }
        ++compared;
      }
      if (compared >= 45) {
        EXPECT_GT(compared, 0);
        return;  // runtime guard; the sweep below covers more shapes
      }
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(IncrementalEquivalence, RefutedBelowIsSoundAgainstBruteForce) {
  // Whatever lower bound the UNSAT core certifies, no partition may exist
  // below it. Bounds are queried top-down so refinements and learned
  // clauses pile up in the persistent solver before the tight queries.
  Rng rng(86420);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(6, 20), rng.next());
    const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
    for (QbfModel model : {QbfModel::kQD, QbfModel::kQB, QbfModel::kQDB}) {
      const MetricKind kind = metric_of(model);
      const BruteForceResult oracle =
          brute_force_optimum(cone, GateOp::kOr, kind);
      QbfPartitionFinder finder(m);
      for (int k = n - 2; k >= 0; --k) {
        const QbfFindResult r = finder.find_with_bound(model, k);
        if (r.status != qbf::Qbf2Status::kFalse) continue;
        EXPECT_GE(r.refuted_below, k + 1);
        if (oracle.decomposable) {
          EXPECT_GE(oracle.best_cost, r.refuted_below)
              << to_string(model) << " k=" << k;
        }
      }
    }
  }
}

TEST(IncrementalEquivalence, CoreRaisesLowerBoundOnSharedSelect) {
  // A mux tree needs both selects shared: every QD bound below 2 is
  // refuted. The incremental finder's refutation of k=0 should already
  // certify that (refuted_below == 2), which the scratch path cannot.
  Cone cone;
  const aig::Lit s0 = cone.aig.add_input();
  const aig::Lit s1 = cone.aig.add_input();
  const aig::Lit a = cone.aig.add_input();
  const aig::Lit b = cone.aig.add_input();
  const aig::Lit c = cone.aig.add_input();
  const aig::Lit d = cone.aig.add_input();
  cone.root =
      cone.aig.lmux(s0, cone.aig.lmux(s1, a, b), cone.aig.lmux(s1, c, d));
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);

  const BruteForceResult oracle =
      brute_force_optimum(cone, GateOp::kOr, MetricKind::kDisjointness);
  ASSERT_TRUE(oracle.decomposable);
  ASSERT_GE(oracle.best_cost, 2);

  QbfPartitionFinder finder(m);
  // Warm the solver on a satisfiable loose bound first (as the MD stage
  // of the schedule would), then refute the tightest bound.
  (void)finder.find_with_bound(QbfModel::kQD, 4);
  const QbfFindResult r = finder.find_with_bound(QbfModel::kQD, 0);
  ASSERT_EQ(r.status, qbf::Qbf2Status::kFalse);
  EXPECT_GE(r.refuted_below, 1);
  EXPECT_LE(r.refuted_below, oracle.best_cost);
}

TEST(IncrementalEquivalence, MixedModelsShareOnePool) {
  // Countermodels discovered under one model seed the persistent solvers
  // of the others (the matrix part is model-independent).
  const Cone cone = testutil::random_cone(5, 16, 13579);
  const RelaxationMatrix m = build_relaxation_matrix(cone, GateOp::kOr);
  QbfPartitionFinder finder(m);
  (void)finder.find_with_bound(QbfModel::kQD, 2);
  const std::size_t after_qd = finder.pool_size();
  (void)finder.find_with_bound(QbfModel::kQB, 2);
  EXPECT_GE(finder.pool_size(), after_qd);
  (void)finder.find_with_bound(QbfModel::kQDB, 2);
  EXPECT_EQ(finder.qbf_calls(), 3);
  EXPECT_GE(finder.total_iterations(), 0);
}

}  // namespace
}  // namespace step::core
