#include "sat/solver.h"

#include <algorithm>
#include <cmath>

namespace step::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 ... scaled by the restart base.
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

}  // namespace

Solver::Solver(SolverOptions opts) : opts_(opts) {}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(Lbool::kUndef);
  level_.push_back(0);
  reason_.push_back(kCRefUndef);
  activity_.push_back(0.0);
  polarity_.push_back(0);
  seen_.push_back(0);
  present_.push_back(0);
  seen2_.push_back(0);
  level0_unit_id_.push_back(kProofIdUndef);
  watches_.emplace_back();
  watches_.emplace_back();
  order_heap_.insert(v);
  return v;
}

void Solver::attach_clause(CRef cr) {
  const Clause& c = arena_[cr];
  STEP_CHECK(c.size() >= 2);
  watches_[index(~c[0])].push_back({cr, c[1]});
  watches_[index(~c[1])].push_back({cr, c[0]});
}

void Solver::detach_clause(CRef cr) {
  const Clause& c = arena_[cr];
  auto remove_from = [&](Lit w) {
    auto& ws = watches_[index(~w)];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cr) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    STEP_CHECK(false && "watcher not found");
  };
  remove_from(c[0]);
  remove_from(c[1]);
}

void Solver::enqueue(Lit p, CRef from) {
  const Var v = var(p);
  STEP_CHECK(value(p) == Lbool::kUndef);
  assigns_[v] = mk_lbool(!sign(p));
  level_[v] = decision_level();
  reason_[v] = from;
  trail_.push_back(p);
}

ProofId Solver::level0_justification(Var v) const {
  STEP_CHECK(level_[v] == 0 && value(v) != Lbool::kUndef);
  if (reason_[v] != kCRefUndef) return arena_[reason_[v]].proof_id();
  STEP_CHECK(level0_unit_id_[v] != kProofIdUndef);
  return level0_unit_id_[v];
}

void Solver::resolve_level0(LitVec& pending, std::vector<ProofStep>& steps) {
  if (pending.empty()) return;
  int n_marked = 0;
  for (Lit l : pending) {
    const Var v = var(l);
    STEP_CHECK(level_[v] == 0 && value(l) == Lbool::kFalse);
    if (!seen2_[v]) {
      seen2_[v] = 1;
      ++n_marked;
    }
  }
  const int end = decision_level() > 0 ? trail_lim_[0]
                                       : static_cast<int>(trail_.size());
  for (int i = end - 1; i >= 0 && n_marked > 0; --i) {
    const Var v = var(trail_[i]);
    if (!seen2_[v]) continue;
    seen2_[v] = 0;
    --n_marked;
    steps.push_back({level0_justification(v), v});
    if (reason_[v] != kCRefUndef) {
      const Clause& c = arena_[reason_[v]];
      for (std::uint32_t k = 1; k < c.size(); ++k) {
        const Var vq = var(c[k]);
        if (!seen2_[vq]) {
          seen2_[vq] = 1;
          ++n_marked;
        }
      }
    }
  }
  STEP_CHECK(n_marked == 0);
  pending.clear();
}

bool Solver::add_clause(std::span<const Lit> lits_in, int proof_tag) {
  STEP_CHECK(decision_level() == 0);
  if (!ok_) return false;

  LitVec lits(lits_in.begin(), lits_in.end());
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    STEP_CHECK(var(lits[i]) < num_vars() && var(lits[i]) >= 0);
    if (var(lits[i]) == var(lits[i + 1])) return true;  // tautology
  }
  if (!lits.empty()) {
    STEP_CHECK(var(lits.back()) < num_vars() && var(lits.back()) >= 0);
  }
  for (Lit l : lits) {
    if (value(l) == Lbool::kTrue) return true;  // already satisfied forever
  }

  const bool proof_on = opts_.proof_logging;
  ProofId pid = kProofIdUndef;
  if (proof_on) pid = proof_.add_leaf(lits, proof_tag);

  // Strip literals that are false at level 0, logging the resolutions.
  LitVec falses, kept;
  for (Lit l : lits) {
    (value(l) == Lbool::kFalse ? falses : kept).push_back(l);
  }
  if (proof_on && !falses.empty()) {
    std::vector<ProofStep> steps;
    resolve_level0(falses, steps);
    pid = proof_.add_derived(pid, std::move(steps));
  }

  if (kept.empty()) {
    ok_ = false;
    if (proof_on) proof_.set_empty_clause(pid);
    return false;
  }
  if (kept.size() == 1) {
    enqueue(kept[0], kCRefUndef);
    if (proof_on) level0_unit_id_[var(kept[0])] = pid;
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      if (proof_on) {
        const Clause& c = arena_[confl];
        LitVec cl(c.lits().begin(), c.lits().end());
        std::vector<ProofStep> steps;
        resolve_level0(cl, steps);
        proof_.set_empty_clause(
            proof_.add_derived(c.proof_id(), std::move(steps)));
      }
      ok_ = false;
      return false;
    }
    return true;
  }

  const CRef cr = arena_.alloc(kept, /*learnt=*/false);
  if (proof_on) arena_[cr].set_proof_id(pid);
  clauses_.push_back(cr);
  attach_clause(cr);
  return true;
}

CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[qhead_++];  // p is now true
    auto& ws = watches_[index(p)];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i];
      // Blocker short-circuit: clause already satisfied.
      if (value(w.blocker) == Lbool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const CRef cr = w.cref;
      Clause& c = arena_[cr];
      const Lit false_lit = ~p;
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      ++i;
      const Lit first = c[0];
      if (first != w.blocker && value(first) == Lbool::kTrue) {
        ws[j++] = {cr, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != Lbool::kFalse) {
          c[1] = c[k];
          c[k] = false_lit;
          watches_[index(~c[1])].push_back({cr, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = {cr, first};
      if (value(first) == Lbool::kFalse) {
        confl = cr;
        qhead_ = static_cast<int>(trail_.size());
        while (i < n) ws[j++] = ws[i++];
      } else {
        enqueue(first, cr);
        ++stats_.propagations;
      }
    }
    ws.resize(j);
  }
  return confl;
}

void Solver::cancel_until(int lvl) {
  if (decision_level() <= lvl) return;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[lvl]; --i) {
    const Var v = var(trail_[i]);
    if (opts_.phase_saving) polarity_[v] = (assigns_[v] == Lbool::kTrue) ? 1 : 0;
    assigns_[v] = Lbool::kUndef;
    reason_[v] = kCRefUndef;
    order_heap_.insert(v);
  }
  trail_.resize(trail_lim_[lvl]);
  trail_lim_.resize(lvl);
  qhead_ = static_cast<int>(trail_.size());
}

Lit Solver::pick_branch_lit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.remove_max();
    if (value(v) == Lbool::kUndef) {
      return mk_lit(v, polarity_[v] == 0);
    }
  }
  return kLitUndef;
}

void Solver::bump_var(Var v, double factor) {
  activity_[v] += var_inc_ * factor;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.increased(v);
}

void Solver::bump_clause(Clause& c) {
  c.set_activity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > 1e20f) {
    for (CRef cr : learnts_) {
      Clause& lc = arena_[cr];
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

bool Solver::lit_redundant(Lit l, std::vector<ProofStep>& steps,
                           LitVec& dropped0, LitVec& to_clear) {
  const Var v = var(l);
  const CRef r = reason_[v];
  if (r == kCRefUndef) return false;
  const Clause& c = arena_[r];
  // c[0] is the literal the clause propagated, i.e. ~l.
  for (std::uint32_t k = 1; k < c.size(); ++k) {
    const Var vq = var(c[k]);
    if (level_[vq] == 0) continue;
    if (!present_[vq]) return false;
  }
  if (opts_.proof_logging) {
    steps.push_back({c.proof_id(), v});
    for (std::uint32_t k = 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const Var vq = var(q);
      if (level_[vq] == 0 && !seen_[vq]) {
        seen_[vq] = 1;
        to_clear.push_back(q);
        dropped0.push_back(q);
      }
    }
  }
  return true;
}

void Solver::analyze(CRef confl, LitVec& out_learnt, int& out_btlevel,
                     ProofId& out_start, std::vector<ProofStep>& out_steps,
                     LitVec& dropped0) {
  const bool proof_on = opts_.proof_logging;
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // slot for the asserting (UIP) literal
  out_steps.clear();
  dropped0.clear();
  LitVec to_clear;  // literals whose seen_ flag must be reset at the end

  int path_c = 0;
  Lit p = kLitUndef;
  int idx = static_cast<int>(trail_.size()) - 1;

  do {
    STEP_CHECK(confl != kCRefUndef);
    Clause& c = arena_[confl];
    if (proof_on) {
      if (p == kLitUndef) {
        out_start = c.proof_id();
      } else {
        out_steps.push_back({c.proof_id(), var(p)});
      }
    }
    if (c.learnt()) bump_clause(c);
    for (std::uint32_t jj = (p == kLitUndef) ? 0 : 1; jj < c.size(); ++jj) {
      const Lit q = c[jj];
      const Var v = var(q);
      if (seen_[v]) continue;
      if (level_[v] == 0) {
        if (proof_on) {
          seen_[v] = 1;
          to_clear.push_back(q);
          dropped0.push_back(q);
        }
        continue;
      }
      seen_[v] = 1;
      to_clear.push_back(q);
      bump_var(v);
      if (level_[v] >= decision_level()) {
        ++path_c;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Select the next literal of the current level to resolve on.
    while (!seen_[var(trail_[idx--])]) {
    }
    p = trail_[idx + 1];
    confl = reason_[var(p)];
    seen_[var(p)] = 0;
    --path_c;
  } while (path_c > 0);
  out_learnt[0] = ~p;

  // Basic (non-recursive) learnt clause minimization. `present_` tracks the
  // literals still syntactically in the clause so the logged resolution
  // chain reproduces the final clause exactly.
  if (opts_.minimize_learnt) {
    for (Lit l : out_learnt) present_[var(l)] = 1;
    std::size_t i, j;
    for (i = j = 1; i < out_learnt.size(); ++i) {
      const Lit l = out_learnt[i];
      if (lit_redundant(l, out_steps, dropped0, to_clear)) {
        present_[var(l)] = 0;
      } else {
        out_learnt[j++] = l;
      }
    }
    out_learnt.resize(j);
    for (Lit l : out_learnt) present_[var(l)] = 0;
  }

  // Find the backtrack level and place its literal at index 1.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level_[var(out_learnt[k])] > level_[var(out_learnt[max_i])]) max_i = k;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[var(out_learnt[1])];
  }

  for (Lit l : to_clear) seen_[var(l)] = 0;
  seen_[var(out_learnt[0])] = 0;
}

void Solver::analyze_final(Lit p, LitVec& out_core) {
  // p is the failing assumption (currently false). The core is a subset of
  // assumptions, in assumed polarity, inconsistent with the clauses.
  out_core.clear();
  out_core.push_back(p);
  if (decision_level() == 0) return;

  seen_[var(p)] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[0]; --i) {
    const Var x = var(trail_[i]);
    if (!seen_[x]) continue;
    if (reason_[x] == kCRefUndef) {
      STEP_CHECK(level_[x] > 0);
      out_core.push_back(trail_[i]);
    } else {
      const Clause& c = arena_[reason_[x]];
      for (std::uint32_t k = 1; k < c.size(); ++k) {
        if (level_[var(c[k])] > 0) seen_[var(c[k])] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[var(p)] = 0;
}

void Solver::reduce_db() {
  STEP_CHECK(!opts_.proof_logging);
  ++stats_.db_reductions;
  // Keep the most active half; never remove clauses locked as reasons.
  std::sort(learnts_.begin(), learnts_.end(), [&](CRef a, CRef b) {
    return arena_[a].activity() < arena_[b].activity();
  });
  auto locked = [&](CRef cr) {
    const Clause& c = arena_[cr];
    return reason_[var(c[0])] == cr && value(c[0]) == Lbool::kTrue;
  };
  std::size_t i, j;
  const std::size_t half = learnts_.size() / 2;
  for (i = j = 0; i < learnts_.size(); ++i) {
    if (i < half && !locked(learnts_[i])) {
      detach_clause(learnts_[i]);
    } else {
      learnts_[j++] = learnts_[i];
    }
  }
  learnts_.resize(j);
}

Result Solver::search(std::int64_t nof_conflicts, const Deadline* deadline) {
  int conflict_c = 0;
  LitVec learnt, dropped0;
  std::vector<ProofStep> steps;

  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflict_c;
      if (decision_level() == 0) {
        if (opts_.proof_logging) {
          const Clause& c = arena_[confl];
          LitVec cl(c.lits().begin(), c.lits().end());
          std::vector<ProofStep> fsteps;
          resolve_level0(cl, fsteps);
          proof_.set_empty_clause(
              proof_.add_derived(c.proof_id(), std::move(fsteps)));
        }
        ok_ = false;
        return Result::kUnsat;
      }

      int btlevel = 0;
      ProofId start = kProofIdUndef;
      analyze(confl, learnt, btlevel, start, steps, dropped0);
      ProofId pid = kProofIdUndef;
      if (opts_.proof_logging) {
        if (!dropped0.empty()) resolve_level0(dropped0, steps);
        pid = proof_.add_derived(start, steps);
      }
      cancel_until(btlevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kCRefUndef);
        if (opts_.proof_logging) level0_unit_id_[var(learnt[0])] = pid;
      } else {
        const CRef cr = arena_.alloc(learnt, /*learnt=*/true);
        Clause& c = arena_[cr];
        if (opts_.proof_logging) c.set_proof_id(pid);
        learnts_.push_back(cr);
        attach_clause(cr);
        bump_clause(c);
        enqueue(learnt[0], cr);
      }
      ++stats_.learnt;
      decay_var_activity();
      decay_clause_activity();

      if ((conflict_c & 0xf) == 0 && deadline && deadline->expired()) {
        cancel_until(0);
        return Result::kUnknown;
      }
    } else {
      if (nof_conflicts >= 0 && conflict_c >= nof_conflicts) {
        ++stats_.restarts;
        cancel_until(0);
        return Result::kUnknown;
      }
      if (!opts_.proof_logging &&
          static_cast<double>(learnts_.size()) - trail_.size() >= max_learnts_) {
        reduce_db();
      }

      Lit next = kLitUndef;
      while (decision_level() < static_cast<int>(assumptions_.size())) {
        const Lit a = assumptions_[decision_level()];
        if (value(a) == Lbool::kTrue) {
          new_decision_level();  // dummy level keeps the invariant simple
        } else if (value(a) == Lbool::kFalse) {
          analyze_final(a, conflict_core_);
          return Result::kUnsat;
        } else {
          next = a;
          break;
        }
      }
      if (next == kLitUndef) {
        next = pick_branch_lit();
        if (next == kLitUndef) {
          model_.assign(assigns_.begin(), assigns_.end());
          return Result::kSat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, kCRefUndef);
    }
  }
}

Result Solver::solve(std::span<const Lit> assumptions) {
  return solve_limited(assumptions, -1, nullptr);
}

Result Solver::solve_limited(std::span<const Lit> assumptions,
                             std::int64_t conflict_budget,
                             const Deadline* deadline) {
  conflict_core_.clear();
  if (!ok_) return Result::kUnsat;
  if (deadline != nullptr && deadline->expired()) return Result::kUnknown;
  assumptions_.assign(assumptions.begin(), assumptions.end());

  max_learnts_ = std::max(opts_.max_learnts_floor,
                          static_cast<double>(clauses_.size()) * 2.0);
  const std::uint64_t conflicts_at_start = stats_.conflicts;
  Result status = Result::kUnknown;
  for (int curr_restarts = 0; status == Result::kUnknown; ++curr_restarts) {
    std::int64_t budget =
        static_cast<std::int64_t>(luby(2.0, curr_restarts) * opts_.restart_base);
    if (conflict_budget >= 0) {
      const std::int64_t used =
          static_cast<std::int64_t>(stats_.conflicts - conflicts_at_start);
      if (used >= conflict_budget) break;
      budget = std::min(budget, conflict_budget - used);
    }
    status = search(budget, deadline);
    if (deadline && deadline->expired()) break;
  }
  cancel_until(0);
  return status;
}

}  // namespace step::sat
