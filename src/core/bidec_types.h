#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "aig/aig.h"
#include "common/check.h"
#include "core/outcome.h"

namespace step::core {

/// The two-input gate at the top of the decomposition
/// f(X) = fA(XA,XC) <OP> fB(XB,XC).
enum class GateOp : std::uint8_t { kOr, kAnd, kXor };

inline const char* to_string(GateOp op) {
  switch (op) {
    case GateOp::kOr: return "OR";
    case GateOp::kAnd: return "AND";
    case GateOp::kXor: return "XOR";
  }
  return "?";
}

/// Class of a support variable in the partition X = {XA | XB | XC}.
enum class VarClass : std::uint8_t { kA, kB, kC };

/// A variable partition over the support of the function under
/// decomposition; `cls[i]` classifies support position i.
struct Partition {
  std::vector<VarClass> cls;

  int size() const { return static_cast<int>(cls.size()); }

  int count(VarClass c) const {
    int k = 0;
    for (VarClass x : cls) {
      if (x == c) ++k;
    }
    return k;
  }

  int num_a() const { return count(VarClass::kA); }
  int num_b() const { return count(VarClass::kB); }
  int num_c() const { return count(VarClass::kC); }

  /// Non-trivial: both XA and XB are non-empty (Section II.A).
  bool non_trivial() const { return num_a() > 0 && num_b() > 0; }

  bool operator==(const Partition&) const = default;

  /// "xA xB xC xA ..." rendering for logs and examples.
  std::string to_string() const {
    std::string s;
    for (VarClass c : cls) {
      s += (c == VarClass::kA ? 'A' : c == VarClass::kB ? 'B' : 'C');
    }
    return s;
  }
};

/// Relative quality metrics of a partition (Definitions 2 and 3).
/// Integer numerators are kept so comparisons between engines are exact.
struct Metrics {
  int n = 0;          ///< ||X||
  int shared = 0;     ///< ||XC||
  int imbalance = 0;  ///< | ||XA|| − ||XB|| |

  static Metrics of(const Partition& p) {
    Metrics m;
    m.n = p.size();
    m.shared = p.num_c();
    m.imbalance = std::abs(p.num_a() - p.num_b());
    return m;
  }

  double disjointness() const { return n == 0 ? 0.0 : static_cast<double>(shared) / n; }
  double balancedness() const { return n == 0 ? 0.0 : static_cast<double>(imbalance) / n; }
  double sum() const { return disjointness() + balancedness(); }

  /// Integer cost used by the QDB model: ||XC|| + | ||XA||−||XB|| |
  /// (eq. (8) with weights 1/1).
  int combined_cost() const { return shared + imbalance; }
};

/// Single-output function prepared for decomposition: an AIG whose inputs
/// are exactly the support of `root` (so support positions == input
/// indices). Produced from circuit POs by extract_po_cone().
struct Cone {
  aig::Aig aig;
  aig::Lit root = aig::kLitFalse;

  int n() const { return static_cast<int>(aig.num_inputs()); }
};

/// Outcome of a heuristic partition search (LJH, MG).
struct PartitionSearchResult {
  bool found = false;
  Partition partition;
  /// True when the search exhausted the seed space, which proves
  /// non-decomposability whenever found == false.
  bool exhausted = false;
  /// True when a budget cut the search short: a validity check came
  /// back unknown or the wall budget expired. Mutually exclusive with
  /// `exhausted` — a timed-out search proves nothing. Any partition still
  /// reported alongside was validated *before* the timeout.
  bool timed_out = false;
  /// What cut the search short when `timed_out` (deadline cause or
  /// conflict cap, via reason_of_unknown); kOk otherwise.
  OutcomeReason reason = OutcomeReason::kOk;
  int sat_calls = 0;
};

}  // namespace step::core
