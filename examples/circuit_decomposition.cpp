// Circuit-level decomposition: the per-PO loop the paper's experiments run.
//
// Reads a BLIF circuit (or uses the embedded ISCAS'85 C17 when no path is
// given), converts sequential circuits to combinational form (ABC `comb`),
// and decomposes every PO with a chosen engine, printing a per-PO report
// and circuit totals.
//
//   $ ./circuit_decomposition [circuit.blif] [or|and|xor] [ljh|mg|qd|qb|qdb]

#include <cstdio>
#include <cstring>
#include <string>

#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "io/blif_reader.h"
#include "io/comb.h"

namespace {

step::core::Engine parse_engine(const char* s) {
  using step::core::Engine;
  if (std::strcmp(s, "ljh") == 0) return Engine::kLjh;
  if (std::strcmp(s, "mg") == 0) return Engine::kMg;
  if (std::strcmp(s, "qb") == 0) return Engine::kQbfBalanced;
  if (std::strcmp(s, "qdb") == 0) return Engine::kQbfCombined;
  return Engine::kQbfDisjoint;
}

step::core::GateOp parse_op(const char* s) {
  using step::core::GateOp;
  if (std::strcmp(s, "and") == 0) return GateOp::kAnd;
  if (std::strcmp(s, "xor") == 0) return GateOp::kXor;
  return GateOp::kOr;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace step;

  io::Network net = argc > 1 ? io::read_blif_file(argv[1])
                             : io::parse_blif(benchgen::embedded_c17_blif());
  const core::GateOp op = parse_op(argc > 2 ? argv[2] : "or");
  const core::Engine engine = parse_engine(argc > 3 ? argv[3] : "qd");

  if (!net.is_combinational()) {
    std::printf("# sequential circuit: cutting %zu latches (comb)\n",
                net.latches.size());
  }
  const aig::Aig circuit = io::to_combinational(net);
  std::printf("circuit %s: %u inputs, %u outputs, %u AND gates\n",
              net.name.c_str(), circuit.num_inputs(), circuit.num_outputs(),
              circuit.num_ands());

  core::DecomposeOptions opts;
  opts.op = op;
  opts.engine = engine;
  const core::CircuitRunResult run =
      core::run_circuit(circuit, net.name, opts, /*circuit_budget_s=*/60.0);

  std::printf("%-6s %-18s %8s %6s %7s %7s %7s %9s\n", "po", "name", "support",
              "status", "eD", "eB", "optimal", "cpu(s)");
  for (const core::PoOutcome& po : run.pos) {
    const char* status =
        po.status == core::DecomposeStatus::kDecomposed
            ? "dec"
            : po.status == core::DecomposeStatus::kNotDecomposable ? "no"
                                                                   : "t/o";
    std::printf("%-6d %-18s %8d %6s", po.po_index,
                circuit.output_name(po.po_index).c_str(), po.support, status);
    if (po.status == core::DecomposeStatus::kDecomposed) {
      std::printf(" %7.3f %7.3f %7s", po.metrics.disjointness(),
                  po.metrics.balancedness(), po.proven_optimal ? "yes" : "-");
    } else {
      std::printf(" %7s %7s %7s", "-", "-", "-");
    }
    std::printf(" %9.3f\n", po.cpu_s);
  }
  std::printf("\n%s %s: decomposed %d of %zu candidate POs in %.2f s\n",
              core::to_string(engine), core::to_string(op),
              run.num_decomposed(), run.pos.size(), run.total_cpu_s);
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
