// Edge cases of the bound search and of the decomposition drivers:
// budget exhaustion, degenerate schedules, bootstrap interactions.

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "core/circuit_driver.h"
#include "core/mg.h"
#include "core/optimum.h"
#include "core/partition_check.h"
#include "test_util.h"

namespace step::core {
namespace {

RelaxationMatrix matrix_for(const Cone& cone, GateOp op = GateOp::kOr) {
  return build_relaxation_matrix(cone, op);
}

TEST(OptimumEdge, ZeroBudgetGivesUnknownWithoutBootstrap) {
  const Cone cone = testutil::random_cone(5, 14, 99);
  const RelaxationMatrix m = matrix_for(cone);
  QbfPartitionFinder finder(m);
  OptimumOptions o;
  o.call_timeout_s = 1e-9;  // every query times out
  OptimumSearch search(finder, QbfModel::kQD, o);
  const OptimumResult r = search.run(std::nullopt);
  EXPECT_EQ(r.outcome, OptimumResult::Outcome::kUnknown);
  EXPECT_GT(r.timeouts, 0);
}

TEST(OptimumEdge, ZeroBudgetKeepsBootstrapResult) {
  // With a bootstrap partition, even total QBF starvation must return the
  // bootstrap as a (non-proven) result — the paper's "never worse than
  // STEP-MG" guarantee.
  const Cone cone = testutil::random_cone(5, 14, 1234);
  const RelaxationMatrix m = matrix_for(cone);
  RelaxationSolver rs(m);
  MgDecomposer mg(rs);
  const PartitionSearchResult boot = mg.find_partition();
  if (!boot.found) GTEST_SKIP() << "cone not decomposable";

  QbfPartitionFinder finder(m);
  OptimumOptions o;
  o.call_timeout_s = 1e-9;
  OptimumSearch search(finder, QbfModel::kQD, o);
  const OptimumResult r = search.run(boot.partition);
  ASSERT_EQ(r.outcome, OptimumResult::Outcome::kFound);
  EXPECT_EQ(r.best, boot.partition);
  const int boot_cost =
      metric_cost(Metrics::of(boot.partition), MetricKind::kDisjointness);
  if (boot_cost == 0) {
    // Nothing below cost 0 to refute: optimal by definition, no calls.
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.qbf_calls, 0);
  } else {
    EXPECT_FALSE(r.proven_optimal);
  }
}

TEST(OptimumEdge, AlreadyOptimalBootstrapProvenInOneCall) {
  // Parity XOR-decomposes with |XC| = 0; bootstrap cost 0 means there is
  // nothing below to refute: proven optimal without any QBF call.
  Cone cone;
  std::vector<aig::Lit> xs;
  for (int i = 0; i < 4; ++i) xs.push_back(cone.aig.add_input());
  cone.root = cone.aig.lxor_many(xs);
  const RelaxationMatrix m = matrix_for(cone, GateOp::kXor);

  Partition boot;
  boot.cls = {VarClass::kA, VarClass::kA, VarClass::kB, VarClass::kB};
  ASSERT_TRUE(check_partition_exhaustive(cone, GateOp::kXor, boot));

  QbfPartitionFinder finder(m);
  OptimumSearch search(finder, QbfModel::kQD);
  const OptimumResult r = search.run(boot);
  ASSERT_EQ(r.outcome, OptimumResult::Outcome::kFound);
  EXPECT_EQ(r.best_cost, 0);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_EQ(r.qbf_calls, 0);
}

TEST(OptimumEdge, SingleStageSchedulesTerminate) {
  const Cone cone = testutil::random_cone(4, 12, 777);
  const RelaxationMatrix m = matrix_for(cone);
  for (SearchStrategy st :
       {SearchStrategy::kMonotoneIncreasing, SearchStrategy::kMonotoneDecreasing,
        SearchStrategy::kBinary}) {
    QbfPartitionFinder finder(m);
    OptimumOptions o;
    o.schedule = {{st, -1}};
    OptimumSearch search(finder, QbfModel::kQDB, o);
    const OptimumResult r = search.run(std::nullopt);
    EXPECT_NE(r.outcome, OptimumResult::Outcome::kUnknown);
  }
}

TEST(OptimumEdge, CappedStagesFallThrough) {
  // A schedule whose stages all cap out must still return the best found.
  const Cone cone = testutil::random_cone(5, 16, 31415);
  const RelaxationMatrix m = matrix_for(cone);
  QbfPartitionFinder finder(m);
  OptimumOptions o;
  o.schedule = {{SearchStrategy::kMonotoneDecreasing, 1},
                {SearchStrategy::kBinary, 1}};
  OptimumSearch search(finder, QbfModel::kQD, o);
  const OptimumResult r = search.run(std::nullopt);
  if (r.outcome == OptimumResult::Outcome::kFound) {
    EXPECT_TRUE(check_partition_exhaustive(cone, GateOp::kOr, r.best));
  }
}

TEST(DriverEdge, CircuitBudgetExhaustionIsReported) {
  const aig::Aig circ = benchgen::merge(
      {benchgen::random_sop(5, 5, 2, 10, 5, 0xdead), benchgen::mux_tree(3)});
  DecomposeOptions opts;
  opts.engine = Engine::kQbfCombined;
  const CircuitRunResult r = run_circuit(circ, "tight", opts, 1e-9);
  EXPECT_TRUE(r.hit_circuit_budget);
  for (const PoOutcome& po : r.pos) {
    EXPECT_EQ(po.status, DecomposeStatus::kUnknown);
  }
}

TEST(DriverEdge, ExtractionDisabledSkipsFunctions) {
  const Cone cone = testutil::random_cone(4, 12, 55);
  DecomposeOptions opts;
  opts.engine = Engine::kMg;
  opts.extract = false;
  const DecomposeResult r = BiDecomposer(opts).decompose(cone);
  if (r.status == DecomposeStatus::kDecomposed) {
    EXPECT_FALSE(r.functions.has_value());
    EXPECT_FALSE(r.verified);
  }
}

TEST(DriverEdge, QualityComparisonSkipsUndecomposedPos) {
  // Compare runs where one engine timed out on everything.
  const aig::Aig circ = benchgen::random_sop(3, 3, 1, 4, 3, 0xf00);
  DecomposeOptions ok;
  ok.engine = Engine::kMg;
  const CircuitRunResult good = run_circuit(circ, "c", ok, 30.0);
  const CircuitRunResult starved = run_circuit(circ, "c", ok, 1e-9);
  const QualityComparison cmp =
      compare_quality(good, starved, MetricKind::kDisjointness);
  EXPECT_EQ(cmp.considered, 0);
  EXPECT_EQ(cmp.better_pct(), 0.0);
}

}  // namespace
}  // namespace step::core
