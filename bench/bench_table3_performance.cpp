// Reproduces Table III: "Performance data for OR bi-decomposition" —
// #Dec (functions decomposed) and CPU seconds per circuit for
// LJH, STEP-MG and STEP-{QD,QB,QDB}.

#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace step;
  using core::Engine;

  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  const auto par = bench::parallel_from_env_or_args(argc, argv);
  bench::print_preamble("Table III: performance data for OR bi-decomposition",
                        scale);
  std::printf("# threads per circuit: %d (-j N or STEP_BENCH_THREADS)\n",
              par.num_threads);

  const Engine engines[] = {Engine::kLjh, Engine::kMg, Engine::kQbfDisjoint,
                            Engine::kQbfBalanced, Engine::kQbfCombined};

  std::printf("%-10s %-10s %5s %5s |", "Circuit", "(standin)", "#In", "#InM");
  for (Engine e : engines) {
    std::printf(" %8s %9s |", core::to_string(e), "CPU(s)");
  }
  std::printf("\n");

  double totals[5] = {};
  int dec_totals[5] = {};
  for (const benchgen::BenchCircuit& c : suite) {
    std::printf("%-10s %-10s %5u", c.name.c_str(), c.standin_for.c_str(),
                c.aig.num_inputs());
    bool first = true;
    for (int e = 0; e < 5; ++e) {
      const core::CircuitRunResult r = core::run_circuit(
          c.aig, c.name, bench::engine_options(engines[e], core::GateOp::kOr, budgets),
          budgets.circuit_s, par);
      if (first) {
        std::printf(" %5d |", r.max_support());
        first = false;
      }
      std::printf(" %4d/%-3zu %9.2f |", r.num_decomposed(), r.pos.size(),
                  r.total_cpu_s);
      totals[e] += r.total_cpu_s;
      dec_totals[e] += r.num_decomposed();
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("%-33s", "TOTAL (#Dec / CPU s)");
  for (int e = 0; e < 5; ++e) std::printf(" %4d %11.2f |", dec_totals[e], totals[e]);
  std::printf("\n");
  std::printf(
      "# shape check (paper): #Dec(Q*) == #Dec(MG) >= #Dec(LJH);"
      " CPU: MG < QB < QD < QDB among STEP engines; LJH slowest on most\n"
      "# circuits (the paper, like us, has QDB overtake LJH on some rows,"
      " e.g. s38584.1)\n");
  return 0;
}
