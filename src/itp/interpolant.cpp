#include "itp/interpolant.h"

#include "common/check.h"
#include "sat/proof.h"

namespace step::itp {

aig::Lit build_interpolant(const sat::Solver& solver, aig::Aig& dst,
                           const std::vector<aig::Lit>& shared_map) {
  const sat::Proof& proof = solver.proof();
  const sat::ProofId empty_id = proof.empty_clause();
  STEP_CHECK(empty_id != sat::kProofIdUndef);

  // Variable occurrence classes from *all* leaves (the full A/B clause
  // sets define locality, not just the clauses the refutation touches).
  std::vector<char> in_b(solver.num_vars(), 0);
  for (sat::ProofId i = 0; i < proof.size(); ++i) {
    const sat::ProofNode& n = proof.node(i);
    if (!n.is_leaf() || n.tag != kTagB) continue;
    for (sat::Lit l : n.base_lits) in_b[sat::var(l)] = 1;
  }

  // Mark the sub-DAG feeding the empty clause.
  std::vector<char> needed(empty_id + 1, 0);
  needed[empty_id] = 1;
  for (sat::ProofId i = empty_id + 1; i-- > 0;) {
    if (!needed[i]) continue;
    const sat::ProofNode& n = proof.node(i);
    if (n.is_leaf()) continue;
    needed[n.start] = 1;
    for (const sat::ProofStep& s : n.steps) needed[s.antecedent] = 1;
  }

  // Forward replay with the McMillan rules.
  std::vector<aig::Lit> itp(empty_id + 1, aig::kLitInvalid);
  for (sat::ProofId i = 0; i <= empty_id; ++i) {
    if (!needed[i]) continue;
    const sat::ProofNode& n = proof.node(i);
    if (n.is_leaf()) {
      if (n.tag == kTagB) {
        itp[i] = aig::kLitTrue;
      } else {
        STEP_CHECK(n.tag == kTagA);
        std::vector<aig::Lit> global;
        for (sat::Lit l : n.base_lits) {
          const sat::Var v = sat::var(l);
          if (!in_b[v]) continue;
          STEP_CHECK(v < static_cast<sat::Var>(shared_map.size()));
          STEP_CHECK(shared_map[v] != aig::kLitInvalid);
          global.push_back(sat::sign(l) ? aig::lnot(shared_map[v])
                                        : shared_map[v]);
        }
        itp[i] = dst.lor_many(global);
      }
    } else {
      aig::Lit cur = itp[n.start];
      STEP_CHECK(cur != aig::kLitInvalid);
      for (const sat::ProofStep& s : n.steps) {
        const aig::Lit other = itp[s.antecedent];
        STEP_CHECK(other != aig::kLitInvalid);
        cur = in_b[s.pivot] ? dst.land(cur, other) : dst.lor(cur, other);
      }
      itp[i] = cur;
    }
  }
  return itp[empty_id];
}

}  // namespace step::itp
