#include "core/synthesis.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "sat/solver.h"
#include "test_util.h"

namespace step::core {
namespace {

using testutil::circuits_equivalent;

SynthesisOptions fast_opts() {
  SynthesisOptions o;
  o.engine = Engine::kMg;  // fast heuristic partitions for tests
  return o;
}

TEST(Synthesis, PreservesFunctionOnSop) {
  const aig::Aig circ = benchgen::random_sop(4, 4, 2, 5, 4, 0xfeed);
  const SynthesisResult r = resynthesize(circ, fast_opts());
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
  EXPECT_GT(r.stats.decompositions, 0);
  EXPECT_EQ(r.stats.pos_processed, 5);
}

TEST(Synthesis, PreservesFunctionOnMux) {
  const aig::Aig circ = benchgen::mux_tree(3);
  const SynthesisResult r = resynthesize(circ, fast_opts());
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
}

TEST(Synthesis, PreservesFunctionOnAdder) {
  const aig::Aig circ = benchgen::ripple_adder(4);
  const SynthesisResult r = resynthesize(circ, fast_opts());
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
  // Sum bits are XOR-decomposable: some decompositions must happen.
  EXPECT_GT(r.stats.decompositions, 0);
}

TEST(Synthesis, ParityBecomesXorTree) {
  const aig::Aig circ = benchgen::parity_tree(8);
  SynthesisOptions o = fast_opts();
  const SynthesisResult r = resynthesize(circ, o);
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
  // Parity of 8 decomposes all the way down: 7 XOR gates, no leaves with
  // support above the threshold.
  EXPECT_EQ(r.stats.undecomposable, 0);
  EXPECT_GE(r.stats.decompositions, 3);
}

TEST(Synthesis, UndecomposableLeavesAreCopied) {
  // maj3 has no non-trivial bi-decomposition for any op: it must be
  // emitted as a leaf and still be correct.
  aig::Aig circ;
  const aig::Lit x = circ.add_input("x");
  const aig::Lit y = circ.add_input("y");
  const aig::Lit z = circ.add_input("z");
  circ.add_output(circ.lor(circ.lor(circ.land(x, y), circ.land(x, z)),
                           circ.land(y, z)),
                  "maj");
  const SynthesisResult r = resynthesize(circ, fast_opts());
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
  EXPECT_EQ(r.stats.undecomposable, 1);
  EXPECT_EQ(r.stats.decompositions, 0);
}

TEST(Synthesis, QbfEngineBalancedTreesAreShallower) {
  // With QDB partitions the resulting gate tree of a wide OR chain should
  // be no deeper than the input's linear chain.
  aig::Aig circ;
  std::vector<aig::Lit> xs;
  for (int i = 0; i < 12; ++i) xs.push_back(circ.add_input());
  aig::Lit chain = aig::kLitFalse;
  for (aig::Lit l : xs) chain = circ.lor(chain, l);  // depth ~12
  circ.add_output(chain, "or12");

  SynthesisOptions o;
  o.engine = Engine::kQbfCombined;
  o.per_node.optimum.call_timeout_s = 5.0;
  const SynthesisResult r = resynthesize(circ, o);
  EXPECT_TRUE(circuits_equivalent(circ, r.network));
  EXPECT_LT(r.stats.depth_after, r.stats.depth_before);
}

class SynthesisRandom : public ::testing::TestWithParam<int> {};

TEST_P(SynthesisRandom, RandomConesStayEquivalent) {
  Rng rng(GetParam() * 3571 + 77);
  for (int iter = 0; iter < 6; ++iter) {
    aig::Aig circ;
    std::vector<aig::Lit> pool;
    const int n = rng.next_int(3, 7);
    for (int i = 0; i < n; ++i) pool.push_back(circ.add_input());
    for (int g = 0; g < rng.next_int(5, 25); ++g) {
      const aig::Lit f0 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const aig::Lit f1 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(circ.land(f0, f1));
    }
    for (int o = 0; o < 3; ++o) {
      circ.add_output(pool[pool.size() - 1 - o]);
    }
    const SynthesisResult r = resynthesize(circ, fast_opts());
    EXPECT_TRUE(circuits_equivalent(circ, r.network))
        << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisRandom, ::testing::Range(0, 6));

TEST(ConeDepth, CountsAndLevels) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const aig::Lit y = a.add_input();
  const aig::Lit z = a.add_input();
  EXPECT_EQ(cone_depth(a, x), 0);
  const aig::Lit g1 = a.land(x, y);
  const aig::Lit g2 = a.land(g1, z);
  EXPECT_EQ(cone_depth(a, g1), 1);
  EXPECT_EQ(cone_depth(a, g2), 2);
  EXPECT_EQ(cone_depth(a, aig::kLitTrue), 0);
}

}  // namespace
}  // namespace step::core
