#pragma once

#include <vector>

#include "core/decomposer.h"

namespace step::core {

/// Recursive bi-decomposition synthesis — the application that motivates
/// bi-decomposition in the paper's introduction (multi-level logic
/// synthesis / FPGA mapping): each PO function is rewritten as a tree of
/// two-input OR/AND/XOR gates by decomposing recursively until cones are
/// trivial or undecomposable. Because a non-trivial partition keeps
/// |XA ∪ XC| and |XB ∪ XC| strictly below |X|, the recursion terminates.
///
/// Partition quality drives the structure: disjoint partitions (QD/QDB)
/// reduce fanout sharing between the branches, balanced partitions
/// (QB/QDB) keep the gate tree shallow — which is precisely the paper's
/// argument for optimising εD and εB.
struct SynthesisOptions {
  /// Partition engine used at every recursion node.
  Engine engine = Engine::kQbfCombined;
  /// Gates tried at each node, in preference order.
  std::vector<GateOp> ops = {GateOp::kOr, GateOp::kAnd, GateOp::kXor};
  /// Try every op and keep the one whose partition has the smallest
  /// combined cost (|XC| + imbalance) instead of taking the first success.
  bool pick_best_op = false;
  /// Stop recursing below this support size (a 2-input function is a gate).
  int leaf_support = 2;
  /// Hard recursion depth cap (safety; the support shrink bounds it too).
  int max_depth = 32;
  /// Per-decomposition options (budgets etc.).
  DecomposeOptions per_node;
};

struct SynthesisStats {
  int pos_processed = 0;
  int decompositions = 0;    ///< gates introduced by bi-decomposition
  int leaves = 0;            ///< cones emitted verbatim
  int undecomposable = 0;    ///< leaves forced by failed decomposition
  std::uint32_t ands_before = 0, ands_after = 0;
  int depth_before = 0, depth_after = 0;
};

struct SynthesisResult {
  aig::Aig network;  ///< same PIs/POs as the input circuit
  SynthesisStats stats;
};

/// Rewrites every PO of `circuit` by recursive bi-decomposition.
/// The result is functionally equivalent (tests verify by miter).
SynthesisResult resynthesize(const aig::Aig& circuit,
                             const SynthesisOptions& opts = {});

/// Longest path (in AND gates) from any input to `root`.
int cone_depth(const aig::Aig& a, aig::Lit root);

}  // namespace step::core
