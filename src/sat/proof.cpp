#include "sat/proof.h"

#include <algorithm>

#include "common/check.h"

namespace step::sat {

namespace {

/// Set representation of a clause during replay: sorted unique literals.
void normalize(LitVec& lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
}

/// Resolve `cur` with `other` on `pivot`, in place.
void resolve(LitVec& cur, const LitVec& other, Var pivot) {
  const Lit pos = mk_lit(pivot, false);
  const Lit neg = mk_lit(pivot, true);
  cur.erase(std::remove_if(cur.begin(), cur.end(),
                           [&](Lit l) { return l == pos || l == neg; }),
            cur.end());
  for (Lit l : other) {
    if (l == pos || l == neg) continue;
    cur.push_back(l);
  }
  normalize(cur);
}

}  // namespace

LitVec Proof::replay_clause(ProofId id) const {
  // Iterative replay with memoization over the sub-DAG reachable from id.
  // Nodes are topologically ordered, so a forward sweep over the ids that
  // are actually needed suffices.
  std::vector<char> needed(id + 1, 0);
  needed[id] = 1;
  for (ProofId i = id + 1; i-- > 0;) {
    if (!needed[i]) continue;
    const ProofNode& n = nodes_[i];
    if (n.is_leaf()) continue;
    STEP_CHECK(n.start < i);
    needed[n.start] = 1;
    for (const ProofStep& s : n.steps) {
      STEP_CHECK(s.antecedent < i);
      needed[s.antecedent] = 1;
    }
  }

  std::vector<LitVec> memo(id + 1);
  for (ProofId i = 0; i <= id; ++i) {
    if (!needed[i]) continue;
    const ProofNode& n = nodes_[i];
    if (n.is_leaf()) {
      memo[i] = n.base_lits;
      normalize(memo[i]);
    } else {
      LitVec cur = memo[n.start];
      for (const ProofStep& s : n.steps) {
        resolve(cur, memo[s.antecedent], s.pivot);
      }
      memo[i] = std::move(cur);
    }
  }
  return memo[id];
}

}  // namespace step::sat
