#include "sat/probing.h"

#include <cstdio>
#include <cstdlib>

#include "sat/solver.h"

#define PREP_DBG (std::getenv("STEP_DEBUG_PREP") != nullptr)

namespace step::sat {

/// True iff the binary clause (a ∨ b) is already in the database.
/// Clauses (a ∨ b) are listed in bin_watches_[index(~a)] as {other = b}.
bool Prober::has_binary(Lit a, Lit b) const {
  for (const auto& w : s_.bin_watches_[index(~a)]) {
    if (w.other == b) return true;
  }
  return false;
}

void Prober::run() {
  STEP_CHECK(s_.decision_level() == 0);
  budget_ = s_.opts_.probe_budget;
  // Probe backtracking runs through the ordinary phase-saving path;
  // restore the saved phases afterwards so probes cannot override user
  // polarity hints or the phases real search converged on.
  const std::vector<char> saved_polarity(s_.polarity_);
  const int nv = s_.num_vars();
  for (Var v = 0; v < nv && budget_ > 0 && s_.ok_; ++v) {
    if (s_.value(v) != Lbool::kUndef || s_.var_state_[v] != 0) continue;
    for (const bool neg : {false, true}) {
      const Lit l = mk_lit(v, neg);
      // Nothing watches ¬l: assuming l cannot propagate anything.
      if (s_.bin_watches_[index(l)].empty() && s_.watches_[index(l)].empty()) {
        continue;
      }
      if (!probe(l) || !s_.ok_) break;
      if (s_.value(v) != Lbool::kUndef) break;  // became a failed literal
    }
  }
  s_.polarity_ = saved_polarity;
  if (s_.ok_) transitive_reduction();
}

bool Prober::probe(Lit l) {
  const std::size_t root = s_.trail_.size();
  s_.new_decision_level();
  s_.enqueue(l, kCRefUndef);
  const CRef confl = s_.propagate();
  budget_ -= static_cast<std::int64_t>(s_.trail_.size() - root) + 1;

  if (confl != kCRefUndef) {
    s_.cancel_until(0);
    ++s_.stats_.failed_literals;
    if (PREP_DBG) {
      std::fprintf(stderr, "probe: failed literal %s%d\n", sign(l) ? "-" : "",
                   var(l) + 1);
    }
    // l leads to a conflict by unit propagation alone, so {¬l} is RUP.
    const Lit unit = ~l;
    if (s_.opts_.drat_logging) {
      s_.drat_.add(std::span<const Lit>(&unit, 1));
    }
    s_.enqueue(unit, kCRefUndef);
    if (s_.propagate() != kCRefUndef) {
      if (s_.opts_.drat_logging) s_.drat_.add({});
      s_.ok_ = false;
    }
    return budget_ > 0;
  }

  // Lazy hyper-binary resolution: any literal the probe forced through a
  // long clause is a direct binary consequence of l (the only decision on
  // the trail), and (¬l ∨ m) is RUP against the propagating clauses.
  LitVec hyper;
  for (std::size_t i = root + 1; i < s_.trail_.size() && budget_ > 0; ++i) {
    const Lit m = s_.trail_[i];
    const CRef r = s_.reason_[var(m)];
    if (r == kCRefUndef || s_.arena_[r].size() == 2) continue;
    budget_ -= static_cast<std::int64_t>(s_.bin_watches_[index(l)].size());
    if (has_binary(~l, m)) continue;
    hyper.push_back(m);
  }
  s_.cancel_until(0);
  for (const Lit m : hyper) {
    if (budget_ <= 0) break;
    const Lit bin[2] = {~l, m};
    if (s_.opts_.drat_logging) s_.drat_.add(std::span<const Lit>(bin, 2));
    const CRef cr = s_.arena_.alloc(std::span<const Lit>(bin, 2),
                                    /*learnt=*/false);
    s_.clauses_.push_back(cr);
    s_.attach_clause(cr);
    ++s_.stats_.hyper_binaries;
    if (PREP_DBG) {
      std::fprintf(stderr, "probe: hyper-binary (%s%d %s%d)\n",
                   sign(bin[0]) ? "-" : "", var(bin[0]) + 1,
                   sign(bin[1]) ? "-" : "", var(bin[1]) + 1);
    }
    budget_ -= 2;
  }
  return budget_ > 0;
}

/// Deletes problem binaries (a ∨ b) whose edge ¬a→b is reproduced by a
/// chain of *other* binary edges — a bounded BFS per clause, skipping the
/// clause under test. Deletion-only, so always proof- and model-safe.
void Prober::transitive_reduction() {
  seen_stamp_.assign(s_.bin_watches_.size(), 0);
  LitVec queue;
  const std::vector<CRef> snapshot(s_.clauses_);
  for (CRef cr : snapshot) {
    if (budget_ <= 0) return;
    Clause& c = s_.arena_[cr];
    if (c.removed() || c.size() != 2) continue;
    if (s_.value(c[0]) != Lbool::kUndef || s_.value(c[1]) != Lbool::kUndef) {
      continue;
    }
    const Lit from = ~c[0], target = c[1];
    // BFS from `from` over binary edges, never crossing cr itself.
    ++stamp_;
    queue.clear();
    queue.push_back(from);
    seen_stamp_[index(from)] = stamp_;
    bool reached = false;
    std::int64_t steps = 64;  // per-clause cap: TR is a cheap closing pass
    for (std::size_t qi = 0; qi < queue.size() && !reached && steps > 0;
         ++qi) {
      for (const auto& w : s_.bin_watches_[index(queue[qi])]) {
        --steps;
        --budget_;
        if (w.cref == cr) continue;
        if (w.other == target) {
          reached = true;
          break;
        }
        if (seen_stamp_[index(w.other)] != stamp_) {
          seen_stamp_[index(w.other)] = stamp_;
          queue.push_back(w.other);
        }
      }
    }
    if (reached) {
      if (PREP_DBG) {
        std::fprintf(stderr, "probe: TR delete (%s%d %s%d)\n",
                     sign(c[0]) ? "-" : "", var(c[0]) + 1,
                     sign(c[1]) ? "-" : "", var(c[1]) + 1);
      }
      s_.detach_clause(cr);
      s_.mark_removed(cr, /*learnt_list=*/false);
      ++s_.stats_.transitive_reductions;
    }
  }
}

}  // namespace step::sat
