#include "io/blif_writer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "io/io_error.h"

namespace step::io {

namespace {

std::string node_net(const aig::Aig& a, std::uint32_t node) {
  if (a.is_input(node)) return a.input_name(a.input_index(node));
  return "n" + std::to_string(node);
}

}  // namespace

std::string write_blif(const aig::Aig& a, const std::string& model_name) {
  std::ostringstream os;
  os << ".model " << model_name << '\n';
  os << ".inputs";
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) os << ' ' << a.input_name(i);
  os << '\n';
  os << ".outputs";
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) os << ' ' << a.output_name(i);
  os << '\n';

  // Emit only gates in the cones of outputs.
  std::vector<char> needed(a.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    stack.push_back(aig::node_of(a.output(i)));
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (needed[n]) continue;
    needed[n] = 1;
    if (a.is_and(n)) {
      stack.push_back(aig::node_of(a.fanin0(n)));
      stack.push_back(aig::node_of(a.fanin1(n)));
    }
  }

  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!needed[n] || !a.is_and(n)) continue;
    const aig::Lit f0 = a.fanin0(n);
    const aig::Lit f1 = a.fanin1(n);
    os << ".names " << node_net(a, aig::node_of(f0)) << ' '
       << node_net(a, aig::node_of(f1)) << ' ' << node_net(a, n) << '\n';
    os << (aig::is_complemented(f0) ? '0' : '1')
       << (aig::is_complemented(f1) ? '0' : '1') << " 1\n";
  }

  // Output buffers/inverters (also handles constant and input drivers).
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    const aig::Lit drv = a.output(i);
    const std::uint32_t n = aig::node_of(drv);
    if (a.is_const(n)) {
      os << ".names " << a.output_name(i) << '\n';
      if (aig::is_complemented(drv)) os << "1\n";  // constant true
      continue;
    }
    os << ".names " << node_net(a, n) << ' ' << a.output_name(i) << '\n';
    os << (aig::is_complemented(drv) ? "0 1\n" : "1 1\n");
  }
  os << ".end\n";
  return os.str();
}

void write_blif_file(const aig::Aig& a, const std::string& path,
                     const std::string& model_name) {
  std::ofstream out(path);
  if (!out) throw IoError("blif: cannot write '" + path + "'");
  out << write_blif(a, model_name);
  if (!out) throw IoError("blif: write failed for '" + path + "'");
}

}  // namespace step::io
