#include "core/ljh.h"

#include <utility>

#include "core/partition_check.h"

namespace step::core {

bool LjhDecomposer::check(const Partition& p, const Deadline* deadline,
                          sat::Result* status) {
  ++sat_calls_;
  if (opts_.incremental_sat) {
    if (incremental_ == nullptr) {
      incremental_ = std::make_unique<RelaxationSolver>(m_, sat_opts_);
    }
    return incremental_->is_valid(p, deadline, status);
  }
  // Faithful Bi-dec behaviour: a fresh CNF encoding per query.
  RelaxationSolver fresh(m_, sat_opts_);
  const bool valid = fresh.is_valid(p, deadline, status);
  retired_stats_ += fresh.solver().stats();
  return valid;
}

PartitionSearchResult LjhDecomposer::find_partition(const Deadline* deadline) {
  PartitionSearchResult result;
  const int n = m_.n;
  if (n < 2) {
    result.exhausted = true;
    return result;
  }
  auto out_of_time = [&] { return deadline != nullptr && deadline->expired(); };

  Partition seed;
  seed.cls.assign(n, VarClass::kC);

  int attempts = 0;
  int grown = 0;
  bool all_pairs_tried = true;
  bool timed_out = false;
  bool best_set = false;
  Partition best;
  std::pair<int, int> best_cost{0, 0};  // (shared, imbalance) lexicographic

  for (int j = 0; j < n && grown < opts_.max_grown_seeds && !timed_out; ++j) {
    for (int l = j + 1; l < n && grown < opts_.max_grown_seeds; ++l) {
      if (attempts >= opts_.max_seed_attempts) {
        all_pairs_tried = false;
        j = n;  // abandon both loops
        break;
      }
      if (out_of_time()) {
        timed_out = true;
        j = n;
        break;
      }
      ++attempts;
      seed.cls.assign(n, VarClass::kC);
      seed.cls[j] = VarClass::kA;
      seed.cls[l] = VarClass::kB;
      sat::Result status;
      if (!check(seed, deadline, &status)) {
        // A deadline-expired check proves nothing: treating it as
        // "invalid" would keep excluding seeds and could end in a bogus
        // exhaustiveness claim. Abort with the timeout status instead.
        if (status == sat::Result::kUnknown) {
          timed_out = true;
          j = n;
          break;
        }
        continue;
      }

      // Greedy growth: move shared variables into XA or XB while the
      // partition stays valid. Every move's validity check threads its
      // status: an unknown (deadline-expired) verdict must not demote the
      // move to "invalid" — the variable would be wrongly excluded and
      // the search would keep burning solver calls past the deadline.
      Partition p = seed;
      bool growth_timed_out = false;
      for (int v = 0; v < n; ++v) {
        if (p.cls[v] != VarClass::kC) continue;
        if (out_of_time()) {
          growth_timed_out = true;
          break;
        }
        sat::Result move_status;
        p.cls[v] = VarClass::kA;
        if (check(p, deadline, &move_status)) continue;
        if (move_status == sat::Result::kUnknown) {
          p.cls[v] = VarClass::kC;
          growth_timed_out = true;
          break;
        }
        p.cls[v] = VarClass::kB;
        if (check(p, deadline, &move_status)) continue;
        p.cls[v] = VarClass::kC;
        if (move_status == sat::Result::kUnknown) {
          growth_timed_out = true;
          break;
        }
      }

      // The partially grown partition is still valid (growth only ever
      // keeps validated moves), so it may compete for best.
      const Metrics m = Metrics::of(p);
      const std::pair<int, int> cost{m.shared, m.imbalance};
      if (!best_set || cost < best_cost) {
        best_set = true;
        best = p;
        best_cost = cost;
      }
      ++grown;
      if (growth_timed_out) {
        timed_out = true;
        j = n;
        break;
      }
    }
  }

  result.found = best_set;
  if (best_set) result.partition = std::move(best);
  result.timed_out = timed_out;
  if (timed_out) result.reason = reason_of_unknown(deadline);
  result.exhausted = all_pairs_tried && !best_set && !timed_out;
  result.sat_calls = sat_calls_;
  return result;
}

}  // namespace step::core
