#include "cnf/cnf.h"

// The sinks are header-only; this translation unit anchors the vtable.

namespace step::cnf {

// (intentionally empty)

}  // namespace step::cnf
