# Negative-compile check for the thread-safety contracts.
#
# Builds tests/negative/thread_safety_negative.cpp — which reads a
# STEP_GUARDED_BY field of core::DecCache without holding its mutex — and
# asserts that the build FAILS. This pins the whole chain: the annotation
# macros expand to real attributes, -Werror=thread-safety is live, and the
# cache's fields actually carry the guard. If any link silently degrades
# (macro gated off, flag dropped, annotation removed), the probe compiles
# and the test turns red.
#
# Clang-only: gcc expands the annotations to nothing, so the probe would
# (correctly) compile there.

if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  add_executable(thread_safety_negative EXCLUDE_FROM_ALL
    ${CMAKE_CURRENT_SOURCE_DIR}/tests/negative/thread_safety_negative.cpp)
  target_link_libraries(thread_safety_negative PRIVATE step_lib)

  add_test(NAME thread_safety_negative_compile
    COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
            --target thread_safety_negative)
  # The build must fail; a successful compile fails the test.
  set_tests_properties(thread_safety_negative_compile PROPERTIES
    WILL_FAIL TRUE
    TIMEOUT 300
    # Serial: drives the build tool inside the build tree, which must not
    # race a concurrent test-triggered rebuild.
    RUN_SERIAL TRUE)
endif()
