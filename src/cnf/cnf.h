#pragma once

#include <array>
#include <span>
#include <vector>

#include "sat/solver.h"
#include "sat/types.h"

namespace step::cnf {

/// Destination for generated clauses. Encoders (Tseitin, cardinality)
/// write through this interface so they can target a live SAT solver, a
/// clause list (tests, QBF abstraction snapshots), or both.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;
  virtual sat::Var new_var() = 0;
  virtual void add_clause(std::span<const sat::Lit> lits) = 0;
  /// Marks a variable as untouchable by preprocessing (it may appear in a
  /// later assumption). No-op for sinks without a live solver behind them.
  virtual void freeze(sat::Var) {}

  void add_unit(sat::Lit a) { add_clause(std::array{a}); }
  void add_binary(sat::Lit a, sat::Lit b) { add_clause(std::array{a, b}); }
  void add_ternary(sat::Lit a, sat::Lit b, sat::Lit c) {
    add_clause(std::array{a, b, c});
  }
};

/// Sink writing directly into a solver, tagging every clause with the
/// given interpolation partition tag.
class SolverSink final : public ClauseSink {
 public:
  explicit SolverSink(sat::Solver& solver, int proof_tag = 0)
      : solver_(solver), proof_tag_(proof_tag) {}

  sat::Var new_var() override { return solver_.new_var(); }
  void add_clause(std::span<const sat::Lit> lits) override {
    solver_.add_clause(lits, proof_tag_);
  }
  void freeze(sat::Var v) override { solver_.set_frozen(v); }

 private:
  sat::Solver& solver_;
  int proof_tag_;
};

/// Sink accumulating clauses in memory.
class VecSink final : public ClauseSink {
 public:
  /// `first_free_var` must be beyond every variable used by the caller.
  explicit VecSink(sat::Var first_free_var) : next_var_(first_free_var) {}

  sat::Var new_var() override { return next_var_++; }
  void add_clause(std::span<const sat::Lit> lits) override {
    clauses_.emplace_back(lits.begin(), lits.end());
  }

  const std::vector<sat::LitVec>& clauses() const { return clauses_; }
  sat::Var num_vars() const { return next_var_; }

 private:
  sat::Var next_var_;
  std::vector<sat::LitVec> clauses_;
};

}  // namespace step::cnf
