#include "core/portfolio.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <utility>

#include "aig/simulate.h"
#include "common/race.h"
#include "common/thread_annotations.h"

namespace step::core {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ProbeFeatures probe_cone(const Cone& cone, const PortfolioOptions& popts,
                         double dc_density, double cache_hit_rate) {
  ProbeFeatures f;
  f.support = cone.n();
  f.ands = static_cast<int>(cone.aig.num_ands());
  f.dc_density = dc_density;
  f.cache_hit_rate = cache_hit_rate;

  // Fixed-seed simulation signature: kRounds x 64 samples for the onset
  // estimate, re-simulating with one input complemented for the
  // sensitivity estimate. A pure function of the cone — re-probing is
  // idempotent, and 1-thread and N-thread runs see identical features.
  constexpr int kRounds = 4;
  constexpr int kFlipInputs = 12;
  const int n = f.support;
  const int flips = std::min(n, kFlipInputs);
  int on_bits = 0;
  long flip_bits = 0, flip_samples = 0;
  std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
  for (int r = 0; r < kRounds; ++r) {
    for (int i = 0; i < n; ++i) {
      words[static_cast<std::size_t>(i)] =
          splitmix64((std::uint64_t{0x5157} << 32) ^
                     (static_cast<std::uint64_t>(r) << 16) ^
                     static_cast<std::uint64_t>(i));
    }
    const std::uint64_t base = aig::simulate_cone(cone.aig, cone.root, words);
    on_bits += std::popcount(base);
    for (int i = 0; i < flips; ++i) {
      words[static_cast<std::size_t>(i)] = ~words[static_cast<std::size_t>(i)];
      const std::uint64_t flipped =
          aig::simulate_cone(cone.aig, cone.root, words);
      words[static_cast<std::size_t>(i)] = ~words[static_cast<std::size_t>(i)];
      flip_bits += std::popcount(base ^ flipped);
      flip_samples += 64;
    }
  }
  f.onset_density = on_bits / (64.0 * kRounds);
  f.sensitivity =
      flip_samples > 0 ? static_cast<double>(flip_bits) / flip_samples : 0.0;

  f.hard = (f.support >= popts.hard_support || f.ands >= popts.hard_ands) &&
           f.sensitivity >= popts.min_sensitivity_to_race;
  return f;
}

std::vector<Engine> plan_engines(const ProbeFeatures& f,
                                 const PortfolioOptions& popts,
                                 Engine configured) {
  const Engine quality =
      is_qbf_engine(configured) ? configured : Engine::kQbfCombined;
  if (f.hard && popts.race_width > 1) {
    // MG anchors every race (exact on decomposability, fastest to a
    // conclusion), the quality engine chases the optimum, and width 3
    // adds a second QBF lens that shares the race's countermodel pool
    // with the first.
    std::vector<Engine> plan{Engine::kMg, quality};
    if (popts.race_width >= 3) {
      plan.push_back(quality == Engine::kQbfDisjoint ? Engine::kQbfCombined
                                                     : Engine::kQbfDisjoint);
    }
    return plan;
  }
  // Solo: small cones afford the optimum engine (a warm decomposition
  // cache cheapens it further, so a high hit rate widens the band); the
  // rest get the fast exact bootstrap engine.
  const int quality_cap =
      popts.quality_support_max + (f.cache_hit_rate > 0.5 ? 2 : 0);
  if (f.support <= quality_cap) return {quality};
  return {Engine::kMg};
}

PortfolioOutcome decompose_portfolio(const Cone& cone,
                                     const DecomposeOptions& opts,
                                     const PortfolioOptions& popts,
                                     RaceScheduler* sched, const CareSet* care,
                                     double dc_density) {
  PortfolioOutcome out;
  out.features = probe_cone(cone, popts, dc_density);

  std::vector<Engine> plan = plan_engines(out.features, popts, opts.engine);
  const bool can_race =
      sched != nullptr && cone.n() >= 2 && !opts.reduce_support &&
      (opts.faults == nullptr || !opts.faults->enabled());
  if (plan.size() > 1 && !can_race) plan.resize(1);

  if (plan.size() == 1) {
    DecomposeOptions sopts = opts;
    sopts.engine = plan[0];
    out.result = BiDecomposer(sopts).decompose(cone, care);
    out.engine_used = plan[0];
    return out;
  }

  // ---- race ----
  Timer timer;
  DecomposeOptions base = opts;
  // Mirror BiDecomposer's orchestration: thread the cone's memory account
  // through the SAT options so every racer's solvers charge it (the
  // tracker is atomic, so concurrent racers share it safely).
  if (base.mem != nullptr && base.sat.mem == nullptr) base.sat.mem = base.mem;
  if (care_is_trivial(care)) care = nullptr;

  // One per-PO deadline carries the budget and the mem/run attachments;
  // each racer chains it as parent and adds the race's cancel flag, so a
  // loser trips kCancelled at its next poll and unwinds — every solver it
  // built is private to its strand and dies with it.
  Deadline po_deadline(base.po_budget_s);
  po_deadline.attach_parent(base.run_deadline);
  po_deadline.attach_mem(base.mem);

  const RelaxationMatrix matrix = build_relaxation_matrix(cone, base.op, care);
  SharedCountermodelPool pool;

  std::atomic<bool> race_done{false};
  // Shared race state: every racer publishes its strand and bids for the
  // win under `mu`; the post-race reads below re-take it so the guarded
  // fields are provably never touched unlocked (run_all is a barrier, but
  // the analysis holds every access to the same proof).
  struct RaceState {
    Mutex mu;
    std::vector<SearchStrand> strands STEP_GUARDED_BY(mu);
    int winner STEP_GUARDED_BY(mu) = -1;
  } race;
  {
    MutexLock lk(race.mu);
    race.strands.resize(plan.size());
  }

  std::vector<std::function<void()>> racers;
  racers.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    racers.push_back([&, i] {
      Deadline d;
      d.attach_parent(&po_deadline);
      d.attach_cancel(&race_done);
      DecomposeOptions ropts = base;
      ropts.engine = plan[i];
      ropts.qbf.shared_pool = &pool;
      SearchStrand s = run_search_strand(matrix, plan[i], ropts, &d);
      MutexLock lk(race.mu);
      const bool conclusive = s.status != DecomposeStatus::kUnknown;
      race.strands[i] = std::move(s);
      if (conclusive && race.winner < 0) {
        race.winner = static_cast<int>(i);
        race_done.store(true, std::memory_order_relaxed);
      }
    });
  }
  sched->run_all(racers);
  // Move the race outcome out under a short-lived lock so the verification
  // pipeline below runs unlocked: holding `mu` across it is harmless only
  // while run_all stays a barrier, and the lock scope should not encode
  // that assumption.
  std::vector<SearchStrand> strands;
  int winner = -1;
  {
    MutexLock lk(race.mu);
    strands = std::move(race.strands);
    winner = race.winner;
  }

  out.raced = true;
  out.race_width = static_cast<int>(plan.size());
  if (winner >= 0) {
    out.race_cancels = static_cast<int>(plan.size()) - 1;
    out.engine_used = plan[static_cast<std::size_t>(winner)];
    const SearchStrand& w = strands[static_cast<std::size_t>(winner)];
    if (w.status == DecomposeStatus::kDecomposed) {
      // The winning partition goes through the same validate / extract /
      // SAT-verify pipeline as any fixed-engine result before it counts.
      out.result =
          decompose_with_partition(cone, base.op, w.partition, base.extract,
                                   base.verify, care, base.faults);
      if (out.result.status == DecomposeStatus::kDecomposed) {
        out.result.proven_optimal = w.proven_optimal;
      }
    } else {
      out.result.status = DecomposeStatus::kNotDecomposable;
    }
  } else {
    // Every racer gave up: report under the primary's typed reason, like
    // a fixed-engine run of the primary would.
    out.engine_used = plan[0];
    out.result.status = DecomposeStatus::kUnknown;
    out.result.reason = strands[0].reason != OutcomeReason::kOk
                            ? strands[0].reason
                            : reason_of_unknown(&po_deadline);
  }
  for (const SearchStrand& s : strands) {
    out.result.sat_calls += s.sat_calls;
    out.result.qbf_calls += s.qbf_calls;
    out.result.qbf_iterations += s.qbf_iterations;
    out.result.qbf_abstraction_conflicts += s.qbf_abstraction_conflicts;
    out.result.qbf_verification_conflicts += s.qbf_verification_conflicts;
    out.result.solver_stats += s.solver_stats;
    out.pool_published += s.pool_published;
    out.pool_imported += s.pool_imported;
  }
  out.result.cpu_s = timer.elapsed_s();
  return out;
}

}  // namespace step::core
