#pragma once

#include <vector>

#include "aig/aig.h"

namespace step::aig {

/// Copies the cone of `root` from `src` into `dst`, mapping src input i to
/// the dst literal `input_map[i]` (which may be a constant — this is how
/// cofactoring works — or any dst literal — this is how composition works).
/// Inputs outside the cone need no mapping (kLitInvalid allowed).
/// Structural hashing in dst folds constants, so cofactored cones shrink.
Lit copy_cone(const Aig& src, Lit root, Aig& dst,
              const std::vector<Lit>& input_map);

/// Copies the cone of `root` into `dst`, creating one fresh dst input per
/// src input the cone actually depends on (in src input order). Appends
/// created input literals to `created_inputs` aligned with `used_inputs`,
/// which receives the src input indices.
Lit extract_cone(const Aig& src, Lit root, Aig& dst,
                 std::vector<std::uint32_t>& used_inputs,
                 std::vector<Lit>& created_inputs);

/// Builds in `dst` the XOR (miter) of two functions of the *same* dst
/// inputs: `a` and `b` are dst literals. SAT(miter) iff a != b somewhere.
inline Lit miter(Aig& dst, Lit a, Lit b) { return dst.lxor(a, b); }

/// Cofactor of `root` w.r.t. a partial input assignment: `assignment[i]`
/// is 0 (force false), 1 (force true) or -1 (keep input i free).
Lit cofactor(const Aig& src, Lit root, Aig& dst,
             const std::vector<int>& assignment,
             const std::vector<Lit>& free_input_map);

}  // namespace step::aig
