// Tests for the auxiliary emitters (Verilog, Graphviz) and the
// known-partition decomposition API.

#include <gtest/gtest.h>

#include "aig/dot.h"
#include "benchgen/generators.h"
#include "core/decomposer.h"
#include "core/partition_check.h"
#include "io/verilog_writer.h"
#include "test_util.h"

namespace step {
namespace {

// ---------- Verilog ---------------------------------------------------------------

TEST(Verilog, EmitsWellFormedModule) {
  const aig::Aig a = benchgen::ripple_adder(2);
  const std::string v = io::write_verilog(a, "adder2");
  EXPECT_NE(v.find("module adder2 ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input a0;"), std::string::npos);
  EXPECT_NE(v.find("output sum0;"), std::string::npos);
  // One assign per AND gate in the PO cones plus one per output.
  std::size_t assigns = 0;
  for (std::size_t pos = v.find("assign"); pos != std::string::npos;
       pos = v.find("assign", pos + 1)) {
    ++assigns;
  }
  EXPECT_EQ(assigns, a.num_ands() + a.num_outputs());
}

TEST(Verilog, SanitisesHostileNames) {
  aig::Aig a;
  const aig::Lit x = a.add_input("3bad name[0]");
  a.add_output(aig::lnot(x), "out-put!");
  const std::string v = io::write_verilog(a);
  // No identifier may keep the hostile characters or start with a digit.
  EXPECT_EQ(v.find("3bad name"), std::string::npos);
  EXPECT_EQ(v.find("[0]"), std::string::npos);
  EXPECT_EQ(v.find("out-put"), std::string::npos);
  EXPECT_EQ(v.find("input 3"), std::string::npos);
  EXPECT_NE(v.find("n_3bad_name_0_"), std::string::npos);
  EXPECT_NE(v.find("out_put_"), std::string::npos);
}

TEST(Verilog, NameCollisionsGetSuffixed) {
  aig::Aig a;
  (void)a.add_input("x y");
  (void)a.add_input("x_y");
  a.add_output(aig::kLitTrue, "f");
  const std::string v = io::write_verilog(a);
  EXPECT_NE(v.find("x_y_x"), std::string::npos);  // second one suffixed
}

TEST(Verilog, ConstantOutputs) {
  aig::Aig a;
  (void)a.add_input("x");
  a.add_output(aig::kLitTrue, "t");
  a.add_output(aig::kLitFalse, "f");
  const std::string v = io::write_verilog(a);
  EXPECT_NE(v.find("assign t = 1'b1;"), std::string::npos);
  EXPECT_NE(v.find("assign f = 1'b0;"), std::string::npos);
}

// ---------- dot --------------------------------------------------------------------

TEST(Dot, RendersStructure) {
  aig::Aig a;
  const aig::Lit x = a.add_input("x");
  const aig::Lit y = a.add_input("y");
  a.add_output(a.land(x, aig::lnot(y)), "f");
  const std::string d = aig::to_dot(a, "g");
  EXPECT_NE(d.find("digraph g {"), std::string::npos);
  EXPECT_NE(d.find("label=\"x\""), std::string::npos);
  EXPECT_NE(d.find("shape=circle"), std::string::npos);
  EXPECT_NE(d.find("style=dashed"), std::string::npos);  // complemented edge
  EXPECT_NE(d.find("doubleoctagon"), std::string::npos);
}

// ---------- known-partition API ----------------------------------------------------

TEST(KnownPartition, ValidPartitionExtractsAndVerifies) {
  core::Cone cone;
  const aig::Lit s = cone.aig.add_input();
  const aig::Lit x = cone.aig.add_input();
  const aig::Lit y = cone.aig.add_input();
  cone.root = cone.aig.lmux(s, x, y);
  core::Partition p;
  p.cls = {core::VarClass::kC, core::VarClass::kA, core::VarClass::kB};
  const core::DecomposeResult r =
      core::decompose_with_partition(cone, core::GateOp::kOr, p);
  ASSERT_EQ(r.status, core::DecomposeStatus::kDecomposed);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.metrics.shared, 1);
}

TEST(KnownPartition, InvalidPartitionRejected) {
  core::Cone cone;
  const aig::Lit x = cone.aig.add_input();
  const aig::Lit y = cone.aig.add_input();
  cone.root = cone.aig.land(x, y);  // not OR-decomposable disjointly
  core::Partition p;
  p.cls = {core::VarClass::kA, core::VarClass::kB};
  EXPECT_EQ(core::decompose_with_partition(cone, core::GateOp::kOr, p).status,
            core::DecomposeStatus::kNotDecomposable);
  // ...but fine as an AND decomposition.
  EXPECT_EQ(core::decompose_with_partition(cone, core::GateOp::kAnd, p).status,
            core::DecomposeStatus::kDecomposed);
}

TEST(KnownPartition, TrivialPartitionRejected) {
  core::Cone cone;
  const aig::Lit x = cone.aig.add_input();
  const aig::Lit y = cone.aig.add_input();
  cone.root = cone.aig.lor(x, y);
  core::Partition p;
  p.cls = {core::VarClass::kA, core::VarClass::kA};
  EXPECT_EQ(core::decompose_with_partition(cone, core::GateOp::kOr, p).status,
            core::DecomposeStatus::kNotDecomposable);
}

TEST(KnownPartition, AgreesWithOracleOnRandomInputs) {
  Rng rng(60601);
  int accepted = 0;
  for (int iter = 0; iter < 30; ++iter) {
    const int n = rng.next_int(2, 6);
    const core::Cone cone =
        testutil::random_cone(n, rng.next_int(3, 18), rng.next());
    const core::Partition p = testutil::random_partition(n, rng);
    const core::GateOp op = static_cast<core::GateOp>(rng.next_int(0, 2));
    const auto r = core::decompose_with_partition(cone, op, p);
    const bool expect = p.non_trivial() &&
                        core::check_partition_exhaustive(cone, op, p);
    EXPECT_EQ(r.status == core::DecomposeStatus::kDecomposed, expect);
    if (expect) {
      ++accepted;
      EXPECT_TRUE(r.verified);
    }
  }
  EXPECT_GT(accepted, 0);
}

}  // namespace
}  // namespace step
