#pragma once

#include <stdexcept>
#include <string>

namespace step::io {

/// Typed reader/writer failure. Subclasses std::runtime_error so existing
/// catch sites and EXPECT_THROW(… std::runtime_error) tests keep working,
/// while the CLI boundary can catch IoError specifically and map it onto
/// the io_error outcome (exit code 3) instead of a generic failure.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& message, std::string path = {})
      : std::runtime_error(message), path_(std::move(path)) {}

  /// The file the failure concerns; empty for in-memory parses.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace step::io
