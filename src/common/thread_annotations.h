#pragma once

#include <condition_variable>
#include <mutex>

// Clang Thread Safety Analysis support: annotated mutex / lock / condvar
// wrappers plus the attribute macros behind them. Every mutex in src/ is a
// step::Mutex from this header, so the locking discipline of the shared
// structures (thread pool, race latches, decomposition cache, countermodel
// pool) is *proved at compile time* on any clang build:
//
//   clang++ -Wthread-safety -Werror=thread-safety   (CI adds this
//   automatically on the clang leg; see CMakeLists.txt)
//
// The analysis is a static lockset proof: each field tagged STEP_GUARDED_BY
// may only be touched while its capability (mutex) is held, each function
// tagged STEP_REQUIRES may only be called with the lock held, and a
// MutexLock in scope is how the compiler sees the lock being held. On
// compilers without the attributes (gcc) every macro expands to nothing and
// the wrappers degrade to the plain std equivalents they contain — zero
// semantic or performance difference, the proof is simply not re-checked.
//
// docs/ARCHITECTURE.md § "Static analysis & concurrency contracts" lists
// which capability guards what and how to read an analysis error.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define STEP_TSA_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef STEP_TSA_ATTR
#define STEP_TSA_ATTR(x)  // not clang: annotations compile away
#endif

/// Declares a type to be a capability (lockable).
#define STEP_CAPABILITY(x) STEP_TSA_ATTR(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction.
#define STEP_SCOPED_CAPABILITY STEP_TSA_ATTR(scoped_lockable)
/// Field may only be accessed while holding capability `x`.
#define STEP_GUARDED_BY(x) STEP_TSA_ATTR(guarded_by(x))
/// Pointee (not the pointer itself) is guarded by capability `x`.
#define STEP_PT_GUARDED_BY(x) STEP_TSA_ATTR(pt_guarded_by(x))
/// Caller must hold the listed capabilities to call this function.
#define STEP_REQUIRES(...) STEP_TSA_ATTR(requires_capability(__VA_ARGS__))
/// Function acquires the listed capabilities (and does not release them).
#define STEP_ACQUIRE(...) STEP_TSA_ATTR(acquire_capability(__VA_ARGS__))
/// Function releases the listed capabilities.
#define STEP_RELEASE(...) STEP_TSA_ATTR(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `b`.
#define STEP_TRY_ACQUIRE(b, ...) \
  STEP_TSA_ATTR(try_acquire_capability(b, __VA_ARGS__))
/// Caller must NOT hold the listed capabilities (deadlock guard).
#define STEP_EXCLUDES(...) STEP_TSA_ATTR(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the capability `x`.
#define STEP_RETURN_CAPABILITY(x) STEP_TSA_ATTR(lock_returned(x))
/// Lock-ordering declaration: this capability is acquired before `...`.
#define STEP_ACQUIRED_BEFORE(...) STEP_TSA_ATTR(acquired_before(__VA_ARGS__))
/// Lock-ordering declaration: this capability is acquired after `...`.
#define STEP_ACQUIRED_AFTER(...) STEP_TSA_ATTR(acquired_after(__VA_ARGS__))
/// Escape hatch: the function body is not analyzed. Reserved for the
/// wrapper internals in this header; production code must not use it
/// (the CI acceptance gate greps for exactly that).
#define STEP_NO_THREAD_SAFETY_ANALYSIS STEP_TSA_ATTR(no_thread_safety_analysis)

namespace step {

class CondVar;

/// Annotated std::mutex. Prefer MutexLock over manual lock()/unlock():
/// the scoped form is exception-safe and is what the analysis tracks most
/// precisely.
class STEP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STEP_ACQUIRE() { mu_.lock(); }
  void unlock() STEP_RELEASE() { mu_.unlock(); }
  bool try_lock() STEP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock, the std::lock_guard of the annotated world.
class STEP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STEP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() STEP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex at each wait site. wait() requires
/// the capability, so the compiler proves every waiter actually holds the
/// mutex it sleeps on. There is deliberately no predicate overload: a
/// predicate lambda would be analyzed as a separate function that cannot
/// see the held lock, so callers hand-roll the standard
///   while (!predicate) cv.wait(mu);
/// loop in the locked scope, where the analysis follows every guarded read.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and sleeps; `mu` is re-held on return.
  /// Spurious wakeups are possible, exactly as with std::condition_variable.
  void wait(Mutex& mu) STEP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace step
