#include "core/synthesis.h"

#include <algorithm>

#include "aig/ops.h"

namespace step::core {

namespace {

/// Applies the top gate of a decomposition inside `dst`.
aig::Lit apply_gate(aig::Aig& dst, GateOp op, aig::Lit a, aig::Lit b) {
  switch (op) {
    case GateOp::kOr: return dst.lor(a, b);
    case GateOp::kAnd: return dst.land(a, b);
    case GateOp::kXor: return dst.lxor(a, b);
  }
  return aig::kLitFalse;
}

struct Synthesizer {
  const SynthesisOptions& opts;
  SynthesisStats& stats;

  /// Rewrites `cone` into `dst`; cone input i maps to dst_inputs[i].
  aig::Lit rewrite(const Cone& cone, const std::vector<aig::Lit>& dst_inputs,
                   aig::Aig& dst, int depth) {
    if (cone.n() <= opts.leaf_support || depth >= opts.max_depth) {
      ++stats.leaves;
      return aig::copy_cone(cone.aig, cone.root, dst, dst_inputs);
    }

    // Pick a gate and a partition.
    bool have = false;
    GateOp best_op = GateOp::kOr;
    DecomposeResult best;
    for (GateOp op : opts.ops) {
      DecomposeOptions dopts = opts.per_node;
      dopts.op = op;
      dopts.engine = opts.engine;
      dopts.extract = true;
      const DecomposeResult r = BiDecomposer(dopts).decompose(cone);
      if (r.status != DecomposeStatus::kDecomposed) continue;
      if (!have || metric_cost(r.metrics, MetricKind::kSum) <
                       metric_cost(best.metrics, MetricKind::kSum)) {
        have = true;
        best_op = op;
        best = r;
      }
      if (!opts.pick_best_op) break;
    }
    if (!have) {
      ++stats.leaves;
      ++stats.undecomposable;
      return aig::copy_cone(cone.aig, cone.root, dst, dst_inputs);
    }
    ++stats.decompositions;

    // Recurse into fA and fB. Each is re-extracted as a standalone cone so
    // its inputs are exactly its own support.
    const ExtractedFunctions& fns = *best.functions;
    auto recurse = [&](aig::Lit f) {
      Cone sub;
      std::vector<std::uint32_t> used;
      std::vector<aig::Lit> created;
      sub.root = aig::extract_cone(fns.aig, f, sub.aig, used, created);
      std::vector<aig::Lit> sub_inputs(used.size());
      for (std::size_t i = 0; i < used.size(); ++i) {
        sub_inputs[i] = dst_inputs[used[i]];
      }
      return rewrite(sub, sub_inputs, dst, depth + 1);
    };
    const aig::Lit la = recurse(fns.fa);
    const aig::Lit lb = recurse(fns.fb);
    return apply_gate(dst, best_op, la, lb);
  }
};

}  // namespace

int cone_depth(const aig::Aig& a, aig::Lit root) {
  std::vector<int> level(a.num_nodes(), 0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    level[n] = 1 + std::max(level[aig::node_of(a.fanin0(n))],
                            level[aig::node_of(a.fanin1(n))]);
  }
  return level[aig::node_of(root)];
}

SynthesisResult resynthesize(const aig::Aig& circuit,
                             const SynthesisOptions& opts) {
  SynthesisResult result;
  aig::Aig& dst = result.network;
  SynthesisStats& st = result.stats;

  std::vector<aig::Lit> pi_map(circuit.num_inputs());
  for (std::uint32_t i = 0; i < circuit.num_inputs(); ++i) {
    pi_map[i] = dst.add_input(circuit.input_name(i));
  }

  Synthesizer synth{opts, st};
  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    std::vector<std::uint32_t> orig_inputs;
    const Cone cone = extract_po_cone(circuit, po, &orig_inputs);
    st.depth_before = std::max(st.depth_before,
                               cone_depth(circuit, circuit.output(po)));
    ++st.pos_processed;

    std::vector<aig::Lit> dst_inputs(orig_inputs.size());
    for (std::size_t i = 0; i < orig_inputs.size(); ++i) {
      dst_inputs[i] = pi_map[orig_inputs[i]];
    }
    const aig::Lit out = synth.rewrite(cone, dst_inputs, dst, 0);
    dst.add_output(out, circuit.output_name(po));
    st.depth_after = std::max(st.depth_after, cone_depth(dst, out));
  }

  st.ands_before = circuit.num_ands();
  st.ands_after = dst.num_ands();
  return result;
}

}  // namespace step::core
