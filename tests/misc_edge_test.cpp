// Remaining edge coverage: AIG naming/identity corners, cardinality
// boundaries, MUS option paths, relaxation matrix structure, benchgen
// input validation.

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "benchgen/generators.h"
#include "cnf/cardinality.h"
#include "core/partition_check.h"
#include "core/relaxation.h"
#include "mus/group_mus.h"
#include "test_util.h"

namespace step {
namespace {

// ---------- AIG corners -------------------------------------------------------

TEST(AigEdge, DefaultAndCustomNames) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const aig::Lit y = a.add_input("custom");
  EXPECT_EQ(a.input_name(0), "x0");
  EXPECT_EQ(a.input_name(1), "custom");
  a.add_output(a.land(x, y));
  a.add_output(y, "named");
  EXPECT_EQ(a.output_name(0), "y0");
  EXPECT_EQ(a.output_name(1), "named");
  a.set_input_name(0, "renamed");
  a.set_output_name(0, "renamed_out");
  EXPECT_EQ(a.input_name(0), "renamed");
  EXPECT_EQ(a.output_name(0), "renamed_out");
}

TEST(AigEdge, SetOutputRedirectsDriver) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const std::uint32_t o = a.add_output(x, "f");
  a.set_output(o, aig::lnot(x));
  const auto out = aig::simulate(a, {0b01});
  EXPECT_EQ(out[0] & 0b11, 0b10u);
}

TEST(AigEdge, ConeSizeCountsSharedNodesOnce) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const aig::Lit y = a.add_input();
  const aig::Lit g = a.land(x, y);
  const aig::Lit h = a.land(g, aig::lnot(g));  // folds to const: no new node
  EXPECT_EQ(h, aig::kLitFalse);
  const aig::Lit top = a.land(g, x);
  EXPECT_EQ(a.cone_size(top), 2u);
  EXPECT_EQ(a.cone_size(g), 1u);
  EXPECT_EQ(a.cone_size(x), 0u);
}

TEST(AigEdge, StrashDeterminism) {
  // Same construction sequence => identical node ids and counts.
  auto build = [] {
    aig::Aig a;
    std::vector<aig::Lit> xs;
    for (int i = 0; i < 6; ++i) xs.push_back(a.add_input());
    a.add_output(a.lxor_many(xs));
    a.add_output(a.land_many(xs));
    return a;
  };
  const aig::Aig a = build();
  const aig::Aig b = build();
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.output(0), b.output(0));
  EXPECT_EQ(a.output(1), b.output(1));
}

// ---------- cardinality boundaries ---------------------------------------------

TEST(CardinalityEdge, AtLeastKBoundaries) {
  using sat::mk_lit;
  {
    sat::Solver s;
    sat::LitVec lits{mk_lit(s.new_var()), mk_lit(s.new_var())};
    cnf::SolverSink sink(s);
    cnf::at_least_k(sink, lits, 0);  // no-op
    EXPECT_EQ(s.solve(), sat::Result::kSat);
  }
  {
    sat::Solver s;
    sat::LitVec lits{mk_lit(s.new_var()), mk_lit(s.new_var())};
    cnf::SolverSink sink(s);
    cnf::at_least_k(sink, lits, 2);  // both forced
    ASSERT_EQ(s.solve(), sat::Result::kSat);
    EXPECT_EQ(s.model_value(lits[0]), sat::Lbool::kTrue);
    EXPECT_EQ(s.model_value(lits[1]), sat::Lbool::kTrue);
  }
  {
    sat::Solver s;
    sat::LitVec lits{mk_lit(s.new_var())};
    cnf::SolverSink sink(s);
    cnf::at_least_k(sink, lits, 2);  // impossible
    EXPECT_EQ(s.solve(), sat::Result::kUnsat);
  }
}

TEST(CardinalityEdge, DiffAtMostNegativeK) {
  // sum(a) - sum(b) <= -1 over 2+2 vars: needs strictly more b than a.
  using sat::mk_lit;
  sat::Solver s;
  sat::LitVec a{mk_lit(s.new_var()), mk_lit(s.new_var())};
  sat::LitVec b{mk_lit(s.new_var()), mk_lit(s.new_var())};
  // a is assumed only on the second solve; freeze the counted variables.
  for (sat::Lit l : a) s.set_frozen(sat::var(l));
  for (sat::Lit l : b) s.set_frozen(sat::var(l));
  cnf::SolverSink sink(s);
  cnf::diff_at_most_k(sink, a, b, -1);
  ASSERT_EQ(s.solve(), sat::Result::kSat);
  int ca = 0, cb = 0;
  for (sat::Lit l : a) ca += s.model_value(l) == sat::Lbool::kTrue;
  for (sat::Lit l : b) cb += s.model_value(l) == sat::Lbool::kTrue;
  EXPECT_LE(ca - cb, -1);
  // And forcing all of a true makes it UNSAT (2 - cb <= -1 impossible).
  const sat::LitVec assume{a[0], a[1]};
  EXPECT_EQ(s.solve(assume), sat::Result::kUnsat);
}

// ---------- MUS option paths ----------------------------------------------------

TEST(MusEdge, NoCoreRefinementStillMinimal) {
  sat::Solver s;
  const sat::Var x = s.new_var();
  const sat::Var e0 = s.new_var(), e1 = s.new_var(), e2 = s.new_var();
  s.add_clause({sat::mk_lit(x), ~sat::mk_lit(e0)});
  s.add_clause({~sat::mk_lit(x), ~sat::mk_lit(e1)});
  s.add_clause({sat::mk_lit(x), ~sat::mk_lit(e2)});  // redundant with e0
  mus::GroupMusOptions opts;
  opts.core_refinement = false;
  mus::GroupMusExtractor ex(
      s, {sat::mk_lit(e0), sat::mk_lit(e1), sat::mk_lit(e2)}, opts);
  const mus::GroupMusResult r = ex.extract();
  EXPECT_TRUE(r.minimal);
  ASSERT_EQ(r.mus.size(), 2u);
  // Group 1 (¬x) is always necessary; exactly one of the interchangeable
  // x-groups {0, 2} completes the MUS.
  EXPECT_NE(std::find(r.mus.begin(), r.mus.end(), 1), r.mus.end());
  const bool has0 = std::find(r.mus.begin(), r.mus.end(), 0) != r.mus.end();
  const bool has2 = std::find(r.mus.begin(), r.mus.end(), 2) != r.mus.end();
  EXPECT_NE(has0, has2);
}

TEST(MusEdge, ConflictBudgetTruncates) {
  sat::Solver s;
  // Build a moderately hard UNSAT core so a 0-conflict budget cannot prove
  // anything: pigeonhole guarded by one selector per pigeon clause.
  sat::Var p[4][3];
  for (auto& row : p) {
    for (sat::Var& v : row) v = s.new_var();
  }
  std::vector<sat::Lit> enable;
  for (auto& row : p) {
    const sat::Var e = s.new_var();
    enable.push_back(sat::mk_lit(e));
    s.add_clause({sat::mk_lit(row[0]), sat::mk_lit(row[1]), sat::mk_lit(row[2]),
                  ~sat::mk_lit(e)});
  }
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        s.add_clause({~sat::mk_lit(p[i][h]), ~sat::mk_lit(p[j][h])});
      }
    }
  }
  mus::GroupMusOptions opts;
  opts.conflict_budget = 0;
  mus::GroupMusExtractor ex(s, enable, opts);
  const mus::GroupMusResult r = ex.extract();
  EXPECT_FALSE(r.minimal);           // budget prevented the baseline proof
  EXPECT_EQ(r.mus.size(), enable.size());  // conservative: keeps everything
}

// ---------- relaxation matrix structure ------------------------------------------

TEST(RelaxationEdge, MatrixShapePerOp) {
  const core::Cone cone = testutil::random_cone(4, 10, 31);
  const auto m_or = core::build_relaxation_matrix(cone, core::GateOp::kOr);
  EXPECT_EQ(m_or.n, 4);
  EXPECT_EQ(m_or.x.size(), 4u);
  EXPECT_TRUE(m_or.xppp.empty());
  EXPECT_EQ(m_or.aig.num_inputs(), 5u * 4u);  // x, x', x'', alpha, beta

  const auto m_xor = core::build_relaxation_matrix(cone, core::GateOp::kXor);
  EXPECT_EQ(m_xor.xppp.size(), 4u);
  EXPECT_EQ(m_xor.aig.num_inputs(), 6u * 4u);  // + x'''
}

TEST(RelaxationEdge, AllAlphaAssignmentInvalidatesEverything) {
  // alpha_i = beta_i = 0 for all i means X = X' = X'': Φ reduces to
  // f ∧ ¬f — unsatisfiable, i.e. the "all shared" pseudo-partition is
  // always "valid"; it is the non-triviality constraint that excludes it.
  const core::Cone cone = testutil::random_cone(3, 8, 17);
  const auto m = core::build_relaxation_matrix(cone, core::GateOp::kOr);
  core::RelaxationSolver rs(m);
  core::Partition all_c;
  all_c.cls.assign(3, core::VarClass::kC);
  EXPECT_TRUE(rs.is_valid(all_c));
  EXPECT_FALSE(all_c.non_trivial());
}

// ---------- benchgen validation ---------------------------------------------------

TEST(BenchgenEdge, HammingThresholdSemantics) {
  const aig::Aig h = benchgen::hamming_ge(4, 2);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      std::vector<std::uint64_t> stim(8);
      for (int i = 0; i < 4; ++i) {
        stim[i] = ((a >> i) & 1) ? ~0ULL : 0;
        stim[4 + i] = ((b >> i) & 1) ? ~0ULL : 0;
      }
      const bool expect = __builtin_popcount(a ^ b) >= 2;
      EXPECT_EQ((aig::simulate(h, stim)[0] & 1) != 0, expect);
    }
  }
}

TEST(BenchgenEdge, MuxTreeSelectsExhaustively) {
  const aig::Aig m = benchgen::mux_tree(3);
  for (int sel = 0; sel < 8; ++sel) {
    for (int word = 0; word < 256; word += 85) {
      std::vector<std::uint64_t> stim(11);
      for (int d = 0; d < 8; ++d) stim[d] = ((word >> d) & 1) ? ~0ULL : 0;
      for (int sbit = 0; sbit < 3; ++sbit) {
        stim[8 + sbit] = ((sel >> sbit) & 1) ? ~0ULL : 0;
      }
      EXPECT_EQ((aig::simulate(m, stim)[0] & 1) != 0, ((word >> sel) & 1) != 0);
    }
  }
}

TEST(BenchgenEdge, RandomSopRespectsIntendedPartition) {
  // Every PO of random_sop must accept the generator's intended partition
  // (A group | B group | C shared).
  const int na = 4, nb = 4, nc = 2;
  const aig::Aig circ = benchgen::random_sop(na, nb, nc, 6, 5, 0x1234);
  for (std::uint32_t po = 0; po < circ.num_outputs(); ++po) {
    std::vector<std::uint32_t> orig;
    const core::Cone cone = core::extract_po_cone(circ, po, &orig);
    if (cone.n() < 2) continue;
    core::Partition p;
    bool has_a = false, has_b = false;
    for (std::uint32_t in : orig) {
      if (in < static_cast<std::uint32_t>(na)) {
        p.cls.push_back(core::VarClass::kA);
        has_a = true;
      } else if (in < static_cast<std::uint32_t>(na + nb)) {
        p.cls.push_back(core::VarClass::kB);
        has_b = true;
      } else {
        p.cls.push_back(core::VarClass::kC);
      }
    }
    if (!has_a || !has_b) continue;  // PO fell entirely on one side
    EXPECT_TRUE(core::check_partition_exhaustive(cone, core::GateOp::kOr, p))
        << "po " << po;
  }
}

}  // namespace
}  // namespace step
