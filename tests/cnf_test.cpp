#include "cnf/cardinality.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "sat/solver.h"

namespace step::cnf {
namespace {

using sat::Lbool;
using sat::Lit;
using sat::LitVec;
using sat::mk_lit;
using sat::Result;
using sat::Solver;
using sat::Var;

// ---------- cardinality: exhaustive model counting -----------------------------

/// Counts models of the constraint over the n base variables by repeatedly
/// solving + blocking the projection onto the base variables.
int count_projected_models(Solver& s, const std::vector<Var>& base) {
  int models = 0;
  while (s.solve() == Result::kSat) {
    ++models;
    LitVec block;
    for (Var v : base) {
      block.push_back(mk_lit(v, s.model_value(v) == Lbool::kTrue));
    }
    s.add_clause(block);
    if (models > 4096) break;  // runaway guard
  }
  return models;
}

int binomial_sum_at_most(int n, int k) {
  // sum_{i=0..k} C(n,i)
  long long sum = 0, c = 1;
  for (int i = 0; i <= n; ++i) {
    if (i <= k) sum += c;
    c = c * (n - i) / (i + 1);
  }
  return static_cast<int>(sum);
}

struct AmkCase {
  int n, k;
};

class AtMostK : public ::testing::TestWithParam<AmkCase> {};

TEST_P(AtMostK, ModelCountMatchesBinomialSum) {
  const auto [n, k] = GetParam();
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < n; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_most_k(sink, lits, k);
  EXPECT_EQ(count_projected_models(s, base), binomial_sum_at_most(n, k))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AtMostK,
    ::testing::Values(AmkCase{1, 0}, AmkCase{2, 1}, AmkCase{3, 1}, AmkCase{3, 2},
                      AmkCase{4, 0}, AmkCase{4, 2}, AmkCase{5, 1}, AmkCase{5, 3},
                      AmkCase{6, 2}, AmkCase{6, 5}, AmkCase{7, 3}, AmkCase{8, 4}));

TEST(Cardinality, AtMostKTrivialWhenKGeqN) {
  Solver s;
  LitVec lits;
  std::vector<Var> base;
  for (int i = 0; i < 4; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_most_k(sink, lits, 4);
  EXPECT_EQ(count_projected_models(s, base), 16);
}

TEST(Cardinality, AtMostNegativeKIsUnsat) {
  Solver s;
  LitVec lits{mk_lit(s.new_var())};
  SolverSink sink(s);
  at_most_k(sink, lits, -1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Cardinality, AtLeastKCounts) {
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < 5; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_least_k(sink, lits, 3);
  // #models = C(5,3)+C(5,4)+C(5,5) = 10+5+1.
  EXPECT_EQ(count_projected_models(s, base), 16);
}

TEST(Cardinality, AtLeastOneAndPairwiseAtMostOne) {
  Solver s;
  std::vector<Var> base;
  LitVec lits;
  for (int i = 0; i < 6; ++i) {
    base.push_back(s.new_var());
    lits.push_back(mk_lit(base[i]));
  }
  SolverSink sink(s);
  at_least_one(sink, lits);
  at_most_one_pairwise(sink, lits);
  EXPECT_EQ(count_projected_models(s, base), 6);  // exactly-one
}

TEST(Cardinality, DiffAtMostKEnumerates) {
  // #models of (sum a) - (sum b) <= 1 over 3+3 free vars.
  Solver s;
  std::vector<Var> base;
  LitVec a, b;
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    a.push_back(mk_lit(base.back()));
  }
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    b.push_back(mk_lit(base.back()));
  }
  SolverSink sink(s);
  diff_at_most_k(sink, a, b, 1);
  int expect = 0;
  for (int m = 0; m < 64; ++m) {
    const int ca = __builtin_popcount(m & 7);
    const int cb = __builtin_popcount((m >> 3) & 7);
    if (ca - cb <= 1) ++expect;
  }
  EXPECT_EQ(count_projected_models(s, base), expect);
}

TEST(Cardinality, DiffNonNegativeEnumerates) {
  Solver s;
  std::vector<Var> base;
  LitVec a, b;
  for (int i = 0; i < 3; ++i) {
    base.push_back(s.new_var());
    a.push_back(mk_lit(base.back()));
  }
  for (int i = 0; i < 2; ++i) {
    base.push_back(s.new_var());
    b.push_back(mk_lit(base.back()));
  }
  SolverSink sink(s);
  diff_non_negative(sink, a, b);
  int expect = 0;
  for (int m = 0; m < 32; ++m) {
    const int ca = __builtin_popcount(m & 7);
    const int cb = __builtin_popcount((m >> 3) & 3);
    if (ca - cb >= 0) ++expect;
  }
  EXPECT_EQ(count_projected_models(s, base), expect);
}

// ---------- Tseitin --------------------------------------------------------------

TEST(Tseitin, ConeEncodingMatchesSimulation) {
  Rng rng(7);
  for (int iter = 0; iter < 25; ++iter) {
    // Random 4-input AIG cone.
    aig::Aig a;
    std::vector<aig::Lit> pool;
    for (int i = 0; i < 4; ++i) pool.push_back(a.add_input());
    for (int g = 0; g < 20; ++g) {
      const aig::Lit f0 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const aig::Lit f1 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(a.land(f0, f1));
    }
    const aig::Lit root = pool.back() ^ (rng.next_bool() ? 1u : 0u);

    Solver s;
    std::vector<Lit> in_sat(4);
    for (auto& l : in_sat) l = mk_lit(s.new_var());
    SolverSink sink(s);
    const Lit r = encode_cone(a, root, in_sat, sink);

    // For every input assignment the SAT encoding must agree with
    // simulation under assumptions.
    std::vector<std::uint64_t> stim(4);
    for (int j = 0; j < 4; ++j) stim[j] = (0xffffULL / 3) << j;  // varied
    for (int m = 0; m < 16; ++m) {
      LitVec assume;
      std::vector<std::uint64_t> bits(4);
      for (int j = 0; j < 4; ++j) {
        const bool v = ((m >> j) & 1) != 0;
        bits[j] = v ? ~0ULL : 0;
        assume.push_back(v ? in_sat[j] : ~in_sat[j]);
      }
      const bool expect = (aig::simulate_cone(a, root, bits) & 1ULL) != 0;
      assume.push_back(expect ? ~r : r);  // assume the wrong value
      EXPECT_EQ(s.solve(assume), Result::kUnsat);
      assume.back() = expect ? r : ~r;  // and the right one
      EXPECT_EQ(s.solve(assume), Result::kSat);
    }
  }
}

TEST(Tseitin, ConstantRoot) {
  aig::Aig a;
  (void)a.add_input();
  Solver s;
  SolverSink sink(s);
  const Lit t = encode_cone(a, aig::kLitTrue, {mk_lit(s.new_var())}, sink);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(t), Lbool::kTrue);
}

TEST(Tseitin, AssertValueForcesRoot) {
  aig::Aig a;
  const aig::Lit x = a.add_input();
  const aig::Lit y = a.add_input();
  const aig::Lit f = a.land(x, y);
  Solver s;
  std::vector<Lit> in_sat{mk_lit(s.new_var()), mk_lit(s.new_var())};
  SolverSink sink(s);
  encode_cone_assert(a, f, in_sat, sink, true);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(in_sat[0]), Lbool::kTrue);
  EXPECT_EQ(s.model_value(in_sat[1]), Lbool::kTrue);
}

TEST(VecSinkTest, CollectsClauses) {
  VecSink sink(10);
  const Var v = sink.new_var();
  EXPECT_EQ(v, 10);
  sink.add_binary(mk_lit(v), ~mk_lit(v));
  ASSERT_EQ(sink.clauses().size(), 1u);
  EXPECT_EQ(sink.clauses()[0].size(), 2u);
}

}  // namespace
}  // namespace step::cnf
