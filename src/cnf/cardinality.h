#pragma once

#include <span>
#include <vector>

#include "cnf/cnf.h"
#include "sat/types.h"

namespace step::cnf {

/// Cardinality constraints over SAT literals.
///
/// The QBF models constrain the universal partition variables:
///   fN: AtLeast1(alpha) ∧ AtLeast1(beta) ∧ per-pair AtMostOne
///   fT(QD), eq. (5):  #{x : x ∈ XC} <= k
///   fT(QB), eq. (6):  0 <= #XA − #XB <= k
///   fT(QDB), eq. (8): 0 <= #XC + #XA − #XB <= k
/// All reduce to AtMost-k over mixed-polarity literal lists; the encoder is
/// the Sinz sequential counter (O(n·k) clauses, arc-consistent).

/// At least one literal true (a single clause).
void at_least_one(ClauseSink& sink, std::span<const sat::Lit> lits);

/// At most one literal true (pairwise encoding; fine for per-pair use).
void at_most_one_pairwise(ClauseSink& sink, std::span<const sat::Lit> lits);

/// Sequential-counter AtMost-k: at most k of `lits` are true.
/// k >= lits.size() emits nothing; k == 0 emits unit clauses.
void at_most_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k);

/// At least k of `lits` are true (dual of at_most_k on negations).
void at_least_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k);

/// Difference bound: sum(a in pos) − sum(b in neg) <= k
/// (k may be negative). Encoded as AtMost(k + |neg|) over pos ∪ ¬neg.
void diff_at_most_k(ClauseSink& sink, std::span<const sat::Lit> pos,
                    std::span<const sat::Lit> neg, int k);

/// Difference lower bound: sum(pos) − sum(neg) >= 0.
void diff_non_negative(ClauseSink& sink, std::span<const sat::Lit> pos,
                       std::span<const sat::Lit> neg);

/// Incremental cardinality encoder: a full-width sequential counter
/// (Sinz-style, register width n) emitted once, exposing sorted unary
/// outputs o_1..o_n with
///   clauses ⊨ (at least j inputs true → o_j).
/// AtMost-k is then *assumed* rather than re-encoded: pass the literals
/// from assume_at_most(k) to the SAT call. Tightening or loosening k
/// between calls reuses the same clause set and everything the solver
/// learned from it — the enabler of the incremental optimum-bound sweep.
/// (Assuming ¬o_{k+1} back-propagates down the carry chain, giving the
/// same arc-consistent pruning as the width-k scratch encoding.)
///
/// assume_at_most assumes the whole output suffix ¬o_{k+1}..¬o_n (not just
/// ¬o_{k+1}), and no monotone-chain clauses link the outputs. This keeps
/// the outputs semantically independent, so an UNSAT core naming ¬o_m with
/// m > k+1 certifies that every bound below m−1 is refuted too — callers
/// can raise their lower bound past k+1 for free (see QbfFindResult::
/// refuted_below). The outputs can always be extended canonically
/// (o_j ⇔ prefix sum ≥ j), so the assumptions never exclude an assignment
/// whose true-count is within the bound.
class IncrementalCounter {
 public:
  IncrementalCounter(ClauseSink& sink, std::span<const sat::Lit> lits);

  int size() const { return static_cast<int>(outputs_.size()); }

  /// Output literal o_j, 1-indexed in [1, size()]: forced true whenever at
  /// least j inputs are true; assuming ~o_j enforces "at most j−1".
  sat::Lit output(int j) const { return outputs_[j - 1]; }

  /// Appends assumption literals enforcing "at most k inputs true".
  /// k >= size() appends nothing; k < 0 appends a permanently-false
  /// literal (the constraint is unsatisfiable).
  void assume_at_most(int k, sat::LitVec& out) const;

 private:
  sat::LitVec outputs_;
  sat::Lit never_;  ///< unit-falsified literal backing k < 0
};

}  // namespace step::cnf
