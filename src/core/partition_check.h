#pragma once

#include <optional>

#include "core/bidec_types.h"
#include "core/relaxation.h"

namespace step::core {

/// One-shot SAT validity check of a concrete partition (builds the matrix
/// and a solver internally; for repeated checks use RelaxationSolver).
/// A non-trivial `care` restricts validity to the care minterms (OR/AND;
/// XOR stays exact — see build_relaxation_matrix).
bool check_partition(const Cone& cone, GateOp op, const Partition& p,
                     const CareSet* care = nullptr);

/// Truth-table validity oracle (exhaustive; support <= 16). Used by the
/// property tests and the brute-force optimum below, and as an independent
/// cross-check of the SAT formulation — including its don't-care variant:
/// `care` follows the same OR/AND-only semantics as the SAT path.
bool check_partition_exhaustive(const Cone& cone, GateOp op, const Partition& p,
                                const CareSet* care = nullptr);

/// Which metric a search optimizes (the paper's QD / QB / QDB targets).
enum class MetricKind { kDisjointness, kBalancedness, kSum };

inline const char* to_string(MetricKind k) {
  switch (k) {
    case MetricKind::kDisjointness: return "disjointness";
    case MetricKind::kBalancedness: return "balancedness";
    case MetricKind::kSum: return "disjointness+balancedness";
  }
  return "?";
}

/// Integer cost of a partition under a metric (numerator of the paper's
/// relative metric; denominators are all ||X||, so integer comparison is
/// exact).
int metric_cost(const Metrics& m, MetricKind kind);

/// Exhaustive optimum over all 3^n non-trivial partitions (support <= 10);
/// the oracle against which the QBF models' optimality is validated.
struct BruteForceResult {
  bool decomposable = false;
  int best_cost = 0;
  Partition best;
};
BruteForceResult brute_force_optimum(const Cone& cone, GateOp op, MetricKind kind);

}  // namespace step::core
