#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.h"

namespace step {
class MemTracker;
}

namespace step::aig {

/// 64-way bit-parallel simulation: `input_words[i]` carries 64 stimulus
/// bits for input i; returns one word per output.
std::vector<std::uint64_t> simulate(const Aig& a,
                                    const std::vector<std::uint64_t>& input_words);

/// Word-level simulation of a single cone.
std::uint64_t simulate_cone(const Aig& a, Lit root,
                            const std::vector<std::uint64_t>& input_words);

/// Whole-network simulation exposing every node's word (indexed by node
/// id, uncomplemented). Window extraction reads internal cut signals from
/// this, so one sweep serves many candidate cuts.
std::vector<std::uint64_t> simulate_nodes(
    const Aig& a, const std::vector<std::uint64_t>& input_words);

/// Incremental re-simulator restricted to one cone.
///
/// Construction walks the cone of `root` once and records just its nodes
/// (in ascending-id, i.e. topological, order) and its support inputs.
/// Every subsequent run() then touches only those nodes and reuses one
/// flat value buffer — on a million-gate netlist a 200-node window
/// re-simulates in 200 AND operations instead of a whole-network sweep,
/// and the working set is O(cone), not O(circuit). This is what keeps
/// run_circuit's per-cone memory inside the MemTracker envelope: the
/// optional tracker is charged for the simulator's buffers on
/// construction and refunded on destruction.
class ConeSimulator {
 public:
  ConeSimulator(const Aig& a, Lit root, MemTracker* mem = nullptr);
  ~ConeSimulator();
  ConeSimulator(const ConeSimulator&) = delete;
  ConeSimulator& operator=(const ConeSimulator&) = delete;

  /// Support input indices of the cone, ascending.
  const std::vector<std::uint32_t>& support() const { return support_; }
  /// AND nodes in the cone.
  std::uint32_t num_ands() const { return num_ands_; }

  /// Evaluates the cone on one word per *support position* (aligned with
  /// support()), returning the root's word.
  std::uint64_t run(const std::vector<std::uint64_t>& support_words);

 private:
  MemTracker* mem_;
  std::size_t charged_ = 0;
  std::vector<std::uint32_t> support_;
  std::uint32_t num_ands_ = 0;
  /// The cone re-expressed over *local* slots: val_[0] is constant false,
  /// slots 1..|support| the support words, then one slot per cone AND in
  /// topological order. local_f0_/local_f1_ hold each AND's fanins as
  /// local literals (2*slot + complement), so run() is a tight loop with
  /// no per-step id translation.
  std::vector<Lit> local_f0_;
  std::vector<Lit> local_f1_;
  Lit local_root_ = kLitFalse;
  std::vector<std::uint64_t> val_;
};

/// Complete truth table of `root` over the given support inputs
/// (src input indices); support.size() <= 20. Bit b of the table is the
/// function value when support input j takes bit j of b.
/// Packed in 64-bit words, so table[b >> 6] >> (b & 63) & 1 is the value.
std::vector<std::uint64_t> truth_table(const Aig& a, Lit root,
                                       const std::vector<std::uint32_t>& support);

/// Number of 64-bit words a truth table over n variables occupies.
constexpr std::size_t tt_words(std::size_t n_vars) {
  return n_vars >= 6 ? (std::size_t{1} << (n_vars - 6)) : 1;
}

/// Reads bit `row` of a packed truth table.
inline bool tt_bit(const std::vector<std::uint64_t>& tt, std::size_t row) {
  return ((tt[row >> 6] >> (row & 63)) & 1ULL) != 0;
}

}  // namespace step::aig
