#include "io/network.h"

#include <stdexcept>
#include <unordered_map>

#include "io/io_error.h"

namespace step::io {

aig::Aig Network::to_aig(bool comb) const {
  if (!latches.empty() && !comb) {
    throw IoError("network: sequential elaboration requires comb=true");
  }

  aig::Aig a;
  std::unordered_map<std::string, aig::Lit> net;

  for (const std::string& in : inputs) {
    net[in] = a.add_input(in);
  }
  for (const Latch& l : latches) {
    net[l.output] = a.add_input(l.output);  // current state becomes a PI
  }

  // Index nodes by output name for demand-driven elaboration.
  std::unordered_map<std::string, const NetNode*> by_name;
  for (const NetNode& n : nodes) {
    if (!by_name.emplace(n.name, &n).second) {
      throw IoError("network: net '" + n.name + "' driven twice");
    }
  }

  // Iterative path-DFS over name dependencies (BLIF allows any node
  // order). Grey marks exactly the nodes on the current path, so hitting
  // a grey fanin is a genuine combinational cycle — shared (diamond)
  // fanins are handled by the black/already-elaborated checks.
  enum class Mark : char { kWhite, kGrey, kBlack };
  std::unordered_map<std::string, Mark> mark;

  auto build_sop = [&](const NetNode* n) {
    std::vector<aig::Lit> terms;
    for (const std::string& cube : n->cubes) {
      if (cube.size() != n->fanins.size()) {
        throw IoError("network: cube width mismatch in '" +
                                 n->name + "'");
      }
      std::vector<aig::Lit> factors;
      for (std::size_t i = 0; i < cube.size(); ++i) {
        if (cube[i] == '-') continue;
        const aig::Lit f = net.at(n->fanins[i]);
        factors.push_back(cube[i] == '1' ? f : aig::lnot(f));
      }
      terms.push_back(a.land_many(factors));  // empty cube = constant true
    }
    aig::Lit v = a.lor_many(terms);  // no cubes = constant false
    if (n->out_value == '0') v = aig::lnot(v);
    net[n->name] = v;
  };

  struct Frame {
    const NetNode* node;
    std::size_t next_fanin = 0;
  };

  auto elaborate = [&](const std::string& root_name) {
    if (net.count(root_name)) return;
    auto root_it = by_name.find(root_name);
    if (root_it == by_name.end()) {
      throw IoError("network: net '" + root_name + "' is undriven");
    }
    if (mark[root_name] == Mark::kBlack) return;

    std::vector<Frame> stack{{root_it->second}};
    mark[root_name] = Mark::kGrey;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next_fanin < f.node->fanins.size()) {
        const std::string& nm = f.node->fanins[f.next_fanin++];
        if (net.count(nm)) continue;  // input, latch output, or elaborated
        auto it = by_name.find(nm);
        if (it == by_name.end()) {
          throw IoError("network: net '" + nm + "' is undriven");
        }
        const Mark m = mark[nm];
        if (m == Mark::kGrey) {
          throw IoError("network: combinational cycle through '" +
                                   nm + "'");
        }
        if (m == Mark::kBlack) continue;
        mark[nm] = Mark::kGrey;
        stack.push_back({it->second});
        continue;
      }
      build_sop(f.node);
      mark[f.node->name] = Mark::kBlack;
      stack.pop_back();
    }
  };

  for (const std::string& out : outputs) {
    elaborate(out);
    a.add_output(net.at(out), out);
  }
  for (const Latch& l : latches) {
    elaborate(l.input);
    a.add_output(net.at(l.input), l.input);  // next-state becomes a PO
  }
  return a;
}

}  // namespace step::io
