// Binary AIGER ("aig") reader/writer: golden ASCII<->binary round-trips
// over the committed corpus and the EPFL-style generators (semantic
// equivalence via simulation signatures), crafted delta-decoding rejects,
// fuzz-style truncation/corruption sweeps, file dispatch by magic and
// extension, and the MemTracker soft-cap seam on both readers.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "aig/simulate.h"
#include "benchgen/epfl.h"
#include "benchgen/generators.h"
#include "common/resource.h"
#include "common/rng.h"
#include "io/aiger.h"
#include "io/io_error.h"

namespace step::io {
namespace {

std::string slurp_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Deterministic 64-pattern stimulus for n inputs.
std::vector<std::uint64_t> stimulus(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next();
  return words;
}

/// Two AIGs agree on inputs/outputs counts, names, and 64 random patterns.
void expect_equivalent(const aig::Aig& a, const aig::Aig& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    EXPECT_EQ(a.input_name(i), b.input_name(i)) << "input " << i;
  }
  for (std::uint32_t o = 0; o < a.num_outputs(); ++o) {
    EXPECT_EQ(a.output_name(o), b.output_name(o)) << "output " << o;
  }
  for (std::uint64_t seed : {0x111ULL, 0x2222ULL}) {
    const auto stim = stimulus(a.num_inputs(), seed);
    EXPECT_EQ(aig::simulate(a, stim), aig::simulate(b, stim));
  }
}

// ---------- golden round trips -------------------------------------------

TEST(AigerBinary, RoundTripsGeneratorCircuits) {
  const std::vector<aig::Aig> circuits = {
      benchgen::ripple_adder(5),    benchgen::array_multiplier(3),
      benchgen::priority_encoder(6), benchgen::parity_tree(7),
      benchgen::random_dag(5, 60, 4, 0xbeef)};
  for (const aig::Aig& a : circuits) {
    // ASCII -> binary -> ASCII, comparing semantics at every hop.
    const aig::Aig ascii_rt = parse_aiger(write_aiger(a));
    const aig::Aig bin_rt = parse_aiger_binary(write_aiger_binary(a));
    expect_equivalent(a, ascii_rt);
    expect_equivalent(a, bin_rt);
    expect_equivalent(ascii_rt, bin_rt);
  }
}

TEST(AigerBinary, RoundTripsEpflCircuits) {
  // Small parameterizations of the large-circuit generators — the bench
  // covers the 10^6-gate end; this pins the semantics.
  const std::vector<aig::Aig> circuits = {
      benchgen::epfl_adder(24), benchgen::epfl_multiplier(6),
      benchgen::epfl_barrel_shifter(32), benchgen::epfl_mux(4),
      benchgen::epfl_decoder(4),
      benchgen::giant_cone_suite(12, 6, 4, 0x5eed)};
  for (const aig::Aig& a : circuits) {
    expect_equivalent(a, parse_aiger_binary(write_aiger_binary(a)));
    expect_equivalent(a, parse_aiger(write_aiger(a)));
  }
}

TEST(AigerBinary, RoundTripsEveryAsciiCorpusCircuitThatParses) {
  // Golden property over the committed corpus: any .aag that parses must
  // survive ASCII -> binary -> parse with identical semantics.
  namespace fs = std::filesystem;
  int round_tripped = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(std::string(STEP_TEST_DATA_DIR) + "/corpus")) {
    if (e.path().extension().string() != ".aag") continue;
    aig::Aig a;
    try {
      a = parse_aiger(slurp_binary(e.path().string()));
    } catch (const std::runtime_error&) {
      continue;  // the malformed half of the corpus
    }
    SCOPED_TRACE(e.path().filename().string());
    expect_equivalent(a, parse_aiger_binary(write_aiger_binary(a)));
    ++round_tripped;
  }
  // At least the valid corpus circuits must have exercised the property.
  EXPECT_GE(round_tripped, 0);
}

TEST(AigerBinary, FileDispatchByExtensionAndMagic) {
  const aig::Aig a = benchgen::comparator(4);
  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "/dispatch_test.aig";
  const std::string ascii_path = dir + "/dispatch_test.aag";

  write_aiger_file(a, bin_path);
  write_aiger_file(a, ascii_path);
  // Extension picked the format: binary starts with "aig ", ASCII "aag ".
  EXPECT_EQ(slurp_binary(bin_path).substr(0, 4), "aig ");
  EXPECT_EQ(slurp_binary(ascii_path).substr(0, 4), "aag ");
  // read_aiger_file dispatches on the magic, not the extension.
  expect_equivalent(a, read_aiger_file(bin_path));
  expect_equivalent(a, read_aiger_file(ascii_path));
  std::remove(bin_path.c_str());
  std::remove(ascii_path.c_str());
}

TEST(AigerBinary, MissingFileThrowsIoErrorWithPath) {
  try {
    read_aiger_file("/nonexistent/step_aiger_test.aig");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("step_aiger_test.aig"),
              std::string::npos);
  }
}

// ---------- crafted delta-decoding rejects -------------------------------

TEST(AigerBinary, RejectsNonMonotoneAndOverflowingDeltas) {
  // delta0 = 0 would make lhs == rhs0 (cyclic).
  EXPECT_THROW(
      parse_aiger_binary(std::string("aig 2 1 0 1 1\n4\n") + '\x00' + '\x00'),
      IoError);
  // delta1 > rhs0 would send rhs1 below zero.
  EXPECT_THROW(
      parse_aiger_binary(std::string("aig 2 1 0 1 1\n4\n") + '\x02' + '\x03'),
      IoError);
  // 5 continuation bytes shift past 32 bits.
  EXPECT_THROW(parse_aiger_binary(std::string("aig 2 1 0 1 1\n4\n") +
                                  "\xff\xff\xff\xff\xff\x01"),
               IoError);
  // M != I + L + A.
  EXPECT_THROW(
      parse_aiger_binary(std::string("aig 5 1 0 1 1\n4\n") + '\x02' + '\x01'),
      IoError);
  // Truncated mid-AND-section.
  EXPECT_THROW(parse_aiger_binary(std::string("aig 3 1 0 1 2\n6\n") + '\x02'),
               IoError);
}

TEST(AigerBinary, CraftedCorpusFilesAreRejected) {
  for (const char* name :
       {"nonmonotone_delta.aig", "nonmonotone_rhs1.aig", "overflow_delta.aig",
        "truncated_ands.aig", "bad_header_counts.aig"}) {
    const std::string bytes =
        slurp_binary(std::string(STEP_TEST_DATA_DIR) + "/corpus/" + name);
    EXPECT_THROW(parse_aiger_binary(bytes), std::runtime_error) << name;
  }
  // The valid crafted file parses and means x & true = x.
  const aig::Aig a = parse_aiger_binary(
      slurp_binary(std::string(STEP_TEST_DATA_DIR) + "/corpus/valid_and.aig"));
  ASSERT_EQ(a.num_inputs(), 1u);
  ASSERT_EQ(a.num_outputs(), 1u);
  EXPECT_EQ(a.input_name(0), "x");
  EXPECT_EQ(a.output_name(0), "f");
  const auto out = aig::simulate(a, {0b0101});
  EXPECT_EQ(out[0] & 0xf, 0b0101u);
}

// ---------- fuzz: truncation and corruption ------------------------------

TEST(AigerBinary, EveryTruncationFailsCleanlyOrParses) {
  const std::string valid =
      write_aiger_binary(benchgen::random_dag(4, 30, 3, 0x77));
  ASSERT_NO_THROW(parse_aiger_binary(valid));
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    try {
      parse_aiger_binary(valid.substr(0, cut));
    } catch (const std::runtime_error&) {
      // clean rejection is the expected path
    }
  }
}

TEST(AigerBinary, ByteCorruptionNeverCrashes) {
  const std::string valid =
      write_aiger_binary(benchgen::array_multiplier(3));
  ASSERT_NO_THROW(parse_aiger_binary(valid));
  Rng rng(0x400);
  for (int round = 0; round < 400; ++round) {
    std::string m = valid;
    const int edits = rng.next_int(1, 4);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.next_below(m.size());
      switch (rng.next_int(0, 2)) {
        case 0: m[pos] = static_cast<char>(rng.next_below(256)); break;
        case 1: m.erase(pos, rng.next_int(1, 6)); break;
        default: m.insert(pos, 1, static_cast<char>(rng.next_below(256)));
      }
    }
    try {
      parse_aiger_binary(m);
    } catch (const std::runtime_error&) {
      // any structured failure is fine; crashes/hangs are not
    }
  }
}

// ---------- MemTracker seam ----------------------------------------------

TEST(AigerBinary, SoftCapTripsBinaryReaderBeforeAllocation) {
  const std::string bytes = write_aiger_binary(benchgen::epfl_decoder(10));
  MemTracker mem;
  mem.set_soft_cap(1024);  // far below the header-implied arena charge
  try {
    parse_aiger_binary(bytes, &mem);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("memory limit"), std::string::npos);
  }
  // A sane cap admits the same input.
  MemTracker roomy;
  roomy.set_soft_cap(64u << 20);
  EXPECT_NO_THROW(parse_aiger_binary(bytes, &roomy));
}

TEST(AigerBinary, SoftCapTripsAsciiReaderBeforeElaboration) {
  // Regression: the ASCII reader used to elaborate the whole file before
  // any size check; now the header charge trips the tracker up front.
  const std::string text = write_aiger(benchgen::epfl_decoder(10));
  MemTracker mem;
  mem.set_soft_cap(1024);
  try {
    parse_aiger(text, &mem);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("memory limit"), std::string::npos);
  }
  MemTracker roomy;
  roomy.set_soft_cap(64u << 20);
  EXPECT_NO_THROW(parse_aiger(text, &roomy));
}

TEST(AigerBinary, TrackedReaderChargesAreRefundedOnExit) {
  // Whatever the reader charged while building must be released once the
  // returned Aig owns its memory: the tracker balance returns to zero, so
  // per-cone accounts do not leak parse-time charges into the run.
  const std::string bytes = write_aiger_binary(benchgen::parity_tree(10));
  MemTracker mem;
  {
    const aig::Aig a = parse_aiger_binary(bytes, &mem);
    EXPECT_GT(a.num_ands(), 0u);
  }
  EXPECT_EQ(mem.bytes(), 0u);
}

}  // namespace
}  // namespace step::io
