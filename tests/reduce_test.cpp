#include "core/reduce.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "aig/support.h"
#include "core/decomposer.h"
#include "test_util.h"

namespace step::core {
namespace {

TEST(Reduce, DropsStructurallyConnectedButIrrelevantInput) {
  // f = (x & y) | (x & !y) == x.
  Cone c;
  const aig::Lit x = c.aig.add_input("x");
  const aig::Lit y = c.aig.add_input("y");
  c.root = c.aig.lor(c.aig.land(x, y), c.aig.land(x, aig::lnot(y)));

  EXPECT_TRUE(depends_on(c, 0));
  EXPECT_FALSE(depends_on(c, 1));

  std::vector<std::uint32_t> kept;
  const Cone r = reduce_cone(c, &kept);
  EXPECT_EQ(kept, (std::vector<std::uint32_t>{0}));
  ASSERT_EQ(r.n(), 1);
  EXPECT_EQ(r.aig.input_name(0), "x");
  // Function preserved: r == x.
  const auto tt = aig::truth_table(r.aig, r.root, {0});
  EXPECT_EQ(tt[0] & 0b11, 0b10u);
}

TEST(Reduce, TightConeIsUntouched) {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lxor(x, y);
  std::vector<std::uint32_t> kept;
  const Cone r = reduce_cone(c, &kept);
  EXPECT_EQ(r.n(), 2);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Reduce, ConstantFunctionLosesAllInputs) {
  Cone c;
  const aig::Lit x = c.aig.add_input();
  const aig::Lit y = c.aig.add_input();
  c.root = c.aig.lor(c.aig.land(x, y), aig::lnot(c.aig.land(x, y)));  // true
  const Cone r = reduce_cone(c);
  EXPECT_EQ(r.n(), 0);
  EXPECT_EQ(r.root, aig::kLitTrue);
}

class ReduceRandom : public ::testing::TestWithParam<int> {};

TEST_P(ReduceRandom, MatchesFunctionalSupportOracle) {
  Rng rng(GetParam() * 911 + 5);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.next_int(2, 8);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 24), rng.next());
    // Oracle over truth tables (aig::functional_support).
    const auto oracle = aig::functional_support(cone.aig, cone.root);
    std::vector<std::uint32_t> kept;
    const Cone r = reduce_cone(cone, &kept);
    EXPECT_EQ(kept, oracle) << "seed=" << GetParam() << " iter=" << iter;
    // Function preserved on the surviving support.
    if (r.n() >= 1 && r.n() == static_cast<int>(oracle.size())) {
      const auto tt_red = aig::truth_table(
          r.aig, r.root,
          [&] {
            std::vector<std::uint32_t> all(r.n());
            for (int i = 0; i < r.n(); ++i) all[i] = i;
            return all;
          }());
      const auto tt_orig = aig::truth_table(cone.aig, cone.root, oracle);
      EXPECT_EQ(tt_red, tt_orig);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReduceRandom, ::testing::Range(0, 6));

TEST(Reduce, DecomposerOptionReducesBeforePartitioning) {
  // A padded OR of two variables: 2 real + 3 noise inputs.
  Cone c;
  const aig::Lit x = c.aig.add_input("x");
  const aig::Lit y = c.aig.add_input("y");
  const aig::Lit z = c.aig.add_input("z");
  (void)c.aig.add_input("w");
  const aig::Lit v = c.aig.add_input("v");
  const aig::Lit noise = c.aig.land(z, aig::lnot(z));  // constant 0
  c.root = c.aig.lor(c.aig.lor(x, y), c.aig.land(noise, v));

  DecomposeOptions opts;
  opts.engine = Engine::kQbfDisjoint;
  opts.reduce_support = true;
  const DecomposeResult r = BiDecomposer(opts).decompose(c);
  ASSERT_EQ(r.status, DecomposeStatus::kDecomposed);
  // Metrics refer to the reduced support {x, y}: perfectly disjoint.
  EXPECT_EQ(r.metrics.n, 2);
  EXPECT_EQ(r.metrics.shared, 0);
}

}  // namespace
}  // namespace step::core
