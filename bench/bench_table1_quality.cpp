// Reproduces Table I: "Comparison of quality metrics between OR models" —
// per circuit, the percentage of commonly-decomposed POs where
// STEP-{QD,QB,QDB} strictly improves on LJH / STEP-MG for its target
// metric, and where both are equal. The paper's invariant: better% +
// equal% = 100 (the QBF engines never lose, being MG-bootstrapped and
// metric-optimal).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace step;
  using core::Engine;
  using core::MetricKind;

  const auto scale = benchgen::scale_from_env();
  const auto suite = benchgen::standard_suite(scale);
  const auto budgets = bench::budgets_for(scale);
  bench::print_preamble("Table I: quality metrics between OR models", scale);

  struct Challenger {
    Engine engine;
    MetricKind kind;
    const char* label;
  };
  const Challenger ch[3] = {
      {Engine::kQbfDisjoint, MetricKind::kDisjointness, "QD:disj"},
      {Engine::kQbfBalanced, MetricKind::kBalancedness, "QB:bal"},
      {Engine::kQbfCombined, MetricKind::kSum, "QDB:d+b"},
  };

  std::printf("%-10s %5s %5s %5s |", "Circuit", "#In", "#InM", "#Out");
  for (const char* base : {"LJH", "MG"}) {
    for (const auto& c : ch) {
      std::printf(" %s vs %-8s", base, c.label);
    }
  }
  std::printf("\n%-29s|", "");
  for (int i = 0; i < 6; ++i) std::printf("  better%%  equal%%");
  std::printf("\n");

  for (const benchgen::BenchCircuit& c : suite) {
    const auto ljh = bench::run_suite({c}, Engine::kLjh, core::GateOp::kOr, budgets)[0];
    const auto mg = bench::run_suite({c}, Engine::kMg, core::GateOp::kOr, budgets)[0];
    const core::CircuitRunResult qx[3] = {
        bench::run_suite({c}, ch[0].engine, core::GateOp::kOr, budgets)[0],
        bench::run_suite({c}, ch[1].engine, core::GateOp::kOr, budgets)[0],
        bench::run_suite({c}, ch[2].engine, core::GateOp::kOr, budgets)[0],
    };

    std::printf("%-10s %5u %5d %5zu |", c.name.c_str(), c.aig.num_inputs(),
                mg.max_support(), mg.pos.size());
    for (const core::CircuitRunResult* base : {&ljh, &mg}) {
      for (int k = 0; k < 3; ++k) {
        const core::QualityComparison cmp =
            core::compare_quality(*base, qx[k], ch[k].kind);
        std::printf("   %6.2f  %6.2f", cmp.better_pct(), cmp.equal_pct());
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf(
      "# shape check (paper): every better%%+equal%% = 100;"
      " QB improves most often, QD least (MG already targets disjointness)\n");
  return 0;
}
