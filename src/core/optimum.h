#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "core/outcome.h"
#include "core/qbf_model.h"

namespace step::core {

/// Bound-search strategies of Section IV.A.6.
enum class SearchStrategy : std::uint8_t {
  kMonotoneIncreasing,  ///< MI: k = 0, 1, 2, ...
  kMonotoneDecreasing,  ///< MD: k = ub−1, (new cost)−1, ...
  kBinary,              ///< Bin: dichotomic over the open interval
};

/// A stage of the composite search: strategy plus an iteration cap
/// (-1 = run the stage to completion).
struct SearchStage {
  SearchStrategy strategy;
  int max_iterations = -1;
};

struct OptimumOptions {
  /// Per-QBF-call timeout (the paper uses 4 s on a 2.93 GHz Xeon; the
  /// library default is scaled to the smaller benchmark suite).
  double call_timeout_s = 1.0;
  /// Empty = use the paper's default schedule for the model:
  /// disjointness / combined: MD(2) → Bin(8) → MI; balancedness: MI.
  std::vector<SearchStage> schedule;
};

/// Paper-default composite schedule for a model.
std::vector<SearchStage> default_schedule(QbfModel model);

struct OptimumResult {
  enum class Outcome {
    kFound,            ///< best holds a valid non-trivial partition
    kNotDecomposable,  ///< proven: no non-trivial partition exists
    kUnknown,          ///< timeouts prevented any conclusion
  };
  Outcome outcome = Outcome::kUnknown;
  /// What prevented a conclusion when outcome == kUnknown (kOk otherwise).
  OutcomeReason reason = OutcomeReason::kOk;
  Partition best;
  int best_cost = 0;
  /// True iff every bound below best_cost was refuted by the QBF solver,
  /// i.e. the partition is provably metric-optimal.
  bool proven_optimal = false;
  int qbf_calls = 0;
  int timeouts = 0;
};

/// Iterative optimum search over the monotone predicate
/// P(k) = "a non-trivial valid partition with target cost <= k exists",
/// decided by QbfPartitionFinder. Maintains the invariant
///   all k < lo refuted,  best holds the cheapest partition found,
/// and walks k according to the staged schedule. Results are never worse
/// than the bootstrap partition (the paper bootstraps with STEP-MG).
///
/// With the finder's default incremental mode, the whole MD/Bin/MI walk
/// drives a single persistent CEGAR solver pair: each query only changes
/// the assumption set activating the bound, and a refuted query's UNSAT
/// core (QbfFindResult::refuted_below) may raise `lo` past k+1, skipping
/// queries outright.
class OptimumSearch {
 public:
  OptimumSearch(QbfPartitionFinder& finder, QbfModel model,
                OptimumOptions opts = {})
      : finder_(finder), model_(model), opts_(std::move(opts)) {}

  OptimumResult run(const std::optional<Partition>& bootstrap,
                    const Deadline* po_deadline = nullptr);

 private:
  QbfPartitionFinder& finder_;
  QbfModel model_;
  OptimumOptions opts_;
};

}  // namespace step::core
