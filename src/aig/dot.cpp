#include "aig/dot.h"

#include <sstream>

namespace step::aig {

std::string to_dot(const Aig& a, const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=BT;\n";
  os << "  n0 [label=\"0\", shape=box, style=dotted];\n";
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (a.is_input(n)) {
      os << "  n" << n << " [label=\"" << a.input_name(a.input_index(n))
         << "\", shape=box];\n";
    } else {
      os << "  n" << n << " [label=\"&\", shape=circle];\n";
    }
  }
  auto edge = [&](std::uint32_t from, Lit l) {
    os << "  n" << node_of(l) << " -> n" << from;
    if (is_complemented(l)) os << " [style=dashed]";
    os << ";\n";
  };
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    edge(n, a.fanin0(n));
    edge(n, a.fanin1(n));
  }
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    os << "  o" << i << " [label=\"" << a.output_name(i)
       << "\", shape=doubleoctagon];\n";
    os << "  n" << node_of(a.output(i)) << " -> o" << i;
    if (is_complemented(a.output(i))) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace step::aig
