#pragma once

#include <memory>
#include <vector>

#include "core/dec_cache.h"
#include "core/decomposer.h"

namespace step::core {

/// Recursive bi-decomposition synthesis — the application that motivates
/// bi-decomposition in the paper's introduction (multi-level logic
/// synthesis / FPGA mapping): each PO function is rewritten as a tree of
/// two-input OR/AND/XOR gates by decomposing recursively until cones are
/// trivial or undecomposable. Because a non-trivial partition keeps
/// |XA ∪ XC| and |XB ∪ XC| strictly below |X|, the recursion terminates.
///
/// Partition quality drives the structure: disjoint partitions (QD/QDB)
/// reduce fanout sharing between the branches, balanced partitions
/// (QB/QDB) keep the gate tree shallow — which is precisely the paper's
/// argument for optimising εD and εB.
///
/// The recursion produces explicit DecTree objects (core/dec_tree.h) and
/// can be backed by a shared NPN-canonical cache (core/dec_cache.h) so
/// repeated cones across POs — and across recursion levels — decompose
/// once per run.
struct SynthesisOptions {
  /// Partition engine used at every recursion node.
  Engine engine = Engine::kQbfCombined;
  /// Gates tried at each node, in preference order.
  std::vector<GateOp> ops = {GateOp::kOr, GateOp::kAnd, GateOp::kXor};
  /// Try every op and keep the one whose partition has the smallest
  /// combined cost (|XC| + imbalance) instead of taking the first success.
  bool pick_best_op = false;
  /// Stop recursing below this support size (a 2-input function is a gate).
  int leaf_support = 2;
  /// Hard recursion depth cap (safety; the support shrink bounds it too).
  int max_depth = 32;
  /// Drop semantically irrelevant inputs at every recursion node before
  /// decomposing (one SAT cofactor check per input; see core/reduce.h).
  /// Tightens the cache key and exposes constant/literal leaves.
  bool reduce_supports = true;
  /// Shared decomposition cache; nullptr disables caching. The cache is
  /// thread-safe, so one instance may serve concurrent PO workers.
  DecCache* cache = nullptr;
  /// Don't-care-aware recursion: every split hands its children the
  /// parent's care set restricted by the sibling's observability
  /// don't-cares (under f = fA OR fB, fA may change wherever fB is 1),
  /// sub-functions constant on their care set collapse to constant
  /// leaves, and per-node validity/extraction/verification run on the
  /// care set. The tree still replays to a function exactly equivalent at
  /// the root (whose care is full), so whole-netlist verification is
  /// unaffected. Cache entries are only *written* by exactly-specified
  /// nodes — an exact tree serves any care set, but not vice versa.
  bool use_dont_cares = false;
  /// Inputs the care projection may existentially quantify per
  /// support-reduction step before the child falls back to exact
  /// semantics (each quantified input can double the care AIG).
  int max_care_project = 8;
  /// Per-decomposition options (budgets etc.).
  DecomposeOptions per_node;
};

struct SynthesisStats {
  int pos_processed = 0;
  int decompositions = 0;    ///< gates introduced by bi-decomposition
  int leaves = 0;            ///< cones/literals/constants emitted verbatim
  int undecomposable = 0;    ///< leaves forced by failed decomposition
  int cache_hits = 0;        ///< recursion nodes served by the cache
  int dc_nodes = 0;          ///< nodes decomposed under a non-trivial care
  int dc_constants = 0;      ///< sub-functions constant on their care set
  std::uint32_t ands_before = 0, ands_after = 0;
  int depth_before = 0, depth_after = 0;

  SynthesisStats& operator+=(const SynthesisStats& o);
};

struct SynthesisResult {
  aig::Aig network;  ///< same PIs/POs as the input circuit
  SynthesisStats stats;
  /// Per-PO decomposition trees (aligned with the circuit's POs).
  std::vector<std::shared_ptr<const DecTree>> trees;
};

/// Recursively bi-decomposes one cone (inputs == support) into an explicit
/// tree, consulting and populating `opts.cache` at every non-trivial node.
/// When `deadline` expires mid-recursion, remaining sub-cones are emitted
/// as verbatim leaves — the result is always functionally complete. A
/// non-trivial `care` (e.g. an SDC window's) makes the tree correct on the
/// care minterms only; it requires `opts.use_dont_cares`.
std::shared_ptr<const DecTree> decompose_to_tree(
    const Cone& cone, const SynthesisOptions& opts,
    SynthesisStats* stats = nullptr, const Deadline* deadline = nullptr,
    const CareSet* care = nullptr);

/// SAT miter: the tree replays to a function equivalent to `cone` — on
/// every care minterm when `care` is non-trivial, everywhere otherwise.
bool tree_equivalent(const Cone& cone, const DecTree& tree,
                     const CareSet* care = nullptr);

/// Rewrites every PO of `circuit` by recursive bi-decomposition.
/// The result is functionally equivalent (tests verify by miter).
SynthesisResult resynthesize(const aig::Aig& circuit,
                             const SynthesisOptions& opts = {});

/// Longest path (in AND gates) from any input to `root`.
int cone_depth(const aig::Aig& a, aig::Lit root);

}  // namespace step::core
