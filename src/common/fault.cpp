#include "common/fault.h"

#include <cstdlib>

namespace step {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kExpire: return "expire";
    case FaultKind::kAllocFail: return "alloc_fail";
    case FaultKind::kAbort: return "abort";
    case FaultKind::kVerifyFail: return "verify_fail";
    case FaultKind::kIoError: return "io_error";
  }
  return "?";
}

std::optional<FaultPlan> FaultPlan::parse(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  const std::size_t c2 = spec.find(':', c1 + 1);
  FaultPlan plan;
  try {
    plan.seed = std::stoull(spec.substr(0, c1));
    plan.rate = std::stod(spec.substr(
        c1 + 1, c2 == std::string::npos ? std::string::npos : c2 - c1 - 1));
  } catch (...) {
    return std::nullopt;
  }
  if (plan.rate < 0.0 || plan.rate > 1.0) return std::nullopt;
  if (c2 != std::string::npos) {
    plan.expire = plan.alloc = plan.abort = plan.verify = plan.io = false;
    for (std::size_t i = c2 + 1; i < spec.size(); ++i) {
      switch (spec[i]) {
        case 'e': plan.expire = true; break;
        case 'a': plan.alloc = true; break;
        case 'b': plan.abort = true; break;
        case 'v': plan.verify = true; break;
        case 'i': plan.io = true; break;
        default: return std::nullopt;
      }
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from_env() {
  const char* spec = std::getenv("STEP_FAULTS");
  if (spec == nullptr || *spec == '\0') return std::nullopt;
  return parse(spec);
}

namespace {

// splitmix64: the per-stream seeding must decorrelate consecutive PO
// indices, and the per-poll draws must be cheap (one poll per deadline
// check on the solver hot path).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultStream::FaultStream(const FaultPlan& plan, std::uint64_t stream_id)
    : plan_(plan),
      state_(splitmix64(plan.seed ^ splitmix64(stream_id))),
      verify_state_(splitmix64(plan.seed ^ splitmix64(~stream_id))) {}

std::uint64_t FaultStream::next_draw(std::uint64_t& state) {
  state = splitmix64(state);
  return state;
}

FaultKind FaultStream::poll() {
  if (!plan_.enabled()) return FaultKind::kNone;
  if (latched_ != 0) return static_cast<FaultKind>(latched_);
  const double u =
      static_cast<double>(next_draw(state_) >> 11) * 0x1.0p-53;
  if (u >= plan_.rate) return FaultKind::kNone;
  // A fault fires: pick the kind from the next draw, restricted to the
  // enabled poll-point kinds (verify/io faults have their own sites).
  FaultKind kinds[3];
  int n = 0;
  if (plan_.expire) kinds[n++] = FaultKind::kExpire;
  if (plan_.alloc) kinds[n++] = FaultKind::kAllocFail;
  if (plan_.abort) kinds[n++] = FaultKind::kAbort;
  if (n == 0) return FaultKind::kNone;
  const FaultKind k = kinds[next_draw(state_) % static_cast<std::uint64_t>(n)];
  latched_ = static_cast<std::uint8_t>(k);
  fired_.fetch_add(1, std::memory_order_relaxed);
  return k;
}

bool FaultStream::fire_verification() {
  if (!plan_.enabled() || !plan_.verify) return false;
  const double u =
      static_cast<double>(next_draw(verify_state_) >> 11) * 0x1.0p-53;
  if (u >= plan_.rate) return false;
  fired_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace step
