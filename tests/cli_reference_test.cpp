// Anti-rot check for the README's command-line reference: the set of
// flags `step --help` prints must equal the set of flags documented in
// README.md § "Command-line reference". Add a flag to the CLI without
// documenting it (or vice versa) and this test names the offender.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

namespace {

std::string run_help() {
  const std::string cmd = std::string(STEP_CLI_PATH) + " --help 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot run " << cmd;
  if (pipe == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  pclose(pipe);
  return out;
}

std::string read_readme_reference_section() {
  std::ifstream in(STEP_README_PATH);
  EXPECT_TRUE(in.good()) << "cannot open " << STEP_README_PATH;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string all = ss.str();
  const std::string heading = "## Command-line reference";
  const std::size_t start = all.find(heading);
  EXPECT_NE(start, std::string::npos)
      << "README.md lacks a '" << heading << "' section";
  if (start == std::string::npos) return {};
  // The section ends at the next markdown heading of any level.
  std::size_t end = all.find("\n#", start + heading.size());
  if (end == std::string::npos) end = all.size();
  return all.substr(start, end - start);
}

/// Extracts CLI flag tokens: whitespace-delimited words starting with '-'
/// followed by a letter, trimmed of trailing punctuation. "--stats",
/// "-op", "-qbf-timeout" match; prose, "<or|and|xor>" or numbers do not.
std::set<std::string> extract_flags(const std::string& text) {
  std::set<std::string> flags;
  std::istringstream is(text);
  std::string tok;
  while (is >> tok) {
    while (!tok.empty() &&
           (tok.back() == ',' || tok.back() == '.' || tok.back() == ')' ||
            tok.back() == ';' || tok.back() == '`')) {
      tok.pop_back();
    }
    while (!tok.empty() && (tok.front() == '(' || tok.front() == '`')) {
      tok.erase(tok.begin());
    }
    if (tok.size() < 2 || tok[0] != '-') continue;
    const std::size_t body = tok[1] == '-' ? 2 : 1;
    if (body >= tok.size() ||
        !std::isalpha(static_cast<unsigned char>(tok[body]))) {
      continue;
    }
    if (tok.find_first_not_of(
            "-abcdefghijklmnopqrstuvwxyz0123456789") != std::string::npos) {
      continue;  // not a plain flag token (e.g. "<luby|ema>", em-dashes)
    }
    flags.insert(tok);
  }
  return flags;
}

TEST(CliReference, HelpAndReadmeDocumentTheSameFlags) {
  const std::set<std::string> help_flags = extract_flags(run_help());
  const std::set<std::string> readme_flags =
      extract_flags(read_readme_reference_section());
  ASSERT_FALSE(help_flags.empty());
  ASSERT_FALSE(readme_flags.empty());

  std::set<std::string> undocumented, stale;
  std::set_difference(help_flags.begin(), help_flags.end(),
                      readme_flags.begin(), readme_flags.end(),
                      std::inserter(undocumented, undocumented.begin()));
  std::set_difference(readme_flags.begin(), readme_flags.end(),
                      help_flags.begin(), help_flags.end(),
                      std::inserter(stale, stale.begin()));
  for (const std::string& f : undocumented) {
    ADD_FAILURE() << "flag printed by `step --help` but missing from the"
                     " README reference: " << f;
  }
  for (const std::string& f : stale) {
    ADD_FAILURE() << "flag documented in README but not printed by"
                     " `step --help`: " << f;
  }
}

TEST(CliReference, HelpMentionsEverySubcommand) {
  const std::string help = run_help();
  for (const char* cmd : {"decompose", "resynth", "stats"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
  // The new solver knobs must be part of the printed reference.
  for (const char* flag :
       {"-restarts", "-lbd-core", "-lbd-tier2", "--no-inprocess",
        "--no-rephase"}) {
    EXPECT_NE(help.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
