#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/lint.h"

namespace step::analysis {

namespace {

constexpr int kPerCodeCap = 20;

/// Same per-code capping discipline as the AIGER linter (duplicated
/// locally to keep the two translation units free-standing).
class Buffer {
 public:
  explicit Buffer(LintReport& report) : report_(report) {}

  void add(const char* code, Severity severity, std::string object,
           std::string message, long line = 0) {
    const int n = ++counts_[code];
    if (n > kPerCodeCap) return;
    report_.findings.push_back(
        Finding{code, severity, std::move(object), std::move(message), line});
  }

  void flush_caps() {
    for (const auto& [code, n] : counts_) {
      if (n <= kPerCodeCap) continue;
      report_.findings.push_back(Finding{
          "LINT-CAPPED", Severity::kInfo, code,
          std::to_string(n - kPerCodeCap) + " further " + code +
              " findings suppressed (" + std::to_string(n) + " total)",
          0});
    }
  }

 private:
  LintReport& report_;
  std::map<std::string, int> counts_;
};

struct Token {
  enum Kind { kNum, kBad, kEof } kind;
  long long value = 0;
  long line = 1;
};

/// Whitespace-separated token stream over the DIMACS body, tracking line
/// numbers and skipping `c` comment lines.
class TokenStream {
 public:
  explicit TokenStream(std::string_view text) : text_(text) {}

  Token next() {
    for (;;) {
      skip_space();
      if (pos_ >= text_.size()) return {Token::kEof, 0, line_};
      if (text_[pos_] == 'c' && at_line_start_token()) {
        skip_line();
        continue;
      }
      break;
    }
    const long tok_line = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_space(text_[pos_])) ++pos_;
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    // ERANGE catches silent clamping to LLONG_MAX/LLONG_MIN; an exact
    // LLONG_MIN parses cleanly but cannot be negated, so reject it too.
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
        v == LLONG_MIN) {
      return {Token::kBad, 0, tok_line};
    }
    return {Token::kNum, v, tok_line};
  }

  /// Peeks whether the next token starts a `p` problem line; consumes the
  /// whole line and returns its fields when it does.
  bool problem_line(std::string& fmt, long long& vars, long long& clauses,
                    long& line) {
    skip_space();
    while (pos_ < text_.size() && text_[pos_] == 'c' && at_line_start_token()) {
      skip_line();
      skip_space();
    }
    if (pos_ >= text_.size() || text_[pos_] != 'p') return false;
    line = line_;
    const std::size_t eol = text_.find('\n', pos_);
    const std::string_view l =
        text_.substr(pos_, eol == std::string_view::npos ? std::string_view::npos
                                                         : eol - pos_);
    pos_ = eol == std::string_view::npos ? text_.size() : eol + 1;
    ++line_;
    // "p cnf <vars> <clauses>"
    char f[16] = {0};
    long long v = -1, c = -1;
    const std::string owned(l);
    if (std::sscanf(owned.c_str(), "p %15s %lld %lld", f, &v, &c) < 1) {
      fmt.clear();
      return true;  // a 'p' line existed, but was unusable
    }
    fmt = f;
    vars = v;
    clauses = c;
    return true;
  }

 private:
  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  }
  bool at_line_start_token() const {
    // A comment marker only counts at the start of a line (DIMACS defines
    // comments as whole lines).
    return pos_ == 0 || text_[pos_ - 1] == '\n' ||
           (pos_ >= 2 && text_[pos_ - 1] == '\r' && text_[pos_ - 2] == '\n');
  }
  void skip_space() {
    while (pos_ < text_.size() && is_space(text_[pos_])) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }
  void skip_line() {
    const std::size_t eol = text_.find('\n', pos_);
    pos_ = eol == std::string_view::npos ? text_.size() : eol + 1;
    ++line_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  long line_ = 1;
};

}  // namespace

LintReport lint_cnf(std::string_view text) {
  LintReport report;
  report.path = "<memory>";
  report.kind = "cnf";
  Buffer fb(report);

  // Plausibility guard mirroring the AIGER linter: every variable needs
  // bytes in the file to occur, so a hostile header or literal must not
  // drive the summary sweep or the polarity table to unbounded sizes.
  const unsigned long long plaus =
      8ULL * static_cast<unsigned long long>(text.size()) + 1024ULL;
  const long long var_cap =
      plaus > static_cast<unsigned long long>(LLONG_MAX)
          ? LLONG_MAX
          : static_cast<long long>(plaus);

  TokenStream ts(text);
  long long declared_vars = -1, declared_clauses = -1;
  {
    std::string fmt;
    long long v = 0, c = 0;
    long pline = 0;
    if (ts.problem_line(fmt, v, c, pline)) {
      if (fmt != "cnf" || v < 0 || c < 0) {
        fb.add("CNF-HEADER", Severity::kWarning, "header",
               "problem line is not a well-formed 'p cnf <vars> <clauses>'",
               pline);
      } else if (v > var_cap) {
        fb.add("CNF-HEADER", Severity::kError, "header",
               "declares " + std::to_string(v) +
                   " variables, implausible for a " +
                   std::to_string(text.size()) + "-byte file",
               pline);
      } else {
        declared_vars = v;
        declared_clauses = c;
      }
    } else {
      fb.add("CNF-HEADER", Severity::kWarning, "header",
             "no 'p cnf' problem line (tolerated, but declared bounds "
             "cannot be checked)",
             1);
    }
  }

  // Clause scan. Statistics for the whole-formula summary findings.
  long long n_clauses = 0;
  long long max_var = 0;
  std::vector<std::uint8_t> polarity;  // bit0: seen positive, bit1: negative
  auto touch = [&](long long var, bool neg) {
    // Callers check var <= var_cap first, so this resize is bounded by the
    // file size.
    const auto v = static_cast<std::size_t>(var);
    if (polarity.size() <= v) polarity.resize(v + 1, 0);
    polarity[v] |= neg ? 2 : 1;
  };

  std::unordered_set<std::string> clause_set;
  std::vector<long long> clause;
  std::set<long long> clause_lits;
  bool open_clause = false;
  long clause_line = 1;

  auto finish_clause = [&](long end_line) {
    ++n_clauses;
    const std::string obj = "clause " + std::to_string(n_clauses);
    if (clause.empty()) {
      fb.add("CNF-EMPTY-CLAUSE", Severity::kError, obj,
             "empty clause: the formula is trivially unsatisfiable",
             end_line);
      return;
    }
    bool taut = false, dup_lit = false;
    for (const long long lit : clause_lits) {
      if (lit > 0 && clause_lits.count(-lit) != 0) taut = true;
    }
    if (clause_lits.size() != clause.size()) dup_lit = true;
    if (taut) {
      fb.add("CNF-TAUT", Severity::kWarning, obj,
             "tautological clause (contains a literal and its negation)",
             clause_line);
    }
    if (dup_lit) {
      fb.add("CNF-DUP-LIT", Severity::kInfo, obj,
             "clause repeats a literal", clause_line);
    }
    // Canonical key: sorted, deduplicated literal set.
    std::string key;
    for (const long long lit : clause_lits) {
      key += std::to_string(lit);
      key += ' ';
    }
    if (!clause_set.insert(key).second) {
      fb.add("CNF-DUP-CLAUSE", Severity::kWarning, obj,
             "duplicate of an earlier clause (same literal set)",
             clause_line);
    }
  };

  for (;;) {
    const Token t = ts.next();
    if (t.kind == Token::kEof) break;
    if (t.kind == Token::kBad) {
      fb.add("CNF-PARSE", Severity::kError, "token",
             "non-numeric or out-of-range token in the clause section",
             t.line);
      continue;
    }
    if (t.value == 0) {
      finish_clause(t.line);
      clause.clear();
      clause_lits.clear();
      open_clause = false;
      continue;
    }
    if (!open_clause) {
      open_clause = true;
      clause_line = t.line;
    }
    const long long var = t.value > 0 ? t.value : -t.value;
    if (var > var_cap) {
      // Keep the literal for the per-clause checks (per-token memory is
      // bounded by the file size) but keep it out of the polarity table
      // and the summary sweep bound.
      fb.add("CNF-RANGE", Severity::kError,
             "clause " + std::to_string(n_clauses + 1),
             "literal " + std::to_string(t.value) +
                 " has an implausible magnitude for a " +
                 std::to_string(text.size()) + "-byte file",
             t.line);
    } else {
      max_var = std::max(max_var, var);
      if (declared_vars >= 0 && var > declared_vars) {
        fb.add("CNF-RANGE", Severity::kError,
               "clause " + std::to_string(n_clauses + 1),
               "literal " + std::to_string(t.value) +
                   " exceeds the declared variable count " +
                   std::to_string(declared_vars),
               t.line);
      }
      touch(var, t.value < 0);
    }
    clause.push_back(t.value);
    clause_lits.insert(t.value);
  }
  if (open_clause) {
    fb.add("CNF-PARSE", Severity::kError,
           "clause " + std::to_string(n_clauses + 1),
           "file ends inside a clause (missing terminating 0)", 0);
    finish_clause(0);
  }

  if (declared_clauses >= 0 && n_clauses != declared_clauses) {
    fb.add("CNF-HEADER", Severity::kWarning, "header",
           "header declares " + std::to_string(declared_clauses) +
               " clause(s) but the body holds " + std::to_string(n_clauses),
           0);
  }

  // Whole-formula summaries: variable-numbering gaps and pure literals are
  // properties of the complete formula, so each yields one finding with
  // representatives rather than one finding per variable.
  {
    // `bound` is capped by the plausibility guard above, so this sweep is
    // linear in the file size. Only an 8-element sample is kept per
    // summary; counting avoids materializing every gap variable.
    const long long bound =
        declared_vars >= 0 ? std::max(declared_vars, max_var) : max_var;
    long long n_gaps = 0, n_pures = 0;
    std::vector<long long> gap_sample, pure_sample;
    for (long long v = 1; v <= bound; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      const std::uint8_t pol = idx < polarity.size() ? polarity[idx] : 0;
      if (pol == 0) {
        if (++n_gaps <= 8) gap_sample.push_back(v);
      } else if (pol != 3) {
        if (++n_pures <= 8) pure_sample.push_back(v);
      }
    }
    auto sample = [](const std::vector<long long>& vs, long long total) {
      std::string s;
      for (std::size_t i = 0; i < vs.size(); ++i) {
        if (i != 0) s += ", ";
        s += std::to_string(vs[i]);
      }
      if (total > static_cast<long long>(vs.size())) s += ", ...";
      return s;
    };
    if (n_gaps > 0) {
      fb.add("CNF-VAR-GAP", Severity::kWarning, "variables",
             std::to_string(n_gaps) +
                 " variable(s) in 1..=" + std::to_string(bound) +
                 " never occur (numbering gap): " + sample(gap_sample, n_gaps),
             0);
    }
    if (n_pures > 0) {
      fb.add("CNF-PURE-LIT", Severity::kInfo, "variables",
             std::to_string(n_pures) + " variable(s) occur in one polarity "
                                       "only: " +
                 sample(pure_sample, n_pures),
             0);
    }
  }

  fb.flush_caps();
  return report;
}

}  // namespace step::analysis
