#pragma once

#include <string>
#include <string_view>

#include "io/network.h"

namespace step::io {

/// Parses BLIF text into a Network. Supports .model, .inputs, .outputs,
/// .names, .latch, .end, comments (#) and line continuations (\).
/// Only the first .model of a file is read. Throws std::runtime_error on
/// malformed input.
Network parse_blif(std::string_view text);

/// Reads and parses a BLIF file from disk.
Network read_blif_file(const std::string& path);

}  // namespace step::io
