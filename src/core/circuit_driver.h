#pragma once

#include <string>
#include <vector>

#include "core/decomposer.h"

namespace step::core {

/// Per-PO outcome of a circuit run (one engine, one op).
struct PoOutcome {
  int po_index = 0;
  int support = 0;
  DecomposeStatus status = DecomposeStatus::kUnknown;
  Metrics metrics;
  bool proven_optimal = false;
  double cpu_s = 0.0;
};

/// One engine applied to every decomposable-candidate PO of a circuit —
/// the row unit of the paper's Tables I, III, IV.
struct CircuitRunResult {
  std::string circuit;
  Engine engine = Engine::kMg;
  GateOp op = GateOp::kOr;
  std::vector<PoOutcome> pos;  ///< POs with support >= 2 only
  double total_cpu_s = 0.0;
  bool hit_circuit_budget = false;

  int num_decomposed() const;
  int num_proven_optimal() const;
  int max_support() const;  ///< the paper's #InM
};

/// Runs one engine over all POs of `circuit`. `circuit_budget_s` mirrors
/// the paper's per-circuit timeout (6000 s there; scaled down here).
CircuitRunResult run_circuit(const aig::Aig& circuit, const std::string& name,
                             const DecomposeOptions& opts,
                             double circuit_budget_s);

/// Quality comparison between two engines on the same circuit/op —
/// the %-better / %-equal columns of Tables I and II. POs are compared
/// when *both* engines decomposed them; `challenger_better` counts POs
/// where the challenger achieved a strictly lower metric value.
struct QualityComparison {
  int considered = 0;
  int challenger_better = 0;
  int equal = 0;
  int challenger_worse = 0;

  double better_pct() const {
    return considered == 0 ? 0.0 : 100.0 * challenger_better / considered;
  }
  double equal_pct() const {
    return considered == 0 ? 0.0 : 100.0 * equal / considered;
  }
};

QualityComparison compare_quality(const CircuitRunResult& base,
                                  const CircuitRunResult& challenger,
                                  MetricKind kind);

}  // namespace step::core
