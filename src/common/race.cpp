#include "common/race.h"

#include <cstddef>

#include "common/thread_annotations.h"

namespace step {

void RaceScheduler::run_all(std::vector<std::function<void()>>& entries) {
  if (entries.empty()) return;

  // Per-call latch: races from different PO workers interleave on the
  // helper pool, so wait_idle() (pool-global) would over-wait.
  struct Latch {
    Mutex mu;
    CondVar cv;
    std::size_t pending STEP_GUARDED_BY(mu) = 0;
  } latch;
  {
    MutexLock lk(latch.mu);
    latch.pending = entries.size() - 1;
  }

  for (std::size_t i = 1; i < entries.size(); ++i) {
    pool_.submit([&latch, entry = std::move(entries[i])] {
      entry();
      MutexLock lk(latch.mu);
      if (--latch.pending == 0) latch.cv.notify_all();
    });
  }
  entries[0]();

  MutexLock lk(latch.mu);
  while (latch.pending != 0) latch.cv.wait(latch.mu);
}

}  // namespace step
