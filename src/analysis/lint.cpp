#include "analysis/lint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/io_error.h"

namespace step::analysis {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

namespace {

int count_of(const LintReport& r, Severity s) {
  int n = 0;
  for (const Finding& f : r.findings) {
    if (f.severity == s) ++n;
  }
  return n;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int LintReport::errors() const { return count_of(*this, Severity::kError); }
int LintReport::warnings() const {
  return count_of(*this, Severity::kWarning);
}
int LintReport::infos() const { return count_of(*this, Severity::kInfo); }

bool LintReport::has(std::string_view code) const {
  for (const Finding& f : findings) {
    if (f.code == code) return true;
  }
  return false;
}

std::string to_json(const LintReport& r) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"path\": \"" << json_escape(r.path) << "\",\n";
  os << "  \"kind\": \"" << r.kind << "\",\n";
  os << "  \"summary\": {\"errors\": " << r.errors()
     << ", \"warnings\": " << r.warnings() << ", \"infos\": " << r.infos()
     << ", \"ok\": " << (r.ok() ? "true" : "false") << "},\n";
  os << "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"code\": \"" << json_escape(f.code) << "\", \"severity\": \""
       << to_string(f.severity) << "\", \"object\": \""
       << json_escape(f.object) << "\", \"line\": " << f.line
       << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (r.findings.empty() ? "]\n" : "\n  ]\n");
  os << "}\n";
  return os.str();
}

LintReport lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw io::IoError("cannot open '" + path + "' for linting", path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw io::IoError("read failure on '" + path + "'", path);
  const std::string bytes = buf.str();

  const auto ends_with = [&](std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
               0;
  };
  LintReport report;
  if (ends_with(".cnf") || ends_with(".dimacs")) {
    report = lint_cnf(bytes);
  } else if (ends_with(".aag") || ends_with(".aig")) {
    report = lint_aiger(bytes);
  } else if (bytes.rfind("aag ", 0) == 0 || bytes.rfind("aig ", 0) == 0) {
    report = lint_aiger(bytes);
  } else {
    // Last resort: anything else is treated as DIMACS (which tolerates a
    // missing header), so `step lint` never silently skips a file.
    report = lint_cnf(bytes);
  }
  report.path = path;
  return report;
}

}  // namespace step::analysis
