// Edge-case and behavioural tests for the SAT solver beyond the oracle
// cross-checks in sat_test.cpp.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sat/solver.h"

namespace step::sat {
namespace {

TEST(SatEdge, EmptyClauseMakesSolverUnusable) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause(std::span<const Lit>{}));
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.solve(), Result::kUnsat);
  // Further clauses are rejected without crashing.
  EXPECT_FALSE(s.add_clause({mk_lit(0)}));
}

TEST(SatEdge, AddClauseAfterSolveIsIncremental) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  // Both variables reappear in clauses added after the first solve.
  s.set_frozen(a);
  s.set_frozen(b);
  s.add_clause({mk_lit(a), mk_lit(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  s.add_clause({~mk_lit(a)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(b), Lbool::kTrue);
  s.add_clause({~mk_lit(b)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatEdge, NewVarAfterSolve) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  ASSERT_EQ(s.solve(), Result::kSat);
  const Var b = s.new_var();
  s.add_clause({~mk_lit(a), ~mk_lit(b)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(b), Lbool::kFalse);
}

TEST(SatEdge, PolarityHintSteersFreeVariables) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  // Polarity hints steer *decisions*; keep both vars in the search by
  // freezing them, or elimination folds the clause away entirely.
  s.set_frozen(a);
  s.set_frozen(b);
  s.add_clause({mk_lit(a), mk_lit(b)});  // leaves both nearly free
  s.set_polarity_hint(a, true);
  s.set_polarity_hint(b, true);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model_value(a), Lbool::kTrue);
  EXPECT_EQ(s.model_value(b), Lbool::kTrue);
}

TEST(SatEdge, StatsAdvance) {
  Rng rng(1);
  SolverOptions o;  // plain CDCL search: the counters under test are the
  o.elim = false;   // search-time ones, so keep preprocessing from
  o.scc = false;    // solving the instance outright
  o.probe = false;
  Solver s(o);
  for (int i = 0; i < 20; ++i) s.new_var();
  for (int c = 0; c < 90; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng.next_int(0, 19), rng.next_bool()));
    }
    s.add_clause(cl);
  }
  (void)s.solve();
  const Solver::Stats& st = s.stats();
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
}

TEST(SatEdge, ManySolveCallsAreStable) {
  // Alternating assumption polarities over many rounds must keep giving
  // consistent answers (regression guard for trail/watch corruption).
  Rng rng(2);
  Solver s;
  const int nv = 12;
  // Every variable is assumed in some later round.
  for (int i = 0; i < nv; ++i) s.set_frozen(s.new_var());
  for (int c = 0; c < 30; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
    }
    s.add_clause(cl);
  }
  Result first_free = s.solve();
  for (int round = 0; round < 50; ++round) {
    LitVec assume{mk_lit(round % nv, (round / nv) % 2 == 0)};
    (void)s.solve(assume);
    EXPECT_EQ(s.solve(), first_free);  // the free query never changes
  }
}

TEST(SatEdge, AssumptionOnlyVariables) {
  // Assumptions over variables that appear in no clause.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const LitVec assume{mk_lit(a), ~mk_lit(b)};
  ASSERT_EQ(s.solve(assume), Result::kSat);
  EXPECT_EQ(s.model_value(a), Lbool::kTrue);
  EXPECT_EQ(s.model_value(b), Lbool::kFalse);
}

TEST(SatEdge, DuplicateAssumptions) {
  Solver s;
  const Var a = s.new_var();
  const LitVec assume{mk_lit(a), mk_lit(a), mk_lit(a)};
  EXPECT_EQ(s.solve(assume), Result::kSat);
}

TEST(SatEdge, UnitClausePersistsAcrossSolves) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause({mk_lit(a)});
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(s.solve(), Result::kSat);
    EXPECT_EQ(s.model_value(a), Lbool::kTrue);
    const LitVec nb{~mk_lit(b)};
    ASSERT_EQ(s.solve(nb), Result::kSat);
    EXPECT_EQ(s.model_value(a), Lbool::kTrue);
  }
}

TEST(SatEdge, ProofLoggingWithMinimizationOffStillRefutes) {
  SolverOptions o;
  o.proof_logging = true;
  o.minimize_learnt = false;
  Solver s(o);
  Rng rng(77);
  for (int i = 0; i < 8; ++i) s.new_var();
  // Dense random instance, almost surely UNSAT.
  for (int c = 0; c < 60; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng.next_int(0, 7), rng.next_bool()));
    }
    s.add_clause(cl);
  }
  if (s.solve() == Result::kUnsat) {
    ASSERT_NE(s.proof().empty_clause(), kProofIdUndef);
    EXPECT_TRUE(s.proof().replay_clause(s.proof().empty_clause()).empty());
  }
}

TEST(SatEdge, RestartBaseOneStillSolves) {
  SolverOptions o;
  o.restart_mode = RestartMode::kLuby;
  o.restart_base = 1;  // restart after every conflict
  o.elim = false;      // the restart machinery only fires during search;
  o.scc = false;       // keep preprocessing from refuting the instance
  o.probe = false;     // before the first conflict
  Solver s(o);
  Var p[4][3];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (auto& row : p) {
    s.add_clause({mk_lit(row[0]), mk_lit(row[1]), mk_lit(row[2])});
  }
  for (int h = 0; h < 3; ++h) {
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        s.add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(SatEdge, PhaseSavingOffStillCorrect) {
  SolverOptions o;
  o.phase_saving = false;
  Solver s(o);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) s.new_var();
  for (int c = 0; c < 35; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng.next_int(0, 9), rng.next_bool()));
    }
    s.add_clause(cl);
  }
  const Result r1 = s.solve();
  Solver s2;  // defaults (phase saving on)
  // Same formula must give same answer.
  Rng rng2(3);
  for (int i = 0; i < 10; ++i) s2.new_var();
  for (int c = 0; c < 35; ++c) {
    LitVec cl;
    for (int j = 0; j < 3; ++j) {
      cl.push_back(mk_lit(rng2.next_int(0, 9), rng2.next_bool()));
    }
    s2.add_clause(cl);
  }
  EXPECT_EQ(r1, s2.solve());
}

TEST(SatEdge, DbReductionFiresAndPreservesCorrectness) {
  // A tiny learnt budget forces clause-database reduction mid-search;
  // pigeonhole must still be refuted.
  SolverOptions o;
  o.max_learnts_floor = 20.0;
  o.reduce_interval = 50;  // schedule reductions aggressively
  o.reduce_min_local = 0;  // …even while the local tier is small
  Solver s(o);
  constexpr int kHoles = 6;
  Var p[kHoles + 1][kHoles];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (auto& row : p) {
    LitVec c;
    for (Var v : row) c.push_back(mk_lit(v));
    s.add_clause(c);
  }
  for (int h = 0; h < kHoles; ++h) {
    for (int i = 0; i <= kHoles; ++i) {
      for (int j = i + 1; j <= kHoles; ++j) {
        s.add_clause({~mk_lit(p[i][h]), ~mk_lit(p[j][h])});
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.stats().db_reductions, 0u);
}

TEST(SatEdge, DbReductionAgreesWithBruteForceOnSatInstances) {
  Rng rng(4711);
  for (int iter = 0; iter < 15; ++iter) {
    const int nv = rng.next_int(6, 10);
    SolverOptions tiny;
    tiny.max_learnts_floor = 4.0;
    Solver constrained(tiny);
    Solver reference;
    for (int i = 0; i < nv; ++i) {
      constrained.new_var();
      reference.new_var();
    }
    for (int c = 0; c < nv * 4; ++c) {
      LitVec cl;
      for (int j = 0; j < 3; ++j) {
        cl.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      constrained.add_clause(cl);
      reference.add_clause(cl);
    }
    EXPECT_EQ(constrained.solve(), reference.solve());
  }
}

TEST(SatEdge, XorChainUnsat) {
  // x1 ^ x2, x2 ^ x3, ..., plus parity contradiction: a classic family
  // stressing learning on long implication chains.
  const int n = 12;
  Solver s;
  std::vector<Var> x(n);
  for (auto& v : x) v = s.new_var();
  auto add_xor = [&](Var u, Var v, bool value) {
    // u ^ v = value as two clauses each direction.
    s.add_clause({mk_lit(u, false), mk_lit(v, !value)});
    s.add_clause({mk_lit(u, true), mk_lit(v, value)});
  };
  for (int i = 0; i + 1 < n; ++i) add_xor(x[i], x[i + 1], true);
  // Chain forces x0 != x1 != ... alternating; closing constraint breaks it.
  add_xor(x[0], x[n - 1], (n - 1) % 2 == 0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatEdge, DuplicateAssumptionsPushLevelsPastVarCount) {
  // Every already-satisfied assumption opens a dummy decision level, so a
  // repeated assumption literal drives the decision level past num_vars;
  // conflicts analyzed up there must not overrun the LBD level stamps
  // (regression: heap overflow in compute_lbd, caught under ASan).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var(),
            d = s.new_var();
  s.add_clause({mk_lit(b), mk_lit(c)});
  s.add_clause({mk_lit(b), ~mk_lit(c)});
  s.add_clause({~mk_lit(b), mk_lit(d)});
  s.add_clause({~mk_lit(b), ~mk_lit(d)});  // UNSAT independent of a
  const LitVec assumps(12, mk_lit(a));     // 11 dummy levels past level 1
  EXPECT_EQ(s.solve(assumps), Result::kUnsat);
  EXPECT_TRUE(s.conflict_core().empty());  // refutation needs no assumption
}

}  // namespace
}  // namespace step::sat
