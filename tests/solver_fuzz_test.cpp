// Randomized cross-check harness for the modernized CDCL hot path, in the
// spirit of krox/dawn's fuzz.py: random CNFs plus random assumption
// subsets, solved incrementally under two solver configurations —
//
//   * "modern"   — the shipping defaults with every new mechanism forced
//                  into overdrive (EMA restarts, aggressive rephasing,
//                  tiny reduce interval, inprocessing on every solve);
//   * "baseline" — the PR-3 configuration (Luby restarts, activity-only
//                  reduction, no inprocessing, no rephasing);
//
// demanding identical SAT/UNSAT answers, valid models, assumption-subset
// cores, and (on small instances) agreement with a brute-force oracle.
// The budget is deliberately small so the whole harness stays CI-friendly;
// crank kRounds locally for a longer soak.

#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/fault.h"
#include "common/rng.h"
#include "common/timer.h"

namespace step::sat {
namespace {

SolverOptions modern_config() {
  SolverOptions o;  // shipping defaults, cranked to fire constantly
  o.restart_mode = RestartMode::kEma;
  o.restart_min_interval = 5;
  o.rephase_interval = 64;
  o.reduce_interval = 64;
  o.max_learnts_floor = 32.0;
  o.inprocess = true;
  o.inprocess_interval = 1;
  o.inprocess_min_conflicts = 0;
  return o;
}

SolverOptions baseline_config() {
  SolverOptions o;
  o.restart_mode = RestartMode::kLuby;
  o.rephase_interval = 0;
  o.inprocess = false;
  return o;
}

/// Brute force over clauses + assumption units (oracle for n <= ~16).
bool oracle_sat(int num_vars, const std::vector<LitVec>& clauses,
                const LitVec& assumptions) {
  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    auto lit_true = [&](Lit l) {
      return (((m >> var(l)) & 1ULL) != 0) != sign(l);
    };
    bool ok = true;
    for (Lit a : assumptions) {
      if (!lit_true(a)) {
        ok = false;
        break;
      }
    }
    for (std::size_t c = 0; ok && c < clauses.size(); ++c) {
      bool sat_c = false;
      for (Lit l : clauses[c]) sat_c = sat_c || lit_true(l);
      ok = sat_c;
    }
    if (ok) return true;
  }
  return false;
}

LitVec random_clause(int num_vars, Rng& rng) {
  const int width = rng.next_int(1, 4);
  LitVec c;
  for (int j = 0; j < width; ++j) {
    c.push_back(mk_lit(rng.next_int(0, num_vars - 1), rng.next_bool()));
  }
  return c;
}

void check_model(const Solver& s, const std::vector<LitVec>& clauses,
                 const LitVec& assumptions) {
  for (const LitVec& c : clauses) {
    bool sat_c = false;
    for (Lit l : c) sat_c = sat_c || s.model_value(l) == Lbool::kTrue;
    ASSERT_TRUE(sat_c) << "model violates a clause";
  }
  for (Lit a : assumptions) {
    ASSERT_EQ(s.model_value(a), Lbool::kTrue) << "model violates an assumption";
  }
}

void check_core(const Solver& s, const LitVec& assumptions) {
  for (Lit l : s.conflict_core()) {
    ASSERT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end())
        << "core literal was never assumed";
  }
}

TEST(SolverFuzz, ModernAgreesWithBaselineUnderAssumptions) {
  constexpr int kRounds = 120;
  constexpr int kSolvesPerRound = 4;
  Rng rng(0xf022ed);
  std::uint64_t sat_answers = 0, unsat_answers = 0;

  for (int round = 0; round < kRounds; ++round) {
    const int nv = rng.next_int(5, 14);
    Solver modern(modern_config());
    Solver baseline(baseline_config());
    for (int i = 0; i < nv; ++i) {
      // Any variable can be assumed or re-added in a later episode, so
      // all of them must be frozen against preprocessing.
      modern.set_frozen(modern.new_var());
      baseline.new_var();
    }
    std::vector<LitVec> clauses;

    // Incremental episodes: grow the formula, solve under fresh random
    // assumptions each time. Inprocessing fires between the episodes on
    // the modern solver — exactly the usage pattern of the CEGAR loops.
    for (int episode = 0; episode < kSolvesPerRound; ++episode) {
      const int grow = rng.next_int(nv, nv * 2);
      for (int c = 0; c < grow; ++c) {
        LitVec cl = random_clause(nv, rng);
        clauses.push_back(cl);
        modern.add_clause(cl);
        baseline.add_clause(cl);
      }
      LitVec assumptions;
      const int n_assume = rng.next_int(0, 3);
      for (int a = 0; a < n_assume; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }

      const Result rm = modern.solve(assumptions);
      const Result rb = baseline.solve(assumptions);
      ASSERT_EQ(rm, rb) << "round " << round << " episode " << episode
                        << ": configs disagree";
      const bool expect_sat = oracle_sat(nv, clauses, assumptions);
      ASSERT_EQ(rm == Result::kSat, expect_sat)
          << "round " << round << " episode " << episode
          << ": oracle disagrees";
      if (rm == Result::kSat) {
        ++sat_answers;
        check_model(modern, clauses, assumptions);
        check_model(baseline, clauses, assumptions);
      } else {
        ++unsat_answers;
        check_core(modern, assumptions);
        check_core(baseline, assumptions);
        // The core alone must already be inconsistent with the clauses.
        ASSERT_FALSE(oracle_sat(nv, clauses, modern.conflict_core()));
      }
      if (!modern.is_ok()) break;  // level-0 UNSAT: this instance is spent
    }
  }
  // The generator must exercise both outcomes, or the harness is dead.
  EXPECT_GT(sat_answers, 0u);
  EXPECT_GT(unsat_answers, 0u);
}

/// Modern defaults with one preprocessing technique toggled per config.
SolverOptions prep_config(bool elim, bool scc, bool probe) {
  SolverOptions o = modern_config();
  o.elim = elim;
  o.scc = scc;
  o.probe = probe;
  return o;
}

TEST(SolverFuzz, PreprocessingConfigsAgreeWithOracle) {
  // Every technique individually off, everything on, everything off —
  // each config must agree with the brute-force oracle, return models
  // that satisfy the *original* clauses (reconstruction), and never
  // touch a frozen variable.
  struct Config {
    const char* name;
    bool elim, scc, probe;
  };
  constexpr Config kConfigs[] = {
      {"full", true, true, true},       {"no_elim", false, true, true},
      {"no_scc", true, false, true},    {"no_probe", true, true, false},
      {"none", false, false, false},
  };
  Rng rng(0x5e11a7e);
  std::uint64_t sat_answers = 0, unsat_answers = 0;

  for (int round = 0; round < 50; ++round) {
    const int nv = rng.next_int(6, 13);
    std::vector<LitVec> clauses;
    for (int c = 0; c < nv * 3; ++c) clauses.push_back(random_clause(nv, rng));
    // Assumptions are drawn from a small frozen prefix; everything else
    // is fair game for elimination and substitution.
    const int n_frozen = rng.next_int(1, 3);

    for (const Config& cfg : kConfigs) {
      SCOPED_TRACE(cfg.name);
      Solver s(prep_config(cfg.elim, cfg.scc, cfg.probe));
      for (int i = 0; i < nv; ++i) s.new_var();
      for (Var v = 0; v < n_frozen; ++v) s.set_frozen(v);
      for (const LitVec& c : clauses) {
        if (!s.add_clause(c)) break;
      }
      for (int solve = 0; solve < 3 && s.is_ok(); ++solve) {
        LitVec assumptions;
        for (Var v = 0; v < n_frozen; ++v) {
          if (rng.next_bool()) assumptions.push_back(mk_lit(v, rng.next_bool()));
        }
        const Result r = s.solve(assumptions);
        ASSERT_EQ(r == Result::kSat, oracle_sat(nv, clauses, assumptions))
            << "round " << round << " solve " << solve
            << ": oracle disagrees";
        if (r == Result::kSat) {
          ++sat_answers;
          check_model(s, clauses, assumptions);  // reconstruction correct
        } else {
          ++unsat_answers;
          check_core(s, assumptions);
        }
        for (Var v = 0; v < n_frozen; ++v) {
          ASSERT_FALSE(s.is_eliminated(v)) << "frozen var eliminated";
          ASSERT_FALSE(s.is_substituted(v)) << "frozen var substituted";
        }
      }
    }
  }
  EXPECT_GT(sat_answers, 0u);
  EXPECT_GT(unsat_answers, 0u);
}

TEST(SolverFuzz, PreprocessingRegressionInstances) {
  // Two shrunk field failures of the probe+elim interplay, pinned under
  // every preprocessing configuration.
  //
  // Instance 1 (UNSAT): probing derives failed-literal units after the
  // inprocess sweep; elimination must not resolve over clauses still
  // carrying the newly falsified literals — a resolvent watched on a
  // false literal silently stops propagating.
  //
  // Instance 2 (SAT): elimination produces a *unit* resolvent on v, then
  // eliminates v itself in the same round; the pending unit is a live
  // clause on v that the occurrence lists cannot see, so v's resolvent
  // set is incomplete and reconstruction returns a bogus model.
  struct Instance {
    std::vector<std::vector<int>> dimacs;
    int nv;
    bool sat;
  };
  const Instance kInstances[] = {
      {{{-4, -2}, {-4, -3}, {4, 2, 3}, {-5, 1}, {-5, -4}, {5, -1, 4},
        {-6, 2}, {-6, 5}, {6, -2, -5}, {-7, 1}, {-7, 2}, {7, -1, -2},
        {-8, 2}, {-8, 7}, {8, -2, -7}, {-9, -6, -8}, {-9, 6, 8}, {9}},
       9,
       false},
      {{{-5, 9, 4}, {-4, -1, 10}, {-2, 9, 10}, {-3, 4, 5}, {6, 2, 1},
        {4, 4, 3}, {-3, -3, -10}, {3, -4, -10}, {-9, -3, -3}, {10, 2, -6}},
       10,
       true},
  };
  const bool kToggles[][3] = {{true, true, true},
                              {false, true, true},
                              {true, false, true},
                              {true, true, false},
                              {false, false, false}};
  for (const Instance& inst : kInstances) {
    std::vector<LitVec> clauses;
    for (const auto& c : inst.dimacs) {
      LitVec lits;
      for (int d : c) lits.push_back(mk_lit(std::abs(d) - 1, d < 0));
      clauses.push_back(lits);
    }
    for (const auto& t : kToggles) {
      Solver s(prep_config(t[0], t[1], t[2]));
      for (int i = 0; i < inst.nv; ++i) s.new_var();
      for (const LitVec& c : clauses) {
        if (!s.add_clause(c)) break;
      }
      const Result r = s.is_ok() ? s.solve() : Result::kUnsat;
      ASSERT_EQ(r, inst.sat ? Result::kSat : Result::kUnsat);
      if (r == Result::kSat) check_model(s, clauses, {});
    }
  }
}

TEST(SolverFuzz, InprocessingKeepsIncrementalAnswersStable) {
  // Pin the exact hazard inprocessing could introduce: clauses deleted or
  // strengthened between solves must never change answers under
  // assumptions that arrive *after* the rewrite.
  Rng rng(20260731);
  for (int round = 0; round < 60; ++round) {
    const int nv = rng.next_int(6, 12);
    SolverOptions aggressive = modern_config();
    Solver s(aggressive);
    Solver ref(baseline_config());
    for (int i = 0; i < nv; ++i) {
      s.set_frozen(s.new_var());  // assumptions range over every variable
      ref.new_var();
    }
    std::vector<LitVec> clauses;
    for (int c = 0; c < nv * 3; ++c) {
      LitVec cl = random_clause(nv, rng);
      clauses.push_back(cl);
      s.add_clause(cl);
      ref.add_clause(cl);
    }
    // Repeated solves on the same formula: every round after the first
    // runs inprocessing first; answers must stay fixed.
    for (int i = 0; i < 4; ++i) {
      LitVec assumptions;
      for (int a = 0; a < 2; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      ASSERT_EQ(s.solve(assumptions), ref.solve(assumptions))
          << "round " << round << " solve " << i;
    }
    // Instances refuted at level 0 short-circuit solve() before the
    // inprocessing hook; everything else must have run it.
    if (s.is_ok()) EXPECT_GE(s.stats().inprocess_rounds, 1u);
  }
}

TEST(SolverFuzz, ConflictBudgetsAndInjectedFaultsOnlyLoseAnswers) {
  // Random instances under a random conflict cap plus a fault-injected
  // deadline: every answer is either kUnknown (with the stop attributed in
  // the stats / the deadline trip) or exactly the oracle's — budgets and
  // injected faults may cost answers, never corrupt them.
  Rng rng(0xfa17);
  std::uint64_t unknowns = 0, answers = 0;
  for (int round = 0; round < 80; ++round) {
    const int nv = rng.next_int(6, 12);
    std::vector<LitVec> clauses;
    for (int c = 0; c < nv * 3; ++c) clauses.push_back(random_clause(nv, rng));

    SolverOptions capped = modern_config();
    capped.conflict_budget = rng.next_int(1, 40);
    Solver s(capped);
    for (int i = 0; i < nv; ++i) s.set_frozen(s.new_var());
    for (const LitVec& c : clauses) {
      if (!s.add_clause(c)) break;
    }

    FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(round);
    plan.rate = 0.02;
    FaultStream faults(plan, /*stream_id=*/0);
    Deadline deadline(60.0);
    deadline.attach_faults(&faults);

    for (int solve = 0; solve < 3 && s.is_ok(); ++solve) {
      LitVec assumptions;
      const int n_assume = rng.next_int(0, 2);
      for (int a = 0; a < n_assume; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      const Result r = s.solve_limited(assumptions, -1, &deadline);
      if (r == Result::kUnknown) {
        ++unknowns;
        // Every kUnknown is attributable: either the cap fired (stats) or
        // the injected fault tripped the deadline.
        EXPECT_TRUE(s.stats().conflict_budget_stops > 0 ||
                    s.stats().deadline_stops > 0 ||
                    deadline.trip() != Deadline::Trip::kNone);
        continue;
      }
      ++answers;
      ASSERT_EQ(r == Result::kSat, oracle_sat(nv, clauses, assumptions))
          << "round " << round << " solve " << solve;
      if (r == Result::kSat) {
        check_model(s, clauses, assumptions);
      } else {
        check_core(s, assumptions);
      }
    }
  }
  // The sweep must exercise both the lost-answer and the answered path.
  EXPECT_GT(unknowns, 0u);
  EXPECT_GT(answers, 0u);
}

TEST(SolverFuzz, CancelThenResolveLeavesSolverReusable) {
  // The portfolio's cancel contract (see solve_limited's doc in solver.h):
  // a solve_limited interrupted at *any* poll point — entry, mid-search,
  // around restarts and inprocessing — must leave the incremental solver
  // fully reusable, answering the next solve on the same instance exactly
  // like a never-interrupted solver. Interruptions are forced
  // deterministically through the deadline's poll-count seam at varying
  // depths; the uninterrupted re-solve is checked against the oracle.
  Rng rng(0xcace1);
  std::uint64_t cancelled = 0, resolved_sat = 0, resolved_unsat = 0;
  for (int round = 0; round < 60; ++round) {
    const int nv = rng.next_int(6, 12);
    Solver s(modern_config());
    for (int i = 0; i < nv; ++i) s.set_frozen(s.new_var());
    std::vector<LitVec> clauses;
    for (int episode = 0; episode < 4 && s.is_ok(); ++episode) {
      const int grow = rng.next_int(nv, nv * 2);
      for (int c = 0; c < grow && s.is_ok(); ++c) {
        LitVec cl = random_clause(nv, rng);
        clauses.push_back(cl);
        s.add_clause(cl);
      }
      if (!s.is_ok()) break;
      LitVec assumptions;
      const int n_assume = rng.next_int(0, 3);
      for (int a = 0; a < n_assume; ++a) {
        assumptions.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }

      // Interrupt: 0 polls cancels at entry, small counts land inside the
      // search loop. Biased low — these instances solve within a handful
      // of deadline polls, so deep counts never interrupt anything.
      Deadline cancel(60.0);
      const int polls =
          rng.next_bool() ? rng.next_int(0, 2) : rng.next_int(0, 12);
      cancel.force_expire_after_polls(polls);
      if (s.solve_limited(assumptions, -1, &cancel) == Result::kUnknown) {
        ++cancelled;
      }

      // Same solver, uninterrupted: no stale trail, no half-applied
      // rewrite, no lost assumption freeze may survive the interruption.
      const Result r = s.solve(assumptions);
      ASSERT_NE(r, Result::kUnknown);
      ASSERT_EQ(r == Result::kSat, oracle_sat(nv, clauses, assumptions))
          << "round " << round << " episode " << episode
          << ": interrupted solver disagrees with the oracle on re-solve";
      if (r == Result::kSat) {
        ++resolved_sat;
        check_model(s, clauses, assumptions);
      } else {
        ++resolved_unsat;
        check_core(s, assumptions);
      }
    }
  }
  // The sweep must actually interrupt solves and see both answers.
  EXPECT_GT(cancelled, 0u);
  EXPECT_GT(resolved_sat, 0u);
  EXPECT_GT(resolved_unsat, 0u);
}

}  // namespace
}  // namespace step::sat
