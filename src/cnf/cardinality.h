#pragma once

#include <span>
#include <vector>

#include "cnf/cnf.h"
#include "sat/types.h"

namespace step::cnf {

/// Cardinality constraints over SAT literals.
///
/// The QBF models constrain the universal partition variables:
///   fN: AtLeast1(alpha) ∧ AtLeast1(beta) ∧ per-pair AtMostOne
///   fT(QD), eq. (5):  #{x : x ∈ XC} <= k
///   fT(QB), eq. (6):  0 <= #XA − #XB <= k
///   fT(QDB), eq. (8): 0 <= #XC + #XA − #XB <= k
/// All reduce to AtMost-k over mixed-polarity literal lists; the encoder is
/// the Sinz sequential counter (O(n·k) clauses, arc-consistent).

/// At least one literal true (a single clause).
void at_least_one(ClauseSink& sink, std::span<const sat::Lit> lits);

/// At most one literal true (pairwise encoding; fine for per-pair use).
void at_most_one_pairwise(ClauseSink& sink, std::span<const sat::Lit> lits);

/// Sequential-counter AtMost-k: at most k of `lits` are true.
/// k >= lits.size() emits nothing; k == 0 emits unit clauses.
void at_most_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k);

/// At least k of `lits` are true (dual of at_most_k on negations).
void at_least_k(ClauseSink& sink, std::span<const sat::Lit> lits, int k);

/// Difference bound: sum(a in pos) − sum(b in neg) <= k
/// (k may be negative). Encoded as AtMost(k + |neg|) over pos ∪ ¬neg.
void diff_at_most_k(ClauseSink& sink, std::span<const sat::Lit> pos,
                    std::span<const sat::Lit> neg, int k);

/// Difference lower bound: sum(pos) − sum(neg) >= 0.
void diff_non_negative(ClauseSink& sink, std::span<const sat::Lit> pos,
                       std::span<const sat::Lit> neg);

}  // namespace step::cnf
