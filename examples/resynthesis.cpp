// Multi-level resynthesis by recursive bi-decomposition — the application
// the paper's introduction motivates (multi-level logic synthesis, FPGA
// mapping). Every PO is rewritten as a tree of two-input OR/AND/XOR gates
// whose structure follows the computed partitions: disjoint partitions
// reduce sharing between branches, balanced partitions keep trees
// shallow.
//
//   $ ./resynthesis [mg|qd|qb|qdb]

#include <cstdio>
#include <cstring>

#include "benchgen/generators.h"
#include "core/synthesis.h"
#include "io/blif_writer.h"

int main(int argc, char** argv) {
  using namespace step;

  core::SynthesisOptions opts;
  opts.pick_best_op = true;
  const char* engine = argc > 1 ? argv[1] : "qdb";
  if (std::strcmp(engine, "mg") == 0) {
    opts.engine = core::Engine::kMg;
  } else if (std::strcmp(engine, "qd") == 0) {
    opts.engine = core::Engine::kQbfDisjoint;
  } else if (std::strcmp(engine, "qb") == 0) {
    opts.engine = core::Engine::kQbfBalanced;
  } else {
    opts.engine = core::Engine::kQbfCombined;
  }

  const aig::Aig circ = benchgen::merge(
      {benchgen::random_sop(4, 4, 2, 4, 4, 0x5eed), benchgen::parity_tree(8),
       benchgen::mux_tree(3)});
  std::printf("input: %u PIs, %u POs, %u AND gates, depth %d\n",
              circ.num_inputs(), circ.num_outputs(), circ.num_ands(),
              core::cone_depth(circ, circ.output(circ.num_outputs() - 1)));

  const core::SynthesisResult r = core::resynthesize(circ, opts);
  std::printf("engine %s: %d bi-decompositions, %d leaves"
              " (%d undecomposable)\n",
              core::to_string(opts.engine), r.stats.decompositions,
              r.stats.leaves, r.stats.undecomposable);
  std::printf("AND gates: %u -> %u, max PO depth: %d -> %d\n",
              r.stats.ands_before, r.stats.ands_after, r.stats.depth_before,
              r.stats.depth_after);

  io::write_blif_file(r.network, "/tmp/resynthesized.blif", "resynth");
  std::printf("wrote /tmp/resynthesized.blif\n");
  return 0;
}
