// Robustness: the parsers must reject malformed input with exceptions —
// never crash, hang, or silently accept — under random mutation of valid
// files (a light structured fuzz, deterministic by seed).

#include <gtest/gtest.h>

#include <string>

#include "benchgen/generators.h"
#include "common/rng.h"
#include "io/aiger.h"
#include "io/blif_reader.h"
#include "io/blif_writer.h"
#include "io/pla_reader.h"
#include "sat/dimacs.h"

namespace step {
namespace {

std::string mutate(const std::string& base, Rng& rng) {
  std::string s = base;
  const int edits = rng.next_int(1, 4);
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) break;
    const std::size_t pos = rng.next_below(s.size());
    switch (rng.next_int(0, 3)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(' ' + rng.next_int(0, 94));
        break;
      case 1:  // delete a span
        s.erase(pos, rng.next_int(1, 8));
        break;
      case 2:  // duplicate a span
        s.insert(pos, s.substr(pos, rng.next_int(1, 8)));
        break;
      case 3:  // truncate
        s.resize(pos);
        break;
    }
  }
  return s;
}

template <typename ParseFn>
void fuzz(const std::string& valid, ParseFn parse, int rounds, int seed) {
  // The valid input must parse...
  EXPECT_NO_THROW(parse(valid));
  // ...and no mutation may do anything but succeed or throw runtime_error.
  Rng rng(seed);
  for (int i = 0; i < rounds; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      parse(m);
    } catch (const std::runtime_error&) {
      // expected failure mode
    }
  }
}

TEST(Robustness, BlifParserSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::ripple_adder(3), "m");
  fuzz(valid, [](const std::string& s) { return io::parse_blif(s); }, 400, 1);
}

TEST(Robustness, BlifElaborationSurvivesMutation) {
  const std::string valid = io::write_blif(benchgen::comparator(3), "m");
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_blif(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, AigerParserSurvivesMutation) {
  const std::string valid = io::write_aiger(benchgen::parity_tree(5));
  fuzz(valid, [](const std::string& s) { return io::parse_aiger(s); }, 400, 3);
}

TEST(Robustness, PlaParserSurvivesMutation) {
  const std::string valid =
      ".i 4\n.o 2\n.ilb a b c d\n.ob f g\n"
      "1-0- 10\n-11- 11\n0001 01\n.e\n";
  fuzz(valid, [](const std::string& s) { return io::parse_pla(s); }, 400, 4);
}

TEST(Robustness, PlaElaborationSurvivesMutation) {
  const std::string valid = ".i 3\n.o 1\n110 1\n0-1 1\n.e\n";
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string m = mutate(valid, rng);
    try {
      io::parse_pla(m).to_aig();
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Robustness, DimacsParserSurvivesMutation) {
  const std::string valid = "p cnf 4 3\n1 -2 0\n2 3 -4 0\n-1 4 0\n";
  fuzz(valid, [](const std::string& s) { return sat::parse_dimacs(s); }, 400, 6);
}

TEST(Robustness, WritersAlwaysReparse) {
  // Property: whatever circuit we generate, writer output re-parses.
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const aig::Aig a = benchgen::random_dag(rng.next_int(2, 8),
                                            rng.next_int(2, 40),
                                            rng.next_int(1, 6), rng.next());
    EXPECT_NO_THROW(io::parse_blif(io::write_blif(a)).to_aig());
    EXPECT_NO_THROW(io::parse_aiger(io::write_aiger(a)));
  }
}

}  // namespace
}  // namespace step
