#include "aig/ops.h"

namespace step::aig {

namespace {

/// Iterative post-order copy shared by the public entry points.
/// `map_input` returns the dst literal for a src input node.
template <typename MapInput>
Lit copy_cone_impl(const Aig& src, Lit root, Aig& dst, MapInput map_input) {
  std::vector<Lit> memo(src.num_nodes(), kLitInvalid);
  memo[0] = kLitFalse;

  std::vector<std::uint32_t> stack{node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (memo[n] != kLitInvalid) {
      stack.pop_back();
      continue;
    }
    if (src.is_input(n)) {
      memo[n] = map_input(n);
      STEP_CHECK(memo[n] != kLitInvalid);
      stack.pop_back();
      continue;
    }
    const std::uint32_t c0 = node_of(src.fanin0(n));
    const std::uint32_t c1 = node_of(src.fanin1(n));
    bool ready = true;
    if (memo[c0] == kLitInvalid) {
      stack.push_back(c0);
      ready = false;
    }
    if (memo[c1] == kLitInvalid) {
      stack.push_back(c1);
      ready = false;
    }
    if (!ready) continue;
    const Lit f0 = lit_with_sign(memo[c0], is_complemented(src.fanin0(n)) !=
                                               is_complemented(memo[c0]));
    const Lit f1 = lit_with_sign(memo[c1], is_complemented(src.fanin1(n)) !=
                                               is_complemented(memo[c1]));
    memo[n] = dst.land(f0, f1);
    stack.pop_back();
  }
  const Lit m = memo[node_of(root)];
  return is_complemented(root) ? lnot(m) : m;
}

}  // namespace

Lit copy_cone(const Aig& src, Lit root, Aig& dst,
              const std::vector<Lit>& input_map) {
  return copy_cone_impl(src, root, dst, [&](std::uint32_t n) {
    const int idx = src.input_index(n);
    STEP_CHECK(idx >= 0 && idx < static_cast<int>(input_map.size()));
    return input_map[idx];
  });
}

Lit extract_cone(const Aig& src, Lit root, Aig& dst,
                 std::vector<std::uint32_t>& used_inputs,
                 std::vector<Lit>& created_inputs) {
  // First find the support so inputs are created in src input order.
  std::vector<char> in_support(src.num_inputs(), 0);
  std::vector<char> visited(src.num_nodes(), 0);
  std::vector<std::uint32_t> stack{node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (visited[n]) continue;
    visited[n] = 1;
    if (src.is_input(n)) {
      in_support[src.input_index(n)] = 1;
    } else if (src.is_and(n)) {
      stack.push_back(node_of(src.fanin0(n)));
      stack.push_back(node_of(src.fanin1(n)));
    }
  }
  std::vector<Lit> input_map(src.num_inputs(), kLitInvalid);
  for (std::uint32_t i = 0; i < src.num_inputs(); ++i) {
    if (!in_support[i]) continue;
    used_inputs.push_back(i);
    const Lit dl = dst.add_input(src.input_name(i));
    created_inputs.push_back(dl);
    input_map[i] = dl;
  }
  return copy_cone(src, root, dst, input_map);
}

Lit cofactor(const Aig& src, Lit root, Aig& dst,
             const std::vector<int>& assignment,
             const std::vector<Lit>& free_input_map) {
  return copy_cone_impl(src, root, dst, [&](std::uint32_t n) {
    const int idx = src.input_index(n);
    STEP_CHECK(idx >= 0 && idx < static_cast<int>(assignment.size()));
    if (assignment[idx] == 0) return kLitFalse;
    if (assignment[idx] == 1) return kLitTrue;
    STEP_CHECK(idx < static_cast<int>(free_input_map.size()));
    return free_input_map[idx];
  });
}

namespace {

Lit build_from_tt_rec(Aig& dst, const std::vector<std::uint64_t>& tt,
                      const std::vector<Lit>& inputs, std::size_t var,
                      std::size_t row_base) {
  if (var == 0) {
    return ((tt[row_base >> 6] >> (row_base & 63)) & 1ULL) != 0 ? kLitTrue
                                                                : kLitFalse;
  }
  const std::size_t half = std::size_t{1} << (var - 1);
  const Lit lo = build_from_tt_rec(dst, tt, inputs, var - 1, row_base);
  const Lit hi = build_from_tt_rec(dst, tt, inputs, var - 1, row_base + half);
  if (lo == hi) return lo;
  return dst.lmux(inputs[var - 1], hi, lo);
}

}  // namespace

Lit build_from_tt(Aig& dst, const std::vector<std::uint64_t>& tt,
                  const std::vector<Lit>& inputs) {
  const std::size_t n = inputs.size();
  STEP_CHECK(n <= 20);
  STEP_CHECK(tt.size() >= (n >= 6 ? (std::size_t{1} << (n - 6)) : 1));
  return build_from_tt_rec(dst, tt, inputs, n, 0);
}

Aig sweep_dead(const Aig& src) {
  // Live = in the fanin cone of some output. Node ids are topologically
  // ordered (fanins precede fanouts), so one reverse sweep marks the
  // transitive cone.
  std::vector<bool> live(src.num_nodes(), false);
  for (std::uint32_t o = 0; o < src.num_outputs(); ++o) {
    live[node_of(src.output(o))] = true;
  }
  for (std::uint32_t node = src.num_nodes(); node-- > 1;) {
    if (src.is_and(node) && live[node]) {
      live[node_of(src.fanin0(node))] = true;
      live[node_of(src.fanin1(node))] = true;
    }
  }

  Aig dst;
  std::vector<Lit> map(src.num_nodes(), kLitInvalid);
  map[0] = kLitFalse;
  for (std::uint32_t i = 0; i < src.num_inputs(); ++i) {
    map[src.input_node(i)] = dst.add_input(src.input_name(i));
  }
  auto mapped = [&](Lit l) {
    return lit_with_sign(map[node_of(l)], is_complemented(l));
  };
  for (std::uint32_t node = 1; node < src.num_nodes(); ++node) {
    if (!src.is_and(node) || !live[node]) continue;
    // Verbatim copy (no re-strashing): live structure is preserved
    // exactly, only the dead nodes disappear.
    map[node] = dst.add_raw_and(mapped(src.fanin0(node)),
                                mapped(src.fanin1(node)));
  }
  for (std::uint32_t o = 0; o < src.num_outputs(); ++o) {
    dst.add_output(mapped(src.output(o)), src.output_name(o));
  }
  return dst;
}

}  // namespace step::aig
