#include "itp/interpolant.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "common/rng.h"

namespace step::itp {
namespace {

using sat::Lit;
using sat::LitVec;
using sat::mk_lit;
using sat::Result;
using sat::Solver;
using sat::SolverOptions;

Solver make_proof_solver(int num_vars) {
  SolverOptions o;
  o.proof_logging = true;
  Solver s(o);
  for (int i = 0; i < num_vars; ++i) s.new_var();
  return s;
}

bool clause_satisfied(const LitVec& c, std::uint64_t m) {
  for (Lit l : c) {
    if ((((m >> sat::var(l)) & 1ULL) != 0) != sat::sign(l)) return true;
  }
  return false;
}

bool all_satisfied(const std::vector<LitVec>& cs, std::uint64_t m) {
  for (const LitVec& c : cs) {
    if (!clause_satisfied(c, m)) return false;
  }
  return true;
}

/// Checks the two Craig properties by brute force over all assignments:
///   every model of A satisfies I;  no model of B satisfies I.
void check_interpolant(int num_vars, const std::vector<LitVec>& a_clauses,
                       const std::vector<LitVec>& b_clauses) {
  Solver s = make_proof_solver(num_vars);
  for (const LitVec& c : a_clauses) s.add_clause(c, kTagA);
  for (const LitVec& c : b_clauses) s.add_clause(c, kTagB);
  ASSERT_EQ(s.solve(), Result::kUnsat);

  // Shared variables get AIG inputs; everything else stays unmapped.
  std::vector<char> in_a(num_vars, 0), in_b(num_vars, 0);
  for (const LitVec& c : a_clauses) {
    for (Lit l : c) in_a[sat::var(l)] = 1;
  }
  for (const LitVec& c : b_clauses) {
    for (Lit l : c) in_b[sat::var(l)] = 1;
  }
  aig::Aig dst;
  std::vector<aig::Lit> shared_map(s.num_vars(), aig::kLitInvalid);
  std::vector<int> shared_vars;
  for (int v = 0; v < num_vars; ++v) {
    if (in_a[v] && in_b[v]) {
      shared_map[v] = dst.add_input();
      shared_vars.push_back(v);
    }
  }
  const aig::Lit itp = build_interpolant(s, dst, shared_map);

  auto eval_itp = [&](std::uint64_t m) {
    std::vector<std::uint64_t> stim(dst.num_inputs(), 0);
    for (std::size_t j = 0; j < shared_vars.size(); ++j) {
      stim[j] = ((m >> shared_vars[j]) & 1ULL) ? ~0ULL : 0;
    }
    return (aig::simulate_cone(dst, itp, stim) & 1ULL) != 0;
  };

  for (std::uint64_t m = 0; m < (1ULL << num_vars); ++m) {
    if (all_satisfied(a_clauses, m)) {
      EXPECT_TRUE(eval_itp(m)) << "A-model " << m << " violates A => I";
    }
    if (all_satisfied(b_clauses, m)) {
      EXPECT_FALSE(eval_itp(m)) << "B-model " << m << " violates I & B unsat";
    }
  }
}

TEST(Interpolant, SingleSharedVariable) {
  // A = {x}, B = {¬x}: the interpolant must be exactly x.
  check_interpolant(1, {{mk_lit(0)}}, {{~mk_lit(0)}});
}

TEST(Interpolant, AAloneUnsatGivesFalse) {
  Solver s = make_proof_solver(1);
  s.add_clause({mk_lit(0)}, kTagA);
  s.add_clause({~mk_lit(0)}, kTagA);
  ASSERT_EQ(s.solve(), Result::kUnsat);
  aig::Aig dst;
  const aig::Lit itp =
      build_interpolant(s, dst, std::vector<aig::Lit>(1, aig::kLitInvalid));
  EXPECT_EQ(itp, aig::kLitFalse);
}

TEST(Interpolant, BAloneUnsatGivesTrue) {
  Solver s = make_proof_solver(1);
  s.add_clause({mk_lit(0)}, kTagB);
  s.add_clause({~mk_lit(0)}, kTagB);
  ASSERT_EQ(s.solve(), Result::kUnsat);
  aig::Aig dst;
  const aig::Lit itp =
      build_interpolant(s, dst, std::vector<aig::Lit>(1, aig::kLitInvalid));
  EXPECT_EQ(itp, aig::kLitTrue);
}

TEST(Interpolant, ChainThroughLocalVariables) {
  // A: a, a->s;  B: s->b, ¬b.  Shared: s. Interpolant must be s.
  // vars: 0=a (A-local), 1=s (shared), 2=b (B-local).
  check_interpolant(3,
                    {{mk_lit(0)}, {~mk_lit(0), mk_lit(1)}},
                    {{~mk_lit(1), mk_lit(2)}, {~mk_lit(2)}});
}

TEST(Interpolant, TwoSharedVariables) {
  // A forces s0 ∧ s1 through a local var; B forbids s0 ∧ s1.
  check_interpolant(
      3, {{mk_lit(2)}, {~mk_lit(2), mk_lit(0)}, {~mk_lit(2), mk_lit(1)}},
      {{~mk_lit(0), ~mk_lit(1)}});
}

class InterpolantRandom : public ::testing::TestWithParam<int> {};

TEST_P(InterpolantRandom, CraigPropertiesHoldOnRandomRefutations) {
  Rng rng(GetParam() * 48611 + 29);
  int checked = 0;
  for (int iter = 0; iter < 120 && checked < 10; ++iter) {
    const int nv = rng.next_int(3, 8);
    std::vector<LitVec> a_cl, b_cl;
    const int nc = rng.next_int(6, 26);
    for (int i = 0; i < nc; ++i) {
      LitVec c;
      const int w = rng.next_int(1, 3);
      for (int j = 0; j < w; ++j) {
        c.push_back(mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      (rng.next_bool() ? a_cl : b_cl).push_back(c);
    }
    if (a_cl.empty() || b_cl.empty()) continue;

    // Keep only UNSAT instances.
    bool sat_somewhere = false;
    for (std::uint64_t m = 0; m < (1ULL << nv) && !sat_somewhere; ++m) {
      if (all_satisfied(a_cl, m) && all_satisfied(b_cl, m)) sat_somewhere = true;
    }
    if (sat_somewhere) continue;
    ++checked;
    check_interpolant(nv, a_cl, b_cl);
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpolantRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace step::itp
