#pragma once

#include <vector>

#include "core/decomposer.h"

namespace step {
class RaceScheduler;
}

namespace step::core {

/// Engine-portfolio policy (the `--portfolio` mode of the circuit
/// driver). A cheap per-cone probe classifies each cone; easy cones run
/// one probe-picked engine, hard cones race several engines concurrently
/// with first-winner cancellation and cross-racer countermodel sharing.
///
/// Every decision below is a *pure function* of the probe features and
/// these options — never of timing, thread count, or adaptive state — so
/// which cones are probed, which race, and at what width is identical
/// between -j1 and -j8 runs. Only the race's internal outcome (which
/// racer wins, transfer counts) is timing-dependent; the *answer* is not,
/// because every engine is sound and non-decomposability is
/// engine-independent.
struct PortfolioOptions {
  bool enabled = false;
  /// Engines raced on a cone predicted hard (capped at 3); 1 disables
  /// racing — the probe still picks the solo engine per cone.
  int race_width = 2;
  /// Hardness thresholds: a cone at/above either support or AND count is
  /// predicted hard and raced.
  int hard_support = 10;
  int hard_ands = 160;
  /// Near-constant cones (average input sensitivity below this) are never
  /// raced: the exact bootstrap engine concludes them quickly alone.
  double min_sensitivity_to_race = 0.02;
  /// Easy cones up to this support get the optimum (QBF) engine solo —
  /// small enough that proving optimality costs little over the bootstrap.
  int quality_support_max = 4;
};

/// Per-cone features the probe extracts (one structural walk plus a few
/// 64-bit-parallel simulation rounds with fixed seeds — deterministic and
/// orders of magnitude cheaper than any engine attempt).
struct ProbeFeatures {
  int support = 0;
  int ands = 0;
  /// Fraction of sampled minterms on which the cone evaluates true.
  double onset_density = 0.0;
  /// Average fraction of sampled minterms whose output flips when one
  /// input flips (averaged over sampled inputs) — a Boolean-sensitivity
  /// estimate; near-zero means the function barely depends on anything.
  double sensitivity = 0.0;
  /// Don't-care density of the cone's window (1 - care fraction); zero
  /// when the caller has no window.
  double dc_density = 0.0;
  /// Decomposition-cache hit rate observed so far (advisory; the
  /// decompose driver passes none — only cache-carrying callers do).
  double cache_hit_rate = 0.0;
  bool hard = false;
};

ProbeFeatures probe_cone(const Cone& cone, const PortfolioOptions& popts,
                         double dc_density = 0.0, double cache_hit_rate = 0.0);

/// The race plan for one cone: the engines to run, primary first. Size 1
/// means solo (no race). Hard cones always include the MG bootstrap
/// engine, so the portfolio concludes on every cone a fixed MG run
/// concludes on; `configured` biases which QBF engine joins the race and
/// which optimum engine easy small cones get.
std::vector<Engine> plan_engines(const ProbeFeatures& f,
                                 const PortfolioOptions& popts,
                                 Engine configured);

/// One cone through the portfolio: probe, plan, solo-run or race.
struct PortfolioOutcome {
  DecomposeResult result;
  ProbeFeatures features;
  /// Solo: the probe's pick. Raced: the winning engine (primary when no
  /// racer concluded). Timing-dependent for races — the answer is not.
  Engine engine_used = Engine::kMg;
  bool raced = false;
  int race_width = 1;    ///< engines actually run on this cone
  int race_cancels = 0;  ///< losers signalled to stop (width-1 per decided race)
  long pool_published = 0;
  long pool_imported = 0;
};

/// Decomposes one cone under the portfolio policy. `opts` carries the
/// budgets, attachments and sub-options exactly as for BiDecomposer;
/// opts.engine is the configured engine the plan may override. Races run
/// their non-primary racers on `sched` (racing is skipped when it is
/// null, when fault injection is active — the per-cone stream is not
/// thread-safe and its schedule is defined per cone, not per racer — or
/// when opts.reduce_support is set, since racers share one relaxation
/// matrix built on the unreduced cone). A race winner's partition is
/// re-validated, extracted and SAT-verified through
/// decompose_with_partition before it is reported, so raced answers carry
/// the same verification contract as fixed-engine ones.
PortfolioOutcome decompose_portfolio(const Cone& cone,
                                     const DecomposeOptions& opts,
                                     const PortfolioOptions& popts,
                                     RaceScheduler* sched,
                                     const CareSet* care = nullptr,
                                     double dc_density = 0.0);

}  // namespace step::core
