// Side-by-side engine comparison on one function — Table I in miniature.
//
// The subject is a two-level SOP whose cubes straddle two variable groups
// with a small deliberate overlap: heuristic engines (LJH, STEP-MG) find
// *some* valid partition, while the QBF engines prove optimum
// disjointness (QD), balancedness (QB) and combined cost (QDB).
//
//   $ ./engine_comparison

#include <cstdio>

#include "benchgen/generators.h"
#include "core/decomposer.h"

int main() {
  using namespace step;

  const aig::Aig sop = benchgen::random_sop(/*n_a=*/5, /*n_b=*/5, /*n_c=*/3,
                                            /*n_out=*/1, /*cubes_per_out=*/6,
                                            /*seed=*/0xbeef);
  const core::Cone cone = core::extract_po_cone(sop, 0);
  std::printf("subject: two-level SOP, support %d\n\n", cone.n());

  const core::Engine engines[] = {
      core::Engine::kLjh, core::Engine::kMg, core::Engine::kQbfDisjoint,
      core::Engine::kQbfBalanced, core::Engine::kQbfCombined};

  std::printf("%-10s %-20s %6s %6s %7s %8s %9s %9s\n", "engine", "partition",
              "|XC|", "|dA-B|", "eD+eB", "optimal", "verified", "cpu(ms)");
  for (core::Engine e : engines) {
    core::DecomposeOptions opts;
    opts.engine = e;
    opts.op = core::GateOp::kOr;
    const core::DecomposeResult r = core::BiDecomposer(opts).decompose(cone);
    if (r.status != core::DecomposeStatus::kDecomposed) {
      std::printf("%-10s not decomposed\n", core::to_string(e));
      continue;
    }
    std::printf("%-10s %-20s %6d %6d %7.3f %8s %9s %9.2f\n", core::to_string(e),
                r.partition.to_string().c_str(), r.metrics.shared,
                r.metrics.imbalance, r.metrics.sum(),
                r.proven_optimal ? "yes" : "-", r.verified ? "yes" : "no",
                r.cpu_s * 1e3);
  }

  std::printf(
      "\nShape to observe (paper, Tables I-III): the QBF engines never"
      " report a worse metric than STEP-MG (they are bootstrapped with"
      " it), QD minimises |XC|, QB minimises the size difference, QDB"
      " minimises the sum - and the heuristics are faster.\n");
  return 0;
}
