#include "cnf/tseitin.h"

namespace step::cnf {

sat::Lit encode_cone(const aig::Aig& a, aig::Lit root,
                     const std::vector<sat::Lit>& input_sat, ClauseSink& sink) {
  constexpr sat::Lit kUnmapped{-4};  // distinct from sat::kLitUndef
  std::vector<sat::Lit> node_lit(a.num_nodes(), kUnmapped);

  // Constant handling: represent constants with a dedicated always-true
  // variable so downstream clauses stay uniform.
  sat::Lit true_lit = kUnmapped;
  auto get_true = [&]() {
    if (true_lit == kUnmapped) {
      true_lit = sat::mk_lit(sink.new_var());
      sink.add_unit(true_lit);
    }
    return true_lit;
  };

  std::vector<std::uint32_t> stack{aig::node_of(root)};
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    if (node_lit[n] != kUnmapped) {
      stack.pop_back();
      continue;
    }
    if (a.is_const(n)) {
      node_lit[n] = ~get_true();  // node 0 is constant false
      stack.pop_back();
      continue;
    }
    if (a.is_input(n)) {
      const int idx = a.input_index(n);
      STEP_CHECK(idx >= 0 && idx < static_cast<int>(input_sat.size()));
      STEP_CHECK(input_sat[idx] != sat::kLitUndef);
      node_lit[n] = input_sat[idx];
      stack.pop_back();
      continue;
    }
    const std::uint32_t c0 = aig::node_of(a.fanin0(n));
    const std::uint32_t c1 = aig::node_of(a.fanin1(n));
    bool ready = true;
    if (node_lit[c0] == kUnmapped) {
      stack.push_back(c0);
      ready = false;
    }
    if (node_lit[c1] == kUnmapped) {
      stack.push_back(c1);
      ready = false;
    }
    if (!ready) continue;

    const sat::Lit la = aig::is_complemented(a.fanin0(n)) ? ~node_lit[c0]
                                                          : node_lit[c0];
    const sat::Lit lb = aig::is_complemented(a.fanin1(n)) ? ~node_lit[c1]
                                                          : node_lit[c1];
    const sat::Lit lg = sat::mk_lit(sink.new_var());
    // lg <-> la & lb
    sink.add_binary(~lg, la);
    sink.add_binary(~lg, lb);
    sink.add_ternary(lg, ~la, ~lb);
    node_lit[n] = lg;
    stack.pop_back();
  }

  const sat::Lit rl = node_lit[aig::node_of(root)];
  return aig::is_complemented(root) ? ~rl : rl;
}

void encode_cone_assert(const aig::Aig& a, aig::Lit root,
                        const std::vector<sat::Lit>& input_sat,
                        ClauseSink& sink, bool value) {
  const sat::Lit r = encode_cone(a, root, input_sat, sink);
  sink.add_unit(value ? r : ~r);
}

}  // namespace step::cnf
