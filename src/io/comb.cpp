#include "io/comb.h"

namespace step::io {

aig::Aig to_combinational(const Network& net) { return net.to_aig(/*comb=*/true); }

std::size_t comb_num_inputs(const Network& net) {
  return net.inputs.size() + net.latches.size();
}

std::size_t comb_num_outputs(const Network& net) {
  return net.outputs.size() + net.latches.size();
}

}  // namespace step::io
