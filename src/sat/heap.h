#pragma once

#include <vector>

#include "sat/types.h"

namespace step::sat {

/// Binary max-heap over variables keyed by activity, with position index
/// for decrease/increase-key. This is the VSIDS decision queue.
class VarOrderHeap {
 public:
  explicit VarOrderHeap(const std::vector<double>& activity)
      : activity_(activity) {}

  bool empty() const { return heap_.empty(); }
  bool contains(Var v) const {
    return v < static_cast<Var>(pos_.size()) && pos_[v] != -1;
  }

  void reserve(Var n_vars) { pos_.resize(n_vars, -1); }

  void insert(Var v) {
    if (contains(v)) return;
    if (v >= static_cast<Var>(pos_.size())) pos_.resize(v + 1, -1);
    pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    sift_up(pos_[v]);
  }

  Var remove_max() {
    Var top = heap_[0];
    heap_[0] = heap_.back();
    pos_[heap_[0]] = 0;
    heap_.pop_back();
    pos_[top] = -1;
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  /// Re-establish heap order after v's activity increased.
  void increased(Var v) {
    if (contains(v)) sift_up(pos_[v]);
  }

  /// Rebuild after a global activity rescale (order unchanged, no-op).
  void clear() {
    for (Var v : heap_) pos_[v] = -1;
    heap_.clear();
  }

 private:
  bool less(Var a, Var b) const { return activity_[a] < activity_[b]; }

  void sift_up(int i) {
    Var v = heap_[i];
    while (i > 0) {
      int parent = (i - 1) >> 1;
      if (!less(heap_[parent], v)) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = i;
      i = parent;
    }
    heap_[i] = v;
    pos_[v] = i;
  }

  void sift_down(int i) {
    Var v = heap_[i];
    const int n = static_cast<int>(heap_.size());
    while (true) {
      int child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && less(heap_[child], heap_[child + 1])) ++child;
      if (!less(v, heap_[child])) break;
      heap_[i] = heap_[child];
      pos_[heap_[i]] = i;
      i = child;
    }
    heap_[i] = v;
    pos_[v] = i;
  }

  const std::vector<double>& activity_;
  std::vector<Var> heap_;
  std::vector<int> pos_;
};

}  // namespace step::sat
