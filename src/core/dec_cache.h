#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/resource.h"
#include "common/thread_annotations.h"
#include "core/dec_tree.h"
#include "core/npn.h"

namespace step::core {

struct DecCacheOptions {
  /// Supports up to this size are keyed by their exact NPN-canonical
  /// truth table; wider cones fall back to the semantic signature + SAT
  /// confirmation path. Capped at kNpnMaxSupport.
  int npn_max_support = kNpnMaxSupport;
  /// 64-bit stimulus words per input when computing the semantic
  /// signature of a wide cone (more words = fewer SAT confirmations that
  /// end in a refutation).
  int signature_words = 4;
  std::uint64_t signature_seed = 0x57e9dec0ULL;
  /// Input correspondences enumerated per signature-bucket candidate:
  /// inputs with equal signatures form tie classes (often genuinely
  /// symmetric), and class-consistent bijections are screened with a
  /// bit-parallel simulation check, cheap enough to afford thousands.
  int max_match_attempts = 4096;
  /// Of the simulation-consistent correspondences, at most this many are
  /// SAT-checked before the candidate is abandoned as a miss.
  int max_confirm_attempts = 8;
};

struct DecCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t npn_hits = 0;   ///< exact-canonical-key hits (rewired trees)
  std::uint64_t sig_hits = 0;   ///< signature hits confirmed by SAT
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t sat_confirms = 0;  ///< signature collisions proven equivalent
  std::uint64_t sat_refutes = 0;   ///< signature collisions disproven

  std::uint64_t hits() const { return npn_hits + sig_hits; }
  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits()) / lookups;
  }
};

/// A cache hit: `tree` decomposes a function NPN-equivalent to the query;
/// `map` rewires it (tree support position i reads query support position
/// map.var[i], complemented per map.neg, output complemented per
/// map.output_neg). Semantic (wide-cone) hits carry a pure permutation
/// map: the SAT-confirmed input correspondence between the stored cone
/// and the query.
struct DecCacheHit {
  std::shared_ptr<const DecTree> tree;
  NpnVarMap map;
};

/// Opaque token carrying the canonicalization work done by lookup() so a
/// following insert() of the freshly decomposed cone does not repeat it.
struct DecCacheKey {
  int n = 0;
  bool exact = false;
  TruthTable canon_tt;
  NpnTransform canon_to_fn;
  std::uint64_t signature = 0;
  /// Wide cones: permutation-invariant per-input signatures backing both
  /// the fold above and the candidate input correspondence at lookup.
  std::vector<std::uint64_t> input_sigs;
};

/// Thread-safe memo of decomposition trees, shared across the POs (and
/// worker threads) of a circuit run so identical or NPN-equivalent cones
/// are decomposed once. Small cones are keyed exactly by NPN-canonical
/// truth table; wide cones by a permutation-invariant simulation
/// signature — cones that differ only by an input permutation share a
/// bucket, a rank-ordering of the per-input signatures proposes the
/// correspondence, and one SAT equivalence check under that mapping
/// confirms the hit before the tree is reused (rewired through the
/// permutation).
class DecCache {
 public:
  explicit DecCache(DecCacheOptions opts = {});

  /// Looks up a tree for `cone` (whose inputs are exactly its support).
  /// When `key` is non-null it receives the token to pass to insert().
  std::optional<DecCacheHit> lookup(const Cone& cone,
                                    DecCacheKey* key = nullptr);

  /// Stores `tree` (a decomposition of `cone`) under `key` as obtained
  /// from lookup() on the same cone. First insertion per class wins.
  void insert(const Cone& cone, const DecCacheKey& key, DecTree tree);

  DecCacheStats stats() const;
  std::size_t size() const;
  void clear();

  /// Resource-governor hook: insertions charge an entry-size estimate to
  /// `tracker` (the *run* account — the cache is shared across cones);
  /// clear() refunds it. The tracker must outlive the cache's last use.
  void set_mem_tracker(MemTracker* tracker);

 private:
  struct TtKey {
    int n = 0;
    TruthTable tt;
    bool operator==(const TtKey&) const = default;
  };
  struct TtKeyHash {
    std::size_t operator()(const TtKey& k) const {
      std::uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<std::uint64_t>(k.n);
      for (std::uint64_t w : k.tt) {
        h ^= w;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct NpnEntry {
    std::shared_ptr<const DecTree> tree;
    /// Instantiates the canonical tt as the stored function.
    NpnTransform canon_to_fn;
  };
  struct SigEntry {
    std::shared_ptr<const Cone> cone;
    std::shared_ptr<const DecTree> tree;
    std::vector<std::uint64_t> input_sigs;
  };

  /// Permutation-invariant semantic signature per input (two refinement
  /// rounds of symmetric stimuli); the cone key folds the *sorted* list,
  /// so cones differing only by an input permutation share a bucket.
  std::vector<std::uint64_t> input_signatures(const Cone& cone) const;
  std::uint64_t signature_of(const Cone& cone,
                             const std::vector<std::uint64_t>& sigs) const;

  /// Negative-compile harness (tests/negative/thread_safety_negative.cpp):
  /// proves that an unguarded access to a STEP_GUARDED_BY field below
  /// fails the clang thread-safety build, so the annotations cannot rot.
  friend struct DecCacheTsaProbe;

  DecCacheOptions opts_;
  mutable Mutex mu_;
  std::unordered_map<TtKey, NpnEntry, TtKeyHash> npn_map_ STEP_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, std::vector<SigEntry>> sig_map_
      STEP_GUARDED_BY(mu_);
  DecCacheStats stats_ STEP_GUARDED_BY(mu_);
  MemTracker* mem_tracker_ STEP_GUARDED_BY(mu_) = nullptr;
  std::size_t charged_bytes_ STEP_GUARDED_BY(mu_) = 0;
};

}  // namespace step::core
