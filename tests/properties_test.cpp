// Algebraic properties of bi-decomposition the implementation must obey:
// AND/OR duality, XA/XB symmetry, metric invariances, validity monotonicity
// under op-specific transformations — plus the end-to-end property of the
// recursive subsystem: resynthesized netlists are SAT-equivalent to their
// source circuit for every engine. These catch formulation bugs that
// single-point tests cannot.

#include <gtest/gtest.h>

#include "aig/ops.h"
#include "benchgen/generators.h"
#include "benchgen/suite.h"
#include "cnf/tseitin.h"
#include "core/circuit_driver.h"
#include "core/partition_check.h"
#include "sat/solver.h"
#include "test_util.h"

namespace step::core {
namespace {

Partition swapped_ab(const Partition& p) {
  Partition q = p;
  for (VarClass& c : q.cls) {
    if (c == VarClass::kA) {
      c = VarClass::kB;
    } else if (c == VarClass::kB) {
      c = VarClass::kA;
    }
  }
  return q;
}

Cone complemented(const Cone& c) {
  Cone out;
  out.aig = c.aig;
  out.root = aig::lnot(c.root);
  return out;
}

class PropertySeeds : public ::testing::TestWithParam<int> {};

TEST_P(PropertySeeds, AndOrDuality) {
  // f has an AND decomposition under p  <=>  ¬f has an OR decomposition
  // under p (Section IV.B).
  Rng rng(GetParam() * 131 + 7);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    EXPECT_EQ(check_partition_exhaustive(cone, GateOp::kAnd, p),
              check_partition_exhaustive(complemented(cone), GateOp::kOr, p));
  }
}

TEST_P(PropertySeeds, DcValidityIsMonotoneInTheCareSet) {
  // Removing minterms from the care set only removes constraints: if a
  // partition is valid on care set C, it stays valid on any C' ⊆ C (and
  // in particular the exact check implies every DC check). Dually, a
  // DC-invalid partition is invalid on every superset care set.
  Rng rng(GetParam() * 517 + 11);
  for (int iter = 0; iter < 20; ++iter) {
    const int n = rng.next_int(3, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    const GateOp op = iter % 2 == 0 ? GateOp::kOr : GateOp::kAnd;

    // Random care C and a random subset C' of it.
    const std::size_t rows = std::size_t{1} << n;
    std::vector<std::uint64_t> big(aig::tt_words(n), 0), small(big);
    for (std::size_t r = 0; r < rows; ++r) {
      if (rng.next_double() < 0.8) {
        big[r >> 6] |= 1ULL << (r & 63);
        if (rng.next_bool()) small[r >> 6] |= 1ULL << (r & 63);
      }
    }
    auto as_care = [&](const std::vector<std::uint64_t>& tt) {
      CareSet c;
      std::vector<aig::Lit> in(n);
      for (int i = 0; i < n; ++i) in[i] = c.aig.add_input();
      c.root = aig::build_from_tt(c.aig, tt, in);
      return c;
    };
    const CareSet cbig = as_care(big), csmall = as_care(small);
    const bool exact = check_partition_exhaustive(cone, op, p);
    const bool on_big = check_partition_exhaustive(cone, op, p, &cbig);
    const bool on_small = check_partition_exhaustive(cone, op, p, &csmall);
    if (exact) EXPECT_TRUE(on_big) << iter;
    if (on_big) EXPECT_TRUE(on_small) << iter;
    // The SAT formulation agrees with the oracle on both care sets.
    EXPECT_EQ(on_big, check_partition(cone, op, p, &cbig)) << iter;
    EXPECT_EQ(on_small, check_partition(cone, op, p, &csmall)) << iter;
  }
}

TEST_P(PropertySeeds, AbSymmetryForAllOps) {
  // Swapping XA and XB never changes validity (the symmetry the QD model
  // breaks for speed).
  Rng rng(GetParam() * 7873 + 3);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    for (GateOp op : {GateOp::kOr, GateOp::kAnd, GateOp::kXor}) {
      EXPECT_EQ(check_partition_exhaustive(cone, op, p),
                check_partition_exhaustive(cone, op, swapped_ab(p)))
          << to_string(op) << " " << p.to_string();
    }
  }
}

TEST_P(PropertySeeds, XorValidityClosedUnderComplement) {
  // f = fA ⊕ fB  <=>  ¬f = ¬fA ⊕ fB: XOR validity is invariant under
  // complementing the function.
  Rng rng(GetParam() * 911 + 19);
  for (int iter = 0; iter < 25; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    EXPECT_EQ(check_partition_exhaustive(cone, GateOp::kXor, p),
              check_partition_exhaustive(complemented(cone), GateOp::kXor, p));
  }
}

TEST_P(PropertySeeds, MetricsInvariantUnderAbSwap) {
  Rng rng(GetParam() * 5 + 1);
  for (int iter = 0; iter < 30; ++iter) {
    const Partition p = testutil::random_partition(rng.next_int(1, 12), rng);
    const Metrics m1 = Metrics::of(p);
    const Metrics m2 = Metrics::of(swapped_ab(p));
    EXPECT_EQ(m1.shared, m2.shared);
    EXPECT_EQ(m1.imbalance, m2.imbalance);
    EXPECT_EQ(m1.combined_cost(), m2.combined_cost());
  }
}

TEST_P(PropertySeeds, CofactorsOfValidPartitionsStayValid) {
  // Restricting a shared variable to a constant preserves validity with
  // that variable removed from the partition (a well-known closure
  // property of bi-decompositions).
  Rng rng(GetParam() * 6007 + 11);
  int checked = 0;
  for (int iter = 0; iter < 60 && checked < 10; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 20), rng.next());
    const Partition p = testutil::random_partition(n, rng);
    if (!p.non_trivial()) continue;
    int shared_pos = -1;
    for (int i = 0; i < n; ++i) {
      if (p.cls[i] == VarClass::kC) shared_pos = i;
    }
    if (shared_pos < 0) continue;
    const GateOp op = static_cast<GateOp>(rng.next_int(0, 2));
    if (!check_partition_exhaustive(cone, op, p)) continue;
    ++checked;

    for (int value = 0; value <= 1; ++value) {
      // Build the cofactor cone over the remaining inputs.
      Cone cf;
      std::vector<aig::Lit> free_map(n, aig::kLitInvalid);
      std::vector<int> assignment(n, -1);
      assignment[shared_pos] = value;
      Partition q;
      for (int i = 0; i < n; ++i) {
        if (i == shared_pos) continue;
        free_map[i] = cf.aig.add_input();
        q.cls.push_back(p.cls[i]);
      }
      cf.root = aig::cofactor(cone.aig, cone.root, cf.aig, assignment, free_map);
      EXPECT_TRUE(check_partition_exhaustive(cf, op, q))
          << to_string(op) << " value=" << value;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST_P(PropertySeeds, SatCheckerAgreesOnSwappedPartitions) {
  // The SAT-level checker must exhibit the same AB symmetry as the oracle
  // (guards against asymmetric encoding bugs in the relaxation matrix).
  Rng rng(GetParam() * 104 + 9);
  for (int iter = 0; iter < 10; ++iter) {
    const int n = rng.next_int(2, 5);
    const Cone cone = testutil::random_cone(n, rng.next_int(3, 16), rng.next());
    const GateOp op = static_cast<GateOp>(rng.next_int(0, 2));
    const RelaxationMatrix m = build_relaxation_matrix(cone, op);
    RelaxationSolver rs(m);
    for (int t = 0; t < 4; ++t) {
      const Partition p = testutil::random_partition(n, rng);
      EXPECT_EQ(rs.is_valid(p), rs.is_valid(swapped_ab(p)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Recursive resynthesis equivalence harness: for a stream of seeded random
// circuits, the recursive decomposition subsystem (with the shared NPN
// cache) must produce a netlist SAT-provably equivalent to the original —
// under every engine. A failure prints the reproducing seed.
// ---------------------------------------------------------------------------

using testutil::circuits_equivalent;

/// Seeded random circuit, rotating through the generator families so the
/// harness exercises SOP-style, DAG-style and structured cones.
aig::Aig harness_circuit(int seed) {
  Rng rng(static_cast<std::uint64_t>(seed) * 0x9e3779b9ULL + 12345);
  switch (seed % 4) {
    case 0:
      return benchgen::random_dag(rng.next_int(3, 6), rng.next_int(6, 24),
                                  rng.next_int(2, 3), rng.next());
    case 1:
      return benchgen::random_sop(rng.next_int(1, 2), rng.next_int(1, 2),
                                  rng.next_int(1, 2), rng.next_int(2, 3),
                                  rng.next_int(2, 4), rng.next());
    case 2:
      return benchgen::random_dag(rng.next_int(4, 7), rng.next_int(10, 30),
                                  2, rng.next());
    default:
      return benchgen::merge({benchgen::parity_tree(rng.next_int(3, 5)),
                              benchgen::random_dag(rng.next_int(3, 5),
                                                   rng.next_int(4, 12), 1,
                                                   rng.next())});
  }
}

class ResynthEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ResynthEquivalence, RecursiveTreesStayEquivalentForAllEngines) {
  const int seed = GetParam();
  const aig::Aig circ = harness_circuit(seed);
  DecCache cache;  // shared across engines: hits must not break equivalence
  for (Engine engine :
       {Engine::kMg, Engine::kQbfDisjoint, Engine::kQbfCombined}) {
    SynthesisOptions opts;
    opts.engine = engine;
    opts.cache = &cache;
    opts.per_node.optimum.call_timeout_s = 2.0;
    const CircuitResynthResult r = run_circuit_resynth(
        circ, "harness", opts, /*budget_s=*/60.0, {}, /*verify=*/true);
    EXPECT_TRUE(r.all_verified)
        << "per-PO miter failed; engine=" << to_string(engine)
        << " reproducing seed=" << seed;
    EXPECT_TRUE(circuits_equivalent(circ, r.network))
        << "netlist miter failed; engine=" << to_string(engine)
        << " reproducing seed=" << seed;
  }
}

// >= 50 seeded random circuits in CI (acceptance floor of the harness).
INSTANTIATE_TEST_SUITE_P(FiftySeeds, ResynthEquivalence,
                         ::testing::Range(0, 50));

TEST(ResynthSuite, EveryBundledCircuitVerifiesForAllEngines) {
  // The CLI-level acceptance property: `step resynth` on every bundled
  // benchmark circuit terminates with a netlist SAT-proven equivalent to
  // the input, under each engine, with the shared cache on.
  for (const benchgen::BenchCircuit& c :
       benchgen::standard_suite(benchgen::SuiteScale::kTiny)) {
    for (Engine engine :
         {Engine::kMg, Engine::kQbfDisjoint, Engine::kQbfCombined}) {
      DecCache cache;
      SynthesisOptions opts;
      opts.engine = engine;
      opts.pick_best_op = true;
      opts.cache = &cache;
      opts.per_node.optimum.call_timeout_s = 1.0;
      opts.per_node.po_budget_s = 5.0;
      const CircuitResynthResult r = run_circuit_resynth(
          c.aig, c.name, opts, /*budget_s=*/60.0, {}, /*verify=*/true);
      EXPECT_TRUE(r.all_verified)
          << c.name << " under " << to_string(engine);
      EXPECT_TRUE(circuits_equivalent(c.aig, r.network))
          << c.name << " under " << to_string(engine);
    }
  }
}

}  // namespace
}  // namespace step::core
