#include "sat/proof.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace step::sat {

namespace {

/// Set representation of a clause during replay: sorted unique literals.
void normalize(LitVec& lits) {
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
}

/// Resolve `cur` with `other` on `pivot`, in place.
void resolve(LitVec& cur, const LitVec& other, Var pivot) {
  const Lit pos = mk_lit(pivot, false);
  const Lit neg = mk_lit(pivot, true);
  cur.erase(std::remove_if(cur.begin(), cur.end(),
                           [&](Lit l) { return l == pos || l == neg; }),
            cur.end());
  for (Lit l : other) {
    if (l == pos || l == neg) continue;
    cur.push_back(l);
  }
  normalize(cur);
}

}  // namespace

std::string DratTrace::to_text() const {
  std::string out;
  for (const DratLine& line : lines_) {
    if (line.is_delete) out += "d ";
    for (Lit l : line.lits) {
      out += std::to_string(sign(l) ? -(var(l) + 1) : (var(l) + 1));
      out += ' ';
    }
    out += "0\n";
  }
  return out;
}

namespace {

/// Minimal clause database for the forward RUP sweep. Clauses are stored
/// with sorted literals so deletion lines can be matched set-wise
/// (the solver reorders watched literals in place).
struct RupDatabase {
  std::vector<LitVec> clauses;      ///< live clauses, literals sorted
  std::vector<Lbool> assign;        ///< per var, scratch assignment

  explicit RupDatabase(int num_vars)
      : assign(static_cast<std::size_t>(num_vars), Lbool::kUndef) {}

  Lbool value(Lit l) const { return assign[var(l)] ^ sign(l); }

  /// Unit propagation to fixpoint over the whole database (quadratic;
  /// fine at test scale). Returns true iff a conflict was reached.
  bool propagate_to_conflict() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const LitVec& c : clauses) {
        int num_undef = 0;
        Lit undef_lit = kLitUndef;
        bool satisfied = false;
        for (Lit l : c) {
          const Lbool v = value(l);
          if (v == Lbool::kTrue) {
            satisfied = true;
            break;
          }
          if (v == Lbool::kUndef) {
            ++num_undef;
            undef_lit = l;
          }
        }
        if (satisfied) continue;
        if (num_undef == 0) return true;  // falsified clause: conflict
        if (num_undef == 1) {
          assign[var(undef_lit)] = mk_lbool(!sign(undef_lit));
          changed = true;
        }
      }
    }
    return false;
  }

  /// RUP check of `lits`: assume all its literals false, propagate, demand
  /// a conflict. The scratch assignment is rebuilt from nothing each time.
  bool is_rup(const LitVec& lits) {
    std::fill(assign.begin(), assign.end(), Lbool::kUndef);
    for (Lit l : lits) {
      if (value(l) == Lbool::kTrue) return true;  // tautology: trivially ok
      assign[var(l)] = mk_lbool(sign(l));         // make l false
    }
    return propagate_to_conflict();
  }
};

}  // namespace

DratCheckResult check_drat(int num_vars, const std::vector<LitVec>& formula,
                           const DratTrace& trace) {
  DratCheckResult res;
  RupDatabase db(num_vars);
  for (const LitVec& c : formula) {
    LitVec s(c);
    normalize(s);
    db.clauses.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < trace.lines().size(); ++i) {
    const DratLine& line = trace.lines()[i];
    LitVec lits(line.lits);
    normalize(lits);
    if (line.is_delete) {
      auto it = std::find(db.clauses.begin(), db.clauses.end(), lits);
      if (it == db.clauses.end()) {
        res.error = "line " + std::to_string(i) +
                    ": deletion of a clause not in the database";
        return res;
      }
      *it = std::move(db.clauses.back());
      db.clauses.pop_back();
      continue;
    }
    if (!db.is_rup(lits)) {
      res.error = "line " + std::to_string(i) + ": addition is not RUP";
      return res;
    }
    if (lits.empty()) res.proved_unsat = true;
    db.clauses.push_back(std::move(lits));
  }
  // An explicitly empty database-final check: a trace whose last addition
  // is the empty clause proves UNSAT; otherwise it is just a valid
  // derivation log (e.g. a SAT run with inprocessing rewrites).
  res.ok = true;
  return res;
}

LitVec Proof::replay_clause(ProofId id) const {
  // Iterative replay with memoization over the sub-DAG reachable from id.
  // Nodes are topologically ordered, so a forward sweep over the ids that
  // are actually needed suffices.
  std::vector<char> needed(id + 1, 0);
  needed[id] = 1;
  for (ProofId i = id + 1; i-- > 0;) {
    if (!needed[i]) continue;
    const ProofNode& n = nodes_[i];
    if (n.is_leaf()) continue;
    STEP_CHECK(n.start < i);
    needed[n.start] = 1;
    for (const ProofStep& s : n.steps) {
      STEP_CHECK(s.antecedent < i);
      needed[s.antecedent] = 1;
    }
  }

  std::vector<LitVec> memo(id + 1);
  for (ProofId i = 0; i <= id; ++i) {
    if (!needed[i]) continue;
    const ProofNode& n = nodes_[i];
    if (n.is_leaf()) {
      memo[i] = n.base_lits;
      normalize(memo[i]);
    } else {
      LitVec cur = memo[n.start];
      for (const ProofStep& s : n.steps) {
        resolve(cur, memo[s.antecedent], s.pivot);
      }
      memo[i] = std::move(cur);
    }
  }
  return memo[id];
}

}  // namespace step::sat
