#include "io/verilog_writer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "io/io_error.h"

namespace step::io {

namespace {

/// Sanitises an arbitrary net name into a Verilog identifier.
std::string ident(const std::string& name) {
  std::string out;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '$';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "n_" + out;
  return out;
}

}  // namespace

std::string write_verilog(const aig::Aig& a, const std::string& module_name) {
  std::ostringstream os;

  // Unique port names (sanitisation may collide; suffix on demand).
  std::unordered_set<std::string> used;
  auto unique_ident = [&](const std::string& base) {
    std::string name = ident(base);
    while (!used.insert(name).second) name += "_x";
    return name;
  };
  std::vector<std::string> in_names(a.num_inputs());
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    in_names[i] = unique_ident(a.input_name(i));
  }
  std::vector<std::string> out_names(a.num_outputs());
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    out_names[i] = unique_ident(a.output_name(i));
  }

  os << "module " << ident(module_name) << " (";
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    os << in_names[i] << ", ";
  }
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    os << out_names[i] << (i + 1 < a.num_outputs() ? ", " : "");
  }
  os << ");\n";
  for (std::uint32_t i = 0; i < a.num_inputs(); ++i) {
    os << "  input " << in_names[i] << ";\n";
  }
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    os << "  output " << out_names[i] << ";\n";
  }

  // Gates in the cones of the outputs only.
  std::vector<char> needed(a.num_nodes(), 0);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    stack.push_back(aig::node_of(a.output(i)));
  }
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (needed[n]) continue;
    needed[n] = 1;
    if (a.is_and(n)) {
      stack.push_back(aig::node_of(a.fanin0(n)));
      stack.push_back(aig::node_of(a.fanin1(n)));
    }
  }

  auto net_of = [&](std::uint32_t node) -> std::string {
    if (a.is_const(node)) return "1'b0";
    if (a.is_input(node)) return in_names[a.input_index(node)];
    return "g" + std::to_string(node);
  };
  auto edge = [&](aig::Lit l) {
    const std::string n = net_of(aig::node_of(l));
    return aig::is_complemented(l) ? "~" + n : n;
  };

  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (needed[n] && a.is_and(n)) os << "  wire g" << n << ";\n";
  }
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!needed[n] || !a.is_and(n)) continue;
    os << "  assign g" << n << " = " << edge(a.fanin0(n)) << " & "
       << edge(a.fanin1(n)) << ";\n";
  }
  for (std::uint32_t i = 0; i < a.num_outputs(); ++i) {
    const aig::Lit drv = a.output(i);
    if (aig::node_of(drv) == 0) {
      os << "  assign " << out_names[i] << " = "
         << (aig::is_complemented(drv) ? "1'b1" : "1'b0") << ";\n";
    } else {
      os << "  assign " << out_names[i] << " = " << edge(drv) << ";\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

void write_verilog_file(const aig::Aig& a, const std::string& path,
                        const std::string& module_name) {
  std::ofstream out(path);
  if (!out) throw IoError("verilog: cannot write '" + path + "'");
  out << write_verilog(a, module_name);
  if (!out) throw IoError("verilog: write failed for '" + path + "'");
}

}  // namespace step::io
