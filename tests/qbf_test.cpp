#include "qbf/qbf2.h"

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "common/rng.h"

namespace step::qbf {
namespace {

using aig::Aig;

/// Brute-force evaluation of ∃outer ∀inner. φ over the matrix truth table.
bool brute_force_exists_forall(const Aig& m, aig::Lit root,
                               const std::vector<std::uint32_t>& outer,
                               const std::vector<std::uint32_t>& inner) {
  const std::size_t no = outer.size(), ni = inner.size();
  std::vector<std::uint64_t> stim(m.num_inputs(), 0);
  for (std::size_t mo = 0; mo < (std::size_t{1} << no); ++mo) {
    bool all_inner = true;
    for (std::size_t mi = 0; mi < (std::size_t{1} << ni) && all_inner; ++mi) {
      for (std::size_t j = 0; j < no; ++j) {
        stim[outer[j]] = ((mo >> j) & 1U) ? ~0ULL : 0;
      }
      for (std::size_t j = 0; j < ni; ++j) {
        stim[inner[j]] = ((mi >> j) & 1U) ? ~0ULL : 0;
      }
      if ((aig::simulate_cone(m, root, stim) & 1ULL) == 0) all_inner = false;
    }
    if (all_inner) return true;
  }
  return false;
}

TEST(Qbf2, TautologyMatrixIsTrue) {
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit x = m.add_input("x");
  const aig::Lit root = m.lor(m.lor(a, aig::lnot(a)), x);  // constant-ish true
  ExistsForallSolver s(m, root, {0}, {1});
  EXPECT_EQ(s.solve().status, Qbf2Status::kTrue);
}

TEST(Qbf2, ExistsWitnessReturned) {
  // ∃a ∀x. a ∨ (x ∧ ¬x)  — true with a = 1.
  Aig m;
  const aig::Lit a = m.add_input("a");
  (void)m.add_input("x");
  ExistsForallSolver s(m, a, {0}, {1});
  const Qbf2Result r = s.solve();
  ASSERT_EQ(r.status, Qbf2Status::kTrue);
  EXPECT_EQ(r.outer_model[0], sat::Lbool::kTrue);
}

TEST(Qbf2, XorMatrixIsFalse) {
  // ∃a ∀x. a ⊕ x — false: no a works for both x values.
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit x = m.add_input("x");
  ExistsForallSolver s(m, m.lxor(a, x), {0}, {1});
  EXPECT_EQ(s.solve().status, Qbf2Status::kFalse);
}

TEST(Qbf2, ImplicationNeedsBothOuters) {
  // ∃a,b ∀x,y. (x∧y) → (a∧b) requires... (x∧y)→(a∧b) must hold for all
  // x,y, so a=b=1.
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit b = m.add_input("b");
  const aig::Lit x = m.add_input("x");
  const aig::Lit y = m.add_input("y");
  const aig::Lit root = m.lor(aig::lnot(m.land(x, y)), m.land(a, b));
  ExistsForallSolver s(m, root, {0, 1}, {2, 3});
  const Qbf2Result r = s.solve();
  ASSERT_EQ(r.status, Qbf2Status::kTrue);
  EXPECT_EQ(r.outer_model[0], sat::Lbool::kTrue);
  EXPECT_EQ(r.outer_model[1], sat::Lbool::kTrue);
}

TEST(Qbf2, SideConstraintsRestrictWitness) {
  // ∃a,b ∀x. (a ∨ b ∨ x) with side constraint ¬a: must pick b.
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit b = m.add_input("b");
  const aig::Lit x = m.add_input("x");
  const aig::Lit root = m.lor(m.lor(a, b), x);
  ExistsForallSolver s(m, root, {0, 1}, {2});
  s.abstraction().add_clause({~sat::mk_lit(s.outer_var(0))});
  const Qbf2Result r = s.solve();
  ASSERT_EQ(r.status, Qbf2Status::kTrue);
  EXPECT_EQ(r.outer_model[0], sat::Lbool::kFalse);
  EXPECT_EQ(r.outer_model[1], sat::Lbool::kTrue);
}

TEST(Qbf2, UnsatisfiableSideConstraintsGiveFalse) {
  Aig m;
  const aig::Lit a = m.add_input("a");
  (void)m.add_input("x");
  ExistsForallSolver s(m, a, {0}, {1});
  s.abstraction().add_clause({~sat::mk_lit(s.outer_var(0))});
  EXPECT_EQ(s.solve().status, Qbf2Status::kFalse);
}

TEST(Qbf2, CountermodelSeedingPreservesAnswers) {
  // Solve once, seed a second instance with the discovered countermodels,
  // and check the second answers identically (in fewer iterations).
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit b = m.add_input("b");
  const aig::Lit x = m.add_input("x");
  const aig::Lit y = m.add_input("y");
  // ∃a,b ∀x,y. (a∧(x∨y)) ∨ (b∧¬x) ∨ (¬x∧¬y) — needs a=b=1.
  const aig::Lit root =
      m.lor(m.lor(m.land(a, m.lor(x, y)), m.land(b, aig::lnot(x))),
            m.land(aig::lnot(x), aig::lnot(y)));
  ExistsForallSolver s1(m, root, {0, 1}, {2, 3});
  const Qbf2Result r1 = s1.solve();
  ASSERT_EQ(r1.status, Qbf2Status::kTrue);

  ExistsForallSolver s2(m, root, {0, 1}, {2, 3});
  for (const auto& cm : s1.countermodels()) s2.seed_countermodel(cm);
  const Qbf2Result r2 = s2.solve();
  ASSERT_EQ(r2.status, Qbf2Status::kTrue);
  EXPECT_LE(r2.iterations, r1.iterations);
}

TEST(Qbf2, ExpiredDeadlineIsUnknown) {
  Aig m;
  const aig::Lit a = m.add_input("a");
  const aig::Lit x = m.add_input("x");
  ExistsForallSolver s(m, m.lor(a, x), {0}, {1});
  const Deadline expired(1e-9);
  EXPECT_EQ(s.solve(&expired).status, Qbf2Status::kUnknown);
}

class Qbf2Random : public ::testing::TestWithParam<int> {};

TEST_P(Qbf2Random, AgreesWithBruteForce) {
  Rng rng(GetParam() * 131071 + 19);
  for (int iter = 0; iter < 30; ++iter) {
    const int no = rng.next_int(1, 3);
    const int ni = rng.next_int(1, 3);
    Aig m;
    std::vector<aig::Lit> pool;
    std::vector<std::uint32_t> outer, inner;
    for (int i = 0; i < no; ++i) {
      pool.push_back(m.add_input());
      outer.push_back(m.num_inputs() - 1);
    }
    for (int i = 0; i < ni; ++i) {
      pool.push_back(m.add_input());
      inner.push_back(m.num_inputs() - 1);
    }
    for (int g = 0; g < rng.next_int(4, 16); ++g) {
      const aig::Lit f0 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      const aig::Lit f1 =
          pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
      pool.push_back(m.land(f0, f1));
    }
    const aig::Lit root = pool.back() ^ (rng.next_bool() ? 1u : 0u);

    const bool expect = brute_force_exists_forall(m, root, outer, inner);
    ExistsForallSolver s(m, root, outer, inner);
    const Qbf2Result r = s.solve();
    ASSERT_EQ(r.status, expect ? Qbf2Status::kTrue : Qbf2Status::kFalse)
        << "seed=" << GetParam() << " iter=" << iter;

    if (r.status == Qbf2Status::kTrue) {
      // The returned witness must make the matrix a tautology over inner.
      std::vector<std::uint64_t> stim(m.num_inputs(), 0);
      for (std::size_t j = 0; j < outer.size(); ++j) {
        stim[outer[j]] = r.outer_model[j] == sat::Lbool::kTrue ? ~0ULL : 0;
      }
      for (std::size_t mi = 0; mi < (std::size_t{1} << ni); ++mi) {
        for (int j = 0; j < ni; ++j) {
          stim[inner[j]] = ((mi >> j) & 1U) ? ~0ULL : 0;
        }
        EXPECT_NE(aig::simulate_cone(m, root, stim) & 1ULL, 0ULL);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Qbf2Random, ::testing::Range(0, 10));

}  // namespace
}  // namespace step::qbf
