#pragma once

#include <vector>

#include "common/timer.h"
#include "sat/solver.h"

namespace step::mus {

/// Deletion-based group-MUS extraction over selector literals, the
/// algorithmic core of MUSer's group-oriented mode that STEP-MG relies on.
///
/// The client instruments a formula so that each clause *group* g is
/// controlled by an "enable" literal e_g: assuming e_g activates the group,
/// assuming ~e_g deactivates (removes) it. Given that the formula is UNSAT
/// with all groups active, extract() returns a subset that is still UNSAT
/// and minimal: deactivating any single returned group makes it SAT
/// (together with the permanently-active background clauses).
struct GroupMusOptions {
  /// Refine with the solver's final-conflict core after each UNSAT answer
  /// (clause-set refinement); large speedup, never hurts minimality.
  bool core_refinement = true;
  /// Conflict budget per SAT call; -1 = unlimited.
  std::int64_t conflict_budget = -1;
};

struct GroupMusResult {
  /// Indices (into the selector vector) of the extracted MUS.
  std::vector<int> mus;
  /// True when every group was actually tested; false when the deadline
  /// truncated the process (result is then an UNSAT subset, not minimal).
  bool minimal = true;
  int sat_calls = 0;
};

class GroupMusExtractor {
 public:
  /// `enable` holds one enable literal per group. The solver must contain
  /// the instrumented clauses already.
  GroupMusExtractor(sat::Solver& solver, std::vector<sat::Lit> enable,
                    GroupMusOptions opts = {});

  /// Requires: formula UNSAT with all groups enabled — minus the ones
  /// pre-removed through `initially_removed` (indexed per group; non-zero
  /// = removed before the search starts). Checked; STEP_CHECK fires
  /// otherwise. `deadline` truncates gracefully.
  GroupMusResult extract(const Deadline* deadline = nullptr,
                         const std::vector<char>* initially_removed = nullptr);

 private:
  sat::Solver& solver_;
  std::vector<sat::Lit> enable_;
  GroupMusOptions opts_;
};

}  // namespace step::mus
