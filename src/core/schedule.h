#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.h"

namespace step::core {

/// Job-ordering policy of run_circuit's per-PO fan-out.
///
/// kFifo submits cones in PO order (the historical behavior, and the
/// reference the scheduling tests pin against). kHardness scores every
/// cone's predicted decomposition hardness and submits hardest-first, so
/// the work-stealing pool never idles behind one giant cone discovered
/// last — the classic LPT (longest-processing-time) bound on makespan.
///
/// Scheduling is a *pure reordering*: which cones run, their budgets and
/// their per-cone computation are byte-identical under either policy, so
/// per-PO statuses, reasons and metrics match FIFO's exactly (the
/// property tests enforce this). Only completion order — and therefore
/// wall-clock makespan — changes.
enum class SchedulePolicy : std::uint8_t { kFifo, kHardness };

const char* to_string(SchedulePolicy p);

/// Per-cone features the hardness score consumes. All are pure functions
/// of the circuit structure (plus optional prior cache statistics), never
/// of timing or thread count, so the resulting order is deterministic.
struct ConeCost {
  std::uint32_t po = 0;        ///< PO index (stable tie-break key)
  int support = 0;             ///< structural support width
  double est_ands = 0.0;       ///< tree-size estimate of the cone
  double cache_hit_rate = 0.0; ///< prior DecCache hit rate, 0 = no cache
};

/// Predicted decomposition hardness of one cone, in arbitrary cost units
/// (comparable across cones of one circuit). The model mirrors what the
/// engines actually pay: the partition search space grows exponentially
/// with support width (the dominant term, clamped so it cannot overflow)
/// and the CNF/QBF matrices grow with cone size; a warm decomposition
/// cache discounts the expected cost. Reuses the same signals as the
/// portfolio probe (core/portfolio.h) without requiring cone extraction.
double predicted_hardness(const ConeCost& c);

/// Saturating tree-size estimate of every node's cone in ONE forward
/// sweep over the whole AIG: est[n] = 1 + est[fanin0] + est[fanin1]
/// (inputs/constant are 0), counting shared sub-DAGs once per path. An
/// upper bound on the cone's AND count that preserves "bigger cone =>
/// bigger estimate" — exact per-cone counts would cost O(POs * nodes) on
/// a million-gate netlist, this costs O(nodes) for all POs together.
std::vector<double> tree_size_estimates(const aig::Aig& a);

/// How a schedule shaped the job queue, for --stats and bench JSON.
struct ScheduleShape {
  SchedulePolicy policy = SchedulePolicy::kFifo;
  int jobs = 0;
  /// Outlier cones (score >= kOutlierFactor * median): scheduled first,
  /// each as its own pool submission, so tail latency is bounded by the
  /// biggest cone alone, not the biggest cone plus whatever queued with it.
  int outliers = 0;
  /// Pool submissions after chunking: runs of small cones share one
  /// submission, so a 100k-PO netlist does not pay 100k queue operations.
  int batches = 0;
  double median_score = 0.0;
  double max_score = 0.0;
};

/// A cone this many times the median score is an outlier.
inline constexpr double kOutlierFactor = 8.0;

/// Small-cone runs are chunked into submissions of at most this many jobs
/// under kHardness (FIFO keeps the historical one-submission-per-job).
inline constexpr std::size_t kBatchMaxJobs = 32;

/// Deterministic execution order over jobs 0..scores.size()-1: identity
/// under kFifo; descending score with ascending-index tie-break under
/// kHardness. Always a permutation. Fills `shape` when non-null.
std::vector<std::size_t> schedule_order(const std::vector<double>& scores,
                                        SchedulePolicy policy,
                                        ScheduleShape* shape = nullptr);

/// Groups an execution order into pool submissions: outliers (by score)
/// stay singleton, runs of non-outliers are chunked up to kBatchMaxJobs.
/// Under kFifo every job is its own group. Updates shape->batches.
std::vector<std::vector<std::size_t>> schedule_batches(
    const std::vector<double>& scores, const std::vector<std::size_t>& order,
    SchedulePolicy policy, ScheduleShape* shape = nullptr);

/// Greedy list-scheduling simulation: the makespan of executing jobs with
/// the given per-job costs, dequeued in `order`, on `workers` identical
/// workers (each job goes to the earliest-free worker). An idealization
/// of the work-stealing pool that the scheduling tests use to compare
/// policies without wall-clock flakiness.
double simulated_makespan(const std::vector<double>& costs,
                          const std::vector<std::size_t>& order, int workers);

}  // namespace step::core
