#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace step::aig {
class Aig;
}

namespace step::analysis {

/// Static artifact analysis ("step lint"): structural well-formedness
/// checks on the netlists and CNF the solvers consume, run *before* any
/// solver does. The linters parse raw AIGER (ASCII and binary) and DIMACS
/// themselves, deliberately more tolerant than the production readers in
/// io/ and sat/ — a malformed file yields error *findings*, not an
/// exception, so one run reports every defect it can still reach. Only an
/// unreadable file (missing, permission) throws io::IoError.
///
/// Every finding carries a stable machine-readable code (the contract the
/// tests and CI gates pin), a severity, and a location. The full code
/// catalogue lives in docs/ARCHITECTURE.md § "Static analysis &
/// concurrency contracts".

enum class Severity {
  kInfo,     ///< stylistic / redundancy note, never affects the exit code
  kWarning,  ///< structurally suspicious (dangling node, duplicate clause)
  kError,    ///< the artifact is unsound input for the solvers
};

const char* to_string(Severity s);

struct Finding {
  std::string code;     ///< stable machine-readable id, e.g. "AIG-CYCLE"
  Severity severity = Severity::kWarning;
  std::string object;   ///< what it concerns, e.g. "and 12", "clause 7"
  std::string message;  ///< human-readable explanation
  long line = 0;        ///< 1-based source line when known, 0 otherwise
};

struct LintReport {
  std::string path;  ///< source file; "<memory>" for in-memory lints
  std::string kind;  ///< "aiger-ascii", "aiger-binary", "cnf" or "aig"
  std::vector<Finding> findings;

  int errors() const;
  int warnings() const;
  int infos() const;
  /// True when no error-severity finding is present — the exit-0 contract
  /// of `step lint` (warnings and infos do not fail a run).
  bool ok() const { return errors() == 0; }
  bool has(std::string_view code) const;
};

/// Lints AIGER bytes, dispatching ASCII vs binary on the header magic.
LintReport lint_aiger(std::string_view bytes);

/// Lints DIMACS CNF text.
LintReport lint_cnf(std::string_view text);

/// Lints an in-memory AIG (the benchgen invariant hook): dangling AND
/// nodes, strash violations (duplicate or foldable ANDs) and constant
/// outputs. Range errors and cycles are unrepresentable in aig::Aig, so
/// only the file-level linters check those.
LintReport lint_aig(const aig::Aig& a);

/// Reads and lints a file, dispatching on extension (.aag/.aig -> AIGER,
/// .cnf/.dimacs -> CNF) with a content sniff as fallback. Throws
/// io::IoError when the file cannot be read; content problems come back
/// as findings.
LintReport lint_file(const std::string& path);

/// Renders a report as a single machine-readable JSON object
/// ({path, kind, summary{errors,warnings,infos,ok}, findings[...]}).
std::string to_json(const LintReport& report);

}  // namespace step::analysis
