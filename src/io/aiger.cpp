#include "io/aiger.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "io/io_error.h"

namespace step::io {

namespace {

struct AndDef {
  std::uint32_t rhs0, rhs1;
};

}  // namespace

aig::Aig parse_aiger(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string magic;
  std::uint32_t m = 0, i = 0, l = 0, o = 0, a = 0;
  if (!(is >> magic >> m >> i >> l >> o >> a) || magic != "aag") {
    throw IoError("aiger: expected 'aag M I L O A' header");
  }
  // Header sanity before any allocation is sized from it: AIGER requires
  // M >= I + L + A, and every declared object occupies at least two bytes
  // of text, so a header promising more than the file could possibly hold
  // is malformed (and would otherwise drive multi-gigabyte allocations).
  const std::uint64_t byte_limit = text.size() + 64;
  if (static_cast<std::uint64_t>(i) + l + a > m || m > byte_limit) {
    throw IoError("aiger: implausible header counts");
  }

  aig::Aig out;
  // aiger var -> our literal (for the positive literal of that var).
  std::vector<aig::Lit> var_map(m + 1, aig::kLitInvalid);
  var_map[0] = aig::kLitFalse;

  auto read_lit = [&]() {
    std::uint32_t v;
    if (!(is >> v)) throw IoError("aiger: truncated file");
    if (v / 2 > m) throw IoError("aiger: literal out of range");
    return v;
  };

  std::vector<std::uint32_t> input_lits(i);
  for (std::uint32_t k = 0; k < i; ++k) {
    input_lits[k] = read_lit();
    if (input_lits[k] % 2 != 0 || input_lits[k] == 0) {
      throw IoError("aiger: input literal must be even, nonzero");
    }
    var_map[input_lits[k] / 2] = out.add_input("i" + std::to_string(k));
  }
  std::vector<std::uint32_t> latch_lits(l), latch_next(l);
  for (std::uint32_t k = 0; k < l; ++k) {
    latch_lits[k] = read_lit();
    latch_next[k] = read_lit();
    // Optional init value: peek the rest of the line.
    std::string rest;
    std::getline(is, rest);
    if (latch_lits[k] % 2 != 0 || latch_lits[k] == 0) {
      throw IoError("aiger: latch literal must be even, nonzero");
    }
    var_map[latch_lits[k] / 2] = out.add_input("l" + std::to_string(k));
  }
  std::vector<std::uint32_t> output_lits(o);
  for (std::uint32_t k = 0; k < o; ++k) output_lits[k] = read_lit();

  std::unordered_map<std::uint32_t, AndDef> ands;  // var -> fanins
  for (std::uint32_t k = 0; k < a; ++k) {
    const std::uint32_t lhs = read_lit();
    const std::uint32_t rhs0 = read_lit();
    const std::uint32_t rhs1 = read_lit();
    if (lhs % 2 != 0 || lhs == 0 || var_map[lhs / 2] != aig::kLitInvalid) {
      throw IoError("aiger: bad AND definition");
    }
    ands.emplace(lhs / 2, AndDef{rhs0, rhs1});
  }

  // Demand-driven elaboration (ASCII aiger does not promise ordering).
  // Iterative DFS: a hostile file can declare an AND chain as deep as the
  // file is long, which would overflow the call stack if recursed.
  std::vector<char> expanded(m + 1, 0);
  auto edge = [&](std::uint32_t lit) {
    return (lit & 1U) != 0 ? aig::lnot(var_map[lit / 2]) : var_map[lit / 2];
  };
  auto resolve = [&](std::uint32_t lit) -> aig::Lit {
    std::vector<std::uint32_t> work{lit / 2};
    while (!work.empty()) {
      const std::uint32_t var = work.back();
      if (var_map[var] != aig::kLitInvalid) {
        expanded[var] = 0;
        work.pop_back();
        continue;
      }
      auto it = ands.find(var);
      if (it == ands.end()) {
        throw IoError("aiger: undefined variable " +
                                 std::to_string(var));
      }
      const std::uint32_t c0 = it->second.rhs0 / 2;
      const std::uint32_t c1 = it->second.rhs1 / 2;
      if (expanded[var]) {
        // Children were scheduled; unresolved ones now mean a cycle.
        if (var_map[c0] == aig::kLitInvalid ||
            var_map[c1] == aig::kLitInvalid) {
          throw IoError("aiger: cyclic definition");
        }
        var_map[var] = out.land(edge(it->second.rhs0), edge(it->second.rhs1));
        expanded[var] = 0;
        work.pop_back();
        continue;
      }
      expanded[var] = 1;
      for (const std::uint32_t c : {c0, c1}) {
        if (var_map[c] != aig::kLitInvalid) continue;
        if (expanded[c]) throw IoError("aiger: cyclic definition");
        work.push_back(c);
      }
    }
    return edge(lit);
  };

  for (std::uint32_t k = 0; k < o; ++k) {
    out.add_output(resolve(output_lits[k]), "o" + std::to_string(k));
  }
  for (std::uint32_t k = 0; k < l; ++k) {
    out.add_output(resolve(latch_next[k]), "l" + std::to_string(k) + "_next");
  }

  // Symbol table and comments.
  std::string tok;
  while (is >> tok) {
    if (tok == "c") break;  // comment section
    if (tok.size() < 2) continue;
    const char kind = tok[0];
    const int idx = std::atoi(tok.c_str() + 1);
    std::string name;
    std::getline(is, name);
    if (!name.empty() && name[0] == ' ') name.erase(0, 1);
    if (name.empty()) continue;
    if (kind == 'i' && idx >= 0 && idx < static_cast<int>(i)) {
      out.set_input_name(idx, name);
    } else if (kind == 'l' && idx >= 0 && idx < static_cast<int>(l)) {
      out.set_input_name(i + idx, name);
      out.set_output_name(o + idx, name + "_next");
    } else if (kind == 'o' && idx >= 0 && idx < static_cast<int>(o)) {
      out.set_output_name(idx, name);
    }
  }
  return out;
}

aig::Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("aiger: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_aiger(ss.str());
}

std::string write_aiger(const aig::Aig& a) {
  // Node ids are dense and topologically ordered, and the literal encoding
  // matches AIGER's, so the translation is the identity on literals.
  std::ostringstream os;
  const std::uint32_t m = a.num_nodes() - 1;
  os << "aag " << m << ' ' << a.num_inputs() << " 0 " << a.num_outputs()
     << ' ' << a.num_ands() << '\n';
  for (std::uint32_t k = 0; k < a.num_inputs(); ++k) {
    os << aig::mk_lit(a.input_node(k)) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
    os << a.output(k) << '\n';
  }
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    os << aig::mk_lit(n) << ' ' << a.fanin0(n) << ' ' << a.fanin1(n) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_inputs(); ++k) {
    os << 'i' << k << ' ' << a.input_name(k) << '\n';
  }
  for (std::uint32_t k = 0; k < a.num_outputs(); ++k) {
    os << 'o' << k << ' ' << a.output_name(k) << '\n';
  }
  return os.str();
}

void write_aiger_file(const aig::Aig& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("aiger: cannot write '" + path + "'");
  out << write_aiger(a);
  if (!out) throw IoError("aiger: write failed for '" + path + "'");
}

}  // namespace step::io
