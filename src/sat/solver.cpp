#include "sat/solver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "sat/elimination.h"
#include "sat/probing.h"
#include "sat/scc.h"

namespace step::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 ... scaled by the restart base.
double luby(double y, int x) {
  int size, seq;
  for (size = 1, seq = 0; size < x + 1; seq++, size = 2 * size + 1) {
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    seq--;
    x = x % size;
  }
  return std::pow(y, seq);
}

// EMA smoothing constants (per conflict). The knobs that matter for tuning
// are the margins in SolverOptions; the horizons follow Glucose/CaDiCaL
// practice: the fast average tracks the last ~32 conflicts, the slow one
// the last ~16k, and the trail average the last ~4k.
constexpr double kEmaFastAlpha = 1.0 / 32.0;
constexpr double kEmaSlowAlpha = 1.0 / 16384.0;
constexpr double kTrailEmaAlpha = 1.0 / 4096.0;

}  // namespace

Solver::Stats& Solver::Stats::operator+=(const Stats& o) {
  conflicts += o.conflicts;
  decisions += o.decisions;
  propagations += o.propagations;
  binary_propagations += o.binary_propagations;
  restarts += o.restarts;
  blocked_restarts += o.blocked_restarts;
  rephases += o.rephases;
  learnt += o.learnt;
  db_reductions += o.db_reductions;
  core_learnts += o.core_learnts;
  tier2_learnts += o.tier2_learnts;
  local_learnts += o.local_learnts;
  inprocess_rounds += o.inprocess_rounds;
  subsumed_clauses += o.subsumed_clauses;
  strengthened_clauses += o.strengthened_clauses;
  vivified_clauses += o.vivified_clauses;
  removed_lits += o.removed_lits;
  eliminated_vars += o.eliminated_vars;
  substituted_lits += o.substituted_lits;
  failed_literals += o.failed_literals;
  hyper_binaries += o.hyper_binaries;
  transitive_reductions += o.transitive_reductions;
  conflict_budget_stops += o.conflict_budget_stops;
  deadline_stops += o.deadline_stops;
  return *this;
}

Solver::Solver(SolverOptions opts) : opts_(opts) {
  debug_models_ = std::getenv("STEP_DEBUG_MODELS") != nullptr;
  if (opts_.mem != nullptr) arena_.set_mem_tracker(opts_.mem);
}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(Lbool::kUndef);
  level_.push_back(0);
  reason_.push_back(kCRefUndef);
  activity_.push_back(0.0);
  polarity_.push_back(0);
  target_phase_.push_back(0);
  seen_.push_back(0);
  present_.push_back(0);
  seen2_.push_back(0);
  level0_unit_id_.push_back(kProofIdUndef);
  frozen_.push_back(0);
  var_state_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  order_heap_.insert(v);
  if (debug_models_) debug_trace_.push_back("v");
  return v;
}

void Solver::attach_clause(CRef cr) {
  const Clause& c = arena_[cr];
  STEP_CHECK(c.size() >= 2);
  if (c.size() == 2) {
    bin_watches_[index(~c[0])].push_back({c[1], cr});
    bin_watches_[index(~c[1])].push_back({c[0], cr});
    return;
  }
  watches_[index(~c[0])].push_back({cr, c[1]});
  watches_[index(~c[1])].push_back({cr, c[0]});
}

void Solver::detach_clause(CRef cr) {
  const Clause& c = arena_[cr];
  if (c.size() == 2) {
    auto remove_bin = [&](Lit w) {
      auto& ws = bin_watches_[index(~w)];
      for (std::size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].cref == cr) {
          ws[i] = ws.back();
          ws.pop_back();
          return;
        }
      }
      STEP_CHECK(false && "binary watcher not found");
    };
    remove_bin(c[0]);
    remove_bin(c[1]);
    return;
  }
  auto remove_from = [&](Lit w) {
    auto& ws = watches_[index(~w)];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cr) {
        ws[i] = ws.back();
        ws.pop_back();
        return;
      }
    }
    STEP_CHECK(false && "watcher not found");
  };
  remove_from(c[0]);
  remove_from(c[1]);
}

void Solver::enqueue(Lit p, CRef from) {
  const Var v = var(p);
  STEP_CHECK(value(p) == Lbool::kUndef);
  assigns_[v] = mk_lbool(!sign(p));
  level_[v] = decision_level();
  reason_[v] = from;
  trail_.push_back(p);
}

ProofId Solver::level0_justification(Var v) const {
  STEP_CHECK(level_[v] == 0 && value(v) != Lbool::kUndef);
  if (reason_[v] != kCRefUndef) return arena_[reason_[v]].proof_id();
  STEP_CHECK(level0_unit_id_[v] != kProofIdUndef);
  return level0_unit_id_[v];
}

void Solver::resolve_level0(LitVec& pending, std::vector<ProofStep>& steps) {
  if (pending.empty()) return;
  int n_marked = 0;
  for (Lit l : pending) {
    const Var v = var(l);
    STEP_CHECK(level_[v] == 0 && value(l) == Lbool::kFalse);
    if (!seen2_[v]) {
      seen2_[v] = 1;
      ++n_marked;
    }
  }
  const int end = decision_level() > 0 ? trail_lim_[0]
                                       : static_cast<int>(trail_.size());
  for (int i = end - 1; i >= 0 && n_marked > 0; --i) {
    const Var v = var(trail_[i]);
    if (!seen2_[v]) continue;
    seen2_[v] = 0;
    --n_marked;
    steps.push_back({level0_justification(v), v});
    if (reason_[v] != kCRefUndef) {
      const Clause& c = arena_[reason_[v]];
      for (std::uint32_t k = 1; k < c.size(); ++k) {
        const Var vq = var(c[k]);
        if (!seen2_[vq]) {
          seen2_[vq] = 1;
          ++n_marked;
        }
      }
    }
  }
  STEP_CHECK(n_marked == 0);
  pending.clear();
}

bool Solver::add_clause(std::span<const Lit> lits_in, int proof_tag) {
  STEP_CHECK(decision_level() == 0);
  if (!ok_) return false;

  if (debug_models_) {
    debug_clauses_.emplace_back(lits_in.begin(), lits_in.end());
    std::string line = "c";
    for (Lit l : lits_in) {
      line += ' ';
      line += std::to_string(sign(l) ? -(var(l) + 1) : var(l) + 1);
    }
    debug_trace_.push_back(std::move(line));
  }
  LitVec lits(lits_in.begin(), lits_in.end());
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  for (std::size_t i = 0; i + 1 < lits.size(); ++i) {
    STEP_CHECK(var(lits[i]) < num_vars() && var(lits[i]) >= 0);
    if (var(lits[i]) == var(lits[i + 1])) return true;  // tautology
  }
  if (!lits.empty()) {
    STEP_CHECK(var(lits.back()) < num_vars() && var(lits.back()) >= 0);
  }
  for (Lit l : lits) {
    // A clause over an eliminated/substituted variable would be silently
    // meaningless — the variable's defining clauses are gone. Callers must
    // freeze any variable they keep constraining across solves.
    STEP_CHECK(var_state_[var(l)] == 0);
    if (value(l) == Lbool::kTrue) return true;  // already satisfied forever
  }

  const bool proof_on = opts_.proof_logging;
  ProofId pid = kProofIdUndef;
  if (proof_on) pid = proof_.add_leaf(lits, proof_tag);

  // Strip literals that are false at level 0, logging the resolutions.
  LitVec falses, kept;
  for (Lit l : lits) {
    (value(l) == Lbool::kFalse ? falses : kept).push_back(l);
  }
  if (proof_on && !falses.empty()) {
    std::vector<ProofStep> steps;
    resolve_level0(falses, steps);
    pid = proof_.add_derived(pid, std::move(steps));
  }
  // The stored clause is a strict strengthening of the input clause; the
  // DRAT trace must introduce it (it is RUP from the level-0 units).
  if (opts_.drat_logging && kept.size() != lits.size()) drat_.add(kept);

  if (kept.empty()) {
    ok_ = false;
    if (proof_on) proof_.set_empty_clause(pid);
    return false;
  }
  if (kept.size() == 1) {
    enqueue(kept[0], kCRefUndef);
    if (proof_on) level0_unit_id_[var(kept[0])] = pid;
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      if (proof_on) {
        const Clause& c = arena_[confl];
        LitVec cl(c.lits().begin(), c.lits().end());
        std::vector<ProofStep> steps;
        resolve_level0(cl, steps);
        proof_.set_empty_clause(
            proof_.add_derived(c.proof_id(), std::move(steps)));
      }
      if (opts_.drat_logging) drat_.add({});
      ok_ = false;
      return false;
    }
    return true;
  }

  const CRef cr = arena_.alloc(kept, /*learnt=*/false);
  if (proof_on) arena_[cr].set_proof_id(pid);
  clauses_.push_back(cr);
  attach_clause(cr);
  ++clauses_added_since_preprocess_;
  return true;
}

CRef Solver::propagate() {
  CRef confl = kCRefUndef;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[qhead_++];  // p is now true

    // Binary implication list first: each entry is a clause (~p ∨ other),
    // so `other` is forced outright — no watch surgery, no arena touch
    // unless the clause actually propagates or conflicts.
    for (const BinWatcher& bw : bin_watches_[index(p)]) {
      const Lbool v = value(bw.other);
      if (v == Lbool::kTrue) continue;
      if (v == Lbool::kFalse) {
        // Keep the "c[0] is the falsified/propagated literal's clause
        // head" invariant for conflict analysis.
        Clause& c = arena_[bw.cref];
        if (c[0] != bw.other) std::swap(c[0], c[1]);
        qhead_ = static_cast<int>(trail_.size());
        return bw.cref;
      }
      Clause& c = arena_[bw.cref];
      if (c[0] != bw.other) std::swap(c[0], c[1]);
      enqueue(bw.other, bw.cref);
      ++stats_.propagations;
      ++stats_.binary_propagations;
    }

    auto& ws = watches_[index(p)];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i];
      // Blocker short-circuit: clause already satisfied.
      if (value(w.blocker) == Lbool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const CRef cr = w.cref;
      Clause& c = arena_[cr];
      const Lit false_lit = ~p;
      if (c[0] == false_lit) {
        c[0] = c[1];
        c[1] = false_lit;
      }
      ++i;
      const Lit first = c[0];
      if (first != w.blocker && value(first) == Lbool::kTrue) {
        ws[j++] = {cr, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (value(c[k]) != Lbool::kFalse) {
          c[1] = c[k];
          c[k] = false_lit;
          watches_[index(~c[1])].push_back({cr, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = {cr, first};
      if (value(first) == Lbool::kFalse) {
        confl = cr;
        qhead_ = static_cast<int>(trail_.size());
        while (i < n) ws[j++] = ws[i++];
      } else {
        enqueue(first, cr);
        ++stats_.propagations;
      }
    }
    ws.resize(j);
    if (confl != kCRefUndef) break;
  }
  return confl;
}

void Solver::cancel_until(int lvl) {
  if (decision_level() <= lvl) return;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[lvl]; --i) {
    const Var v = var(trail_[i]);
    if (opts_.phase_saving) {
      polarity_[v] = (assigns_[v] == Lbool::kTrue) ? 1 : 0;
    }
    assigns_[v] = Lbool::kUndef;
    reason_[v] = kCRefUndef;
    order_heap_.insert(v);
  }
  trail_.resize(trail_lim_[lvl]);
  trail_lim_.resize(lvl);
  qhead_ = static_cast<int>(trail_.size());
}

Lit Solver::pick_branch_lit() {
  while (!order_heap_.empty()) {
    const Var v = order_heap_.remove_max();
    // Removed variables have no occurrences: deciding them would only pad
    // the trail (their model values come from the reconstruction stack).
    if (value(v) == Lbool::kUndef && var_state_[v] == 0) {
      return mk_lit(v, polarity_[v] == 0);
    }
  }
  return kLitUndef;
}

void Solver::bump_var(Var v, double factor) {
  activity_[v] += var_inc_ * factor;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_heap_.increased(v);
}

void Solver::bump_clause(Clause& c) {
  c.set_activity(c.activity() + static_cast<float>(cla_inc_));
  if (c.activity() > 1e20f) {
    for (CRef cr : learnts_) {
      Clause& lc = arena_[cr];
      lc.set_activity(lc.activity() * 1e-20f);
    }
    cla_inc_ *= 1e-20;
  }
}

// ------------------------------------------------------------ LBD tiers ----

int Solver::compute_lbd(std::span<const Lit> lits) {
  // Levels run up to the current decision level, which can exceed
  // num_vars(): every already-satisfied assumption adds a dummy level,
  // and assumption lists may repeat literals.
  const std::size_t need = static_cast<std::size_t>(decision_level()) + 1;
  if (need > level_stamp_.size()) level_stamp_.resize(need, -1);
  const int stamp = ++stamp_counter_;
  int lbd = 0;
  for (Lit l : lits) {
    const int lvl = level_[var(l)];
    if (lvl == 0) continue;
    if (level_stamp_[lvl] != stamp) {
      level_stamp_[lvl] = stamp;
      ++lbd;
    }
  }
  return lbd;
}

void Solver::note_tier(ClauseTier t, int delta) {
  std::uint64_t* counter = t == ClauseTier::kCore    ? &stats_.core_learnts
                           : t == ClauseTier::kTier2 ? &stats_.tier2_learnts
                                                     : &stats_.local_learnts;
  *counter += static_cast<std::uint64_t>(delta);
}

/// A learnt clause participated in conflict analysis: bump it, mark it
/// used (tier2 protection), and re-evaluate its glue — clauses whose LBD
/// improves get promoted, which is the "glue-based protection" replacing
/// the old pure-activity retention.
void Solver::on_learnt_antecedent(Clause& c) {
  bump_clause(c);
  c.set_used(true);
  if (c.lbd() > static_cast<std::uint32_t>(opts_.core_lbd_cut)) {
    const int lbd = compute_lbd(c.lits());
    if (lbd < static_cast<int>(c.lbd())) {
      c.set_lbd(lbd);
      const ClauseTier old_tier = c.tier();
      ClauseTier new_tier = old_tier;
      if (lbd <= opts_.core_lbd_cut) {
        new_tier = ClauseTier::kCore;
      } else if (lbd <= opts_.tier2_lbd_cut && old_tier == ClauseTier::kLocal) {
        new_tier = ClauseTier::kTier2;
      }
      if (new_tier != old_tier) {
        note_tier(old_tier, -1);
        note_tier(new_tier, +1);
        c.set_tier(new_tier);
      }
    }
  }
}

void Solver::remove_learnt(CRef cr) {
  Clause& c = arena_[cr];
  detach_clause(cr);
  note_tier(c.tier(), -1);
  if (opts_.drat_logging) drat_.del(c.lits());
  c.set_removed();
}

/// Tier2 protection round: clauses that took part in a conflict since the
/// last reduction stay (flag cleared for the next round); untouched ones
/// drop to the local tier and start competing on activity. Runs on every
/// scheduled reduction tick — including the ones whose local halving is
/// skipped — so tier2 can never hoard stale clauses behind the
/// reduce_min_local guard.
void Solver::demote_unused_tier2() {
  for (CRef cr : learnts_) {
    Clause& c = arena_[cr];
    if (c.tier() != ClauseTier::kTier2) continue;
    if (c.used()) {
      c.set_used(false);
    } else {
      note_tier(ClauseTier::kTier2, -1);
      note_tier(ClauseTier::kLocal, +1);
      c.set_tier(ClauseTier::kLocal);
    }
  }
}

void Solver::reduce_db() {
  STEP_CHECK(!opts_.proof_logging);
  ++stats_.db_reductions;
  auto locked = [&](CRef cr) {
    const Clause& c = arena_[cr];
    return reason_[var(c[0])] == cr && value(c[0]) == Lbool::kTrue;
  };

  demote_unused_tier2();

  // Local tier: keep the most active half; never remove locked reasons.
  std::vector<CRef> local;
  local.reserve(learnts_.size());
  for (CRef cr : learnts_) {
    if (arena_[cr].tier() == ClauseTier::kLocal) local.push_back(cr);
  }
  std::sort(local.begin(), local.end(), [&](CRef a, CRef b) {
    return arena_[a].activity() < arena_[b].activity();
  });
  const std::size_t half = local.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    if (!locked(local[i])) remove_learnt(local[i]);
  }
  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [&](CRef cr) { return arena_[cr].removed(); }),
                 learnts_.end());
  next_reduce_ = stats_.conflicts + static_cast<std::uint64_t>(
                                        std::max(1, opts_.reduce_interval));
}

// ------------------------------------------------- restarts / rephasing ----

void Solver::update_search_emas(int lbd) {
  const double trail_size = static_cast<double>(trail_.size());
  if (!emas_primed_) {
    lbd_ema_fast_ = lbd_ema_slow_ = static_cast<double>(lbd);
    trail_ema_ = trail_size;
    emas_primed_ = true;
    return;
  }
  lbd_ema_fast_ += kEmaFastAlpha * (lbd - lbd_ema_fast_);
  lbd_ema_slow_ += kEmaSlowAlpha * (lbd - lbd_ema_slow_);
  trail_ema_ += kTrailEmaAlpha * (trail_size - trail_ema_);
  // Blocking: a conflict with an unusually deep trail suggests the solver
  // is closing in on a model — postpone a pending restart.
  if (opts_.restart_block_margin > 0.0 &&
      opts_.restart_mode == RestartMode::kEma &&
      lbd_ema_fast_ > opts_.restart_margin * lbd_ema_slow_ &&
      trail_size > opts_.restart_block_margin * trail_ema_ &&
      stats_.conflicts >= restart_hold_until_) {
    restart_hold_until_ =
        stats_.conflicts + static_cast<std::uint64_t>(
                               std::max(1, opts_.restart_min_interval));
    ++stats_.blocked_restarts;
  }
}

bool Solver::ema_restart_due(int conflicts_since_restart) {
  return emas_primed_ &&
         conflicts_since_restart >= opts_.restart_min_interval &&
         stats_.conflicts >= restart_hold_until_ &&
         lbd_ema_fast_ > opts_.restart_margin * lbd_ema_slow_;
}

void Solver::maybe_update_target_phase() {
  if (opts_.rephase_interval <= 0) return;
  if (trail_.size() <= best_trail_size_) return;
  best_trail_size_ = trail_.size();
  for (Lit p : trail_) {
    target_phase_[var(p)] = (assigns_[var(p)] == Lbool::kTrue) ? 1 : 0;
  }
}

void Solver::rephase() {
  polarity_ = target_phase_;
  best_trail_size_ = 0;
  next_rephase_ = stats_.conflicts +
                  static_cast<std::uint64_t>(opts_.rephase_interval);
  ++stats_.rephases;
}

// ---------------------------------------------------- conflict analysis ----

bool Solver::lit_redundant(Lit l, std::vector<ProofStep>& steps,
                           LitVec& dropped0, LitVec& to_clear) {
  const Var v = var(l);
  const CRef r = reason_[v];
  if (r == kCRefUndef) return false;
  const Clause& c = arena_[r];
  // c[0] is the literal the clause propagated, i.e. ~l.
  for (std::uint32_t k = 1; k < c.size(); ++k) {
    const Var vq = var(c[k]);
    if (level_[vq] == 0) continue;
    if (!present_[vq]) return false;
  }
  if (opts_.proof_logging) {
    steps.push_back({c.proof_id(), v});
    for (std::uint32_t k = 1; k < c.size(); ++k) {
      const Lit q = c[k];
      const Var vq = var(q);
      if (level_[vq] == 0 && !seen_[vq]) {
        seen_[vq] = 1;
        to_clear.push_back(q);
        dropped0.push_back(q);
      }
    }
  }
  return true;
}

void Solver::analyze(CRef confl, LitVec& out_learnt, int& out_btlevel,
                     ProofId& out_start, std::vector<ProofStep>& out_steps,
                     LitVec& dropped0) {
  const bool proof_on = opts_.proof_logging;
  out_learnt.clear();
  out_learnt.push_back(kLitUndef);  // slot for the asserting (UIP) literal
  out_steps.clear();
  dropped0.clear();
  LitVec to_clear;  // literals whose seen_ flag must be reset at the end

  int path_c = 0;
  Lit p = kLitUndef;
  int idx = static_cast<int>(trail_.size()) - 1;

  do {
    STEP_CHECK(confl != kCRefUndef);
    Clause& c = arena_[confl];
    if (proof_on) {
      if (p == kLitUndef) {
        out_start = c.proof_id();
      } else {
        out_steps.push_back({c.proof_id(), var(p)});
      }
    }
    if (c.learnt()) on_learnt_antecedent(c);
    for (std::uint32_t jj = (p == kLitUndef) ? 0 : 1; jj < c.size(); ++jj) {
      const Lit q = c[jj];
      const Var v = var(q);
      if (seen_[v]) continue;
      if (level_[v] == 0) {
        if (proof_on) {
          seen_[v] = 1;
          to_clear.push_back(q);
          dropped0.push_back(q);
        }
        continue;
      }
      seen_[v] = 1;
      to_clear.push_back(q);
      bump_var(v);
      if (level_[v] >= decision_level()) {
        ++path_c;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Select the next literal of the current level to resolve on.
    while (!seen_[var(trail_[idx--])]) {
    }
    p = trail_[idx + 1];
    confl = reason_[var(p)];
    seen_[var(p)] = 0;
    --path_c;
  } while (path_c > 0);
  out_learnt[0] = ~p;

  // Basic (non-recursive) learnt clause minimization. `present_` tracks the
  // literals still syntactically in the clause so the logged resolution
  // chain reproduces the final clause exactly.
  if (opts_.minimize_learnt) {
    for (Lit l : out_learnt) present_[var(l)] = 1;
    std::size_t i, j;
    for (i = j = 1; i < out_learnt.size(); ++i) {
      const Lit l = out_learnt[i];
      if (lit_redundant(l, out_steps, dropped0, to_clear)) {
        present_[var(l)] = 0;
      } else {
        out_learnt[j++] = l;
      }
    }
    out_learnt.resize(j);
    for (Lit l : out_learnt) present_[var(l)] = 0;
  }

  // Find the backtrack level and place its literal at index 1.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level_[var(out_learnt[k])] > level_[var(out_learnt[max_i])]) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[var(out_learnt[1])];
  }

  for (Lit l : to_clear) seen_[var(l)] = 0;
  seen_[var(out_learnt[0])] = 0;
}

void Solver::analyze_final(Lit p, LitVec& out_core) {
  // p is the failing assumption (currently false). The core is a subset of
  // assumptions, in assumed polarity, inconsistent with the clauses.
  out_core.clear();
  out_core.push_back(p);
  if (decision_level() == 0) return;

  seen_[var(p)] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1; i >= trail_lim_[0]; --i) {
    const Var x = var(trail_[i]);
    if (!seen_[x]) continue;
    if (reason_[x] == kCRefUndef) {
      STEP_CHECK(level_[x] > 0);
      out_core.push_back(trail_[i]);
    } else {
      const Clause& c = arena_[reason_[x]];
      for (std::uint32_t k = 1; k < c.size(); ++k) {
        if (level_[var(c[k])] > 0) seen_[var(c[k])] = 1;
      }
    }
    seen_[x] = 0;
  }
  seen_[var(p)] = 0;
}

// ----------------------------------------------------------- main search ----

Result Solver::search(std::int64_t nof_conflicts, const Deadline* deadline) {
  int conflict_c = 0;
  LitVec learnt, dropped0;
  std::vector<ProofStep> steps;

  for (;;) {
    const CRef confl = propagate();
    if (confl != kCRefUndef) {
      ++stats_.conflicts;
      ++conflict_c;
      if (decision_level() == 0) {
        if (opts_.proof_logging) {
          const Clause& c = arena_[confl];
          LitVec cl(c.lits().begin(), c.lits().end());
          std::vector<ProofStep> fsteps;
          resolve_level0(cl, fsteps);
          proof_.set_empty_clause(
              proof_.add_derived(c.proof_id(), std::move(fsteps)));
        }
        if (opts_.drat_logging) drat_.add({});
        ok_ = false;
        return Result::kUnsat;
      }

      maybe_update_target_phase();

      int btlevel = 0;
      ProofId start = kProofIdUndef;
      analyze(confl, learnt, btlevel, start, steps, dropped0);
      ProofId pid = kProofIdUndef;
      if (opts_.proof_logging) {
        if (!dropped0.empty()) resolve_level0(dropped0, steps);
        pid = proof_.add_derived(start, steps);
      }
      if (opts_.drat_logging) drat_.add(learnt);
      const int lbd = learnt.size() == 1 ? 1 : compute_lbd(learnt);
      update_search_emas(lbd);
      cancel_until(btlevel);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kCRefUndef);
        if (opts_.proof_logging) level0_unit_id_[var(learnt[0])] = pid;
      } else {
        const CRef cr = arena_.alloc(learnt, /*learnt=*/true);
        Clause& c = arena_[cr];
        if (opts_.proof_logging) c.set_proof_id(pid);
        c.set_lbd(lbd);
        const ClauseTier tier = lbd <= opts_.core_lbd_cut ? ClauseTier::kCore
                                : lbd <= opts_.tier2_lbd_cut
                                    ? ClauseTier::kTier2
                                    : ClauseTier::kLocal;
        c.set_tier(tier);
        c.set_used(true);
        note_tier(tier, +1);
        learnts_.push_back(cr);
        attach_clause(cr);
        bump_clause(c);
        enqueue(learnt[0], cr);
      }
      ++stats_.learnt;
      decay_var_activity();
      decay_clause_activity();

      if (opts_.rephase_interval > 0 && stats_.conflicts >= next_rephase_ &&
          next_rephase_ != 0) {
        rephase();
      }

      if ((conflict_c & 0xf) == 0 && deadline && deadline->expired()) {
        cancel_until(0);
        return Result::kUnknown;
      }
    } else {
      bool restart_now = nof_conflicts >= 0 && conflict_c >= nof_conflicts;
      if (!restart_now && opts_.restart_mode == RestartMode::kEma) {
        restart_now = ema_restart_due(conflict_c);
      }
      if (restart_now) {
        ++stats_.restarts;
        cancel_until(0);
        return Result::kUnknown;
      }
      if (!opts_.proof_logging) {
        if (stats_.conflicts >= next_reduce_) {
          if (stats_.local_learnts >=
              static_cast<std::uint64_t>(std::max(0, opts_.reduce_min_local))) {
            reduce_db();
          } else {
            // Tiny local tier: skip the halving (it would just churn), but
            // still demote stale tier2 clauses and reschedule.
            demote_unused_tier2();
            next_reduce_ =
                stats_.conflicts + static_cast<std::uint64_t>(
                                       std::max(1, opts_.reduce_interval));
          }
        } else if (static_cast<double>(stats_.local_learnts) -
                       static_cast<double>(trail_.size()) >=
                   max_learnts_) {
          reduce_db();
        }
      }

      Lit next = kLitUndef;
      while (decision_level() < static_cast<int>(assumptions_.size())) {
        const Lit a = assumptions_[decision_level()];
        if (value(a) == Lbool::kTrue) {
          new_decision_level();  // dummy level keeps the invariant simple
        } else if (value(a) == Lbool::kFalse) {
          analyze_final(a, conflict_core_);
          return Result::kUnsat;
        } else {
          next = a;
          break;
        }
      }
      if (next == kLitUndef) {
        next = pick_branch_lit();
        if (next == kLitUndef) {
          model_.assign(assigns_.begin(), assigns_.end());
          return Result::kSat;
        }
        ++stats_.decisions;
      }
      new_decision_level();
      enqueue(next, kCRefUndef);
    }
  }
}

Result Solver::solve(std::span<const Lit> assumptions) {
  return solve_limited(assumptions, -1, nullptr);
}

Result Solver::solve_limited(std::span<const Lit> assumptions,
                             std::int64_t conflict_budget,
                             const Deadline* deadline) {
  conflict_core_.clear();
  if (!ok_) return Result::kUnsat;
  if (deadline != nullptr && deadline->expired()) {
    ++stats_.deadline_stops;
    return Result::kUnknown;
  }
  // The options-level cap composes with the per-call budget: whichever is
  // tighter stops the search.
  if (opts_.conflict_budget >= 0) {
    conflict_budget = conflict_budget < 0
                          ? opts_.conflict_budget
                          : std::min(conflict_budget, opts_.conflict_budget);
  }

  ++solve_calls_;

  // Assumption variables become frozen *before* any preprocessing of this
  // call can run: a variable assumed once may be assumed again, and
  // eliminating or substituting it would corrupt those later queries.
  // Variables first assumed only in later solves must be frozen up front
  // by the caller (set_frozen / cnf::ClauseSink::freeze) — assuming an
  // already-removed variable trips the check below.
  for (Lit a : assumptions) {
    STEP_CHECK(var_state_[var(a)] == 0);
    frozen_[var(a)] = 1;
  }
  if (debug_models_) {
    std::string line = "s";
    for (Lit a : assumptions) {
      line += ' ';
      line += std::to_string(sign(a) ? -(var(a) + 1) : var(a) + 1);
    }
    debug_trace_.push_back(std::move(line));
  }

  const bool can_simplify = opts_.inprocess && !opts_.proof_logging;
  bool round_due =
      solve_calls_ - last_inprocess_solve_ >=
          static_cast<std::uint64_t>(std::max(1, opts_.inprocess_interval)) &&
      stats_.conflicts - last_inprocess_conflicts_ >=
          static_cast<std::uint64_t>(
              std::max<std::int64_t>(0, opts_.inprocess_min_conflicts));
  // The preprocessing techniques want one round before the very first
  // search — that is where shrinking a freshly encoded CNF pays for every
  // subsequent incremental query. Tiny databases are exempt: search
  // finishes faster than a tier round on them.
  if ((opts_.elim || opts_.scc || opts_.probe) && solve_calls_ == 1 &&
      clauses_.size() >= 64) {
    round_due = true;
  }
  if (can_simplify && round_due) {
    last_inprocess_solve_ = solve_calls_;
    last_inprocess_conflicts_ = stats_.conflicts;
    inprocess();
    if (!ok_) return Result::kUnsat;
  }

  assumptions_.assign(assumptions.begin(), assumptions.end());

  max_learnts_ = std::max(opts_.max_learnts_floor,
                          static_cast<double>(clauses_.size()) * 2.0);
  if (next_reduce_ == 0) {
    next_reduce_ =
        stats_.conflicts +
        static_cast<std::uint64_t>(std::max(1, opts_.reduce_interval));
  }
  if (next_rephase_ == 0 && opts_.rephase_interval > 0) {
    next_rephase_ = stats_.conflicts +
                    static_cast<std::uint64_t>(opts_.rephase_interval);
  }

  const std::uint64_t conflicts_at_start = stats_.conflicts;
  Result status = Result::kUnknown;
  for (int curr_restarts = 0; status == Result::kUnknown; ++curr_restarts) {
    std::int64_t budget = -1;
    if (opts_.restart_mode == RestartMode::kLuby) {
      budget = static_cast<std::int64_t>(luby(2.0, curr_restarts) *
                                         opts_.restart_base);
    }
    if (conflict_budget >= 0) {
      const std::int64_t used =
          static_cast<std::int64_t>(stats_.conflicts - conflicts_at_start);
      if (used >= conflict_budget) {
        ++stats_.conflict_budget_stops;
        break;
      }
      const std::int64_t remaining = conflict_budget - used;
      budget = budget < 0 ? remaining : std::min(budget, remaining);
    }
    status = search(budget, deadline);
    if (deadline && deadline->expired()) {
      if (status == Result::kUnknown) ++stats_.deadline_stops;
      break;
    }
  }
  cancel_until(0);
  // Extend the model over eliminated/substituted variables so callers see
  // values consistent with the *original* clauses.
  if (status == Result::kSat && !reconstruction_.empty()) {
    reconstruction_.extend(model_);
  }
  if (debug_models_ && status == Result::kSat) {
    for (const LitVec& c : debug_clauses_) {
      bool sat_c = false, taut = false;
      for (Lit l : c) {
        const Lbool v = model_[var(l)];
        if (v == Lbool::kUndef) taut = true;  // var never constrained again
        if ((v ^ sign(l)) == Lbool::kTrue) sat_c = true;
      }
      if (!sat_c && !taut) {
        std::fprintf(stderr, "model audit: clause unsatisfied:");
        for (Lit l : c) {
          std::fprintf(stderr, " %s%d", sign(l) ? "-" : "", var(l));
        }
        std::fprintf(stderr, "\n");
        if (FILE* f = std::fopen("/tmp/solver_trace.txt", "w")) {
          for (const std::string& line : debug_trace_) {
            std::fprintf(f, "%s\n", line.c_str());
          }
          std::fclose(f);
          std::fprintf(stderr, "model audit: trace in /tmp/solver_trace.txt\n");
        }
        STEP_CHECK(false && "model audit failed");
      }
    }
  }
  return status;
}

// --------------------------------------------------------- inprocessing ----

void Solver::compact_clause_lists() {
  clauses_.erase(std::remove_if(clauses_.begin(), clauses_.end(),
                                [&](CRef cr) { return arena_[cr].removed(); }),
                 clauses_.end());
  learnts_.erase(std::remove_if(learnts_.begin(), learnts_.end(),
                                [&](CRef cr) { return arena_[cr].removed(); }),
                 learnts_.end());
}

void Solver::rebuild_watches() {
  for (auto& ws : watches_) ws.clear();
  for (auto& ws : bin_watches_) ws.clear();
  for (CRef cr : clauses_) attach_clause(cr);
  for (CRef cr : learnts_) attach_clause(cr);
}

void Solver::mark_removed(CRef cr, bool learnt_list) {
  Clause& c = arena_[cr];
  STEP_CHECK(!c.removed());
  if (opts_.drat_logging) drat_.del(c.lits());
  if (learnt_list) note_tier(c.tier(), -1);
  c.set_removed();
}

/// Rewrites `cr` to `new_lits` (a strict subset of its literals), logging
/// the DRAT add/delete pair. Returns false when the clause shrank to a
/// unit: the clause is marked removed and the literal is appended to
/// `pending_units` (the caller enqueues after watches are consistent).
/// Watches are NOT touched — callers either rebuild wholesale or hold the
/// clause detached.
bool Solver::shrink_clause(CRef cr, const LitVec& new_lits,
                           LitVec& pending_units) {
  Clause& c = arena_[cr];
  STEP_CHECK(!new_lits.empty() && new_lits.size() < c.size());
  if (opts_.drat_logging) {
    drat_.add(new_lits);
    drat_.del(c.lits());
  }
  stats_.removed_lits += c.size() - new_lits.size();
  if (new_lits.size() == 1) {
    pending_units.push_back(new_lits[0]);
    if (c.learnt()) note_tier(c.tier(), -1);
    c.set_removed();
    return false;
  }
  for (std::size_t i = 0; i < new_lits.size(); ++i) c[i] = new_lits[i];
  c.shrink(static_cast<std::uint32_t>(new_lits.size()));
  if (c.lbd() > c.size()) c.set_lbd(c.size());
  return true;
}

/// Enqueues inprocessing-derived units at level 0 and propagates.
/// Returns false (and records the refutation) on conflict.
bool Solver::settle_units(const LitVec& pending_units) {
  STEP_CHECK(decision_level() == 0);
  for (Lit l : pending_units) {
    if (value(l) == Lbool::kTrue) continue;
    if (value(l) == Lbool::kFalse) {
      if (opts_.drat_logging) drat_.add({});
      ok_ = false;
      return false;
    }
    enqueue(l, kCRefUndef);
  }
  if (propagate() != kCRefUndef) {
    if (opts_.drat_logging) drat_.add({});
    ok_ = false;
    return false;
  }
  return true;
}

/// One bounded backward-subsumption + self-subsuming-resolution round.
/// Problem clauses act as subsumers; problem and learnt clauses can be
/// subsumed or strengthened. Units created by strengthening are appended
/// to `pending_units` for the caller to settle once watches are rebuilt.
std::size_t Solver::subsume_round(LitVec& pending_units) {
  const std::size_t units_before = pending_units.size();
  // Occurrence lists over all live clauses (they are the subsumees).
  std::vector<std::vector<CRef>> occs(watches_.size());
  auto add_occs = [&](const std::vector<CRef>& list) {
    for (CRef cr : list) {
      const Clause& c = arena_[cr];
      if (c.removed()) continue;
      for (Lit l : c.lits()) occs[index(l)].push_back(cr);
    }
  };
  add_occs(clauses_);
  add_occs(learnts_);

  // Subsumers, smallest first: short clauses kill the most.
  std::vector<CRef> subsumers(clauses_);
  std::sort(subsumers.begin(), subsumers.end(), [&](CRef a, CRef b) {
    return arena_[a].size() < arena_[b].size();
  });

  std::vector<int> lit_stamp(watches_.size(), 0);
  int stamp = 0;
  std::int64_t budget = opts_.subsume_limit;
  LitVec scratch;

  for (CRef sub_cr : subsumers) {
    if (budget <= 0) break;
    Clause& sub = arena_[sub_cr];
    if (sub.removed()) continue;

    // Candidate victims must contain every literal of the subsumer (one
    // possibly negated), in particular (a flip of) its rarest literal.
    Lit min_lit = sub[0];
    std::size_t min_occ = static_cast<std::size_t>(-1);
    for (Lit l : sub.lits()) {
      const std::size_t o = occs[index(l)].size() + occs[index(~l)].size();
      if (o < min_occ) {
        min_occ = o;
        min_lit = l;
      }
    }

    for (const Lit probe : {min_lit, ~min_lit}) {
      for (CRef victim_cr : occs[index(probe)]) {
        if (budget <= 0) break;
        if (victim_cr == sub_cr) continue;
        Clause& victim = arena_[victim_cr];
        if (victim.removed() || victim.size() < sub.size()) continue;
        budget -= static_cast<std::int64_t>(sub.size());

        ++stamp;
        for (Lit l : victim.lits()) lit_stamp[index(l)] = stamp;
        int flipped = 0;
        Lit flipped_in_victim = kLitUndef;
        bool fail = false;
        for (Lit l : sub.lits()) {
          if (lit_stamp[index(l)] == stamp) continue;
          if (lit_stamp[index(~l)] == stamp) {
            ++flipped;
            flipped_in_victim = ~l;
            if (flipped > 1) {
              fail = true;
              break;
            }
            continue;
          }
          fail = true;
          break;
        }
        if (fail) continue;
        if (flipped == 0) {
          // sub ⊆ victim: the victim is redundant.
          mark_removed(victim_cr, victim.learnt());
          ++stats_.subsumed_clauses;
        } else {
          // Self-subsuming resolution: drop the flipped literal.
          scratch.clear();
          for (Lit l : victim.lits()) {
            if (l != flipped_in_victim) scratch.push_back(l);
          }
          shrink_clause(victim_cr, scratch, pending_units);
          ++stats_.strengthened_clauses;
        }
      }
    }
  }

  return pending_units.size() - units_before;
}

/// One bounded vivification round over problem clauses and protected
/// learnts: re-derive each clause under unit propagation and keep the
/// shortest implied prefix. Runs at temporary decision levels; the clause
/// under test is detached so it cannot justify itself.
std::size_t Solver::vivify_round(LitVec& pending_units) {
  std::size_t shortened = 0;
  std::int64_t budget = opts_.vivify_limit;
  LitVec lits, kept;

  auto vivify_list = [&](const std::vector<CRef>& list) {
    for (CRef cr : list) {
      if (budget <= 0) return;
      Clause& c = arena_[cr];
      if (c.removed() || c.size() < 3 ||
          c.size() > static_cast<std::uint32_t>(opts_.vivify_max_size)) {
        continue;
      }
      if (c.learnt() && c.tier() == ClauseTier::kLocal) continue;
      lits.assign(c.lits().begin(), c.lits().end());
      detach_clause(cr);

      kept.clear();
      for (Lit l : lits) {
        const Lbool v = value(l);
        if (v == Lbool::kTrue) {
          // ¬(kept) propagated l: the clause (kept ∪ {l}) is implied.
          kept.push_back(l);
          break;
        }
        if (v == Lbool::kFalse) continue;  // implied-redundant literal
        kept.push_back(l);
        new_decision_level();
        enqueue(~l, kCRefUndef);
        --budget;
        const std::size_t trail_before = trail_.size();
        const CRef confl = propagate();
        budget -= static_cast<std::int64_t>(trail_.size() - trail_before);
        if (confl != kCRefUndef) break;  // ¬(kept) alone is contradictory
      }
      cancel_until(0);

      if (kept.empty()) {
        // Every literal is false at level 0 — the instance is refuted.
        if (opts_.drat_logging) drat_.add({});
        ok_ = false;
        return;
      }
      if (kept.size() == lits.size()) {
        // Either no redundancy found, or the conflict only arrived on the
        // last literal — the implied clause is the clause itself.
        attach_clause(cr);
        continue;
      }
      ++shortened;
      ++stats_.vivified_clauses;
      if (shrink_clause(cr, kept, pending_units)) {
        attach_clause(cr);
      }
    }
  };

  vivify_list(clauses_);
  if (ok_) vivify_list(learnts_);
  return shortened;
}

void Solver::inprocess() {
  STEP_CHECK(decision_level() == 0);
  if (!ok_) return;
  if (propagate() != kCRefUndef) {
    if (opts_.drat_logging) drat_.add({});
    ok_ = false;
    return;
  }
  ++stats_.inprocess_rounds;

  // The sweep below may delete the reason clauses of root-level units;
  // re-introduce the units as explicit addition lines first (RUP while the
  // reasons are still present) so the trace stays checkable.
  if (opts_.drat_logging) {
    for (Lit p : trail_) drat_.add(std::span<const Lit>(&p, 1));
  }
  std::size_t drat_units_emitted = trail_.size();

  // Level-0 reasons are never resolved on once proof logging is off (and
  // it is — inprocessing is disabled under proof_logging); clear them so
  // clause surgery cannot leave dangling reason references.
  for (Lit p : trail_) reason_[var(p)] = kCRefUndef;

  LitVec pending_units;
  LitVec kept;

  // Phase 1 — sweep: drop satisfied clauses, strip false literals. Purely
  // syntactic on the level-0-fixed assignment; watches go stale and are
  // rebuilt below.
  auto sweep_list = [&](std::vector<CRef>& list, bool learnt_list) {
    for (CRef cr : list) {
      Clause& c = arena_[cr];
      if (c.removed()) continue;
      bool satisfied = false;
      kept.clear();
      for (Lit l : c.lits()) {
        const Lbool v = value(l);
        if (v == Lbool::kTrue) {
          satisfied = true;
          break;
        }
        if (v == Lbool::kUndef) kept.push_back(l);
      }
      if (satisfied) {
        mark_removed(cr, learnt_list);
        continue;
      }
      STEP_CHECK(!kept.empty());  // all-false would have conflicted above
      if (kept.size() < c.size()) shrink_clause(cr, kept, pending_units);
    }
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](CRef cr) { return arena_[cr].removed(); }),
               list.end());
  };
  sweep_list(clauses_, false);
  sweep_list(learnts_, true);

  // Phase 2 — backward subsumption + self-subsuming resolution.
  subsume_round(pending_units);
  compact_clause_lists();

  // Phase 3 — make the solver consistent again, to fixpoint: settling
  // units falsifies literals inside surviving clauses, so sweep again
  // until no new unit lands. Later phases rely on this: elimination in
  // particular must never resolve over a clause carrying an assigned
  // literal — a resolvent with a false literal gets *watched on it* by
  // the wholesale rebuild and silently stops propagating (missed
  // conflicts, and with them bogus models).
  auto sweep_fixpoint = [&]() -> bool {
    for (;;) {
      // Units settled since the last emission are about to lose their
      // reason clauses to the sweep; re-introduce them as addition lines
      // (RUP while the reasons still exist) to keep the trace checkable.
      if (opts_.drat_logging) {
        for (std::size_t i = drat_units_emitted; i < trail_.size(); ++i) {
          drat_.add(std::span<const Lit>(&trail_[i], 1));
        }
      }
      drat_units_emitted = trail_.size();
      const std::size_t trail_before = trail_.size();
      sweep_list(clauses_, false);
      sweep_list(learnts_, true);
      compact_clause_lists();
      rebuild_watches();
      if (!settle_units(pending_units)) return false;
      pending_units.clear();
      if (trail_.size() == trail_before) return true;
    }
  };
  if (!sweep_fixpoint()) return;
  std::size_t clean_trail = trail_.size();

  // The preprocessing tier (SCC, probing, elimination) is far more
  // expensive than the syntactic phases above, and re-running it on a
  // database that barely changed finds next to nothing: gate repeat runs
  // on substantial problem-clause growth since the last tier run.
  const bool tier_due =
      last_preprocess_clauses_ == 0 ||
      clauses_added_since_preprocess_ >=
          std::max<std::uint64_t>(200, last_preprocess_clauses_ / 5);
  if (tier_due) {
    clauses_added_since_preprocess_ = 0;
  }

  // Phase 4 — equivalent-literal substitution (syntactic: watches go stale
  // and are rebuilt; runs on the settled level-0 assignment).
  if (opts_.scc && tier_due) {
    pending_units.clear();
    EquivalenceReducer(*this).run(pending_units);
    if (!ok_) return;
    compact_clause_lists();
    rebuild_watches();
    if (!settle_units(pending_units)) return;
  }

  // Phase 5 — failed-literal probing + hyper-binary resolution + bounded
  // transitive reduction (propagation-based: keeps watches consistent).
  if (opts_.probe && tier_due) {
    Prober(*this).run();
    if (!ok_) return;
    compact_clause_lists();
  }

  // Phase 6 — bounded variable elimination (syntactic, occurrence-list
  // driven; resolvents are appended unattached and wired up by the
  // rebuild).
  if (opts_.elim && tier_due) {
    pending_units.clear();
    // SCC substitution and probing settle fresh level-0 units after the
    // phase-3 sweep; re-sweep before resolving so no clause carries an
    // assigned literal into a resolvent.
    if (trail_.size() != clean_trail) {
      if (!sweep_fixpoint()) return;
      clean_trail = trail_.size();
    }
    Eliminator(*this).run(pending_units);
    if (!ok_) return;
    compact_clause_lists();
    rebuild_watches();
    if (!settle_units(pending_units)) return;
  }

  // Phase 7 — vivification (keeps watches consistent incrementally).
  // Skipped on the pre-first-search round: with no learnts and no search
  // history yet, re-deriving fresh problem clauses one by one is the most
  // expensive phase and almost never shortens anything.
  if (solve_calls_ > 1) {
    pending_units.clear();
    vivify_round(pending_units);
    if (!ok_) return;
    compact_clause_lists();
    if (!settle_units(pending_units)) return;
  }

  if (tier_due) last_preprocess_clauses_ = clauses_.size();
}

}  // namespace step::sat
