#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.h"

namespace step::benchgen {

/// EPFL-combinational-suite-style generators (arithmetic + control),
/// parameterized so the large-circuit bench can dial them from 10^5 up to
/// 10^6 AND gates. Like generators.h these are fully deterministic and
/// return self-contained combinational AIGs with named inputs/outputs;
/// unlike the paper-table stand-ins they exist to stress *scale* — the
/// streaming AIGER path, the arena memory envelope and the hardness
/// scheduler — not to reproduce any published row.

/// Wide carry-select adder, a[bits] + b[bits] + cin. Roughly 12 ANDs per
/// bit; bits = 100000 lands near 1.2M gates. The MSB cones span the whole
/// input vector, so supports grow linearly across the outputs.
aig::Aig epfl_adder(int bits);

/// bits x bits multiplier summing the partial-product rows with a
/// balanced tree of ripple adders (Wallace-style reduction shape).
/// Roughly 11 * bits^2 ANDs: bits = 96 is ~10^5, bits = 300 is ~10^6.
aig::Aig epfl_multiplier(int bits);

/// Logarithmic barrel shifter: data[width] << amount[log2 width], zeros
/// shifted in. width must be a power of two. Roughly 3 * width * log2
/// width ANDs: width = 4096 is ~1.5e5, width = 32768 is ~1.4e6.
aig::Aig epfl_barrel_shifter(int width);

/// 2^sel_bits-to-1 multiplexer over fresh data inputs — one output whose
/// cone is the entire circuit. Roughly 3 * 2^sel_bits ANDs: sel_bits = 15
/// is ~10^5, sel_bits = 18 is ~8e5.
aig::Aig epfl_mux(int sel_bits);

/// addr_bits-to-2^addr_bits one-hot decoder with enable — the many-small-
/// cones extreme (every output is an (addr_bits+1)-literal AND sharing
/// prefixes with its neighbours). Roughly 2^(addr_bits+1) ANDs:
/// addr_bits = 16 is ~1.3e5 ANDs across 65536 outputs.
aig::Aig epfl_decoder(int addr_bits);

/// One deliberately giant cone (an `giant_support`-input majority-of-
/// parities tower) merged with `n_small` independent random cones of
/// `small_support` inputs each. The workload the hardness scheduler is
/// built for: FIFO discovers the giant cone wherever PO order put it
/// (here: last), hardest-first starts it immediately.
aig::Aig giant_cone_suite(int giant_support, int n_small, int small_support,
                          std::uint64_t seed);

/// A named large circuit of the scaling suite.
struct LargeCircuit {
  std::string name;
  aig::Aig aig;
};

/// The standard large-circuit suite, each member sized to land within a
/// small factor of `target_gates` AND gates (clamped to sane generator
/// parameter ranges). Deterministic: same target, same circuits.
std::vector<LargeCircuit> large_suite(std::uint64_t target_gates);

}  // namespace step::benchgen
