#include "io/blif_reader.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "io/io_error.h"

namespace step::io {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string t;
  while (is >> t) tokens.push_back(t);
  return tokens;
}

/// Reads logical lines: strips comments, joins continuations.
std::vector<std::string> logical_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::string current;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;

    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      current += line + ' ';
      if (pos > text.size()) break;
      continue;
    }
    current += line;
    if (!current.empty()) lines.push_back(current);
    current.clear();
    if (pos > text.size()) break;
  }
  return lines;
}

}  // namespace

Network parse_blif(std::string_view text) {
  Network net;
  bool in_model = false;
  bool done = false;
  NetNode* open_node = nullptr;

  for (const std::string& line : logical_lines(text)) {
    if (done) break;
    std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;

    const std::string& kw = tok[0];
    if (kw[0] == '.') {
      open_node = nullptr;
      if (kw == ".model") {
        if (in_model) throw IoError("blif: nested .model");
        in_model = true;
        if (tok.size() > 1) net.name = tok[1];
      } else if (kw == ".inputs") {
        net.inputs.insert(net.inputs.end(), tok.begin() + 1, tok.end());
      } else if (kw == ".outputs") {
        net.outputs.insert(net.outputs.end(), tok.begin() + 1, tok.end());
      } else if (kw == ".names") {
        if (tok.size() < 2) throw IoError("blif: .names without output");
        NetNode node;
        node.name = tok.back();
        node.fanins.assign(tok.begin() + 1, tok.end() - 1);
        net.nodes.push_back(std::move(node));
        open_node = &net.nodes.back();
      } else if (kw == ".latch") {
        if (tok.size() < 3) throw IoError("blif: malformed .latch");
        Latch l;
        l.input = tok[1];
        l.output = tok[2];
        // Optional fields: [type control] [init]; the last numeric token,
        // if any, is the initial value.
        const std::string& last = tok.back();
        if (last.size() == 1 && last[0] >= '0' && last[0] <= '3') {
          l.init_value = last[0] - '0';
        }
        net.latches.push_back(std::move(l));
      } else if (kw == ".end") {
        done = true;
      } else if (kw == ".exdc") {
        throw IoError("blif: .exdc is not supported");
      } else {
        // Unknown directives (.default_input_arrival etc.) are skipped.
      }
      continue;
    }

    // Cube line of the open .names block.
    if (open_node == nullptr) {
      throw IoError("blif: stray cube line '" + line + "'");
    }
    if (open_node->fanins.empty()) {
      // Constant node: single column holds the output value.
      if (tok.size() != 1 || tok[0].size() != 1 ||
          (tok[0][0] != '0' && tok[0][0] != '1')) {
        throw IoError("blif: malformed constant in '" +
                                 open_node->name + "'");
      }
      open_node->out_value = tok[0][0];
      open_node->cubes.push_back("");  // one empty cube = constant out_value
    } else {
      if (tok.size() != 2 || tok[1].size() != 1) {
        throw IoError("blif: malformed cube '" + line + "'");
      }
      for (char c : tok[0]) {
        if (c != '0' && c != '1' && c != '-') {
          throw IoError("blif: bad cube character in '" + line + "'");
        }
      }
      if (!open_node->cubes.empty() && open_node->out_value != tok[1][0]) {
        throw IoError("blif: mixed ON/OFF cubes in '" +
                                 open_node->name + "'");
      }
      open_node->out_value = tok[1][0];
      open_node->cubes.push_back(tok[0]);
    }
  }

  if (!in_model) throw IoError("blif: missing .model");
  return net;
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("blif: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_blif(ss.str());
}

}  // namespace step::io
