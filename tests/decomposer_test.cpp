#include "core/decomposer.h"

#include <gtest/gtest.h>

#include "benchgen/generators.h"
#include "benchgen/suite.h"
#include "core/circuit_driver.h"
#include "core/partition_check.h"
#include "test_util.h"

namespace step::core {
namespace {

DecomposeOptions opts_for(Engine e, GateOp op) {
  DecomposeOptions o;
  o.engine = e;
  o.op = op;
  o.po_budget_s = 30.0;
  o.optimum.call_timeout_s = 5.0;
  return o;
}

// ---------- end-to-end on single cones ------------------------------------------

struct EngineOpSeed {
  Engine engine;
  GateOp op;
  int seed;
};

class DecomposerE2E : public ::testing::TestWithParam<EngineOpSeed> {};

TEST_P(DecomposerE2E, DecomposesVerifiablyOrProvesImpossible) {
  const auto [engine, op, seed] = GetParam();
  Rng rng(seed * 2221 + 41);
  for (int iter = 0; iter < 8; ++iter) {
    const int n = rng.next_int(2, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(4, 22), rng.next());
    const BiDecomposer dec(opts_for(engine, op));
    const DecomposeResult r = dec.decompose(cone);
    const BruteForceResult oracle =
        brute_force_optimum(cone, op, MetricKind::kDisjointness);

    if (r.status == DecomposeStatus::kDecomposed) {
      EXPECT_TRUE(oracle.decomposable);
      EXPECT_TRUE(r.partition.non_trivial());
      EXPECT_TRUE(check_partition_exhaustive(cone, op, r.partition));
      ASSERT_TRUE(r.functions.has_value());
      EXPECT_TRUE(r.verified);
      EXPECT_TRUE(testutil::equivalent_by_simulation(
          cone.aig, cone.root, r.functions->aig, r.functions->combined, n));
    } else {
      ASSERT_EQ(r.status, DecomposeStatus::kNotDecomposable);
      EXPECT_FALSE(oracle.decomposable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, DecomposerE2E,
    ::testing::Values(EngineOpSeed{Engine::kLjh, GateOp::kOr, 0},
                      EngineOpSeed{Engine::kMg, GateOp::kOr, 0},
                      EngineOpSeed{Engine::kMg, GateOp::kAnd, 0},
                      EngineOpSeed{Engine::kMg, GateOp::kXor, 0},
                      EngineOpSeed{Engine::kQbfDisjoint, GateOp::kOr, 0},
                      EngineOpSeed{Engine::kQbfDisjoint, GateOp::kAnd, 0},
                      EngineOpSeed{Engine::kQbfDisjoint, GateOp::kXor, 0},
                      EngineOpSeed{Engine::kQbfBalanced, GateOp::kOr, 0},
                      EngineOpSeed{Engine::kQbfCombined, GateOp::kOr, 0}));

TEST(Decomposer, QbfOptimalityMatchesOracle) {
  Rng rng(909);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(6, 24), rng.next());
    const BiDecomposer dec(opts_for(Engine::kQbfDisjoint, GateOp::kOr));
    const DecomposeResult r = dec.decompose(cone);
    const BruteForceResult oracle =
        brute_force_optimum(cone, GateOp::kOr, MetricKind::kDisjointness);
    if (r.status != DecomposeStatus::kDecomposed) continue;
    ASSERT_TRUE(oracle.decomposable);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.metrics.shared, oracle.best_cost);
  }
}

TEST(Decomposer, ConstantAndSingleVarConesNotDecomposable) {
  Cone constant;
  constant.root = aig::kLitTrue;
  EXPECT_EQ(BiDecomposer().decompose(constant).status,
            DecomposeStatus::kNotDecomposable);

  Cone wire;
  wire.root = wire.aig.add_input();
  EXPECT_EQ(BiDecomposer().decompose(wire).status,
            DecomposeStatus::kNotDecomposable);
}

TEST(Decomposer, BootstrapOffStillWorks) {
  Rng rng(112);
  DecomposeOptions o = opts_for(Engine::kQbfDisjoint, GateOp::kOr);
  o.bootstrap_with_mg = false;
  const Cone cone = testutil::random_cone(4, 12, rng.next());
  const DecomposeResult r = BiDecomposer(o).decompose(cone);
  const BruteForceResult oracle =
      brute_force_optimum(cone, GateOp::kOr, MetricKind::kDisjointness);
  EXPECT_EQ(r.status == DecomposeStatus::kDecomposed, oracle.decomposable);
}

// ---------- the paper's bootstrapping guarantee ----------------------------------

TEST(Decomposer, QbfEnginesNeverWorseThanMg) {
  Rng rng(7117);
  for (int iter = 0; iter < 6; ++iter) {
    const int n = rng.next_int(3, 6);
    const Cone cone = testutil::random_cone(n, rng.next_int(6, 24), rng.next());
    const DecomposeResult mg =
        BiDecomposer(opts_for(Engine::kMg, GateOp::kOr)).decompose(cone);
    if (mg.status != DecomposeStatus::kDecomposed) continue;

    const DecomposeResult qd =
        BiDecomposer(opts_for(Engine::kQbfDisjoint, GateOp::kOr)).decompose(cone);
    ASSERT_EQ(qd.status, DecomposeStatus::kDecomposed);
    EXPECT_LE(qd.metrics.shared, mg.metrics.shared);

    const DecomposeResult qb =
        BiDecomposer(opts_for(Engine::kQbfBalanced, GateOp::kOr)).decompose(cone);
    ASSERT_EQ(qb.status, DecomposeStatus::kDecomposed);
    EXPECT_LE(qb.metrics.imbalance, mg.metrics.imbalance);

    const DecomposeResult qdb =
        BiDecomposer(opts_for(Engine::kQbfCombined, GateOp::kOr)).decompose(cone);
    ASSERT_EQ(qdb.status, DecomposeStatus::kDecomposed);
    EXPECT_LE(qdb.metrics.combined_cost(), mg.metrics.combined_cost());
  }
}

// ---------- circuit driver --------------------------------------------------------

TEST(CircuitDriver, RunsTinySuitePo) {
  const aig::Aig adder = benchgen::ripple_adder(3);
  const CircuitRunResult r =
      run_circuit(adder, "add3", opts_for(Engine::kMg, GateOp::kXor), 60.0);
  EXPECT_EQ(r.circuit, "add3");
  EXPECT_FALSE(r.pos.empty());
  // Every sum bit of an adder XOR-decomposes; expect most POs decomposed.
  EXPECT_GT(r.num_decomposed(), 0);
  EXPECT_GT(r.max_support(), 2);
}

TEST(CircuitDriver, ComparisonCountsAreConsistent) {
  const aig::Aig circ = benchgen::priority_encoder(5);
  const auto mg = run_circuit(circ, "pri5", opts_for(Engine::kMg, GateOp::kOr), 60.0);
  const auto qd =
      run_circuit(circ, "pri5", opts_for(Engine::kQbfDisjoint, GateOp::kOr), 60.0);
  const QualityComparison cmp = compare_quality(mg, qd, MetricKind::kDisjointness);
  EXPECT_EQ(cmp.considered, cmp.challenger_better + cmp.equal + cmp.challenger_worse);
  // Bootstrapped QD can never lose to MG.
  EXPECT_EQ(cmp.challenger_worse, 0);
  EXPECT_NEAR(cmp.better_pct() + cmp.equal_pct(), 100.0, 1e-9);
}

TEST(CircuitDriver, SkipsSmallSupports) {
  // A buffer/inverter-only circuit yields no decomposable POs.
  aig::Aig a;
  const aig::Lit x = a.add_input();
  a.add_output(x, "buf");
  a.add_output(aig::lnot(x), "inv");
  const CircuitRunResult r =
      run_circuit(a, "wires", opts_for(Engine::kMg, GateOp::kOr), 10.0);
  EXPECT_TRUE(r.pos.empty());
}

TEST(CircuitDriver, XorOnParityCircuitDecomposesAll) {
  const aig::Aig par = benchgen::parity_tree(8);
  const auto r =
      run_circuit(par, "par8", opts_for(Engine::kQbfBalanced, GateOp::kXor), 60.0);
  ASSERT_EQ(r.pos.size(), 1u);
  EXPECT_EQ(r.num_decomposed(), 1);
  // Parity XOR-decomposes perfectly balanced: imbalance 0.
  EXPECT_EQ(r.pos[0].metrics.imbalance, 0);
  EXPECT_TRUE(r.pos[0].proven_optimal);
}

}  // namespace
}  // namespace step::core
