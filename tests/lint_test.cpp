// Tests for the static artifact analyzer (src/analysis): the finding-code
// contract on a crafted defect corpus (tests/data/lint), the exit/ok
// semantics, JSON rendering, the in-memory AIG linter, and the benchgen
// invariant that every generator output is lint-clean.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analysis/lint.h"
#include "benchgen/epfl.h"
#include "benchgen/suite.h"
#include "io/aiger.h"
#include "io/io_error.h"

namespace step::analysis {
namespace {

std::string data_path(const std::string& name) {
  return std::string(STEP_TEST_DATA_DIR) + "/lint/" + name;
}

// ---------------------------------------------------------- crafted corpus

TEST(LintCorpus, DetectsCombinationalCycle) {
  const LintReport r = lint_file(data_path("cycle.aag"));
  EXPECT_TRUE(r.has("AIG-CYCLE"));
  EXPECT_FALSE(r.ok());  // cycles are error severity
}

TEST(LintCorpus, DetectsDanglingAnd) {
  const LintReport r = lint_file(data_path("dangling.aag"));
  EXPECT_TRUE(r.has("AIG-DANGLING"));
  EXPECT_TRUE(r.ok());  // dangling logic is a warning, not an error
  EXPECT_EQ(r.errors(), 0);
  EXPECT_GE(r.warnings(), 1);
}

TEST(LintCorpus, DetectsDuplicateAnd) {
  const LintReport r = lint_file(data_path("dup_and.aag"));
  EXPECT_TRUE(r.has("AIG-DUP-AND"));
  EXPECT_TRUE(r.ok());
  // The duplicate must not also count as dangling: both ANDs drive POs.
  EXPECT_FALSE(r.has("AIG-DANGLING"));
}

TEST(LintCorpus, DetectsUndrivenOutput) {
  const LintReport r = lint_file(data_path("undriven_po.aag"));
  EXPECT_TRUE(r.has("AIG-UNDRIVEN-PO"));
  EXPECT_FALSE(r.ok());
}

TEST(LintCorpus, DetectsTautologicalClause) {
  const LintReport r = lint_file(data_path("taut.cnf"));
  EXPECT_TRUE(r.has("CNF-TAUT"));
  EXPECT_TRUE(r.ok());  // a tautology is redundant, not unsound
}

TEST(LintCorpus, DetectsVariableNumberingGap) {
  const LintReport r = lint_file(data_path("var_gap.cnf"));
  EXPECT_TRUE(r.has("CNF-VAR-GAP"));
  EXPECT_TRUE(r.ok());
}

TEST(LintCorpus, CleanFilesProduceNoFindings) {
  for (const char* name : {"clean.aag", "clean.cnf"}) {
    const LintReport r = lint_file(data_path(name));
    EXPECT_TRUE(r.ok()) << name;
    EXPECT_TRUE(r.findings.empty()) << name << ": " << to_json(r);
  }
}

TEST(LintCorpus, UnreadableFileThrowsIoError) {
  EXPECT_THROW(lint_file(data_path("no_such_file.aag")), io::IoError);
}

// ------------------------------------------------------------- cnf checks

TEST(LintCnf, EmptyClauseIsError) {
  const LintReport r = lint_cnf("p cnf 2 2\n1 2 0\n0\n");
  EXPECT_TRUE(r.has("CNF-EMPTY-CLAUSE"));
  EXPECT_FALSE(r.ok());
}

TEST(LintCnf, DuplicateClauseAndLiteral) {
  const LintReport r = lint_cnf("p cnf 2 3\n1 1 2 0\n2 1 0\n1 2 0\n");
  EXPECT_TRUE(r.has("CNF-DUP-LIT"));
  // Clause 2 and clause 3 share the literal set {1,2} (order-insensitive);
  // clause 1 also collapses to it after literal dedup.
  EXPECT_TRUE(r.has("CNF-DUP-CLAUSE"));
}

TEST(LintCnf, RangeViolationAgainstHeader) {
  const LintReport r = lint_cnf("p cnf 2 1\n1 3 0\n");
  EXPECT_TRUE(r.has("CNF-RANGE"));
  EXPECT_FALSE(r.ok());
}

TEST(LintCnf, MissingTerminatorAndHeaderMismatch) {
  const LintReport r = lint_cnf("p cnf 2 2\n1 2\n");
  EXPECT_TRUE(r.has("CNF-PARSE"));  // file ends inside a clause
  EXPECT_TRUE(r.has("CNF-HEADER"));  // declared 2 clauses, body holds 1
  EXPECT_FALSE(r.ok());
}

TEST(LintCnf, PureLiteralSummary) {
  const LintReport r = lint_cnf("p cnf 2 2\n1 2 0\n1 -2 0\n");
  EXPECT_TRUE(r.has("CNF-PURE-LIT"));  // var 1 only occurs positively
  EXPECT_TRUE(r.ok());                 // info severity only
}

TEST(LintCnf, ToleratesMissingHeader) {
  const LintReport r = lint_cnf("1 -2 0\n2 0\n");
  EXPECT_TRUE(r.has("CNF-HEADER"));
  EXPECT_TRUE(r.ok());  // header absence is a warning
}

// ------------------------------------------------------ hostile-input cnf

TEST(LintCnf, ImplausibleHeaderVarCountIsErrorNotSweep) {
  // A 25-byte file declaring 1e14 variables must produce a bounded error,
  // not a 1e14-iteration gap sweep (OOM/hang).
  const LintReport r = lint_cnf("p cnf 100000000000000 0\n");
  EXPECT_TRUE(r.has("CNF-HEADER"));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.has("CNF-VAR-GAP"));  // implausible bound is not swept
}

TEST(LintCnf, ImplausibleLiteralMagnitudeIsErrorNotAllocation) {
  // A single huge literal must not size the polarity table to terabytes.
  const LintReport r = lint_cnf("1000000000000 0\n");
  EXPECT_TRUE(r.has("CNF-RANGE"));
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.has("CNF-EMPTY-CLAUSE"));  // the clause still counts
}

TEST(LintCnf, OverflowingLiteralIsParseError) {
  // strtoll clamps these to LLONG_MAX/LLONG_MIN; both must be rejected as
  // parse errors, not treated as valid (or negation-UB) literals.
  for (const char* body : {"p cnf 2 1\n99999999999999999999 1 0\n",
                           "p cnf 2 1\n-9223372036854775808 1 0\n"}) {
    const LintReport r = lint_cnf(body);
    EXPECT_TRUE(r.has("CNF-PARSE")) << body;
    EXPECT_FALSE(r.ok()) << body;
  }
}

// ------------------------------------------------------------- aig checks

TEST(LintAiger, AcceptsBinaryFormat) {
  // Round-trip a generated circuit through the binary writer, then lint
  // the bytes: generator outputs must be clean in both encodings.
  const aig::Aig a = benchgen::epfl_adder(8);
  const LintReport r = lint_aiger(io::write_aiger_binary(a));
  EXPECT_EQ(r.kind, "aiger-binary");
  EXPECT_TRUE(r.ok()) << to_json(r);
}

TEST(LintAiger, PerCodeFindingsAreCapped) {
  // 60 duplicate ANDs of the same pair: the report holds the cap, not 60,
  // plus one LINT-CAPPED summary naming the suppressed count.
  std::ostringstream os;
  os << "aag 63 2 0 1 61\n2\n4\n6\n";
  for (int i = 0; i < 61; ++i) os << 2 * (3 + i) << " 2 4\n";
  const LintReport r = lint_aiger(os.str());
  EXPECT_TRUE(r.has("AIG-DUP-AND"));
  EXPECT_TRUE(r.has("LINT-CAPPED"));
  int dup = 0;
  for (const Finding& f : r.findings) dup += f.code == "AIG-DUP-AND" ? 1 : 0;
  EXPECT_EQ(dup, 20);
}

TEST(LintAiger, AndLhsBeyondMaxVarIsRangeErrorNotOob) {
  // The AND's lhs variable (50) exceeds M (1): `define()` rejects it, and
  // the cycle-index insertion must not read def[50] past the table end.
  const LintReport r = lint_aiger("aag 1 0 0 0 1\n100 2 3\n");
  EXPECT_TRUE(r.has("AIG-LIT-RANGE"));
  EXPECT_FALSE(r.ok());
}

TEST(LintAiger, OddAndLhsDoesNotHijackCycleIndex) {
  // The odd lhs 7 shares variable 3 with the legitimate AND `6 2 4`; it
  // must get its own finding without overwriting var 3's entry in the
  // cycle index (its self-referential fanins would fake an AIG-CYCLE).
  const LintReport r = lint_aiger("aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n7 6 6\n");
  EXPECT_TRUE(r.has("AIG-ODD-LHS"));
  EXPECT_FALSE(r.has("AIG-CYCLE"));
  EXPECT_FALSE(r.ok());
}

TEST(LintAiger, OverlongBinaryDeltaIsParseError) {
  // Ten continuation bytes with zero payload push the varint shift past
  // 63; the decoder must reject the encoding instead of shifting by >= 64.
  const std::string bytes =
      std::string("aig 1 0 0 0 1\n") + std::string(10, '\x80') + '\x01';
  const LintReport r = lint_aiger(bytes);
  EXPECT_TRUE(r.has("AIG-PARSE"));
  EXPECT_FALSE(r.ok());
}

TEST(LintAig, InMemoryLinterFlagsStrashViolations) {
  aig::Aig a;
  const aig::Lit x = a.add_input("x"), y = a.add_input("y");
  const aig::Lit g1 = a.land(x, y);
  const aig::Lit g2 = a.add_raw_and(x, y);  // structural duplicate of g1
  a.add_output(g1, "f");
  a.add_output(g2, "g");
  const LintReport r = lint_aig(a);
  EXPECT_TRUE(r.has("AIG-DUP-AND"));
  EXPECT_TRUE(r.ok());
}

TEST(LintAig, InMemoryLinterFlagsDanglingNode) {
  aig::Aig a;
  const aig::Lit x = a.add_input("x"), y = a.add_input("y");
  const aig::Lit g1 = a.land(x, y);
  a.add_raw_and(x, aig::lnot(y));  // never read by any output
  a.add_output(g1, "f");
  const LintReport r = lint_aig(a);
  EXPECT_TRUE(r.has("AIG-DANGLING"));
}

// --------------------------------------------------------------- rendering

TEST(LintJson, RendersSummaryAndEscapes) {
  LintReport r;
  r.path = "a\"b";
  r.kind = "cnf";
  r.findings.push_back(
      {"CNF-TAUT", Severity::kWarning, "clause 1", "line1\nline2", 3});
  const std::string js = to_json(r);
  EXPECT_NE(js.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(js.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(js.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"ok\": true"), std::string::npos);
}

// ------------------------------------------------- benchgen lint invariant

TEST(LintBenchgen, StandardSuiteIsLintClean) {
  for (const benchgen::BenchCircuit& b :
       benchgen::standard_suite(benchgen::SuiteScale::kTiny)) {
    const LintReport in_mem = lint_aig(b.aig);
    EXPECT_TRUE(in_mem.findings.empty())
        << b.name << ": " << to_json(in_mem);
    // And through the ASCII writer: the serialized artifact must be just
    // as clean as the in-memory structure.
    const LintReport on_disk = lint_aiger(io::write_aiger(b.aig));
    EXPECT_TRUE(on_disk.findings.empty())
        << b.name << ": " << to_json(on_disk);
  }
}

TEST(LintBenchgen, EpflGeneratorsAreLintClean) {
  const aig::Aig circuits[] = {
      benchgen::epfl_adder(8), benchgen::epfl_multiplier(4),
      benchgen::epfl_barrel_shifter(8), benchgen::epfl_mux(3),
      benchgen::epfl_decoder(4)};
  for (const aig::Aig& a : circuits) {
    const LintReport r = lint_aig(a);
    EXPECT_TRUE(r.findings.empty()) << to_json(r);
  }
}

}  // namespace
}  // namespace step::analysis
