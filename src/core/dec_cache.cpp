#include "core/dec_cache.h"

#include <algorithm>

#include "aig/simulate.h"
#include "common/rng.h"
#include "core/extract.h"

namespace step::core {

namespace {

std::vector<std::uint32_t> identity_support(int n) {
  std::vector<std::uint32_t> s(n);
  for (int i = 0; i < n; ++i) s[i] = static_cast<std::uint32_t>(i);
  return s;
}

}  // namespace

DecCache::DecCache(DecCacheOptions opts) : opts_(opts) {
  opts_.npn_max_support = std::min(opts_.npn_max_support, kNpnMaxSupport);
  opts_.signature_words = std::max(opts_.signature_words, 1);
}

std::uint64_t DecCache::signature_of(const Cone& cone) const {
  // Deterministic per-(input, word) stimulus: equal functions over equally
  // ordered supports always collide; anything else almost never does, and
  // a SAT check arbitrates when it does.
  const int n = cone.n();
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(n);
  std::vector<std::uint64_t> words(n);
  for (int w = 0; w < opts_.signature_words; ++w) {
    for (int i = 0; i < n; ++i) {
      Rng rng(opts_.signature_seed +
              0x10001ULL * static_cast<std::uint64_t>(i) +
              0x7f4a7c15ULL * static_cast<std::uint64_t>(w));
      words[i] = rng.next();
    }
    h ^= aig::simulate_cone(cone.aig, cone.root, words) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::optional<DecCacheHit> DecCache::lookup(const Cone& cone,
                                            DecCacheKey* key) {
  const int n = cone.n();
  DecCacheKey k;
  k.n = n;
  k.exact = n <= opts_.npn_max_support;

  if (k.exact) {
    const TruthTable tt =
        aig::truth_table(cone.aig, cone.root, identity_support(n));
    NpnCanonical canon = npn_canonicalize(tt, n);
    k.canon_tt = canon.tt;
    k.canon_to_fn = canon.transform;
    if (key != nullptr) *key = k;

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    const auto it = npn_map_.find(TtKey{n, k.canon_tt});
    if (it == npn_map_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.npn_hits;
    return DecCacheHit{it->second.tree,
                       npn_compose(it->second.canon_to_fn, k.canon_to_fn)};
  }

  k.signature = signature_of(cone);
  if (key != nullptr) *key = k;

  // Copy the collision candidates out so the SAT checks run unlocked.
  std::vector<SigEntry> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    const auto it = sig_map_.find(k.signature);
    if (it != sig_map_.end()) candidates = it->second;
  }
  for (const SigEntry& e : candidates) {
    if (e.cone->n() != n) continue;
    if (cones_equivalent(*e.cone, cone)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sat_confirms;
      ++stats_.sig_hits;
      NpnVarMap ident;
      ident.var.resize(n);
      for (int i = 0; i < n; ++i) ident.var[i] = i;
      return DecCacheHit{e.tree, std::move(ident)};
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sat_refutes;
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  return std::nullopt;
}

void DecCache::insert(const Cone& cone, const DecCacheKey& key, DecTree tree) {
  STEP_CHECK(key.n == cone.n());
  auto shared = std::make_shared<const DecTree>(std::move(tree));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.insertions;
  if (key.exact) {
    // First insertion per NPN class wins; concurrent duplicates are
    // dropped (both trees are correct, keeping one is enough).
    npn_map_.emplace(TtKey{key.n, key.canon_tt},
                     NpnEntry{std::move(shared), key.canon_to_fn});
    return;
  }
  sig_map_[key.signature].push_back(
      SigEntry{std::make_shared<const Cone>(cone), std::move(shared)});
}

DecCacheStats DecCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DecCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = npn_map_.size();
  for (const auto& [sig, entries] : sig_map_) n += entries.size();
  return n;
}

void DecCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  npn_map_.clear();
  sig_map_.clear();
  stats_ = DecCacheStats{};
}

}  // namespace step::core
