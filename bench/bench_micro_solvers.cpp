// Micro-benchmarks (google-benchmark) for the substrate solvers: SAT
// solving, 2QBF CEGAR, group-MUS, interpolation and AIG manipulation.
// Not part of the paper's tables; tracks the health of the engines that
// power them.

#include <benchmark/benchmark.h>

#include "benchgen/generators.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "core/decomposer.h"
#include "core/relaxation.h"
#include "itp/interpolant.h"
#include "mus/group_mus.h"
#include "qbf/qbf2.h"
#include "sat/solver.h"

namespace {

using namespace step;

void bm_sat_random3cnf(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  const int nc = static_cast<int>(nv * 4.1);
  Rng rng(12345);
  for (auto _ : state) {
    sat::Solver s;
    for (int i = 0; i < nv; ++i) s.new_var();
    for (int c = 0; c < nc; ++c) {
      sat::LitVec cl;
      for (int j = 0; j < 3; ++j) {
        cl.push_back(sat::mk_lit(rng.next_int(0, nv - 1), rng.next_bool()));
      }
      s.add_clause(cl);
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(bm_sat_random3cnf)->Arg(50)->Arg(100)->Arg(200);

void bm_sat_pigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    std::vector<std::vector<sat::Var>> p(holes + 1,
                                         std::vector<sat::Var>(holes));
    for (auto& row : p) {
      for (auto& v : row) v = s.new_var();
    }
    for (auto& row : p) {
      sat::LitVec c;
      for (auto v : row) c.push_back(sat::mk_lit(v));
      s.add_clause(c);
    }
    for (int h = 0; h < holes; ++h) {
      for (int i = 0; i <= holes; ++i) {
        for (int j = i + 1; j <= holes; ++j) {
          s.add_clause({~sat::mk_lit(p[i][h]), ~sat::mk_lit(p[j][h])});
        }
      }
    }
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(bm_sat_pigeonhole)->Arg(5)->Arg(6)->Arg(7);

void bm_qbf_partition_query(benchmark::State& state) {
  // One QD bound query on a mux-tree cone (the paper's inner loop).
  const int sel = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::mux_tree(sel);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const core::RelaxationMatrix m =
      core::build_relaxation_matrix(cone, core::GateOp::kOr);
  for (auto _ : state) {
    core::QbfPartitionFinder finder(m);
    benchmark::DoNotOptimize(
        finder.find_with_bound(core::QbfModel::kQD, sel));
  }
}
BENCHMARK(bm_qbf_partition_query)->Arg(2)->Arg(3);

void bm_mus_equivalence_groups(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::random_sop(n, n, 2, 1, 5, 777);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  const core::RelaxationMatrix m =
      core::build_relaxation_matrix(cone, core::GateOp::kOr);
  for (auto _ : state) {
    core::RelaxationSolver rs(m);
    core::MgDecomposer mg(rs);
    benchmark::DoNotOptimize(mg.find_partition());
  }
}
BENCHMARK(bm_mus_equivalence_groups)->Arg(4)->Arg(6);

void bm_interpolation_extract(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const aig::Aig circ = benchgen::random_sop(n, n, 1, 1, 4, 4242);
  const core::Cone cone = core::extract_po_cone(circ, 0);
  core::DecomposeOptions o;
  o.engine = core::Engine::kMg;
  const core::BiDecomposer dec(o);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.decompose(cone));
  }
}
BENCHMARK(bm_interpolation_extract)->Arg(3)->Arg(5);

void bm_aig_strash(benchmark::State& state) {
  const int gates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(benchgen::random_dag(16, gates, 8, 99));
  }
}
BENCHMARK(bm_aig_strash)->Arg(1000)->Arg(10000);

void bm_tseitin_encode(benchmark::State& state) {
  const aig::Aig mult = benchgen::array_multiplier(static_cast<int>(state.range(0)));
  const core::Cone cone =
      core::extract_po_cone(mult, mult.num_outputs() - 2);
  for (auto _ : state) {
    sat::Solver s;
    std::vector<sat::Lit> in(cone.aig.num_inputs());
    for (auto& l : in) l = sat::mk_lit(s.new_var());
    cnf::SolverSink sink(s);
    benchmark::DoNotOptimize(cnf::encode_cone(cone.aig, cone.root, in, sink));
  }
}
BENCHMARK(bm_tseitin_encode)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
