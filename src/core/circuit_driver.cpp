#include "core/circuit_driver.h"

#include <algorithm>
#include <atomic>

#include "aig/ops.h"
#include "aig/support.h"
#include "aig/window.h"
#include "common/thread_pool.h"

namespace step::core {

int CircuitRunResult::num_decomposed() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed;
      }));
}

int CircuitRunResult::num_proven_optimal() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(), [](const PoOutcome& p) {
        return p.status == DecomposeStatus::kDecomposed && p.proven_optimal;
      }));
}

int CircuitRunResult::max_support() const {
  int m = 0;
  for (const PoOutcome& p : pos) m = std::max(m, p.support);
  return m;
}

int CircuitRunResult::num_windows_built() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(),
                    [](const PoOutcome& p) { return p.window_built; }));
}

int CircuitRunResult::num_window_decomposed() const {
  return static_cast<int>(
      std::count_if(pos.begin(), pos.end(),
                    [](const PoOutcome& p) { return p.used_window; }));
}

std::uint64_t CircuitRunResult::total_window_sdc_minterms() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.window_sdc_minterms;
  return s;
}

long CircuitRunResult::total_window_sat_completions() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.window_sat_completions;
  return s;
}

long CircuitRunResult::total_sat_calls() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.sat_calls;
  return s;
}

long CircuitRunResult::total_qbf_calls() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_calls;
  return s;
}

long CircuitRunResult::total_qbf_iterations() const {
  long s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_iterations;
  return s;
}

std::uint64_t CircuitRunResult::total_abstraction_conflicts() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_abstraction_conflicts;
  return s;
}

std::uint64_t CircuitRunResult::total_verification_conflicts() const {
  std::uint64_t s = 0;
  for (const PoOutcome& p : pos) s += p.qbf_verification_conflicts;
  return s;
}

sat::Solver::Stats CircuitRunResult::total_solver_stats() const {
  sat::Solver::Stats s;
  for (const PoOutcome& p : pos) s += p.solver_stats;
  return s;
}

CircuitRunResult run_circuit(const aig::Aig& circuit, const std::string& name,
                             const DecomposeOptions& opts,
                             double circuit_budget_s,
                             const ParallelDriverOptions& par) {
  CircuitRunResult result;
  result.circuit = name;
  result.engine = opts.engine;
  result.op = opts.op;

  Timer total;
  Deadline circuit_deadline(circuit_budget_s);

  // Candidate scan is a cheap structural walk over the shared circuit;
  // the cones themselves are extracted inside the jobs so only the cones
  // currently being decomposed are materialized (not the whole circuit's
  // worth at once).
  struct PoJob {
    std::uint32_t po;
    int support;
  };
  std::vector<PoJob> jobs;
  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    const int support = static_cast<int>(
        aig::structural_support(circuit, circuit.output(po)).size());
    if (support < 2) continue;  // constants and wires are not decomposable
    jobs.push_back(PoJob{po, support});
  }

  // Slot per job: workers write disjoint entries, so aggregation is
  // deterministic (PO order) regardless of completion order.
  result.pos.resize(jobs.size());
  std::atomic<bool> hit_budget{false};

  auto absorb_costs = [](PoOutcome& outcome, const DecomposeResult& r) {
    outcome.sat_calls += r.sat_calls;
    outcome.qbf_calls += r.qbf_calls;
    outcome.qbf_iterations += r.qbf_iterations;
    outcome.qbf_abstraction_conflicts += r.qbf_abstraction_conflicts;
    outcome.qbf_verification_conflicts += r.qbf_verification_conflicts;
    outcome.solver_stats += r.solver_stats;
  };

  auto run_one = [&](std::size_t j) {
    const PoJob& job = jobs[j];
    PoOutcome& outcome = result.pos[j];
    outcome.po_index = static_cast<int>(job.po);
    outcome.support = job.support;

    if (circuit_deadline.expired()) {
      hit_budget.store(true, std::memory_order_relaxed);
      outcome.status = DecomposeStatus::kUnknown;
      return;
    }

    // Respect both the per-PO budget and the remaining circuit budget.
    // Each call owns its private cone and Solver/CEGAR contexts, so
    // workers share nothing but the read-only circuit and the deadline.
    Timer po_timer;
    DecomposeOptions po_opts = opts;
    po_opts.po_budget_s =
        std::min(opts.po_budget_s, circuit_deadline.remaining_s());

    // DC mode: decompose the windowed function on its care set first; any
    // failure falls back to the exact cone, so the DC path is monotone in
    // the number of decomposed POs.
    bool done = false;
    if (opts.use_dont_cares) {
      if (std::optional<aig::Window> win =
              aig::compute_window(circuit, circuit.output(job.po), opts.window,
                                  &circuit_deadline)) {
        outcome.window_built = true;
        outcome.window_inputs = win->n();
        outcome.window_sdc_minterms = win->sdc_minterms;
        outcome.care_fraction = win->care_fraction();
        outcome.window_sat_completions = win->sat_completions;

        const CareSet care = care_of_window(*win);
        const Cone wcone{win->aig, win->root};
        const DecomposeResult r = BiDecomposer(po_opts).decompose(wcone, &care);
        absorb_costs(outcome, r);
        if (r.status == DecomposeStatus::kDecomposed) {
          // Verify the resynthesized node against the window before it
          // counts: composed with the cut logic it must equal the
          // original root on every producible input.
          const bool spliceable =
              !r.functions.has_value() ||
              aig::verify_window_replacement(circuit, circuit.output(job.po),
                                             *win, r.functions->aig,
                                             r.functions->combined);
          if (spliceable) {
            outcome.status = r.status;
            outcome.metrics = r.metrics;
            outcome.proven_optimal = r.proven_optimal;
            outcome.used_window = true;
            done = true;
          }
        }
      }
    }

    if (!done) {
      const Cone cone = extract_po_cone(circuit, job.po);
      po_opts.po_budget_s =
          std::min(opts.po_budget_s, circuit_deadline.remaining_s());
      const DecomposeResult r = BiDecomposer(po_opts).decompose(cone);
      outcome.status = r.status;
      outcome.metrics = r.metrics;
      outcome.proven_optimal = r.proven_optimal;
      absorb_costs(outcome, r);
    }
    outcome.cpu_s = po_timer.elapsed_s();
  };

  const int threads =
      std::min(ThreadPool::resolve_num_threads(par.num_threads),
               std::max<int>(1, static_cast<int>(jobs.size())));
  if (threads <= 1) {
    for (std::size_t j = 0; j < jobs.size(); ++j) run_one(j);
  } else {
    ThreadPool pool(threads);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      pool.submit([&run_one, j] { run_one(j); });
    }
    pool.wait_idle();
  }

  // The per-job flag only catches expiry observed *before* a job starts;
  // when the budget dies while the last worker is mid-cone, no later job
  // exists to notice. Aggregate from the shared budget state as well so
  // hit_circuit_budget is faithful (and identical across thread counts).
  result.hit_circuit_budget =
      hit_budget.load(std::memory_order_relaxed) || circuit_deadline.expired();
  result.total_cpu_s = total.elapsed_s();
  return result;
}

CircuitResynthResult run_circuit_resynth(const aig::Aig& circuit,
                                         const std::string& name,
                                         const SynthesisOptions& opts,
                                         double circuit_budget_s,
                                         const ParallelDriverOptions& par,
                                         bool verify) {
  CircuitResynthResult result;
  result.circuit = name;
  result.engine = opts.engine;

  Timer total;
  Deadline circuit_deadline(circuit_budget_s);
  const DecCacheStats cache_before =
      opts.cache != nullptr ? opts.cache->stats() : DecCacheStats{};

  const std::uint32_t n_pos = circuit.num_outputs();
  result.pos.resize(n_pos);
  result.trees.resize(n_pos);
  std::vector<SynthesisStats> job_stats(n_pos);
  std::vector<std::vector<std::uint32_t>> job_inputs(n_pos);
  // Windowed POs (DC mode): the tree rewrites the *window* function and
  // is spliced over the verbatim cut logic at assembly time.
  std::vector<std::unique_ptr<aig::Window>> job_windows(n_pos);

  // Tree construction fans out; workers share only the read-only circuit,
  // the deadline, and the (thread-safe) cache. Expiry degrades quality —
  // sub-cones fall back to verbatim leaves — never completeness.
  auto run_one = [&](std::uint32_t po) {
    Timer po_timer;
    PoResynthOutcome& out = result.pos[po];
    out.po_index = static_cast<int>(po);
    const Cone cone = extract_po_cone(circuit, po, &job_inputs[po]);
    out.support = cone.n();
    out.depth_before = cone_depth(circuit, circuit.output(po));
    job_stats[po].pos_processed = 1;

    // DC mode: rewrite the windowed function on its care set; the result
    // is SAT-verified against the window — composed with the cut logic it
    // must equal the original PO everywhere — *before* it may be spliced,
    // and it must beat the exact whole-cone rewrite on estimated area
    // (window tree plus the verbatim cut logic the splice keeps alive).
    // Any failure falls back to the exact rewrite.
    std::shared_ptr<const DecTree> windowed_tree;
    std::unique_ptr<aig::Window> window;
    SynthesisStats wstats;
    if (opts.use_dont_cares) {
      if (std::optional<aig::Window> win =
              aig::compute_window(circuit, circuit.output(po),
                                  opts.per_node.window, &circuit_deadline)) {
        const CareSet care = care_of_window(*win);
        const Cone wcone{win->aig, win->root};
        wstats.pos_processed = 1;
        auto tree =
            decompose_to_tree(wcone, opts, &wstats, &circuit_deadline, &care);
        aig::Aig repl;
        std::vector<aig::Lit> rin;
        for (int i = 0; i < wcone.n(); ++i) rin.push_back(repl.add_input());
        const aig::Lit rroot = emit_tree(*tree, repl, rin);
        if (aig::verify_window_replacement(circuit, circuit.output(po), *win,
                                           repl, rroot)) {
          windowed_tree = std::move(tree);
          window = std::make_unique<aig::Window>(std::move(*win));
        }
      }
    }
    SynthesisStats estats;
    estats.pos_processed = 1;
    auto exact_tree = decompose_to_tree(cone, opts, &estats, &circuit_deadline);
    bool use_window = false;
    if (windowed_tree != nullptr) {
      // AND gates the splice keeps alive below the cut — an upper bound:
      // strashing against the other POs' logic can only shrink it.
      std::uint32_t cut_ands = 0;
      std::vector<char> seen(circuit.num_nodes(), 0);
      std::vector<std::uint32_t> stack;
      for (const aig::Lit l : window->cut) stack.push_back(aig::node_of(l));
      while (!stack.empty()) {
        const std::uint32_t node = stack.back();
        stack.pop_back();
        if (seen[node] || !circuit.is_and(node)) continue;
        seen[node] = 1;
        ++cut_ands;
        stack.push_back(aig::node_of(circuit.fanin0(node)));
        stack.push_back(aig::node_of(circuit.fanin1(node)));
      }
      use_window = windowed_tree->stats().area() + cut_ands <
                   exact_tree->stats().area();
    }
    if (use_window) {
      job_stats[po] = wstats;
      result.trees[po] = std::move(windowed_tree);
      out.verified = verify;  // proven by the splice check above
      job_windows[po] = std::move(window);
    } else {
      job_stats[po] = estats;
      result.trees[po] = std::move(exact_tree);
      if (verify) out.verified = tree_equivalent(cone, *result.trees[po]);
    }
    out.tree = result.trees[po]->stats();
    out.cpu_s = po_timer.elapsed_s();
  };

  const int threads =
      std::min(ThreadPool::resolve_num_threads(par.num_threads),
               std::max<int>(1, static_cast<int>(n_pos)));
  if (threads <= 1) {
    for (std::uint32_t po = 0; po < n_pos; ++po) run_one(po);
  } else {
    ThreadPool pool(threads);
    for (std::uint32_t po = 0; po < n_pos; ++po) {
      pool.submit([&run_one, po] { run_one(po); });
    }
    pool.wait_idle();
  }

  // Deterministic assembly in PO order (emission is cheap and serial).
  aig::Aig& dst = result.network;
  std::vector<aig::Lit> pi_map(circuit.num_inputs());
  for (std::uint32_t i = 0; i < circuit.num_inputs(); ++i) {
    pi_map[i] = dst.add_input(circuit.input_name(i));
  }
  result.all_verified = verify;
  for (std::uint32_t po = 0; po < n_pos; ++po) {
    aig::Lit out;
    if (job_windows[po] != nullptr) {
      // Windowed splice: the verbatim cut logic is copied (strashing
      // shares it across POs) and the rewritten window reads it.
      const aig::Window& win = *job_windows[po];
      std::vector<aig::Lit> cut_map(win.cut.size());
      for (std::size_t i = 0; i < win.cut.size(); ++i) {
        cut_map[i] = aig::copy_cone(circuit, win.cut[i], dst, pi_map);
      }
      out = emit_tree(*result.trees[po], dst, cut_map);
    } else {
      std::vector<aig::Lit> dst_inputs(job_inputs[po].size());
      for (std::size_t i = 0; i < job_inputs[po].size(); ++i) {
        dst_inputs[i] = pi_map[job_inputs[po][i]];
      }
      out = emit_tree(*result.trees[po], dst, dst_inputs);
    }
    dst.add_output(out, circuit.output_name(po));
    result.stats += job_stats[po];
    result.stats.depth_before =
        std::max(result.stats.depth_before, result.pos[po].depth_before);
    if (verify && !result.pos[po].verified) result.all_verified = false;
  }
  // One level sweep over the finished network covers every PO's
  // depth_after (per-PO cone_depth calls here would be quadratic).
  {
    std::vector<int> level(dst.num_nodes(), 0);
    for (std::uint32_t n = 1; n < dst.num_nodes(); ++n) {
      if (!dst.is_and(n)) continue;
      level[n] = 1 + std::max(level[aig::node_of(dst.fanin0(n))],
                              level[aig::node_of(dst.fanin1(n))]);
    }
    for (std::uint32_t po = 0; po < n_pos; ++po) {
      result.pos[po].depth_after = level[aig::node_of(dst.output(po))];
      result.stats.depth_after =
          std::max(result.stats.depth_after, result.pos[po].depth_after);
    }
  }
  result.stats.ands_before = circuit.num_ands();
  result.stats.ands_after = dst.num_ands();

  if (opts.cache != nullptr) {
    const DecCacheStats after = opts.cache->stats();
    result.cache.lookups = after.lookups - cache_before.lookups;
    result.cache.npn_hits = after.npn_hits - cache_before.npn_hits;
    result.cache.sig_hits = after.sig_hits - cache_before.sig_hits;
    result.cache.misses = after.misses - cache_before.misses;
    result.cache.insertions = after.insertions - cache_before.insertions;
    result.cache.sat_confirms = after.sat_confirms - cache_before.sat_confirms;
    result.cache.sat_refutes = after.sat_refutes - cache_before.sat_refutes;
  }
  result.hit_circuit_budget = circuit_deadline.expired();
  result.total_cpu_s = total.elapsed_s();
  return result;
}

QualityComparison compare_quality(const CircuitRunResult& base,
                                  const CircuitRunResult& challenger,
                                  MetricKind kind) {
  QualityComparison cmp;
  STEP_CHECK(base.pos.size() == challenger.pos.size());
  for (std::size_t i = 0; i < base.pos.size(); ++i) {
    const PoOutcome& b = base.pos[i];
    const PoOutcome& c = challenger.pos[i];
    STEP_CHECK(b.po_index == c.po_index);
    if (b.status != DecomposeStatus::kDecomposed ||
        c.status != DecomposeStatus::kDecomposed) {
      continue;
    }
    ++cmp.considered;
    const int bc = metric_cost(b.metrics, kind);
    const int cc = metric_cost(c.metrics, kind);
    if (cc < bc) {
      ++cmp.challenger_better;
    } else if (cc == bc) {
      ++cmp.equal;
    } else {
      ++cmp.challenger_worse;
    }
  }
  return cmp;
}

}  // namespace step::core
