// Large-circuit scaling bench: streaming binary-AIGER parse throughput and
// memory envelope on 10^5-10^6-gate EPFL-style netlists, plus FIFO vs
// hardness-scheduler makespan on the giant-cone suite. Emits BENCH_large.json
// (--json <path>), which the CI large-circuit job gates on:
//
//   - bytes_per_node <= 64 for every parsed circuit (arena envelope);
//   - schedule.measured.makespan_hardness <= makespan_fifo * (1 + margin);
//   - schedule.j1_vs_jn_identical and fifo_vs_hardness_identical == true.
//
// Scale knob: STEP_BENCH_SCALE=tiny|small|full -> ~2e4 / ~1e5 / ~1e6 target
// AND gates (tiny keeps the smoke-test path fast).

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "aig/simulate.h"
#include "bench_common.h"
#include "benchgen/epfl.h"
#include "common/resource.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/schedule.h"
#include "io/aiger.h"

namespace {

using namespace step;  // NOLINT

std::uint64_t target_for(benchgen::SuiteScale scale) {
  switch (scale) {
    case benchgen::SuiteScale::kTiny: return 20'000;
    case benchgen::SuiteScale::kSmall: return 100'000;
    case benchgen::SuiteScale::kFull: return 1'000'000;
  }
  return 100'000;
}

/// 64-pattern random simulation signature: one fold over all output words.
std::uint64_t sim_signature(const aig::Aig& a, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> in(a.num_inputs());
  for (auto& w : in) w = rng.next();
  const std::vector<std::uint64_t> out = aig::simulate(a, in);
  std::uint64_t sig = 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t w : out) {
    sig ^= w + 0x9e3779b97f4a7c15ULL + (sig << 6) + (sig >> 2);
  }
  return sig;
}

struct ParseRow {
  std::string name;
  std::uint64_t nodes = 0, ands = 0, inputs = 0, outputs = 0;
  std::uint64_t binary_bytes = 0;
  double gen_s = 0.0, write_s = 0.0, parse_s = 0.0;
  std::uint64_t peak_tracked_bytes = 0;
  double bytes_per_node = 0.0;
  std::uint64_t arena_bytes = 0;
  bool roundtrip_ok = false;
};

bool same_statuses(const core::CircuitRunResult& a,
                   const core::CircuitRunResult& b) {
  if (a.pos.size() != b.pos.size()) return false;
  bool same = true;
  for (std::size_t i = 0; i < a.pos.size(); ++i) {
    if (a.pos[i].po_index != b.pos[i].po_index ||
        a.pos[i].status != b.pos[i].status ||
        a.pos[i].reason != b.pos[i].reason) {
      std::printf("  po %d differs: %d/%s vs %d/%s\n", a.pos[i].po_index,
                  static_cast<int>(a.pos[i].status),
                  core::to_string(a.pos[i].reason),
                  static_cast<int>(b.pos[i].status),
                  core::to_string(b.pos[i].reason));
      same = false;
    }
  }
  return same;
}

}  // namespace

int main(int argc, char** argv) {
  const benchgen::SuiteScale scale = benchgen::scale_from_env();
  const std::uint64_t target = target_for(scale);
  bench::print_preamble("bench_large_circuit", scale);
  std::printf("# target gates: %llu\n",
              static_cast<unsigned long long>(target));

  // --emit-dir <dir>: additionally write each generated netlist as a
  // binary-AIGER file (CI feeds one of these to `step decompose`).
  std::string emit_dir;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--emit-dir") emit_dir = argv[i + 1];
  }

  // ---- streaming parse + memory envelope over the EPFL-style suite ----
  std::vector<ParseRow> rows;
  for (benchgen::LargeCircuit& c : benchgen::large_suite(target)) {
    ParseRow row;
    row.name = c.name;

    Timer gen;  // suite construction happened above; re-time the writer
    row.gen_s = gen.elapsed_s();

    Timer wt;
    const std::string bytes = io::write_aiger_binary(c.aig);
    row.write_s = wt.elapsed_s();
    row.binary_bytes = bytes.size();
    if (!emit_dir.empty()) {
      const std::string path = emit_dir + "/" + c.name + ".aig";
      FILE* out = std::fopen(path.c_str(), "wb");
      if (out == nullptr) {
        std::perror(path.c_str());
        return 2;
      }
      std::fwrite(bytes.data(), 1, bytes.size(), out);
      std::fclose(out);
    }

    ResourceGovernor governor;
    MemTracker mem(&governor);
    Timer pt;
    const aig::Aig back = io::parse_aiger_binary(bytes, &mem);
    row.parse_s = pt.elapsed_s();

    row.nodes = back.num_nodes();
    row.ands = back.num_ands();
    row.inputs = back.num_inputs();
    row.outputs = back.num_outputs();
    row.peak_tracked_bytes = governor.peak_run_bytes();
    row.bytes_per_node =
        static_cast<double>(row.peak_tracked_bytes) /
        static_cast<double>(std::max<std::uint64_t>(row.nodes, 1));
    row.arena_bytes = back.memory_bytes();
    row.roundtrip_ok =
        sim_signature(c.aig, 0xC0FFEE) == sim_signature(back, 0xC0FFEE);

    std::printf(
        "%-22s ands=%-8llu parse=%.3fs peak=%.1fMB bytes/node=%.1f "
        "roundtrip=%s\n",
        row.name.c_str(), static_cast<unsigned long long>(row.ands),
        row.parse_s,
        static_cast<double>(row.peak_tracked_bytes) / (1024.0 * 1024.0),
        row.bytes_per_node, row.roundtrip_ok ? "ok" : "MISMATCH");
    rows.push_back(row);
  }

  // ---- scheduling: giant cone discovered last vs scheduled first -------
  // Small enough that every cone actually decomposes within budget (the
  // point is ordering, not solver stress), with one cone ~100x the rest.
  // giant_support = 45 keeps the giant cone decisively over every PO
  // budget tier (it times out deterministically — a borderline cone that
  // sometimes finishes right at the budget would flake the equality gate).
  const aig::Aig sched_circuit = benchgen::giant_cone_suite(
      /*giant_support=*/45, /*n_small=*/120, /*small_support=*/6,
      /*seed=*/0x5EED);
  const bench::BenchBudgets budgets = bench::budgets_for(scale);
  const core::DecomposeOptions opts =
      bench::engine_options(core::Engine::kLjh, core::GateOp::kOr, budgets);

  core::ParallelDriverOptions par = bench::parallel_from_env_or_args(argc, argv);
  // Default to an 8-wide pool (the interesting case for makespan); -j /
  // STEP_BENCH_THREADS still override.
  const int workers = par.num_threads == 1 ? 8 : par.num_threads;

  auto run_with = [&](core::SchedulePolicy policy, int threads) {
    core::ParallelDriverOptions p = par;
    p.schedule = policy;
    p.num_threads = threads;
    return core::run_circuit(sched_circuit, "giant_cone_suite", opts,
                             budgets.circuit_s, p);
  };

  Timer fifo_wall;
  const core::CircuitRunResult fifo1 = run_with(core::SchedulePolicy::kFifo, 1);
  const double fifo_wall_s = fifo_wall.elapsed_s();
  const core::CircuitRunResult hard1 =
      run_with(core::SchedulePolicy::kHardness, 1);
  Timer hard_wall;
  const core::CircuitRunResult hardn =
      run_with(core::SchedulePolicy::kHardness, workers);
  const double hard_wall_s = hard_wall.elapsed_s();

  const bool pure_reorder = same_statuses(fifo1, hard1);
  const bool thread_invariant = same_statuses(hard1, hardn);

  // Makespan comparison on *measured* per-PO costs (from the sequential
  // FIFO reference run), replayed through the deterministic list-scheduling
  // model — wall-clock comparisons of the pool itself are too noisy to
  // gate CI on.
  std::vector<double> costs, scores;
  for (const core::PoOutcome& p : fifo1.pos) {
    costs.push_back(p.cpu_s);
    scores.push_back(p.predicted_hardness);
  }
  const std::vector<std::size_t> fifo_order =
      core::schedule_order(scores, core::SchedulePolicy::kFifo);
  const std::vector<std::size_t> hard_order =
      core::schedule_order(scores, core::SchedulePolicy::kHardness);
  const double mk_fifo = core::simulated_makespan(costs, fifo_order, workers);
  const double mk_hard = core::simulated_makespan(costs, hard_order, workers);
  // Predicted-vs-actual hardness rank agreement: how often the scheduler's
  // score ordering matches the measured cost ordering (sampled pairs).
  std::uint64_t agree = 0, pairs = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    for (std::size_t j = i + 1; j < costs.size(); ++j) {
      if (costs[i] == costs[j] || scores[i] == scores[j]) continue;
      ++pairs;
      if ((costs[i] < costs[j]) == (scores[i] < scores[j])) ++agree;
    }
  }

  std::printf(
      "schedule: pos=%zu workers=%d makespan fifo=%.4fs hardness=%.4fs "
      "(x%.2f) pure_reorder=%s j1_vs_jn=%s\n",
      fifo1.pos.size(), workers, mk_fifo, mk_hard,
      mk_hard > 0 ? mk_fifo / mk_hard : 0.0, pure_reorder ? "ok" : "FAIL",
      thread_invariant ? "ok" : "FAIL");

  // ---- artifact ---------------------------------------------------------
  const std::string json_path = bench::json_path_from_args(argc, argv);
  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::perror(json_path.c_str());
      return 2;
    }
    bench::JsonWriter j(f);
    j.begin_object();
    j.kv("bench", "large_circuit");
    j.kv("scale", bench::scale_name(scale));
    j.kv("target_gates", target);
    j.key("circuits");
    j.begin_array();
    for (const ParseRow& r : rows) {
      j.begin_object();
      j.kv("name", r.name);
      j.kv("nodes", r.nodes);
      j.kv("ands", r.ands);
      j.kv("inputs", r.inputs);
      j.kv("outputs", r.outputs);
      j.kv("binary_bytes", r.binary_bytes);
      j.kv("write_s", r.write_s);
      j.kv("parse_s", r.parse_s);
      j.kv("parse_mb_per_s",
           r.parse_s > 0
               ? static_cast<double>(r.binary_bytes) / (1e6 * r.parse_s)
               : 0.0);
      j.kv("peak_tracked_bytes", r.peak_tracked_bytes);
      j.kv("bytes_per_node", r.bytes_per_node);
      j.kv("arena_bytes", r.arena_bytes);
      j.kv("roundtrip_ok", r.roundtrip_ok);
      j.end_object();
    }
    j.end_array();
    j.key("schedule");
    j.begin_object();
    j.kv("circuit", "giant_cone_suite");
    j.kv("pos", static_cast<long long>(fifo1.pos.size()));
    j.kv("workers", workers);
    j.kv("makespan_fifo_s", mk_fifo);
    j.kv("makespan_hardness_s", mk_hard);
    j.kv("wall_fifo_j1_s", fifo_wall_s);
    j.kv("wall_hardness_jn_s", hard_wall_s);
    j.kv("fifo_vs_hardness_identical", pure_reorder);
    j.kv("j1_vs_jn_identical", thread_invariant);
    j.kv("rank_agreement",
         pairs > 0 ? static_cast<double>(agree) / static_cast<double>(pairs)
                   : 1.0);
    j.key("shape");
    j.begin_object();
    j.kv("policy", core::to_string(hardn.schedule.policy));
    j.kv("jobs", hardn.schedule.jobs);
    j.kv("outliers", hardn.schedule.outliers);
    j.kv("batches", hardn.schedule.batches);
    j.kv("median_score", hardn.schedule.median_score);
    j.kv("max_score", hardn.schedule.max_score);
    j.end_object();
    j.key("outcomes");
    j.begin_object();
    j.kv("fifo_decomposed", fifo1.num_decomposed());
    j.kv("hardness_decomposed", hardn.num_decomposed());
    j.end_object();  // outcomes
    j.end_object();  // schedule
    j.end_object();  // root
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  const bool envelope_ok = [&] {
    for (const ParseRow& r : rows) {
      if (!r.roundtrip_ok || r.bytes_per_node > 64.0) return false;
    }
    return true;
  }();
  return envelope_ok && pure_reorder && thread_invariant ? 0 : 1;
}
