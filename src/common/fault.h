#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace step {

/// Kinds of faults the injector can fire at a poll point.
enum class FaultKind : std::uint8_t {
  kNone = 0,
  kExpire,      ///< forced deadline expiry (generalizes force_expire_after_polls)
  kAllocFail,   ///< simulated allocation failure -> treated like a memory trip
  kAbort,       ///< forced solver/engine abort
  kVerifyFail,  ///< simulated verification failure (result must be discarded)
  kIoError,     ///< simulated reader failure (CLI entry point only)
};

const char* to_string(FaultKind k);

/// Run-wide fault-injection configuration: a seed, a per-poll firing rate,
/// and the enabled kinds. Parsed from `STEP_FAULTS=seed:rate[:kinds]` where
/// `kinds` is a subset of "eabvi" (expire / alloc / abort / verify / io;
/// default all of "eabv" — io faults fire before any cone exists and are
/// only enabled explicitly). The plan itself is immutable and shared; each
/// cone derives its own deterministic FaultStream from it.
struct FaultPlan {
  std::uint64_t seed = 0;
  double rate = 0.0;  ///< probability per poll in [0,1]
  bool expire = true;
  bool alloc = true;
  bool abort = true;
  bool verify = true;
  bool io = false;

  bool enabled() const { return rate > 0.0; }

  /// Parses "seed:rate[:kinds]"; returns nullopt on malformed input.
  static std::optional<FaultPlan> parse(const std::string& spec);
  /// Reads STEP_FAULTS from the environment; nullopt when unset/invalid.
  static std::optional<FaultPlan> from_env();
};

/// Deterministic per-cone fault schedule. The stream is seeded by
/// hash(plan.seed, stream_id) where stream_id is the cone's PO index, so
/// the schedule each cone sees is a pure function of (plan, cone) — never
/// of thread interleaving — and 1-thread vs N-thread runs inject the same
/// faults into the same cones. poll() is called from Deadline::expired()
/// at every existing budget poll point (solver conflict checks, engine
/// loop heads, window reachability queries), which is exactly the PR 5
/// expiry seam generalized to more failure modes.
class FaultStream {
 public:
  FaultStream() = default;
  FaultStream(const FaultPlan& plan, std::uint64_t stream_id);

  bool enabled() const { return plan_.enabled(); }

  /// Next fault decision at a deadline poll point. Once a fault fires the
  /// stream keeps returning it (the cone is going down anyway and a stable
  /// answer keeps re-polls idempotent).
  FaultKind poll();

  /// Fault decision at a verification site (decoupled from poll() so the
  /// deadline path never consumes verification draws and vice versa).
  bool fire_verification();

  /// Faults fired so far (all kinds).
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t next_draw(std::uint64_t& state);

  FaultPlan plan_;
  std::uint64_t state_ = 0;         ///< poll() PRNG state
  std::uint64_t verify_state_ = 0;  ///< fire_verification() PRNG state
  std::uint8_t latched_ = 0;        ///< first fired poll() kind, sticky
  std::atomic<std::uint64_t> fired_{0};
};

}  // namespace step
