#include "core/care.h"

#include "aig/ops.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "sat/solver.h"

namespace step::core {

CareSet care_of_window(const aig::Window& win) {
  CareSet care;
  std::vector<aig::Lit> inputs(win.n());
  for (int i = 0; i < win.n(); ++i) {
    inputs[i] = care.aig.add_input(win.aig.input_name(i));
  }
  care.root = aig::copy_cone(win.aig, win.care, care.aig, inputs);
  return care;
}

CareSet care_and_cone(const CareSet* base, const aig::Aig& cond_aig,
                      aig::Lit cond, bool negate_cond, int n) {
  CareSet out;
  std::vector<aig::Lit> inputs(n);
  for (int i = 0; i < n; ++i) out.aig.add_input();
  for (int i = 0; i < n; ++i) inputs[i] = out.aig.input_lit(i);
  aig::Lit b = aig::kLitTrue;
  if (!care_is_trivial(base)) {
    b = aig::copy_cone(base->aig, base->root, out.aig, inputs);
  }
  aig::Lit c = aig::copy_cone(cond_aig, cond, out.aig, inputs);
  if (negate_cond) c = aig::lnot(c);
  out.root = out.aig.land(b, c);
  return out;
}

CareSet child_care(const CareSet* base, const aig::Aig& fns_aig, aig::Lit fa,
                   aig::Lit fb, GateOp op, int child, int n) {
  CareSet out;
  std::vector<aig::Lit> inputs(n);
  for (int i = 0; i < n; ++i) inputs[i] = out.aig.add_input();
  aig::Lit b = aig::kLitTrue;
  if (!care_is_trivial(base)) {
    b = aig::copy_cone(base->aig, base->root, out.aig, inputs);
  }
  if (op == GateOp::kXor) {
    out.root = b;
    return out;
  }
  const aig::Lit la = aig::copy_cone(fns_aig, fa, out.aig, inputs);
  const aig::Lit lb = aig::copy_cone(fns_aig, fb, out.aig, inputs);
  aig::Lit cond;
  if (op == GateOp::kOr) {
    cond = child == 0 ? aig::lnot(lb) : out.aig.lor(aig::lnot(la), lb);
  } else {  // kAnd: the dual (output forced wherever the sibling is 0)
    cond = child == 0 ? lb : out.aig.lor(la, aig::lnot(lb));
  }
  out.root = out.aig.land(b, cond);
  return out;
}

std::optional<CareSet> care_project(const CareSet& care,
                                    const std::vector<std::uint32_t>& kept,
                                    int max_quantified) {
  const int n = static_cast<int>(care.aig.num_inputs());
  std::vector<char> keep(n, 0);
  for (std::uint32_t k : kept) keep[k] = 1;
  std::vector<std::uint32_t> dropped;
  for (int i = 0; i < n; ++i) {
    if (!keep[i]) dropped.push_back(static_cast<std::uint32_t>(i));
  }
  if (static_cast<int>(dropped.size()) > max_quantified) return std::nullopt;

  // Quantify one variable per round: root := root|v=0 ∨ root|v=1, rebuilt
  // into a fresh AIG each round (cofactoring never reads its own output).
  aig::Aig cur;
  std::vector<aig::Lit> cur_inputs(n);
  for (int i = 0; i < n; ++i) cur_inputs[i] = cur.add_input();
  aig::Lit root = aig::copy_cone(care.aig, care.root, cur, cur_inputs);
  constexpr std::uint32_t kNodeCap = 20000;
  for (const std::uint32_t v : dropped) {
    aig::Aig next;
    std::vector<aig::Lit> next_inputs(n);
    for (int i = 0; i < n; ++i) next_inputs[i] = next.add_input();
    std::vector<int> assignment(n, -1);
    assignment[v] = 0;
    const aig::Lit c0 = aig::cofactor(cur, root, next, assignment, next_inputs);
    assignment[v] = 1;
    const aig::Lit c1 = aig::cofactor(cur, root, next, assignment, next_inputs);
    root = next.lor(c0, c1);
    cur = std::move(next);
    if (cur.num_nodes() > kNodeCap) return std::nullopt;
  }

  CareSet out;
  std::vector<aig::Lit> final_map(n, aig::kLitFalse);  // quantified: unused
  for (std::size_t j = 0; j < kept.size(); ++j) {
    final_map[kept[j]] = out.aig.add_input();
  }
  out.root = aig::copy_cone(cur, root, out.aig, final_map);
  return out;
}

std::optional<bool> constant_on_care(const Cone& cone, const CareSet& care) {
  sat::Solver solver;
  std::vector<sat::Lit> svars(cone.n());
  for (auto& l : svars) l = sat::mk_lit(solver.new_var());
  cnf::SolverSink sink(solver);
  const sat::Lit f = cnf::encode_cone(cone.aig, cone.root, svars, sink);
  const sat::Lit c = cnf::encode_cone(care.aig, care.root, svars, sink);
  solver.add_clause({c});
  const bool on = solver.solve(sat::LitVec{f}) == sat::Result::kSat;
  const bool off = solver.solve(sat::LitVec{~f}) == sat::Result::kSat;
  if (on && off) return std::nullopt;
  return on;  // empty care reports constant false
}

bool cones_equivalent_on_care(const Cone& a, const Cone& b,
                              const CareSet* care) {
  sat::Solver solver;
  std::vector<sat::Lit> svars(a.n());
  for (auto& l : svars) l = sat::mk_lit(solver.new_var());
  cnf::SolverSink sink(solver);
  const sat::Lit la = cnf::encode_cone(a.aig, a.root, svars, sink);
  const sat::Lit lb = cnf::encode_cone(b.aig, b.root, svars, sink);
  if (!care_is_trivial(care)) {
    const sat::Lit lc = cnf::encode_cone(care->aig, care->root, svars, sink);
    solver.add_clause({lc});
  }
  sink.add_binary(la, lb);
  sink.add_binary(~la, ~lb);
  return solver.solve() == sat::Result::kUnsat;
}

}  // namespace step::core
