#pragma once

#include <string>
#include <string_view>

#include "aig/aig.h"

namespace step::io {

/// ASCII AIGER ("aag") reader/writer. AIGER's literal encoding
/// (2*var + complement, 0 = false) matches step::aig's exactly, so the
/// mapping is direct. Latches are cut combinationally on read (latch
/// output -> PI, next-state -> PO), consistent with the paper's `comb`
/// treatment; symbol-table names are honoured when present.
aig::Aig parse_aiger(std::string_view text);

aig::Aig read_aiger_file(const std::string& path);

/// Writes a combinational AIG as ASCII AIGER with a full symbol table.
std::string write_aiger(const aig::Aig& a);

void write_aiger_file(const aig::Aig& a, const std::string& path);

}  // namespace step::io
