#include "core/extract.h"

#include <memory>
#include <utility>

#include "aig/ops.h"
#include "cnf/cnf.h"
#include "cnf/tseitin.h"
#include "itp/interpolant.h"
#include "sat/solver.h"

namespace step::core {

namespace {

/// One interpolation query: encodes the three labelled cone copies,
/// refutes, and replays the proof into `dst` over `dst_inputs`.
struct ItpQuery {
  explicit ItpQuery(int n) : n_vars(n) {
    sat::SolverOptions o;
    o.proof_logging = true;
    solver = std::make_unique<sat::Solver>(o);
  }

  std::unique_ptr<sat::Solver> solver;
  int n_vars;

  std::vector<sat::Lit> fresh_vars(int count) {
    std::vector<sat::Lit> v(count);
    for (int i = 0; i < count; ++i) v[i] = sat::mk_lit(solver->new_var());
    return v;
  }

  void assert_cone(const aig::Aig& a, aig::Lit root,
                   const std::vector<sat::Lit>& map, bool value, int tag) {
    cnf::SolverSink sink(*solver, tag);
    cnf::encode_cone_assert(a, root, map, sink, value);
  }
};

/// OR extraction of `root` (within cone.aig) under partition p, writing
/// fa and fb into `dst` whose inputs are already created. With a
/// non-trivial care set (the partition is only valid on the care
/// minterms), every cone copy is additionally constrained to the care set
/// — the queries stay refutable and the interpolants implement f on care.
std::pair<aig::Lit, aig::Lit> or_extract(
    const Cone& cone, aig::Lit root, const Partition& p, aig::Aig& dst,
    const std::vector<aig::Lit>& dst_inputs, const CareSet* care) {
  const int n = cone.n();
  if (care_is_trivial(care)) care = nullptr;
  auto in_class = [&](int i, VarClass c) { return p.cls[i] == c; };
  auto assert_care = [&](ItpQuery& q, const std::vector<sat::Lit>& map,
                         int tag) {
    if (care != nullptr) q.assert_cone(care->aig, care->root, map, true, tag);
  };

  // ---- Query 1: fA over XA ∪ XC ------------------------------------------
  aig::Lit fa;
  {
    ItpQuery q(n);
    const std::vector<sat::Lit> v1 = q.fresh_vars(n);
    std::vector<sat::Lit> map2(v1), map3(v1);
    for (int i = 0; i < n; ++i) {
      if (in_class(i, VarClass::kA)) map2[i] = sat::mk_lit(q.solver->new_var());
      if (in_class(i, VarClass::kB)) map3[i] = sat::mk_lit(q.solver->new_var());
    }
    // A-part: care(X) ∧ f(X) ∧ care(X') ∧ ¬f(XA', XB, XC);
    // B-part: care(X'') ∧ ¬f(XA, XB', XC).
    q.assert_cone(cone.aig, root, v1, true, itp::kTagA);
    q.assert_cone(cone.aig, root, map2, false, itp::kTagA);
    assert_care(q, v1, itp::kTagA);
    assert_care(q, map2, itp::kTagA);
    q.assert_cone(cone.aig, root, map3, false, itp::kTagB);
    assert_care(q, map3, itp::kTagB);
    const sat::Result r = q.solver->solve();
    STEP_CHECK(r == sat::Result::kUnsat);  // partition must be valid (on care)

    std::vector<aig::Lit> shared_map(q.solver->num_vars(), aig::kLitInvalid);
    for (int i = 0; i < n; ++i) {
      if (!in_class(i, VarClass::kB)) shared_map[sat::var(v1[i])] = dst_inputs[i];
    }
    fa = itp::build_interpolant(*q.solver, dst, shared_map);
  }

  // ---- Query 2: fB over XB ∪ XC ------------------------------------------
  aig::Lit fb;
  {
    ItpQuery q(n);
    const std::vector<sat::Lit> w1 = q.fresh_vars(n);
    std::vector<sat::Lit> map2(w1);
    for (int i = 0; i < n; ++i) {
      if (in_class(i, VarClass::kA)) map2[i] = sat::mk_lit(q.solver->new_var());
    }
    // A-part: care(X) ∧ f(X) ∧ ¬fA(XA, XC);
    // B-part: care(X') ∧ ¬f(XA', XB, XC).
    q.assert_cone(cone.aig, root, w1, true, itp::kTagA);
    q.assert_cone(dst, fa, w1, false, itp::kTagA);  // fa depends on XA ∪ XC only
    assert_care(q, w1, itp::kTagA);
    q.assert_cone(cone.aig, root, map2, false, itp::kTagB);
    assert_care(q, map2, itp::kTagB);
    const sat::Result r = q.solver->solve();
    STEP_CHECK(r == sat::Result::kUnsat);

    std::vector<aig::Lit> shared_map(q.solver->num_vars(), aig::kLitInvalid);
    for (int i = 0; i < n; ++i) {
      if (!in_class(i, VarClass::kA)) shared_map[sat::var(w1[i])] = dst_inputs[i];
    }
    fb = itp::build_interpolant(*q.solver, dst, shared_map);
  }
  return {fa, fb};
}

}  // namespace

ExtractedFunctions extract_functions(const Cone& cone, GateOp op,
                                     const Partition& p, const CareSet* care) {
  STEP_CHECK(p.size() == cone.n());
  ExtractedFunctions out;
  std::vector<aig::Lit> inputs(cone.n());
  for (int i = 0; i < cone.n(); ++i) {
    inputs[i] = out.aig.add_input(cone.aig.input_name(i));
  }

  switch (op) {
    case GateOp::kOr: {
      auto [fa, fb] = or_extract(cone, cone.root, p, out.aig, inputs, care);
      out.fa = fa;
      out.fb = fb;
      out.combined = out.aig.lor(fa, fb);
      break;
    }
    case GateOp::kAnd: {
      // f = ¬(¬fA' ∨ ¬fB') where (fA', fB') OR-decompose ¬f.
      auto [ga, gb] =
          or_extract(cone, aig::lnot(cone.root), p, out.aig, inputs, care);
      out.fa = aig::lnot(ga);
      out.fb = aig::lnot(gb);
      out.combined = out.aig.land(out.fa, out.fb);
      break;
    }
    case GateOp::kXor: {
      // fA = f|XB←0, fB = f|XA←0 ⊕ f|XA←0,XB←0 (fixing the reference
      // points a* = b* = 0; correct by the 4-point XOR criterion).
      std::vector<int> zero_b(cone.n(), -1), zero_a(cone.n(), -1),
          zero_ab(cone.n(), -1);
      for (int i = 0; i < cone.n(); ++i) {
        if (p.cls[i] == VarClass::kB) zero_b[i] = 0;
        if (p.cls[i] == VarClass::kA) zero_a[i] = 0;
        if (p.cls[i] != VarClass::kC) zero_ab[i] = 0;
      }
      out.fa = aig::cofactor(cone.aig, cone.root, out.aig, zero_b, inputs);
      const aig::Lit part1 =
          aig::cofactor(cone.aig, cone.root, out.aig, zero_a, inputs);
      const aig::Lit part2 =
          aig::cofactor(cone.aig, cone.root, out.aig, zero_ab, inputs);
      out.fb = out.aig.lxor(part1, part2);
      out.combined = out.aig.lxor(out.fa, out.fb);
      break;
    }
  }

  out.aig.add_output(out.fa, "fa");
  out.aig.add_output(out.fb, "fb");
  out.aig.add_output(out.combined, "combined");
  return out;
}

bool verify_decomposition(const Cone& cone, const ExtractedFunctions& fns,
                          const CareSet* care) {
  return cones_equivalent_on_care(cone, Cone{fns.aig, fns.combined}, care);
}

bool cones_equivalent(const Cone& a, const Cone& b) {
  sat::Solver solver;
  std::vector<sat::Lit> svars(a.n());
  for (int i = 0; i < a.n(); ++i) svars[i] = sat::mk_lit(solver.new_var());

  cnf::SolverSink sink(solver);
  const sat::Lit la = cnf::encode_cone(a.aig, a.root, svars, sink);
  const sat::Lit lb = cnf::encode_cone(b.aig, b.root, svars, sink);
  // Assert inequality; UNSAT proves equivalence.
  sink.add_binary(la, lb);
  sink.add_binary(~la, ~lb);
  return solver.solve() == sat::Result::kUnsat;
}

}  // namespace step::core
