#pragma once

#include <optional>

#include "core/bidec_types.h"

namespace step::core {

/// The decomposed sub-functions, hosted in one AIG whose inputs mirror the
/// cone's inputs (same order/names):
///   fa       — fA(XA, XC): structurally supported only by XA ∪ XC
///   fb       — fB(XB, XC): structurally supported only by XB ∪ XC
///   combined — fa <OP> fb (the reconstruction of f)
/// The AIG registers these as outputs 0, 1, 2 for convenient IO.
struct ExtractedFunctions {
  aig::Aig aig;
  aig::Lit fa = aig::kLitFalse;
  aig::Lit fb = aig::kLitFalse;
  aig::Lit combined = aig::kLitFalse;
};

/// Computes fA and fB for a *valid* partition (callers establish validity
/// first; an invalid partition trips a STEP_CHECK via the interpolation
/// engine's UNSAT requirement).
///
/// OR: two sequential Craig interpolation queries (Section III.B /
/// Lee-Jiang-Hung):
///   fA = ITP( f(X) ∧ ¬f(XA',XB,XC) ,  ¬f(XA,XB',XC) )     over XA ∪ XC
///   fB = ITP( f(X) ∧ ¬fA(XA,XC)    ,  ¬f(XA',XB,XC) )     over XB ∪ XC
/// AND: duality — OR-extraction of ¬f, both results complemented.
/// XOR: cofactoring — fA = f|XB←0,  fB = f|XA←0 ⊕ f|XA←0,XB←0.
ExtractedFunctions extract_functions(const Cone& cone, GateOp op,
                                     const Partition& p);

/// SAT check that f ≡ fa <OP> fb (miter unsatisfiability).
bool verify_decomposition(const Cone& cone, const ExtractedFunctions& fns);

/// SAT miter over shared inputs: true iff two cones with the same input
/// count (inputs identified positionally) compute the same function.
/// Shared by decomposition verification and the cache's hit confirmation.
bool cones_equivalent(const Cone& a, const Cone& b);

}  // namespace step::core
