#pragma once

#include "aig/simulate.h"
#include "cnf/tseitin.h"
#include "common/rng.h"
#include "core/bidec_types.h"
#include "sat/solver.h"

namespace step::testutil {

/// SAT miter: every output of `a` equals the same-index output of `b`
/// (over shared, positionally identified inputs).
inline bool circuits_equivalent(const aig::Aig& a, const aig::Aig& b) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    return false;
  }
  sat::Solver solver;
  std::vector<sat::Lit> in(a.num_inputs());
  for (auto& l : in) l = sat::mk_lit(solver.new_var());
  cnf::SolverSink sink(solver);
  sat::LitVec any_diff;
  for (std::uint32_t o = 0; o < a.num_outputs(); ++o) {
    const sat::Lit la = cnf::encode_cone(a, a.output(o), in, sink);
    const sat::Lit lb = cnf::encode_cone(b, b.output(o), in, sink);
    // d <-> la xor lb
    const sat::Lit d = sat::mk_lit(solver.new_var());
    sink.add_ternary(~d, la, lb);
    sink.add_ternary(~d, ~la, ~lb);
    sink.add_ternary(d, ~la, lb);
    sink.add_ternary(d, la, ~lb);
    any_diff.push_back(d);
  }
  solver.add_clause(any_diff);
  return solver.solve() == sat::Result::kUnsat;
}

/// Random single-output cone with exactly n inputs, all structurally used
/// or not — callers that need full support should retry or accept subsets.
inline core::Cone random_cone(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  core::Cone cone;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < n; ++i) pool.push_back(cone.aig.add_input());
  for (int g = 0; g < gates; ++g) {
    const aig::Lit f0 =
        pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
    const aig::Lit f1 =
        pool[rng.next_below(pool.size())] ^ (rng.next_bool() ? 1u : 0u);
    pool.push_back(cone.aig.land(f0, f1));
  }
  cone.root = pool.back() ^ (rng.next_bool() ? 1u : 0u);
  return cone;
}

/// Random partition over n positions (may be trivial).
inline core::Partition random_partition(int n, Rng& rng) {
  core::Partition p;
  p.cls.resize(n);
  for (int i = 0; i < n; ++i) {
    p.cls[i] = static_cast<core::VarClass>(rng.next_int(0, 2));
  }
  return p;
}

/// Exhaustive check that two literals in (possibly different) AIGs with
/// the same number of inputs compute the same function (n <= 16).
inline bool equivalent_by_simulation(const aig::Aig& a1, aig::Lit r1,
                                     const aig::Aig& a2, aig::Lit r2, int n) {
  std::vector<std::uint32_t> support(n);
  for (int i = 0; i < n; ++i) support[i] = i;
  return aig::truth_table(a1, r1, support) == aig::truth_table(a2, r2, support);
}

}  // namespace step::testutil
