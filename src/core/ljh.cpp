#include "core/ljh.h"

#include <utility>

#include "core/partition_check.h"

namespace step::core {

bool LjhDecomposer::check(const Partition& p, const Deadline* deadline,
                          sat::Result* status) {
  ++sat_calls_;
  if (opts_.incremental_sat) {
    if (incremental_ == nullptr) {
      incremental_ = std::make_unique<RelaxationSolver>(m_, sat_opts_);
    }
    return incremental_->is_valid(p, deadline, status);
  }
  // Faithful Bi-dec behaviour: a fresh CNF encoding per query.
  RelaxationSolver fresh(m_, sat_opts_);
  const bool valid = fresh.is_valid(p, deadline, status);
  retired_stats_ += fresh.solver().stats();
  return valid;
}

PartitionSearchResult LjhDecomposer::find_partition(const Deadline* deadline) {
  PartitionSearchResult result;
  const int n = m_.n;
  if (n < 2) {
    result.exhausted = true;
    return result;
  }
  auto out_of_time = [&] { return deadline != nullptr && deadline->expired(); };

  Partition seed;
  seed.cls.assign(n, VarClass::kC);

  int attempts = 0;
  int grown = 0;
  bool all_pairs_tried = true;
  bool best_set = false;
  Partition best;
  std::pair<int, int> best_cost{0, 0};  // (shared, imbalance) lexicographic

  for (int j = 0; j < n && grown < opts_.max_grown_seeds; ++j) {
    for (int l = j + 1; l < n && grown < opts_.max_grown_seeds; ++l) {
      if (attempts >= opts_.max_seed_attempts || out_of_time()) {
        all_pairs_tried = false;
        j = n;  // abandon both loops
        break;
      }
      ++attempts;
      seed.cls.assign(n, VarClass::kC);
      seed.cls[j] = VarClass::kA;
      seed.cls[l] = VarClass::kB;
      sat::Result status;
      if (!check(seed, deadline, &status)) {
        if (status == sat::Result::kUnknown) all_pairs_tried = false;
        continue;
      }

      // Greedy growth: move shared variables into XA or XB while the
      // partition stays valid.
      Partition p = seed;
      for (int v = 0; v < n; ++v) {
        if (p.cls[v] != VarClass::kC) continue;
        if (out_of_time()) {
          all_pairs_tried = false;
          break;
        }
        p.cls[v] = VarClass::kA;
        if (check(p, deadline, nullptr)) continue;
        p.cls[v] = VarClass::kB;
        if (check(p, deadline, nullptr)) continue;
        p.cls[v] = VarClass::kC;
      }

      const Metrics m = Metrics::of(p);
      const std::pair<int, int> cost{m.shared, m.imbalance};
      if (!best_set || cost < best_cost) {
        best_set = true;
        best = p;
        best_cost = cost;
      }
      ++grown;
    }
  }

  result.found = best_set;
  if (best_set) result.partition = std::move(best);
  result.exhausted = all_pairs_tried && !best_set;
  result.sat_calls = sat_calls_;
  return result;
}

}  // namespace step::core
