#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.h"

namespace step::benchgen {

/// Deterministic generators for the benchmark families standing in for the
/// ISCAS'85/'89, ITC'99 and LGSYNTH circuits of the paper's evaluation
/// (the original files are not redistributable in this offline build; see
/// DESIGN.md §4 for the substitution rationale). Every generator returns a
/// self-contained combinational AIG with named inputs and outputs.

/// n-bit ripple-carry adder: a[n] + b[n] + cin -> sum[n], cout.
aig::Aig ripple_adder(int n);

/// n-bit carry-select adder built from `block`-bit ripple blocks.
aig::Aig carry_select_adder(int n, int block);

/// n x n array multiplier: a[n] * b[n] -> p[2n].
aig::Aig array_multiplier(int n);

/// n-bit ALU with a 3-bit opcode (AND, OR, XOR, ADD, SUB, LT, EQ, PASS),
/// in the spirit of the 74181: flags + result outputs.
aig::Aig alu(int n);

/// n-bit magnitude comparator: eq, lt, gt outputs.
aig::Aig comparator(int n);

/// n-input odd-parity tree (single output).
aig::Aig parity_tree(int n);

/// 2^sel_bits-to-1 multiplexer: data[2^s], sel[s] -> out.
aig::Aig mux_tree(int sel_bits);

/// n-input priority encoder: req[n] -> grant[n] (one-hot), valid.
aig::Aig priority_encoder(int n);

/// log2(n)-to-n decoder with enable.
aig::Aig decoder(int addr_bits);

/// n-bit barrel rotator: data[n], amount[ceil(log2 n)] -> out[n]
/// (the "rot" benchmark namesake).
aig::Aig barrel_rotator(int n);

/// Random combinational DAG: n_in inputs, n_and AND gates with random
/// (possibly complemented) fanins biased towards recent nodes, n_out
/// outputs sampled from the top of the DAG. Fully deterministic in `seed`.
aig::Aig random_dag(int n_in, int n_and, int n_out, std::uint64_t seed);

/// Random multi-output SOP network over three variable groups sized
/// n_a / n_b / n_c: every cube of output o draws its literals from either
/// group A ∪ C or group B ∪ C, so each PO is OR bi-decomposable with at
/// most the C group shared — with the *actual* optimum often smaller.
/// This is the LGSYNTH-style two-level family that differentiates the
/// engines' partition quality.
aig::Aig random_sop(int n_a, int n_b, int n_c, int n_out, int cubes_per_out,
                    std::uint64_t seed);

/// Next-state logic of an n-bit Fibonacci LFSR with the given tap mask —
/// the combinational view (`comb`) of a sequential circuit: state[n] ->
/// next[n].
aig::Aig lfsr_next(int n, std::uint64_t taps);

/// Next-state logic of an n-bit binary up-counter with enable.
aig::Aig counter_next(int n);

/// Binary-reflected Gray-code increment: state[n] -> next[n].
aig::Aig gray_next(int n);

/// Majority-of-n (n odd): single output.
aig::Aig majority(int n);

/// Don't-care showcase: `groups` blocks of 3 primary inputs, each block's
/// PO computing MAJ(g1, g2, g3) over *implied* internal signals
/// (g1 = x1∧x2, g2 = x3∧(x1∨x2), g3 = x1∨x2, so g1 ⇒ g3 and g2 ⇒ g3).
/// As a function of its primary inputs each PO is MAJ(x1, x2, x3) —
/// bi-decomposable under no gate — but the implications make 3 of the 8
/// cut patterns unreachable, and on that care set the cone splits as
/// g1 OR g2. Exact engines report 0/`groups` decomposed; the SDC-window
/// mode decomposes every PO. One extra parity PO ties the blocks together
/// so multi-PO drivers see a mixed circuit.
aig::Aig implied_majority(int groups);

/// Hamming-distance threshold: dist(a[n], b[n]) >= t.
aig::Aig hamming_ge(int n, int t);

/// The ISCAS'85 C17 circuit, embedded verbatim (6 NAND gates) as BLIF.
const char* embedded_c17_blif();

/// Disjoint union of several circuits into one multi-output circuit
/// (inputs/outputs renamed with per-part prefixes). This is how the suite
/// builds s-series-like circuits with many POs of varied support.
aig::Aig merge(const std::vector<aig::Aig>& parts);

}  // namespace step::benchgen
