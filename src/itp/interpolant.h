#pragma once

#include <vector>

#include "aig/aig.h"
#include "sat/solver.h"

namespace step::itp {

/// Interpolation partition tags used when adding clauses to the solver.
constexpr int kTagA = 0;
constexpr int kTagB = 1;

/// Builds the McMillan interpolant I for an (A, B) refutation:
///   A ⟹ I,   I ∧ B unsatisfiable,   vars(I) ⊆ vars(A) ∩ vars(B).
///
/// Requirements: `solver` was created with proof_logging, clauses were
/// tagged kTagA / kTagB, and solve() (without assumptions) returned kUnsat.
///
/// `shared_map[v]` gives the AIG literal (in `dst`) standing for SAT
/// variable v; it must be valid for every variable occurring in both A and
/// B clauses (others may be aig::kLitInvalid).
///
/// The rules (per resolution node, replayed over the logged proof):
///   A-leaf: OR of the clause's literals whose variable also occurs in B
///   B-leaf: constant true
///   resolution on pivot p: p occurs in B ? I1 ∧ I2 : I1 ∨ I2
aig::Lit build_interpolant(const sat::Solver& solver, aig::Aig& dst,
                           const std::vector<aig::Lit>& shared_map);

}  // namespace step::itp
