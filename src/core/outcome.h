#pragma once

#include <cstdint>
#include <string>

#include "common/timer.h"

namespace step::core {

/// Why a unit of work (a SAT call, an engine search, a whole cone, a
/// circuit run) ended the way it did. `kOk` covers every *conclusive*
/// ending — decomposed, proven not decomposable, netlist emitted; all
/// other values classify an inconclusive or failed ending. This enum
/// replaces the ad-hoc booleans (`timed_out`, `hit_circuit_budget`) that
/// used to be scattered per layer: every layer reports the same taxonomy,
/// so counts aggregate across cones, threads, and runs.
enum class OutcomeReason : std::uint8_t {
  kOk = 0,
  kEngineDeadline,      ///< the per-cone (engine) wall budget expired
  kCircuitDeadline,     ///< the shared per-run budget expired or SIGINT
  kConflictBudget,      ///< a SAT conflict cap stopped the search
  kMemLimit,            ///< a memory cap tripped (governor or injected)
  kInjectedFault,       ///< a FaultInjector abort fired
  kVerificationFailed,  ///< a result failed SAT verification, was discarded
  kIoError,             ///< reader/writer failure (CLI boundary)
};

inline constexpr int kNumOutcomeReasons = 8;

const char* to_string(OutcomeReason r);

/// Maps a tripped deadline onto the taxonomy. `run_level` tells whether
/// the deadline's *own* budget is the shared per-run budget (true for the
/// circuit deadline itself) or a per-cone engine budget; causes that
/// escalate from attachments (parent / cancel / memory / faults) classify
/// the same either way.
OutcomeReason reason_of(Deadline::Trip trip, bool run_level = false);

/// Classifies an inconclusive (kUnknown) search result: a tripped
/// deadline wins; with no trip the only other budgeted stop is a SAT
/// conflict cap. Call only when the search did *not* conclude.
inline OutcomeReason reason_of_unknown(const Deadline* deadline) {
  if (deadline != nullptr && deadline->trip() != Deadline::Trip::kNone) {
    return reason_of(deadline->trip());
  }
  return OutcomeReason::kConflictBudget;
}

/// Where an outcome tripped, for messages: "engine", "window", "verify"…
/// Free-form but short; empty for kOk.
struct Outcome {
  OutcomeReason reason = OutcomeReason::kOk;
  std::string where;

  bool ok() const { return reason == OutcomeReason::kOk; }
};

/// Aggregate of outcome reasons over a set of work units (the POs of a
/// run, the runs of a bench). Totals add across threads and circuits, and
/// the sum of the counters always equals the number of units counted — the
/// fuzz sweep asserts exactly that.
struct OutcomeCounts {
  std::uint64_t counts[kNumOutcomeReasons] = {};

  void add(OutcomeReason r) { ++counts[static_cast<int>(r)]; }
  std::uint64_t of(OutcomeReason r) const {
    return counts[static_cast<int>(r)];
  }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : counts) t += c;
    return t;
  }
  std::uint64_t failures() const { return total() - of(OutcomeReason::kOk); }

  OutcomeCounts& operator+=(const OutcomeCounts& o) {
    for (int i = 0; i < kNumOutcomeReasons; ++i) counts[i] += o.counts[i];
    return *this;
  }
  bool operator==(const OutcomeCounts&) const = default;

  /// "ok=12 engine_deadline=3 mem_limit=1" — zero entries skipped except
  /// ok, which always prints.
  std::string to_string() const;
};

}  // namespace step::core
