#pragma once

#include <vector>

#include "sat/clause.h"
#include "sat/types.h"

namespace step::sat {

class Solver;

/// Bounded variable elimination by clause distribution (SatELite lineage).
///
/// A variable v is eliminated by replacing the clauses containing v with
/// all non-tautological resolvents on v. Candidates are processed cheapest
/// first and only accepted when the resolvent count does not exceed the
/// deleted-clause count by more than SolverOptions::elim_grow; vars with
/// heavy occurrence lists on both sides are skipped outright
/// (elim_occ_limit), and one round stops at elim_budget resolution
/// literals.
///
/// Safety:
///   * frozen variables (assumptions, counter outputs, interpolation
///     labels) are never candidates;
///   * the deleted clauses are pushed onto the solver's reconstruction
///     stack, so models of the reduced formula extend to the original;
///   * DRAT ordering — every resolvent is logged *before* its parents are
///     deleted, keeping each addition RUP;
///   * learnt clauses mentioning an eliminated variable are deleted (they
///     are implied, so deletion is always sound).
///
/// Syntactic pass: works on occurrence lists, leaves watches stale for the
/// caller to rebuild.
class Eliminator {
 public:
  explicit Eliminator(Solver& s) : s_(s) {}

  /// One elimination round at level 0. Unit resolvents are appended to
  /// `pending_units` for the caller to settle after the watch rebuild.
  void run(LitVec& pending_units);

 private:
  bool try_eliminate(Var v, LitVec& pending_units);
  void drop_learnts_of_eliminated();

  Solver& s_;
  std::vector<std::vector<CRef>> occs_;  ///< problem clauses, by literal
  /// Variables with a pending unit resolvent. The unit is a live clause on
  /// the variable that the occurrence lists cannot see (it is settled only
  /// after the watch rebuild), so eliminating the variable would miss its
  /// resolvents — skip it this round.
  std::vector<char> unit_pending_;
  std::int64_t budget_ = 0;
  bool any_eliminated_ = false;
};

}  // namespace step::sat
