#pragma once

#include <memory>
#include <vector>

#include "core/bidec_types.h"

namespace step::core {

struct DecTree;

/// One node of an explicit decomposition tree. Leaf kinds terminate the
/// recursion (constants, literals, verbatim cones); kGate is one
/// bi-decomposition step f = child0 <op> child1; kShared grafts a whole
/// sub-tree owned elsewhere — either a recursion result over a reduced
/// support or an NPN-rewired tree served by the decomposition cache — so
/// identical cones share one tree object instead of being copied.
struct DecTreeNode {
  enum class Kind : std::uint8_t { kConst, kLiteral, kGate, kCone, kShared };

  Kind kind = Kind::kConst;

  // kConst -------------------------------------------------------------
  bool value = false;

  // kLiteral ------------------------------------------------------------
  int input = 0;         ///< support position of the owning tree
  bool negated = false;

  // kGate ---------------------------------------------------------------
  GateOp op = GateOp::kOr;
  int child0 = -1, child1 = -1;  ///< node indices within the owning tree

  // kCone ---------------------------------------------------------------
  aig::Aig cone_aig;                  ///< verbatim sub-function
  aig::Lit cone_root = aig::kLitFalse;

  // kCone and kShared ---------------------------------------------------
  /// Wiring: input i of the cone / of the shared tree reads support
  /// position inputs[i] of the owning tree.
  std::vector<int> inputs;

  // kShared -------------------------------------------------------------
  std::shared_ptr<const DecTree> shared;
  std::uint32_t input_neg = 0;   ///< bit i: complement shared input i
  bool output_neg = false;       ///< complement the shared tree's output
};

/// Size/shape summary of a tree (transitively through kShared nodes).
struct DecTreeStats {
  int gates = 0;           ///< kGate nodes = bi-decomposition splits
  int cone_leaves = 0;     ///< sub-functions emitted verbatim
  int literal_leaves = 0;
  int const_leaves = 0;
  std::uint32_t cone_ands = 0;  ///< AND gates inside verbatim cone leaves
  int depth = 0;           ///< gate levels; cone leaves count their AND depth

  /// Area in two-input gates: one per tree gate plus the AND gates of
  /// verbatim leaves.
  std::uint32_t area() const {
    return static_cast<std::uint32_t>(gates) + cone_ands;
  }
};

/// Explicit recursive bi-decomposition tree of one function over support
/// positions 0..n-1. Produced by decompose_to_tree() (core/synthesis.h),
/// cached per NPN class by DecCache, and replayed into a netlist with
/// emit_tree().
struct DecTree {
  int n = 0;              ///< support size of the decomposed function
  std::vector<DecTreeNode> nodes;
  int root = -1;

  int add(DecTreeNode node) {
    nodes.push_back(std::move(node));
    return static_cast<int>(nodes.size()) - 1;
  }

  DecTreeStats stats() const;
};

/// Replays the tree into `dst`: input_map[i] is the dst literal driving
/// support position i (complemented literals and constants are fine).
/// Returns the dst literal computing the tree's function.
aig::Lit emit_tree(const DecTree& t, aig::Aig& dst,
                   const std::vector<aig::Lit>& input_map);

}  // namespace step::core
