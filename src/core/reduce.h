#pragma once

#include <vector>

#include "core/bidec_types.h"

namespace step::core {

/// Semantic support reduction of a cone: drops every input on which the
/// function does not actually depend (structural support is an
/// over-approximation — e.g. `(x & y) | (x & !y)` reaches y but ignores
/// it). Each input costs one SAT equivalence check of the two cofactors,
/// so the routine scales to wide cones where truth tables cannot.
///
/// Irrelevant inputs matter to bi-decomposition: they inflate ||X|| (and
/// thus distort εD/εB), enlarge the QBF quantifier prefix, and can only
/// ever land in XA/XB as noise. ABC performs the same cleanup before
/// decomposing.
///
/// Returns the reduced cone; `kept`, when non-null, receives the original
/// input positions that survive (ascending).
Cone reduce_cone(const Cone& cone, std::vector<std::uint32_t>* kept = nullptr);

/// True iff the function of `cone` semantically depends on input `i`
/// (SAT check: f|xi=0 XOR f|xi=1 satisfiable).
bool depends_on(const Cone& cone, std::uint32_t i);

}  // namespace step::core
