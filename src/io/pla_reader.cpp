#include "io/pla_reader.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "io/io_error.h"

namespace step::io {

Network parse_pla(std::string_view text) {
  int n_in = -1, n_out = -1;
  std::vector<std::string> in_names, out_names;
  std::vector<std::pair<std::string, std::string>> cubes;  // (in, out)
  bool on_set = true;  // .type f / fr

  std::istringstream is{std::string(text)};
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;

    // Width caps keep a malformed header from sizing gigabyte allocations
    // (real PLAs are orders of magnitude below both limits).
    constexpr int kMaxWidth = 1 << 20;
    if (tok == ".i") {
      if (!(ls >> n_in) || n_in <= 0 || n_in > kMaxWidth) {
        throw IoError("pla: bad .i");
      }
    } else if (tok == ".o") {
      if (!(ls >> n_out) || n_out <= 0 || n_out > kMaxWidth) {
        throw IoError("pla: bad .o");
      }
    } else if (tok == ".ilb") {
      std::string n;
      while (ls >> n) in_names.push_back(n);
    } else if (tok == ".ob") {
      std::string n;
      while (ls >> n) out_names.push_back(n);
    } else if (tok == ".type") {
      std::string t;
      ls >> t;
      if (t != "f" && t != "fr") {
        throw IoError("pla: unsupported .type " + t);
      }
      on_set = true;
    } else if (tok == ".p" || tok == ".phase" || tok == ".pair") {
      // advisory / unsupported-but-harmless
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      throw IoError("pla: unsupported directive " + tok);
    } else {
      // Cube line: input part already in tok, output part follows.
      std::string out_part;
      if (!(ls >> out_part)) throw IoError("pla: cube missing outputs");
      cubes.emplace_back(tok, out_part);
    }
  }
  if (n_in < 0 || n_out < 0) throw IoError("pla: missing .i/.o");
  // Elaboration materializes n_out SOP nodes of n_in fanins each; bound
  // the product so a hostile header cannot explode to_aig() either.
  if (static_cast<long long>(n_in) * n_out > (1LL << 24)) {
    throw IoError("pla: implausible .i x .o product");
  }

  Network net;
  net.name = "pla";
  for (int i = 0; i < n_in; ++i) {
    net.inputs.push_back(i < static_cast<int>(in_names.size())
                             ? in_names[i]
                             : "in" + std::to_string(i));
  }
  for (int o = 0; o < n_out; ++o) {
    net.outputs.push_back(o < static_cast<int>(out_names.size())
                              ? out_names[o]
                              : "out" + std::to_string(o));
  }

  for (int o = 0; o < n_out; ++o) {
    NetNode node;
    node.name = net.outputs[o];
    node.fanins = net.inputs;
    node.out_value = '1';
    for (const auto& [in_part, out_part] : cubes) {
      if (static_cast<int>(in_part.size()) != n_in ||
          static_cast<int>(out_part.size()) != n_out) {
        throw IoError("pla: cube width mismatch");
      }
      for (char c : in_part) {
        if (c != '0' && c != '1' && c != '-') {
          throw IoError("pla: bad input cube character");
        }
      }
      const char oc = out_part[o];
      if (oc == '1') {
        node.cubes.push_back(in_part);
      } else if (oc != '0' && oc != '~' && oc != '-') {
        throw IoError("pla: bad output cube character");
      }
    }
    (void)on_set;
    net.nodes.push_back(std::move(node));
  }
  return net;
}

Network read_pla_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("pla: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_pla(ss.str());
}

}  // namespace step::io
