#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace step {

namespace {

/// Index of the pool-local worker running on this thread, or -1 when the
/// calling thread is external. Keyed per pool via the pointer check in
/// submit(); a thread belongs to at most one pool.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_id = -1;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  queues_.reserve(n);
  for (int i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::resolve_num_threads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::submit(std::function<void()> job) {
  STEP_CHECK(job != nullptr);
  // A worker submitting nested work pushes to its own deque (LIFO pop keeps
  // it cache-warm); external threads round-robin across workers.
  const int home = (tls_pool == this) ? tls_worker_id : -1;
  const std::size_t q =
      home >= 0 ? static_cast<std::size_t>(home)
                : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                      queues_.size();
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(queues_[q]->mu);
    queues_[q]->jobs.push_back(std::move(job));
  }
  {
    // queued_ must change under wake_mu_: a worker that just evaluated the
    // wait predicate false still holds the mutex, so without this lock the
    // notify below could fire before it blocks and be lost for good.
    MutexLock lock(wake_mu_);
    queued_.fetch_add(1, std::memory_order_release);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::try_acquire(int id, std::function<void()>& out) {
  // Own queue first, newest job (LIFO)...
  {
    WorkerQueue& own = *queues_[id];
    MutexLock lock(own.mu);
    if (!own.jobs.empty()) {
      out = std::move(own.jobs.back());
      own.jobs.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // ...then steal the oldest job from a victim.
  const int n = static_cast<int>(queues_.size());
  for (int k = 1; k < n; ++k) {
    WorkerQueue& victim = *queues_[(id + k) % n];
    MutexLock lock(victim.mu);
    if (!victim.jobs.empty()) {
      out = std::move(victim.jobs.front());
      victim.jobs.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_job(std::function<void()>& job) {
  job();
  job = nullptr;  // release captures before signalling completion
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    MutexLock lock(wake_mu_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_main(int id) {
  tls_pool = this;
  tls_worker_id = id;
  std::function<void()> job;
  for (;;) {
    if (try_acquire(id, job)) {
      run_job(job);
      continue;
    }
    MutexLock lock(wake_mu_);
    // Hand-rolled predicate loop (see CondVar): sleep until a job is
    // queued or shutdown begins; return only once stopped *and* drained.
    while (!stop_ && queued_.load(std::memory_order_acquire) == 0) {
      wake_cv_.wait(wake_mu_);
    }
    if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::wait_idle() {
  MutexLock lock(wake_mu_);
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    idle_cv_.wait(wake_mu_);
  }
}

}  // namespace step
