#include "core/synthesis.h"

#include <algorithm>

#include "aig/ops.h"
#include "aig/simulate.h"
#include "core/reduce.h"

namespace step::core {

namespace {

/// Builds DecTrees bottom-up; one instance per decompose_to_tree call.
struct TreeBuilder {
  const SynthesisOptions& opts;
  SynthesisStats* stats;
  const Deadline* deadline;

  void count_leaf() {
    if (stats != nullptr) ++stats->leaves;
  }

  bool expired() const { return deadline != nullptr && deadline->expired(); }

  std::shared_ptr<const DecTree> make_cone_leaf(const Cone& cone) {
    count_leaf();
    DecTree t;
    t.n = cone.n();
    DecTreeNode node;
    node.kind = DecTreeNode::Kind::kCone;
    node.cone_aig = cone.aig;
    node.cone_root = cone.root;
    node.inputs.resize(cone.n());
    for (int i = 0; i < cone.n(); ++i) node.inputs[i] = i;
    t.root = t.add(std::move(node));
    return std::make_shared<const DecTree>(std::move(t));
  }

  std::shared_ptr<const DecTree> make_const_leaf(bool value) {
    count_leaf();
    DecTree t;
    t.n = 0;
    DecTreeNode node;
    node.kind = DecTreeNode::Kind::kConst;
    node.value = value;
    t.root = t.add(std::move(node));
    return std::make_shared<const DecTree>(std::move(t));
  }

  std::shared_ptr<const DecTree> make_literal_leaf(bool negated) {
    count_leaf();
    DecTree t;
    t.n = 1;
    DecTreeNode node;
    node.kind = DecTreeNode::Kind::kLiteral;
    node.input = 0;
    node.negated = negated;
    t.root = t.add(std::move(node));
    return std::make_shared<const DecTree>(std::move(t));
  }

  /// Entry point per cone: reduces the support first so the core
  /// decomposition (and the cache key) sees only relevant inputs. The
  /// care set follows the reduction through existential projection; when
  /// the projection is over budget the child proceeds exactly (sound).
  std::shared_ptr<const DecTree> build(const Cone& cone, const CareSet* care,
                                       int depth) {
    if (!opts.use_dont_cares || care_is_trivial(care)) care = nullptr;
    if (opts.reduce_supports && cone.n() > 0 && !expired()) {
      std::vector<std::uint32_t> kept;
      const Cone reduced = reduce_cone(cone, &kept);
      if (static_cast<int>(kept.size()) < cone.n()) {
        std::optional<CareSet> proj;
        if (care != nullptr) {
          proj = care_project(*care, kept, opts.max_care_project);
        }
        auto sub = build_core(reduced, proj ? &*proj : nullptr, depth);
        DecTree t;
        t.n = cone.n();
        DecTreeNode node;
        node.kind = DecTreeNode::Kind::kShared;
        node.shared = std::move(sub);
        node.inputs.assign(kept.begin(), kept.end());
        t.root = t.add(std::move(node));
        return std::make_shared<const DecTree>(std::move(t));
      }
    }
    return build_core(cone, care, depth);
  }

  /// Decomposes a support-tight cone, correct on `care` (exact when null).
  std::shared_ptr<const DecTree> build_core(const Cone& cone,
                                            const CareSet* care, int depth) {
    const int n = cone.n();
    if (n == 0) {
      const bool v = (aig::simulate_cone(cone.aig, cone.root, {}) & 1ULL) != 0;
      return make_const_leaf(v);
    }
    if (n == 1) {
      const bool v0 =
          (aig::simulate_cone(cone.aig, cone.root, {0ULL}) & 1ULL) != 0;
      const bool v1 =
          (aig::simulate_cone(cone.aig, cone.root, {~0ULL}) & 1ULL) != 0;
      if (v0 == v1) return make_const_leaf(v0);
      return make_literal_leaf(/*negated=*/v0);
    }
    // Sibling ODCs routinely pin whole sub-functions: constant-on-care
    // cones collapse before any decomposition or cache traffic.
    if (care != nullptr && !expired()) {
      if (std::optional<bool> v = constant_on_care(cone, *care)) {
        if (stats != nullptr) ++stats->dc_constants;
        return make_const_leaf(*v);
      }
    }
    if (n <= opts.leaf_support || depth >= opts.max_depth || expired()) {
      return make_cone_leaf(cone);
    }

    DecCacheKey key;
    if (opts.cache != nullptr) {
      // Exact entries are correct on any care set, so lookups always
      // serve; insertion below is gated on exactness.
      if (auto hit = opts.cache->lookup(cone, &key)) {
        if (stats != nullptr) ++stats->cache_hits;
        DecTree t;
        t.n = n;
        DecTreeNode node;
        node.kind = DecTreeNode::Kind::kShared;
        node.shared = hit->tree;
        node.inputs.assign(hit->map.var.begin(), hit->map.var.end());
        node.input_neg = hit->map.neg;
        node.output_neg = hit->map.output_neg;
        t.root = t.add(std::move(node));
        return std::make_shared<const DecTree>(std::move(t));
      }
    }

    // Pick a gate and a partition.
    bool have = false;
    GateOp best_op = GateOp::kOr;
    DecomposeResult best;
    for (GateOp op : opts.ops) {
      if (expired()) break;
      DecomposeOptions dopts = opts.per_node;
      dopts.op = op;
      dopts.engine = opts.engine;
      dopts.extract = true;
      if (deadline != nullptr) {
        dopts.po_budget_s =
            std::min(dopts.po_budget_s, deadline->remaining_s());
      }
      DecomposeResult r = BiDecomposer(dopts).decompose(cone, care);
      if (r.status != DecomposeStatus::kDecomposed) continue;
      if (!have || metric_cost(r.metrics, MetricKind::kSum) <
                       metric_cost(best.metrics, MetricKind::kSum)) {
        have = true;
        best_op = op;
        best = std::move(r);
      }
      if (!opts.pick_best_op) break;
    }
    if (!have) {
      if (stats != nullptr) ++stats->undecomposable;
      return make_cone_leaf(cone);
    }
    if (stats != nullptr) {
      ++stats->decompositions;
      if (care != nullptr) ++stats->dc_nodes;
    }

    // Recurse into fA and fB: each is re-extracted as a standalone cone so
    // its inputs are exactly its own (structural) support. In DC mode each
    // child inherits the parent care restricted by its sibling's
    // observability don't-cares (see child_care).
    const ExtractedFunctions& fns = *best.functions;
    DecTree t;
    t.n = n;
    auto recurse = [&](aig::Lit f, int child) {
      Cone sub;
      std::vector<std::uint32_t> used;
      std::vector<aig::Lit> created;
      sub.root = aig::extract_cone(fns.aig, f, sub.aig, used, created);
      std::optional<CareSet> sub_care;
      if (opts.use_dont_cares) {
        const CareSet full =
            child_care(care, fns.aig, fns.fa, fns.fb, best_op, child, n);
        if (!full.trivial()) {
          sub_care = care_project(full, used, opts.max_care_project);
        }
      }
      DecTreeNode node;
      node.kind = DecTreeNode::Kind::kShared;
      node.shared = build(sub, sub_care ? &*sub_care : nullptr, depth + 1);
      node.inputs.assign(used.begin(), used.end());
      return t.add(std::move(node));
    };
    DecTreeNode gate;
    gate.kind = DecTreeNode::Kind::kGate;
    gate.op = best_op;
    gate.child0 = recurse(fns.fa, 0);
    gate.child1 = recurse(fns.fb, 1);
    t.root = t.add(std::move(gate));
    auto result = std::make_shared<const DecTree>(std::move(t));
    // A tree built under don't-cares only matches its cone on the care
    // set; caching it would corrupt later exact (or differently-cared)
    // lookups of the same function, so only exact nodes insert.
    if (opts.cache != nullptr && care == nullptr) {
      opts.cache->insert(cone, key, DecTree(*result));
    }
    return result;
  }
};

}  // namespace

SynthesisStats& SynthesisStats::operator+=(const SynthesisStats& o) {
  pos_processed += o.pos_processed;
  decompositions += o.decompositions;
  leaves += o.leaves;
  undecomposable += o.undecomposable;
  cache_hits += o.cache_hits;
  dc_nodes += o.dc_nodes;
  dc_constants += o.dc_constants;
  ands_before += o.ands_before;
  ands_after += o.ands_after;
  depth_before = std::max(depth_before, o.depth_before);
  depth_after = std::max(depth_after, o.depth_after);
  return *this;
}

std::shared_ptr<const DecTree> decompose_to_tree(const Cone& cone,
                                                 const SynthesisOptions& opts,
                                                 SynthesisStats* stats,
                                                 const Deadline* deadline,
                                                 const CareSet* care) {
  TreeBuilder builder{opts, stats, deadline};
  return builder.build(cone, care, 0);
}

bool tree_equivalent(const Cone& cone, const DecTree& tree,
                     const CareSet* care) {
  Cone replay;
  std::vector<aig::Lit> inputs(cone.n());
  for (int i = 0; i < cone.n(); ++i) inputs[i] = replay.aig.add_input();
  replay.root = emit_tree(tree, replay.aig, inputs);
  return cones_equivalent_on_care(cone, replay, care);
}

int cone_depth(const aig::Aig& a, aig::Lit root) {
  std::vector<int> level(a.num_nodes(), 0);
  for (std::uint32_t n = 1; n < a.num_nodes(); ++n) {
    if (!a.is_and(n)) continue;
    level[n] = 1 + std::max(level[aig::node_of(a.fanin0(n))],
                            level[aig::node_of(a.fanin1(n))]);
  }
  return level[aig::node_of(root)];
}

SynthesisResult resynthesize(const aig::Aig& circuit,
                             const SynthesisOptions& opts) {
  SynthesisResult result;
  aig::Aig& dst = result.network;
  SynthesisStats& st = result.stats;

  std::vector<aig::Lit> pi_map(circuit.num_inputs());
  for (std::uint32_t i = 0; i < circuit.num_inputs(); ++i) {
    pi_map[i] = dst.add_input(circuit.input_name(i));
  }

  for (std::uint32_t po = 0; po < circuit.num_outputs(); ++po) {
    std::vector<std::uint32_t> orig_inputs;
    const Cone cone = extract_po_cone(circuit, po, &orig_inputs);
    st.depth_before =
        std::max(st.depth_before, cone_depth(circuit, circuit.output(po)));
    ++st.pos_processed;

    auto tree = decompose_to_tree(cone, opts, &st);
    std::vector<aig::Lit> dst_inputs(orig_inputs.size());
    for (std::size_t i = 0; i < orig_inputs.size(); ++i) {
      dst_inputs[i] = pi_map[orig_inputs[i]];
    }
    const aig::Lit out = emit_tree(*tree, dst, dst_inputs);
    dst.add_output(out, circuit.output_name(po));
    st.depth_after = std::max(st.depth_after, cone_depth(dst, out));
    result.trees.push_back(std::move(tree));
  }

  st.ands_before = circuit.num_ands();
  st.ands_after = dst.num_ands();
  return result;
}

}  // namespace step::core
