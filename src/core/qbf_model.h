#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "cnf/cardinality.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/partition_check.h"
#include "core/relaxation.h"
#include "qbf/qbf2.h"

namespace step::core {

/// The paper's QBF models (Section IV): which target constraint fT is
/// imposed on the universal partition variables.
enum class QbfModel {
  kQD,   ///< disjointness target, eq. (5), with |XA| >= |XB| symmetry break
  kQB,   ///< balancedness target, eq. (6)
  kQDB,  ///< combined target, eq. (8), weights 1/1
};

inline const char* to_string(QbfModel m) {
  switch (m) {
    case QbfModel::kQD: return "STEP-QD";
    case QbfModel::kQB: return "STEP-QB";
    case QbfModel::kQDB: return "STEP-QDB";
  }
  return "?";
}

inline MetricKind metric_of(QbfModel m) {
  switch (m) {
    case QbfModel::kQD: return MetricKind::kDisjointness;
    case QbfModel::kQB: return MetricKind::kBalancedness;
    case QbfModel::kQDB: return MetricKind::kSum;
  }
  return MetricKind::kDisjointness;
}

struct QbfFindResult {
  qbf::Qbf2Status status = qbf::Qbf2Status::kUnknown;
  /// Valid when status == kTrue: a non-trivial partition whose target
  /// metric numerator is <= the queried bound k.
  Partition partition;
  int iterations = 0;
  /// Valid when status == kFalse: every bound < refuted_below is refuted.
  /// Always >= k+1 for the queried k; the incremental path can report more
  /// when the UNSAT core over the cardinality-counter outputs proves the
  /// cost is forced even higher, letting the optimum search raise its
  /// lower bound past k+1 without extra queries.
  int refuted_below = 0;
};

/// Thread-safe, deduplicated pool of universal countermodels shared by
/// the finders of concurrent portfolio racers (core/portfolio.h). Only
/// sound across finders over the *same* relaxation matrix (same cone, op
/// and care set): a countermodel refutes candidate partitions purely
/// through the matrix part Φ, which does not depend on the racer's target
/// fT — the same argument that lets the per-finder pool below span bounds
/// and models. Publishing deduplicates; importing is cursor-based so each
/// finder pays one copy per novel countermodel.
class SharedCountermodelPool {
 public:
  /// Adds a countermodel; returns false when an identical one is pooled.
  bool publish(const std::vector<sat::Lbool>& cm);

  /// Appends every countermodel added since `*cursor` to `out` and
  /// advances the cursor. Returns the number appended.
  std::size_t fetch_new(std::size_t* cursor,
                        std::vector<std::vector<sat::Lbool>>* out) const;

  std::size_t size() const;

 private:
  mutable Mutex mu_;
  std::vector<std::vector<sat::Lbool>> cms_ STEP_GUARDED_BY(mu_);
  std::unordered_set<std::string> keys_ STEP_GUARDED_BY(mu_);
};

/// Decides, via the 2QBF formulation (9), whether a non-trivial valid
/// partition with fT-cost <= k exists — and produces it if so.
///
/// The solved formula is the *negation* of (9):
///   ∃α,β ∀X,X',X''.  ¬Φ ∧ fN(α,β) ∧ fT(α,β)
/// whose ∃-witness (AReQS counterexample for (9)) is the partition.
///
/// Two execution modes share this interface:
///  - *incremental* (default): one persistent CEGAR solver pair per model
///    carries the matrix CNF, fN, every refinement, all learned clauses
///    and heuristic state across every bound query; fT bounds are
///    activated purely through assumptions on an incremental cardinality
///    counter,
///    so tightening k never re-encodes anything.
///  - *scratch*: the original rebuild-per-query path, kept behind
///    `incremental = false` for A/B regression of answers and cost.
/// Both modes share a deduplicated pool of inner countermodels (every
/// refinement is sound at every bound and for every model: the matrix part
/// does not depend on fT), seeding new solver instances with all prior
/// learning.
struct QbfFinderOptions {
  /// Break the XA/XB symmetry with |XA| >= |XB| (Section IV.A.2: "reduces
  /// substantially the search space"). When off, the QB and QDB targets
  /// bound the *absolute* size difference instead, which is equivalent on
  /// partitions but doubles the witness space.
  bool symmetry_breaking = true;
  /// Carry CEGAR countermodels across bound queries (and, via the pool,
  /// across solver instances / models).
  bool pool_seeding = true;
  /// Keep one solver pair alive across all bound queries of a model and
  /// drive the bounds with counter-output assumptions. Off = rebuild per query.
  bool incremental = true;
  /// Cross-racer countermodel pool (non-owning, optional): every locally
  /// novel countermodel is published, and novel foreign ones are imported
  /// (and seeded into live solver pairs) at each find_with_bound() entry.
  /// The portfolio wires one pool per race; all racers must share this
  /// finder's relaxation matrix. Gated by `pool_seeding` like the local
  /// pool.
  SharedCountermodelPool* shared_pool = nullptr;
  /// Forwarded to the CEGAR solver.
  qbf::CegarOptions cegar;
};

class QbfPartitionFinder {
 public:
  explicit QbfPartitionFinder(const RelaxationMatrix& m,
                              QbfFinderOptions opts = {});

  QbfFindResult find_with_bound(QbfModel model, int k,
                                const Deadline* deadline = nullptr);

  const RelaxationMatrix& matrix() const { return m_; }
  int qbf_calls() const { return qbf_calls_; }
  std::size_t pool_size() const { return pool_.size(); }

  /// Aggregated cost counters across all calls (both modes): CEGAR
  /// refinement rounds and conflicts on the two sides of the solver pair.
  int total_iterations() const { return total_iterations_; }
  std::uint64_t abstraction_conflicts() const { return abs_conflicts_; }
  std::uint64_t verification_conflicts() const { return ver_conflicts_; }

  /// Full low-level SAT statistics across every solver this finder built:
  /// retired scratch pairs plus the live persistent pairs.
  sat::Solver::Stats solver_stats() const;

  /// Countermodels this finder pushed to / pulled from the shared pool
  /// (zero without one) — the portfolio's pool-transfer accounting.
  long shared_published() const { return shared_published_; }
  long shared_imported() const { return shared_imported_; }

 private:
  /// A counter enforcing one fT inequality: the bound-k assumption set
  /// is "at most k + offset of the tracked literals are true".
  struct BoundCounter {
    std::unique_ptr<cnf::IncrementalCounter> counter;
    int offset = 0;
  };
  /// Persistent incremental solver state for one QBF model.
  struct IncState {
    std::unique_ptr<qbf::ExistsForallSolver> solver;
    std::vector<BoundCounter> bounds;
    std::size_t pool_synced = 0;  ///< countermodels already copied to pool_
  };

  IncState& state_for(QbfModel model);
  QbfFindResult find_incremental(QbfModel model, int k,
                                 const Deadline* deadline);
  QbfFindResult find_scratch(QbfModel model, int k, const Deadline* deadline);

  /// Replays the cached fN clauses (and, when `want_shared`, the shared-
  /// variable indicator clauses) into a freshly constructed solver's
  /// abstraction; returns the t literals (empty unless `want_shared`).
  sat::LitVec install_side_constraints(qbf::ExistsForallSolver& solver,
                                       bool want_shared) const;

  Partition decode_partition(const std::vector<sat::Lbool>& outer_model) const;
  void absorb_countermodel(const std::vector<sat::Lbool>& cm);
  void import_shared();

  const RelaxationMatrix& m_;  ///< not owned; must outlive the finder
  QbfFinderOptions opts_;

  // Hoisted per-matrix construction (identical for every call): quantifier
  // prefix vectors, the α/β literal layout of the abstraction (outer vars
  // occupy [0, 2n) in construction order), and the clause templates for fN
  // and the shared-variable indicators t_i ⇔ (¬α_i ∧ ¬β_i).
  std::vector<std::uint32_t> outer_, inner_;
  sat::LitVec alpha_, beta_;
  std::vector<sat::LitVec> fn_clauses_;
  std::vector<sat::LitVec> shared_clauses_;
  sat::LitVec shared_lits_;

  std::array<std::unique_ptr<IncState>, 3> inc_;  ///< per QbfModel

  /// Deduplicated inner-countermodel pool shared by every solver instance.
  std::vector<std::vector<sat::Lbool>> pool_;
  std::unordered_set<std::string> pool_keys_;
  std::size_t shared_cursor_ = 0;  ///< shared-pool entries already fetched
  long shared_published_ = 0;
  long shared_imported_ = 0;

  int qbf_calls_ = 0;
  int total_iterations_ = 0;
  std::uint64_t abs_conflicts_ = 0;
  std::uint64_t ver_conflicts_ = 0;
  sat::Solver::Stats scratch_stats_;  ///< accumulated from retired solvers
};

}  // namespace step::core
